(* Benchmark harness.

   Phase 1 regenerates every table and figure of the paper's evaluation
   through Tl_harness.Experiments (macro measurements: construction times,
   estimation errors, response times, pruning sweeps).

   Phase 2 runs bechamel micro-benchmarks — one Test.make per timed paper
   artifact — so per-operation costs (summary construction per dataset for
   Table 3, per-scheme estimation for Fig. 9, exact counting, mining) are
   measured with proper linear-regression timing rather than single-shot
   stopwatches.

   Between the phases, the parallel-build section times summary
   construction sequentially and across the -j N domain pool, checks the
   two summaries are identical, and reports the speedup; the throughput
   section then serves skewed query batches through Tl_serve.Engine and
   compares compiled-plan serving (cold and warm cache, batch-size sweep,
   domain scaling) against the per-call keyed estimator.

   Every measurement is also collected as a machine-readable row
   (experiment id, dataset, metric, value, unit, wall-clock ms) and
   written to BENCH_summary.json — and to --json FILE when given — so the
   perf trajectory is diffable across PRs.  A Prometheus-style snapshot
   of the library's internal metrics lands next to it in
   BENCH_metrics.prom (or --metrics FILE).

   Usage: main.exe [--quick] [--skip-micro] [--target N] [-j N] [--json FILE]
                   [--metrics FILE] [--trace FILE] [--log-level LEVEL] *)

open Bechamel
module Experiments = Tl_harness.Experiments
module Dataset = Tl_datasets.Dataset
module Data_tree = Tl_tree.Data_tree
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Twig = Tl_twig.Twig
module Pool = Tl_util.Pool
module Timer = Tl_util.Timer

let has_flag name = Array.exists (String.equal name) Sys.argv

let arg_value name =
  let result = ref None in
  Array.iteri
    (fun i a -> if String.equal a name && i + 1 < Array.length Sys.argv then result := Some Sys.argv.(i + 1))
    Sys.argv;
  !result

let int_arg name =
  Option.map
    (fun v ->
      match int_of_string_opt v with
      | Some n -> n
      | None ->
        Printf.eprintf "%s expects an integer, got %S\n" name v;
        exit 2)
    (arg_value name)

(* --- machine-readable result rows ---------------------------------------- *)

(* schema_version history: 1 = rows without units; 2 = top-level
   schema_version + a unit string per row. *)
let schema_version = 2

type row = {
  experiment : string;
  dataset : string;
  metric : string;
  value : float;
  unit : string;
  ms : float;
}

let rows : row list ref = ref []

let record ~experiment ~dataset ~metric ~value ~unit ~ms =
  rows := { experiment; dataset; metric; value; unit; ms } :: !rows

let row_json { experiment; dataset; metric; value; unit; ms } =
  Printf.sprintf
    {|    {"experiment": %S, "dataset": %S, "metric": %S, "value": %.6f, "unit": %S, "wall_clock_ms": %.3f}|}
    experiment dataset metric value unit ms

let write_json ~jobs ~target ~quick path =
  match open_out path with
  | exception Sys_error msg -> Tl_obs.Log.err (fun m -> m "cannot write %s: %s" path msg)
  | oc ->
  Printf.fprintf oc
    "{\n  \"bench\": \"treelattice\",\n  \"schema_version\": %d,\n  \"jobs\": %d,\n  \"target\": %d,\n  \"quick\": %b,\n  \"rows\": [\n%s\n  ]\n}\n"
    schema_version jobs target quick
    (String.concat ",\n" (List.rev_map row_json !rows));
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length !rows)

let write_metrics path =
  match open_out path with
  | exception Sys_error msg -> Tl_obs.Log.err (fun m -> m "cannot write %s: %s" path msg)
  | oc ->
    output_string oc (Tl_obs.Metrics.to_prometheus (Tl_obs.Metrics.snapshot ()));
    close_out oc;
    Printf.printf "wrote %s\n%!" path

(* --- parallel summary construction --------------------------------------- *)

(* The tentpole measurement: lattice build time sequentially vs across the
   domain pool, with a structural identity check — the parallel summary
   must hold exactly the sequential pattern counts. *)
let summaries_equal a b =
  Summary.entries a = Summary.entries b
  && Summary.fold
       (fun twig count ok -> ok && Summary.find b twig = Some count)
       a true

let run_parallel_build ~jobs ~k pool suite =
  print_string
    (Tl_harness.Report.section "parallel-build"
       (Printf.sprintf "lattice build: sequential vs -j %d domain pool" jobs));
  List.iter
    (fun env ->
      let name = env.Experiments.dataset.Dataset.name in
      let tree = env.Experiments.tree in
      (* Interleaved best-of-7 after one discarded warm-up pair, with the
         measurement order flipped every round: alternating runs share
         cache and allocator state, keeping the best of each — a one-off
         warm-up or GC outlier on either side can no longer masquerade as
         a parallel slowdown (or speedup), and the order flip keeps GC
         debt left by one side from systematically taxing the other.
         Small documents take the sequential path on both sides (the
         pool's work-size cutoff), so their ratio is noise around 1.0 by
         construction. *)
      ignore (Summary.build ~k tree);
      ignore (Summary.build ~pool ~k tree);
      let built = ref None in
      let seq_ms = ref infinity and par_ms = ref infinity in
      for round = 1 to 7 do
        let time_seq () =
          let s, ms = Timer.time_ms (fun () -> Summary.build ~k tree) in
          seq_ms := Float.min !seq_ms ms;
          s
        in
        let time_par () =
          let p, ms = Timer.time_ms (fun () -> Summary.build ~pool ~k tree) in
          par_ms := Float.min !par_ms ms;
          p
        in
        let s, p =
          if round land 1 = 1 then
            let s = time_seq () in
            (s, time_par ())
          else
            let p = time_par () in
            (time_seq (), p)
        in
        built := Some (s, p)
      done;
      let seq, par = Option.get !built in
      let seq_ms = !seq_ms and par_ms = !par_ms in
      let speedup = seq_ms /. Float.max 1e-9 par_ms in
      let identical = summaries_equal seq par in
      Printf.printf "  %-8s seq %8.1f ms   par %8.1f ms   speedup %.2fx   identical: %b\n%!" name
        seq_ms par_ms speedup identical;
      if not identical then failwith ("parallel summary differs from sequential on " ^ name);
      record ~experiment:"parallel-build" ~dataset:name ~metric:"seq_build_ms" ~value:seq_ms
        ~unit:"ms" ~ms:seq_ms;
      record ~experiment:"parallel-build" ~dataset:name ~metric:"par_build_ms" ~value:par_ms
        ~unit:"ms" ~ms:par_ms;
      record ~experiment:"parallel-build" ~dataset:name ~metric:"speedup" ~value:speedup
        ~unit:"ratio" ~ms:(seq_ms +. par_ms))
    (Experiments.envs suite)

(* --- estimation latency: interned keys vs the seed string path ----------- *)

module Baseline = Tl_core.Baseline
module Workload = Tl_workload.Workload

(* Per-estimate latency over the Fig. 9 positive workloads, for every
   scheme, measured twice: against the hash-consed estimator and against
   {!Tl_core.Baseline} (the seed string-keyed path on its own twig type).
   One warm-up sweep precedes timing so the interned path is measured at
   steady state (keys cached on the workload twigs), which is the regime
   repeated estimation over a workload actually runs in; the recorded
   speedup is the headline number of this optimization. *)
let estimation_reps = 9

(* Best-of-interleaved-reps: repeated workload estimation is a steady-state
   regime, so the minimum sweep time is the signal and slower sweeps are GC
   pauses or scheduler noise.  The two paths' sweeps alternate so a noisy
   stretch of wall-clock hits both rather than biasing the ratio, and both
   start from one untimed warm-up sweep (caches in working state) and a
   clean GC point. *)
let paired_ns_per_estimate ~keyed ~baseline queries =
  let sweep estimate =
    Array.iter (fun (q : Workload.query) -> ignore (estimate q.Workload.twig)) queries
  in
  sweep keyed;
  sweep baseline;
  Gc.full_major ();
  let nq = float_of_int (Array.length queries) in
  let kbest = ref infinity and bbest = ref infinity in
  let ktotal = ref 0.0 and btotal = ref 0.0 in
  for _ = 1 to estimation_reps do
    let (), kms = Timer.time_ms (fun () -> sweep keyed) in
    let (), bms = Timer.time_ms (fun () -> sweep baseline) in
    if kms < !kbest then kbest := kms;
    if bms < !bbest then bbest := bms;
    ktotal := !ktotal +. kms;
    btotal := !btotal +. bms
  done;
  ((!kbest *. 1e6 /. nq, !ktotal), (!bbest *. 1e6 /. nq, !btotal))

let run_estimation_latency suite =
  print_string
    (Tl_harness.Report.section "estimation-latency"
       "fig9 workload: interned-key estimation vs seed string path (ns/estimate)");
  List.iter
    (fun env ->
      let name = env.Experiments.dataset.Dataset.name in
      let summary = env.Experiments.summary in
      let baseline = Baseline.of_summary summary in
      let queries =
        Array.concat (List.map (fun (wl : Workload.t) -> wl.Workload.queries) env.Experiments.workloads)
      in
      if Array.length queries > 0 then begin
        let speedups = ref [] in
        List.iter
          (fun scheme ->
            let sname = Estimator.scheme_name scheme in
            let (keyed_ns, keyed_ms), (base_ns, base_ms) =
              paired_ns_per_estimate
                ~keyed:(Estimator.estimate summary scheme)
                ~baseline:(fun twig -> Baseline.estimate baseline scheme twig)
                queries
            in
            let speedup = base_ns /. Float.max 1e-9 keyed_ns in
            Printf.printf "  %-8s %-22s keyed %9.0f ns   string %9.0f ns   speedup %5.2fx\n%!" name
              sname keyed_ns base_ns speedup;
            record ~experiment:"estimation-latency" ~dataset:name
              ~metric:(Printf.sprintf "ns_per_estimate/%s" sname)
              ~value:keyed_ns ~unit:"ns" ~ms:keyed_ms;
            record ~experiment:"estimation-latency" ~dataset:name
              ~metric:(Printf.sprintf "baseline_ns_per_estimate/%s" sname)
              ~value:base_ns ~unit:"ns" ~ms:base_ms;
            record ~experiment:"estimation-latency" ~dataset:name
              ~metric:(Printf.sprintf "speedup/%s" sname)
              ~value:speedup ~unit:"ratio" ~ms:(keyed_ms +. base_ms);
            speedups := speedup :: !speedups)
          Estimator.all_schemes;
        let geomean =
          exp (List.fold_left (fun acc s -> acc +. log s) 0.0 !speedups
              /. float_of_int (List.length !speedups))
        in
        Printf.printf "  %-8s %-22s speedup %5.2fx (geometric mean)\n%!" name "all schemes" geomean;
        record ~experiment:"estimation-latency" ~dataset:name ~metric:"speedup/geomean"
          ~value:geomean ~unit:"ratio" ~ms:0.0
      end)
    (Experiments.envs suite)

(* --- batched throughput: compiled plans vs the per-call keyed path ------- *)

module Engine = Tl_serve.Engine
module Xorshift = Tl_util.Xorshift

let throughput_reps = 7
let throughput_batch = 4096
let throughput_sweep = [ 64; 256; 1024; 4096 ]

let qps n ms = float_of_int n /. (Float.max 1e-9 ms /. 1000.0)

(* Best-of-reps without a shared warm-up: [f] owns its warm/cold regime
   (cold callers rebuild their engine inside [f]). *)
let best_of_reps f =
  Gc.full_major ();
  let best = ref infinity and total = ref 0.0 in
  for _ = 1 to throughput_reps do
    let (), ms = Timer.time_ms f in
    if ms < !best then best := ms;
    total := !total +. ms
  done;
  (!best, !total)

(* Repeated-query serving: a zipf-skewed batch drawn from the workload's
   distinct twigs — the regime the plan cache exists for.  Three paths over
   the same batch: the per-call keyed estimator (compiled-away baseline), a
   cold engine (first batch pays plan compilation), and a warm engine
   (every query hits a compiled plan).  The warm/per-call ratio is the
   headline number of this optimization.  With -j > 1 the same warm batch
   is also forced down the full-evaluation path (an [?extra] source
   disables the const fast path) sequentially and across the pool, so the
   domain-scaling row measures real per-query work rather than field
   reads. *)
let run_throughput ~jobs pool suite =
  print_string
    (Tl_harness.Report.section "throughput"
       (Printf.sprintf
          "batched serving: compiled plans vs per-call estimation (%d-query skewed batches)"
          throughput_batch));
  let scheme = Tl_core.Treelattice.default_scheme in
  List.iter
    (fun env ->
      let name = env.Experiments.dataset.Dataset.name in
      let summary = env.Experiments.summary in
      let distinct =
        Array.concat
          (List.map
             (fun (wl : Workload.t) ->
               Array.map (fun (q : Workload.query) -> q.Workload.twig) wl.Workload.queries)
             env.Experiments.workloads)
      in
      if Array.length distinct > 0 then begin
        let nd = Array.length distinct in
        let rng = Xorshift.create 97 in
        let batch =
          Array.init throughput_batch (fun _ -> distinct.(Xorshift.zipf rng ~n:nd ~s:1.1 - 1))
        in
        let n = Array.length batch in
        let percall_ms, percall_total =
          best_of_reps (fun () ->
              Array.iter (fun twig -> ignore (Estimator.estimate summary scheme twig)) batch)
        in
        let cold_ms, cold_total =
          best_of_reps (fun () ->
              let engine = Engine.create ~scheme summary in
              ignore (Engine.batch engine batch))
        in
        let engine = Engine.create ~scheme summary in
        ignore (Engine.batch engine batch);
        let warm_ms, warm_total = best_of_reps (fun () -> ignore (Engine.batch engine batch)) in
        let speedup = qps n warm_ms /. Float.max 1e-9 (qps n percall_ms) in
        Printf.printf
          "  %-8s per-call %9.0f qps   cold %9.0f qps   warm %9.0f qps   warm/per-call %5.2fx\n%!"
          name (qps n percall_ms) (qps n cold_ms) (qps n warm_ms) speedup;
        record ~experiment:"throughput" ~dataset:name ~metric:"qps_percall"
          ~value:(qps n percall_ms) ~unit:"qps" ~ms:percall_total;
        record ~experiment:"throughput" ~dataset:name ~metric:"qps_cold" ~value:(qps n cold_ms)
          ~unit:"qps" ~ms:cold_total;
        record ~experiment:"throughput" ~dataset:name ~metric:"qps_warm" ~value:(qps n warm_ms)
          ~unit:"qps" ~ms:warm_total;
        record ~experiment:"throughput" ~dataset:name ~metric:"warm_vs_percall_speedup"
          ~value:speedup ~unit:"ratio" ~ms:(warm_total +. percall_total);
        List.iter
          (fun bs ->
            let sub = Array.sub batch 0 (min bs n) in
            let ms, total = best_of_reps (fun () -> ignore (Engine.batch engine sub)) in
            Printf.printf "  %-8s batch %4d          warm %9.0f qps\n%!" name
              (Array.length sub) (qps (Array.length sub) ms);
            record ~experiment:"throughput" ~dataset:name
              ~metric:(Printf.sprintf "qps_warm/batch_%d" bs)
              ~value:(qps (Array.length sub) ms)
              ~unit:"qps" ~ms:total)
          throughput_sweep;
        (* Domain scaling needs per-query work the pool can amortize.
           Batches dedupe, so the skewed batch above collapses to a
           handful of const-plan reads, and cold compilation serializes
           on the global key-interning table — neither spreads.  Sample a
           distinct-heavy batch of random subtwigs, warm one engine on
           it, then measure full plan evaluations: an [?extra] source
           (returning None, so results are unchanged) disables the const
           fast path, and every query becomes a lock-free shard hit plus
           a real evaluation sweep. *)
        if jobs > 1 then begin
          let scaling_batch =
            let rng = Xorshift.create 131 in
            let tree = env.Experiments.tree in
            let acc = ref [] in
            for i = 1 to throughput_batch do
              match Tl_twig.Twig_enum.random_subtree rng tree ~size:(6 + (i mod 7)) with
              | Some twig -> acc := twig :: !acc
              | None -> ()
            done;
            Array.of_list !acc
          in
          let m = Array.length scaling_batch in
          if m > 0 then begin
            let warm_engine = Engine.create ~scheme ~plan_capacity:(4 * throughput_batch) summary in
            ignore (Engine.batch warm_engine scaling_batch);
            ignore (Engine.batch ~pool warm_engine scaling_batch);
            let extra = fun _ -> None in
            let seq_ms, seq_total =
              best_of_reps (fun () -> ignore (Engine.batch ~extra warm_engine scaling_batch))
            in
            let par_ms, par_total =
              best_of_reps (fun () -> ignore (Engine.batch ~pool ~extra warm_engine scaling_batch))
            in
            let scaling = qps m par_ms /. Float.max 1e-9 (qps m seq_ms) in
            Printf.printf
              "  %-8s eval distinct (%d): 1 domain %9.0f qps   %d domains %9.0f qps   scaling %5.2fx%s\n%!"
              name m (qps m seq_ms) jobs (qps m par_ms) scaling
              (if Domain.recommended_domain_count () < 2 then "   (single-core host)" else "");
            record ~experiment:"throughput" ~dataset:name ~metric:"qps_eval_1domain"
              ~value:(qps m seq_ms) ~unit:"qps" ~ms:seq_total;
            record ~experiment:"throughput" ~dataset:name
              ~metric:(Printf.sprintf "qps_eval_%ddomains" jobs)
              ~value:(qps m par_ms) ~unit:"qps" ~ms:par_total;
            record ~experiment:"throughput" ~dataset:name ~metric:"domain_scaling_speedup"
              ~value:scaling ~unit:"ratio" ~ms:(seq_total +. par_total);
            (* The same parallel evaluation feeding from a live Adaptive
               cache — no caller-side lock now that the cache guards its
               LRU internally.  This row prices that mutex: every
               decomposition step of every query on every domain goes
               through one contended lookup. *)
            let adaptive =
              let tl = Tl_core.Treelattice.of_summary env.Experiments.tree summary in
              let a = Tl_core.Adaptive.create ~capacity:1024 tl in
              Array.iteri
                (fun i tw ->
                  if i < 64 then Tl_core.Adaptive.observe a tw (2 * Tl_twig.Twig.size tw))
                scaling_batch;
              a
            in
            let extra = Tl_core.Adaptive.lookup adaptive in
            let fb_seq_ms, fb_seq_total =
              best_of_reps (fun () -> ignore (Engine.batch ~extra warm_engine scaling_batch))
            in
            let fb_par_ms, fb_par_total =
              best_of_reps (fun () -> ignore (Engine.batch ~pool ~extra warm_engine scaling_batch))
            in
            let fb_scaling = qps m fb_par_ms /. Float.max 1e-9 (qps m fb_seq_ms) in
            Printf.printf
              "  %-8s adaptive feedback:   1 domain %9.0f qps   %d domains %9.0f qps   scaling %5.2fx\n%!"
              name (qps m fb_seq_ms) jobs (qps m fb_par_ms) fb_scaling;
            record ~experiment:"throughput" ~dataset:name ~metric:"qps_feedback_1domain"
              ~value:(qps m fb_seq_ms) ~unit:"qps" ~ms:fb_seq_total;
            record ~experiment:"throughput" ~dataset:name
              ~metric:(Printf.sprintf "qps_feedback_%ddomains" jobs)
              ~value:(qps m fb_par_ms) ~unit:"qps" ~ms:fb_par_total;
            record ~experiment:"throughput" ~dataset:name ~metric:"feedback_scaling_speedup"
              ~value:fb_scaling ~unit:"ratio" ~ms:(fb_seq_total +. fb_par_total)
          end
        end;
        let s = Engine.stats engine in
        let lookups = s.Tl_core.Plan_cache.hits + s.Tl_core.Plan_cache.misses in
        let hit_rate =
          if lookups = 0 then 0.0
          else float_of_int s.Tl_core.Plan_cache.hits /. float_of_int lookups
        in
        Printf.printf "  %-8s plan cache: %d plans, hit rate %.4f\n%!" name
          s.Tl_core.Plan_cache.size hit_rate;
        record ~experiment:"throughput" ~dataset:name ~metric:"plan_cache_hit_rate"
          ~value:hit_rate ~unit:"ratio" ~ms:0.0
      end)
    (Experiments.envs suite)

(* --- serving observability: audit overhead and drift-sampling cost ------- *)

module Audit = Tl_serve.Audit
module Monitor = Tl_serve.Monitor
module Metrics = Tl_obs.Metrics

let monitor_rates = [ 0.01; 0.10 ]

(* The same warm zipf-skewed batch as the throughput section, served three
   ways: bare, with the audit log attached (sample rate 0 — the cost of
   instrumentation alone, budgeted at <= 5%), and with the drift monitor
   sampling at each configured rate (the cost of buying ground truth).
   The audit ring then yields the serving-latency quantile rows through
   [Metrics.quantile] — the same interpolation the exporter's scrape
   consumers apply to [tl_serve_latency_ns_bucket]. *)
let run_observability suite =
  print_string
    (Tl_harness.Report.section "monitor_overhead"
       "audited serving: instrumentation overhead and drift-sampling cost");
  let scheme = Tl_core.Treelattice.default_scheme in
  List.iter
    (fun env ->
      let name = env.Experiments.dataset.Dataset.name in
      let summary = env.Experiments.summary in
      let distinct =
        Array.concat
          (List.map
             (fun (wl : Workload.t) ->
               Array.map (fun (q : Workload.query) -> q.Workload.twig) wl.Workload.queries)
             env.Experiments.workloads)
      in
      if Array.length distinct > 0 then begin
        let nd = Array.length distinct in
        let rng = Xorshift.create 97 in
        let batch =
          Array.init throughput_batch (fun _ -> distinct.(Xorshift.zipf rng ~n:nd ~s:1.1 - 1))
        in
        let n = Array.length batch in
        let engine = Engine.create ~scheme summary in
        ignore (Engine.batch engine batch);
        let plain_ms, plain_total = best_of_reps (fun () -> ignore (Engine.batch engine batch)) in
        let audit = Audit.create () in
        ignore (Engine.batch ~audit engine batch);
        let audit_ms, audit_total =
          best_of_reps (fun () -> ignore (Engine.batch ~audit engine batch))
        in
        let overhead_pct = (audit_ms -. plain_ms) /. Float.max 1e-9 plain_ms *. 100.0 in
        Printf.printf
          "  %-8s bare %9.0f qps   audited %9.0f qps   audit overhead %+6.2f%%\n%!" name
          (qps n plain_ms) (qps n audit_ms) overhead_pct;
        record ~experiment:"monitor_overhead" ~dataset:name ~metric:"qps_bare"
          ~value:(qps n plain_ms) ~unit:"qps" ~ms:plain_total;
        record ~experiment:"monitor_overhead" ~dataset:name ~metric:"qps_audited/sample_0"
          ~value:(qps n audit_ms) ~unit:"qps" ~ms:audit_total;
        record ~experiment:"monitor_overhead" ~dataset:name ~metric:"audit_overhead_pct"
          ~value:overhead_pct ~unit:"percent" ~ms:(plain_total +. audit_total);
        let h = Audit.latency_histogram audit in
        List.iter
          (fun (q, label) ->
            let v = Metrics.quantile h q in
            if Float.is_finite v then begin
              Printf.printf "  %-8s serve latency %s %9.0f ns\n%!" name label v;
              record ~experiment:"monitor_overhead" ~dataset:name
                ~metric:(Printf.sprintf "latency_%s_ns" label)
                ~value:v ~unit:"ns" ~ms:0.0
            end)
          [ (0.50, "p50"); (0.90, "p90"); (0.99, "p99") ];
        let oracle = Monitor.oracle_of_tree env.Experiments.tree in
        List.iter
          (fun rate ->
            let monitor = Monitor.create ~sample_rate:rate ~oracle () in
            ignore (Engine.batch ~audit ~monitor engine batch);
            let ms, total =
              best_of_reps (fun () -> ignore (Engine.batch ~audit ~monitor engine batch))
            in
            Printf.printf "  %-8s sampled %4.0f%%        %9.0f qps\n%!" name (rate *. 100.0)
              (qps n ms);
            record ~experiment:"monitor_overhead" ~dataset:name
              ~metric:(Printf.sprintf "qps_audited/sample_%g" rate)
              ~value:(qps n ms) ~unit:"qps" ~ms:total)
          monitor_rates
      end)
    (Experiments.envs suite)

(* --- registry: reload under load ----------------------------------------- *)

module Registry = Tl_serve.Registry

let registry_iters = 24

(* Serving throughput with and without a summary hot-swap before every
   batch.  Each swap rebuilds the whole bundle — label validation plus a
   fresh engine whose empty plan cache the next batch refills — so the
   reloading row prices both the swap and the recompilation it induces.
   Swapping before literally every batch is a worst case no deployment
   approaches; the steady/reloading ratio is an upper bound on what hot
   reload can cost. *)
let run_registry suite =
  print_string
    (Tl_harness.Report.section "registry"
       "dataset registry: serving throughput while summaries hot-swap");
  List.iter
    (fun env ->
      let name = env.Experiments.dataset.Dataset.name in
      let summary = env.Experiments.summary in
      let distinct =
        Array.concat
          (List.map
             (fun (wl : Workload.t) ->
               Array.map (fun (q : Workload.query) -> q.Workload.twig) wl.Workload.queries)
             env.Experiments.workloads)
      in
      if Array.length distinct > 0 then begin
        let nd = Array.length distinct in
        let rng = Xorshift.create 97 in
        let batch =
          Array.init 1024 (fun _ -> distinct.(Xorshift.zipf rng ~n:nd ~s:1.1 - 1))
        in
        let n = Array.length batch in
        let t = Registry.create () in
        let names = Data_tree.label_names env.Experiments.tree in
        ignore (Result.get_ok (Registry.install_summary t ~name ~names summary));
        let serve () =
          match Registry.find t name with
          | Some b -> ignore (Registry.batch b batch)
          | None -> ()
        in
        serve ();
        Gc.full_major ();
        let (), steady_ms =
          Timer.time_ms (fun () ->
              for _ = 1 to registry_iters do
                serve ()
              done)
        in
        let (), reloading_ms =
          Timer.time_ms (fun () ->
              for _ = 1 to registry_iters do
                ignore (Result.get_ok (Registry.swap t name summary));
                serve ()
              done)
        in
        let (), swaps_ms =
          Timer.time_ms (fun () ->
              for _ = 1 to registry_iters do
                ignore (Result.get_ok (Registry.swap t name summary))
              done)
        in
        let served = registry_iters * n in
        let steady = qps served steady_ms in
        let reloading = qps served reloading_ms in
        let swap_ms = swaps_ms /. float_of_int registry_iters in
        let ratio = steady /. Float.max 1e-9 reloading in
        Printf.printf
          "  %-8s steady %9.0f qps   reloading %9.0f qps   swap %7.3f ms   steady/reloading %5.2fx\n%!"
          name steady reloading swap_ms ratio;
        record ~experiment:"registry" ~dataset:name ~metric:"qps_steady" ~value:steady
          ~unit:"qps" ~ms:steady_ms;
        record ~experiment:"registry" ~dataset:name ~metric:"qps_reloading" ~value:reloading
          ~unit:"qps" ~ms:reloading_ms;
        record ~experiment:"registry" ~dataset:name ~metric:"swap_ms" ~value:swap_ms ~unit:"ms"
          ~ms:swaps_ms;
        record ~experiment:"registry" ~dataset:name ~metric:"reload_overhead" ~value:ratio
          ~unit:"ratio" ~ms:0.0
      end)
    (Experiments.envs suite)

(* --- server: the TCP front-end under concurrent clients ------------------- *)

module Server = Tl_serve.Server

let server_clients = 4

let server_batches_per_client = 8

let server_batch_size = 256

(* A small blocking line client: send one prebuilt batch request, count
   the answer lines up to the blank terminator (an EOF or a busy line
   terminates early). *)
let server_roundtrip ic oc request =
  output_string oc request;
  flush oc;
  let answers = ref 0 in
  let busy = ref false in
  (try
     let continue = ref true in
     while !continue do
       match input_line ic with
       | "" -> continue := false
       | line ->
         if String.length line >= 4 && String.sub line 0 4 = "busy" then begin
           busy := true;
           continue := false
         end
         else incr answers
     done
   with End_of_file -> ());
  (!answers, !busy)

let with_connection port f =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      f (Unix.in_channel_of_descr fd) (Unix.out_channel_of_descr fd))

(* Concurrent-client throughput through the full network stack (accept,
   admission, parse, batch evaluation, response write), then the
   admission-control saturation point: a one-worker one-slot server
   hammered by reconnecting clients must shed most arrivals with [busy]
   while staying healthy for the connection it serves. *)
let run_server pool suite =
  print_string
    (Tl_harness.Report.section "server"
       (Printf.sprintf "TCP front-end: %d concurrent clients, then shed at saturation"
          server_clients));
  let installed =
    List.filter_map
      (fun env ->
        let distinct =
          Array.concat
            (List.map
               (fun (wl : Workload.t) ->
                 Array.map (fun (q : Workload.query) -> q.Workload.twig) wl.Workload.queries)
               env.Experiments.workloads)
        in
        if Array.length distinct = 0 then None else Some (env, distinct))
      (Experiments.envs suite)
  in
  match installed with
  | [] -> ()
  | (first_env, first_distinct) :: _ ->
    let registry = Registry.create () in
    List.iter
      (fun (env, _) ->
        let name = env.Experiments.dataset.Dataset.name in
        let names = Data_tree.label_names env.Experiments.tree in
        ignore (Result.get_ok (Registry.install_summary registry ~name ~names env.Experiments.summary)))
      installed;
    (* One zipf-skewed request string per dataset, routed by NAME: prefix
       so a single server exercises registry routing on every line. *)
    let request_for env distinct =
      let name = env.Experiments.dataset.Dataset.name in
      let names i = Data_tree.label_name env.Experiments.tree i in
      let rng = Xorshift.create 131 in
      let nd = Array.length distinct in
      let buf = Buffer.create (server_batch_size * 24) in
      for _ = 1 to server_batch_size do
        let twig = distinct.(Xorshift.zipf rng ~n:nd ~s:1.1 - 1) in
        Buffer.add_string buf name;
        Buffer.add_char buf ':';
        Buffer.add_string buf (Twig.pp ~names twig);
        Buffer.add_char buf '\n'
      done;
      Buffer.add_char buf '\n';
      Buffer.contents buf
    in
    let server = Server.start ~pool registry in
    let port = Server.port server in
    List.iter
      (fun (env, distinct) ->
        let name = env.Experiments.dataset.Dataset.name in
        let request = request_for env distinct in
        let lost = Atomic.make 0 in
        let client _ =
          with_connection port @@ fun ic oc ->
          for _ = 1 to server_batches_per_client do
            let answers, busy = server_roundtrip ic oc request in
            if busy || answers <> server_batch_size then Atomic.incr lost
          done
        in
        let (), ms =
          Timer.time_ms (fun () ->
              let threads = List.init server_clients (fun i -> Thread.create client i) in
              List.iter Thread.join threads)
        in
        let served = server_clients * server_batches_per_client * server_batch_size in
        let rate = qps served ms in
        Printf.printf "  %-8s %d clients  %9.0f qps over tcp   (%d queries, %d incomplete)\n%!"
          name server_clients rate served (Atomic.get lost);
        if Atomic.get lost > 0 then failwith ("server bench lost batches on " ^ name);
        record ~experiment:"server" ~dataset:name ~metric:"qps_concurrent" ~value:rate
          ~unit:"qps" ~ms)
      installed;
    Server.stop server;
    (* Saturation: the worker model binds a worker to a connection until
       it closes, so with one worker and a one-slot queue, concurrent
       reconnecting clients force the acceptor to shed. *)
    let sat_config = { Server.default_config with Server.workers = 1; queue_capacity = 1 } in
    let sat = Server.start ~config:sat_config registry in
    let sat_port = Server.port sat in
    let name = first_env.Experiments.dataset.Dataset.name in
    let names i = Data_tree.label_name first_env.Experiments.tree i in
    let one_query =
      Printf.sprintf "%s:%s\n\n" name (Twig.pp ~names first_distinct.(0))
    in
    let sat_clients = 8 and sat_cycles = 25 in
    let sat_client _ =
      for _ = 1 to sat_cycles do
        try with_connection sat_port @@ fun ic oc -> ignore (server_roundtrip ic oc one_query)
        with Unix.Unix_error _ -> ()
      done
    in
    let (), sat_ms =
      Timer.time_ms (fun () ->
          let threads = List.init sat_clients (fun i -> Thread.create sat_client i) in
          List.iter Thread.join threads)
    in
    (* Health check after the storm: a fresh connection still serves. *)
    let healthy =
      try
        with_connection sat_port @@ fun ic oc ->
        fst (server_roundtrip ic oc one_query) = 1
      with Unix.Unix_error _ -> false
    in
    let stats = Server.stats sat in
    Server.stop sat;
    let shed_rate =
      float_of_int stats.Server.shed /. float_of_int (max 1 stats.Server.connections)
    in
    Printf.printf
      "  saturation: %d connection(s), %d shed (rate %.2f), healthy after storm: %b\n%!"
      stats.Server.connections stats.Server.shed shed_rate healthy;
    if not healthy then failwith "server unhealthy after saturation storm";
    if stats.Server.shed = 0 then failwith "saturation storm shed nothing";
    record ~experiment:"server" ~dataset:"all" ~metric:"shed_rate_at_saturation"
      ~value:shed_rate ~unit:"ratio" ~ms:sat_ms;
    record ~experiment:"server" ~dataset:"all" ~metric:"connections_at_saturation"
      ~value:(float_of_int stats.Server.connections) ~unit:"count" ~ms:sat_ms

(* --- phase 2: micro-benchmarks ------------------------------------------ *)

(* A small fixed environment so micro-benchmarks are quick and stable. *)
let micro_target = 6_000

let micro_tests () =
  let datasets = [ Dataset.nasa; Dataset.xmark ] in
  let prepared =
    List.map
      (fun d ->
        let tree = Dataset.tree d ~target:micro_target ~seed:11 in
        let ctx = Tl_twig.Match_count.create_ctx tree in
        let summary = Summary.build ~k:4 tree in
        let sketch = Tl_sketch.Sketch_build.build ~budget_bytes:(8 * 1024) tree in
        let wl =
          match Tl_workload.Workload.positive ~seed:13 ctx ~size:7 ~count:1 with
          | { queries = [||]; _ } -> None
          | { queries; _ } -> Some queries.(0).Tl_workload.Workload.twig
        in
        (d.Dataset.name, tree, ctx, summary, sketch, wl))
      datasets
  in
  let construction =
    List.concat_map
      (fun (name, tree, _, _, _, _) ->
        [
          Test.make
            ~name:(Printf.sprintf "table3/lattice-build/%s" name)
            (Staged.stage (fun () -> ignore (Summary.build ~k:4 tree)));
          Test.make
            ~name:(Printf.sprintf "table3/sketch-build/%s" name)
            (Staged.stage (fun () -> ignore (Tl_sketch.Sketch_build.build ~budget_bytes:(8 * 1024) tree)));
        ])
      prepared
  in
  let estimation =
    List.concat_map
      (fun (name, _, ctx, summary, sketch, wl) ->
        match wl with
        | None -> []
        | Some twig ->
          [
            Test.make
              ~name:(Printf.sprintf "fig9/recursive/%s" name)
              (Staged.stage (fun () -> ignore (Estimator.estimate summary Recursive twig)));
            Test.make
              ~name:(Printf.sprintf "fig9/voting/%s" name)
              (Staged.stage (fun () -> ignore (Estimator.estimate summary Recursive_voting twig)));
            Test.make
              ~name:(Printf.sprintf "fig9/fixed-size/%s" name)
              (Staged.stage (fun () -> ignore (Estimator.estimate summary Fixed_size twig)));
            Test.make
              ~name:(Printf.sprintf "fig9/treesketches/%s" name)
              (Staged.stage (fun () -> ignore (Tl_sketch.Sketch_estimate.estimate sketch twig)));
            Test.make
              ~name:(Printf.sprintf "exact-count/%s" name)
              (Staged.stage (fun () -> ignore (Tl_twig.Match_count.selectivity ctx twig)));
          ])
      prepared
  in
  let mining =
    List.map
      (fun (name, _, ctx, _, _, _) ->
        Test.make
          ~name:(Printf.sprintf "table2/mine-3-lattice/%s" name)
          (Staged.stage (fun () -> ignore (Tl_mining.Miner.mine ctx ~max_size:3))))
      prepared
  in
  (* Subsystems beyond the paper's tables: ingestion routes, the Markov
     path baseline, planning, and match enumeration. *)
  let extras =
    match prepared with
    | [] -> []
    | (name, tree, _, summary, _, wl) :: _ ->
      let xml =
        Tl_xml.Xml_writer.to_string
          { decl = None; root = (Dataset.xmark.Dataset.document ~target:micro_target ~seed:11) }
      in
      let markov = Tl_paths.Markov_table.build ~order:3 tree in
      let ingestion =
        [
          Test.make ~name:"ingest/dom-route"
            (Staged.stage (fun () ->
                 ignore (Data_tree.of_xml (Tl_xml.Xml_dom.parse_string xml))));
          Test.make ~name:"ingest/sax-route"
            (Staged.stage (fun () -> ignore (Tl_tree.Tree_load.of_string xml)));
        ]
      in
      let per_query =
        match wl with
        | None -> []
        | Some twig ->
          [
            Test.make
              ~name:(Printf.sprintf "plan/greedy/%s" name)
              (Staged.stage (fun () -> ignore (Tl_join.Plan.greedy summary twig)));
            Test.make
              ~name:(Printf.sprintf "execute/guided/%s" name)
              (Staged.stage
                 (let plan = Tl_join.Plan.greedy summary twig in
                  fun () -> ignore (Tl_join.Executor.run tree plan)));
            Test.make
              ~name:(Printf.sprintf "enumerate/limit64/%s" name)
              (Staged.stage (fun () -> ignore (Tl_twig.Match_enum.enumerate ~limit:64 tree twig)));
            Test.make
              ~name:(Printf.sprintf "markov-table/path/%s" name)
              (Staged.stage
                 (let path =
                    match Twig.path_labels (Twig.of_path (Twig.labels twig)) with
                    | Some p -> p
                    | None -> Twig.labels twig
                  in
                  fun () -> ignore (Tl_paths.Markov_table.estimate markov path)));
          ]
      in
      ingestion @ per_query
  in
  construction @ estimation @ mining @ extras

let run_micro () =
  let tests = Test.make_grouped ~name:"treelattice" (micro_tests ()) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  print_string (Tl_harness.Report.section "micro" "bechamel micro-benchmarks (per call)");
  let render (name, ols) =
    let nanos =
      match Analyze.OLS.estimates ols with Some (t :: _) -> t | Some [] | None -> Float.nan
    in
    let pretty =
      if Float.is_nan nanos then "n/a"
      else if nanos > 1e9 then Printf.sprintf "%8.2f s " (nanos /. 1e9)
      else if nanos > 1e6 then Printf.sprintf "%8.2f ms" (nanos /. 1e6)
      else if nanos > 1e3 then Printf.sprintf "%8.2f us" (nanos /. 1e3)
      else Printf.sprintf "%8.2f ns" nanos
    in
    let r2 = match Analyze.OLS.r_square ols with Some r -> Printf.sprintf "%.4f" r | None -> "-" in
    Printf.printf "  %-44s %s  (r²=%s)\n" name pretty r2
  in
  List.iter render rows

(* --- main ----------------------------------------------------------------- *)

let () =
  let quick = has_flag "--quick" in
  (match arg_value "--log-level" with
  | None -> Tl_obs.Log.setup Tl_obs.Log.Info
  | Some s -> (
    match Tl_obs.Log.level_of_string s with
    | Ok level -> Tl_obs.Log.setup level
    | Error msg ->
      Printf.eprintf "--log-level: %s\n" msg;
      exit 2));
  let trace_file = arg_value "--trace" in
  Option.iter Tl_obs.Span.set_sink trace_file;
  let config = if quick then Experiments.quick_config else Experiments.default_config in
  let config =
    match int_arg "--target" with
    | Some t -> { config with Experiments.target = t }
    | None -> config
  in
  let jobs = match int_arg "-j" with Some j -> max 1 j | None -> 1 in
  Printf.printf
    "TreeLattice reproduction bench (target=%d elements/dataset, k=%d, %d queries/size, -j %d)\n%!"
    config.Experiments.target config.Experiments.k config.Experiments.queries_per_size jobs;
  (* The pool lives only for the phases that use it: idle domains still
     rendezvous at every stop-the-world minor collection, which would add
     jitter to the single-domain latency timings below. *)
  let suite =
    let pool = Pool.create ~domains:jobs () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    let suite, ms = Timer.time_ms (fun () -> Experiments.make_suite ~pool config) in
  Printf.printf "prepared 4 datasets in %.1f s\n%!" (ms /. 1000.0);
  record ~experiment:"prepare" ~dataset:"all" ~metric:"suite_prepare_ms" ~value:ms ~unit:"ms" ~ms;
  List.iter
    (fun env ->
      record ~experiment:"table3" ~dataset:env.Experiments.dataset.Dataset.name
        ~metric:"lattice_build_ms" ~value:env.Experiments.lattice_ms ~unit:"ms"
        ~ms:env.Experiments.lattice_ms;
      record ~experiment:"table3" ~dataset:env.Experiments.dataset.Dataset.name
        ~metric:"summary_bytes"
        ~value:(float_of_int (Summary.memory_bytes env.Experiments.summary))
        ~unit:"bytes" ~ms:0.0)
    (Experiments.envs suite);
  List.iter
    (fun (id, _, driver) ->
      let report, ms = Timer.time_ms (fun () -> driver suite) in
      print_string report;
      Printf.printf "  [%s completed in %.1f s]\n%!" id (ms /. 1000.0);
      record ~experiment:id ~dataset:"all" ~metric:"report_ms" ~value:ms ~unit:"ms" ~ms)
    Experiments.all_experiments;
    run_parallel_build ~jobs ~k:config.Experiments.k pool suite;
    run_throughput ~jobs pool suite;
    run_observability suite;
    run_registry suite;
    run_server pool suite;
    suite
  in
  run_estimation_latency suite;
  if not (has_flag "--skip-micro") then run_micro ();
  write_json ~jobs ~target:config.Experiments.target ~quick "BENCH_summary.json";
  Option.iter (write_json ~jobs ~target:config.Experiments.target ~quick) (arg_value "--json");
  write_metrics (Option.value ~default:"BENCH_metrics.prom" (arg_value "--metrics"));
  match Tl_obs.Span.close_sink () with
  | Some (path, spans) ->
    Printf.printf "wrote %s (%d spans)\n%!" path spans;
    print_string (Tl_obs.Span.flame ())
  | None -> ()
