End-to-end CLI walkthrough over a small generated dataset.

  $ treelattice() { ../../bin/treelattice_cli.exe "$@"; }

Generate a small deterministic auction document:

  $ treelattice generate xmark --target 1500 --seed 5 -o auction.xml | sed 's/([0-9]* elements)/(N elements)/'
  wrote auction.xml (N elements)

Structural statistics (SAX route):

  $ treelattice stats --xml auction.xml --sax | grep -c "nodes="
  1

Mine and store a summary, then reload it via prune (delta 0 keeps estimates intact):

  $ treelattice summarize --xml auction.xml -k 3 -o auction.summary > /dev/null
  $ test -f auction.summary && echo present
  present
  $ treelattice prune --summary auction.summary --delta 0.0 -o pruned.summary | grep -cE "[0-9]+ -> [0-9]+ patterns"
  1

Twig and XPath estimation agree with exact counting on lattice-resident
queries:

  $ treelattice estimate --xml auction.xml -k 3 "open_auction(bidder)" --exact | tr -d ' '
  estimate[recursive+voting]=120.00
  exact=120
  $ treelattice xpath --xml auction.xml -k 3 "//open_auction[bidder]" --exact | tr -d ' '
  estimate[recursive+voting]=120.00
  exact=120

Explain traces the decomposition behind an estimate of a query deeper
than the lattice, and writes metrics/trace/DOT side files on request:

  $ treelattice explain --xml auction.xml -k 3 "open_auction(bidder,annotation(description))" \
  >   --dot explain.dot --metrics explain.prom --trace explain.jsonl > explain.txt
  $ head -c 9 explain.txt
  estimate[
  $ grep -c "pair 1:" explain.txt > /dev/null && echo has-pairs
  has-pairs
  $ grep -c "^lookups:" explain.txt
  1
  $ grep -c "digraph" explain.dot
  1
  $ grep -c "tl_estimator_lookups" explain.prom
  3
  $ grep -c '"name":"summary.build"' explain.jsonl
  1

Join planning produces a valid guided plan:

  $ treelattice plan --xml auction.xml -k 3 "open_auction(bidder,annotation)" --execute | grep -c "guided"
  2

Match enumeration respects its limit:

  $ treelattice match --xml auction.xml "open_auction(bidder)" --limit 2 | head -1 | sed 's/^[0-9]*/N/'
  N match(es); showing up to 2

Batched estimation dedupes repeated queries, accepts twig and XPath
lines, and agrees with the per-query subcommands:

  $ printf '# twig and xpath forms of the same query\nopen_auction(bidder)\n//open_auction[bidder]\n\nopen_auction(bidder)\n' > queries.txt
  $ treelattice batch --xml auction.xml -k 3 --queries queries.txt 2>/dev/null
  query                   estimate
  ----------------------  --------
  open_auction(bidder)      120.00
  //open_auction[bidder]    120.00
  open_auction(bidder)      120.00
  $ treelattice batch --xml auction.xml -k 3 --queries queries.txt --format json 2>/dev/null
  {
    "schema_version": 1,
    "scheme": "recursive+voting",
    "queries": 3,
    "results": [
      {"query": "open_auction(bidder)", "estimate": 120},
      {"query": "//open_auction[bidder]", "estimate": 120},
      {"query": "open_auction(bidder)", "estimate": 120}
    ]
  }
  $ treelattice batch --xml auction.xml -k 3 --queries queries.txt 2>&1 >/dev/null | sed 's/[0-9.]* ms/X ms/'
  summary: built in X ms
  batch: 3 queries (1 plans compiled, 2 cache hits) in X ms across 1 domain(s)

A malformed line is diagnosed with its file position and skipped; the
good lines still estimate, and the exit code reports the failure:

  $ printf 'open_auction(bidder)\n# comment\nno_such_label(\nopen_auction(bidder)\n' > mixed.txt
  $ treelattice batch --xml auction.xml -k 3 --queries mixed.txt 2>errors.txt
  query                 estimate
  --------------------  --------
  open_auction(bidder)    120.00
  open_auction(bidder)    120.00
  [1]
  $ grep -E '^(mixed.txt:|batch: [0-9]+ malformed)' errors.txt
  mixed.txt:3: bad query "no_such_label(": syntax error at offset 14: expected a tag name
  batch: 1 malformed line(s) skipped

Under --strict the same input aborts at the first bad line, before any
estimates are printed:

  $ treelattice batch --xml auction.xml -k 3 --queries mixed.txt --strict 2>strict.txt
  [1]
  $ grep '^mixed.txt:' strict.txt
  mixed.txt:3: bad query "no_such_label(": syntax error at offset 14: expected a tag name

Queries on stdin diagnose as <stdin>:

  $ printf 'oops(\n' | treelattice batch --xml auction.xml -k 3 2>&1 >/dev/null | grep '^<stdin>'
  <stdin>:1: bad query "oops(": syntax error at offset 5: expected a tag name

The serving loop answers query batches from a file (blank line = batch
boundary), keeps an audit trail, replays sampled queries through the
exact oracle, and dumps the audit log as JSONL on shutdown.  Both query
forms hit the same canonical key, so the drift monitor at rate 1.0
samples one distinct key per batch and measures zero error on a
lattice-resident query:

  $ printf 'open_auction(bidder)\n//open_auction[bidder]\n\n# comment\nopen_auction(bidder)\n' > serve_q.txt
  $ treelattice serve --xml auction.xml -k 3 --queries serve_q.txt \
  >   --port-file port.txt --audit-out audit.jsonl --sample-rate 1.0 2>serve_err.txt | tr '\t' ' '
  open_auction(bidder) 120.00
  //open_auction[bidder] 120.00
  open_auction(bidder) 120.00
  $ grep -cE '^[0-9]+$' port.txt
  1
  $ wc -l < audit.jsonl
  2
  $ grep -c '"scheme":"recursive+voting"' audit.jsonl
  2
  $ grep -E 'serve: [0-9]+ queries' serve_err.txt
  serve: 3 queries in 2 batch(es), 2 audit record(s) retained
  $ grep '^serve: drift' serve_err.txt
  serve: drift: 2 sampled, window 2, rel error p50 0.0000 p90 0.0000 p99 0.0000, alarm ok (0 raised)

A final line without a trailing newline is still a query, not lost
input: both batch and serve flush the pending batch at EOF.

  $ printf 'open_auction(bidder)' | treelattice batch --xml auction.xml -k 3 2>/dev/null
  query                 estimate
  --------------------  --------
  open_auction(bidder)    120.00
  $ printf 'open_auction(bidder)' | treelattice serve --xml auction.xml -k 3 2>serve_eof.txt | tr '\t' ' '
  open_auction(bidder) 120.00
  $ grep -E 'serve: [0-9]+ queries' serve_eof.txt
  serve: 1 queries in 1 batch(es), 1 audit record(s) retained

The registry serves several datasets side by side: NAME:query routes a
line, unprefixed lines go to the first dataset, and a "reload NAME PATH"
control line swaps in a new summary at a bumped epoch while estimates
keep flowing (auction.summary was mined from the same document, so the
reloaded answers are unchanged):

  $ printf '<shop><item><price/></item><item><price/></item><item/></shop>' > shop.xml
  $ printf 'd1:open_auction(bidder)\nd2:item(price)\nopen_auction(bidder)\n\nreload d1 auction.summary\nd1:open_auction(bidder)' > multi_q.txt
  $ treelattice serve --dataset d1=auction.xml --dataset d2=shop.xml -k 3 \
  >   --queries multi_q.txt 2>multi_err.txt | tr '\t' ' '
  d1:open_auction(bidder) 120.00
  d2:item(price) 2.00
  open_auction(bidder) 120.00
  d1:open_auction(bidder) 120.00
  $ grep -E '^serve: dataset' multi_err.txt | sed 's/([0-9]* entries) in [0-9.]* ms/(N entries)/'
  serve: dataset d1 ready at epoch 1 (N entries)
  serve: dataset d2 ready at epoch 2 (N entries)
  $ grep '^serve: reloaded' multi_err.txt | sed 's/([0-9]* entries)/(N entries)/'
  serve: reloaded d1 -> epoch 3 (N entries)
  $ grep -E 'serve: [0-9]+ queries' multi_err.txt
  serve: 4 queries in 2 batch(es), 2 audit record(s) retained

A reload from a corrupt file degrades gracefully — the error is
reported, the old epoch keeps serving, and the exit telemetry flags the
latched alarm:

  $ printf 'not a summary\n' > corrupt.summary
  $ printf 'open_auction(bidder)\n\nreload default corrupt.summary\nopen_auction(bidder)' > degrade_q.txt
  $ treelattice serve --xml auction.xml -k 3 --queries degrade_q.txt 2>degrade_err.txt | tr '\t' ' '
  open_auction(bidder) 120.00
  open_auction(bidder) 120.00
  $ grep -c '^serve: reload default failed:' degrade_err.txt
  1
  $ grep '(previous epoch keeps serving)' degrade_err.txt > /dev/null && echo degraded
  degraded
  $ grep '^serve: reload alarm' degrade_err.txt
  serve: reload alarm raised (a reload failed; old epochs kept serving)

Malformed --dataset specs are rejected eagerly — an empty NAME or an
empty PATH exits 2 before anything loads, instead of surfacing later as
a confusing load failure:

  $ treelattice serve --dataset d1= -k 3
  serve: bad --dataset "d1=" (expected NAME=PATH)
  [2]
  $ treelattice serve --dataset =auction.xml -k 3
  serve: bad --dataset "=auction.xml" (expected NAME=PATH)
  [2]
  $ treelattice serve --dataset no-equals-sign -k 3
  serve: bad --dataset "no-equals-sign" (expected NAME=PATH)
  [2]

Unknown experiment ids fail loudly:

  $ treelattice exp --quick no-such-experiment 2>&1 | tail -1
  unknown experiment "no-such-experiment" (try --list)

The experiment registry lists every reproduction artifact:

  $ treelattice exp --list | wc -l
  18
