(* Tests for the lattice summary and its serialization. *)

module Summary = Tl_lattice.Summary
module Summary_io = Tl_lattice.Summary_io
module Twig = Tl_twig.Twig
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

let shop () = Helpers.tree_of Helpers.shop_spec

let summary_of tree k = Summary.build ~k tree

(* --- construction and lookup --------------------------------------------- *)

let test_build_and_find () =
  let tree = shop () in
  let s = summary_of tree 3 in
  Alcotest.(check int) "depth" 3 (Summary.k s);
  Alcotest.(check bool) "complete" true (Summary.is_complete s);
  let q = Helpers.twig_of_string tree "laptop(brand,price)" in
  Alcotest.(check (option int)) "stored count" (Some 2) (Summary.find s q);
  Alcotest.(check (option int)) "by encoding" (Some 2) (Summary.find_encoded s (Twig.encode q));
  Alcotest.(check bool) "mem" true (Summary.mem s q);
  let absent = Helpers.twig_of_string tree "desktop(price)" in
  Alcotest.(check (option int)) "non-occurring pattern" None (Summary.find s absent)

let test_find_canonicalizes () =
  let tree = shop () in
  let s = summary_of tree 3 in
  let brand = Option.get (Data_tree.label_of_string tree "brand") in
  let price = Option.get (Data_tree.label_of_string tree "price") in
  let laptop = Option.get (Data_tree.label_of_string tree "laptop") in
  let reversed = Twig.node laptop [ Twig.leaf price; Twig.leaf brand ] in
  Alcotest.(check (option int)) "order-insensitive lookup" (Some 2) (Summary.find s reversed)

let test_entries_and_levels () =
  let tree = shop () in
  let s = summary_of tree 3 in
  let per_level = Summary.patterns_per_level s in
  Alcotest.(check int) "level array size" 3 (Array.length per_level);
  Alcotest.(check int) "level 1 = labels" (Data_tree.label_count tree) per_level.(0);
  Alcotest.(check int) "entries = sum of levels" (Array.fold_left ( + ) 0 per_level)
    (Summary.entries s);
  List.iter
    (fun (tw, c) ->
      Alcotest.(check int) "level query size" 2 (Twig.size tw);
      Alcotest.(check bool) "positive" true (c > 0))
    (Summary.level s 2)

let test_of_patterns_validation () =
  Alcotest.check_raises "k too small" (Invalid_argument "Summary.of_patterns: k must be >= 2")
    (fun () -> ignore (Summary.of_patterns ~k:1 ~complete:true []));
  Alcotest.check_raises "oversized pattern"
    (Invalid_argument "Summary.of_patterns: pattern larger than k") (fun () ->
      ignore (Summary.of_patterns ~k:2 ~complete:true [ (Twig.of_path [ 1; 2; 3 ], 1) ]));
  Alcotest.check_raises "negative count" (Invalid_argument "Summary.of_patterns: negative count")
    (fun () -> ignore (Summary.of_patterns ~k:2 ~complete:true [ (Twig.leaf 0, -1) ]))

let test_memory_accounting () =
  let s1 = Summary.of_patterns ~k:2 ~complete:true [ (Twig.leaf 0, 5) ] in
  let s2 = Summary.of_patterns ~k:2 ~complete:true [ (Twig.leaf 0, 5); (Twig.of_path [ 0; 1 ], 2) ] in
  Alcotest.(check bool) "positive" true (Summary.memory_bytes s1 > 0);
  Alcotest.(check bool) "monotone in entries" true
    (Summary.memory_bytes s2 > Summary.memory_bytes s1)

let test_restrict () =
  let tree = shop () in
  let s = summary_of tree 3 in
  let pruned = Summary.restrict s ~keep:(fun tw _ -> Twig.size tw <> 3) in
  Alcotest.(check bool) "marked incomplete" false (Summary.is_complete pruned);
  Alcotest.(check int) "level 3 dropped" 0 (List.length (Summary.level pruned 3));
  Alcotest.(check int) "levels 1-2 kept"
    (List.length (Summary.level s 1) + List.length (Summary.level s 2))
    (List.length (Summary.level pruned 1) + List.length (Summary.level pruned 2));
  (* Levels 1-2 survive even when keep rejects everything. *)
  let nothing = Summary.restrict s ~keep:(fun _ _ -> false) in
  Alcotest.(check bool) "level 1 protected" true (List.length (Summary.level nothing 1) > 0);
  let all = Summary.restrict s ~keep:(fun _ _ -> true) in
  Alcotest.(check bool) "keep-all stays complete" true (Summary.is_complete all)

(* --- merge (incremental maintenance) --------------------------------------- *)

let test_merge_equals_forest_mining () =
  (* Mining two documents separately and merging must match per-document
     count sums, since both trees share one label space here. *)
  let tree = shop () in
  let s = summary_of tree 3 in
  let merged = Summary.merge s s in
  Summary.fold
    (fun tw c () ->
      Alcotest.(check (option int)) (Twig.encode tw) (Some (2 * c)) (Summary.find merged tw))
    s ();
  Alcotest.(check int) "same pattern set" (Summary.entries s) (Summary.entries merged);
  Alcotest.(check bool) "complete preserved" true (Summary.is_complete merged)

let test_merge_disjoint_patterns () =
  let a = Summary.of_patterns ~k:2 ~complete:true [ (Twig.leaf 0, 3) ] in
  let b = Summary.of_patterns ~k:2 ~complete:true [ (Twig.leaf 1, 4) ] in
  let m = Summary.merge a b in
  Alcotest.(check (option int)) "left kept" (Some 3) (Summary.find m (Twig.leaf 0));
  Alcotest.(check (option int)) "right kept" (Some 4) (Summary.find m (Twig.leaf 1))

let test_merge_depth_mismatch () =
  let a = Summary.of_patterns ~k:2 ~complete:true [] in
  let b = Summary.of_patterns ~k:3 ~complete:true [] in
  Alcotest.check_raises "depth mismatch" (Invalid_argument "Summary.merge: lattice depths differ")
    (fun () -> ignore (Summary.merge a b))

(* --- serialization ----------------------------------------------------------- *)

let test_io_roundtrip () =
  let tree = shop () in
  let s = summary_of tree 3 in
  let names = Data_tree.label_names tree in
  let text = Summary_io.save ~names s in
  let loaded, loaded_names = Summary_io.load text in
  Alcotest.(check int) "k preserved" (Summary.k s) (Summary.k loaded);
  Alcotest.(check bool) "complete preserved" (Summary.is_complete s) (Summary.is_complete loaded);
  Alcotest.(check int) "entries preserved" (Summary.entries s) (Summary.entries loaded);
  Alcotest.(check (array string)) "names preserved" names loaded_names;
  Summary.fold
    (fun tw c () -> Alcotest.(check (option int)) (Twig.encode tw) (Some c) (Summary.find loaded tw))
    s ()

let test_io_remap () =
  (* Reload into a shifted label space. *)
  let s = Summary.of_patterns ~k:2 ~complete:true [ (Twig.leaf 0, 7); (Twig.of_path [ 0; 1 ], 2) ] in
  let text = Summary_io.save ~names:[| "x"; "y" |] s in
  let intern = function "x" -> 10 | "y" -> 11 | _ -> -1 in
  let loaded, _ = Summary_io.load ~intern text in
  Alcotest.(check (option int)) "remapped leaf" (Some 7) (Summary.find loaded (Twig.leaf 10));
  Alcotest.(check (option int)) "remapped path" (Some 2) (Summary.find loaded (Twig.of_path [ 10; 11 ]))

let test_io_file_roundtrip () =
  let tree = shop () in
  let s = summary_of tree 2 in
  let path = Filename.temp_file "tl_summary" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Summary_io.save_file ~names:(Data_tree.label_names tree) path s;
      let loaded, _ = Summary_io.load_file path in
      Alcotest.(check int) "entries" (Summary.entries s) (Summary.entries loaded))

let test_io_format_errors () =
  let expect_format_error text =
    match Summary_io.load text with
    | exception Summary_io.Format_error _ -> ()
    | _ -> Alcotest.failf "expected format error for %S" text
  in
  expect_format_error "garbage";
  expect_format_error "treelattice-summary v1 k=x complete=true labels=0\n";
  expect_format_error "treelattice-summary v1 k=2 complete=perhaps labels=0\n";
  expect_format_error "treelattice-summary v1 k=2 complete=true labels=5\na\n";
  expect_format_error "treelattice-summary v1 k=2 complete=true labels=1\na\nnot-an-entry\n";
  expect_format_error "treelattice-summary v1 k=2 complete=true labels=1\na\n0(1 oops\n"

let test_io_header_validation () =
  (* Seed regressions: k=0 deferred failure to Summary.of_patterns with a
     confusing message (or, for an empty summary, loaded "successfully");
     a negative label count mis-reported as a truncated label block. *)
  let expect_message fragment text =
    match Summary_io.load text with
    | exception Summary_io.Format_error msg ->
      if not (Tl_util.Prelude.string_contains ~needle:fragment msg) then
        Alcotest.failf "error %S does not mention %S" msg fragment
    | _ -> Alcotest.failf "expected format error for %S" text
  in
  expect_message "k=0" "treelattice-summary v1 k=0 complete=true labels=0\n";
  expect_message "k=1" "treelattice-summary v1 k=1 complete=true labels=1\na\n0 3\n";
  expect_message "labels=-1" "treelattice-summary v1 k=2 complete=true labels=-1\n";
  expect_message "labels=-5" "treelattice-summary v1 k=2 complete=true labels=-5\na\n0 3\n"

let test_io_duplicate_entries () =
  let expect_duplicate text =
    match Summary_io.load text with
    | exception Summary_io.Format_error msg ->
      if not (Tl_util.Prelude.string_contains ~needle:"duplicate" msg) then
        Alcotest.failf "error %S does not mention the duplicate" msg
    | _ -> Alcotest.failf "expected duplicate-entry error for %S" text
  in
  (* Verbatim duplicate (seed: silently last-wins). *)
  expect_duplicate "treelattice-summary v1 k=2 complete=true labels=2\na\nb\n0 3\n0 4\n";
  (* Same canonical pattern spelled under two sibling orders. *)
  expect_duplicate "treelattice-summary v1 k=3 complete=true labels=3\na\nb\nc\n0(1,2) 3\n0(2,1) 5\n"

let test_memory_bytes_tracks_serialized_size () =
  (* The accounting should stay within a constant factor of the serialized
     text — the seed charged only [key length + 8] per entry, an
     order-of-magnitude undercount of the real heap footprint. *)
  let tree = shop () in
  let s = summary_of tree 3 in
  let serialized = String.length (Summary_io.save ~names:(Data_tree.label_names tree) s) in
  let accounted = Summary.memory_bytes s in
  Alcotest.(check bool)
    (Printf.sprintf "heap (%d) >= serialized (%d)" accounted serialized)
    true (accounted >= serialized);
  Alcotest.(check bool)
    (Printf.sprintf "heap (%d) <= 64 * serialized (%d)" accounted serialized)
    true (accounted <= 64 * serialized)

let test_build_validation () =
  let tree = shop () in
  Alcotest.check_raises "k >= 2" (Invalid_argument "Summary.build: k must be >= 2") (fun () ->
      ignore (Summary.build ~k:1 tree))

(* --- properties ------------------------------------------------------------------ *)

(* Building across a domain pool must yield byte-identical summaries: same
   serialized bytes, entry for entry. *)
let prop_parallel_build_byte_identical =
  Helpers.qcheck_case ~name:"build ?pool serializes byte-identically" ~count:30
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      Tl_util.Pool.with_pool ~domains:3 (fun pool ->
          let names = Data_tree.label_names tree in
          let sequential = Summary_io.save ~names (Summary.build ~k:3 tree) in
          let parallel = Summary_io.save ~names (Summary.build ~pool ~k:3 tree) in
          String.equal sequential parallel))

let prop_io_roundtrip =
  Helpers.qcheck_case ~name:"save/load roundtrip on random trees" ~count:40
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let s = Summary.build ~k:3 tree in
      let names = Data_tree.label_names tree in
      let loaded, _ = Summary_io.load (Summary_io.save ~names s) in
      Summary.entries s = Summary.entries loaded
      && Summary.fold (fun tw c acc -> acc && Summary.find loaded tw = Some c) s true)

let () =
  Alcotest.run "lattice"
    [
      ( "summary",
        [
          Alcotest.test_case "build/find" `Quick test_build_and_find;
          Alcotest.test_case "canonicalizing lookup" `Quick test_find_canonicalizes;
          Alcotest.test_case "entries and levels" `Quick test_entries_and_levels;
          Alcotest.test_case "of_patterns validation" `Quick test_of_patterns_validation;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "build validation" `Quick test_build_validation;
          prop_parallel_build_byte_identical;
        ] );
      ( "merge",
        [
          Alcotest.test_case "merge doubles counts" `Quick test_merge_equals_forest_mining;
          Alcotest.test_case "disjoint patterns" `Quick test_merge_disjoint_patterns;
          Alcotest.test_case "depth mismatch" `Quick test_merge_depth_mismatch;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "remap" `Quick test_io_remap;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "format errors" `Quick test_io_format_errors;
          Alcotest.test_case "header validation" `Quick test_io_header_validation;
          Alcotest.test_case "duplicate entries" `Quick test_io_duplicate_entries;
          Alcotest.test_case "memory accounting vs serialized size" `Quick
            test_memory_bytes_tracks_serialized_size;
          prop_io_roundtrip;
        ] );
    ]
