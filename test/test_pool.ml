(* Tests for the domain pool: deterministic ordering, per-participant
   state, exception propagation, and the single-domain sequential
   fallback. *)

module Pool = Tl_util.Pool

let int_array = Alcotest.(array int)

let squares n = Array.init n (fun i -> i * i)

let test_ordering_matches_sequential () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 500 (fun i -> i) in
      let expected = Array.map (fun i -> i * i) input in
      (* Repeated runs: scheduling must never leak into result order. *)
      for _ = 1 to 5 do
        Alcotest.check int_array "parallel = sequential" expected
          (Pool.parallel_map pool (fun i -> i * i) input)
      done)

let test_empty_and_singleton () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check int_array "empty" [||] (Pool.parallel_map pool (fun i -> i * i) [||]);
      Alcotest.check int_array "singleton" [| 49 |] (Pool.parallel_map pool (fun i -> i * i) [| 7 |]))

let test_single_domain_fallback () =
  let pool = Pool.create ~domains:1 () in
  Alcotest.(check int) "clamped to 1" 1 (Pool.domains pool);
  let inits = Atomic.make 0 in
  let result =
    Pool.parallel_chunked_map pool
      ~init:(fun () ->
        Atomic.incr inits;
        ref 0)
      (fun seen i ->
        incr seen;
        i * i)
      (Array.init 100 (fun i -> i))
  in
  Alcotest.check int_array "sequential result" (squares 100) result;
  Alcotest.(check int) "init called exactly once" 1 (Atomic.get inits);
  Pool.shutdown pool

let test_domains_clamped () =
  Pool.with_pool ~domains:0 (fun pool -> Alcotest.(check int) "at least 1" 1 (Pool.domains pool))

let test_chunked_per_participant_state () =
  Pool.with_pool ~domains:4 (fun pool ->
      let inits = Atomic.make 0 in
      let result =
        Pool.parallel_chunked_map pool ~chunk_size:8
          ~init:(fun () ->
            Atomic.incr inits;
            Buffer.create 4)
          (fun buf i ->
            (* Exercise the private state: contents never cross domains. *)
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int i);
            int_of_string (Buffer.contents buf) * i)
          (Array.init 200 (fun i -> i))
      in
      Alcotest.check int_array "chunked result in order" (squares 200) result;
      let n = Atomic.get inits in
      Alcotest.(check bool) "init per participant" true (n >= 1 && n <= Pool.domains pool))

let test_exception_propagates () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.check_raises "raises the element's exception" (Failure "boom 137") (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun i -> if i = 137 then failwith "boom 137" else i)
               (Array.init 300 (fun i -> i))));
      (* The pool survives a failed map. *)
      Alcotest.check int_array "usable after exception" (squares 50)
        (Pool.parallel_map pool (fun i -> i * i) (Array.init 50 (fun i -> i))))

let test_reuse_across_many_maps () =
  Pool.with_pool ~domains:3 (fun pool ->
      for round = 1 to 20 do
        let n = 1 + ((round * 37) mod 97) in
        Alcotest.check int_array
          (Printf.sprintf "round %d" round)
          (squares n)
          (Pool.parallel_map pool (fun i -> i * i) (Array.init n (fun i -> i)))
      done)

let test_shutdown_idempotent_and_fenced () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown" (Invalid_argument "Pool: map on a shut-down pool")
    (fun () -> ignore (Pool.parallel_map pool Fun.id [| 1; 2; 3 |]))

let test_with_pool_returns_value () =
  Alcotest.(check int) "with_pool result" 42 (Pool.with_pool ~domains:2 (fun _ -> 42))

let test_default_domains_positive () =
  Alcotest.(check bool) "default >= 1" true (Pool.default_domains () >= 1)

let test_cost_hint_matches_sequential () =
  Pool.with_pool ~domains:3 (fun pool ->
      let input = Array.init 300 (fun i -> i) in
      (* Heavy skew: a handful of items dominate; non-positive hints must
         clamp rather than corrupt the chunk cuts. *)
      List.iter
        (fun cost ->
          Alcotest.check int_array "cost-chunked = sequential" (squares 300)
            (Pool.parallel_chunked_map pool ~cost ~init:(fun () -> ()) (fun () i -> i * i) input))
        [
          (fun i -> if i mod 100 = 0 then 10_000 else 1);
          (fun i -> i * i);
          (fun _ -> 0);
          (fun i -> -i);
        ])

let prop_cost_hints_never_change_results =
  Helpers.qcheck_case ~name:"any cost hint yields the sequential result" ~count:30
    QCheck2.Gen.(pair (int_range 0 120) (int_range 1 5))
    (fun (n, divisor) ->
      Pool.with_pool ~domains:3 (fun pool ->
          let input = Array.init n (fun i -> (i * 7919) mod 251) in
          Pool.parallel_chunked_map pool
            ~cost:(fun x -> x / divisor)
            ~init:(fun () -> ())
            (fun () x -> x + 1)
            input
          = Array.map (fun x -> x + 1) input))

(* The empty-input guard: no chunks exist, so none of the callbacks may
   run — in particular [cost] must not be consulted on the way to a
   [total = 0] division. *)
let test_chunked_empty_calls_nothing () =
  Pool.with_pool ~domains:3 (fun pool ->
      let inits = Atomic.make 0 and costs = Atomic.make 0 and apps = Atomic.make 0 in
      let init () =
        Atomic.incr inits;
        ()
      in
      let f () x =
        Atomic.incr apps;
        x * x
      in
      let cost _ =
        Atomic.incr costs;
        0
      in
      Alcotest.check int_array "empty without cost" [||] (Pool.parallel_chunked_map pool ~init f [||]);
      Alcotest.check int_array "empty with all-zero cost" [||]
        (Pool.parallel_chunked_map pool ~cost ~init f [||]);
      Alcotest.(check int) "init never called" 0 (Atomic.get inits);
      Alcotest.(check int) "cost never called" 0 (Atomic.get costs);
      Alcotest.(check int) "f never called" 0 (Atomic.get apps))

(* Arbitrary cost functions — random lookup tables mixing zero, negative
   and huge hints — must only ever shape chunk boundaries, never results,
   and must never divide by zero or cut an empty chunk. *)
let prop_arbitrary_cost_functions_are_hints_only =
  Helpers.qcheck_case ~name:"arbitrary cost tables yield the sequential result" ~count:40
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 8) (oneofl [ -1_000_000; -1; 0; 1; 7; 10_000; max_int / 4 ]))
        (int_range 0 150))
    (fun (table, n) ->
      Pool.with_pool ~domains:4 (fun pool ->
          let input = Array.init n (fun i -> (i * 6007) mod 509) in
          let cost x = table.(x mod Array.length table) in
          Pool.parallel_chunked_map pool ~cost ~init:(fun () -> ()) (fun () x -> x * 3) input
          = Array.map (fun x -> x * 3) input))

(* The work-size cutoff may only pick the path, never the answer: any
   cutoff (engaged, disengaged, absurd, non-positive) yields exactly the
   sequential result. *)
let prop_cutoff_never_changes_results =
  Helpers.qcheck_case ~name:"any cutoff yields the sequential result" ~count:40
    QCheck2.Gen.(pair (int_range (-5) 200) (int_range 0 120))
    (fun (cutoff, n) ->
      Pool.with_pool ~domains:3 (fun pool ->
          let input = Array.init n (fun i -> (i * 7919) mod 251) in
          Pool.parallel_chunked_map pool ~cutoff ~init:(fun () -> ()) (fun () x -> x * 5) input
          = Array.map (fun x -> x * 5) input
          && Pool.parallel_map pool ~cutoff (fun x -> x * 5) input
             = Array.map (fun x -> x * 5) input))

let test_cutoff_small_input_stays_on_caller () =
  Pool.with_pool ~domains:4 (fun pool ->
      let caller = Domain.self () in
      let on_caller = Atomic.make true in
      let check () = if Domain.self () <> caller then Atomic.set on_caller false in
      let run cutoff n =
        ignore
          (Pool.parallel_chunked_map pool ~cutoff
             ~init:(fun () -> ())
             (fun () x ->
               check ();
               x)
             (Array.init n Fun.id))
      in
      (* Below the cutoff every element runs on the calling domain. *)
      Atomic.set on_caller true;
      run 64 63;
      Alcotest.(check bool) "below cutoff: sequential" true (Atomic.get on_caller))

(* Maps issued concurrently from several threads of the creating domain
   serialize on the internal lock: all complete, all with the sequential
   result — the shape of the TCP server's worker threads sharing the
   evaluation pool with the CLI loop. *)
let test_concurrent_maps_from_threads () =
  Pool.with_pool ~domains:3 (fun pool ->
      let failures = Atomic.make 0 in
      let body tid =
        for round = 1 to 10 do
          let n = 20 + ((tid * 13 + round * 7) mod 50) in
          let input = Array.init n (fun i -> i + tid) in
          let got = Pool.parallel_map pool (fun x -> (x * x) + 1) input in
          if got <> Array.map (fun x -> (x * x) + 1) input then Atomic.incr failures
        done
      in
      let threads = List.init 4 (fun tid -> Thread.create body tid) in
      List.iter Thread.join threads;
      Alcotest.(check int) "all concurrent maps correct" 0 (Atomic.get failures))

let prop_chunk_sizes_never_change_results =
  Helpers.qcheck_case ~name:"any chunk size yields the sequential result" ~count:30
    QCheck2.Gen.(pair (int_range 1 17) (int_range 0 120))
    (fun (chunk_size, n) ->
      Pool.with_pool ~domains:3 (fun pool ->
          let input = Array.init n (fun i -> (i * 7919) mod 251) in
          Pool.parallel_chunked_map pool ~chunk_size ~init:(fun () -> ()) (fun () x -> x + 1) input
          = Array.map (fun x -> x + 1) input))

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "ordering matches sequential" `Quick test_ordering_matches_sequential;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "single-domain fallback" `Quick test_single_domain_fallback;
          Alcotest.test_case "domains clamped" `Quick test_domains_clamped;
          Alcotest.test_case "per-participant state" `Quick test_chunked_per_participant_state;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "reuse across maps" `Quick test_reuse_across_many_maps;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent_and_fenced;
          Alcotest.test_case "with_pool value" `Quick test_with_pool_returns_value;
          Alcotest.test_case "default domains" `Quick test_default_domains_positive;
          Alcotest.test_case "cost hints" `Quick test_cost_hint_matches_sequential;
          Alcotest.test_case "empty chunked input calls nothing" `Quick
            test_chunked_empty_calls_nothing;
          Alcotest.test_case "cutoff keeps small inputs on the caller" `Quick
            test_cutoff_small_input_stays_on_caller;
          Alcotest.test_case "concurrent maps from threads" `Quick test_concurrent_maps_from_threads;
          prop_chunk_sizes_never_change_results;
          prop_cost_hints_never_change_results;
          prop_arbitrary_cost_functions_are_hints_only;
          prop_cutoff_never_changes_results;
        ] );
    ]
