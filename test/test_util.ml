(* Unit and property tests for the utility substrate. *)

module Xorshift = Tl_util.Xorshift
module Stats = Tl_util.Stats
module Interner = Tl_util.Interner
module Prelude = Tl_util.Prelude
module Table = Tl_util.Table
module Timer = Tl_util.Timer

let check_float = Alcotest.(check (float 1e-9))

(* --- Xorshift ------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Xorshift.create 42 and b = Xorshift.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xorshift.int64 a) (Xorshift.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Xorshift.create 1 and b = Xorshift.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Xorshift.int64 a) (Xorshift.int64 b)) then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_copy_independent () =
  let a = Xorshift.create 9 in
  let b = Xorshift.copy a in
  let from_a = Xorshift.int64 a in
  let from_b = Xorshift.int64 b in
  Alcotest.(check int64) "copy continues the same stream" from_a from_b;
  ignore (Xorshift.int64 a);
  let a3 = Xorshift.int64 a in
  let b2 = Xorshift.int64 b in
  Alcotest.(check bool) "streams advance independently" false (Int64.equal a3 b2 && false)

let test_rng_split_diverges () =
  let parent = Xorshift.create 5 in
  let child = Xorshift.split parent in
  let collisions = ref 0 in
  for _ = 1 to 32 do
    if Int64.equal (Xorshift.int64 parent) (Xorshift.int64 child) then incr collisions
  done;
  Alcotest.(check bool) "split stream differs" true (!collisions < 4)

let test_int_bounds () =
  let rng = Xorshift.create 3 in
  for _ = 1 to 1000 do
    let v = Xorshift.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound rejected" (Invalid_argument "Xorshift.int: bound must be positive")
    (fun () -> ignore (Xorshift.int rng 0))

let test_int_covers_range () =
  let rng = Xorshift.create 4 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Xorshift.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_int_in () =
  let rng = Xorshift.create 8 in
  for _ = 1 to 200 do
    let v = Xorshift.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done;
  Alcotest.(check int) "singleton range" 5 (Xorshift.int_in rng 5 5)

let test_float_bounds () =
  let rng = Xorshift.create 11 in
  for _ = 1 to 200 do
    let v = Xorshift.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_extremes () =
  let rng = Xorshift.create 12 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Xorshift.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0 always false" false (Xorshift.bernoulli rng 0.0)
  done

let test_geometric_mean_close () =
  let rng = Xorshift.create 13 in
  let p = 0.5 in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Xorshift.geometric rng p
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* Expected (1-p)/p = 1.0. *)
  Alcotest.(check bool) "geometric mean near 1.0" true (Float.abs (mean -. 1.0) < 0.1)

let test_geometric_p1 () =
  let rng = Xorshift.create 14 in
  Alcotest.(check int) "p=1 is always 0" 0 (Xorshift.geometric rng 1.0)

let test_zipf_bounds_and_skew () =
  let rng = Xorshift.create 15 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let v = Xorshift.zipf rng ~n:10 ~s:1.2 in
    Alcotest.(check bool) "in [1,10]" true (v >= 1 && v <= 10);
    counts.(v - 1) <- counts.(v - 1) + 1
  done;
  Alcotest.(check bool) "rank 1 most frequent" true (counts.(0) > counts.(4));
  Alcotest.(check bool) "rank 1 dominates rank 10" true (counts.(0) > 3 * counts.(9))

let test_zipf_n1 () =
  let rng = Xorshift.create 16 in
  Alcotest.(check int) "n=1 returns 1" 1 (Xorshift.zipf rng ~n:1 ~s:2.0)

let test_pick_weighted () =
  let rng = Xorshift.create 17 in
  let choices = [| ("heavy", 99.0); ("light", 1.0) |] in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if String.equal (Xorshift.pick_weighted rng choices) "heavy" then incr heavy
  done;
  Alcotest.(check bool) "weights respected" true (!heavy > 930);
  Alcotest.check_raises "all-zero weights rejected"
    (Invalid_argument "Xorshift.pick_weighted: weights sum to zero") (fun () ->
      ignore (Xorshift.pick_weighted rng [| ("a", 0.0) |]))

let test_shuffle_is_permutation () =
  let rng = Xorshift.create 18 in
  let arr = Array.init 20 Fun.id in
  Xorshift.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Xorshift.create 19 in
  let arr = Array.init 10 Fun.id in
  let sample = Xorshift.sample_without_replacement rng 4 arr in
  Alcotest.(check int) "requested size" 4 (Array.length sample);
  let distinct = List.sort_uniq compare (Array.to_list sample) in
  Alcotest.(check int) "distinct" 4 (List.length distinct);
  let all = Xorshift.sample_without_replacement rng 99 arr in
  Alcotest.(check int) "capped at population" 10 (Array.length all)

(* --- Stats ---------------------------------------------------------------- *)

let test_mean_variance () =
  check_float "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  check_float "empty mean" 0.0 (Stats.mean [||]);
  check_float "variance" (2.0 /. 3.0) (Stats.variance [| 1.0; 2.0; 3.0 |]);
  check_float "singleton variance" 0.0 (Stats.variance [| 5.0 |]);
  check_float "stddev" (sqrt (2.0 /. 3.0)) (Stats.stddev [| 1.0; 2.0; 3.0 |])

let test_min_max_median () =
  check_float "min" 1.0 (Stats.minimum [| 3.0; 1.0; 2.0 |]);
  check_float "max" 3.0 (Stats.maximum [| 3.0; 1.0; 2.0 |]);
  check_float "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.check_raises "empty min" (Invalid_argument "Stats.minimum: empty sample") (fun () ->
      ignore (Stats.minimum [||]))

let test_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p10" 10.0 (Stats.percentile xs 10.0);
  check_float "p100" 100.0 (Stats.percentile xs 100.0);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.percentile: p out of [0, 100]")
    (fun () -> ignore (Stats.percentile xs 101.0))

let test_geometric_mean () =
  check_float "gm of 1,4" 2.0 (Stats.geometric_mean [| 1.0; 4.0 |]);
  check_float "empty gm" 0.0 (Stats.geometric_mean [||]);
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Stats.geometric_mean: non-positive sample") (fun () ->
      ignore (Stats.geometric_mean [| 1.0; 0.0 |]))

let test_cdf_points () =
  let pts = Stats.cdf_points [| 2.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "distinct values" 3 (List.length pts);
  let values = List.map fst pts in
  Alcotest.(check (list (float 1e-9))) "sorted values" [ 1.0; 2.0; 3.0 ] values;
  let fractions = List.map snd pts in
  Alcotest.(check (list (float 1e-9))) "cumulative fractions" [ 0.25; 0.75; 1.0 ] fractions

let test_cdf_at () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "below all" 0.0 (Stats.cdf_at xs 0.5);
  check_float "half" 0.5 (Stats.cdf_at xs 2.0);
  check_float "above all" 1.0 (Stats.cdf_at xs 10.0);
  check_float "empty" 0.0 (Stats.cdf_at [||] 1.0)

let test_histogram () =
  let counts = Stats.histogram ~buckets:[| 1.0; 2.0; 3.0 |] [| 0.5; 1.5; 2.5; 99.0 |] in
  Alcotest.(check (array int)) "bucketed" [| 1; 1; 2 |] counts

(* --- Interner -------------------------------------------------------------- *)

let test_interner_roundtrip () =
  let t = Interner.create () in
  let a = Interner.intern t "alpha" in
  let b = Interner.intern t "beta" in
  Alcotest.(check int) "first id" 0 a;
  Alcotest.(check int) "second id" 1 b;
  Alcotest.(check int) "re-intern stable" a (Interner.intern t "alpha");
  Alcotest.(check string) "name back" "beta" (Interner.name t b);
  Alcotest.(check (option int)) "find known" (Some 0) (Interner.find t "alpha");
  Alcotest.(check (option int)) "find unknown" None (Interner.find t "gamma");
  Alcotest.(check int) "size" 2 (Interner.size t)

let test_interner_growth () =
  let t = Interner.create () in
  for i = 0 to 199 do
    Alcotest.(check int) "dense ids" i (Interner.intern t (Printf.sprintf "tag%d" i))
  done;
  Alcotest.(check int) "size after growth" 200 (Interner.size t);
  Alcotest.(check string) "name after growth" "tag150" (Interner.name t 150);
  Alcotest.(check int) "names array" 200 (Array.length (Interner.names t))

let test_interner_copy () =
  let t = Interner.create () in
  ignore (Interner.intern t "x");
  let c = Interner.copy t in
  ignore (Interner.intern c "y");
  Alcotest.(check int) "original unchanged" 1 (Interner.size t);
  Alcotest.(check int) "copy extended" 2 (Interner.size c)

let test_interner_bad_id () =
  let t = Interner.create () in
  Alcotest.check_raises "unknown id" (Invalid_argument "Interner.name: unknown id 0") (fun () ->
      ignore (Interner.name t 0))

(* --- Prelude ---------------------------------------------------------------- *)

let test_list_remove_at () =
  Alcotest.(check (list int)) "middle" [ 1; 3 ] (Prelude.list_remove_at 1 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "head" [ 2; 3 ] (Prelude.list_remove_at 0 [ 1; 2; 3 ]);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Prelude.list_remove_at: index out of bounds") (fun () ->
      ignore (Prelude.list_remove_at 3 [ 1; 2; 3 ]))

let test_list_insert_sorted () =
  Alcotest.(check (list int)) "insert" [ 1; 2; 3 ]
    (Prelude.list_insert_sorted ~cmp:compare 2 [ 1; 3 ]);
  Alcotest.(check (list int)) "insert front" [ 0; 1 ] (Prelude.list_insert_sorted ~cmp:compare 0 [ 1 ]);
  Alcotest.(check (list int)) "insert back" [ 1; 9 ] (Prelude.list_insert_sorted ~cmp:compare 9 [ 1 ])

let test_list_take_unique () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Prelude.list_take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1 ] (Prelude.list_take 5 [ 1 ]);
  Alcotest.(check (list int)) "unique" [ 1; 2; 3 ] (Prelude.list_unique ~cmp:compare [ 3; 1; 2; 3; 1 ])

let test_misc () =
  check_float "sum" 6.0 (Prelude.sum_floats [ 1.0; 2.0; 3.0 ]);
  check_float "round_to" 3.14 (Prelude.round_to 2 3.14159);
  Alcotest.(check string) "bytes" "512 B" (Prelude.human_bytes 512);
  Alcotest.(check string) "kb" "2.0 KB" (Prelude.human_bytes 2048);
  Alcotest.(check string) "mb" "3.0 MB" (Prelude.human_bytes (3 * 1024 * 1024));
  Alcotest.(check int) "clamp low" 0 (Prelude.clamp ~lo:0 ~hi:9 (-4));
  Alcotest.(check int) "clamp high" 9 (Prelude.clamp ~lo:0 ~hi:9 99);
  Alcotest.(check int) "clamp pass" 5 (Prelude.clamp ~lo:0 ~hi:9 5)

(* --- Table ------------------------------------------------------------------- *)

let test_table_render () =
  let out = Table.render ~header:[ "name"; "value" ] [ [ "x"; "10" ]; [ "longer"; "2" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  Alcotest.(check bool) "right-aligned numbers" true
    (String.length (List.nth lines 2) = String.length (List.nth lines 3))

let test_table_short_rows_padded () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_bad_aligns () =
  Alcotest.check_raises "aligns mismatch" (Invalid_argument "Table.render: aligns length mismatch")
    (fun () -> ignore (Table.render ~aligns:[ Table.Left ] ~header:[ "a"; "b" ] []))

let test_table_cells () =
  Alcotest.(check string) "float cell" "3.14" (Table.float_cell 3.14159);
  Alcotest.(check string) "float cell decimals" "3.1416" (Table.float_cell ~decimals:4 3.14159);
  Alcotest.(check string) "int cell" "42" (Table.int_cell 42)

(* --- Timer -------------------------------------------------------------------- *)

let test_timer () =
  let value, elapsed = Timer.time (fun () -> 42) in
  Alcotest.(check int) "value preserved" 42 value;
  Alcotest.(check bool) "non-negative" true (elapsed >= 0.0);
  let mean = Timer.mean_ms ~repeats:3 (fun () -> ()) in
  Alcotest.(check bool) "mean non-negative" true (mean >= 0.0);
  Alcotest.check_raises "bad repeats" (Invalid_argument "Timer.mean_ms: repeats must be positive")
    (fun () -> ignore (Timer.mean_ms ~repeats:0 (fun () -> ())))

(* --- properties ------------------------------------------------------------------ *)

let prop_percentile_bounded =
  Helpers.qcheck_case ~name:"percentile stays within sample bounds"
    QCheck2.Gen.(pair (array_size (int_range 1 50) (float_bound_inclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      v >= Stats.minimum xs && v <= Stats.maximum xs)

let prop_cdf_monotone =
  Helpers.qcheck_case ~name:"cdf_points fractions are monotone and end at 1"
    QCheck2.Gen.(array_size (int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let pts = Stats.cdf_points xs in
      let fractions = List.map snd pts in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone fractions
      && Float.abs (List.fold_left (fun _ f -> f) 0.0 fractions -. 1.0) < 1e-9)

let prop_shuffle_permutation =
  Helpers.qcheck_case ~name:"shuffle preserves the multiset"
    QCheck2.Gen.(pair small_int (array_size (int_range 0 30) small_int))
    (fun (seed, arr) ->
      let rng = Xorshift.create seed in
      let copy = Array.copy arr in
      Xorshift.shuffle rng copy;
      Array.sort compare copy;
      let original = Array.copy arr in
      Array.sort compare original;
      copy = original)

(* --- Lru ----------------------------------------------------------------- *)

module Lru_int = Tl_util.Lru.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let test_lru_basic_and_eviction () =
  let c = Lru_int.create ~capacity:2 in
  Lru_int.add c 1 "a";
  Lru_int.add c 2 "b";
  Alcotest.(check (option string)) "find 1" (Some "a") (Lru_int.find c 1);
  (* 2 is now least recent; inserting 3 must evict it. *)
  Lru_int.add c 3 "c";
  Alcotest.(check bool) "2 evicted" false (Lru_int.mem c 2);
  Alcotest.(check bool) "1 survived" true (Lru_int.mem c 1);
  Alcotest.(check int) "size bounded" 2 (Lru_int.size c);
  let s = Lru_int.stats c in
  Alcotest.(check int) "hits" 1 s.Lru_int.hits;
  Alcotest.(check int) "evictions" 1 s.Lru_int.evictions;
  Alcotest.(check (option string)) "miss" None (Lru_int.find c 2);
  Alcotest.(check int) "misses" 1 (Lru_int.stats c).Lru_int.misses

let test_lru_replace_remove_clear () =
  let c = Lru_int.create ~capacity:3 in
  Lru_int.add c 1 "a";
  Lru_int.add c 1 "a'";
  Alcotest.(check int) "replace keeps one entry" 1 (Lru_int.size c);
  Alcotest.(check (option string)) "peek sees replacement" (Some "a'") (Lru_int.peek c 1);
  Lru_int.remove c 1;
  Alcotest.(check int) "removed" 0 (Lru_int.size c);
  Lru_int.remove c 1;
  Lru_int.add c 2 "b";
  Lru_int.add c 3 "c";
  Alcotest.(check (list int)) "fold most-recent-first" [ 3; 2 ]
    (List.rev (Lru_int.fold (fun k _ acc -> k :: acc) c []));
  Lru_int.clear c;
  Alcotest.(check int) "cleared" 0 (Lru_int.size c);
  Alcotest.check_raises "capacity validated" (Invalid_argument "Lru.create: capacity must be >= 1")
    (fun () -> ignore (Lru_int.create ~capacity:0))

let test_lru_validate () =
  let c = Lru_int.create ~capacity:3 in
  Alcotest.(check bool) "empty is valid" true (Lru_int.validate c = Ok ());
  Lru_int.add c 1 "a";
  Lru_int.add c 2 "b";
  Lru_int.add c 3 "c";
  ignore (Lru_int.find c 1);
  Lru_int.add c 4 "d";
  Lru_int.remove c 3;
  Alcotest.(check bool) "valid after add/find/evict/remove" true (Lru_int.validate c = Ok ());
  Lru_int.clear c;
  Alcotest.(check bool) "valid after clear" true (Lru_int.validate c = Ok ())

(* Model-based: the intrusive list must agree with a naive reference LRU
   (assoc list, most recent first) under arbitrary add/find/remove mixes. *)
let prop_lru_matches_reference_model =
  Helpers.qcheck_case ~name:"lru agrees with a naive reference model" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 5)
        (list_size (int_range 0 60) (pair (int_range 0 2) (int_range 0 9))))
    (fun (capacity, ops) ->
      let c = Lru_int.create ~capacity in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun (op, key) ->
          match op with
          | 0 ->
            let expected =
              match List.assoc_opt key !model with
              | Some v ->
                model := (key, v) :: List.remove_assoc key !model;
                Some v
              | None -> None
            in
            if Lru_int.find c key <> expected then ok := false
          | 1 ->
            let v = string_of_int key in
            if List.mem_assoc key !model then model := (key, v) :: List.remove_assoc key !model
            else begin
              if List.length !model >= capacity then
                model := List.filteri (fun i _ -> i < capacity - 1) !model;
              model := (key, v) :: !model
            end;
            Lru_int.add c key v
          | _ ->
            model := List.remove_assoc key !model;
            Lru_int.remove c key)
        ops;
      !ok
      && Lru_int.size c = List.length !model
      && List.for_all (fun (k, v) -> Lru_int.peek c k = Some v) !model
      && Lru_int.validate c = Ok ())

let () =
  Alcotest.run "util"
    [
      ( "xorshift",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_int_covers_range;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "geometric mean value" `Quick test_geometric_mean_close;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p1;
          Alcotest.test_case "zipf bounds and skew" `Quick test_zipf_bounds_and_skew;
          Alcotest.test_case "zipf n=1" `Quick test_zipf_n1;
          Alcotest.test_case "pick_weighted" `Quick test_pick_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          prop_shuffle_permutation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance" `Quick test_mean_variance;
          Alcotest.test_case "min/max/median" `Quick test_min_max_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "cdf points" `Quick test_cdf_points;
          Alcotest.test_case "cdf at" `Quick test_cdf_at;
          Alcotest.test_case "histogram" `Quick test_histogram;
          prop_percentile_bounded;
          prop_cdf_monotone;
        ] );
      ( "interner",
        [
          Alcotest.test_case "roundtrip" `Quick test_interner_roundtrip;
          Alcotest.test_case "growth" `Quick test_interner_growth;
          Alcotest.test_case "copy" `Quick test_interner_copy;
          Alcotest.test_case "bad id" `Quick test_interner_bad_id;
        ] );
      ( "prelude",
        [
          Alcotest.test_case "remove_at" `Quick test_list_remove_at;
          Alcotest.test_case "insert_sorted" `Quick test_list_insert_sorted;
          Alcotest.test_case "take/unique" `Quick test_list_take_unique;
          Alcotest.test_case "misc" `Quick test_misc;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "short rows" `Quick test_table_short_rows_padded;
          Alcotest.test_case "bad aligns" `Quick test_table_bad_aligns;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ("timer", [ Alcotest.test_case "timing" `Quick test_timer ]);
      ( "lru",
        [
          Alcotest.test_case "basic and eviction" `Quick test_lru_basic_and_eviction;
          Alcotest.test_case "replace/remove/clear" `Quick test_lru_replace_remove_clear;
          Alcotest.test_case "validate" `Quick test_lru_validate;
          prop_lru_matches_reference_model;
        ] );
    ]
