(* Driver for the cross-layer differential fuzz harness (see tl_fuzz.ml).

   Tier-1 (`dune runtest`) runs a fixed seeded budget so every push fuzzes
   the same cases; CI adds a longer randomized budget in a separate step.
   Knobs, all via the environment:

     TL_FUZZ_CASES       number of cases (default 500)
     TL_FUZZ_SEED        base seed; case i uses seed TL_FUZZ_SEED + i
                         (default 20260808)
     TL_FUZZ_JOBS        pool domains for the pooled-batch check (default 3)
     TL_FUZZ_REPRO_FILE  also append failing reproducer lines to this file

   On any mismatch the driver prints the full recipe (seed, k, tree, twig
   set, by name) plus a copy-pastable one-line reproducer, and exits 1. *)

let env_int name default =
  match Sys.getenv_opt name with
  | None | Some "" -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> n
    | None ->
      Printf.eprintf "%s: expected an integer, got %S\n%!" name v;
      exit 2)

let () =
  let cases = env_int "TL_FUZZ_CASES" 500 in
  let base_seed = env_int "TL_FUZZ_SEED" 20260808 in
  let jobs = max 1 (env_int "TL_FUZZ_JOBS" 3) in
  let repro_file = Sys.getenv_opt "TL_FUZZ_REPRO_FILE" in
  let failed = ref 0 in
  Tl_util.Pool.with_pool ~domains:jobs @@ fun pool ->
  for i = 0 to cases - 1 do
    let seed = base_seed + i in
    let case = Tl_fuzz.gen_case ~seed in
    match Tl_fuzz.run_case ~pool case with
    | [] -> ()
    | failures ->
      incr failed;
      let repro =
        Printf.sprintf "TL_FUZZ_SEED=%d TL_FUZZ_CASES=1 dune exec test/fuzz/test_fuzz.exe" seed
      in
      Printf.printf "FUZZ MISMATCH (case %d of %d)\n%s\n" (i + 1) cases
        (Tl_fuzz.describe_case case);
      List.iter
        (fun (f : Tl_fuzz.failure) -> Printf.printf "  [%s] %s\n" f.Tl_fuzz.check f.Tl_fuzz.detail)
        failures;
      Printf.printf "  repro: %s\n%!" repro;
      Option.iter
        (fun path ->
          let oc = open_out_gen [ Open_creat; Open_append ] 0o644 path in
          Printf.fprintf oc "%s\n" repro;
          close_out oc)
        repro_file
  done;
  if !failed > 0 then begin
    Printf.printf "fuzz: %d of %d case(s) diverged\n%!" !failed cases;
    exit 1
  end
  else
    Printf.printf
      "fuzz: %d cases ok (schemes x {plan, direct, baseline, engine, io round-trip, exact<=k}, +/- extra)\n%!"
      cases
