(* Cross-layer differential fuzzing.

   One seeded case generates a random document and a random twig set with
   sizes straddling the lattice depth, then asserts pairwise bit-identity
   of every estimation path the system stacks on the paper's two
   decomposition schemes:

   - [Estimator.estimate] vs a freshly compiled [Estimator.Plan.eval],
     per scheme, with and without an [?extra] feedback source;
   - both vs the seed string-keyed reference path ([Tl_core.Baseline]);
   - [Tl_serve.Engine.batch] (deduped, sequential and across a domain
     pool) vs the per-call estimator;
   - estimation over a [Summary_io] save/load round trip vs the original
     summary;
   - for twigs within the lattice depth, the estimate vs the exact
     [Match_count] answer (complete summaries store those counts).

   Everything is derived deterministically from the case seed via
   {!Tl_util.Xorshift}, so a failing case is reproducible from one
   integer; [describe_case] renders the full recipe for the minimal
   reproducer the driver prints. *)

module Xorshift = Tl_util.Xorshift
module TB = Tl_tree.Tree_builder
module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Summary = Tl_lattice.Summary
module Summary_io = Tl_lattice.Summary_io
module Estimator = Tl_core.Estimator
module Baseline = Tl_core.Baseline
module Engine = Tl_serve.Engine
module Pool = Tl_util.Pool

let alphabet = [| "a"; "b"; "c"; "d"; "e"; "f" |]

(* --- seeded generators --------------------------------------------------- *)

(* A random document spec: at most [max_nodes] nodes, fan-out <= 4, labels
   from a prefix of the alphabet — the same envelope as the qcheck
   generators in test/helpers.ml, but driven by an explicit Xorshift state
   so a case is replayable from its seed alone. *)
let gen_spec rng ~nlabels ~max_nodes =
  let label () = alphabet.(Xorshift.int rng nlabels) in
  let rec build budget =
    let l = label () in
    if budget <= 1 then TB.leaf l
    else begin
      let nkids = Xorshift.int rng (min 4 budget) in
      if nkids = 0 then TB.leaf l
      else begin
        let per_child = max 1 ((budget - 1) / nkids) in
        TB.node l (List.init nkids (fun _ -> build per_child))
      end
    end
  in
  build max_nodes

let rec element_to_string (el : Tl_xml.Xml_dom.element) =
  match
    List.filter_map
      (function Tl_xml.Xml_dom.Element e -> Some e | _ -> None)
      el.Tl_xml.Xml_dom.children
  with
  | [] -> el.Tl_xml.Xml_dom.tag
  | kids ->
    el.Tl_xml.Xml_dom.tag ^ "(" ^ String.concat "," (List.map element_to_string kids) ^ ")"

let spec_to_string s = element_to_string (TB.to_element s)

(* A random twig over the document's label ids, aiming for [size] nodes.
   Sizes are drawn to straddle the lattice depth in both directions. *)
let gen_twig rng tree ~size =
  let nlabels = Data_tree.label_count tree in
  let label () = Xorshift.int rng nlabels in
  let rec build budget =
    let l = label () in
    if budget <= 1 then Twig.leaf l
    else begin
      let nkids = 1 + Xorshift.int rng (min 3 (budget - 1)) in
      let per_child = max 1 ((budget - 1) / nkids) in
      Twig.node l (List.init nkids (fun _ -> build per_child))
    end
  in
  build size

(* --- the feedback source -------------------------------------------------- *)

(* Deterministic, finite, and keyed on the canonical encoding so the
   interned-key paths and the string-keyed Baseline consult one oracle.
   The explicit rolling hash keeps reproducers stable across OCaml
   versions (Hashtbl.hash is not specified to be). *)
let extra_of_encoding enc =
  let h = ref 17 in
  String.iter (fun c -> h := ((!h * 131) + Char.code c) land 0xFFFFFF) enc;
  if !h mod 3 = 0 then Some (0.5 +. float_of_int (!h mod 19)) else None

let extra_key key = extra_of_encoding (Twig.Key.encode key)

(* --- one case ------------------------------------------------------------- *)

type case = {
  seed : int;
  k : int;
  spec : TB.spec;
  tree : Data_tree.t;
  twigs : Twig.t array;
}

type failure = { check : string; detail : string }

let schemes =
  [ Estimator.Recursive; Estimator.Recursive_voting; Estimator.Fixed_size; Estimator.Fixed_size_voting 3 ]

let gen_case ~seed =
  let rng = Xorshift.create seed in
  let nlabels = 3 + Xorshift.int rng 4 in
  let max_nodes = 8 + Xorshift.int rng 25 in
  let spec = gen_spec rng ~nlabels ~max_nodes in
  let tree = TB.build spec in
  let k = 2 + Xorshift.int rng 2 in
  let ntwigs = 6 in
  let twigs =
    Array.init ntwigs (fun _ ->
        let size = 1 + Xorshift.int rng ((2 * k) + 2) in
        gen_twig rng tree ~size)
  in
  { seed; k; spec; tree; twigs }

let describe_case case =
  let names l = Data_tree.label_name case.tree l in
  String.concat "\n"
    (Printf.sprintf "  seed: %d" case.seed
     :: Printf.sprintf "  k:    %d" case.k
     :: Printf.sprintf "  tree: %s" (spec_to_string case.spec)
     :: Array.to_list
          (Array.mapi
             (fun i tw -> Printf.sprintf "  twig %d: %s" i (Twig.pp ~names tw))
             case.twigs))

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let run_case ?pool case =
  let failures = ref [] in
  let fail check fmt =
    Printf.ksprintf (fun detail -> failures := { check; detail } :: !failures) fmt
  in
  let summary = Summary.build ~k:case.k case.tree in
  let baseline = Baseline.of_summary summary in
  let names = Data_tree.label_names case.tree in
  let pp tw = Twig.pp ~names:(fun l -> names.(l)) tw in
  let loaded =
    match
      Summary_io.load
        ~intern:(fun name ->
          match Data_tree.label_of_string case.tree name with
          | Some id -> id
          | None -> failwith ("round-trip label unknown to the tree: " ^ name))
        (Summary_io.save ~names summary)
    with
    | loaded, _names -> Some loaded
    | exception e ->
      fail "io-round-trip" "save/load raised: %s" (Printexc.to_string e);
      None
  in
  let check_paths scheme extra extra_str tag =
    Array.iter
      (fun tw ->
        let direct = Estimator.estimate ?extra summary scheme tw in
        let plan = Estimator.Plan.eval ?extra (Estimator.Plan.compile summary scheme tw) in
        let base = Baseline.estimate ?extra:extra_str baseline scheme tw in
        if not (same_float direct plan) then
          fail "plan-vs-direct" "scheme=%s extra=%s twig=%s: direct %h vs plan %h"
            (Estimator.scheme_name scheme) tag (pp tw) direct plan;
        if not (same_float direct base) then
          fail "baseline-vs-direct" "scheme=%s extra=%s twig=%s: direct %h vs baseline %h"
            (Estimator.scheme_name scheme) tag (pp tw) direct base;
        match loaded with
        | None -> ()
        | Some loaded ->
          let reloaded = Estimator.estimate ?extra loaded scheme tw in
          if not (same_float direct reloaded) then
            fail "io-round-trip" "scheme=%s extra=%s twig=%s: original %h vs reloaded %h"
              (Estimator.scheme_name scheme) tag (pp tw) direct reloaded)
      case.twigs
  in
  List.iter
    (fun scheme ->
      check_paths scheme None None "no";
      check_paths scheme (Some extra_key) (Some extra_of_encoding) "yes")
    schemes;
  (* Small twigs: a complete summary stores every occurring pattern within
     the lattice depth, so any scheme must answer them exactly. *)
  let ctx = Match_count.create_ctx case.tree in
  Array.iter
    (fun tw ->
      if Twig.size tw <= case.k then begin
        let exact = float_of_int (Match_count.selectivity ctx tw) in
        List.iter
          (fun scheme ->
            let est = Estimator.estimate summary scheme tw in
            if not (same_float exact est) then
              fail "exact-within-k" "scheme=%s twig=%s (size %d <= k): exact %h vs estimate %h"
                (Estimator.scheme_name scheme) (pp tw) (Twig.size tw) exact est)
          schemes
      end)
    case.twigs;
  (* The batch engine: deduped, pooled or not, it must scatter exactly the
     per-call numbers.  The batch repeats every twig to exercise dedup. *)
  let batch = Array.append case.twigs case.twigs in
  let scheme = Tl_core.Treelattice.default_scheme in
  List.iter
    (fun (extra, tag) ->
      let percall = Array.map (fun tw -> Estimator.estimate ?extra summary scheme tw) batch in
      let engine = Engine.create ~scheme summary in
      let seq = Engine.batch ?extra engine batch in
      let check_against name results =
        Array.iteri
          (fun i tw ->
            if not (same_float percall.(i) results.(i)) then
              fail "engine-vs-percall" "%s extra=%s twig=%s: per-call %h vs engine %h" name tag
                (pp tw) percall.(i) results.(i))
          batch
      in
      check_against "sequential" seq;
      match pool with
      | None -> ()
      | Some pool -> check_against "pooled" (Engine.batch ~pool ?extra engine batch))
    [ (None, "no"); (Some extra_key, "yes") ];
  List.rev !failures
