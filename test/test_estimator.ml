(* Tests for the decomposition estimators: Theorem 1, the recursive and
   fixed-size schemes, voting, Markov-path equivalence (Lemma 4),
   delta-derivable pruning (Lemma 5), and the Treelattice front-end. *)

module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Markov_path = Tl_core.Markov_path
module Derivable = Tl_core.Derivable
module Treelattice = Tl_core.Treelattice
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

let close = Alcotest.(check (float 1e-6))

let estimate tree ~k ~scheme q =
  let s = Summary.build ~k tree in
  Estimator.estimate s scheme (Helpers.twig_of_string tree q)

(* --- stored patterns are returned exactly ----------------------------------- *)

let test_stored_exact () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let s = Summary.build ~k:3 tree in
  let ctx = Match_count.create_ctx tree in
  Summary.fold
    (fun tw c () ->
      List.iter
        (fun scheme ->
          close (Twig.encode tw) (float_of_int c) (Estimator.estimate s scheme tw))
        Estimator.all_schemes;
      Alcotest.(check int) "sanity: stored = exact" c (Match_count.selectivity ctx tw))
    s ()

let test_missing_small_pattern_is_zero () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  List.iter
    (fun scheme ->
      close "non-occurring size-2" 0.0 (estimate tree ~k:3 ~scheme "desktop(price)");
      close "non-occurring size-3" 0.0 (estimate tree ~k:3 ~scheme "computer(laptops(desktop))"))
    Estimator.all_schemes

let test_unknown_label_zero () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let s = Summary.build ~k:3 tree in
  let ghost = Twig.node 999 [ Twig.leaf 998 ] in
  List.iter
    (fun scheme -> close "ghost labels" 0.0 (Estimator.estimate s scheme ghost))
    Estimator.all_schemes

(* --- Theorem 1 on a conditionally independent document ------------------------ *)

let test_exact_on_regular_document () =
  (* Every x-node has identical structure, so tree-growing independence
     holds exactly and decomposition must reproduce exact counts for every
     query, at every size beyond the lattice. *)
  let tree = Helpers.tree_of Helpers.regular_spec in
  let ctx = Match_count.create_ctx tree in
  let queries =
    [ "x(y(w,w),z)"; "r(x(y(w),z))"; "r(x(y(w,w),z))"; "x(y(w,w))"; "r(x(y(w,w)))" ]
  in
  List.iter
    (fun q ->
      let twig = Helpers.twig_of_string tree q in
      let truth = float_of_int (Match_count.selectivity ctx twig) in
      List.iter
        (fun scheme ->
          let s = Summary.build ~k:3 tree in
          close (q ^ " / " ^ Estimator.scheme_name scheme) truth (Estimator.estimate s scheme twig))
        [ Estimator.Recursive; Estimator.Recursive_voting; Estimator.Fixed_size ])
    queries

let test_fig11_recursive_value () =
  (* Regression of the worked example: recursive picks the (root, leaf)
     pair and reproduces sigma exactly; voting averages three
     decompositions (4 + 4 + 13)/3 = 7. *)
  let tree = Helpers.tree_of Helpers.fig11_spec in
  close "recursive" 4.0 (estimate tree ~k:3 ~scheme:Estimator.Recursive "a(b(c,d))");
  close "voting" 7.0 (estimate tree ~k:3 ~scheme:Estimator.Recursive_voting "a(b(c,d))")

(* --- fixed-size cover (Lemma 2) -------------------------------------------------- *)

let test_cover_structure () =
  let twig = Twig.canonicalize (Twig.decode "0(1(2,3),4(5))") in
  let k = 3 in
  let blocks = Estimator.cover twig ~k in
  Alcotest.(check int) "n-k+1 blocks" (Twig.size twig - k + 1) (List.length blocks);
  List.iteri
    (fun i (block, overlap) ->
      Alcotest.(check int) (Printf.sprintf "block %d has k nodes" i) k (Twig.size block);
      match overlap with
      | None -> Alcotest.(check int) "only the first block lacks an overlap" 0 i
      | Some o -> Alcotest.(check int) (Printf.sprintf "overlap %d has k-1 nodes" i) (k - 1) (Twig.size o))
    blocks

let test_cover_rejects_small_twig () =
  Alcotest.check_raises "twig must exceed k" (Invalid_argument "Estimator.cover: twig not larger than k")
    (fun () -> ignore (Estimator.cover (Twig.leaf 0) ~k:3))

let prop_cover_well_formed =
  Helpers.qcheck_case ~name:"covers are well-formed for random twigs" ~count:100
    (Helpers.twig_gen ~max_nodes:10 ())
    (fun tw ->
      let tw = Twig.canonicalize tw in
      let k = 3 in
      Twig.size tw <= k
      ||
      let blocks = Estimator.cover tw ~k in
      List.length blocks = Twig.size tw - k + 1
      && List.for_all
           (fun (b, o) ->
             Twig.size b = k && match o with None -> true | Some o -> Twig.size o = k - 1)
           blocks)

(* --- voting determinism ------------------------------------------------------------ *)

let test_fixed_voting_deterministic () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let v1 = Estimator.estimate s (Estimator.Fixed_size_voting 8) twig in
  let v2 = Estimator.estimate s (Estimator.Fixed_size_voting 8) twig in
  close "same answer twice" v1 v2

let test_scheme_names_distinct () =
  let names = List.map Estimator.scheme_name Estimator.all_schemes in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- Markov equivalence (Lemma 4) ---------------------------------------------------- *)

let test_markov_direct_lookup () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let s = Summary.build ~k:3 tree in
  let labels =
    List.map (fun t -> Option.get (Data_tree.label_of_string tree t)) [ "computer"; "laptops"; "laptop" ]
  in
  close "short path = lookup" 2.0 (Markov_path.estimate s labels)

let test_markov_empty_path () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let s = Summary.build ~k:3 tree in
  Alcotest.check_raises "empty path" (Invalid_argument "Markov_path.estimate: empty path") (fun () ->
      ignore (Markov_path.estimate s []))

let test_markov_estimate_twig () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let s = Summary.build ~k:3 tree in
  let path = Helpers.twig_of_string tree "computer(laptops)" in
  let branching = Helpers.twig_of_string tree "laptop(brand,price)" in
  Alcotest.(check bool) "path handled" true (Markov_path.estimate_twig s path <> None);
  Alcotest.(check (option (float 1e-9))) "branching refused" None (Markov_path.estimate_twig s branching)

let prop_lemma4_equivalence =
  Helpers.qcheck_case ~name:"decomposition = Markov formula on random path queries" ~count:60
    (Helpers.tree_gen ~max_nodes:25)
    (fun tree ->
      let s = Summary.build ~k:2 tree in
      let rng = Tl_util.Xorshift.create 23 in
      (* Random label sequences, occurring or not. *)
      let nlabels = Data_tree.label_count tree in
      let ok = ref true in
      for _ = 1 to 10 do
        let len = 3 + Tl_util.Xorshift.int rng 3 in
        let labels = List.init len (fun _ -> Tl_util.Xorshift.int rng nlabels) in
        let markov = Markov_path.estimate s labels in
        let twig = Twig.of_path labels in
        let recursive = Estimator.estimate s Estimator.Recursive twig in
        let fixed = Estimator.estimate s Estimator.Fixed_size twig in
        let tolerance = 1e-6 *. Float.max 1.0 markov in
        if Float.abs (markov -. recursive) > tolerance then ok := false;
        if Float.abs (markov -. fixed) > tolerance then ok := false
      done;
      !ok)

(* --- delta-derivable pruning (Lemma 5) ------------------------------------------------ *)

let test_prune_keeps_low_levels () =
  let tree = Helpers.tree_of Helpers.regular_spec in
  let s = Summary.build ~k:4 tree in
  let pruned = Derivable.prune s ~delta:0.0 in
  Alcotest.(check int) "level 1 intact" (List.length (Summary.level s 1))
    (List.length (Summary.level pruned 1));
  Alcotest.(check int) "level 2 intact" (List.length (Summary.level s 2))
    (List.length (Summary.level pruned 2))

let test_prune_regular_document_prunes_everything_above_2 () =
  (* Perfect conditional independence: every level >= 3 pattern is exactly
     derivable. *)
  let tree = Helpers.tree_of Helpers.regular_spec in
  let s = Summary.build ~k:4 tree in
  let pruned = Derivable.prune s ~delta:0.0 in
  Alcotest.(check int) "level 3 all pruned" 0 (List.length (Summary.level pruned 3));
  Alcotest.(check int) "level 4 all pruned" 0 (List.length (Summary.level pruned 4))

let test_prune_validation () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let s = Summary.build ~k:3 tree in
  Alcotest.check_raises "negative delta" (Invalid_argument "Derivable.prune: delta must be >= 0")
    (fun () -> ignore (Derivable.prune s ~delta:(-0.1)))

let test_savings_monotone_in_delta () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s = Summary.build ~k:4 tree in
  let _, after0 = Derivable.savings s ~delta:0.0 in
  let _, after30 = Derivable.savings s ~delta:0.3 in
  Alcotest.(check bool) "larger delta prunes at least as much" true (after30 <= after0)

let prop_lemma5_lossless_zero_pruning =
  Helpers.qcheck_case ~name:"0-derivable pruning never changes estimates" ~count:30
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let s = Summary.build ~k:3 tree in
      let pruned = Derivable.prune s ~delta:0.0 in
      let rng = Tl_util.Xorshift.create 31 in
      let ok = ref true in
      for _ = 1 to 8 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:5 with
        | None -> ()
        | Some twig ->
          let reference = Estimator.estimate s Estimator.Recursive twig in
          let with_pruned = Estimator.estimate pruned Estimator.Recursive twig in
          if Float.abs (reference -. with_pruned) > 1e-6 *. Float.max 1.0 reference then ok := false
      done;
      !ok)

let prop_lemma5_scheme_consistent_voting =
  Helpers.qcheck_case ~name:"0-pruning under voting is lossless for voting estimates" ~count:20
    (Helpers.tree_gen ~max_nodes:14)
    (fun tree ->
      let s = Summary.build ~k:3 tree in
      let pruned = Derivable.prune ~scheme:Estimator.Recursive_voting s ~delta:0.0 in
      let rng = Tl_util.Xorshift.create 41 in
      let ok = ref true in
      for _ = 1 to 6 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:4 with
        | None -> ()
        | Some twig ->
          let reference = Estimator.estimate s Estimator.Recursive_voting twig in
          let with_pruned = Estimator.estimate pruned Estimator.Recursive_voting twig in
          if Float.abs (reference -. with_pruned) > 1e-6 *. Float.max 1.0 reference then ok := false
      done;
      !ok)

let test_estimate_interval () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let interval = Estimator.estimate_interval s twig in
  close "low = min vote" 4.0 interval.Estimator.low;
  close "best = voting" 7.0 interval.Estimator.best;
  close "high = max vote" 13.0 interval.Estimator.high;
  (* Stored patterns collapse to a point. *)
  let stored = Helpers.twig_of_string tree "b(c,d)" in
  let point = Estimator.estimate_interval s stored in
  close "point low" 4.0 point.Estimator.low;
  close "point high" 4.0 point.Estimator.high

let prop_interval_ordered =
  Helpers.qcheck_case ~name:"interval is ordered: low <= high" ~count:30
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let s = Summary.build ~k:3 tree in
      let rng = Tl_util.Xorshift.create 43 in
      let ok = ref true in
      for _ = 1 to 5 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:5 with
        | None -> ()
        | Some twig ->
          let i = Estimator.estimate_interval s twig in
          if not (i.Estimator.low <= i.Estimator.high +. 1e-9) then ok := false;
          if i.Estimator.low < 0.0 then ok := false
      done;
      !ok)

let test_first_level_votes () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let votes = Estimator.first_level_votes s twig in
  (* Three degree-1 pairs: (root,c), (root,d), (c,d) -> estimates 4, 4, 13. *)
  Alcotest.(check int) "three votes" 3 (List.length votes);
  Alcotest.(check (list (float 1e-6))) "vote values" [ 4.0; 4.0; 13.0 ] (List.sort compare votes);
  (* Stored patterns vote with their exact count. *)
  let stored = Helpers.twig_of_string tree "b(c,d)" in
  Alcotest.(check (list (float 1e-6))) "stored singleton" [ 4.0 ] (Estimator.first_level_votes s stored)

(* --- feedback threading into votes and intervals ------------------------------------------ *)

let test_votes_respect_extra () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let root_key = Twig.key twig in
  let extra k = if Twig.Key.equal k root_key then Some 9.0 else None in
  Alcotest.(check (list (float 1e-9))) "extra wins at top level" [ 9.0 ]
    (Estimator.first_level_votes ~extra s twig);
  let interval = Estimator.estimate_interval ~extra s twig in
  close "interval low" 9.0 interval.Estimator.low;
  close "interval best" 9.0 interval.Estimator.best;
  close "interval high" 9.0 interval.Estimator.high

let test_interval_contains_extra_estimate () =
  (* Seed bug: a feedback count for a SUB-twig moved [estimate ~extra] but
     not the votes, so the adaptive estimate could fall outside its own
     interval. *)
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let sub_key = Twig.key (Helpers.twig_of_string tree "a(b(c))") in
  let extra k = if Twig.Key.equal k sub_key then Some 2.5 else None in
  let est = Estimator.estimate ~extra s Estimator.Recursive_voting twig in
  let interval = Estimator.estimate_interval ~extra s twig in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %g inside [%g, %g]" est interval.Estimator.low interval.Estimator.high)
    true
    (interval.Estimator.low <= est +. 1e-9 && est <= interval.Estimator.high +. 1e-9)

(* --- differential: interned-key path == seed string path ---------------------------------- *)

module Baseline = Tl_core.Baseline

let bit_identical a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* One extra source per document: exact counts for a few random subtrees, as
   {!Tl_core.Adaptive} would have cached them, exposed both string-keyed
   (baseline) and key-keyed (estimator). *)
let feedback_source ctx tree rng =
  let table = Hashtbl.create 8 in
  for _ = 1 to 4 do
    match Tl_twig.Twig_enum.random_subtree rng tree ~size:5 with
    | None -> ()
    | Some tw ->
      Hashtbl.replace table (Twig.encode tw) (float_of_int (Match_count.selectivity ctx tw))
    | exception Invalid_argument _ -> ()
  done;
  let by_string enc = Hashtbl.find_opt table enc in
  let by_key k = Hashtbl.find_opt table (Twig.Key.encode k) in
  (by_string, by_key)

let prop_bit_identical_to_seed_path =
  Helpers.qcheck_case ~name:"hash-consed estimation is bit-identical to the seed string path"
    ~count:40
    (Helpers.tree_gen ~max_nodes:20)
    (fun tree ->
      let ctx = Match_count.create_ctx tree in
      let s = Summary.build ~k:3 tree in
      let b = Baseline.of_summary s in
      let rng = Tl_util.Xorshift.create 97 in
      let by_string, by_key = feedback_source ctx tree rng in
      let ok = ref true in
      for size = 4 to 7 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size with
        | None -> ()
        | Some twig ->
          List.iter
            (fun scheme ->
              let fresh = Estimator.estimate s scheme twig in
              let seed = Baseline.estimate b scheme twig in
              if not (bit_identical fresh seed) then ok := false;
              let fresh_x = Estimator.estimate ~extra:by_key s scheme twig in
              let seed_x = Baseline.estimate ~extra:by_string b scheme twig in
              if not (bit_identical fresh_x seed_x) then ok := false)
            Estimator.all_schemes
      done;
      !ok)

let prop_bit_identical_on_pruned_summary =
  Helpers.qcheck_case ~name:"differential holds on pruned (incomplete) summaries too" ~count:20
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let s = Derivable.prune (Summary.build ~k:3 tree) ~delta:0.1 in
      let b = Baseline.of_summary s in
      let rng = Tl_util.Xorshift.create 53 in
      let ok = ref true in
      for _ = 1 to 5 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:5 with
        | None -> ()
        | Some twig ->
          List.iter
            (fun scheme ->
              if not (bit_identical (Estimator.estimate s scheme twig) (Baseline.estimate b scheme twig))
              then ok := false)
            Estimator.all_schemes
      done;
      !ok)

(* --- Treelattice front-end --------------------------------------------------------------- *)

let test_frontend_basics () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let tl = Treelattice.build ~k:3 tree in
  Alcotest.(check int) "k" 3 (Treelattice.k tl);
  Alcotest.(check bool) "tree identity" true (Treelattice.tree tl == tree);
  (match Treelattice.estimate_string tl "laptop(brand,price)" with
  | Ok v -> close "estimate" 2.0 v
  | Error m -> Alcotest.failf "unexpected error %s" m);
  (match Treelattice.exact_string tl "laptop(brand,price)" with
  | Ok v -> Alcotest.(check int) "exact" 2 v
  | Error m -> Alcotest.failf "unexpected error %s" m);
  match Treelattice.estimate_string tl "laptop((" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "syntax error expected"

let test_frontend_unknown_tag_is_zero () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let tl = Treelattice.build ~k:3 tree in
  match Treelattice.estimate_string tl "laptop(unheard_of)" with
  | Ok v -> close "unknown tag estimates 0" 0.0 v
  | Error m -> Alcotest.failf "unknown tags should not error: %s" m

let test_frontend_pp () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let tl = Treelattice.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "laptop(brand,price)" in
  Alcotest.(check string) "pretty printed" "laptop(brand,price)" (Treelattice.pp_twig tl twig)

let test_frontend_prune () =
  let tree = Helpers.tree_of Helpers.regular_spec in
  let tl = Treelattice.build ~k:4 tree in
  let pruned = Treelattice.prune tl ~delta:0.0 in
  Alcotest.(check bool) "summary shrank" true
    (Summary.entries (Treelattice.summary pruned) < Summary.entries (Treelattice.summary tl));
  let q = "x(y(w,w),z)" in
  match (Treelattice.estimate_string tl q, Treelattice.estimate_string pruned q) with
  | Ok a, Ok b -> close "lossless" a b
  | _ -> Alcotest.fail "estimates failed"

let test_frontend_add_document () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let tl = Treelattice.build ~k:3 tree in
  (* Add a second shop with an extra tag. *)
  let other =
    TB.build
      (TB.node "computer"
         [ TB.node "laptops" [ TB.node "laptop" [ TB.leaf "brand"; TB.leaf "warranty" ] ] ])
  in
  let merged = Treelattice.add_document tl other in
  (match Treelattice.exact_string merged "laptop" with
  | Ok v -> Alcotest.(check int) "exact still against original tree" 2 v
  | Error m -> Alcotest.failf "unexpected %s" m);
  (match Treelattice.estimate_string merged "laptop" with
  | Ok v -> close "merged count" 3.0 v
  | Error m -> Alcotest.failf "unexpected %s" m);
  match Treelattice.estimate_string merged "laptop(warranty)" with
  | Ok v -> close "new tag counted" 1.0 v
  | Error m -> Alcotest.failf "unexpected %s" m

(* --- estimates on random documents stay finite and non-negative ---------------------------- *)

let prop_estimates_non_negative_finite =
  Helpers.qcheck_case ~name:"estimates are finite and non-negative" ~count:40
    (Helpers.tree_gen ~max_nodes:20)
    (fun tree ->
      let s = Summary.build ~k:3 tree in
      let rng = Tl_util.Xorshift.create 37 in
      let ok = ref true in
      for _ = 1 to 6 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:6 with
        | None -> ()
        | Some twig ->
          List.iter
            (fun scheme ->
              let v = Estimator.estimate s scheme twig in
              if not (Float.is_finite v) || v < 0.0 then ok := false)
            Estimator.all_schemes
      done;
      !ok)

let () =
  Alcotest.run "estimator"
    [
      ( "lookup",
        [
          Alcotest.test_case "stored patterns exact" `Quick test_stored_exact;
          Alcotest.test_case "missing small pattern" `Quick test_missing_small_pattern_is_zero;
          Alcotest.test_case "unknown labels" `Quick test_unknown_label_zero;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "exact on regular document" `Quick test_exact_on_regular_document;
          Alcotest.test_case "fig11 values" `Quick test_fig11_recursive_value;
          Alcotest.test_case "cover structure" `Quick test_cover_structure;
          Alcotest.test_case "cover rejects small twig" `Quick test_cover_rejects_small_twig;
          Alcotest.test_case "fixed voting deterministic" `Quick test_fixed_voting_deterministic;
          Alcotest.test_case "scheme names" `Quick test_scheme_names_distinct;
          prop_cover_well_formed;
          prop_estimates_non_negative_finite;
        ] );
      ( "markov",
        [
          Alcotest.test_case "direct lookup" `Quick test_markov_direct_lookup;
          Alcotest.test_case "empty path" `Quick test_markov_empty_path;
          Alcotest.test_case "estimate_twig" `Quick test_markov_estimate_twig;
          prop_lemma4_equivalence;
        ] );
      ( "derivable",
        [
          Alcotest.test_case "levels 1-2 kept" `Quick test_prune_keeps_low_levels;
          Alcotest.test_case "regular doc fully derivable" `Quick
            test_prune_regular_document_prunes_everything_above_2;
          Alcotest.test_case "validation" `Quick test_prune_validation;
          Alcotest.test_case "savings monotone" `Quick test_savings_monotone_in_delta;
          prop_lemma5_lossless_zero_pruning;
          prop_lemma5_scheme_consistent_voting;
          Alcotest.test_case "first level votes" `Quick test_first_level_votes;
          Alcotest.test_case "estimate interval" `Quick test_estimate_interval;
          prop_interval_ordered;
          Alcotest.test_case "votes respect extra" `Quick test_votes_respect_extra;
          Alcotest.test_case "interval contains adaptive estimate" `Quick
            test_interval_contains_extra_estimate;
        ] );
      ( "differential",
        [
          prop_bit_identical_to_seed_path;
          prop_bit_identical_on_pruned_summary;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "basics" `Quick test_frontend_basics;
          Alcotest.test_case "unknown tag" `Quick test_frontend_unknown_tag_is_zero;
          Alcotest.test_case "pp" `Quick test_frontend_pp;
          Alcotest.test_case "prune" `Quick test_frontend_prune;
          Alcotest.test_case "add document" `Quick test_frontend_add_document;
        ] );
    ]
