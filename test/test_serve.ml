(* Tests for compiled plans, the plan cache, and the batch engine.  The
   load-bearing property is bit-identity: a compiled plan (cold or
   cached, sequential or parallel, with or without feedback) must return
   the exact float of the direct estimator — not merely a close one. *)

module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Plan = Tl_core.Estimator.Plan
module Plan_cache = Tl_core.Plan_cache
module Engine = Tl_serve.Engine
module Pool = Tl_util.Pool
module Value_tree = Tl_values.Value_tree
module Value_estimator = Tl_values.Value_estimator

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %h = %h" name a b) true (same_float a b)

let schemes =
  [
    Estimator.Recursive;
    Estimator.Recursive_voting;
    Estimator.Fixed_size;
    Estimator.Fixed_size_voting 1;
    Estimator.Fixed_size_voting 5;
  ]

(* A deterministic feedback source covering both hit and miss paths;
   keyed on interned ids so both estimation paths see identical answers
   within one property evaluation. *)
let extra key =
  let id = Twig.Key.id key in
  if id mod 3 = 0 then Some (0.5 +. float_of_int (Twig.Key.size key)) else None

(* --- plan vs direct estimator ------------------------------------------------ *)

let prop_plan_matches_direct =
  Helpers.qcheck_case ~name:"plan eval is bit-identical to direct estimate" ~count:40
    QCheck2.Gen.(pair (Helpers.tree_gen ~max_nodes:24) (Helpers.twig_gen ~nlabels:6 ~max_nodes:9 ()))
    (fun (tree, twig) ->
      List.for_all
        (fun k ->
          let summary = Summary.build ~k tree in
          List.for_all
            (fun scheme ->
              let plan = Plan.compile summary scheme twig in
              same_float (Estimator.estimate summary scheme twig) (Plan.eval plan)
              && same_float
                   (Estimator.estimate ~extra summary scheme twig)
                   (Plan.eval ~extra plan)
              (* A second eval must not be perturbed by the first. *)
              && same_float (Estimator.estimate summary scheme twig) (Plan.eval plan))
            schemes)
        [ 2; 3 ])

let test_plan_accessors () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let plan = Plan.compile summary Estimator.Recursive_voting twig in
  Alcotest.(check bool) "scheme" true (Plan.scheme plan = Estimator.Recursive_voting);
  Alcotest.(check bool)
    "root key" true
    (Twig.Key.id (Plan.root_key plan) = Twig.Key.id (Twig.key (Twig.canonicalize twig)));
  Alcotest.(check bool) "has slots" true (Plan.slot_count plan >= 1);
  (* The worked fig11 value survives compilation. *)
  check_bits "voting value" 7.0 (Plan.eval plan)

let test_plan_probe_reports_without_perturbing () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d),b)" in
  let plan = Plan.compile summary Estimator.Recursive_voting twig in
  let events = ref 0 in
  let probe =
    {
      Estimator.on_lookup = (fun _ _ -> incr events);
      on_pair = (fun ~parent:_ ~t1:_ ~t2:_ ~cap:_ ~twin:_ ~e1:_ ~e2:_ ~ec:_ ~value:_ -> incr events);
      on_value = (fun _ _ -> incr events);
      on_cover_step = (fun ~block:_ ~overlap:_ ~twins:_ ~num:_ ~den:_ ~acc:_ -> incr events);
    }
  in
  check_bits "probe does not change the value" (Plan.eval plan) (Plan.eval ~probe plan);
  Alcotest.(check bool) "probe saw the evaluation" true (!events > 0)

(* --- plan cache ------------------------------------------------------------- *)

let test_plan_cache_interns () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let cache = Plan_cache.create ~capacity:8 (Summary.build ~k:3 tree) in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  let p1 = Plan_cache.plan cache Estimator.Recursive twig in
  let p2 = Plan_cache.plan cache Estimator.Recursive twig in
  Alcotest.(check bool) "same compiled plan" true (p1 == p2);
  let p3 = Plan_cache.plan cache Estimator.Fixed_size twig in
  Alcotest.(check bool) "schemes keyed apart" true (p1 != p3);
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "two plans interned" 2 s.Plan_cache.size;
  Alcotest.(check int) "one reuse" 1 s.Plan_cache.hits;
  Alcotest.(check int) "two compiles" 2 s.Plan_cache.misses

let test_plan_cache_eviction_bounded () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let cache = Plan_cache.create ~capacity:2 ~shard_capacity:2 (Summary.build ~k:3 tree) in
  let queries = [ "a(b(c,d))"; "a(b(c),b(d))"; "a(b,b,b,b)"; "a(b(c,c,d))" ] in
  List.iter
    (fun q -> ignore (Plan_cache.plan cache Estimator.Recursive (Helpers.twig_of_string tree q)))
    queries;
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "bounded" 2 s.Plan_cache.size;
  Alcotest.(check int) "evictions recorded" 2 s.Plan_cache.evictions

(* --- batch engine ------------------------------------------------------------ *)

let fig11_queries = [ "a(b(c,d))"; "a(b(c),b(d))"; "a(b,b)"; "b(c,d)"; "a(b(c,d),b)" ]

let test_batch_matches_direct () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let engine = Engine.create summary in
  let distinct = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  (* A skewed batch: every query appears many times. *)
  (* A skewed batch hitting every distinct query (7 generates mod 5). *)
  let batch = Array.init 60 (fun i -> distinct.(i * 7 mod Array.length distinct)) in
  let results = Engine.batch engine batch in
  Array.iteri
    (fun i twig ->
      check_bits
        (Printf.sprintf "query %d" i)
        (Estimator.estimate summary Tl_core.Treelattice.default_scheme twig)
        results.(i))
    batch;
  let s = Engine.stats engine in
  Alcotest.(check int) "distinct compiles only" (Array.length distinct) s.Plan_cache.misses;
  (* A warm re-run is served entirely from the cache. *)
  let again = Engine.batch engine batch in
  Alcotest.(check bool) "warm = cold" true (Array.for_all2 same_float results again);
  Alcotest.(check bool) "cache hits recorded" true ((Engine.stats engine).Plan_cache.hits > 0)

let prop_parallel_batch_matches_sequential =
  Helpers.qcheck_case ~name:"parallel warm/cold batches match sequential" ~count:12
    QCheck2.Gen.(
      pair (Helpers.tree_gen ~max_nodes:20)
        (array_size (return 40) (Helpers.twig_gen ~nlabels:6 ~max_nodes:7 ())))
    (fun (tree, batch) ->
      let summary = Summary.build ~k:2 tree in
      let sequential = Engine.batch (Engine.create summary) batch in
      Pool.with_pool ~domains:4 (fun pool ->
          let cold_engine = Engine.create summary in
          let cold = Engine.batch ~pool cold_engine batch in
          let warm = Engine.batch ~pool cold_engine batch in
          Array.for_all2 same_float sequential cold && Array.for_all2 same_float sequential warm))

let test_batch_with_extra_matches_direct () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let engine = Engine.create summary in
  let batch = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let results = Engine.batch ~extra engine batch in
  Array.iteri
    (fun i twig ->
      check_bits
        (Printf.sprintf "query %d with feedback" i)
        (Estimator.estimate ~extra summary Tl_core.Treelattice.default_scheme twig)
        results.(i))
    batch

let test_batch_values_matches_value_estimator () =
  let vtree =
    Value_tree.of_xml
      (Tl_xml.Xml_dom.parse_string
         "<store><book><title>ocaml</title><price>5</price></book><book><title>xml</title><price>7</price></book><journal><title>xml</title></journal></store>")
  in
  let ve = Value_estimator.create ~k:3 vtree in
  let engine = Engine.create (Value_estimator.structural ve) in
  let intern = Tl_tree.Data_tree.label_of_string (Value_tree.tree vtree) in
  let parse q =
    match Tl_values.Value_query.parse ~intern q with Ok v -> v | Error m -> failwith m
  in
  let queries =
    Array.of_list
      (List.map parse
         [
           "book(title=\"ocaml\")";
           "book(title,price=\"7\")";
           "book(title=\"xml\",price)";
           "store(book(title=\"ocaml\"))";
           "book(title=\"ocaml\")";
           "journal(title=\"nope\")";
         ])
  in
  let results = Engine.batch_values engine (Value_estimator.values ve) queries in
  Array.iteri
    (fun i q ->
      check_bits (Printf.sprintf "value query %d" i) (Value_estimator.estimate ve q) results.(i))
    queries

(* The safe-by-default contract of the tentpole fix: a multi-domain batch
   may feed from a live Adaptive cache with no caller-side lock.  Against
   the pre-lock Adaptive this test corrupts the intrusive LRU (dangling
   splices) and loses hit/miss increments; with the internal lock every
   repetition must return the reference floats, the stats must account
   for every lookup exactly, and the recency list must stay well-formed. *)
let test_parallel_adaptive_feedback_stress () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let tl = Tl_core.Treelattice.build ~k:3 tree in
  let adaptive = Tl_core.Adaptive.create ~capacity:4 tl in
  let observed =
    [ "a(b(c,d))"; "a(b(c),b(d))"; "a(b,b,b,b)"; "a(b(c,c,d))"; "a(b(c,d),b)"; "a(b(c,d,d))" ]
  in
  (* More observed patterns than capacity, so recency churn and evictions
     happen while workers race on the list. *)
  List.iter
    (fun q -> ignore (Tl_core.Adaptive.observe_exact adaptive (Helpers.twig_of_string tree q)))
    observed;
  let engine = Engine.of_treelattice tl in
  let batch =
    let distinct = Array.of_list (List.map (Helpers.twig_of_string tree) (observed @ fig11_queries)) in
    Array.init 88 (fun i -> distinct.(i mod Array.length distinct))
  in
  (* Lookups mutate only recency and counters, never cached contents, so a
     sequential reference run pins the floats every parallel run must
     reproduce. *)
  let reference = Engine.batch ~extra:(Tl_core.Adaptive.lookup adaptive) engine batch in
  let lookups = Atomic.make 0 in
  let extra key =
    Atomic.incr lookups;
    Tl_core.Adaptive.lookup adaptive key
  in
  let before = Tl_core.Adaptive.stats adaptive in
  Pool.with_pool ~domains:4 (fun pool ->
      for _ = 1 to 25 do
        let results = Engine.batch ~pool ~extra engine batch in
        Alcotest.(check bool)
          "parallel batch = sequential reference" true
          (Array.for_all2 same_float reference results)
      done);
  let after = Tl_core.Adaptive.stats adaptive in
  (match Tl_core.Adaptive.check_integrity adaptive with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "corrupt LRU after parallel feedback: %s" msg);
  Alcotest.(check bool) "size bounded" true (after.Tl_core.Adaptive.size <= after.Tl_core.Adaptive.capacity);
  Alcotest.(check int) "hits + misses = lookups" (Atomic.get lookups)
    (after.Tl_core.Adaptive.hits + after.Tl_core.Adaptive.misses
    - (before.Tl_core.Adaptive.hits + before.Tl_core.Adaptive.misses))

(* The serving layer must never leak nan/infinity, whatever a feedback
   source injects: non-finite per-query results clamp to 0 and are counted
   under estimates.nonfinite. *)
let nonfinite_count () =
  match List.assoc_opt "estimates.nonfinite" (Tl_obs.Metrics.snapshot ()).Tl_obs.Metrics.counters with
  | Some n -> n
  | None -> 0

let test_batch_clamps_nonfinite () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let engine = Engine.create summary in
  let twig = Helpers.twig_of_string tree "a(b(c,d),b)" in
  let root_id = Twig.Key.id (Twig.key (Twig.canonicalize twig)) in
  (* nan straight from the source at the root lookup. *)
  let poison key = if Twig.Key.id key = root_id then Some Float.nan else None in
  (* finite-but-huge counts for every sub-twig: the decomposition's
     product overflows to infinity even though the source never returns a
     non-finite float itself. *)
  let overflow key = if Twig.Key.id key = root_id then None else Some 1e308 in
  let direct = Estimator.estimate ~extra:overflow summary Tl_core.Treelattice.default_scheme twig in
  Alcotest.(check bool) "direct path does overflow" true (direct = Float.infinity);
  let before = nonfinite_count () in
  let results = Engine.batch ~extra:poison engine [| twig |] in
  check_bits "nan clamps to 0" 0.0 results.(0);
  let results = Engine.batch ~extra:overflow engine [| twig |] in
  check_bits "overflow clamps to 0" 0.0 results.(0);
  Alcotest.(check int) "both clamps counted" (before + 2) (nonfinite_count ());
  (* A finite batch does not touch the counter. *)
  let before = nonfinite_count () in
  ignore (Engine.batch ~extra engine [| twig |]);
  Alcotest.(check int) "finite batch uncounted" before (nonfinite_count ())

(* --- audit log ---------------------------------------------------------- *)

module Audit = Tl_serve.Audit
module Monitor = Tl_serve.Monitor

let test_audit_ring_and_views () =
  let a = Audit.create ~capacity:4 () in
  let record ~key_id ~latency_ns ~clamped ~rel_error =
    Audit.record a ~key_id ~scheme:"test" ~estimate:1.0 ~latency_ns ~plan_hit:true
      ~feedback_hit:false ~clamped ~rel_error
  in
  record ~key_id:0 ~latency_ns:500 ~clamped:false ~rel_error:Float.nan;
  record ~key_id:1 ~latency_ns:900 ~clamped:false ~rel_error:0.25;
  record ~key_id:2 ~latency_ns:100 ~clamped:true ~rel_error:Float.nan;
  record ~key_id:3 ~latency_ns:700 ~clamped:false ~rel_error:2.0;
  record ~key_id:4 ~latency_ns:300 ~clamped:false ~rel_error:Float.nan;
  (* capacity 4: key 0 aged out of the ring, but total keeps counting *)
  Alcotest.(check int) "total counts all admissions" 5 (Audit.total a);
  Alcotest.(check int) "ring holds capacity" 4 (Audit.size a);
  Alcotest.(check (list int)) "records oldest first" [ 1; 2; 3; 4 ]
    (List.map (fun r -> r.Audit.key_id) (Audit.records a));
  Alcotest.(check (list int)) "recent newest first" [ 4; 3 ]
    (List.map (fun r -> r.Audit.key_id) (Audit.recent ~limit:2 a));
  Alcotest.(check (list int)) "top_slow by latency desc" [ 1; 3 ]
    (List.map (fun r -> r.Audit.key_id) (Audit.top_slow ~k:2 a));
  (* worst confidence: the clamp outranks any finite error; unsampled
     unclamped records never appear *)
  Alcotest.(check (list int)) "top_uncertain clamp first, then error desc" [ 2; 3; 1 ]
    (List.map (fun r -> r.Audit.key_id) (Audit.top_uncertain ~k:5 a));
  let h = Audit.latency_histogram a in
  Alcotest.(check int) "latency histogram holds the ring" 4 h.Tl_obs.Metrics.h_observations;
  Alcotest.(check int) "latency sum" 2000 h.Tl_obs.Metrics.h_sum;
  let json = Audit.record_json (List.hd (Audit.records a)) in
  Alcotest.(check bool) "unsampled rel_error is JSON null" true
    (Tl_util.Prelude.string_contains ~needle:{|"rel_error":0.25|} json);
  let clamped_json = Audit.record_json (List.nth (Audit.records a) 1) in
  Alcotest.(check bool) "clamped flag serialized" true
    (Tl_util.Prelude.string_contains ~needle:{|"clamped":true|} clamped_json);
  Alcotest.(check bool) "nan rel_error serialized as null" true
    (Tl_util.Prelude.string_contains ~needle:{|"rel_error":null|} clamped_json);
  Audit.reset a;
  Alcotest.(check int) "reset drops held records" 0 (Audit.size a);
  Alcotest.(check int) "reset keeps total" 5 (Audit.total a)

(* The deterministic-merge property: a parallel audited batch leaves the
   same multiset of records as the sequential one, once the fields that
   legitimately vary (admission order, wall-clock latency) are projected
   out.  The engine is warmed first so every record's plan_hit is
   [true] in both runs. *)
let audit_projection a =
  List.sort compare
    (List.map
       (fun r ->
         ( r.Audit.key_id,
           r.Audit.scheme,
           Int64.bits_of_float r.Audit.estimate,
           r.Audit.plan_hit,
           r.Audit.feedback_hit,
           r.Audit.clamped ))
       (Audit.records a))

let prop_parallel_audit_matches_sequential =
  Helpers.qcheck_case ~name:"audit: parallel batch records = sequential multiset" ~count:10
    QCheck2.Gen.(
      pair (Helpers.tree_gen ~max_nodes:20)
        (array_size (return 48) (Helpers.twig_gen ~nlabels:6 ~max_nodes:7 ())))
    (fun (tree, batch) ->
      let summary = Summary.build ~k:2 tree in
      let engine = Engine.create summary in
      ignore (Engine.batch ~extra engine batch);
      let seq_audit = Audit.create () in
      let seq = Engine.batch ~extra ~audit:seq_audit engine batch in
      let par_audit = Audit.create () in
      let par =
        Pool.with_pool ~domains:4 (fun pool ->
            Engine.batch ~pool ~extra ~audit:par_audit engine batch)
      in
      Array.for_all2 same_float seq par
      && audit_projection seq_audit = audit_projection par_audit)

let test_audit_captures_clamp_and_feedback () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let engine = Engine.create summary in
  let twig = Helpers.twig_of_string tree "a(b(c,d),b)" in
  let root_id = Twig.Key.id (Twig.key (Twig.canonicalize twig)) in
  let audit = Audit.create () in
  let poison key = if Twig.Key.id key = root_id then Some Float.nan else None in
  ignore (Engine.batch ~extra:poison ~audit engine [| twig |]);
  (match Audit.records audit with
  | [ r ] ->
    Alcotest.(check bool) "clamp flagged" true r.Audit.clamped;
    Alcotest.(check bool) "feedback hit flagged" true r.Audit.feedback_hit;
    check_bits "clamped estimate recorded as served" 0.0 r.Audit.estimate;
    Alcotest.(check int) "key id recorded" root_id r.Audit.key_id
  | rs -> Alcotest.failf "expected 1 record, got %d" (List.length rs));
  (* Without feedback the same query is finite and unflagged. *)
  ignore (Engine.batch ~audit engine [| twig |]);
  match Audit.recent ~limit:1 audit with
  | [ r ] ->
    Alcotest.(check bool) "no clamp" false r.Audit.clamped;
    Alcotest.(check bool) "no feedback" false r.Audit.feedback_hit;
    Alcotest.(check bool) "plan cache hit recorded" true r.Audit.plan_hit
  | rs -> Alcotest.failf "expected 1 recent record, got %d" (List.length rs)

(* --- drift monitor ------------------------------------------------------- *)

let test_monitor_window_quantiles_and_alarm () =
  let oracle _ = 100.0 in
  let m = Monitor.create ~sample_rate:1.0 ~window:8 ~threshold:0.5 ~min_samples:4 ~oracle () in
  Alcotest.(check bool) "no alarm before min_samples" false (Monitor.alarm m);
  (* Three accurate observations: rel error 0.1 each. *)
  for _ = 1 to 3 do
    ignore (Monitor.observe m ~exact:100.0 ~estimate:110.0)
  done;
  Alcotest.(check bool) "still below min_samples" false (Monitor.alarm m);
  (* A fourth accurate one: window full enough, p90 = 0.1 < 0.5. *)
  ignore (Monitor.observe m ~exact:100.0 ~estimate:110.0);
  Alcotest.(check bool) "accurate window does not alarm" false (Monitor.alarm m);
  Alcotest.(check (float 1e-9)) "p50 of identical errors" 0.1 (Monitor.quantile m 0.5);
  (* Flood with terrible estimates: p90 crosses, alarm latches. *)
  for _ = 1 to 8 do
    ignore (Monitor.observe m ~exact:100.0 ~estimate:400.0)
  done;
  Alcotest.(check bool) "drifted window alarms" true (Monitor.alarm m);
  let s = Monitor.stats m in
  Alcotest.(check int) "observations counted" 12 s.Monitor.samples;
  Alcotest.(check int) "window is sliding" 8 s.Monitor.window_n;
  Alcotest.(check (float 1e-9)) "window now all-bad: p90 = 3" 3.0 s.Monitor.p90;
  Alcotest.(check int) "one raise transition" 1 s.Monitor.alarm_transitions;
  (* Recovery: accurate estimates push the bad errors out of the window. *)
  for _ = 1 to 8 do
    ignore (Monitor.observe m ~exact:100.0 ~estimate:100.0)
  done;
  Alcotest.(check bool) "alarm clears on recovery" false (Monitor.alarm m);
  Alcotest.(check (float 1e-9)) "perfect estimates: p99 = 0" 0.0 (Monitor.quantile m 0.99)

(* The golden determinism contract: same seed, same query sequence, same
   sampling trace — regardless of whether evaluation ran on a pool. *)
let test_monitor_sampling_deterministic () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let distinct = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let batch = Array.init 40 (fun i -> distinct.(i mod Array.length distinct)) in
  let run ~pool () =
    let engine = Engine.create summary in
    ignore (Engine.batch engine batch);
    let oracle = Monitor.oracle_of_tree tree in
    let m = Monitor.create ~sample_rate:0.5 ~seed:42 ~oracle () in
    (match pool with
    | None -> ignore (Engine.batch ~monitor:m engine batch)
    | Some pool -> ignore (Engine.batch ~pool ~monitor:m engine batch));
    Monitor.stats m
  in
  let a = run ~pool:None () in
  let b = run ~pool:None () in
  let c = Pool.with_pool ~domains:4 (fun pool -> run ~pool:(Some pool) ()) in
  Alcotest.(check bool) "two sequential runs identical" true (a = b);
  Alcotest.(check bool) "parallel run identical to sequential" true (a = c);
  Alcotest.(check bool) "something was sampled at rate 0.5" true (a.Monitor.samples > 0);
  Alcotest.(check bool) "not everything was sampled at rate 0.5" true
    (a.Monitor.samples < Array.length distinct)

(* End-to-end golden: rate 1.0 over the fig11 batch samples every distinct
   query exactly once per batch, and the window errors equal the
   independently computed |estimate - exact| / max 1 exact. *)
let test_monitor_engine_golden () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let distinct = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let engine = Engine.create summary in
  ignore (Engine.batch engine distinct);
  let ctx = Tl_twig.Match_count.create_ctx tree in
  let m = Monitor.create ~sample_rate:1.0 ~oracle:(Monitor.oracle_of_tree tree) () in
  let estimates = Engine.batch ~monitor:m engine distinct in
  let s = Monitor.stats m in
  Alcotest.(check int) "every distinct query sampled" (Array.length distinct) s.Monitor.samples;
  let expected_errors =
    Array.to_list
      (Array.mapi
         (fun i twig ->
           let exact = float_of_int (Tl_twig.Match_count.selectivity ctx twig) in
           Float.abs (estimates.(i) -. exact) /. Float.max 1.0 exact)
         distinct)
  in
  let expected_sorted = List.sort compare expected_errors in
  let golden_p50 = List.nth expected_sorted (List.length expected_sorted / 2) in
  Alcotest.(check (float 1e-9)) "window p50 matches recomputation" golden_p50
    (Monitor.quantile m 0.5);
  (* The adaptive-backed oracle also records feedback: after monitoring
     through it, the engine's answers for sampled queries become exact. *)
  let tl = Tl_core.Treelattice.of_summary tree summary in
  let adaptive = Tl_core.Adaptive.create ~capacity:64 tl in
  let m2 = Monitor.create ~sample_rate:1.0 ~oracle:(Monitor.oracle_of_adaptive adaptive) () in
  ignore (Engine.batch ~monitor:m2 engine distinct);
  let with_feedback = Engine.batch ~extra:(Tl_core.Adaptive.lookup adaptive) engine distinct in
  Array.iteri
    (fun i twig ->
      check_bits
        (Printf.sprintf "feedback loop closes query %d" i)
        (float_of_int (Tl_twig.Match_count.selectivity ctx twig))
        with_feedback.(i))
    distinct

let test_engine_estimate_single () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let tl = Tl_core.Treelattice.build ~k:3 tree in
  let engine = Engine.of_treelattice tl in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  check_bits "engine = front-end" (Tl_core.Treelattice.estimate tl twig) (Engine.estimate engine twig);
  check_bits "scheme override" 4.0 (Engine.estimate ~scheme:Estimator.Recursive engine twig)

let () =
  Alcotest.run "serve"
    [
      ( "plan",
        [
          prop_plan_matches_direct;
          Alcotest.test_case "accessors and fig11 value" `Quick test_plan_accessors;
          Alcotest.test_case "probe" `Quick test_plan_probe_reports_without_perturbing;
        ] );
      ( "plan_cache",
        [
          Alcotest.test_case "interning" `Quick test_plan_cache_interns;
          Alcotest.test_case "eviction bounded" `Quick test_plan_cache_eviction_bounded;
        ] );
      ( "engine",
        [
          Alcotest.test_case "batch = direct" `Quick test_batch_matches_direct;
          prop_parallel_batch_matches_sequential;
          Alcotest.test_case "batch with feedback" `Quick test_batch_with_extra_matches_direct;
          Alcotest.test_case "parallel adaptive feedback stress" `Quick
            test_parallel_adaptive_feedback_stress;
          Alcotest.test_case "value batches" `Quick test_batch_values_matches_value_estimator;
          Alcotest.test_case "non-finite clamped" `Quick test_batch_clamps_nonfinite;
          Alcotest.test_case "single estimate" `Quick test_engine_estimate_single;
        ] );
      ( "audit",
        [
          Alcotest.test_case "ring capacity and views" `Quick test_audit_ring_and_views;
          prop_parallel_audit_matches_sequential;
          Alcotest.test_case "clamp and feedback flags" `Quick test_audit_captures_clamp_and_feedback;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "window quantiles and alarm" `Quick
            test_monitor_window_quantiles_and_alarm;
          Alcotest.test_case "sampling deterministic across pools" `Quick
            test_monitor_sampling_deterministic;
          Alcotest.test_case "engine golden errors" `Quick test_monitor_engine_golden;
        ] );
    ]
