(* Tests for the workload-adaptive layer and the match-enumeration engine. *)

module Adaptive = Tl_core.Adaptive
module Treelattice = Tl_core.Treelattice
module Estimator = Tl_core.Estimator
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Match_enum = Tl_twig.Match_enum
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

let close = Alcotest.(check (float 1e-6))

let fig11_tl () = Treelattice.build ~k:3 (Helpers.tree_of Helpers.fig11_spec)

(* --- adaptive cache ------------------------------------------------------------ *)

let test_observation_fixes_estimate () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create tl in
  let twig = Helpers.twig_of_string (Treelattice.tree tl) "a(b(c,d))" in
  (* Voting over-averages this query to 7 (regression-tested elsewhere);
     after feedback the cache answers exactly. *)
  close "before feedback" 7.0 (Adaptive.estimate adaptive twig);
  let truth = Adaptive.observe_exact adaptive twig in
  Alcotest.(check int) "truth" 4 truth;
  close "after feedback" 4.0 (Adaptive.estimate adaptive twig);
  Alcotest.(check int) "one pattern cached" 1 (Adaptive.cached_patterns adaptive);
  Alcotest.(check bool) "cache hit recorded" true (Adaptive.hit_count adaptive > 0)

let test_observation_anchors_supertwigs () =
  (* Learning a sub-twig improves estimates of queries that decompose
     through it: cache a(b(c,d)); estimate a(b(c,d),b). *)
  let tl = fig11_tl () in
  let adaptive = Adaptive.create tl in
  let tree = Treelattice.tree tl in
  let inner = Helpers.twig_of_string tree "a(b(c,d))" in
  let outer = Helpers.twig_of_string tree "a(b(c,d),b)" in
  let truth = float_of_int (Treelattice.exact tl outer) in
  let before = Adaptive.estimate ~scheme:Estimator.Recursive adaptive outer in
  ignore (Adaptive.observe_exact adaptive inner);
  let after = Adaptive.estimate ~scheme:Estimator.Recursive adaptive outer in
  Alcotest.(check bool)
    (Printf.sprintf "closer to truth (%.1f): %.2f -> %.2f" truth before after)
    true
    (Float.abs (after -. truth) <= Float.abs (before -. truth))

let test_small_patterns_not_cached () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create tl in
  let twig = Helpers.twig_of_string (Treelattice.tree tl) "b(c)" in
  ignore (Adaptive.observe_exact adaptive twig);
  Alcotest.(check int) "lattice-resident pattern skipped" 0 (Adaptive.cached_patterns adaptive)

let test_lru_eviction () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create ~capacity:2 tl in
  let tree = Treelattice.tree tl in
  let q1 = Helpers.twig_of_string tree "a(b(c,d))" in
  let q2 = Helpers.twig_of_string tree "a(b(c),b(d))" in
  let q3 = Helpers.twig_of_string tree "a(b,b,b,b)" in
  ignore (Adaptive.observe_exact adaptive q1);
  ignore (Adaptive.observe_exact adaptive q2);
  Alcotest.(check int) "at capacity" 2 (Adaptive.cached_patterns adaptive);
  (* Touch q1 so q2 is the LRU victim. *)
  ignore (Adaptive.estimate adaptive q1);
  ignore (Adaptive.observe_exact adaptive q3);
  Alcotest.(check int) "capacity respected" 2 (Adaptive.cached_patterns adaptive);
  close "q1 survived" (float_of_int (Treelattice.exact tl q1)) (Adaptive.estimate adaptive q1)

let test_stats () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create ~capacity:2 tl in
  let tree = Treelattice.tree tl in
  let q1 = Helpers.twig_of_string tree "a(b(c,d))" in
  let q2 = Helpers.twig_of_string tree "a(b(c),b(d))" in
  let q3 = Helpers.twig_of_string tree "a(b,b,b,b)" in
  ignore (Adaptive.observe_exact adaptive q1);
  ignore (Adaptive.observe_exact adaptive q2);
  ignore (Adaptive.observe_exact adaptive q3);
  ignore (Adaptive.estimate adaptive q3);
  (* q1 was evicted, so estimating it records cache misses. *)
  ignore (Adaptive.estimate adaptive q1);
  let s = Adaptive.stats adaptive in
  Alcotest.(check int) "size" 2 s.Adaptive.size;
  Alcotest.(check int) "capacity" 2 s.Adaptive.capacity;
  Alcotest.(check int) "one eviction" 1 s.Adaptive.evictions;
  Alcotest.(check bool) "hits counted" true (s.Adaptive.hits > 0);
  Alcotest.(check bool) "misses counted" true (s.Adaptive.misses > 0);
  Alcotest.(check int) "hit_count agrees" s.Adaptive.hits (Adaptive.hit_count adaptive)

let test_observe_validation () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create tl in
  let twig = Helpers.twig_of_string (Treelattice.tree tl) "a(b(c,d))" in
  Alcotest.check_raises "negative count" (Invalid_argument "Adaptive.observe: negative count")
    (fun () -> Adaptive.observe adaptive twig (-1));
  Alcotest.check_raises "bad capacity" (Invalid_argument "Adaptive.create: capacity must be >= 1")
    (fun () -> ignore (Adaptive.create ~capacity:0 tl))

let test_unobserved_matches_plain_estimator () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create tl in
  let twig = Helpers.twig_of_string (Treelattice.tree tl) "a(b(c),b(d))" in
  close "no feedback = plain estimate" (Treelattice.estimate tl twig) (Adaptive.estimate adaptive twig)

(* --- concurrent feedback ------------------------------------------------------------ *)

module Engine = Tl_serve.Engine
module Pool = Tl_util.Pool

(* Whatever interleaving a pooled batch produces, the post-batch stats
   must balance: every lookup is either a hit or a miss, the cache never
   outgrows its capacity, and the recency list stays well-formed. *)
let prop_concurrent_feedback_invariants =
  Helpers.qcheck_case ~name:"pooled feedback batches keep stats invariants" ~count:10
    QCheck2.Gen.(
      pair (Helpers.tree_gen ~max_nodes:20)
        (array_size (return 24) (Helpers.twig_gen ~nlabels:6 ~max_nodes:7 ())))
    (fun (tree, batch) ->
      let tl = Treelattice.build ~k:2 tree in
      let adaptive = Adaptive.create ~capacity:3 tl in
      Array.iteri
        (fun i tw -> if i mod 3 = 0 then Adaptive.observe adaptive tw ((Twig.size tw * 3) + 1))
        batch;
      let engine = Engine.of_treelattice tl in
      let lookups = Atomic.make 0 in
      let extra key =
        Atomic.incr lookups;
        Adaptive.lookup adaptive key
      in
      let before = Adaptive.stats adaptive in
      let results = Pool.with_pool ~domains:4 (fun pool -> Engine.batch ~pool ~extra engine batch) in
      let after = Adaptive.stats adaptive in
      Array.for_all Float.is_finite results
      && after.Adaptive.size <= after.Adaptive.capacity
      && after.Adaptive.hits + after.Adaptive.misses
         - (before.Adaptive.hits + before.Adaptive.misses)
         = Atomic.get lookups
      && Adaptive.check_integrity adaptive = Ok ())

(* Lookups and observes racing from worker domains.  Exact counts are
   precomputed on the owner domain (Treelattice.exact shares a counting
   context and stays single-domain); workers then interleave observe and
   lookup against one undersized cache, forcing eviction churn under
   contention.  A surviving cached pattern must still answer with its
   exact count — lost updates or crossed splices would surface here or in
   check_integrity. *)
let test_concurrent_lookup_observe_stress () =
  let tl = fig11_tl () in
  let adaptive = Adaptive.create ~capacity:3 tl in
  let tree = Treelattice.tree tl in
  let patterns =
    Array.of_list
      (List.map
         (fun q ->
           let tw = Helpers.twig_of_string tree q in
           (Twig.key (Twig.canonicalize tw), tw, Treelattice.exact tl tw))
         [ "a(b(c,d))"; "a(b(c),b(d))"; "a(b,b,b,b)"; "a(b(c,c,d))"; "a(b(c,d),b)"; "a(b(c,d,d))" ])
  in
  let work = Array.init 96 (fun i -> i) in
  Pool.with_pool ~domains:4 (fun pool ->
      for _ = 1 to 10 do
        ignore
          (Pool.parallel_map pool
             (fun i ->
               let key, tw, count = patterns.(i mod Array.length patterns) in
               if i mod 4 = 0 then Adaptive.observe adaptive tw count
               else ignore (Adaptive.lookup adaptive key))
             work)
      done);
  (match Adaptive.check_integrity adaptive with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "corrupt LRU after mixed observe/lookup: %s" msg);
  let s = Adaptive.stats adaptive in
  Alcotest.(check bool) "size bounded" true (s.Adaptive.size <= s.Adaptive.capacity);
  Alcotest.(check bool) "cache not empty" true (s.Adaptive.size > 0);
  Array.iter
    (fun (key, _, count) ->
      match Adaptive.lookup adaptive key with
      | Some v -> close "surviving pattern still exact" (float_of_int count) v
      | None -> ())
    patterns

(* --- match enumeration ------------------------------------------------------------ *)

let test_enumerate_fig1 () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = Helpers.twig_of_string tree "laptop(brand,price)" in
  let matches = Match_enum.enumerate tree twig in
  Alcotest.(check int) "two matches" 2 (List.length matches);
  List.iter
    (fun m -> Alcotest.(check bool) "valid match" true (Match_enum.is_match tree twig m))
    matches;
  (* Matches are distinct assignments. *)
  let rendered = List.map (fun m -> Array.to_list m) matches in
  Alcotest.(check int) "distinct" 2 (List.length (List.sort_uniq compare rendered))

let test_enumerate_respects_limit () =
  let tree = TB.build (TB.node "b" (TB.replicate 4 (TB.leaf "c"))) in
  let twig = Helpers.twig_of_string tree "b(c,c)" in
  Alcotest.(check int) "limit" 5 (List.length (Match_enum.enumerate ~limit:5 tree twig));
  Alcotest.(check int) "limit 0" 0 (List.length (Match_enum.enumerate ~limit:0 tree twig));
  Alcotest.(check int) "all without limit" 12 (List.length (Match_enum.enumerate tree twig));
  Alcotest.check_raises "negative limit" (Invalid_argument "Match_enum.enumerate: negative limit")
    (fun () -> ignore (Match_enum.enumerate ~limit:(-1) tree twig))

let test_enumerate_empty () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = Helpers.twig_of_string tree "desktop(price)" in
  Alcotest.(check int) "no matches" 0 (List.length (Match_enum.enumerate tree twig))

let test_is_match_rejects_bad_mappings () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = Helpers.twig_of_string tree "laptop(brand,price)" in
  (match Match_enum.enumerate ~limit:1 tree twig with
  | [ good ] ->
    Alcotest.(check bool) "good accepted" true (Match_enum.is_match tree twig good);
    let broken = Array.copy good in
    broken.(1) <- broken.(0);
    Alcotest.(check bool) "non-injective rejected" false (Match_enum.is_match tree twig broken);
    let wrong_label = Array.copy good in
    wrong_label.(0) <- Tl_tree.Data_tree.root tree;
    Alcotest.(check bool) "label mismatch rejected" false (Match_enum.is_match tree twig wrong_label)
  | _ -> Alcotest.fail "expected one match");
  Alcotest.(check bool) "arity mismatch rejected" false (Match_enum.is_match tree twig [| 0 |])

let prop_enumeration_count_equals_dp =
  Helpers.qcheck_case ~name:"enumeration count = DP count on random trees" ~count:50
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let ctx = Match_count.create_ctx tree in
      let rng = Tl_util.Xorshift.create 53 in
      let ok = ref true in
      for _ = 1 to 4 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:4 with
        | None -> ()
        | Some twig ->
          if Match_enum.count_via_enumeration tree twig <> Match_count.selectivity ctx twig then
            ok := false
      done;
      !ok)

let prop_enumerated_matches_valid =
  Helpers.qcheck_case ~name:"every enumerated match validates" ~count:30
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let rng = Tl_util.Xorshift.create 57 in
      match Tl_twig.Twig_enum.random_subtree rng tree ~size:3 with
      | None -> true
      | Some twig ->
        List.for_all
          (fun m -> Match_enum.is_match tree twig m)
          (Match_enum.enumerate ~limit:64 tree twig))

let () =
  Alcotest.run "adaptive"
    [
      ( "cache",
        [
          Alcotest.test_case "feedback fixes estimate" `Quick test_observation_fixes_estimate;
          Alcotest.test_case "anchors supertwigs" `Quick test_observation_anchors_supertwigs;
          Alcotest.test_case "small patterns skipped" `Quick test_small_patterns_not_cached;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "validation" `Quick test_observe_validation;
          Alcotest.test_case "unobserved unchanged" `Quick test_unobserved_matches_plain_estimator;
        ] );
      ( "concurrency",
        [
          prop_concurrent_feedback_invariants;
          Alcotest.test_case "mixed observe/lookup stress" `Quick
            test_concurrent_lookup_observe_stress;
        ] );
      ( "match_enum",
        [
          Alcotest.test_case "fig1 matches" `Quick test_enumerate_fig1;
          Alcotest.test_case "limit" `Quick test_enumerate_respects_limit;
          Alcotest.test_case "empty" `Quick test_enumerate_empty;
          Alcotest.test_case "is_match rejections" `Quick test_is_match_rejects_bad_mappings;
          prop_enumeration_count_equals_dp;
          prop_enumerated_matches_valid;
        ] );
    ]
