(* Tests for the XML substrate: lexer, parser, writer, round-trips. *)

module Xml_dom = Tl_xml.Xml_dom
module Xml_writer = Tl_xml.Xml_writer
module Xml_error = Tl_xml.Xml_error

let parse = Xml_dom.parse_string

let root s = (parse s).Xml_dom.root

let check_tag = Alcotest.(check string)

let expect_parse_error input =
  match parse input with
  | exception Xml_error.Parse_error _ -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" input

(* --- basic structure ----------------------------------------------------- *)

let test_single_element () =
  let el = root "<a/>" in
  check_tag "tag" "a" el.tag;
  Alcotest.(check int) "no children" 0 (List.length el.children)

let test_nested_elements () =
  let el = root "<a><b><c/></b><d/></a>" in
  check_tag "tag" "a" el.tag;
  Alcotest.(check int) "two children" 2 (List.length el.children);
  match el.children with
  | [ Element b; Element d ] ->
    check_tag "first child" "b" b.tag;
    check_tag "second child" "d" d.tag;
    (match b.children with
    | [ Element c ] -> check_tag "grandchild" "c" c.tag
    | _ -> Alcotest.fail "expected one grandchild")
  | _ -> Alcotest.fail "expected two element children"

let test_text_content () =
  let el = root "<a>hello <b/> world</a>" in
  match el.children with
  | [ Text t1; Element _; Text t2 ] ->
    Alcotest.(check string) "leading text" "hello " t1;
    Alcotest.(check string) "trailing text" " world" t2
  | _ -> Alcotest.fail "expected text/element/text"

let test_attributes () =
  let el = root {|<a x="1" y='two'/>|} in
  Alcotest.(check (list (pair string string))) "attrs" [ ("x", "1"); ("y", "two") ] el.attrs

let test_attribute_entities () =
  let el = root {|<a x="a&amp;b&lt;c&#65;"/>|} in
  Alcotest.(check (list (pair string string))) "resolved" [ ("x", "a&b<cA") ] el.attrs

let test_duplicate_attribute_rejected () = expect_parse_error {|<a x="1" x="2"/>|}

let test_attr_missing_quotes () = expect_parse_error "<a x=1/>"

(* --- references ------------------------------------------------------------ *)

let test_predefined_entities () =
  let el = root "<a>&lt;&gt;&amp;&apos;&quot;</a>" in
  match el.children with
  | [ Text t ] -> Alcotest.(check string) "entities" "<>&'\"" t
  | _ -> Alcotest.fail "expected one text node"

let test_numeric_references () =
  let el = root "<a>&#65;&#x42;&#x1F600;</a>" in
  match el.children with
  | [ Text t ] -> Alcotest.(check string) "char refs" "AB\xF0\x9F\x98\x80" t
  | _ -> Alcotest.fail "expected one text node"

let test_unknown_entity_rejected () = expect_parse_error "<a>&nope;</a>"

let test_bad_charref_rejected () = expect_parse_error "<a>&#xZZ;</a>"

(* Surrogates pass a plain [<= 0x10FFFF] range check but are not Unicode
   scalar values; the lexer must reject them as a positioned parse error,
   not leak [Uchar.of_int]'s [Invalid_argument]. *)
let test_surrogate_charref_rejected () =
  List.iter expect_parse_error
    [ "<a>&#xD800;</a>"; "<a>&#xDFFF;</a>"; "<a>&#55296;</a>" ]

let test_out_of_range_charref_rejected () = expect_parse_error "<a>&#x110000;</a>"

let test_astral_charref_accepted () =
  let el = root "<a>&#x1F600;</a>" in
  match el.children with
  | [ Text t ] -> Alcotest.(check string) "astral ref" "\xF0\x9F\x98\x80" t
  | _ -> Alcotest.fail "expected one text node"

(* --- other markup ------------------------------------------------------------ *)

let test_cdata () =
  let el = root "<a><![CDATA[<not><parsed>&amp;]]></a>" in
  match el.children with
  | [ Text t ] -> Alcotest.(check string) "cdata verbatim" "<not><parsed>&amp;" t
  | _ -> Alcotest.fail "expected one text node"

let test_comments () =
  let el = root "<a><!-- a comment --><b/></a>" in
  match el.children with
  | [ Comment c; Element _ ] -> Alcotest.(check string) "comment body" " a comment " c
  | _ -> Alcotest.fail "expected comment then element"

let test_processing_instruction () =
  let el = root "<a><?target some content?></a>" in
  match el.children with
  | [ Pi (target, content) ] ->
    Alcotest.(check string) "target" "target" target;
    Alcotest.(check string) "content" "some content" content
  | _ -> Alcotest.fail "expected a PI"

let test_declaration () =
  let doc = parse {|<?xml version="1.0" encoding="UTF-8"?><a/>|} in
  Alcotest.(check (option (list (pair string string))))
    "decl"
    (Some [ ("version", "1.0"); ("encoding", "UTF-8") ])
    doc.decl

let test_doctype_skipped () =
  let doc = parse {|<?xml version="1.0"?><!DOCTYPE a SYSTEM "a.dtd" [<!ELEMENT a EMPTY>]><a/>|} in
  check_tag "root after doctype" "a" doc.root.tag

let test_leading_misc_skipped () =
  let doc = parse "<!-- preamble --><?pi data?><a/>" in
  check_tag "root" "a" doc.root.tag

(* --- error cases ------------------------------------------------------------- *)

let test_mismatched_close () = expect_parse_error "<a><b></a></b>"

let test_unclosed_element () = expect_parse_error "<a><b>"

let test_trailing_content () = expect_parse_error "<a/><b/>"

let test_empty_input () = expect_parse_error ""

let test_junk_before_root () = expect_parse_error "junk <a/>"

let test_error_position () =
  match parse "<a>\n  <b x=></b></a>" with
  | exception Xml_error.Parse_error (pos, _) ->
    Alcotest.(check int) "line" 2 pos.line;
    Alcotest.(check bool) "column sensible" true (pos.column > 1)
  | _ -> Alcotest.fail "expected a parse error"

(* --- writer --------------------------------------------------------------------- *)

let test_escapes () =
  Alcotest.(check string) "text escape" "a&amp;b&lt;c&gt;d" (Xml_writer.escape_text "a&b<c>d");
  Alcotest.(check string) "attr escape" "&quot;x&amp;" (Xml_writer.escape_attr "\"x&");
  Alcotest.(check string) "no-op fast path" "plain" (Xml_writer.escape_text "plain")

let test_write_simple () =
  let doc = parse {|<a x="1"><b>text</b><c/></a>|} in
  Alcotest.(check string) "serialized" {|<a x="1"><b>text</b><c/></a>|} (Xml_writer.to_string doc)

let test_serialized_size () =
  let doc = parse "<a><b/></a>" in
  Alcotest.(check int) "size = string length"
    (String.length (Xml_writer.to_string doc))
    (Xml_writer.serialized_size doc)

let test_roundtrip_with_special_chars () =
  let original = {|<a t="&lt;&amp;&quot;">body &amp; more</a>|} in
  let doc = parse original in
  let reparsed = parse (Xml_writer.to_string doc) in
  Alcotest.(check bool) "roundtrip equal" true (Xml_dom.equal_element doc.root reparsed.root)

let rec strip_ws_element (el : Xml_dom.element) =
  let children =
    List.filter_map
      (fun n ->
        match n with
        | Xml_dom.Element e -> Some (Xml_dom.Element (strip_ws_element e))
        | Xml_dom.Text t when String.trim t = "" -> None
        | other -> Some other)
      el.children
  in
  { el with children }

let test_indent_preserves_structure () =
  let doc = parse "<a><b><c/></b><d>leaf text</d></a>" in
  let indented = Xml_writer.to_string ~indent:true doc in
  Alcotest.(check bool) "has newlines" true (String.contains indented '\n');
  let reparsed = parse indented in
  Alcotest.(check bool) "same structure modulo whitespace" true
    (Xml_dom.equal_element doc.root (strip_ws_element reparsed.root))

let test_parse_file_and_to_file () =
  let path = Filename.temp_file "tl_test" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let doc = parse {|<root a="1"><kid/>text</root>|} in
      Xml_writer.to_file path doc;
      let loaded = Xml_dom.parse_file path in
      Alcotest.(check bool) "file roundtrip" true (Xml_dom.equal_element doc.root loaded.root))

(* --- document queries -------------------------------------------------------------- *)

let test_count_elements () =
  Alcotest.(check int) "count" 4 (Xml_dom.count_elements (parse "<a><b/><b><c/></b>x</a>"))

let test_tags_first_appearance_order () =
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (Xml_dom.tags (parse "<a><b/><c/><b/></a>"))

let test_depth () =
  Alcotest.(check int) "depth 1" 1 (Xml_dom.depth (parse "<a/>"));
  Alcotest.(check int) "depth 3" 3 (Xml_dom.depth (parse "<a><b><c/></b><d/></a>"))

(* --- properties ---------------------------------------------------------------------- *)

let prop_generated_roundtrip =
  Helpers.qcheck_case ~name:"random tree write/parse roundtrip" ~count:200
    (Helpers.spec_gen ~max_nodes:30)
    (fun spec ->
      let el = Tl_tree.Tree_builder.to_element spec in
      let doc : Xml_dom.t = { decl = None; root = el } in
      let reparsed = parse (Xml_writer.to_string doc) in
      Xml_dom.equal_element el reparsed.root)

let prop_indent_roundtrip =
  Helpers.qcheck_case ~name:"indented write/parse keeps element structure" ~count:100
    (Helpers.spec_gen ~max_nodes:25)
    (fun spec ->
      let el = Tl_tree.Tree_builder.to_element spec in
      let doc : Xml_dom.t = { decl = None; root = el } in
      let reparsed = parse (Xml_writer.to_string ~indent:true doc) in
      Xml_dom.equal_element el (strip_ws_element reparsed.root))

let () =
  Alcotest.run "xml"
    [
      ( "structure",
        [
          Alcotest.test_case "single element" `Quick test_single_element;
          Alcotest.test_case "nesting" `Quick test_nested_elements;
          Alcotest.test_case "text content" `Quick test_text_content;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "attribute entities" `Quick test_attribute_entities;
          Alcotest.test_case "duplicate attribute" `Quick test_duplicate_attribute_rejected;
          Alcotest.test_case "unquoted attribute" `Quick test_attr_missing_quotes;
        ] );
      ( "references",
        [
          Alcotest.test_case "predefined entities" `Quick test_predefined_entities;
          Alcotest.test_case "numeric references" `Quick test_numeric_references;
          Alcotest.test_case "unknown entity" `Quick test_unknown_entity_rejected;
          Alcotest.test_case "bad charref" `Quick test_bad_charref_rejected;
          Alcotest.test_case "surrogate charref" `Quick test_surrogate_charref_rejected;
          Alcotest.test_case "out-of-range charref" `Quick test_out_of_range_charref_rejected;
          Alcotest.test_case "astral charref" `Quick test_astral_charref_accepted;
        ] );
      ( "markup",
        [
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "processing instruction" `Quick test_processing_instruction;
          Alcotest.test_case "xml declaration" `Quick test_declaration;
          Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
          Alcotest.test_case "leading misc skipped" `Quick test_leading_misc_skipped;
        ] );
      ( "errors",
        [
          Alcotest.test_case "mismatched close" `Quick test_mismatched_close;
          Alcotest.test_case "unclosed element" `Quick test_unclosed_element;
          Alcotest.test_case "trailing content" `Quick test_trailing_content;
          Alcotest.test_case "empty input" `Quick test_empty_input;
          Alcotest.test_case "junk before root" `Quick test_junk_before_root;
          Alcotest.test_case "error position" `Quick test_error_position;
        ] );
      ( "writer",
        [
          Alcotest.test_case "escapes" `Quick test_escapes;
          Alcotest.test_case "simple write" `Quick test_write_simple;
          Alcotest.test_case "serialized size" `Quick test_serialized_size;
          Alcotest.test_case "special chars roundtrip" `Quick test_roundtrip_with_special_chars;
          Alcotest.test_case "indent keeps structure" `Quick test_indent_preserves_structure;
          Alcotest.test_case "file io" `Quick test_parse_file_and_to_file;
          prop_generated_roundtrip;
          prop_indent_roundtrip;
        ] );
      ( "queries",
        [
          Alcotest.test_case "count elements" `Quick test_count_elements;
          Alcotest.test_case "tags order" `Quick test_tags_first_appearance_order;
          Alcotest.test_case "depth" `Quick test_depth;
        ] );
    ]
