(* Tests for the twig ADT: canonical forms, encoding, the node-indexed view,
   decomposition edits, and the textual syntax. *)

module Twig = Tl_twig.Twig
module Twig_parse = Tl_twig.Twig_parse

let t = Alcotest.testable (Fmt.of_to_string Twig.encode) Twig.equal

(* 0(1,2(3)) style shorthand *)
let n = Twig.node
let l = Twig.leaf

(* --- shape accessors --------------------------------------------------------- *)

let test_size_depth_width () =
  let tw = n 0 [ l 1; n 2 [ l 3; l 4 ] ] in
  Alcotest.(check int) "size" 5 (Twig.size tw);
  Alcotest.(check int) "depth" 3 (Twig.depth tw);
  Alcotest.(check int) "width" 2 (Twig.width tw);
  Alcotest.(check int) "leaf size" 1 (Twig.size (l 9));
  Alcotest.(check int) "leaf depth" 1 (Twig.depth (l 9));
  Alcotest.(check int) "leaf width" 0 (Twig.width (l 9))

let test_labels_preorder () =
  Alcotest.(check (list int)) "labels" [ 0; 1; 2; 3 ] (Twig.labels (n 0 [ l 1; n 2 [ l 3 ] ]))

(* --- canonical form ------------------------------------------------------------ *)

let test_canonicalize_sorts_children () =
  let a = n 0 [ l 2; l 1 ] in
  let b = n 0 [ l 1; l 2 ] in
  Alcotest.check t "sibling order ignored" (Twig.canonicalize a) (Twig.canonicalize b);
  Alcotest.(check bool) "canonical flag" true (Twig.is_canonical (Twig.canonicalize a))

let test_canonicalize_deep () =
  let a = n 0 [ n 1 [ l 3; l 2 ]; n 1 [ l 2; l 2 ] ] in
  let b = n 0 [ n 1 [ l 2; l 2 ]; n 1 [ l 2; l 3 ] ] in
  Alcotest.check t "nested reordering" (Twig.canonicalize a) (Twig.canonicalize b)

let test_canonicalize_idempotent () =
  let tw = Twig.canonicalize (n 5 [ n 3 [ l 9 ]; l 1; l 7 ]) in
  Alcotest.check t "idempotent" tw (Twig.canonicalize tw)

let test_equal_distinguishes_structure () =
  Alcotest.(check bool) "different shapes differ" false
    (Twig.equal (n 0 [ n 1 [ l 2 ] ]) (n 0 [ l 1; l 2 ]));
  Alcotest.(check bool) "different labels differ" false (Twig.equal (l 1) (l 2))

let test_encode_decode_roundtrip () =
  let tw = Twig.canonicalize (n 10 [ n 2 [ l 30 ]; l 4 ]) in
  Alcotest.check t "decode inverse" tw (Twig.decode (Twig.encode tw));
  Alcotest.(check string) "leaf encoding" "7" (Twig.encode (l 7))

let test_decode_errors () =
  let expect_invalid s =
    match Twig.decode s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "expected decode failure for %S" s
  in
  expect_invalid "";
  expect_invalid "a";
  expect_invalid "1(";
  expect_invalid "1(2";
  expect_invalid "1)2";
  expect_invalid "1(2,)"

let test_hash_agrees_with_equal () =
  let a = Twig.canonicalize (n 0 [ l 2; l 1 ]) in
  let b = Twig.canonicalize (n 0 [ l 1; l 2 ]) in
  Alcotest.(check int) "equal twigs hash alike" (Twig.hash a) (Twig.hash b)

(* --- hash-consed keys ------------------------------------------------------------- *)

let test_key_identity_modulo_order () =
  let a = Twig.key (n 0 [ l 2; n 1 [ l 3; l 4 ] ]) in
  let b = Twig.key (n 0 [ n 1 [ l 4; l 3 ]; l 2 ]) in
  Alcotest.(check int) "same id" (Twig.Key.id a) (Twig.Key.id b);
  Alcotest.(check bool) "Key.equal" true (Twig.Key.equal a b);
  Alcotest.(check bool) "same physical representative" true (Twig.Key.twig a == Twig.Key.twig b)

let test_canonicalize_shares_representative () =
  let a = Twig.canonicalize (n 0 [ l 2; l 1 ]) in
  let b = Twig.canonicalize (n 0 [ l 1; l 2 ]) in
  Alcotest.(check bool) "physically shared" true (a == b);
  Alcotest.(check bool) "idempotent physically" true (Twig.canonicalize a == a)

let test_key_encode_matches () =
  let tw = n 5 [ n 3 [ l 9 ]; l 1 ] in
  Alcotest.(check string) "Key.encode = encode" (Twig.encode tw) (Twig.Key.encode (Twig.key tw))

let test_interned_count_stable () =
  let tw = n 7 [ l 8; n 9 [ l 7 ] ] in
  ignore (Twig.key tw);
  let before = Twig.Key.interned () in
  (* Re-interning the same structure (any sibling order) allocates nothing. *)
  ignore (Twig.key (n 7 [ n 9 [ l 7 ]; l 8 ]));
  ignore (Twig.key tw);
  Alcotest.(check int) "no new ids" before (Twig.Key.interned ());
  ignore (Twig.key (n 7 [ l 8; n 9 [ l 7 ]; l 800 ]));
  Alcotest.(check bool) "fresh structure allocates" true (Twig.Key.interned () > before)

let test_key_compare_agrees () =
  let a = Twig.key (l 1) and b = Twig.key (n 1 [ l 2 ]) in
  Alcotest.(check int) "Key.compare = Twig.compare"
    (compare (Twig.compare (Twig.Key.twig a) (Twig.Key.twig b)) 0)
    (compare (Twig.Key.compare a b) 0)

let prop_key_id_iff_encoding =
  Helpers.qcheck_case ~name:"key ids coincide exactly when encodings do"
    QCheck2.Gen.(pair (Helpers.twig_gen ~max_nodes:8 ()) (Helpers.twig_gen ~max_nodes:8 ()))
    (fun (a, b) ->
      let ka = Twig.key a and kb = Twig.key b in
      Twig.Key.id ka = Twig.Key.id kb = String.equal (Twig.encode a) (Twig.encode b))

let prop_derived_twigs_are_canonical =
  Helpers.qcheck_case ~name:"induced/remove/grow results are pinned representatives"
    (Helpers.twig_gen ~max_nodes:10 ())
    (fun tw ->
      let ix = Twig.index tw in
      let n = Array.length ix.Twig.node_labels in
      let all = List.init n Fun.id in
      Twig.is_canonical (Twig.induced ix all)
      && List.for_all (fun i -> Twig.is_canonical (Twig.remove ix i)) (Twig.degree_one ix)
      && Twig.is_canonical (Twig.grow ix 0 42))

(* --- paths ------------------------------------------------------------------------ *)

let test_paths () =
  let p = Twig.of_path [ 1; 2; 3 ] in
  Alcotest.(check bool) "is_path" true (Twig.is_path p);
  Alcotest.(check (option (list int))) "labels back" (Some [ 1; 2; 3 ]) (Twig.path_labels p);
  Alcotest.(check bool) "branching is not a path" false (Twig.is_path (n 0 [ l 1; l 2 ]));
  Alcotest.(check (option (list int))) "branching has no path labels" None
    (Twig.path_labels (n 0 [ l 1; l 2 ]));
  Alcotest.check_raises "empty path" (Invalid_argument "Twig.of_path: empty label list") (fun () ->
      ignore (Twig.of_path []))

(* --- automorphisms ------------------------------------------------------------------ *)

let test_automorphisms () =
  Alcotest.(check int) "leaf" 1 (Twig.automorphisms (l 0));
  Alcotest.(check int) "distinct children" 1 (Twig.automorphisms (n 0 [ l 1; l 2 ]));
  Alcotest.(check int) "two identical" 2 (Twig.automorphisms (n 0 [ l 1; l 1 ]));
  Alcotest.(check int) "three identical" 6 (Twig.automorphisms (n 0 [ l 1; l 1; l 1 ]));
  Alcotest.(check int) "nested identical" 8
    (Twig.automorphisms (n 0 [ n 1 [ l 2; l 2 ]; n 1 [ l 2; l 2 ] ]));
  Alcotest.(check int) "identical subtrees with internal structure" 2
    (Twig.automorphisms (n 0 [ n 1 [ l 2 ]; n 1 [ l 2 ]; n 1 [ l 3 ] ]))

(* --- node-indexed view ----------------------------------------------------------------- *)

let test_index_layout () =
  let ix = Twig.index (n 0 [ l 2; n 1 [ l 3 ] ]) in
  (* Canonical order sorts children by encoding: "1(3)" < "2". *)
  Alcotest.(check (array int)) "labels in canonical preorder" [| 0; 1; 3; 2 |] ix.Twig.node_labels;
  Alcotest.(check (array int)) "parents" [| -1; 0; 1; 0 |] ix.Twig.parents;
  Alcotest.(check (list int)) "root kids" [ 1; 3 ] ix.Twig.kids.(0)

let test_degree_one () =
  (* Root with one child is degree-1 (its child is not, if it has children). *)
  let path_ix = Twig.index (Twig.of_path [ 0; 1; 2 ]) in
  Alcotest.(check (list int)) "path: root and leaf" [ 0; 2 ] (Twig.degree_one path_ix);
  let star_ix = Twig.index (n 0 [ l 1; l 2; l 3 ]) in
  Alcotest.(check (list int)) "star: leaves only" [ 1; 2; 3 ] (Twig.degree_one star_ix);
  let single_ix = Twig.index (l 5) in
  Alcotest.(check (list int)) "single node has degree 0, nothing removable" []
    (Twig.degree_one single_ix)

let test_remove_leaf () =
  let ix = Twig.index (n 0 [ l 1; l 2 ]) in
  Alcotest.check t "remove leaf 1" (Twig.canonicalize (n 0 [ l 2 ])) (Twig.remove ix 1);
  Alcotest.check t "remove leaf 2" (Twig.canonicalize (n 0 [ l 1 ])) (Twig.remove ix 2)

let test_remove_root () =
  let ix = Twig.index (Twig.of_path [ 0; 1; 2 ]) in
  Alcotest.check t "root removal promotes child" (Twig.of_path [ 1; 2 ]) (Twig.remove ix 0)

let test_remove_errors () =
  let ix = Twig.index (n 0 [ n 1 [ l 2 ]; l 3 ]) in
  Alcotest.check_raises "internal node" (Invalid_argument "Twig.remove: node is not degree-1")
    (fun () -> ignore (Twig.remove ix 1));
  Alcotest.check_raises "branching root" (Invalid_argument "Twig.remove: node is not degree-1")
    (fun () -> ignore (Twig.remove ix 0));
  let single = Twig.index (l 9) in
  Alcotest.check_raises "single node" (Invalid_argument "Twig.remove: cannot remove from a single-node twig")
    (fun () -> ignore (Twig.remove single 0))

let test_induced () =
  let ix = Twig.index (n 0 [ n 1 [ l 2 ]; l 3 ]) in
  (* Canonical preorder: 0, 1, 2, 3. *)
  Alcotest.check t "prefix" (Twig.canonicalize (n 0 [ n 1 [ l 2 ] ])) (Twig.induced ix [ 0; 1; 2 ]);
  Alcotest.check t "subtree rooted below" (Twig.canonicalize (n 1 [ l 2 ])) (Twig.induced ix [ 1; 2 ]);
  Alcotest.check_raises "disconnected" (Invalid_argument "Twig.induced: node set is not connected")
    (fun () -> ignore (Twig.induced ix [ 0; 2 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Twig.induced: empty node set") (fun () ->
      ignore (Twig.induced ix []))

let test_grow () =
  let ix = Twig.index (n 0 [ l 1 ]) in
  Alcotest.check t "grow under root" (Twig.canonicalize (n 0 [ l 1; l 2 ])) (Twig.grow ix 0 2);
  Alcotest.check t "grow under leaf" (Twig.canonicalize (n 0 [ n 1 [ l 2 ] ])) (Twig.grow ix 1 2)

let test_map_labels () =
  let tw = n 0 [ l 1; l 2 ] in
  let mapped = Twig.map_labels (fun x -> x + 10) tw in
  Alcotest.(check (list int)) "mapped labels" [ 10; 11; 12 ] (Twig.labels mapped)

let test_pp () =
  let names = function 0 -> "a" | 1 -> "b" | 2 -> "c" | _ -> "?" in
  Alcotest.(check string) "pretty" "a(b,c)" (Twig.pp ~names (n 0 [ l 1; l 2 ]));
  Alcotest.(check string) "leaf pretty" "b" (Twig.pp ~names (l 1))

(* --- textual syntax --------------------------------------------------------------------- *)

let test_parse_roundtrip () =
  let ast = Twig_parse.parse "a(b, c(d , e) ,f)" in
  Alcotest.(check string) "normalized" "a(b,c(d,e),f)" (Twig_parse.to_string ast);
  Alcotest.(check string) "single tag" "solo" (Twig_parse.to_string (Twig_parse.parse "  solo  "))

let test_parse_errors () =
  let expect_syntax s =
    match Twig_parse.parse s with
    | exception Twig_parse.Syntax_error _ -> ()
    | _ -> Alcotest.failf "expected syntax error for %S" s
  in
  expect_syntax "";
  expect_syntax "a(";
  expect_syntax "a(b";
  expect_syntax "a)b";
  expect_syntax "a(b,,c)";
  expect_syntax "a(b) trailing"

let test_to_twig () =
  let intern = function "a" -> Some 0 | "b" -> Some 1 | _ -> None in
  (match Twig_parse.to_twig ~intern (Twig_parse.parse "a(b,b)") with
  | Ok tw -> Alcotest.check t "converted" (Twig.canonicalize (n 0 [ l 1; l 1 ])) tw
  | Error _ -> Alcotest.fail "expected success");
  match Twig_parse.to_twig ~intern (Twig_parse.parse "a(zzz)") with
  | Error tag -> Alcotest.(check string) "unknown tag reported" "zzz" tag
  | Ok _ -> Alcotest.fail "expected unknown-tag error"

let test_of_twig_inverse () =
  let names = function 0 -> "a" | 1 -> "b" | _ -> "?" in
  let ast = Twig_parse.of_twig ~names (n 0 [ l 1 ]) in
  Alcotest.(check string) "rendered" "a(b)" (Twig_parse.to_string ast)

let test_parse_twig_wrapper () =
  let intern = function "a" -> Some 0 | _ -> None in
  (match Twig_parse.parse_twig ~intern "a" with
  | Ok tw -> Alcotest.check t "ok" (l 0) tw
  | Error m -> Alcotest.failf "unexpected error %s" m);
  (match Twig_parse.parse_twig ~intern "a((" with
  | Error m -> Alcotest.(check bool) "syntax error surfaced" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected error");
  match Twig_parse.parse_twig ~intern "nope" with
  | Error m -> Alcotest.(check bool) "unknown tag surfaced" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected error"

(* --- properties ----------------------------------------------------------------------------- *)

let gen = Helpers.twig_gen ~max_nodes:12 ()

let prop_canonicalize_idempotent =
  Helpers.qcheck_case ~name:"canonicalize is idempotent" gen (fun tw ->
      let c = Twig.canonicalize tw in
      Twig.equal c (Twig.canonicalize c) && Twig.is_canonical c)

let prop_encode_decode =
  Helpers.qcheck_case ~name:"decode . encode = canonicalize" gen (fun tw ->
      Twig.equal (Twig.canonicalize tw) (Twig.decode (Twig.encode tw)))

let prop_shuffle_invariant =
  Helpers.qcheck_case ~name:"encoding invariant under child reversal" gen (fun tw ->
      let rec reverse (tw : Twig.t) = Twig.node tw.label (List.rev_map reverse tw.children) in
      String.equal (Twig.encode tw) (Twig.encode (reverse tw)))

let prop_remove_shrinks =
  Helpers.qcheck_case ~name:"removing a degree-1 node shrinks size by one" gen (fun tw ->
      Twig.size tw < 2
      ||
      let ix = Twig.index tw in
      List.for_all (fun i -> Twig.size (Twig.remove ix i) = Twig.size tw - 1) (Twig.degree_one ix))

let prop_grow_then_size =
  Helpers.qcheck_case ~name:"grow adds one node everywhere" gen (fun tw ->
      let ix = Twig.index tw in
      let n = Array.length ix.Twig.node_labels in
      List.for_all
        (fun i -> Twig.size (Twig.grow ix i 99) = Twig.size tw + 1)
        (List.init n Fun.id))

let prop_degree_one_nonempty =
  Helpers.qcheck_case ~name:"every twig of size >= 2 has >= 2 removable nodes" gen (fun tw ->
      Twig.size tw < 2 || List.length (Twig.degree_one (Twig.index tw)) >= 2)

let () =
  Alcotest.run "twig"
    [
      ( "shape",
        [
          Alcotest.test_case "size/depth/width" `Quick test_size_depth_width;
          Alcotest.test_case "labels preorder" `Quick test_labels_preorder;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "sorts children" `Quick test_canonicalize_sorts_children;
          Alcotest.test_case "deep reordering" `Quick test_canonicalize_deep;
          Alcotest.test_case "idempotent" `Quick test_canonicalize_idempotent;
          Alcotest.test_case "structure distinguished" `Quick test_equal_distinguishes_structure;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
          Alcotest.test_case "hash consistency" `Quick test_hash_agrees_with_equal;
          prop_canonicalize_idempotent;
          prop_encode_decode;
          prop_shuffle_invariant;
        ] );
      ( "keys",
        [
          Alcotest.test_case "identity modulo order" `Quick test_key_identity_modulo_order;
          Alcotest.test_case "canonicalize shares" `Quick test_canonicalize_shares_representative;
          Alcotest.test_case "encode agreement" `Quick test_key_encode_matches;
          Alcotest.test_case "interned count stable" `Quick test_interned_count_stable;
          Alcotest.test_case "compare agreement" `Quick test_key_compare_agrees;
          prop_key_id_iff_encoding;
          prop_derived_twigs_are_canonical;
        ] );
      ( "paths",
        [
          Alcotest.test_case "path twigs" `Quick test_paths;
        ] );
      ( "automorphisms",
        [ Alcotest.test_case "counts" `Quick test_automorphisms ] );
      ( "indexed",
        [
          Alcotest.test_case "layout" `Quick test_index_layout;
          Alcotest.test_case "degree one" `Quick test_degree_one;
          Alcotest.test_case "remove leaf" `Quick test_remove_leaf;
          Alcotest.test_case "remove root" `Quick test_remove_root;
          Alcotest.test_case "remove errors" `Quick test_remove_errors;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "grow" `Quick test_grow;
          Alcotest.test_case "map labels" `Quick test_map_labels;
          Alcotest.test_case "pp" `Quick test_pp;
          prop_remove_shrinks;
          prop_grow_then_size;
          prop_degree_one_nonempty;
        ] );
      ( "syntax",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "to_twig" `Quick test_to_twig;
          Alcotest.test_case "of_twig" `Quick test_of_twig_inverse;
          Alcotest.test_case "parse_twig wrapper" `Quick test_parse_twig_wrapper;
        ] );
    ]
