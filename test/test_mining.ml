(* Tests for the level-wise lattice miner. *)

module Miner = Tl_mining.Miner
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Twig_enum = Tl_twig.Twig_enum
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

let mine tree k = Miner.mine (Match_count.create_ctx tree) ~max_size:k

let as_pairs result =
  List.sort compare (List.map (fun (tw, c) -> (Twig.encode tw, c)) (Miner.all result))

let test_level1_is_label_histogram () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let result = mine tree 1 in
  let expected =
    List.init (Data_tree.label_count tree) (fun l ->
        (Twig.encode (Twig.leaf l), Array.length (Data_tree.nodes_with_label tree l)))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int))) "level 1 = label counts" expected (as_pairs result)

let test_matches_oracle_on_shop () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let mined = as_pairs (mine tree 4) in
  let oracle =
    Twig_enum.selectivities tree ~max_size:4
    |> List.map (fun (tw, c) -> (Twig.encode tw, c))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int))) "miner = oracle" oracle mined

let test_levels_partition_by_size () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let result = mine tree 4 in
  for s = 1 to 4 do
    List.iter
      (fun (tw, count) ->
        Alcotest.(check int) "size matches level" s (Twig.size tw);
        Alcotest.(check bool) "positive count" true (count > 0))
      (Miner.level result s)
  done;
  Alcotest.(check (list (pair string int))) "out of range level empty" []
    (List.map (fun (tw, c) -> (Twig.encode tw, c)) (Miner.level result 5))

let test_patterns_per_level_and_total () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let result = mine tree 3 in
  let counts = Miner.patterns_per_level result in
  Alcotest.(check int) "three levels" 3 (Array.length counts);
  (* Labels: a, b, c, d. *)
  Alcotest.(check int) "level 1" 4 counts.(0);
  (* Edges: a-b, b-c, b-d. *)
  Alcotest.(check int) "level 2" 3 counts.(1);
  Alcotest.(check int) "total = sum" (Array.fold_left ( + ) 0 counts) (Miner.total_patterns result)

let test_level3_exact_set () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let result = mine tree 3 in
  let name l = Data_tree.label_name tree l in
  let rendered = List.map (fun (tw, c) -> (Twig.pp ~names:name tw, c)) (Miner.level result 3) in
  (* Size-3 patterns: a(b,b), a(b(c)), a(b(d)), b(c,c), b(c,d), b(d,d). *)
  let expected =
    [ ("a(b,b)", 12); ("a(b(c))", 13); ("a(b(d))", 4); ("b(c,c)", 36); ("b(c,d)", 4); ("b(d,d)", 12) ]
  in
  Alcotest.(check (list (pair string int))) "level 3 patterns" (List.sort compare expected)
    (List.sort compare rendered)

let test_counts_are_match_counts () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let ctx = Match_count.create_ctx tree in
  let result = mine tree 4 in
  List.iter
    (fun (tw, count) ->
      Alcotest.(check int) (Twig.encode tw) (Match_count.selectivity ctx tw) count)
    (Miner.all result)

let test_single_node_tree () =
  let tree = TB.build (TB.leaf "only") in
  let result = mine tree 4 in
  Alcotest.(check int) "one pattern" 1 (Miner.total_patterns result);
  Alcotest.(check (array int)) "levels" [| 1; 0; 0; 0 |] (Miner.patterns_per_level result)

let test_invalid_max_size () =
  let tree = TB.build (TB.leaf "x") in
  Alcotest.check_raises "max_size >= 1" (Invalid_argument "Miner.mine: max_size must be >= 1")
    (fun () -> ignore (mine tree 0))

let test_deterministic () =
  let tree = Helpers.tree_of Helpers.regular_spec in
  Alcotest.(check (list (pair string int))) "same result twice" (as_pairs (mine tree 4))
    (as_pairs (mine tree 4))

(* The central property: the miner finds exactly the occurring patterns with
   exact counts, cross-checked against brute-force subset enumeration. *)
let prop_miner_equals_oracle =
  Helpers.qcheck_case ~name:"miner = enumeration oracle on random trees" ~count:40
    (Helpers.tree_gen ~max_nodes:14)
    (fun tree ->
      let mined = as_pairs (mine tree 4) in
      let oracle =
        Twig_enum.selectivities tree ~max_size:4
        |> List.map (fun (tw, c) -> (Twig.encode tw, c))
        |> List.sort compare
      in
      mined = oracle)

(* Counting across a domain pool must not change anything: same patterns,
   same counts, same order, level by level. *)
let prop_parallel_mine_equals_sequential =
  Helpers.qcheck_case ~name:"mine ?pool = sequential mine level-by-level" ~count:40
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      Tl_util.Pool.with_pool ~domains:3 (fun pool ->
          let sequential = mine tree 4 in
          let parallel = Miner.mine ~pool (Match_count.create_ctx tree) ~max_size:4 in
          List.for_all
            (fun s ->
              let encoded result =
                List.map (fun (tw, c) -> (Twig.encode tw, c)) (Miner.level result s)
              in
              encoded sequential = encoded parallel)
            [ 1; 2; 3; 4 ]))

let prop_downward_closure_of_result =
  Helpers.qcheck_case ~name:"every mined pattern's sub-patterns are mined" ~count:40
    (Helpers.tree_gen ~max_nodes:16)
    (fun tree ->
      let result = mine tree 4 in
      let present = Hashtbl.create 64 in
      List.iter (fun (tw, _) -> Hashtbl.replace present (Twig.encode tw) ()) (Miner.all result);
      List.for_all
        (fun (tw, _) ->
          let ix = Twig.index tw in
          List.for_all
            (fun i -> Hashtbl.mem present (Twig.encode (Twig.remove ix i)))
            (Twig.degree_one ix))
        (Miner.all result))

let () =
  Alcotest.run "mining"
    [
      ( "miner",
        [
          Alcotest.test_case "level 1 labels" `Quick test_level1_is_label_histogram;
          Alcotest.test_case "oracle on shop" `Quick test_matches_oracle_on_shop;
          Alcotest.test_case "levels partition" `Quick test_levels_partition_by_size;
          Alcotest.test_case "per-level counts" `Quick test_patterns_per_level_and_total;
          Alcotest.test_case "level 3 exact set" `Quick test_level3_exact_set;
          Alcotest.test_case "counts are match counts" `Quick test_counts_are_match_counts;
          Alcotest.test_case "single node" `Quick test_single_node_tree;
          Alcotest.test_case "invalid max size" `Quick test_invalid_max_size;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          prop_miner_equals_oracle;
          prop_parallel_mine_equals_sequential;
          prop_downward_closure_of_result;
        ] );
    ]
