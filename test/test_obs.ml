(* Observability subsystem: domain-sharded metrics (the parallel ==
   sequential snapshot property), span nesting, histogram bucketing, the
   monotonic clock behind Timer, and the estimator explain-trace. *)

module TB = Tl_tree.Tree_builder
module Metrics = Tl_obs.Metrics
module Span = Tl_obs.Span
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Explain = Tl_core.Explain
module Pool = Tl_util.Pool

(* --- monotonic clock (Timer's source since the wall-clock fix) ----------- *)

let test_clock_monotonic () =
  let a = Tl_obs.Clock.now_ns () in
  let b = Tl_obs.Clock.now_ns () in
  Alcotest.(check bool) "now_ns never goes backwards" true (b >= a);
  Alcotest.(check bool) "elapsed_ns is non-negative" true (Tl_obs.Clock.elapsed_ns ~since:a >= 0);
  let t0 = Tl_util.Timer.now () in
  let t1 = Tl_util.Timer.now () in
  Alcotest.(check bool) "Timer.now never goes backwards" true (t1 >= t0);
  let _, ms = Tl_util.Timer.time_ms (fun () -> Sys.opaque_identity (List.init 1000 Fun.id)) in
  Alcotest.(check bool) "time_ms is non-negative" true (ms >= 0.0)

(* --- histogram bucketing ------------------------------------------------- *)

let test_bucketing () =
  let cases = [ (-5, 0); (0, 0); (1, 0); (2, 1); (3, 1); (4, 2); (7, 2); (8, 3); (1023, 9); (1024, 10) ] in
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Metrics.bucket_of v))
    cases;
  Alcotest.(check int) "bucket_of max_int is clamped" 61 (Metrics.bucket_of max_int);
  Alcotest.(check int) "bucket_floor 0" 0 (Metrics.bucket_floor 0);
  Alcotest.(check int) "bucket_floor 1" 2 (Metrics.bucket_floor 1);
  Alcotest.(check int) "bucket_floor 5" 32 (Metrics.bucket_floor 5);
  (* Every value lands in the bucket whose floor bounds it below. *)
  for v = 2 to 4096 do
    let b = Metrics.bucket_of v in
    assert (Metrics.bucket_floor b <= v && v < Metrics.bucket_floor (b + 1))
  done

let test_histogram_snapshot () =
  Metrics.reset ();
  List.iter (Metrics.observe "t.hist") [ 1; 1; 3; 8; 9; 500 ];
  match (Metrics.snapshot ()).Metrics.histograms with
  | [ (name, h) ] ->
    Alcotest.(check string) "name" "t.hist" name;
    Alcotest.(check int) "observations" 6 h.Metrics.h_observations;
    Alcotest.(check int) "sum" 522 h.Metrics.h_sum;
    Alcotest.(check int) "min" 1 h.Metrics.h_min;
    Alcotest.(check int) "max" 500 h.Metrics.h_max;
    Alcotest.(check (list (pair int int)))
      "non-empty buckets, ascending floors"
      [ (0, 2); (2, 1); (8, 2); (256, 1) ]
      h.Metrics.h_buckets
  | hs -> Alcotest.failf "expected one histogram, got %d" (List.length hs)

(* --- counters, gauges, rendering ----------------------------------------- *)

let test_counters_and_rendering () =
  Metrics.reset ();
  Metrics.incr "b.count";
  Metrics.add "b.count" 4;
  Metrics.incr "a.count";
  Metrics.set_gauge "g.size" 3;
  Metrics.set_gauge "g.size" 7;
  Metrics.observe "h.vals" 10;
  let snap = Metrics.snapshot () in
  Alcotest.(check (list (pair string int)))
    "counters sorted and summed"
    [ ("a.count", 1); ("b.count", 5) ]
    snap.Metrics.counters;
  Alcotest.(check (list (pair string int))) "gauge keeps last set" [ ("g.size", 7) ] snap.Metrics.gauges;
  let prom = Metrics.to_prometheus snap in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prometheus output contains " ^ needle) true
        (Tl_util.Prelude.string_contains ~needle prom))
    [
      "# TYPE tl_a_count counter"; "tl_b_count 5"; "# TYPE tl_g_size gauge";
      "# TYPE tl_h_vals histogram"; "tl_h_vals_bucket{le=\"+Inf\"} 1"; "tl_h_vals_sum 10";
    ];
  Alcotest.(check bool) "pp_table mentions the counter" true
    (Tl_util.Prelude.string_contains ~needle:"a.count" (Metrics.pp_table snap));
  Metrics.reset ();
  let empty = Metrics.snapshot () in
  Alcotest.(check int) "reset clears counters" 0 (List.length empty.Metrics.counters)

(* --- histogram quantiles -------------------------------------------------- *)

let test_quantile () =
  Metrics.reset ();
  let empty =
    { Metrics.h_observations = 0; h_sum = 0; h_min = 0; h_max = 0; h_buckets = [] }
  in
  Alcotest.(check bool) "empty histogram has nan quantiles" true
    (Float.is_nan (Metrics.quantile empty 0.5));
  (* All mass in bucket 0 (values <= 1): every quantile collapses there. *)
  List.iter (Metrics.observe "q.ones") [ 1; 1; 1; 1 ];
  let h = List.assoc "q.ones" (Metrics.snapshot ()).Metrics.histograms in
  Alcotest.(check (float 1e-9)) "all-ones p50" 1.0 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "all-ones p99" 1.0 (Metrics.quantile h 0.99);
  Metrics.reset ();
  (* 100 observations of 10 and one of 1000: low quantiles sit in the
     [8,15] bucket (clamped to the true min), the p99+ tail reaches the
     high bucket (clamped to the true max). *)
  for _ = 1 to 100 do
    Metrics.observe "q.skew" 10
  done;
  Metrics.observe "q.skew" 1000;
  let h = List.assoc "q.skew" (Metrics.snapshot ()).Metrics.histograms in
  let p50 = Metrics.quantile h 0.5 in
  Alcotest.(check bool) "p50 within its bucket" true (p50 >= 10.0 && p50 <= 15.0);
  Alcotest.(check (float 1e-9)) "p100 is the max" 1000.0 (Metrics.quantile h 1.0);
  Alcotest.(check bool) "monotone in q" true
    (Metrics.quantile h 0.25 <= Metrics.quantile h 0.75
    && Metrics.quantile h 0.75 <= Metrics.quantile h 1.0);
  (* Single observation: every quantile is that value exactly. *)
  Metrics.reset ();
  Metrics.observe "q.one" 37;
  let h = List.assoc "q.one" (Metrics.snapshot ()).Metrics.histograms in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "single obs at q=%.2f" q) 37.0
        (Metrics.quantile h q))
    [ 0.0; 0.5; 0.9; 1.0 ]

let test_prometheus_help_and_buckets () =
  Metrics.reset ();
  Metrics.describe "helped.count" "A documented counter";
  Metrics.incr "helped.count";
  Metrics.observe "gap.hist" 1;
  Metrics.observe "gap.hist" 100;
  let prom = Metrics.to_prometheus (Metrics.snapshot ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prom contains " ^ needle) true
        (Tl_util.Prelude.string_contains ~needle prom))
    [
      "# HELP tl_helped_count A documented counter";
      (* the full cumulative series: gap buckets between 1 and 100 are
         materialized, the +Inf bucket equals the count *)
      "tl_gap_hist_bucket{le=\"1\"} 1";
      "tl_gap_hist_bucket{le=\"3\"} 1";
      "tl_gap_hist_bucket{le=\"63\"} 1";
      "tl_gap_hist_bucket{le=\"127\"} 2";
      "tl_gap_hist_bucket{le=\"+Inf\"} 2";
      "tl_gap_hist_sum 101";
      "tl_gap_hist_count 2";
    ];
  (* Cumulative counts never decrease along the series. *)
  let lines = String.split_on_char '\n' prom in
  let bucket_counts =
    List.filter_map
      (fun l ->
        if Tl_util.Prelude.string_contains ~needle:"tl_gap_hist_bucket" l then
          int_of_string_opt (List.nth (String.split_on_char ' ' l) 1)
        else None)
      lines
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "bucket series is cumulative" true (nondecreasing bucket_counts)

(* --- the tentpole property: parallel metrics == sequential --------------- *)

(* The same per-element work (counter bumps + histogram observations) run
   through an N-domain pool must merge to a snapshot bit-identical to the
   sequential run.  Gauges are excluded: [max]-merge is deterministic but
   "last write" (sequential) and "max across domains" (parallel) are
   different reductions by design. *)
let prop_parallel_snapshot_identical =
  let open QCheck2 in
  let gen = Gen.pair (Gen.list_size (Gen.int_range 1 120) (Gen.int_bound 2000)) (Gen.int_range 2 4) in
  Helpers.qcheck_case ~count:25 ~name:"metrics: pool run merges to the sequential snapshot" gen
    (fun (values, domains) ->
      let work v =
        Metrics.incr "p.elements";
        Metrics.add "p.sum" v;
        Metrics.observe "p.hist" v
      in
      let arr = Array.of_list values in
      Metrics.reset ();
      Array.iter work arr;
      let sequential = Metrics.snapshot () in
      Metrics.reset ();
      let _ = Pool.with_pool ~domains (fun pool -> Pool.parallel_map pool (fun v -> work v; v) arr) in
      let parallel = Metrics.snapshot () in
      Metrics.equal_snapshot sequential parallel)

(* End-to-end flavor of the same property: mining a summary across a pool
   leaves the instrumentation (match-count calls, per-level candidate
   counters, selectivity histogram) identical to the sequential run. *)
let test_miner_metrics_parallel_identical () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let ctx = Tl_twig.Match_count.create_ctx tree in
  Metrics.reset ();
  let seq = Tl_mining.Miner.mine ctx ~max_size:3 in
  let seq_snap = Metrics.snapshot () in
  Metrics.reset ();
  let par = Pool.with_pool ~domains:3 (fun pool -> Tl_mining.Miner.mine ~pool ctx ~max_size:3) in
  let par_snap = Metrics.snapshot () in
  Alcotest.(check int) "same pattern count" (Tl_mining.Miner.total_patterns seq)
    (Tl_mining.Miner.total_patterns par);
  Alcotest.(check bool) "mining metrics identical under -j 3" true
    (Metrics.equal_snapshot seq_snap par_snap)

(* --- spans ---------------------------------------------------------------- *)

let with_spans f =
  Span.reset ();
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) f

let test_span_nesting () =
  with_spans @@ fun () ->
  let r =
    Span.with_ "outer" (fun () ->
        Span.with_ "inner" (fun () -> ignore (Sys.opaque_identity 1));
        Span.with_ "inner" (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_ returns the body's value" 17 r;
  let spans = Span.finished () in
  Alcotest.(check (list string))
    "paths record the ancestor chain, sorted by start time"
    [ "outer"; "outer;inner"; "outer;inner" ]
    (List.map (fun s -> s.Span.path) spans);
  let outer = List.hd spans in
  Alcotest.(check int) "root depth" 1 outer.Span.depth;
  List.iter
    (fun s ->
      Alcotest.(check int) "child depth" 2 s.Span.depth;
      Alcotest.(check bool) "child starts inside parent" true (s.Span.start_ns >= outer.Span.start_ns);
      Alcotest.(check bool) "child fits inside parent" true (s.Span.dur_ns <= outer.Span.dur_ns))
    (List.tl spans)

let test_span_exception_and_disabled () =
  with_spans (fun () ->
      (try Span.with_ "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check int) "span recorded despite the raise" 1 (List.length (Span.finished ())));
  Span.reset ();
  Alcotest.(check bool) "disabled by default here" false (Span.enabled ());
  Alcotest.(check int) "disabled with_ still runs the body" 3 (Span.with_ "off" (fun () -> 3));
  Alcotest.(check int) "and records nothing" 0 (List.length (Span.finished ()))

let test_span_jsonl_and_flame () =
  with_spans @@ fun () ->
  Span.with_ "a" (fun () -> Span.with_ "b" (fun () -> ()));
  let path = Filename.temp_file "tl_obs" ".jsonl" in
  let oc = open_out path in
  let n = Span.dump_jsonl oc in
  close_out oc;
  Alcotest.(check int) "two spans dumped" 2 n;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "JSONL line carries the path" true
    (Tl_util.Prelude.string_contains ~needle:{|"path":"a"|} first);
  let flame = Span.flame () in
  Alcotest.(check bool) "flame table indents the child" true
    (Tl_util.Prelude.string_contains ~needle:"  b" flame)

let test_span_sink () =
  Span.reset ();
  let path = Filename.temp_file "tl_obs_sink" ".jsonl" in
  Span.set_sink path;
  Alcotest.(check bool) "set_sink enables recording" true (Span.enabled ());
  Span.with_ "sinked" (fun () -> ());
  (match Span.close_sink () with
  | None -> Alcotest.fail "close_sink lost the sink"
  | Some (p, n) ->
    Alcotest.(check string) "sink path" path p;
    Alcotest.(check int) "one span flushed" 1 n);
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "flushed line carries the span" true
    (Tl_util.Prelude.string_contains ~needle:{|"path":"sinked"|} first);
  Alcotest.(check bool) "second close is a no-op" true (Span.close_sink () = None);
  Span.set_enabled false;
  Span.reset ()

(* --- exporter: scrape the endpoint over a real socket --------------------- *)

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec drain () =
        let n = Unix.read sock chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      Buffer.contents buf)

let status_of response =
  match String.split_on_char ' ' response with _ :: code :: _ -> int_of_string code | _ -> -1

let test_exporter_round_trip () =
  Metrics.reset ();
  Metrics.incr "scraped.count";
  Metrics.observe "scraped.hist" 42;
  let hits = ref 0 in
  let exporter =
    Tl_obs.Exporter.start
      ~routes:
        [
          ("/custom", fun () -> incr hits; Tl_obs.Exporter.text "custom body\n");
          ("/failing", fun () -> failwith "route exploded");
        ]
      ()
  in
  Fun.protect ~finally:(fun () -> Tl_obs.Exporter.stop exporter) @@ fun () ->
  let port = Tl_obs.Exporter.port exporter in
  Alcotest.(check bool) "bound an ephemeral port" true (port > 0);
  let metrics = http_get port "/metrics" in
  Alcotest.(check int) "/metrics is 200" 200 (status_of metrics);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("/metrics body contains " ^ needle) true
        (Tl_util.Prelude.string_contains ~needle metrics))
    [
      "# HELP tl_scraped_count"; "tl_scraped_count 1"; "# TYPE tl_scraped_hist histogram";
      "tl_scraped_hist_bucket{le=\"+Inf\"} 1"; "tl_scraped_hist_sum 42";
    ];
  let custom = http_get port "/custom?x=1" in
  Alcotest.(check int) "/custom is 200 (query string stripped)" 200 (status_of custom);
  Alcotest.(check bool) "custom body served" true
    (Tl_util.Prelude.string_contains ~needle:"custom body" custom);
  Alcotest.(check int) "route callback ran once" 1 !hits;
  Alcotest.(check int) "unknown path is 404" 404 (status_of (http_get port "/nope"));
  Alcotest.(check int) "raising route is 500" 500 (status_of (http_get port "/failing"));
  (* A second scrape after errors still works — the endpoint survives
     misbehaving routes and clients. *)
  Alcotest.(check int) "endpoint still alive" 200 (status_of (http_get port "/metrics"));
  Tl_obs.Exporter.stop exporter;
  Tl_obs.Exporter.stop exporter (* idempotent *)

(* The partial-write regression: a scraper that accepts the response
   slower than the socket's send timeout used to get a silently truncated
   body (the first EAGAIN was treated as a dead client).  The reader here
   refuses to read while the server fills every buffer and rides out
   whole timeout periods, then pauses again mid-drain — the full
   Content-Length body must still arrive, byte for byte. *)
let test_exporter_survives_throttled_reader () =
  let body = String.init (2 * 1024 * 1024) (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  let exporter =
    Tl_obs.Exporter.start ~timeout:0.25
      ~routes:[ ("/big", fun () -> Tl_obs.Exporter.text body) ]
      ()
  in
  Fun.protect ~finally:(fun () -> Tl_obs.Exporter.stop exporter) @@ fun () ->
  let port = Tl_obs.Exporter.port exporter in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = "GET /big HTTP/1.0\r\n\r\n" in
  ignore (Unix.write_substring sock req 0 (String.length req));
  (* Stall past the send timeout before accepting a single byte. *)
  Unix.sleepf 0.6;
  let buf = Buffer.create (String.length body) in
  let chunk = Bytes.create 65536 in
  let paused_midway = ref false in
  let rec drain () =
    let n = Unix.read sock chunk 0 (Bytes.length chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      if (not !paused_midway) && Buffer.length buf > String.length body / 2 then begin
        paused_midway := true;
        Unix.sleepf 0.6
      end;
      drain ()
    end
  in
  drain ();
  let response = Buffer.contents buf in
  Alcotest.(check int) "throttled scrape still 200" 200 (status_of response);
  let body_start =
    let rec find i =
      if i + 4 > String.length response then Alcotest.fail "no header terminator"
      else if String.sub response i 4 = "\r\n\r\n" then i + 4
      else find (i + 1)
    in
    find 0
  in
  let received = String.sub response body_start (String.length response - body_start) in
  Alcotest.(check int) "full Content-Length received" (String.length body)
    (String.length received);
  Alcotest.(check bool) "body intact" true (String.equal body received)

(* --- explain traces ------------------------------------------------------- *)

let golden_doc = TB.node "a" [ TB.node "b" [ TB.leaf "c" ]; TB.node "b" [ TB.leaf "c" ] ]

let golden_text =
  "estimate[recursive+voting] = 2.00 for a(b(c))\n\
   query a(b(c)) = 2.00 [decomposed] via 1 pair(s):\n\
  \  pair 1: s1*s2/s_cap = 2.00  [e1=2.00 e2=2.00 e_cap=2.00]\n\
  \    s1  b(c) = 2.00 [summary]\n\
  \    s2  a(b) = 2.00 [summary]\n\
  \    s_cap b = 2.00 [summary]\n\
   lookups: 3 summary hit(s), 0 extra hit(s), 0 true zero(s), 1 decomposition(s); 4 distinct \
   sub-twig(s)\n"

let test_explain_golden () =
  let tree = Helpers.tree_of golden_doc in
  let summary = Summary.build ~k:2 tree in
  let twig = Helpers.twig_of_string tree "a(b(c))" in
  let trace = Explain.run summary Estimator.Recursive_voting twig in
  Alcotest.(check (float 0.0))
    "trace estimate is the estimator's own"
    (Estimator.estimate summary Estimator.Recursive_voting twig)
    trace.Explain.estimate;
  Alcotest.(check int) "three summary hits" 3 trace.Explain.summary_hits;
  Alcotest.(check int) "one decomposition" 1 trace.Explain.decompositions;
  Alcotest.(check string) "golden rendering" golden_text
    (Explain.to_text ~names:(Tl_tree.Data_tree.label_name tree) trace);
  let dot = Tl_viz.Dot.explain ~names:(Tl_tree.Data_tree.label_name tree) trace in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("dot contains " ^ needle) true
        (Tl_util.Prelude.string_contains ~needle dot))
    [ "digraph"; "penwidth=2"; "fillcolor=lightblue"; "cap\", style=dashed" ]

(* Whatever the scheme and the twig, the traced estimate equals the plain
   estimator's answer — the trace observes the one implementation rather
   than re-deriving it. *)
let prop_explain_matches_estimator =
  let open QCheck2 in
  let gen =
    Gen.triple (Helpers.spec_gen ~max_nodes:30)
      (Helpers.twig_gen ~nlabels:6 ~max_nodes:6 ())
      (Gen.oneofl [ Estimator.Recursive; Estimator.Recursive_voting; Estimator.Fixed_size ])
  in
  Helpers.qcheck_case ~count:60 ~name:"explain: trace estimate equals Estimator.estimate" gen
    (fun (spec, twig, scheme) ->
      let tree = Helpers.tree_of spec in
      let summary = Summary.build ~k:3 tree in
      let trace = Explain.run summary scheme twig in
      let direct = Estimator.estimate summary scheme twig in
      (Float.equal trace.Explain.estimate direct
      || Float.abs (trace.Explain.estimate -. direct) <= 1e-9 *. Float.abs direct)
      && List.length trace.Explain.order >= 1)

let test_explain_true_zero () =
  let tree = Helpers.tree_of golden_doc in
  let summary = Summary.build ~k:2 tree in
  (* d never occurs: the summary is complete at level 1, so the lookup is
     a recorded true zero and the estimate collapses to 0. *)
  let twig = Tl_twig.Twig.node 0 [ Tl_twig.Twig.leaf 3 ] in
  let trace = Explain.run summary Estimator.Recursive_voting twig in
  Alcotest.(check (float 0.0)) "estimate is zero" 0.0 trace.Explain.estimate;
  Alcotest.(check bool) "at least one true zero recorded" true (trace.Explain.true_zeros >= 1)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic now_ns and Timer" `Quick test_clock_monotonic;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "log-scale bucketing" `Quick test_bucketing;
          Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
          Alcotest.test_case "counters, gauges, rendering" `Quick test_counters_and_rendering;
          Alcotest.test_case "histogram quantiles" `Quick test_quantile;
          Alcotest.test_case "prometheus HELP and cumulative buckets" `Quick
            test_prometheus_help_and_buckets;
          prop_parallel_snapshot_identical;
          Alcotest.test_case "miner metrics identical under a pool" `Quick
            test_miner_metrics_parallel_identical;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and paths" `Quick test_span_nesting;
          Alcotest.test_case "exception safety and disabled mode" `Quick
            test_span_exception_and_disabled;
          Alcotest.test_case "jsonl sink and flame summary" `Quick test_span_jsonl_and_flame;
          Alcotest.test_case "file sink flush on close" `Quick test_span_sink;
        ] );
      ( "exporter",
        [
          Alcotest.test_case "scrape round trip over a real socket" `Quick
            test_exporter_round_trip;
          Alcotest.test_case "throttled reader gets the whole body" `Slow
            test_exporter_survives_throttled_reader;
        ] );
      ( "explain",
        [
          Alcotest.test_case "golden trace" `Quick test_explain_golden;
          prop_explain_matches_estimator;
          Alcotest.test_case "true zero short-circuit" `Quick test_explain_true_zero;
        ] );
    ]
