(* Tests for the dataset registry: epoch-versioned bundles, hot swap,
   graceful degradation, label-space validation, and the acceptance
   stress — a swap racing a multi-domain batch can only ever produce the
   bit-exact answers of one epoch, never a blend. *)

module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Summary_io = Tl_lattice.Summary_io
module Data_tree = Tl_tree.Data_tree
module Estimator = Tl_core.Estimator
module Treelattice = Tl_core.Treelattice
module Metrics = Tl_obs.Metrics
module Registry = Tl_serve.Registry

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_bits name a b =
  Alcotest.(check bool) (Printf.sprintf "%s: %h = %h" name a b) true (same_float a b)

let counter name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.counters with Some n -> n | None -> 0

let gauge name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.gauges with Some n -> n | None -> 0

let fig11_queries = [ "a(b(c,d))"; "a(b(c),b(d))"; "a(b,b)"; "b(c,d)"; "a(b(c,d),b)" ]

let contains ~needle hay = Tl_util.Prelude.string_contains ~needle hay

(* Direct estimates under [summary] with the registry's configured scheme:
   the reference every served batch must reproduce bit-for-bit. *)
let baseline summary twigs =
  Array.map (fun twig -> Estimator.estimate summary Treelattice.default_scheme twig) twigs

(* --- install / find / epochs --------------------------------------------- *)

let test_install_find_epochs () =
  Metrics.reset ();
  let t = Registry.create () in
  Alcotest.(check bool) "empty default" true (Registry.default t = None);
  Alcotest.(check bool) "empty find" true (Registry.find t "x" = None);
  let fig11 = Helpers.tree_of Helpers.fig11_spec in
  let regular = Helpers.tree_of Helpers.regular_spec in
  let b1 = Result.get_ok (Registry.install_document t ~name:"fig11" fig11) in
  let b2 = Result.get_ok (Registry.install_document t ~name:"regular" regular) in
  Alcotest.(check string) "name recorded" "fig11" (Registry.name b1);
  Alcotest.(check bool) "epochs strictly increase across datasets" true
    (Registry.epoch b2 > Registry.epoch b1);
  Alcotest.(check (list string)) "installation order" [ "fig11"; "regular" ]
    (Registry.dataset_names t);
  (match Registry.default t with
  | Some b -> Alcotest.(check string) "default = first installed" "fig11" (Registry.name b)
  | None -> Alcotest.fail "default missing");
  (match Registry.find t "regular" with
  | Some b -> Alcotest.(check int) "find returns current epoch" (Registry.epoch b2) (Registry.epoch b)
  | None -> Alcotest.fail "find missing");
  Alcotest.(check int) "datasets gauge" 2 (gauge "registry.datasets");
  Alcotest.(check int) "fresh installs are not reloads" 0 (counter "registry.reloads_total");
  (* A swap of an existing dataset bumps the epoch and the reload counter. *)
  let b3 = Result.get_ok (Registry.swap t "fig11" (Summary.build ~k:2 fig11)) in
  Alcotest.(check bool) "swap epoch beats every prior epoch" true
    (Registry.epoch b3 > Registry.epoch b2);
  Alcotest.(check int) "swap counted as reload" 1 (counter "registry.reloads_total");
  Alcotest.(check int) "epoch gauge tracks the swap" (Registry.epoch b3)
    (gauge "registry.epoch.fig11");
  let json = Registry.datasets_json t in
  Alcotest.(check bool) "json lists fig11" true (contains ~needle:{|"name": "fig11"|} json);
  Alcotest.(check bool) "json carries the live epoch" true
    (contains ~needle:(Printf.sprintf {|"epoch": %d|} (Registry.epoch b3)) json);
  Alcotest.(check bool) "json kind document" true (contains ~needle:{|"kind": "document"|} json);
  Alcotest.(check bool) "json alarm clear" true (contains ~needle:{|"reload_alarm": false|} json)

let test_swap_serves_new_summary_old_bundle_stays_consistent () =
  Metrics.reset ();
  let t = Registry.create () in
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let twigs = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let old_bundle = Result.get_ok (Registry.install_document t ~name:"d" tree) in
  let old_expected = baseline (Registry.summary old_bundle) twigs in
  let fresh_summary = Summary.build ~k:2 tree in
  let new_bundle = Result.get_ok (Registry.swap t "d" fresh_summary) in
  let new_expected = baseline fresh_summary twigs in
  Array.iteri
    (fun i r -> check_bits (Printf.sprintf "new bundle query %d" i) new_expected.(i) r)
    (Registry.batch new_bundle twigs);
  (* The displaced bundle is immutable: held across the swap it still
     answers exactly as its own epoch did. *)
  Array.iteri
    (fun i r -> check_bits (Printf.sprintf "old bundle query %d" i) old_expected.(i) r)
    (Registry.batch old_bundle twigs);
  (match Registry.find t "d" with
  | Some b -> Alcotest.(check int) "find serves the new epoch" (Registry.epoch new_bundle) (Registry.epoch b)
  | None -> Alcotest.fail "dataset vanished")

(* --- graceful degradation ------------------------------------------------- *)

let test_swap_failure_keeps_old_and_latches_alarm () =
  Metrics.reset ();
  let t = Registry.create () in
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let good = Result.get_ok (Registry.install_document t ~name:"d" tree) in
  (* A summary whose twig labels lie outside the document's label space:
     built against a foreign interner, must be rejected at the gate. *)
  let foreign = Summary.of_patterns ~k:2 ~complete:false [ (Twig.leaf 99, 5) ] in
  (match Registry.swap t "d" foreign with
  | Ok _ -> Alcotest.fail "foreign summary accepted"
  | Error msg ->
    Alcotest.(check bool) "error names the label mismatch" true
      (contains ~needle:"label" msg && contains ~needle:"99" msg));
  Alcotest.(check bool) "alarm latched" true (Registry.alarm t);
  Alcotest.(check int) "failure counted" 1 (counter "registry.reload_failures_total");
  Alcotest.(check int) "alarm gauge raised" 1 (gauge "registry.alarm");
  Alcotest.(check bool) "json reports the alarm" true
    (contains ~needle:{|"reload_alarm": true|} (Registry.datasets_json t));
  (match Registry.find t "d" with
  | Some b -> Alcotest.(check int) "old epoch keeps serving" (Registry.epoch good) (Registry.epoch b)
  | None -> Alcotest.fail "dataset vanished");
  (* The alarm latches across later successes and clears only explicitly. *)
  ignore (Result.get_ok (Registry.swap t "d" (Summary.build ~k:2 tree)));
  Alcotest.(check bool) "alarm survives a successful swap" true (Registry.alarm t);
  Registry.clear_alarm t;
  Alcotest.(check bool) "clear_alarm clears" false (Registry.alarm t);
  Alcotest.(check int) "alarm gauge cleared" 0 (gauge "registry.alarm");
  (* Swapping an unknown dataset is a failure, not a creation. *)
  (match Registry.swap t "nope" (Summary.build ~k:2 tree) with
  | Ok _ -> Alcotest.fail "swap created a dataset"
  | Error msg -> Alcotest.(check bool) "unknown dataset named" true (contains ~needle:"nope" msg));
  Alcotest.(check bool) "failure re-latches" true (Registry.alarm t)

let with_temp_file contents f =
  let path = Filename.temp_file "tl_registry" ".summary" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match contents with
      | Some body ->
        let oc = open_out path in
        output_string oc body;
        close_out oc
      | None -> ());
      f path)

let test_load_rejects_label_name_mismatch () =
  Metrics.reset ();
  let t = Registry.create () in
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let good = Result.get_ok (Registry.install_document t ~name:"d" tree) in
  (* A summary mined from a DIFFERENT document (tags x/y/z) serialized to
     disk, then routed into the fig11-backed dataset: the by-name re-keying
     must reject it because fig11 has no such tags. *)
  let other = Helpers.tree_of (Tl_tree.Tree_builder.node "x" [ Tl_tree.Tree_builder.leaf "y" ]) in
  let other_summary = Summary.build ~k:2 other in
  with_temp_file None (fun path ->
      Summary_io.save_file ~names:(Data_tree.label_names other) path other_summary;
      match Registry.load t "d" path with
      | Ok _ -> Alcotest.fail "mismatched summary accepted"
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "error explains the mismatch: %s" msg)
          true
          (contains ~needle:"does not occur" msg));
  Alcotest.(check bool) "alarm latched" true (Registry.alarm t);
  (match Registry.find t "d" with
  | Some b -> Alcotest.(check int) "old epoch keeps serving" (Registry.epoch good) (Registry.epoch b)
  | None -> Alcotest.fail "dataset vanished");
  (* A summary over the document's own tags routes in cleanly. *)
  with_temp_file None (fun path ->
      Summary_io.save_file ~names:(Data_tree.label_names tree) path (Summary.build ~k:2 tree);
      let b = Result.get_ok (Registry.load t "d" path) in
      Alcotest.(check bool) "epoch advanced" true (Registry.epoch b > Registry.epoch good);
      (* The recorded source makes the dataset reloadable. *)
      let b2 = Result.get_ok (Registry.reload t "d") in
      Alcotest.(check bool) "reload advances again" true (Registry.epoch b2 > Registry.epoch b))

let test_corrupt_file_degrades_gracefully () =
  Metrics.reset ();
  let t = Registry.create () in
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let good = Result.get_ok (Registry.install_document t ~name:"d" tree) in
  let twigs = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let expected = baseline (Registry.summary good) twigs in
  with_temp_file (Some "this is not a summary\n") (fun path ->
      match Registry.load t "d" path with
      | Ok _ -> Alcotest.fail "corrupt file accepted"
      | Error _ -> ());
  (match Registry.load t "d" "/nonexistent/path.summary" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error _ -> ());
  Alcotest.(check int) "both failures counted" 2 (counter "registry.reload_failures_total");
  (match Registry.find t "d" with
  | Some b ->
    Alcotest.(check int) "old epoch serving" (Registry.epoch good) (Registry.epoch b);
    Array.iteri
      (fun i r -> check_bits (Printf.sprintf "degraded query %d" i) expected.(i) r)
      (Registry.batch b twigs)
  | None -> Alcotest.fail "dataset vanished");
  (* No recorded source: reload must fail descriptively, not crash. *)
  match Registry.reload t "d" with
  | Ok _ -> Alcotest.fail "reload without source succeeded"
  | Error msg -> Alcotest.(check bool) "no-source diagnosed" true (contains ~needle:"source" msg)

(* --- summary-only datasets ------------------------------------------------ *)

let test_summary_only_dataset () =
  Metrics.reset ();
  let t = Registry.create () in
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let summary = Summary.build ~k:3 tree in
  let names = Data_tree.label_names tree in
  let b = Result.get_ok (Registry.install_summary t ~name:"s" ~names summary) in
  Alcotest.(check bool) "no backing tree" true (Registry.tree b = None);
  Alcotest.(check bool) "no adaptive state" true (Registry.adaptive b = None);
  Alcotest.(check (array string)) "label space preserved" names (Registry.label_names b);
  Alcotest.(check bool) "json kind summary" true
    (contains ~needle:{|"kind": "summary"|} (Registry.datasets_json t));
  let parse line =
    match Registry.parse_query b line with
    | Ok (twig, tf) -> (twig, tf)
    | Error msg -> Alcotest.failf "parse %S: %s" line msg
  in
  let twigs = Array.of_list (List.map (fun q -> fst (parse q)) fig11_queries) in
  let expected = baseline summary twigs in
  Array.iteri
    (fun i r -> check_bits (Printf.sprintf "summary-only query %d" i) expected.(i) r)
    (Registry.batch b twigs);
  (* Unknown tags intern fresh and estimate 0 — the negative-workload
     contract, same as the document-backed path. *)
  let ghost, _ = parse "ghost(phantom)" in
  check_bits "unknown tag" 0.0 (Registry.batch b [| ghost |]).(0);
  (* Anchored XPath scales by the root tag's own occurrence count: fig11
     has four b-nodes, so /b/c divides its match count by 4. *)
  let twig, tf = parse "/b/c" in
  let raw = (Registry.batch b [| twig |]).(0) in
  check_bits "anchored scale divides by root-tag occurrences" (raw /. 4.0) (tf raw);
  (* Syntax errors diagnose with the parser the line was written for. *)
  (match Registry.parse_query b "/a[" with
  | Ok _ -> Alcotest.fail "garbage parsed"
  | Error _ -> ());
  match Registry.parse_query b "a((" with Ok _ -> Alcotest.fail "garbage parsed" | Error _ -> ()

let test_document_parse_query_matches_front_end () =
  let t = Registry.create () in
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let b = Result.get_ok (Registry.install_document t ~name:"d" tree) in
  let tl = Treelattice.of_summary tree (Registry.summary b) in
  List.iter
    (fun line ->
      match Registry.parse_query b line with
      | Error msg -> Alcotest.failf "parse %S: %s" line msg
      | Ok (twig, tf) ->
        let served = tf (Registry.batch b [| twig |]).(0) in
        let direct = Result.get_ok (Treelattice.estimate_xpath tl line) in
        check_bits (Printf.sprintf "xpath %s" line) direct served)
    [ "/a/b"; "/a/b[c]"; "//b[c][d]"; "/b" ]

(* --- the acceptance stress ------------------------------------------------ *)

(* Concurrent swap during a multi-domain batch: servers race [find]+[batch]
   against a main-domain loop swapping between two summaries of different
   depth.  Every served batch must be bit-identical to the direct estimates
   of exactly one of the two summaries — never a mixture.  Raw
   [Domain.spawn] keeps the server domains independent of any pool. *)
let test_concurrent_swap_bit_identity () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let t = Registry.create () in
  ignore (Result.get_ok (Registry.install_document t ~name:"d" tree));
  let summary_a = Summary.build ~k:2 tree in
  let summary_b = Summary.build ~k:3 tree in
  let distinct = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let batch = Array.init 40 (fun i -> distinct.(i mod Array.length distinct)) in
  let expected_a = baseline summary_a batch in
  let expected_b = baseline summary_b batch in
  (* The blend check only has teeth if the two summaries disagree. *)
  Alcotest.(check bool) "k=2 and k=3 estimates differ somewhere" false
    (Array.for_all2 same_float expected_a expected_b);
  ignore (Result.get_ok (Registry.swap t "d" summary_a));
  let stop = Atomic.make false in
  let blends = Atomic.make 0 in
  let batches = Atomic.make 0 in
  let server () =
    while not (Atomic.get stop) do
      match Registry.find t "d" with
      | None -> Atomic.incr blends
      | Some b ->
        let results = Registry.batch b batch in
        let matches expected = Array.for_all2 same_float results expected in
        if matches expected_a || matches expected_b then Atomic.incr batches
        else Atomic.incr blends
    done
  in
  let servers = List.init 3 (fun _ -> Domain.spawn server) in
  for i = 1 to 40 do
    ignore (Result.get_ok (Registry.swap t "d" (if i mod 2 = 0 then summary_a else summary_b)))
  done;
  Atomic.set stop true;
  List.iter Domain.join servers;
  Alcotest.(check int) "no blended batch ever served" 0 (Atomic.get blends);
  Alcotest.(check bool) "servers actually served" true (Atomic.get batches > 0);
  (* Epochs stayed monotonic through the churn. *)
  match Registry.find t "d" with
  | Some b -> Alcotest.(check bool) "final epoch past all swaps" true (Registry.epoch b >= 41)
  | None -> Alcotest.fail "dataset vanished"

(* The same no-blend guarantee, end to end through the TCP front-end: a
   connection streaming batches while the main thread hot-swaps the routed
   dataset must observe only whole-epoch results — every answer line in a
   batch carries one epoch, and the batch's estimates are bit-identical to
   exactly one summary's direct estimates (the %.17g wire format makes
   that comparison exact). *)
let test_reload_through_socket_serves_whole_epochs () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let t = Registry.create () in
  ignore (Result.get_ok (Registry.install_document t ~name:"d" tree));
  let summary_a = Summary.build ~k:2 tree in
  let summary_b = Summary.build ~k:3 tree in
  let twigs = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let expected_a = baseline summary_a twigs in
  let expected_b = baseline summary_b twigs in
  Alcotest.(check bool) "k=2 and k=3 estimates differ somewhere" false
    (Array.for_all2 same_float expected_a expected_b);
  ignore (Result.get_ok (Registry.swap t "d" summary_a));
  let server = Tl_serve.Server.start t in
  Fun.protect ~finally:(fun () -> Tl_serve.Server.stop server) @@ fun () ->
  let request =
    String.concat "\n" fig11_queries ^ "\n\n"
  in
  let blends = Atomic.make 0 in
  let mixed_epochs = Atomic.make 0 in
  let batches = Atomic.make 0 in
  let stop = Atomic.make false in
  let client () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Tl_serve.Server.port server));
    while not (Atomic.get stop) do
      output_string oc request;
      flush oc;
      let answers = ref [] in
      (try
         let continue = ref true in
         while !continue do
           match input_line ic with
           | "" -> continue := false
           | line -> answers := line :: !answers
         done
       with End_of_file -> ());
      let answers = List.rev !answers in
      if List.length answers <> Array.length twigs then Atomic.incr blends
      else begin
        let parsed =
          List.map
            (fun line ->
              match String.split_on_char '\t' line with
              | [ est; epoch; _; _ ] -> (float_of_string est, int_of_string epoch)
              | _ -> (Float.nan, -1))
            answers
        in
        let estimates = Array.of_list (List.map fst parsed) in
        let epochs = List.map snd parsed in
        (match epochs with
        | e :: rest -> if not (List.for_all (Int.equal e) rest) then Atomic.incr mixed_epochs
        | [] -> ());
        let matches expected = Array.for_all2 same_float estimates expected in
        if matches expected_a || matches expected_b then Atomic.incr batches
        else Atomic.incr blends
      end
    done;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  let clients = List.init 2 (fun _ -> Thread.create client ()) in
  for i = 1 to 30 do
    ignore (Result.get_ok (Registry.swap t "d" (if i mod 2 = 0 then summary_a else summary_b)));
    Thread.yield ()
  done;
  Thread.delay 0.1;
  Atomic.set stop true;
  List.iter Thread.join clients;
  Alcotest.(check int) "no blended batch over the wire" 0 (Atomic.get blends);
  Alcotest.(check int) "no mixed-epoch batch over the wire" 0 (Atomic.get mixed_epochs);
  Alcotest.(check bool) "clients actually served" true (Atomic.get batches > 0)

let () =
  Alcotest.run "registry"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "install, find, epochs, json" `Quick test_install_find_epochs;
          Alcotest.test_case "swap serves new, old bundle stays consistent" `Quick
            test_swap_serves_new_summary_old_bundle_stays_consistent;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "swap failure keeps old bundle, alarm latches" `Quick
            test_swap_failure_keeps_old_and_latches_alarm;
          Alcotest.test_case "load rejects label-name mismatch" `Quick
            test_load_rejects_label_name_mismatch;
          Alcotest.test_case "corrupt and missing files degrade" `Quick
            test_corrupt_file_degrades_gracefully;
        ] );
      ( "summary_only",
        [
          Alcotest.test_case "install, parse, batch, unknown tags" `Quick test_summary_only_dataset;
          Alcotest.test_case "document xpath = front-end" `Quick
            test_document_parse_query_matches_front_end;
        ] );
      ( "stress",
        [
          Alcotest.test_case "concurrent swap never blends epochs" `Quick
            test_concurrent_swap_bit_identity;
          Alcotest.test_case "reload through a live socket serves whole epochs" `Quick
            test_reload_through_socket_serves_whole_epochs;
        ] );
    ]
