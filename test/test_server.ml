(* Tests for the TCP query front-end: protocol shape, routing, JSON mode,
   concurrent clients reproducing the sequential reference bit-for-bit,
   admission-control shedding under a tiny queue, and graceful drain. *)

module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Treelattice = Tl_core.Treelattice
module Metrics = Tl_obs.Metrics
module Registry = Tl_serve.Registry
module Server = Tl_serve.Server

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let counter name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.counters with Some n -> n | None -> 0

let fig11_queries = [ "a(b(c,d))"; "a(b(c),b(d))"; "a(b,b)"; "b(c,d)"; "a(b(c,d),b)" ]

let contains ~needle hay = Tl_util.Prelude.string_contains ~needle hay

(* The reference every TCP answer must reproduce bit-for-bit. *)
let baseline summary twigs =
  Array.map (fun twig -> Estimator.estimate summary Treelattice.default_scheme twig) twigs

let registry_with_fig11 () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let t = Registry.create () in
  let bundle = Result.get_ok (Registry.install_document t ~name:"d" tree) in
  (t, tree, bundle)

let with_server ?config ?pool registry f =
  let server = Server.start ?config ?pool registry in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

(* --- a tiny test client ---------------------------------------------------- *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let with_client port f =
  let fd = connect port in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd (Unix.in_channel_of_descr fd) (Unix.out_channel_of_descr fd))

let send oc s =
  output_string oc s;
  flush oc

(* Answer lines up to (and consuming) the blank batch terminator. *)
let read_batch ic =
  let rec go acc =
    match input_line ic with
    | "" -> List.rev acc
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

type answer = Ok of float * int * string * string | Err of string

let parse_answer line =
  match String.split_on_char '\t' line with
  | [ "error"; msg ] -> Err msg
  | [ est; epoch; ds; scheme ] -> Ok (float_of_string est, int_of_string epoch, ds, scheme)
  | _ -> Alcotest.failf "unparseable answer line %S" line

(* --- protocol -------------------------------------------------------------- *)

let test_protocol_basics () =
  let t, tree, bundle = registry_with_fig11 () in
  let twigs = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let expected = baseline (Registry.summary bundle) twigs in
  let scheme_name = Estimator.scheme_name Treelattice.default_scheme in
  with_server t @@ fun server ->
  with_client (Server.port server) @@ fun _fd ic oc ->
  (* Comments are skipped, bad lines answer in place, order is input
     order, and the %.17g estimate round-trips bit-exactly. *)
  send oc "# a comment\na(b(c,d))\nnot a query (((\nb(c,d)\n\n";
  (match read_batch ic with
  | [ l0; l1; l2 ] -> (
    (match parse_answer l0 with
    | Ok (est, epoch, ds, scheme) ->
      Alcotest.(check bool) "query 0 bits" true (same_float est expected.(0));
      Alcotest.(check int) "epoch" (Registry.epoch bundle) epoch;
      Alcotest.(check string) "dataset" "d" ds;
      Alcotest.(check string) "scheme" scheme_name scheme
    | Err m -> Alcotest.failf "unexpected error %S" m);
    (match parse_answer l1 with
    | Err _ -> ()
    | Ok _ -> Alcotest.fail "malformed line must answer error");
    match parse_answer l2 with
    | Ok (est, _, _, _) -> Alcotest.(check bool) "query 3 bits" true (same_float est expected.(3))
    | Err m -> Alcotest.failf "unexpected error %S" m)
  | lines -> Alcotest.failf "expected 3 answers, got %d" (List.length lines));
  (* An empty flush still acknowledges with a blank line. *)
  send oc "\n";
  Alcotest.(check (list string)) "empty flush" [] (read_batch ic);
  (* A final batch without a trailing blank line flushes on close. *)
  send oc "a(b,b)";
  Unix.shutdown _fd Unix.SHUTDOWN_SEND;
  match read_batch ic with
  | [ line ] -> (
    match parse_answer line with
    | Ok (est, _, _, _) -> Alcotest.(check bool) "eof flush bits" true (same_float est expected.(2))
    | Err m -> Alcotest.failf "unexpected error %S" m)
  | lines -> Alcotest.failf "expected 1 answer at eof, got %d" (List.length lines)

let test_routing_and_unknown_prefix () =
  let t, tree, _ = registry_with_fig11 () in
  let regular = Helpers.tree_of Helpers.regular_spec in
  let b2 = Result.get_ok (Registry.install_document t ~name:"r" regular) in
  ignore tree;
  with_server t @@ fun server ->
  with_client (Server.port server) @@ fun _fd ic oc ->
  send oc "r:a(b)\nnosuch:a(b,b)\n\n";
  match List.map parse_answer (read_batch ic) with
  | [ Ok (_, e1, ds1, _); Ok (_, _, ds2, _) ] ->
    Alcotest.(check string) "prefix routes" "r" ds1;
    Alcotest.(check int) "routed epoch" (Registry.epoch b2) e1;
    (* A prefix naming no dataset is part of the query for the default. *)
    Alcotest.(check string) "unknown prefix falls through" "d" ds2
  | _ -> Alcotest.fail "expected two ok answers"

let test_json_mode () =
  let t, _, _ = registry_with_fig11 () in
  let config = { Server.default_config with Server.json = true } in
  with_server ~config t @@ fun server ->
  with_client (Server.port server) @@ fun _fd ic oc ->
  send oc "a(b,b)\nnot a query (((\n\n";
  match read_batch ic with
  | [ l0; l1 ] ->
    Alcotest.(check bool) "estimate field" true (contains ~needle:"\"estimate\":" l0);
    Alcotest.(check bool) "epoch field" true (contains ~needle:"\"epoch\":" l0);
    Alcotest.(check bool) "dataset field" true (contains ~needle:"\"dataset\":\"d\"" l0);
    Alcotest.(check bool) "error object" true (contains ~needle:"\"error\":" l1)
  | lines -> Alcotest.failf "expected 2 json answers, got %d" (List.length lines)

(* --- concurrent clients ---------------------------------------------------- *)

(* N writer threads, each flushing several batches of known queries: the
   full multiset of served answers must equal the sequential reference —
   here checked line-by-line against the baseline, which implies the
   multiset equality, and bit-exactly. *)
let test_multiclient_matches_sequential () =
  let t, tree, bundle = registry_with_fig11 () in
  let queries = Array.of_list fig11_queries in
  let twigs = Array.map (Helpers.twig_of_string tree) queries in
  let expected = baseline (Registry.summary bundle) twigs in
  let n_clients = 8 and batches_per_client = 5 and reps = 4 in
  Tl_util.Pool.with_pool ~domains:2 @@ fun pool ->
  with_server ~pool t @@ fun server ->
  let failures = Atomic.make 0 in
  let answered = Atomic.make 0 in
  let client cid =
    try
      with_client (Server.port server) @@ fun _fd ic oc ->
      for b = 1 to batches_per_client do
        let order =
          Array.init
            (reps * Array.length queries)
            (fun i -> (i + cid + b) mod Array.length queries)
        in
        let buf = Buffer.create 256 in
        Array.iter
          (fun qi ->
            Buffer.add_string buf queries.(qi);
            Buffer.add_char buf '\n')
          order;
        Buffer.add_char buf '\n';
        send oc (Buffer.contents buf);
        let answers = read_batch ic in
        if List.length answers <> Array.length order then Atomic.incr failures
        else
          List.iteri
            (fun i line ->
              match parse_answer line with
              | Ok (est, _, _, _) when same_float est expected.(order.(i)) ->
                Atomic.incr answered
              | _ -> Atomic.incr failures)
            answers
      done
    with _ -> Atomic.incr failures
  in
  let threads = List.init n_clients (fun cid -> Thread.create client cid) in
  List.iter Thread.join threads;
  Alcotest.(check int) "no mismatched or lost answer" 0 (Atomic.get failures);
  Alcotest.(check int) "every line answered"
    (n_clients * batches_per_client * reps * Array.length queries)
    (Atomic.get answered);
  let stats = Server.stats server in
  Alcotest.(check int) "stats count every query" (Atomic.get answered) stats.Server.queries;
  Alcotest.(check int) "all clients accepted" n_clients stats.Server.connections;
  Alcotest.(check int) "nothing shed at this load" 0 stats.Server.shed

(* --- admission control ----------------------------------------------------- *)

let test_tiny_queue_sheds () =
  Metrics.reset ();
  let t, _, _ = registry_with_fig11 () in
  let config = { Server.default_config with Server.workers = 1; queue_capacity = 1 } in
  with_server ~config t @@ fun server ->
  let port = Server.port server in
  (* Occupy the single worker with a half-sent batch... *)
  with_client port @@ fun holder_fd holder_ic holder_oc ->
  send holder_oc "a(b,b)\n";
  Thread.delay 0.3;
  (* ...fill the queue with a second connection... *)
  let queued_fd = connect port in
  Thread.delay 0.2;
  (* ...then every further arrival must be shed with a busy line. *)
  let busy_seen = ref 0 in
  for _ = 1 to 3 do
    with_client port @@ fun _fd ic _oc ->
    match input_line ic with
    | line when String.length line >= 4 && String.sub line 0 4 = "busy" -> incr busy_seen
    | line -> Alcotest.failf "expected busy, got %S" line
    | exception End_of_file -> Alcotest.fail "shed connection closed without busy line"
  done;
  Alcotest.(check int) "every overflow connection got busy" 3 !busy_seen;
  let stats = Server.stats server in
  Alcotest.(check bool) "shed counter advanced" true (stats.Server.shed >= 3);
  Alcotest.(check int) "shed metric matches" stats.Server.shed (counter "server.shed_total");
  (* The process stays healthy: the in-flight batch still answers... *)
  send holder_oc "\n";
  Alcotest.(check int) "holder batch answered" 1 (List.length (read_batch holder_ic));
  Unix.shutdown holder_fd Unix.SHUTDOWN_SEND;
  ignore (read_batch holder_ic);
  (* ...and once the worker frees up, the queued connection serves too. *)
  let ic = Unix.in_channel_of_descr queued_fd in
  let oc = Unix.out_channel_of_descr queued_fd in
  send oc "b(c,d)\n\n";
  (match List.map parse_answer (read_batch ic) with
  | [ Ok _ ] -> ()
  | _ -> Alcotest.fail "queued connection must serve after the holder");
  (try Unix.close queued_fd with Unix.Unix_error _ -> ())

(* --- graceful drain -------------------------------------------------------- *)

let test_stop_drains_in_flight_batch () =
  let t, tree, bundle = registry_with_fig11 () in
  let twigs = Array.of_list (List.map (Helpers.twig_of_string tree) fig11_queries) in
  let expected = baseline (Registry.summary bundle) twigs in
  let server = Server.start t in
  let port = Server.port server in
  with_client port @@ fun _fd ic oc ->
  (* Two lines pending, no flush: stop must half-close the connection so
     this batch still answers on its epoch before the server exits. *)
  send oc "a(b(c,d))\nb(c,d)\n";
  Thread.delay 0.3;
  let stopper = Thread.create Server.stop server in
  (match List.map parse_answer (read_batch ic) with
  | [ Ok (e0, ep0, _, _); Ok (e1, ep1, _, _) ] ->
    Alcotest.(check bool) "drained answer 0 bits" true (same_float e0 expected.(0));
    Alcotest.(check bool) "drained answer 1 bits" true (same_float e1 expected.(3));
    Alcotest.(check int) "same epoch" ep0 ep1
  | _ -> Alcotest.fail "in-flight batch must be answered during drain");
  Thread.join stopper;
  (* Stopped means stopped: new connections are refused. *)
  (match connect port with
  | fd ->
    (* A race with kernel-accepted backlog is possible; the socket must
       at least be closed without an answer. *)
    let ic = Unix.in_channel_of_descr fd in
    (match input_line ic with
    | line -> Alcotest.failf "answer after stop: %S" line
    | exception End_of_file -> ());
    Unix.close fd
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  Server.stop server

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "batching, errors, eof flush" `Quick test_protocol_basics;
          Alcotest.test_case "routing and unknown prefix" `Quick test_routing_and_unknown_prefix;
          Alcotest.test_case "json mode" `Quick test_json_mode;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "multi-client multiset = sequential reference" `Quick
            test_multiclient_matches_sequential;
        ] );
      ( "admission",
        [ Alcotest.test_case "tiny queue sheds with busy" `Quick test_tiny_queue_sheds ] );
      ( "drain",
        [
          Alcotest.test_case "stop answers in-flight batches" `Quick
            test_stop_drains_in_flight_batch;
        ] );
    ]
