(** Small general-purpose helpers shared across the library. *)

val list_remove_at : int -> 'a list -> 'a list
(** [list_remove_at i xs] drops the element at index [i].  Raises
    [Invalid_argument] if [i] is out of bounds. *)

val list_insert_sorted : cmp:('a -> 'a -> int) -> 'a -> 'a list -> 'a list
(** Insert keeping the list sorted under [cmp]. *)

val list_take : int -> 'a list -> 'a list
(** First [n] elements (fewer if the list is shorter). *)

val list_unique : cmp:('a -> 'a -> int) -> 'a list -> 'a list
(** Sort and deduplicate. *)

val sum_floats : float list -> float

val round_to : int -> float -> float
(** [round_to d v] rounds [v] to [d] decimal places. *)

val human_bytes : int -> string
(** Render a byte count as ["512 B"], ["20.1 KB"], ["3.4 MB"]. *)

val clamp : lo:'a -> hi:'a -> 'a -> 'a

val string_contains : needle:string -> string -> bool
(** Naive substring search; the empty needle is found everywhere. *)

val word_bytes : int
(** Bytes per OCaml heap word on this (64-bit) platform. *)

val heap_string_bytes : string -> int
(** Heap footprint of a string block: header word plus the padded payload.
    Used by the summary memory audits so the paper's "Utilization"
    comparisons charge what the runtime actually allocates. *)

val heap_block_bytes : int -> int
(** Heap footprint of a block with [fields] words (header included) — a
    record, a tuple, or one hash-table bucket cell. *)
