(* Worker domains run a single loop: wait for a job, run it, repeat.  A
   "job" here is one participant's share of a parallel map — a
   work-stealing loop over the call's chunk cursor — so the queue sees
   [domains - 1] entries per map, not one per element. *)

type t = {
  n_domains : int;
  mutex : Mutex.t;
  wake : Condition.t;
  jobs : (unit -> unit) Queue.t;
  map_mutex : Mutex.t;  (* serializes whole maps: one in flight at a time *)
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

let domains t = t.n_domains

let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.jobs && not pool.stopped do
      Condition.wait pool.wake pool.mutex
    done;
    match Queue.take_opt pool.jobs with
    | None ->
      (* Stopped and drained. *)
      Mutex.unlock pool.mutex
    | Some job ->
      Mutex.unlock pool.mutex;
      job ();
      loop ()
  in
  loop ()

let create ?domains () =
  let n_domains =
    max 1 (match domains with Some d -> d | None -> default_domains ())
  in
  let pool =
    {
      n_domains;
      mutex = Mutex.create ();
      wake = Condition.create ();
      jobs = Queue.create ();
      map_mutex = Mutex.create ();
      stopped = false;
      workers = [];
    }
  in
  pool.workers <- List.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stopped <- true;
  Condition.broadcast pool.wake;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* One participant's share of a map: claim chunks (indices into the
   boundary array) from [cursor] until the array is exhausted or another
   participant has recorded an error.  Local state is created lazily so
   participants that never win a chunk never pay for [init]. *)
let participant_loop ~cursor ~error ~boundaries ~init ~f ~src ~dst =
  try
    let nchunks = Array.length boundaries - 1 in
    let state = ref None in
    let continue = ref true in
    while !continue do
      let ci = Atomic.fetch_and_add cursor 1 in
      if ci >= nchunks || Atomic.get error <> None then continue := false
      else begin
        let state =
          match !state with
          | Some s -> s
          | None ->
            let s = init () in
            state := Some s;
            s
        in
        for i = boundaries.(ci) to boundaries.(ci + 1) - 1 do
          dst.(i) <- Some (f state src.(i))
        done
      end
    done
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    (* Keep the first error; later ones lose the race and are dropped. *)
    ignore (Atomic.compare_and_set error None (Some (exn, bt)))

let sequential_map ~init f src =
  let state = init () in
  Array.map (f state) src

(* Chunk boundaries as index cut points [|0; ...; n|].  Without cost hints
   chunks are a fixed item count; with them each chunk carries roughly
   [total_cost / (domains * 8)], so one heavy item fills its own chunk
   instead of dragging a long run of light neighbours with it — claimed
   last, such a mixed chunk would serialize the whole tail. *)
let uniform_boundaries ~n ~chunk =
  let nchunks = (n + chunk - 1) / chunk in
  Array.init (nchunks + 1) (fun i -> min n (i * chunk))

let costed_boundaries ~n ~domains ~cost src =
  let total = ref 0 in
  let costs =
    Array.map
      (fun x ->
        let c = max 1 (cost x) in
        total := !total + c;
        c)
      src
  in
  let target = max 1 (!total / (domains * 8)) in
  let cuts = ref [ 0 ] in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    acc := !acc + costs.(i);
    if !acc >= target && i < n - 1 then begin
      cuts := (i + 1) :: !cuts;
      acc := 0
    end
  done;
  Array.of_list (List.rev (n :: !cuts))

(* Below [cutoff] items a map is not worth distributing: waking helper
   domains, contending the chunk cursor, and the end-of-map rendezvous
   cost tens of microseconds, which a small batch of cheap elements never
   earns back — the bench's parallel-build section measured small-document
   summary construction at 0.5-0.7x of sequential before this fallback
   existed.  The threshold is an item count because items are all the
   pool can see; callers that know their per-item cost scale it
   (e.g. {!Tl_mining.Miner} divides a work budget by document size). *)
let default_cutoff = 2

let parallel_chunked_map pool ?(cutoff = default_cutoff) ?chunk_size ?cost ~init f src =
  let n = Array.length src in
  if pool.stopped then invalid_arg "Pool: map on a shut-down pool";
  (* Empty input: no chunks, no participants, and — like the parallel
     path, whose participants create state lazily — no [init] call.  This
     also keeps [costed_boundaries] out of reach of [total = 0] inputs:
     per-item costs are clamped to [>= 1] there, so an all-zero (or
     negative) cost function can never yield a zero divisor or an empty
     chunk, but only when there is at least one item to charge. *)
  if n = 0 then [||]
  else if pool.n_domains <= 1 || n <= 1 || n < cutoff then sequential_map ~init f src
  else begin
    (* One map in flight at a time: concurrent callers (the TCP server's
       worker threads, the CLI loop) serialize here instead of interleaving
       their helper jobs in the shared queue.  The lock is not reentrant,
       so nesting a map inside a mapped function still deadlocks — that
       contract is unchanged. *)
    Mutex.lock pool.map_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock pool.map_mutex) @@ fun () ->
    let boundaries =
      match cost with
      | Some cost -> costed_boundaries ~n ~domains:pool.n_domains ~cost src
      | None ->
        let chunk =
          match chunk_size with
          | Some c -> max 1 c
          | None -> max 1 (n / (pool.n_domains * 8))
        in
        uniform_boundaries ~n ~chunk
    in
    let helpers =
      (* No point waking more helpers than there are chunks beyond the
         caller's first claim. *)
      min (pool.n_domains - 1) (Array.length boundaries - 2)
    in
    let dst = Array.make n None in
    let cursor = Atomic.make 0 in
    let error = Atomic.make None in
    let remaining = ref helpers in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let run () = participant_loop ~cursor ~error ~boundaries ~init ~f ~src ~dst in
    let helper () =
      run ();
      Mutex.lock done_mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal done_cond;
      Mutex.unlock done_mutex
    in
    Mutex.lock pool.mutex;
    for _ = 1 to helpers do
      Queue.add helper pool.jobs
    done;
    Condition.broadcast pool.wake;
    Mutex.unlock pool.mutex;
    run ();
    Mutex.lock done_mutex;
    while !remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    match Atomic.get error with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* every slot was claimed by some chunk *))
        dst
  end

let parallel_map pool ?cutoff f src =
  parallel_chunked_map pool ?cutoff ~init:(fun () -> ()) (fun () x -> f x) src
