module type HASHED = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
end

module Make (H : HASHED) = struct
  module Tbl = Hashtbl.Make (H)

  type value = H.t

  type t = { ids : int Tbl.t; mutable rev : H.t array; mutable next : int }

  let create () = { ids = Tbl.create 64; rev = [||]; next = 0 }

  let intern t v =
    match Tbl.find_opt t.ids v with
    | Some id -> id
    | None ->
      let id = t.next in
      if id >= Array.length t.rev then begin
        (* Seed the growth with [v] itself so no dummy element is needed. *)
        let bigger = Array.make (max 64 (2 * Array.length t.rev)) v in
        Array.blit t.rev 0 bigger 0 id;
        t.rev <- bigger
      end;
      t.rev.(id) <- v;
      Tbl.replace t.ids v id;
      t.next <- id + 1;
      id

  let find t v = Tbl.find_opt t.ids v

  let value t id =
    if id < 0 || id >= t.next then invalid_arg (Printf.sprintf "Interner.value: unknown id %d" id);
    t.rev.(id)

  let size t = t.next

  let values t = Array.sub t.rev 0 t.next

  let copy t = { ids = Tbl.copy t.ids; rev = Array.copy t.rev; next = t.next }
end

(* The original string interface, now an instance of the functor.  [name]
   keeps its historical error message. *)

module Strings = Make (struct
  type t = string

  let equal = String.equal

  let hash = Hashtbl.hash
end)

type t = Strings.t

let create = Strings.create

let intern = Strings.intern

let find = Strings.find

let name t id =
  if id < 0 || id >= Strings.size t then
    invalid_arg (Printf.sprintf "Interner.name: unknown id %d" id);
  Strings.value t id

let size = Strings.size

let names = Strings.values

let copy = Strings.copy
