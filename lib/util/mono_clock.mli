(** Monotonic clock (CLOCK_MONOTONIC via a C primitive).

    {!Timer} and the {!Tl_obs} spans measure durations with this clock:
    unlike [Unix.gettimeofday] it never steps when NTP adjusts the system
    time, so a measurement taken across an adjustment stays valid.  The
    epoch is arbitrary (typically boot time) — readings only make sense
    subtracted from one another, never as calendar timestamps. *)

val now_ns : unit -> int
(** Nanoseconds since an arbitrary fixed epoch.  Never allocates. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val ns_to_ms : int -> float

val elapsed_ns : since:int -> int
(** [elapsed_ns ~since] is [now_ns () - since]. *)
