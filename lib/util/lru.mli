(** Bounded LRU maps with O(1) lookup, insert, and eviction.

    The recency order is an intrusive doubly-linked list threaded through
    the hash-table entries, so every operation — including evicting the
    least-recently-used entry when a full map takes a new key — is
    constant-time.  {!Tl_core.Adaptive}'s feedback cache and the compiled
    plan cache ({!Tl_core.Plan_cache}) both sit on this structure, which is
    what keeps their eviction policies coordinated: one mechanism, one set
    of stats, the same meaning of "oldest".

    A map is {e not} synchronized; share one across domains only behind a
    caller-owned lock — which is exactly what both named consumers do:
    {!Tl_core.Plan_cache} guards its shared table with its mutex, and
    {!Tl_core.Adaptive} wraps every cache operation in an internal lock. *)

module Make (H : Hashtbl.HashedType) : sig
  type key = H.t

  type 'a t

  val create : capacity:int -> 'a t
  (** An empty map evicting beyond [capacity] entries.  Raises
      [Invalid_argument] when [capacity < 1]. *)

  val capacity : 'a t -> int

  val size : 'a t -> int

  val find : 'a t -> key -> 'a option
  (** Lookup, marking the entry most-recently-used and counting a hit or a
      miss. *)

  val peek : 'a t -> key -> 'a option
  (** Lookup without touching recency or the hit/miss counters. *)

  val mem : 'a t -> key -> bool
  (** Membership without touching recency or the hit/miss counters. *)

  val add : 'a t -> key -> 'a -> unit
  (** Insert or replace, marking the entry most-recently-used.  When a new
      key lands in a full map the least-recently-used entry is evicted
      first (O(1)). *)

  val remove : 'a t -> key -> unit

  val clear : 'a t -> unit
  (** Drop every entry.  Does not reset the counters. *)

  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  (** Fold over the entries, most recent first. *)

  val validate : 'a t -> (unit, string) result
  (** Structural integrity check: the recency list must visit exactly the
      table's entries, forward and backward links must agree, and the size
      must respect the capacity.  Always [Ok] under the documented
      single-owner discipline — the point of the check is to {e catch}
      undisciplined sharing, so concurrency stress tests can assert that a
      lock-wrapped map survives what an unsynchronized one would not. *)

  type stats = {
    size : int;
    capacity : int;
    hits : int;  (** {!find} calls answered *)
    misses : int;  (** {!find} calls not answered *)
    evictions : int;  (** entries displaced by {!add} on a full map *)
  }

  val stats : 'a t -> stats
end
