let now () = Mono_clock.now_s ()

let time f =
  let start = Mono_clock.now_ns () in
  let result = f () in
  (result, float_of_int (Mono_clock.elapsed_ns ~since:start) /. 1e9)

let time_ms f =
  let result, s = time f in
  (result, s *. 1000.0)

let mean_ms ?(repeats = 1) f =
  if repeats <= 0 then invalid_arg "Timer.mean_ms: repeats must be positive";
  let total = ref 0.0 in
  for _ = 1 to repeats do
    let _, ms = time_ms f in
    total := !total +. ms
  done;
  !total /. float_of_int repeats
