(** Timing for the experiment harness.

    The paper reports summary-construction time (Table 3) and per-query
    response time (Fig. 9); these helpers give millisecond-resolution
    measurements of both one-shot and repeated computations.

    All measurements use the monotonic clock ({!Mono_clock}), so they are
    immune to wall-clock steps (NTP adjustments, manual clock changes)
    that would corrupt a [gettimeofday]-based stopwatch. *)

val now : unit -> float
(** Current monotonic time in seconds, from an arbitrary fixed epoch.
    Only differences are meaningful — this is {e not} calendar time. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Like {!time} but elapsed milliseconds. *)

val mean_ms : ?repeats:int -> (unit -> 'a) -> float
(** [mean_ms ~repeats f] is the average elapsed milliseconds of [f] over
    [repeats] runs (default 1). *)
