external now_ns : unit -> int = "tl_mono_clock_now_ns" [@@noalloc]

let now_s () = float_of_int (now_ns ()) /. 1e9

let ns_to_ms ns = float_of_int ns /. 1e6

let elapsed_ns ~since = now_ns () - since
