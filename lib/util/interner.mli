(** Bidirectional interning of hashable values into dense integer ids.

    Ids are allocated in first-seen order starting from 0, which makes
    id assignment deterministic for a given insertion sequence (and hence
    serialized summaries stable for a given input document).

    The functor {!Make} interns any hashable type; the flat [t] interface
    below is the original string instance, used for element tags so that
    trees, twigs, and lattice keys compare and hash on ints.
    {!Tl_twig.Twig.Key} instantiates {!Make} over canonical twig encodings
    to hash-cons twigs. *)

module type HASHED = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
end

module Make (H : HASHED) : sig
  type value = H.t

  type t

  val create : unit -> t

  val intern : t -> value -> int
  (** [intern t v] returns the id of [v], allocating the next dense id if
      [v] was never seen. *)

  val find : t -> value -> int option
  (** Lookup without allocating an id. *)

  val value : t -> int -> value
  (** Inverse of {!intern}.  Raises [Invalid_argument] for an unallocated
      id. *)

  val size : t -> int

  val values : t -> value array
  (** All interned values, indexed by id. *)

  val copy : t -> t
end

(** {2 String instance} *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating a fresh one if needed. *)

val find : t -> string -> int option
(** Lookup without allocating. *)

val name : t -> int -> string
(** [name t id] is the string for [id].  Raises [Invalid_argument] for an
    unallocated id. *)

val size : t -> int
(** Number of interned strings. *)

val names : t -> string array
(** All interned strings, indexed by id. *)

val copy : t -> t
