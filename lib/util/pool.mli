(** A fixed-size OCaml 5 domain pool for data-parallel maps.

    The pool owns [domains - 1] worker domains (the caller is the remaining
    participant); work is claimed chunk-by-chunk from a shared atomic
    cursor, so uneven per-element costs balance automatically.  Results are
    written into their input slot, which makes every map {e deterministic}:
    output order never depends on scheduling, only on input order.  A pool
    created with [~domains:1] spawns nothing and runs every map on the
    caller's own sequential path, so results are bit-identical with or
    without a pool.

    Maps may be issued from any thread of the domain that created the
    pool; concurrent maps serialize on an internal (non-reentrant) lock,
    so the TCP server's worker threads and the CLI loop can share one
    pool without caller-side coordination.  Nesting a map inside a mapped
    function still deadlocks.  Worker domains idle cheaply between calls
    (blocked on a condition variable), so one pool can and should be
    reused across a whole run. *)

type t

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the rest of the process, never less than one participant. *)

val create : ?domains:int -> unit -> t
(** A pool with [domains] total participants (default
    {!default_domains}; values [< 1] are clamped to 1).  [domains - 1]
    worker domains are spawned immediately. *)

val domains : t -> int
(** Total participants, including the calling domain. *)

val parallel_map : t -> ?cutoff:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] with elements evaluated
    across the pool's domains.  [f] must not touch mutable state shared
    with other elements.  The first exception raised by any [f] is
    re-raised in the caller (with its backtrace) after all participants
    stop claiming work.  See {!parallel_chunked_map} for [cutoff]. *)

val parallel_chunked_map :
  t ->
  ?cutoff:int ->
  ?chunk_size:int ->
  ?cost:('a -> int) ->
  init:(unit -> 's) ->
  ('s -> 'a -> 'b) ->
  'a array ->
  'b array
(** Like {!parallel_map}, but each participant first creates private local
    state with [init] (at most once, lazily) and threads it through every
    element it processes — the shape needed when the per-element function
    wants a reusable scratch structure, e.g. a {!Tl_twig.Match_count}
    context cloned per domain.  [chunk_size] overrides the number of
    consecutive elements claimed per cursor fetch (default: scaled to
    roughly eight chunks per participant).

    [cost] is a per-item relative cost hint for skewed workloads (values
    [< 1] are clamped to 1; it overrides [chunk_size]): chunk boundaries
    are cut so each chunk carries a roughly equal cost share rather than
    an equal item count, which stops one expensive item — claimed late,
    bundled with a long run of cheap ones — from serializing the tail of
    the map.  Hints only shape chunking; results are identical with or
    without them.

    [cutoff] is the work-size floor for going parallel: inputs with fewer
    than [cutoff] items run on the caller's sequential path (identical
    results — the qcheck property in [test/test_pool.ml] holds for every
    cutoff).  Waking helpers, contending the chunk cursor, and the
    end-of-map rendezvous cost real time that a small batch of cheap
    elements never earns back; callers that know their per-item cost
    should scale the floor accordingly (the miner divides a work budget
    by document size, the serving engine uses a fixed small floor).  The
    default keeps every multi-element input parallel.

    Degenerate inputs are safe: an empty array returns [[||]] without
    calling [init], [cost], or [f], and an all-zero or negative cost
    function can never produce a zero divisor or an empty chunk. *)

val shutdown : t -> unit
(** Join all worker domains.  Idempotent; mapping on a shut-down pool
    raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
