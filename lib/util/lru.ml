(* Intrusive LRU: the hash table owns the nodes, and the recency order is
   a doubly-linked list threaded through them ([head] = most recent,
   [tail] = eviction victim).  Every operation splices O(1) links; nothing
   ever scans the table. *)

module Make (H : Hashtbl.HashedType) = struct
  type key = H.t

  module Table = Hashtbl.Make (H)

  type 'a node = {
    nkey : key;
    mutable value : 'a;
    mutable prev : 'a node option;  (* toward the most-recent end *)
    mutable next : 'a node option;  (* toward the least-recent end *)
  }

  type 'a t = {
    capacity : int;
    table : 'a node Table.t;
    mutable head : 'a node option;
    mutable tail : 'a node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
    {
      capacity;
      table = Table.create capacity;
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity t = t.capacity

  let size t = Table.length t.table

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.prev <- None;
    node.next <- t.head;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let touch t node =
    match node.prev with
    | None -> () (* already the head *)
    | Some _ ->
      unlink t node;
      push_front t node

  let find t key =
    match Table.find_opt t.table key with
    | Some node ->
      t.hits <- t.hits + 1;
      touch t node;
      Some node.value
    | None ->
      t.misses <- t.misses + 1;
      None

  let peek t key = Option.map (fun node -> node.value) (Table.find_opt t.table key)

  let mem t key = Table.mem t.table key

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some victim ->
      unlink t victim;
      Table.remove t.table victim.nkey;
      t.evictions <- t.evictions + 1

  let add t key value =
    match Table.find_opt t.table key with
    | Some node ->
      node.value <- value;
      touch t node
    | None ->
      if Table.length t.table >= t.capacity then evict_lru t;
      let node = { nkey = key; value; prev = None; next = None } in
      Table.replace t.table key node;
      push_front t node

  let remove t key =
    match Table.find_opt t.table key with
    | Some node ->
      unlink t node;
      Table.remove t.table key
    | None -> ()

  let clear t =
    Table.reset t.table;
    t.head <- None;
    t.tail <- None

  let fold f t init =
    let rec go acc = function
      | None -> acc
      | Some node -> go (f node.nkey node.value acc) node.next
    in
    go init t.head

  type stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

  let stats t =
    {
      size = Table.length t.table;
      capacity = t.capacity;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
    }
end
