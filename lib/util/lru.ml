(* Intrusive LRU: the hash table owns the nodes, and the recency order is
   a doubly-linked list threaded through them ([head] = most recent,
   [tail] = eviction victim).  Every operation splices O(1) links; nothing
   ever scans the table. *)

module Make (H : Hashtbl.HashedType) = struct
  type key = H.t

  module Table = Hashtbl.Make (H)

  type 'a node = {
    nkey : key;
    mutable value : 'a;
    mutable prev : 'a node option;  (* toward the most-recent end *)
    mutable next : 'a node option;  (* toward the least-recent end *)
  }

  type 'a t = {
    capacity : int;
    table : 'a node Table.t;
    mutable head : 'a node option;
    mutable tail : 'a node option;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
    {
      capacity;
      table = Table.create capacity;
      head = None;
      tail = None;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let capacity t = t.capacity

  let size t = Table.length t.table

  let unlink t node =
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.head <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.tail <- node.prev);
    node.prev <- None;
    node.next <- None

  let push_front t node =
    node.prev <- None;
    node.next <- t.head;
    (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
    t.head <- Some node

  let touch t node =
    match node.prev with
    | None -> () (* already the head *)
    | Some _ ->
      unlink t node;
      push_front t node

  let find t key =
    match Table.find_opt t.table key with
    | Some node ->
      t.hits <- t.hits + 1;
      touch t node;
      Some node.value
    | None ->
      t.misses <- t.misses + 1;
      None

  let peek t key = Option.map (fun node -> node.value) (Table.find_opt t.table key)

  let mem t key = Table.mem t.table key

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some victim ->
      unlink t victim;
      Table.remove t.table victim.nkey;
      t.evictions <- t.evictions + 1

  let add t key value =
    match Table.find_opt t.table key with
    | Some node ->
      node.value <- value;
      touch t node
    | None ->
      if Table.length t.table >= t.capacity then evict_lru t;
      let node = { nkey = key; value; prev = None; next = None } in
      Table.replace t.table key node;
      push_front t node

  let remove t key =
    match Table.find_opt t.table key with
    | Some node ->
      unlink t node;
      Table.remove t.table key
    | None -> ()

  let clear t =
    Table.reset t.table;
    t.head <- None;
    t.tail <- None

  let fold f t init =
    let rec go acc = function
      | None -> acc
      | Some node -> go (f node.nkey node.value acc) node.next
    in
    go init t.head

  (* Walk the intrusive list both ways and reconcile it with the table.
     Any unsynchronized concurrent mutation that corrupts the splicing —
     lost nodes, dangling back-links, cycles — shows up here as an
     [Error]; the walk is bounded by the table size so a cycle terminates
     instead of hanging the checker. *)
  let validate t =
    let n = Table.length t.table in
    let rec forward seen prev = function
      | None ->
        if seen <> n then
          Error (Printf.sprintf "list holds %d node(s) but table holds %d" seen n)
        else begin
          match (t.tail, prev) with
          | None, None -> Ok ()
          | Some a, Some b when a == b -> Ok ()
          | _ -> Error "tail does not point at the last node"
        end
      | Some node ->
        if seen >= n then Error "recency list is longer than the table (cycle or stray node)"
        else if
          not
            (match (node.prev, prev) with
            | None, None -> true
            | Some p, Some q -> p == q
            | _ -> false)
        then Error (Printf.sprintf "back-link mismatch at position %d" seen)
        else begin
          match Table.find_opt t.table node.nkey with
          | Some owner when owner == node -> forward (seen + 1) (Some node) node.next
          | Some _ -> Error "listed node is not the table's node for its key"
          | None -> Error "listed node's key is missing from the table"
        end
    in
    match forward 0 None t.head with
    | Error _ as e -> e
    | Ok () ->
      if n > t.capacity then
        Error (Printf.sprintf "size %d exceeds capacity %d" n t.capacity)
      else Ok ()

  type stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

  let stats t =
    {
      size = Table.length t.table;
      capacity = t.capacity;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
    }
end
