/* Monotonic clock primitive for Tl_util.Mono_clock.
 *
 * CLOCK_MONOTONIC never steps (NTP slews it at most), so durations
 * computed from it are immune to the wall-clock jumps that corrupt
 * gettimeofday-based timings.  The reading is returned as a tagged
 * immediate (nanoseconds fit in 62 bits for ~146 years of uptime), so
 * the call never allocates on the OCaml heap.
 */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value tl_mono_clock_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
