let list_remove_at i xs =
  if i < 0 then invalid_arg "Prelude.list_remove_at: negative index";
  let rec go i = function
    | [] -> invalid_arg "Prelude.list_remove_at: index out of bounds"
    | _ :: rest when i = 0 -> rest
    | x :: rest -> x :: go (i - 1) rest
  in
  go i xs

let rec list_insert_sorted ~cmp x = function
  | [] -> [ x ]
  | y :: rest as all -> if cmp x y <= 0 then x :: all else y :: list_insert_sorted ~cmp x rest

let rec list_take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: list_take (n - 1) rest

let list_unique ~cmp xs =
  let sorted = List.sort cmp xs in
  let rec dedup = function
    | a :: b :: rest when cmp a b = 0 -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  dedup sorted

let sum_floats = List.fold_left ( +. ) 0.0

let round_to d v =
  let scale = 10.0 ** float_of_int d in
  Float.round (v *. scale) /. scale

let human_bytes n =
  if n < 1024 then Printf.sprintf "%d B" n
  else if n < 1024 * 1024 then Printf.sprintf "%.1f KB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%.1f MB" (float_of_int n /. (1024.0 *. 1024.0))

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let string_contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec at i j = j = n || (haystack.[i + j] = needle.[j] && at i (j + 1)) in
  let rec go i = i + n <= h && (at i 0 || go (i + 1)) in
  n = 0 || go 0

let word_bytes = 8

let heap_string_bytes s =
  (* header word + the padded payload (content, NUL terminator, padding). *)
  word_bytes * (1 + ((String.length s / word_bytes) + 1))

let heap_block_bytes fields = word_bytes * (1 + fields)
