(** The dataset registry: epoch-versioned serving bundles with hot reload.

    A registry names a collection of {e bundles}.  Each bundle is one
    immutable serving unit — summary, compiled-plan cache ({!Engine}),
    adaptive feedback state, audit ring, and drift monitor — stamped with
    a registry-wide monotonically increasing {e epoch}.  {!swap} (and the
    file-loading {!load}/{!reload}) builds and validates a replacement
    bundle {e off} the serving path and installs it with a single atomic
    pointer store:

    - a batch holds the bundle it started with, so in-flight work always
      finishes on the epoch it began on — there is no moment at which a
      plan compiled under one summary can be evaluated under another (the
      epoch threaded through {!Tl_core.Plan_cache} and {!Engine} asserts
      this in debug builds);
    - new batches pick up the new bundle on their next {!find};
    - a failed load or validation leaves the old bundle serving untouched
      — graceful degradation, surfaced through the
      [tl_registry_reload_failures_total] counter and a latching
      reload-failure {!alarm} (which does {e not} flip [/healthz]: the old
      epoch is still healthy).

    Label safety: a bundle knows its label space (the backing document's
    interner, or a name table for summary-only datasets), and installing
    a summary whose twigs reference labels outside that space — or, on
    the file-loading path, whose embedded label {e names} are absent from
    the routed document — is rejected with a descriptive error instead of
    silently serving wrong selectivities.

    Metrics: [registry.datasets], [registry.epoch.<name>] gauges,
    [registry.reloads_total] / [registry.reload_failures_total] counters,
    and the [registry.alarm] gauge (suffix-encoded names — the renderer
    has no label support). *)

type t

type bundle
(** One immutable serving unit.  Everything reachable from a bundle —
    summary, engine, adaptive state, audit log, monitor — belongs to its
    epoch and is never mutated by a subsequent {!swap}; holding a bundle
    across a swap is safe and serves consistent (if stale) answers. *)

type config = {
  scheme : Tl_core.Estimator.scheme;  (** estimation scheme for all bundles *)
  k : int;  (** lattice depth when mining a document *)
  plan_capacity : int option;  (** per-bundle plan-cache capacity *)
  audit_capacity : int option;  (** per-bundle audit-ring capacity *)
  adaptive_capacity : int option;  (** per-bundle feedback-cache capacity *)
  sample_rate : float;  (** drift-monitor sampling rate (0 = off) *)
  drift_threshold : float;  (** drift-alarm p90 threshold *)
  drift_tree : Tl_tree.Data_tree.t option;
      (** replay sampled queries against this document (remapped by tag
          name) instead of each dataset's own oracle *)
}

val default_config : config
(** [default_scheme], [k = 4], default capacities, monitoring off. *)

val create : ?config:config -> unit -> t
(** An empty registry.  Registers the [registry.*] metrics immediately so
    an idle scrape already shows the surface. *)

val config : t -> config

(** {2 Installing and swapping} *)

val install_document :
  ?pool:Tl_util.Pool.t -> t -> name:string -> ?source:string -> Tl_tree.Data_tree.t -> (bundle, string) result
(** Mine [tree] at the configured [k] and install the result as dataset
    [name] (creating it, or swapping an existing one).  [source] records
    where the dataset came from, enabling {!reload}. *)

val install_summary :
  t -> name:string -> ?source:string -> names:string array -> Tl_lattice.Summary.t -> (bundle, string) result
(** Install a pre-built summary as a {e summary-only} dataset: label ids
    in the summary's twigs index [names].  Summary-only bundles estimate
    and audit like document-backed ones but have no adaptive feedback or
    exact oracle (so no drift monitor unless [config.drift_tree] is set). *)

val swap : t -> string -> Tl_lattice.Summary.t -> (bundle, string) result
(** [swap t name summary] installs a fresh bundle around [summary] for
    the existing dataset [name], keeping its label space and source.  The
    new summary is validated against that label space first; on [Error]
    the old bundle keeps serving and the reload-failure alarm latches.
    Returns the bundle now current for [name]. *)

val load : t -> string -> string -> (bundle, string) result
(** [load t name path] routes [path] into dataset [name]: a [*.xml] path
    is parsed and mined ({!install_document}); anything else is read as a
    serialized summary ({!Tl_lattice.Summary_io}).  A summary routed to a
    document-backed dataset is re-keyed into the document's interner by
    tag {e name} and rejected if it names a tag the document lacks; a
    summary routed to a new or summary-only dataset brings its own label
    table.  All failures (I/O, parse, validation) degrade gracefully:
    [Error] with the old bundle — if any — still serving. *)

val reload : t -> string -> (bundle, string) result
(** Re-run {!load} from the dataset's recorded source path. *)

val reload_all : t -> (string * (bundle, string) result) list
(** {!reload} every dataset that has a recorded source, in installation
    order (datasets installed programmatically are skipped). *)

(** {2 Lookup} *)

val find : t -> string -> bundle option
(** The current bundle of dataset [name] — one lock-protected table probe
    plus one atomic read.  Callers serve a whole batch from the bundle
    they got, picking up swaps only between batches. *)

val default : t -> bundle option
(** The first-installed dataset's current bundle (the serving default for
    queries that do not name a dataset). *)

val dataset_names : t -> string list
(** Installation order. *)

val list : t -> bundle list
(** Current bundles, in installation order. *)

val alarm : t -> bool
(** The latching reload-failure alarm: raised by the first failed
    {!swap}/{!load}/{!reload} and held until {!clear_alarm}.  Distinct
    from the per-bundle drift alarm ({!Monitor.alarm}). *)

val clear_alarm : t -> unit

val datasets_json : t -> string
(** The [/datasets] payload: a single JSON object listing every dataset's
    name, epoch, summary entry count, lattice depth, kind
    ([document]/[summary]), and drift-alarm state, plus the registry-wide
    reload alarm. *)

(** {2 Bundles} *)

val name : bundle -> string

val epoch : bundle -> int
(** The registry-wide epoch this bundle was installed at; strictly
    increasing across installs of any dataset. *)

val summary : bundle -> Tl_lattice.Summary.t

val engine : bundle -> Engine.t

val audit : bundle -> Audit.t

val monitor : bundle -> Monitor.t option

val adaptive : bundle -> Tl_core.Adaptive.t option

val tree : bundle -> Tl_tree.Data_tree.t option
(** The backing document ([None] for summary-only datasets). *)

val label_names : bundle -> string array
(** The bundle's label space, indexed by label id. *)

val parse_query : bundle -> string -> (Tl_twig.Twig.t * (float -> float), string) result
(** One query line in twig or XPath syntax, parsed against the bundle's
    label space; unknown tags intern fresh (selectivity 0), syntax errors
    are diagnosed with the parser the line looks written for.  The
    returned transform applies anchored-XPath scaling: against a document
    it mirrors {!Tl_core.Treelattice.estimate_xpath} exactly; a
    summary-only bundle scales by the root tag's own level-1 occurrence
    count instead (the document shape is unavailable). *)

val batch : ?pool:Tl_util.Pool.t -> bundle -> Tl_twig.Twig.t array -> float array
(** {!Engine.batch} through the bundle's full serving stack: adaptive
    feedback as the [?extra] source (document-backed bundles), the audit
    ring, and the drift monitor when configured.  Also bumps the
    per-dataset [serve.queries.<name>]/[serve.batches.<name>] counters. *)
