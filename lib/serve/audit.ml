(* The serving audit log: who asked what, what we answered, how long it
   took, and how much of the machinery was reused.

   Same sharding discipline as [Tl_obs.Metrics] and [Plan_cache]: every
   domain that records gets a private ring buffer held in domain-local
   storage, registered once in a global list so the read-side views can
   merge them.  Recording is therefore lock-free — one DLS read, one
   atomic fetch-and-add for the global sequence number, one array store —
   and safe from inside a [Tl_util.Pool] batch evaluation.  Merging is
   deterministic: records carry unique sequence numbers, every view sorts
   on them, and the multiset of records (modulo the nondeterministic
   sequence/latency fields) from a parallel batch equals the sequential
   one — the property test/test_serve.ml pins.

   A shard outlives its domain, so records written by pool workers stay
   visible after [Pool.shutdown].  When a ring wraps, the oldest records
   of that shard are dropped; [total] keeps counting. *)

module Twig = Tl_twig.Twig
module Metrics = Tl_obs.Metrics

type record = {
  seq : int;  (* global admission order; unique *)
  key_id : int;
  scheme : string;
  estimate : float;
  latency_ns : int;
  plan_hit : bool;
  feedback_hit : bool;
  clamped : bool;
  rel_error : float;  (* nan when the drift monitor did not sample this query *)
}

let dummy =
  {
    seq = -1;
    key_id = -1;
    scheme = "";
    estimate = 0.0;
    latency_ns = 0;
    plan_hit = false;
    feedback_hit = false;
    clamped = false;
    rel_error = Float.nan;
  }

type shard = { ring : record array; mutable filled : int; mutable next : int }

type t = {
  capacity : int;  (* per shard *)
  seq : int Atomic.t;
  mutex : Mutex.t;
  mutable shards : shard list;  (* guarded by [mutex]; read-side only *)
  shard_key : shard Domain.DLS.key;
}

let () =
  Metrics.describe "audit.records" "Per-query audit records admitted";
  Metrics.describe "serve.latency_ns" "Distribution of per-query serving latencies (ns)"

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Audit.create: capacity must be >= 1";
  let mutex = Mutex.create () in
  let rec t =
    lazy
      {
        capacity;
        seq = Atomic.make 0;
        mutex;
        shards = [];
        shard_key =
          Domain.DLS.new_key (fun () ->
              let shard = { ring = Array.make capacity dummy; filled = 0; next = 0 } in
              let t = Lazy.force t in
              Mutex.lock t.mutex;
              t.shards <- shard :: t.shards;
              Mutex.unlock t.mutex;
              shard);
      }
  in
  Lazy.force t

let capacity t = t.capacity

let record t ~key_id ~scheme ~estimate ~latency_ns ~plan_hit ~feedback_hit ~clamped ~rel_error =
  let seq = Atomic.fetch_and_add t.seq 1 in
  let s = Domain.DLS.get t.shard_key in
  s.ring.(s.next) <-
    { seq; key_id; scheme; estimate; latency_ns; plan_hit; feedback_hit; clamped; rel_error };
  s.next <- (s.next + 1) mod t.capacity;
  if s.filled < t.capacity then s.filled <- s.filled + 1;
  Metrics.incr "audit.records";
  Metrics.observe "serve.latency_ns" latency_ns

let total t = Atomic.get t.seq

(* --- read-side views ----------------------------------------------------- *)

let all_shards t =
  Mutex.lock t.mutex;
  let s = t.shards in
  Mutex.unlock t.mutex;
  s

(* Snapshot every shard's live records.  Concurrent writers may overwrite
   a slot mid-read; records are immutable values, so a read sees either
   the old or the new record, never a torn one. *)
let records t =
  let collected =
    List.concat_map
      (fun s -> Array.to_list (Array.sub s.ring 0 s.filled))
      (all_shards t)
  in
  List.sort (fun (a : record) b -> compare a.seq b.seq) collected

let size t = List.fold_left (fun acc s -> acc + s.filled) 0 (all_shards t)

let recent ?(limit = 64) t =
  let newest_first = List.sort (fun (a : record) b -> compare b.seq a.seq) (records t) in
  Tl_util.Prelude.list_take (max 0 limit) newest_first

let top_slow ?(k = 10) t =
  let by_latency (a : record) b =
    match compare b.latency_ns a.latency_ns with 0 -> compare a.seq b.seq | c -> c
  in
  Tl_util.Prelude.list_take (max 0 k) (List.sort by_latency (records t))

(* Confidence view: records the drift monitor sampled, worst measured
   relative error first.  A clamped record is maximally untrustworthy, so
   clamps rank above any finite error. *)
let top_uncertain ?(k = 10) t =
  let confidence_rank (r : record) = if r.clamped then Float.infinity else r.rel_error in
  let sampled =
    List.filter (fun (r : record) -> r.clamped || not (Float.is_nan r.rel_error)) (records t)
  in
  let by_error (a : record) b =
    match compare (confidence_rank b) (confidence_rank a) with
    | 0 -> compare a.seq b.seq
    | c -> c
  in
  Tl_util.Prelude.list_take (max 0 k) (List.sort by_error sampled)

let reset t =
  List.iter
    (fun s ->
      s.filled <- 0;
      s.next <- 0)
    (all_shards t)

(* --- latency histogram + JSONL ------------------------------------------ *)

(* The held records as a [Metrics.hist_snapshot], so [Metrics.quantile]
   applies — this is how the bench derives its p50/p90/p99 serving-latency
   rows without ad-hoc quantile math. *)
let latency_histogram t =
  let buckets = Array.make 62 0 in
  let observations = ref 0 and sum = ref 0 and vmin = ref max_int and vmax = ref min_int in
  List.iter
    (fun r ->
      Stdlib.incr observations;
      sum := !sum + r.latency_ns;
      if r.latency_ns < !vmin then vmin := r.latency_ns;
      if r.latency_ns > !vmax then vmax := r.latency_ns;
      let b = Metrics.bucket_of r.latency_ns in
      buckets.(b) <- buckets.(b) + 1)
    (records t);
  let h_buckets = ref [] in
  for i = Array.length buckets - 1 downto 0 do
    if buckets.(i) > 0 then h_buckets := (Metrics.bucket_floor i, buckets.(i)) :: !h_buckets
  done;
  {
    Metrics.h_observations = !observations;
    h_sum = !sum;
    h_min = (if !observations = 0 then 0 else !vmin);
    h_max = (if !observations = 0 then 0 else !vmax);
    h_buckets = !h_buckets;
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let record_json (r : record) =
  Printf.sprintf
    {|{"seq":%d,"key":%d,"scheme":"%s","estimate":%.6g,"latency_ns":%d,"plan_hit":%b,"feedback_hit":%b,"clamped":%b,"rel_error":%s}|}
    r.seq r.key_id (json_escape r.scheme) r.estimate r.latency_ns r.plan_hit r.feedback_hit
    r.clamped
    (if Float.is_nan r.rel_error then "null" else Printf.sprintf "%.6g" r.rel_error)

let dump_jsonl ?limit t oc =
  let rs = match limit with None -> records t | Some l -> List.rev (recent ~limit:l t) in
  List.iter
    (fun r ->
      output_string oc (record_json r);
      output_char oc '\n')
    rs;
  List.length rs
