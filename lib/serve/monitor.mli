(** The online accuracy-drift monitor.

    Samples a configurable fraction of served queries, replays each
    sample against an exact oracle, and keeps the relative errors
    ([|estimate - exact| / max 1 |exact|]) in a sliding window.  The
    window's p50/p90/p99 are published as [drift.rel_error_p*_ppm]
    gauges (and every sample feeds the [drift.rel_error_ppm] histogram);
    when the p90 crosses the threshold with enough samples in the window
    the alarm is raised — [/healthz] on the {!Tl_obs.Exporter} flips to
    503 and [drift.alarm] goes to 1.

    Thread-safe for sampling decisions and observations; the oracle
    replay itself runs on the caller (see {!consider}).  With a fixed
    seed and a fixed query sequence the sampling trace is deterministic,
    which the golden test in [test/test_serve.ml] relies on. *)

type t

val create :
  ?sample_rate:float ->
  ?window:int ->
  ?threshold:float ->
  ?min_samples:int ->
  ?seed:int ->
  oracle:(Tl_twig.Twig.Key.t -> float) ->
  unit ->
  t
(** A monitor sampling [sample_rate] (default 0.01) of considered
    queries, holding the last [window] (default 512) relative errors,
    alarming when the window p90 reaches [threshold] (default 1.0, i.e.
    100% relative error) with at least [min_samples] (default 16) errors
    in the window.  [seed] (default 42) drives the deterministic
    sampling rng.  Registers the [tl_drift_*] gauges immediately, so an
    idle engine's scrape already shows the drift surface. *)

val oracle_of_tree : Tl_tree.Data_tree.t -> Tl_twig.Twig.Key.t -> float
(** An exact oracle counting matches in [tree].  Owns a private
    {!Tl_twig.Match_count} context behind a lock (counting contexts are
    not domain-safe), so replays serialize — acceptable for a sampled
    slow path. *)

val oracle_of_adaptive : Tl_core.Adaptive.t -> Tl_twig.Twig.Key.t -> float
(** An exact oracle routed through {!Tl_core.Adaptive.observe_exact}:
    each replay is also recorded as feedback, closing the
    workload-driven refinement loop.  Single-domain by the adaptive
    layer's contract — the engine only invokes oracles from the batch
    caller domain, which satisfies it. *)

val consider : t -> Tl_twig.Twig.Key.t -> float option
(** Draw the sampling decision for one served query; on [Some exact] the
    oracle has been replayed (on the calling domain — call this outside
    any worker pool).  Returns [None] without touching the rng when
    [sample_rate <= 0], so an unmonitored engine pays one float
    compare. *)

val observe : t -> exact:float -> estimate:float -> float
(** Push one (exact, estimate) pair into the error window, update the
    quantile gauges and the alarm, and return the relative error. *)

val quantile : t -> float -> float
(** The [q]-quantile of the current error window ([nan] when empty). *)

val alarm : t -> bool
(** Whether the drift alarm is currently raised. *)

val sample_rate : t -> float

val threshold : t -> float

type stats = {
  samples : int;  (** observations ever made *)
  window_n : int;  (** errors currently in the window *)
  p50 : float;
  p90 : float;
  p99 : float;
  alarm : bool;
  alarm_transitions : int;  (** times the alarm has been raised *)
}

val stats : t -> stats

val pp_stats : stats -> string
(** One human-readable summary line. *)
