module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Summary_io = Tl_lattice.Summary_io
module Data_tree = Tl_tree.Data_tree
module Interner = Tl_util.Interner
module Estimator = Tl_core.Estimator
module Treelattice = Tl_core.Treelattice
module Adaptive = Tl_core.Adaptive
module Metrics = Tl_obs.Metrics

(* A bundle's label space: the backing document's interner, or a
   standalone name table for datasets loaded from a summary file alone.
   Either way label ids are dense and name-addressable, which is what
   query parsing and the by-name validation below need. *)
type labels = Doc of Data_tree.t | Names of Interner.t

type bundle = {
  b_name : string;
  b_epoch : int;
  b_summary : Summary.t;
  b_labels : labels;
  b_engine : Engine.t;
  b_adaptive : Adaptive.t option;
  b_audit : Audit.t;
  b_monitor : Monitor.t option;
}

(* Where a dataset came from, for [reload]. *)
type dataset = {
  d_name : string;
  mutable d_source : string option;  (* guarded by the registry mutex *)
  d_current : bundle Atomic.t;
}

type config = {
  scheme : Estimator.scheme;
  k : int;
  plan_capacity : int option;
  audit_capacity : int option;
  adaptive_capacity : int option;
  sample_rate : float;
  drift_threshold : float;
  drift_tree : Data_tree.t option;
}

let default_config =
  {
    scheme = Treelattice.default_scheme;
    k = 4;
    plan_capacity = None;
    audit_capacity = None;
    adaptive_capacity = None;
    sample_rate = 0.0;
    drift_threshold = 1.0;
    drift_tree = None;
  }

type t = {
  cfg : config;
  mutex : Mutex.t;
  table : (string, dataset) Hashtbl.t;  (* guarded by [mutex] *)
  mutable order : string list;  (* installation order; guarded by [mutex] *)
  next_epoch : int Atomic.t;
  reload_alarm : bool Atomic.t;
}

let create ?(config = default_config) () =
  Metrics.describe "registry.datasets" "Datasets currently installed in the serving registry";
  Metrics.describe "registry.reloads_total" "Successful dataset swaps/reloads";
  Metrics.describe "registry.reload_failures_total" "Failed dataset loads or validations";
  Metrics.describe "registry.alarm" "Latching reload-failure alarm (1 = a reload has failed)";
  Metrics.set_gauge "registry.datasets" 0;
  Metrics.set_gauge "registry.alarm" 0;
  {
    cfg = config;
    mutex = Mutex.create ();
    table = Hashtbl.create 8;
    order = [];
    next_epoch = Atomic.make 1;
    reload_alarm = Atomic.make false;
  }

let config t = t.cfg

let alarm t = Atomic.get t.reload_alarm

let clear_alarm t =
  Atomic.set t.reload_alarm false;
  Metrics.set_gauge "registry.alarm" 0

let fail t msg =
  Metrics.incr "registry.reload_failures_total";
  Atomic.set t.reload_alarm true;
  Metrics.set_gauge "registry.alarm" 1;
  Tl_obs.Log.info (fun m -> m "registry: reload failed: %s" msg);
  Error msg

(* --- bundle construction ------------------------------------------------- *)

let label_space = function Doc tree -> Data_tree.label_count tree | Names i -> Interner.size i

let name_of_label labels l =
  match labels with Doc tree -> Data_tree.label_name tree l | Names i -> Interner.name i l

(* A summary whose twigs reference label ids outside the bundle's label
   space was built against a different interner; serving it would return
   selectivities of arbitrary other tags.  Rejected here, before any
   bundle is built. *)
let validate_labels ~labels summary =
  let space = label_space labels in
  let bad = ref (-1) in
  let rec walk (tw : Twig.t) =
    if tw.Twig.label < 0 || tw.Twig.label >= space then bad := tw.Twig.label;
    List.iter walk tw.Twig.children
  in
  Summary.fold (fun twig _ () -> walk twig) summary ();
  if !bad >= 0 then
    Error
      (Printf.sprintf
         "summary label id %d is outside the dataset's label space (%d label(s)): summary and \
          document interners do not match"
         !bad space)
  else Ok ()

let make_monitor cfg ~labels ~adaptive =
  if cfg.sample_rate <= 0.0 then None
  else
    let monitor oracle =
      Some (Monitor.create ~sample_rate:cfg.sample_rate ~threshold:cfg.drift_threshold ~oracle ())
    in
    match cfg.drift_tree with
    | Some drift_tree ->
      (* Twig labels are interned per document: remap by tag name into the
         drift document before counting there (a tag it lacks interns
         fresh and counts zero — the right answer). *)
      let count = Monitor.oracle_of_tree drift_tree in
      monitor (fun key ->
          let remap l = Data_tree.intern_label drift_tree (name_of_label labels l) in
          let twig = Twig.canonicalize (Twig.map_labels remap (Twig.Key.twig key)) in
          count (Twig.key twig))
    | None -> (
      (* Without a drift document the oracle replays against the dataset's
         own document through the adaptive layer, so each sample also
         feeds the workload-refinement loop.  Summary-only datasets have
         no exact oracle at all. *)
      match adaptive with Some a -> monitor (Monitor.oracle_of_adaptive a) | None -> None)

let build_bundle t ~name ~epoch ~labels summary =
  match validate_labels ~labels summary with
  | Error _ as e -> e
  | Ok () ->
    let cfg = t.cfg in
    let engine = Engine.create ~scheme:cfg.scheme ?plan_capacity:cfg.plan_capacity ~epoch summary in
    let adaptive =
      match labels with
      | Doc tree ->
        Some (Adaptive.create ?capacity:cfg.adaptive_capacity (Treelattice.of_summary tree summary))
      | Names _ -> None
    in
    Ok
      {
        b_name = name;
        b_epoch = epoch;
        b_summary = summary;
        b_labels = labels;
        b_engine = engine;
        b_adaptive = adaptive;
        b_audit = Audit.create ?capacity:cfg.audit_capacity ();
        b_monitor = make_monitor cfg ~labels ~adaptive;
      }

(* --- install / swap ------------------------------------------------------ *)

let epoch_gauge name epoch = Metrics.set_gauge ("registry.epoch." ^ name) epoch

let install t ~name ?source ~labels summary =
  (* The epoch is drawn before the (possibly slow) bundle build; racing
     installs for the same dataset thus resolve by epoch order below —
     the bundle built later in program order can never be displaced by a
     straggler holding an older epoch. *)
  let epoch = Atomic.fetch_and_add t.next_epoch 1 in
  match build_bundle t ~name ~epoch ~labels summary with
  | Error _ as e -> e
  | Ok bundle ->
    Mutex.lock t.mutex;
    let ds, fresh =
      match Hashtbl.find_opt t.table name with
      | Some ds -> (ds, false)
      | None ->
        let ds = { d_name = name; d_source = None; d_current = Atomic.make bundle } in
        Hashtbl.replace t.table name ds;
        t.order <- t.order @ [ name ];
        (ds, true)
    in
    if (not fresh) && (Atomic.get ds.d_current).b_epoch < epoch then Atomic.set ds.d_current bundle;
    (match source with Some s -> ds.d_source <- Some s | None -> ());
    let current = Atomic.get ds.d_current in
    let n_datasets = Hashtbl.length t.table in
    Mutex.unlock t.mutex;
    if not fresh then Metrics.incr "registry.reloads_total";
    Metrics.set_gauge "registry.datasets" n_datasets;
    epoch_gauge name current.b_epoch;
    Tl_obs.Log.debug (fun m ->
        m "registry: %s %s at epoch %d (%d entries)"
          (if fresh then "installed" else "swapped")
          name current.b_epoch (Summary.entries current.b_summary));
    Ok current

let find t name =
  Mutex.lock t.mutex;
  let ds = Hashtbl.find_opt t.table name in
  Mutex.unlock t.mutex;
  Option.map (fun ds -> Atomic.get ds.d_current) ds

let dataset_names t =
  Mutex.lock t.mutex;
  let order = t.order in
  Mutex.unlock t.mutex;
  order

let list t = List.filter_map (find t) (dataset_names t)

let default t = match dataset_names t with [] -> None | name :: _ -> find t name

let install_document ?pool t ~name ?source tree =
  match Summary.build ?pool ~k:t.cfg.k tree with
  | exception Invalid_argument msg -> fail t msg
  | summary -> install t ~name ?source ~labels:(Doc tree) summary

let install_summary t ~name ?source ~names summary =
  let interner = Interner.create () in
  Array.iter (fun n -> ignore (Interner.intern interner n)) names;
  match install t ~name ?source ~labels:(Names interner) summary with
  | Error msg -> fail t msg
  | Ok _ as ok -> ok

let swap t name summary =
  match find t name with
  | None -> fail t (Printf.sprintf "unknown dataset %S" name)
  | Some cur -> (
    match install t ~name ~labels:cur.b_labels summary with
    | Error msg -> fail t msg
    | Ok _ as ok -> ok)

(* --- file loading -------------------------------------------------------- *)

let load t name path =
  if Filename.check_suffix path ".xml" then
    match Data_tree.of_xml (Tl_xml.Xml_dom.parse_file path) with
    | exception Sys_error msg -> fail t msg
    | exception e -> fail t (Printf.sprintf "%s: %s" path (Printexc.to_string e))
    | tree -> install_document t ~name ~source:path tree
  else
    let target = find t name in
    let result =
      match target with
      | Some { b_labels = Doc tree; _ } ->
        (* The satellite label-mismatch guard: a summary routed to a
           document-backed dataset is re-keyed by tag name into the
           document's interner, and a name the document lacks proves the
           summary was not built from (a relabeling of) this document. *)
        let intern tag =
          match Data_tree.label_of_string tree tag with
          | Some l -> l
          | None ->
            raise
              (Summary_io.Format_error
                 (Printf.sprintf "summary label %S does not occur in dataset %S's document" tag name))
        in
        (match Summary_io.load_file ~intern path with
        | exception Summary_io.Format_error msg -> fail t (Printf.sprintf "%s: %s" path msg)
        | exception Sys_error msg -> fail t msg
        | summary, _names -> install t ~name ~source:path ~labels:(Doc tree) summary)
      | Some { b_labels = Names _; _ } | None -> (
        match Summary_io.load_file path with
        | exception Summary_io.Format_error msg -> fail t (Printf.sprintf "%s: %s" path msg)
        | exception Sys_error msg -> fail t msg
        | summary, names -> install_summary t ~name ~source:path ~names summary)
    in
    (match result with Error _ -> () | Ok _ -> ());
    result

let reload t name =
  let source =
    Mutex.lock t.mutex;
    let s = Option.bind (Hashtbl.find_opt t.table name) (fun ds -> ds.d_source) in
    Mutex.unlock t.mutex;
    s
  in
  match source with
  | None -> fail t (Printf.sprintf "dataset %S has no recorded source to reload from" name)
  | Some path -> load t name path

let reload_all t =
  List.filter_map
    (fun name ->
      let has_source =
        Mutex.lock t.mutex;
        let s = Option.bind (Hashtbl.find_opt t.table name) (fun ds -> ds.d_source) in
        Mutex.unlock t.mutex;
        Option.is_some s
      in
      if has_source then Some (name, reload t name) else None)
    (dataset_names t)

(* --- bundle accessors ---------------------------------------------------- *)

let name b = b.b_name

let epoch b = b.b_epoch

let summary b = b.b_summary

let engine b = b.b_engine

let audit b = b.b_audit

let monitor b = b.b_monitor

let adaptive b = b.b_adaptive

let tree b = match b.b_labels with Doc tree -> Some tree | Names _ -> None

let label_names b =
  match b.b_labels with Doc tree -> Data_tree.label_names tree | Names i -> Interner.names i

(* --- query parsing ------------------------------------------------------- *)

let intern_of b =
  match b.b_labels with
  | Doc tree -> fun tag -> Some (Data_tree.intern_label tree tag)
  | Names i -> fun tag -> Some (Interner.intern i tag)

(* Anchored-XPath scaling, as [Treelattice.estimate_xpath]: only matches
   rooted at THE document root count, assuming matches spread uniformly
   over root-labeled nodes.  A summary-only bundle has no document shape,
   so it scales by the root tag's own level-1 occurrence count and cannot
   check which tag the root is. *)
let anchored_scale b (twig : Twig.t) estimate =
  match b.b_labels with
  | Doc tree ->
    let root_label = Data_tree.label tree (Data_tree.root tree) in
    if twig.Twig.label <> root_label then 0.0
    else
      let occurrences = Array.length (Data_tree.nodes_with_label tree root_label) in
      estimate /. float_of_int (max 1 occurrences)
  | Names _ ->
    let occurrences =
      match Summary.find b.b_summary (Twig.leaf twig.Twig.label) with Some c -> c | None -> 0
    in
    estimate /. float_of_int (max 1 occurrences)

let parse_query b line =
  let intern = intern_of b in
  let from_twig () =
    Result.map (fun twig -> (twig, fun e -> e)) (Tl_twig.Twig_parse.parse_twig ~intern line)
  in
  let from_xpath () =
    match Tl_twig.Xpath.parse line with
    | Error _ as e -> e
    | Ok xp ->
      Result.map
        (fun twig ->
          (twig, if xp.Tl_twig.Xpath.anchored then anchored_scale b twig else fun e -> e))
        (Tl_twig.Xpath.to_twig ~intern xp)
  in
  let first, second =
    if String.length line > 0 && line.[0] = '/' then (from_xpath, from_twig)
    else (from_twig, from_xpath)
  in
  (* When both syntaxes reject the line, diagnose with the parser the line
     looks like it was written for. *)
  match first () with
  | Ok parsed -> Ok parsed
  | Error msg -> ( match second () with Ok parsed -> Ok parsed | Error _ -> Error msg)

(* --- serving ------------------------------------------------------------- *)

let batch ?pool b twigs =
  let extra = Option.map Adaptive.lookup b.b_adaptive in
  let results = Engine.batch ?pool ?extra ~audit:b.b_audit ?monitor:b.b_monitor b.b_engine twigs in
  Metrics.add ("serve.queries." ^ b.b_name) (Array.length twigs);
  Metrics.incr ("serve.batches." ^ b.b_name);
  results

(* --- /datasets ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let datasets_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema_version\": 1, \"reload_alarm\": %b, \"datasets\": [" (alarm t));
  List.iteri
    (fun i b ->
      if i > 0 then Buffer.add_string buf ", ";
      let drift_alarm = match b.b_monitor with Some m -> Monitor.alarm m | None -> false in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\": \"%s\", \"epoch\": %d, \"entries\": %d, \"k\": %d, \"kind\": \"%s\", \
            \"alarm\": %b}"
           (json_escape b.b_name) b.b_epoch (Summary.entries b.b_summary) (Summary.k b.b_summary)
           (match b.b_labels with Doc _ -> "document" | Names _ -> "summary")
           drift_alarm))
    (list t);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
