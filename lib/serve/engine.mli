(** The batched estimation engine — the serving front of the library.

    An engine owns a {!Tl_core.Plan_cache} over one summary and answers
    query batches: dedupe on interned canonical keys, compile-or-reuse a
    plan per distinct query, evaluate across a {!Tl_util.Pool} with
    cost-aware chunking, scatter back in input order.  Results are
    {e bit-identical} to calling {!Tl_core.Estimator.estimate} per query
    — warm or cold, sequential or parallel, deduped or not — with one
    deliberate exception: a non-finite per-query result (possible only
    when an [?extra] feedback source injects nan/infinity or overflows a
    product) is clamped to [0.0] and counted under the
    [tl_estimates_nonfinite] metric, so the serving surface never leaks
    nan or infinity to a client.

    Thread safety: one engine may serve many domains concurrently (the
    plan cache is sharded for exactly that), and the serving stack is
    safe by default end to end — {!Tl_core.Adaptive} locks internally,
    so [batch ~pool ~extra:(Tl_core.Adaptive.lookup a)] composes without
    caller-side synchronization.  A hand-written [?extra] source is
    called from every evaluating domain and must itself be domain-safe
    (a pure function, or a lock- or atomic-guarded structure); the
    differential fuzz harness and the stress tests in
    [test/test_serve.ml] exercise both shapes. *)

type t

val create :
  ?scheme:Tl_core.Estimator.scheme -> ?plan_capacity:int -> ?epoch:int -> Tl_lattice.Summary.t -> t
(** An engine estimating with [scheme] by default
    ({!Tl_core.Treelattice.default_scheme}) and caching up to
    [plan_capacity] compiled plans (see {!Tl_core.Plan_cache.create}).
    [epoch] (default 0) stamps the engine with the serving epoch of its
    summary — see {!Registry} for the lifecycle.  Both the engine and its
    plan cache carry the epoch, and every evaluation asserts (in debug
    builds) that the two still agree and that the served plan was compiled
    against this engine's summary: a plan can never be evaluated under a
    summary it was not built for. *)

val of_treelattice :
  ?scheme:Tl_core.Estimator.scheme -> ?plan_capacity:int -> ?epoch:int -> Tl_core.Treelattice.t -> t

val scheme : t -> Tl_core.Estimator.scheme

val epoch : t -> int
(** The serving epoch this engine was created for (0 for standalone
    engines built outside a {!Registry}). *)

val summary : t -> Tl_lattice.Summary.t

val estimate :
  ?scheme:Tl_core.Estimator.scheme ->
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  ?audit:Audit.t ->
  t ->
  Tl_twig.Twig.t ->
  float
(** One query through the plan cache: the per-call path for callers that
    do not batch but still repeat queries ({!Tl_harness.Experiments} runs
    every figure through this).  With [?audit], the query additionally
    leaves an {!Audit} record (key id, scheme, estimate, latency,
    plan-cache hit, feedback hit, clamp flag); without it the evaluation
    path is exactly the uninstrumented one. *)

val estimate_key :
  ?scheme:Tl_core.Estimator.scheme ->
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  ?audit:Audit.t ->
  t ->
  Tl_twig.Twig.Key.t ->
  float
(** {!estimate} for an already-interned canonical key. *)

val batch :
  ?pool:Tl_util.Pool.t ->
  ?scheme:Tl_core.Estimator.scheme ->
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  ?audit:Audit.t ->
  ?monitor:Monitor.t ->
  t ->
  Tl_twig.Twig.t array ->
  float array
(** Estimates in input order.  Distinct queries (after canonicalization)
    are evaluated once each; with a [pool], distinct queries spread across
    its domains, chunked by a per-query size hint so one deep twig does
    not serialize the tail of a skewed batch.

    With [?audit], every distinct evaluation leaves an audit record (from
    whichever domain ran it — recording is lock-free).  With [?monitor],
    the drift monitor draws its sampling decisions and replays the exact
    oracle on the {e caller} domain before the parallel phase, and folds
    the observations in afterwards, also on the caller — so a non-domain-
    safe oracle ({!Monitor.oracle_of_tree}, {!Monitor.oracle_of_adaptive})
    is safe here, and the monitor's window is deterministic for a fixed
    seed and query sequence regardless of the pool. *)

val batch_keys :
  ?pool:Tl_util.Pool.t ->
  ?scheme:Tl_core.Estimator.scheme ->
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  ?audit:Audit.t ->
  ?monitor:Monitor.t ->
  t ->
  Tl_twig.Twig.Key.t array ->
  float array

val batch_values :
  ?pool:Tl_util.Pool.t ->
  ?scheme:Tl_core.Estimator.scheme ->
  ?audit:Audit.t ->
  ?monitor:Monitor.t ->
  t ->
  Tl_values.Value_summary.t ->
  Tl_values.Value_query.t array ->
  float array
(** Value-predicate queries: structural estimates through the plan cache
    (deduped on the {e stripped} twig, so queries differing only in
    predicates share one plan), multiplied by the value-summary
    probabilities.  Bit-identical to {!Tl_values.Value_estimator.estimate}
    per query against the same summaries. *)

val stats : t -> Tl_core.Plan_cache.stats
(** The underlying plan-cache counters (see {!Tl_core.Plan_cache.stats}). *)
