module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Plan_cache = Tl_core.Plan_cache
module Pool = Tl_util.Pool
module Metrics = Tl_obs.Metrics

type t = { scheme : Estimator.scheme; epoch : int; cache : Plan_cache.t }

let create ?(scheme = Tl_core.Treelattice.default_scheme) ?plan_capacity ?(epoch = 0) summary =
  { scheme; epoch; cache = Plan_cache.create ?capacity:plan_capacity ~epoch summary }

let of_treelattice ?scheme ?plan_capacity ?epoch tl =
  create ?scheme ?plan_capacity ?epoch (Tl_core.Treelattice.summary tl)

let scheme t = t.scheme

let epoch t = t.epoch

let summary t = Plan_cache.summary t.cache

let stats t = Plan_cache.stats t.cache

(* An estimate is a count: always finite and >= 0.  A division-by-zero
   inside a decomposition is short-circuited by the estimator itself, but
   an [?extra] feedback source is caller code and can inject nan/infinity
   (or a huge count that overflows a product).  The serving layer is the
   boundary clients trust, so it clamps instead of leaking: non-finite
   results become 0.0 and are counted under [estimates.nonfinite]
   (Prometheus [tl_estimates_nonfinite]).  Metrics shards are per-domain,
   so clamping inside a pooled batch is race-free. *)
let sanitize v =
  if Float.is_finite v then v
  else begin
    Metrics.incr "estimates.nonfinite";
    0.0
  end

(* The audited evaluation path.  It exists alongside the bare path (not
   instead of it) so an engine without an audit log runs byte-for-byte
   the code it ran before observability landed — the <= 5% overhead
   budget is spent only when someone is listening.  [exact] is the drift
   monitor's replayed truth for this query, when it sampled it. *)
let eval_audited ~scheme ?extra ?exact t audit key =
  let t0 = Tl_obs.Clock.now_ns () in
  assert (Plan_cache.epoch t.cache = t.epoch);
  let plan, plan_hit = Plan_cache.plan_key_hit t.cache scheme key in
  let raw, feedback_hit = Estimator.Plan.eval_flagged ?extra plan in
  let clamped = not (Float.is_finite raw) in
  let v =
    if clamped then begin
      Metrics.incr "estimates.nonfinite";
      0.0
    end
    else raw
  in
  let latency_ns = Tl_obs.Clock.now_ns () - t0 in
  let rel_error =
    match exact with
    | None -> Float.nan
    | Some exact -> Float.abs (v -. exact) /. Float.max 1.0 (Float.abs exact)
  in
  Audit.record audit ~key_id:(Twig.Key.id key)
    ~scheme:(Estimator.scheme_name scheme) ~estimate:v ~latency_ns ~plan_hit ~feedback_hit
    ~clamped ~rel_error;
  v

let estimate_key ?scheme ?extra ?audit t key =
  let scheme = Option.value scheme ~default:t.scheme in
  assert (Plan_cache.epoch t.cache = t.epoch);
  match audit with
  | None -> sanitize (Estimator.Plan.eval ?extra (Plan_cache.plan_key t.cache scheme key))
  | Some audit -> eval_audited ~scheme ?extra t audit key

let estimate ?scheme ?extra ?audit t twig =
  estimate_key ?scheme ?extra ?audit t (Twig.key (Twig.canonicalize twig))

(* Per-unique-query work for the pool's cost-aware chunking: decomposition
   work grows superlinearly with twig size, and a batch that mixes a few
   deep twigs into a sea of small ones is exactly the skew the hint is
   for.  Quadratic is a deliberate overestimate — too coarse only costs a
   few extra chunk boundaries. *)
let eval_cost key =
  let s = Twig.Key.size key in
  s * s

(* Below this many distinct queries a batch evaluates on the caller: a
   warm evaluation is nanoseconds per query, so the pool's wake/rendezvous
   overhead dwarfs a tiny batch — the common shape of one TCP client
   flushing a handful of lines.  Kept low so multi-domain stress tests
   (which use ~a dozen distinct queries) still exercise the pooled path. *)
let eval_parallel_cutoff = 8

let batch_keys ?pool ?scheme ?extra ?audit ?monitor t keys =
  let scheme = Option.value scheme ~default:t.scheme in
  let n = Array.length keys in
  (* Serving batches repeat queries; evaluate each distinct key once and
     scatter.  Dedup keys on interned ids — O(n) int hashing. *)
  let slot_of = Array.make n 0 in
  let index_of : (int, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let rev_uniques = ref [] in
  let n_uniques = ref 0 in
  for i = 0 to n - 1 do
    let id = Twig.Key.id keys.(i) in
    match Hashtbl.find_opt index_of id with
    | Some u -> slot_of.(i) <- u
    | None ->
      let u = !n_uniques in
      Hashtbl.replace index_of id u;
      rev_uniques := keys.(i) :: !rev_uniques;
      incr n_uniques;
      slot_of.(i) <- u
  done;
  let uniques = Array.of_list (List.rev !rev_uniques) in
  (* Drift sampling happens here, on the caller domain, before the
     parallel evaluation: [Monitor.consider] replays the exact oracle,
     and neither Match_count contexts nor the adaptive layer are
     domain-safe.  Workers only read the resulting array. *)
  let exacts =
    match monitor with
    | None -> [||]
    | Some m -> Array.map (fun key -> Monitor.consider m key) uniques
  in
  let unique_results =
    match audit with
    | None ->
      (* No audit log: this is the pre-observability path, unchanged. *)
      let eval key = estimate_key ~scheme ?extra t key in
      (match pool with
      | Some pool when Pool.domains pool > 1 ->
        Pool.parallel_chunked_map pool ~cutoff:eval_parallel_cutoff ~cost:eval_cost
          ~init:(fun () -> ()) (fun () -> eval) uniques
      | _ -> Array.map eval uniques)
    | Some audit ->
      let indexed = Array.mapi (fun u key -> (u, key)) uniques in
      let eval (u, key) =
        let exact = if u < Array.length exacts then exacts.(u) else None in
        eval_audited ~scheme ?extra ?exact t audit key
      in
      (match pool with
      | Some pool when Pool.domains pool > 1 ->
        Pool.parallel_chunked_map pool ~cutoff:eval_parallel_cutoff
          ~cost:(fun (_, key) -> eval_cost key)
          ~init:(fun () -> ())
          (fun () -> eval)
          indexed
      | _ -> Array.map eval indexed)
  in
  (* Monitor observations run after the batch, on the caller domain, in
     unique order: window contents, gauges, and the alarm are then
     deterministic for a fixed seed and query sequence even when the
     evaluation itself ran on a pool. *)
  (match monitor with
  | None -> ()
  | Some m ->
    Array.iteri
      (fun u exact ->
        match exact with
        | None -> ()
        | Some exact -> ignore (Monitor.observe m ~exact ~estimate:unique_results.(u)))
      exacts);
  Array.map (fun u -> unique_results.(u)) slot_of

let batch ?pool ?scheme ?extra ?audit ?monitor t twigs =
  batch_keys ?pool ?scheme ?extra ?audit ?monitor t
    (Array.map (fun tw -> Twig.key (Twig.canonicalize tw)) twigs)

let batch_values ?pool ?scheme ?audit ?monitor t values queries =
  let queries = Array.map Tl_values.Value_query.canonicalize queries in
  let keys =
    Array.map
      (fun q -> Twig.key (Twig.canonicalize (Tl_values.Value_query.strip q)))
      queries
  in
  let structural = batch_keys ?pool ?scheme ?audit ?monitor t keys in
  Array.mapi
    (fun i q ->
      (* Same composition as [Value_estimator.estimate]: structural zeros
         short-circuit, then predicate probabilities fold in canonical
         preorder — the float is bit-identical to the per-call path. *)
      let s = structural.(i) in
      if s = 0.0 then 0.0
      else
        List.fold_left
          (fun acc (label, value) ->
            acc *. Tl_values.Value_summary.value_probability values label value)
          s
          (Tl_values.Value_query.predicates q))
    queries
