module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Plan_cache = Tl_core.Plan_cache
module Pool = Tl_util.Pool
module Metrics = Tl_obs.Metrics

type t = { scheme : Estimator.scheme; cache : Plan_cache.t }

let create ?(scheme = Tl_core.Treelattice.default_scheme) ?plan_capacity summary =
  { scheme; cache = Plan_cache.create ?capacity:plan_capacity summary }

let of_treelattice ?scheme ?plan_capacity tl =
  create ?scheme ?plan_capacity (Tl_core.Treelattice.summary tl)

let scheme t = t.scheme

let summary t = Plan_cache.summary t.cache

let stats t = Plan_cache.stats t.cache

(* An estimate is a count: always finite and >= 0.  A division-by-zero
   inside a decomposition is short-circuited by the estimator itself, but
   an [?extra] feedback source is caller code and can inject nan/infinity
   (or a huge count that overflows a product).  The serving layer is the
   boundary clients trust, so it clamps instead of leaking: non-finite
   results become 0.0 and are counted under [estimates.nonfinite]
   (Prometheus [tl_estimates_nonfinite]).  Metrics shards are per-domain,
   so clamping inside a pooled batch is race-free. *)
let sanitize v =
  if Float.is_finite v then v
  else begin
    Metrics.incr "estimates.nonfinite";
    0.0
  end

let estimate_key ?scheme ?extra t key =
  let scheme = Option.value scheme ~default:t.scheme in
  sanitize (Estimator.Plan.eval ?extra (Plan_cache.plan_key t.cache scheme key))

let estimate ?scheme ?extra t twig =
  estimate_key ?scheme ?extra t (Twig.key (Twig.canonicalize twig))

(* Per-unique-query work for the pool's cost-aware chunking: decomposition
   work grows superlinearly with twig size, and a batch that mixes a few
   deep twigs into a sea of small ones is exactly the skew the hint is
   for.  Quadratic is a deliberate overestimate — too coarse only costs a
   few extra chunk boundaries. *)
let eval_cost key =
  let s = Twig.Key.size key in
  s * s

let batch_keys ?pool ?scheme ?extra t keys =
  let scheme = Option.value scheme ~default:t.scheme in
  let n = Array.length keys in
  (* Serving batches repeat queries; evaluate each distinct key once and
     scatter.  Dedup keys on interned ids — O(n) int hashing. *)
  let slot_of = Array.make n 0 in
  let index_of : (int, int) Hashtbl.t = Hashtbl.create (2 * n) in
  let rev_uniques = ref [] in
  let n_uniques = ref 0 in
  for i = 0 to n - 1 do
    let id = Twig.Key.id keys.(i) in
    match Hashtbl.find_opt index_of id with
    | Some u -> slot_of.(i) <- u
    | None ->
      let u = !n_uniques in
      Hashtbl.replace index_of id u;
      rev_uniques := keys.(i) :: !rev_uniques;
      incr n_uniques;
      slot_of.(i) <- u
  done;
  let uniques = Array.of_list (List.rev !rev_uniques) in
  let eval key = estimate_key ~scheme ?extra t key in
  let unique_results =
    match pool with
    | Some pool when Pool.domains pool > 1 ->
      Pool.parallel_chunked_map pool ~cost:eval_cost ~init:(fun () -> ()) (fun () -> eval) uniques
    | _ -> Array.map eval uniques
  in
  Array.map (fun u -> unique_results.(u)) slot_of

let batch ?pool ?scheme ?extra t twigs =
  batch_keys ?pool ?scheme ?extra t (Array.map (fun tw -> Twig.key (Twig.canonicalize tw)) twigs)

let batch_values ?pool ?scheme t values queries =
  let queries = Array.map Tl_values.Value_query.canonicalize queries in
  let keys =
    Array.map
      (fun q -> Twig.key (Twig.canonicalize (Tl_values.Value_query.strip q)))
      queries
  in
  let structural = batch_keys ?pool ?scheme t keys in
  Array.mapi
    (fun i q ->
      (* Same composition as [Value_estimator.estimate]: structural zeros
         short-circuit, then predicate probabilities fold in canonical
         preorder — the float is bit-identical to the per-call path. *)
      let s = structural.(i) in
      if s = 0.0 then 0.0
      else
        List.fold_left
          (fun acc (label, value) ->
            acc *. Tl_values.Value_summary.value_probability values label value)
          s
          (Tl_values.Value_query.predicates q))
    queries
