(* The TCP query front-end.

   One acceptor thread, a bounded queue of accepted connections, and a
   fixed set of worker threads draining it.  Threads here are system
   threads, not domains: a connection spends its life blocked on socket
   I/O, which releases the runtime lock, so a small thread pool overlaps
   many slow clients while CPU-parallel evaluation stays where it already
   lives — the domain pool passed to [Registry.batch], whose maps
   serialize internally and are therefore safe to issue from any of these
   workers concurrently with the CLI's own stdin loop.

   Robustness is admission-shaped rather than buffer-shaped: when the
   queue is full the acceptor answers [busy] and closes instead of
   queueing without bound, so memory under overload is
   [workers + queue_capacity] connections, a constant chosen at startup.
   Slow clients are bounded twice — per-socket read/write timeouts (the
   [Exporter] EINTR/EAGAIN discipline) and a per-batch deadline that cuts
   a connection trickling one batch forever. *)

module Metrics = Tl_obs.Metrics
module Clock = Tl_obs.Clock
module Exporter = Tl_obs.Exporter
module Estimator = Tl_core.Estimator

type config = {
  host : string;
  port : int;
  workers : int;
  queue_capacity : int;
  socket_timeout : float;
  batch_deadline : float;
  json : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = 4;
    queue_capacity = 64;
    socket_timeout = 5.0;
    batch_deadline = 30.0;
    json = false;
  }

type t = {
  config : config;
  registry : Registry.t;
  pool : Tl_util.Pool.t option;
  default_name : string option;
  sock : Unix.file_descr;
  bound_port : int;
  (* Admission queue.  [active] is one slot per worker holding the fd it
     is currently serving; [stop] half-closes those so in-flight batches
     finish and respond instead of being cut mid-write.  Both structures
     are guarded by [qmutex]. *)
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : Unix.file_descr Queue.t;
  active : Unix.file_descr option array;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  n_connections : int Atomic.t;
  n_queries : int Atomic.t;
  n_batches : int Atomic.t;
  n_shed : int Atomic.t;
  n_active : int Atomic.t;
  mutable acceptor : Thread.t option;
  mutable worker_threads : Thread.t list;
}

type stats = { connections : int; queries : int; batches : int; shed : int }

let stats t =
  {
    connections = Atomic.get t.n_connections;
    queries = Atomic.get t.n_queries;
    batches = Atomic.get t.n_batches;
    shed = Atomic.get t.n_shed;
  }

let port t = t.bound_port

(* --- responses ------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One answered query line.  The estimate prints as %.17g so a client
   reading it back gets the bit-exact float the engine computed. *)
let render_ok ~json buf ~estimate ~epoch ~dataset ~scheme =
  if json then
    Buffer.add_string buf
      (Printf.sprintf "{\"estimate\":%.17g,\"epoch\":%d,\"dataset\":\"%s\",\"scheme\":\"%s\"}\n"
         estimate epoch (json_escape dataset) (json_escape scheme))
  else Buffer.add_string buf (Printf.sprintf "%.17g\t%d\t%s\t%s\n" estimate epoch dataset scheme)

let render_error ~json buf msg =
  if json then Buffer.add_string buf (Printf.sprintf "{\"error\":\"%s\"}\n" (json_escape msg))
  else Buffer.add_string buf (Printf.sprintf "error\t%s\n" msg)

let busy_line json = if json then "{\"busy\":true}\n" else "busy\toverloaded, retry later\n"

(* --- batch evaluation ------------------------------------------------------ *)

let default_name t =
  match t.default_name with
  | Some n -> Some n
  | None -> Option.map Registry.name (Registry.default t.registry)

(* Same routing rule as the stdin loop: a 'NAME:' prefix that names a
   registered dataset routes there; everything else — including prefixes
   that name nothing — is a bare query for the default dataset. *)
let route t line =
  match String.index_opt line ':' with
  | Some i when i > 0 && Option.is_some (Registry.find t.registry (String.sub line 0 i)) ->
    (Some (String.sub line 0 i), String.trim (String.sub line (i + 1) (String.length line - i - 1)))
  | _ -> (default_name t, line)

(* Serve one flushed batch: group lines by routed dataset, pin each
   group's bundle for the whole flush (a concurrent reload lands between
   flushes, never inside one — every response line carries the epoch it
   was actually served from), evaluate each group through the full
   serving stack, and render answers back in input order. *)
let serve_batch t lines =
  let t0 = Clock.now_ns () in
  let lines = Array.of_list lines in
  let n = Array.length lines in
  let groups : (string, (int * string) list ref) Hashtbl.t = Hashtbl.create 4 in
  let group_order = ref [] in
  let errors = Array.make n None in
  Array.iteri
    (fun idx line ->
      match route t line with
      | None, _ -> errors.(idx) <- Some "no dataset installed"
      | Some ds, query -> (
        match Hashtbl.find_opt groups ds with
        | Some cell -> cell := (idx, query) :: !cell
        | None ->
          Hashtbl.replace groups ds (ref [ (idx, query) ]);
          group_order := ds :: !group_order))
    lines;
  let buf = Buffer.create (64 * (n + 1)) in
  let oks : (int * (float * int * string * string)) list ref = ref [] in
  List.iter
    (fun ds ->
      let members = List.rev !(Hashtbl.find groups ds) in
      match Registry.find t.registry ds with
      | None -> List.iter (fun (idx, _) -> errors.(idx) <- Some ("unknown dataset " ^ ds)) members
      | Some bundle ->
        let epoch = Registry.epoch bundle in
        let scheme = Estimator.scheme_name (Engine.scheme (Registry.engine bundle)) in
        let parsed =
          Array.of_list
            (List.filter_map
               (fun (idx, query) ->
                 match Registry.parse_query bundle query with
                 | Ok p -> Some (idx, p)
                 | Error msg ->
                   errors.(idx) <- Some msg;
                   None)
               members)
        in
        if Array.length parsed > 0 then begin
          let estimates =
            Registry.batch ?pool:t.pool bundle (Array.map (fun (_, (twig, _)) -> twig) parsed)
          in
          Array.iteri
            (fun i (idx, (_, transform)) ->
              oks := (idx, (transform estimates.(i), epoch, ds, scheme)) :: !oks)
            parsed
        end)
    (List.rev !group_order);
  let ok_of = Array.make n None in
  List.iter (fun (idx, r) -> ok_of.(idx) <- Some r) !oks;
  for idx = 0 to n - 1 do
    match ok_of.(idx) with
    | Some (estimate, epoch, dataset, scheme) ->
      render_ok ~json:t.config.json buf ~estimate ~epoch ~dataset ~scheme
    | None ->
      render_error ~json:t.config.json buf
        (Option.value errors.(idx) ~default:"internal: unanswered line")
  done;
  Buffer.add_char buf '\n';
  Atomic.set t.n_queries (Atomic.get t.n_queries + n);
  Metrics.add "server.queries" n;
  ignore (Atomic.fetch_and_add t.n_batches 1);
  Metrics.incr "server.batches";
  Metrics.observe "server.request_ns" (Clock.elapsed_ns ~since:t0);
  Buffer.contents buf

(* --- connection handling --------------------------------------------------- *)

type read_result = Line of string | Eof | Abort | Deadline

type conn = { fd : Unix.file_descr; mutable rbuf : string; chunk : Bytes.t }

let deadline_exceeded t = function
  | None -> false
  | Some start -> Clock.elapsed_ns ~since:start > int_of_float (t.config.batch_deadline *. 1e9)

(* One line, bounded.  [EAGAIN] here means the receive timeout expired
   with no bytes: an idle client between batches is fine and keeps
   waiting, but one inside a batch is checked against the batch deadline,
   and a draining server treats the lull as end of input so the pending
   batch can be answered and the connection closed. *)
let rec next_line t conn ~batch_start =
  if deadline_exceeded t batch_start then Deadline
  else
    match String.index_opt conn.rbuf '\n' with
    | Some i ->
      let line = String.sub conn.rbuf 0 i in
      conn.rbuf <- String.sub conn.rbuf (i + 1) (String.length conn.rbuf - i - 1);
      Line (String.trim line)
    | None -> (
      match Unix.read conn.fd conn.chunk 0 (Bytes.length conn.chunk) with
      | 0 ->
        if conn.rbuf = "" then Eof
        else begin
          (* Final line without a trailing newline still counts. *)
          let line = String.trim conn.rbuf in
          conn.rbuf <- "";
          Line line
        end
      | n ->
        conn.rbuf <- conn.rbuf ^ Bytes.sub_string conn.chunk 0 n;
        next_line t conn ~batch_start
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_line t conn ~batch_start
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        if Atomic.get t.stopping then Eof else next_line t conn ~batch_start
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> Abort
      | exception Unix.Unix_error _ -> Abort)

let serve_conn t fd =
  let conn = { fd; rbuf = ""; chunk = Bytes.create 4096 } in
  let pending = ref [] in
  let batch_start = ref None in
  let flush_pending () =
    if !pending <> [] then begin
      let payload = serve_batch t (List.rev !pending) in
      pending := [];
      batch_start := None;
      Exporter.write_all fd payload
    end
    else begin
      batch_start := None;
      (* An empty flush still acknowledges: one blank line. *)
      Exporter.write_all fd "\n"
    end
  in
  let rec go () =
    match next_line t conn ~batch_start:!batch_start with
    | Line "" ->
      flush_pending ();
      go ()
    | Line line when line.[0] = '#' -> go ()
    | Line line ->
      if !pending = [] then batch_start := Some (Clock.now_ns ());
      pending := line :: !pending;
      go ()
    | Eof -> if !pending <> [] then flush_pending ()
    | Deadline ->
      let buf = Buffer.create 64 in
      render_error ~json:t.config.json buf
        (Printf.sprintf "batch deadline (%.1fs) exceeded" t.config.batch_deadline);
      Buffer.add_char buf '\n';
      Exporter.write_all fd (Buffer.contents buf)
    | Abort -> ()
  in
  (* [Exit] is [write_all] giving up on a gone or stalled client — the
     connection is dropped, the server is unaffected. *)
  try go () with Exit -> ()

(* --- threads --------------------------------------------------------------- *)

let set_queue_gauge t = Metrics.set_gauge "server.queue_depth" (Queue.length t.queue)

let close_quietly fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Shed one connection: best-effort busy line (a short send timeout so a
   full socket buffer cannot stall admission), then close. *)
let shed t fd =
  ignore (Atomic.fetch_and_add t.n_shed 1);
  Metrics.incr "server.shed_total";
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.2 with Unix.Unix_error _ -> ());
  (try Exporter.write_all fd (busy_line t.config.json) with Exit | Unix.Unix_error _ -> ());
  close_quietly fd

let worker_loop t wid =
  let rec loop () =
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not (Atomic.get t.stopping) do
      Condition.wait t.qcond t.qmutex
    done;
    match Queue.take_opt t.queue with
    | None ->
      (* Stopping and drained. *)
      Mutex.unlock t.qmutex
    | Some fd ->
      set_queue_gauge t;
      t.active.(wid) <- Some fd;
      Mutex.unlock t.qmutex;
      Metrics.set_gauge "server.active_connections" (1 + Atomic.fetch_and_add t.n_active 1);
      (try serve_conn t fd with Unix.Unix_error _ -> ());
      Metrics.set_gauge "server.active_connections" (Atomic.fetch_and_add t.n_active (-1) - 1);
      (* Clear the active slot and close under the lock so [stop] can
         never half-close an fd number the kernel has already reused. *)
      Mutex.lock t.qmutex;
      t.active.(wid) <- None;
      close_quietly fd;
      Mutex.unlock t.qmutex;
      loop ()
  in
  loop ()

let acceptor_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.accept ~cloexec:true t.sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> Atomic.set t.stopping true
    | fd, _ ->
      if Atomic.get t.stopping then close_quietly fd
      else begin
        ignore (Atomic.fetch_and_add t.n_connections 1);
        Metrics.incr "server.connections";
        (try
           Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.socket_timeout;
           Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.socket_timeout
         with Unix.Unix_error _ -> ());
        Mutex.lock t.qmutex;
        if Queue.length t.queue >= t.config.queue_capacity then begin
          Mutex.unlock t.qmutex;
          shed t fd
        end
        else begin
          Queue.add fd t.queue;
          set_queue_gauge t;
          Condition.signal t.qcond;
          Mutex.unlock t.qmutex
        end
      end
  done

(* --- lifecycle ------------------------------------------------------------- *)

let describe_metrics =
  lazy
    (Metrics.describe "server.connections" "TCP connections accepted by the query front-end";
     Metrics.describe "server.queries" "Queries answered over TCP (including error answers)";
     Metrics.describe "server.batches" "Query batches flushed over TCP";
     Metrics.describe "server.shed_total" "Connections shed by admission control";
     Metrics.describe "server.queue_depth" "Accepted connections waiting for a worker";
     Metrics.describe "server.active_connections" "Connections currently being served";
     Metrics.describe "server.request_ns" "Per-batch evaluation latency (ns)";
     (* Materialize the counter surface at zero so a scrape taken before
        the first connection (or the first shed) still exports every
        series a dashboard or alert rule may reference. *)
     Metrics.add "server.connections" 0;
     Metrics.add "server.queries" 0;
     Metrics.add "server.batches" 0;
     Metrics.add "server.shed_total" 0;
     Metrics.set_gauge "server.queue_depth" 0;
     Metrics.set_gauge "server.active_connections" 0)

let start ?(config = default_config) ?pool ?default registry =
  Lazy.force Exporter.ignore_sigpipe;
  Lazy.force describe_metrics;
  let config =
    {
      config with
      workers = max 1 config.workers;
      queue_capacity = max 1 config.queue_capacity;
      socket_timeout = Float.max 0.01 config.socket_timeout;
      batch_deadline = Float.max 0.01 config.batch_deadline;
    }
  in
  let addr = Unix.inet_addr_of_string config.host in
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (addr, config.port));
     Unix.listen sock (config.queue_capacity + config.workers)
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> config.port
  in
  let t =
    {
      config;
      registry;
      pool;
      default_name = default;
      sock;
      bound_port;
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      active = Array.make config.workers None;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      n_connections = Atomic.make 0;
      n_queries = Atomic.make 0;
      n_batches = Atomic.make 0;
      n_shed = Atomic.make 0;
      n_active = Atomic.make 0;
      acceptor = None;
      worker_threads = [];
    }
  in
  t.worker_threads <- List.init config.workers (fun wid -> Thread.create (worker_loop t) wid);
  t.acceptor <- Some (Thread.create acceptor_loop t);
  Metrics.set_gauge "server.port" bound_port;
  Tl_obs.Log.info (fun m -> m "server listening on %s:%d" config.host bound_port);
  t

(* A blocked [accept] is not reliably woken by closing its fd, so stop
   nudges the acceptor with a throwaway loopback connection (the same
   trick the exporter uses), then drains:

   1. queued-but-unstarted connections are busy-shed — they never got a
      worker, so [busy] is the honest answer;
   2. in-flight connections are half-closed on the receive side: the
      worker's next read sees end-of-input, flushes the pending batch on
      the bundle epoch it already pinned, writes the response, and exits.

   Only then are the threads joined, so stop returns with every accepted
   connection either answered or explicitly shed. *)
let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    (try
       let nudge = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect nudge (Unix.ADDR_INET (Unix.inet_addr_of_string t.config.host, t.bound_port))
        with Unix.Unix_error _ -> ());
       Unix.close nudge
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    t.acceptor <- None;
    let drained = ref [] in
    Mutex.lock t.qmutex;
    Queue.iter (fun fd -> drained := fd :: !drained) t.queue;
    Queue.clear t.queue;
    set_queue_gauge t;
    Array.iter
      (Option.iter (fun fd ->
           try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ()))
      t.active;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qmutex;
    List.iter (fun fd -> shed t fd) !drained;
    List.iter Thread.join t.worker_threads;
    t.worker_threads <- [];
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
