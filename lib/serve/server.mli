(** A loopback-bindable TCP query front-end with admission control.

    The server speaks the same newline-delimited protocol as the stdin
    serving loop: one [[NAME:]twig-or-xpath] query per line, a blank line
    flushes the pending batch, ['#'] lines are skipped.  Each flushed
    query answers with one line — tab-separated
    [ESTIMATE EPOCH DATASET SCHEME] (estimate printed with [%.17g] so it
    round-trips bit-exactly), or [error<TAB>message] for a line that does
    not parse — followed by one blank line terminating the batch, in
    input order.  With [config.json] each answer is instead a one-line
    JSON object ([{"estimate":..,"epoch":..,"dataset":..,"scheme":..}] or
    [{"error":..}]).

    Robustness is structural, not best-effort:

    - {b bounded admission}: one acceptor thread feeds a queue of at most
      [queue_capacity] waiting connections; when it is full the client
      gets a one-line [busy] response and a close instead of unbounded
      buffering, and [tl_server_shed_total] increments;
    - {b fixed worker pool}: [workers] system threads serve connections
      concurrently (I/O overlaps; CPU-parallel evaluation stays inside
      the shared {!Tl_util.Pool} passed to {!start}, whose maps serialize
      internally so worker threads need no extra coordination);
    - {b deadlines and timeouts}: every socket read and write is bounded
      by [socket_timeout] following the {!Tl_obs.Exporter} EINTR/EAGAIN
      discipline, and a batch that trickles in for longer than
      [batch_deadline] is answered with an error and cut;
    - {b graceful drain}: {!stop} stops accepting, busy-sheds the
      queued-but-unstarted connections, half-closes the receive side of
      every in-flight connection so its current batch finishes {e on the
      epoch it started with} and its response is written, then joins all
      threads.

    Hot reload keeps working mid-connection: each flush pins the routed
    dataset's current bundle for the whole batch, so a concurrent
    {!Registry.swap} is picked up between batches and every response line
    carries the epoch it was served from.

    Metrics: [tl_server_connections], [tl_server_queries_total],
    [tl_server_batches_total], [tl_server_shed_total],
    [tl_server_queue_depth] / [tl_server_active_connections] gauges, and
    the [tl_server_request_ns] per-batch latency histogram. *)

type config = {
  host : string;  (** bind address (default loopback) *)
  port : int;  (** 0 = ephemeral, read back with {!port} *)
  workers : int;  (** serving threads (clamped to [>= 1]) *)
  queue_capacity : int;  (** admission-queue bound (clamped to [>= 1]) *)
  socket_timeout : float;  (** per-socket read/write timeout, seconds *)
  batch_deadline : float;  (** max seconds one batch may take to arrive *)
  json : bool;  (** answer with JSON objects instead of tab-separated text *)
}

val default_config : config
(** Loopback, ephemeral port, 4 workers, queue of 64, 5 s socket timeout,
    30 s batch deadline, text protocol. *)

type t

val start :
  ?config:config -> ?pool:Tl_util.Pool.t -> ?default:string -> Registry.t -> t
(** Bind, spawn the acceptor and worker threads, and start serving
    queries against [registry].  Queries with a [NAME:] prefix naming a
    registered dataset route to it; everything else routes to [default]
    (when given) or the registry's first-installed dataset.  Raises
    [Unix.Unix_error] when the bind fails.  The optional [pool] is used
    for batch evaluation exactly as in {!Registry.batch}. *)

val port : t -> int
(** The actual bound port — useful with [port = 0]. *)

type stats = { connections : int; queries : int; batches : int; shed : int }

val stats : t -> stats
(** Live totals since {!start}: accepted connections, queries answered
    (including [error] answers), batches flushed, and connections shed by
    admission control.  The same totals back the [tl_server_*] metrics;
    this accessor exists so tests need not scrape. *)

val stop : t -> unit
(** Graceful drain as described above.  Blocks until every worker has
    finished its in-flight batch and exited.  Idempotent. *)
