(** The serving audit log: a lock-free ring buffer of per-query records.

    Every query served through an instrumented {!Engine} entry point
    leaves one record — canonical key id, scheme, returned estimate,
    latency, whether the plan cache hit, whether the feedback source
    answered, whether the non-finite clamp fired, and (when the drift
    {!Monitor} sampled the query) the measured relative error.

    Recording follows the {!Tl_obs.Metrics} sharding discipline: each
    domain writes into a private ring in domain-local storage (one DLS
    read, one atomic fetch-and-add for the admission sequence number, one
    array store — no locks), so audit instrumentation is safe and cheap
    inside a pooled batch evaluation.  The read-side views merge all
    shards and sort on the unique sequence numbers; the record multiset
    of a parallel batch equals the sequential one (modulo the
    nondeterministic sequence and latency fields) — asserted by
    [test/test_serve.ml].

    Each ring holds the last [capacity] records of its domain; older
    records are dropped (but still counted by {!total}).  Admissions are
    also published to {!Tl_obs.Metrics} as the [audit.records] counter
    and the [serve.latency_ns] histogram, so latency quantiles are
    scrapeable without touching the log itself. *)

type record = {
  seq : int;  (** global admission order; unique per log *)
  key_id : int;  (** {!Tl_twig.Twig.Key.id} of the canonical query *)
  scheme : string;  (** {!Tl_core.Estimator.scheme_name} *)
  estimate : float;  (** the value returned to the client (post-clamp) *)
  latency_ns : int;
  plan_hit : bool;  (** plan served from the cache (vs compiled) *)
  feedback_hit : bool;  (** the [?extra] source answered >= 1 lookup *)
  clamped : bool;  (** non-finite result clamped to 0.0 *)
  rel_error : float;  (** monitor-measured relative error; [nan] unless sampled *)
}

type t

val create : ?capacity:int -> unit -> t
(** An audit log holding up to [capacity] records {e per recording
    domain} (default 4096).  Raises [Invalid_argument] when
    [capacity < 1]. *)

val capacity : t -> int

val record :
  t ->
  key_id:int ->
  scheme:string ->
  estimate:float ->
  latency_ns:int ->
  plan_hit:bool ->
  feedback_hit:bool ->
  clamped:bool ->
  rel_error:float ->
  unit
(** Admit one record on the calling domain's shard.  Lock-free; safe from
    any domain, including pool workers mid-batch. *)

val total : t -> int
(** Records ever admitted (including those rings have since dropped). *)

val size : t -> int
(** Records currently held across all shards. *)

val records : t -> record list
(** All held records, merged across shards, oldest first (by [seq]).
    Call between batches for an exact snapshot; concurrent recording can
    only add or age out whole records, never tear one. *)

val recent : ?limit:int -> t -> record list
(** The newest [limit] (default 64) records, newest first. *)

val top_slow : ?k:int -> t -> record list
(** The [k] (default 10) slowest held records, slowest first. *)

val top_uncertain : ?k:int -> t -> record list
(** The [k] (default 10) worst-confidence held records: clamped records
    first (maximally untrustworthy), then monitor-sampled records by
    descending measured relative error.  Unsampled, unclamped records
    never appear. *)

val latency_histogram : t -> Tl_obs.Metrics.hist_snapshot
(** The held records' latencies as a log-bucket histogram snapshot, ready
    for {!Tl_obs.Metrics.quantile} — the bench's p50/p90/p99
    serving-latency rows come from exactly this. *)

val record_json : record -> string
(** One record as a single-line JSON object ([rel_error] is [null] when
    the monitor did not sample the query). *)

val dump_jsonl : ?limit:int -> t -> out_channel -> int
(** Write held records as JSON Lines, oldest first ([limit] restricts to
    the newest records); returns the number written. *)

val reset : t -> unit
(** Drop all held records on every shard ({!total} keeps counting). *)
