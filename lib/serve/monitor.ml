(* The accuracy-drift monitor.

   The decomposition framework trades exactness for speed; whether that
   trade is still sound on the live workload is only knowable by spending
   a little exactness: sample a configurable fraction of served queries,
   replay each sampled query against an exact oracle, and keep the
   relative errors in a sliding window.  When the window's p90 crosses
   the alarm threshold the summary has drifted from the data (or the
   workload has drifted into a correlated region the independence
   assumption mishandles) and it is time to rebuild or re-mine.

   All state — the rng driving sampling decisions, the error window, the
   alarm — lives behind one mutex, so a monitor can be shared by
   concurrent serving batches.  The expensive part (the exact replay)
   runs outside that mutex; [oracle_of_tree] serializes its own counting
   context internally.  Within one batch the engine draws sampling
   decisions on the caller domain in query order, so a fixed seed and a
   fixed query sequence give a fully deterministic trace — the golden
   test's lever. *)

module Twig = Tl_twig.Twig
module Metrics = Tl_obs.Metrics
module Log = Tl_obs.Log

type t = {
  sample_rate : float;
  threshold : float;
  min_samples : int;
  oracle : Twig.Key.t -> float;
  mutex : Mutex.t;
  rng : Tl_util.Xorshift.t;  (* guarded by [mutex] *)
  window : float array;  (* sliding window of relative errors, guarded *)
  mutable window_n : int;
  mutable window_next : int;
  mutable samples : int;
  mutable alarm : bool;
  mutable alarm_transitions : int;
}

let () =
  Metrics.describe "drift.sampled" "Served queries replayed against the exact oracle";
  Metrics.describe "drift.rel_error_ppm" "Distribution of sampled relative errors (parts per million)";
  Metrics.describe "drift.alarm" "1 while the drift alarm is raised";
  Metrics.describe "drift.alarm_transitions" "Times the drift alarm has been raised";
  Metrics.describe "drift.samples" "Sampled queries currently informing the drift window";
  Metrics.describe "drift.rel_error_p50_ppm" "Sliding-window p50 relative error (ppm)";
  Metrics.describe "drift.rel_error_p90_ppm" "Sliding-window p90 relative error (ppm)";
  Metrics.describe "drift.rel_error_p99_ppm" "Sliding-window p99 relative error (ppm)"

let create ?(sample_rate = 0.01) ?(window = 512) ?(threshold = 1.0) ?(min_samples = 16)
    ?(seed = 42) ~oracle () =
  if not (Float.is_finite sample_rate) || sample_rate < 0.0 || sample_rate > 1.0 then
    invalid_arg "Monitor.create: sample_rate must be in [0, 1]";
  if window < 1 then invalid_arg "Monitor.create: window must be >= 1";
  if not (threshold > 0.0) then invalid_arg "Monitor.create: threshold must be > 0";
  (* The gauges exist from creation, so a scrape of an idle engine already
     shows the drift surface (all zeros) rather than nothing. *)
  Metrics.set_gauge "drift.alarm" 0;
  Metrics.set_gauge "drift.samples" 0;
  Metrics.set_gauge "drift.rel_error_p50_ppm" 0;
  Metrics.set_gauge "drift.rel_error_p90_ppm" 0;
  Metrics.set_gauge "drift.rel_error_p99_ppm" 0;
  {
    sample_rate;
    threshold;
    min_samples = max 1 min_samples;
    oracle;
    mutex = Mutex.create ();
    rng = Tl_util.Xorshift.create seed;
    window = Array.make window 0.0;
    window_n = 0;
    window_next = 0;
    samples = 0;
    alarm = false;
    alarm_transitions = 0;
  }

let sample_rate t = t.sample_rate

let threshold t = t.threshold

(* --- oracles -------------------------------------------------------------- *)

(* Exact replay against a document.  Match_count contexts are not
   domain-safe (shared counting buffers), so the closure owns one context
   behind its own lock — the replay serializes, which is fine for a
   sampled slow path. *)
let oracle_of_tree tree =
  let ctx = Tl_twig.Match_count.create_ctx tree in
  let m = Mutex.create () in
  fun key ->
    Mutex.lock m;
    let count =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m)
        (fun () -> Tl_twig.Match_count.selectivity ctx (Twig.Key.twig key))
    in
    float_of_int count

(* Exact replay through the adaptive layer: the count is computed against
   the layer's base document AND recorded as feedback, so every sampled
   query also improves future estimates — the XPathLearner-style loop.
   [Adaptive.observe_exact] is single-domain by contract; the engine only
   calls oracles from the batch caller domain, which satisfies it. *)
let oracle_of_adaptive adaptive =
 fun key -> float_of_int (Tl_core.Adaptive.observe_exact adaptive (Twig.Key.twig key))

(* --- sampling ------------------------------------------------------------- *)

let consider t key =
  if t.sample_rate <= 0.0 then None
  else begin
    Mutex.lock t.mutex;
    let sampled =
      t.sample_rate >= 1.0 || Tl_util.Xorshift.float t.rng 1.0 < t.sample_rate
    in
    Mutex.unlock t.mutex;
    if not sampled then None
    else begin
      Metrics.incr "drift.sampled";
      Some (t.oracle key)
    end
  end

let rel_error ~exact ~estimate =
  Float.abs (estimate -. exact) /. Float.max 1.0 (Float.abs exact)

(* Exact order statistic over a sorted copy: index round(q * (n-1)). *)
let quantile_of_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let i = int_of_float (Float.round (q *. float_of_int (n - 1))) in
    sorted.(max 0 (min (n - 1) i))
  end

let sorted_window_locked t =
  let arr = Array.sub t.window 0 t.window_n in
  Array.sort compare arr;
  arr

let ppm x = int_of_float (Float.min 1e12 (x *. 1e6))

let observe t ~exact ~estimate =
  let err = rel_error ~exact ~estimate in
  Mutex.lock t.mutex;
  t.window.(t.window_next) <- err;
  t.window_next <- (t.window_next + 1) mod Array.length t.window;
  if t.window_n < Array.length t.window then t.window_n <- t.window_n + 1;
  t.samples <- t.samples + 1;
  let sorted = sorted_window_locked t in
  let p50 = quantile_of_sorted sorted 0.50 in
  let p90 = quantile_of_sorted sorted 0.90 in
  let p99 = quantile_of_sorted sorted 0.99 in
  let alarm_now = t.window_n >= t.min_samples && p90 >= t.threshold in
  let transition = alarm_now <> t.alarm in
  if transition && alarm_now then t.alarm_transitions <- t.alarm_transitions + 1;
  t.alarm <- alarm_now;
  let samples = t.samples in
  Mutex.unlock t.mutex;
  Metrics.observe "drift.rel_error_ppm" (ppm err);
  Metrics.set_gauge "drift.samples" samples;
  Metrics.set_gauge "drift.rel_error_p50_ppm" (ppm p50);
  Metrics.set_gauge "drift.rel_error_p90_ppm" (ppm p90);
  Metrics.set_gauge "drift.rel_error_p99_ppm" (ppm p99);
  if transition then begin
    Metrics.set_gauge "drift.alarm" (if alarm_now then 1 else 0);
    if alarm_now then begin
      Metrics.incr "drift.alarm_transitions";
      Log.warn (fun m ->
          m "drift alarm raised: window p90 relative error %.3f >= threshold %.3f (%d samples)"
            p90 t.threshold samples)
    end
    else
      Log.info (fun m ->
          m "drift alarm cleared: window p90 relative error %.3f < threshold %.3f" p90 t.threshold)
  end;
  err

let quantile t q =
  Mutex.lock t.mutex;
  let sorted = sorted_window_locked t in
  Mutex.unlock t.mutex;
  quantile_of_sorted sorted q

let alarm t =
  Mutex.lock t.mutex;
  let a = t.alarm in
  Mutex.unlock t.mutex;
  a

type stats = {
  samples : int;
  window_n : int;
  p50 : float;
  p90 : float;
  p99 : float;
  alarm : bool;
  alarm_transitions : int;
}

let stats t =
  Mutex.lock t.mutex;
  let sorted = sorted_window_locked t in
  let s =
    {
      samples = t.samples;
      window_n = t.window_n;
      p50 = quantile_of_sorted sorted 0.50;
      p90 = quantile_of_sorted sorted 0.90;
      p99 = quantile_of_sorted sorted 0.99;
      alarm = t.alarm;
      alarm_transitions = t.alarm_transitions;
    }
  in
  Mutex.unlock t.mutex;
  s

let pp_stats s =
  Printf.sprintf
    "drift: %d sampled, window %d, rel error p50 %.4f p90 %.4f p99 %.4f, alarm %s (%d raised)"
    s.samples s.window_n
    (if Float.is_nan s.p50 then 0.0 else s.p50)
    (if Float.is_nan s.p90 then 0.0 else s.p90)
    (if Float.is_nan s.p99 then 0.0 else s.p99)
    (if s.alarm then "RAISED" else "ok")
    s.alarm_transitions
