module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Twig_enum = Tl_twig.Twig_enum
module Data_tree = Tl_tree.Data_tree
module Xorshift = Tl_util.Xorshift

type query = { twig : Twig.t; truth : int }

type t = { size : int; queries : query array; sanity : float }

let finalize ~size queries =
  let queries = Array.of_list queries in
  let sanity =
    if Array.length queries = 0 then 10.0
    else Error_metric.sanity_bound (Array.map (fun q -> q.truth) queries)
  in
  { size; queries; sanity }

let positive ~seed ctx ~size ~count =
  if size < 1 then invalid_arg "Workload.positive: size must be >= 1";
  if count < 1 then invalid_arg "Workload.positive: count must be >= 1";
  let rng = Xorshift.create seed in
  let tree = Match_count.tree ctx in
  let seen = Hashtbl.create count in
  let queries = ref [] in
  let found = ref 0 in
  let attempts = ref (count * 60) in
  while !found < count && !attempts > 0 do
    decr attempts;
    match Twig_enum.random_subtree rng tree ~size with
    | None -> ()
    | Some twig ->
      let key = Twig.Key.id (Twig.key twig) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        let truth = Match_count.selectivity ctx twig in
        (* Occurring by construction, but guard against size-0 anyway. *)
        if truth > 0 then begin
          queries := { twig; truth } :: !queries;
          incr found
        end
      end
  done;
  finalize ~size !queries

let positive_sweep ~seed ctx ~sizes ~count =
  List.mapi (fun i size -> positive ~seed:(seed + (1000 * i)) ctx ~size ~count) sizes

type mutation_kind = Relabel_root | Relabel_internal | Relabel_leaf

let mutation_kind_name = function
  | Relabel_root -> "root"
  | Relabel_internal -> "internal"
  | Relabel_leaf -> "leaf"

let node_kind (ix : Twig.indexed) i =
  if ix.Twig.parents.(i) < 0 then Relabel_root
  else if ix.Twig.kids.(i) = [] then Relabel_leaf
  else Relabel_internal

(* Replace one node's label (optionally of a specific kind) by a
   frequency-weighted draw. *)
let mutate ?kind rng label_weights twig =
  let ix = Twig.index twig in
  let n = Array.length ix.Twig.node_labels in
  let eligible =
    match kind with
    | None -> List.init n Fun.id
    | Some k -> List.filter (fun i -> node_kind ix i = k) (List.init n Fun.id)
  in
  match eligible with
  | [] -> None
  | _ ->
    let target = List.nth eligible (Xorshift.int rng (List.length eligible)) in
    let replacement = Xorshift.pick_weighted rng label_weights in
    let pos = ref (-1) in
    let rec rebuild (t : Twig.t) =
      incr pos;
      let here = !pos in
      let label = if here = target then replacement else t.Twig.label in
      Twig.node label (List.map rebuild t.Twig.children)
    in
    Some (Twig.canonicalize (rebuild ix.Twig.twig))

let negative_gen ?kind ~seed ctx ~base ~count () =
  if count < 1 then invalid_arg "Workload.negative: count must be >= 1";
  let rng = Xorshift.create seed in
  let tree = Match_count.tree ctx in
  let label_weights =
    Array.init (Data_tree.label_count tree) (fun l ->
        (l, float_of_int (Array.length (Data_tree.nodes_with_label tree l))))
  in
  let seen = Hashtbl.create count in
  let queries = ref [] in
  let found = ref 0 in
  let attempts = ref (count * 80) in
  let nbase = Array.length base.queries in
  if nbase = 0 then { base with queries = [||] }
  else begin
    while !found < count && !attempts > 0 do
      decr attempts;
      let source = base.queries.(Xorshift.int rng nbase) in
      match mutate ?kind rng label_weights source.twig with
      | None -> ()
      | Some mutant ->
        let key = Twig.Key.id (Twig.key mutant) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          if Match_count.selectivity ctx mutant = 0 then begin
            queries := { twig = mutant; truth = 0 } :: !queries;
            incr found
          end
        end
    done;
    { size = base.size; queries = Array.of_list !queries; sanity = base.sanity }
  end

let negative ~seed ctx ~base ~count = negative_gen ~seed ctx ~base ~count ()

let negative_by_kind ~seed ctx ~base ~count =
  List.filter_map
    (fun kind ->
      let wl = negative_gen ~kind ~seed:(seed + Hashtbl.hash kind) ctx ~base ~count () in
      if Array.length wl.queries = 0 then None else Some (kind, wl))
    [ Relabel_root; Relabel_internal; Relabel_leaf ]

let pairs t ~estimate = Array.map (fun q -> (q.truth, estimate q.twig)) t.queries
