(** Twig queries (the paper's [T_Q], §2.1).

    A twig is a rooted unordered node-labeled tree.  Labels are interned
    integers (normally shared with a {!Tl_tree.Data_tree.t}'s interner).
    Twigs are small — queries in the paper's workloads have 4 to 9 nodes —
    so the operations here favour clarity over asymptotics, except for the
    canonical-key machinery, which sits on the estimation hot path.

    {2 Canonical form}

    Twig matching ignores sibling order, so structurally equal twigs must
    compare equal regardless of how children were listed.  The canonical
    form orders every child list by the children's canonical encodings; the
    encoding (a bracketed string over label ids) is injective on canonical
    twigs.

    {2 Hash-consing}

    Canonicalization results are hash-consed: every distinct canonical
    encoding is interned process-wide into a dense integer id (a {!Key.t}),
    and each node caches its own key after first touch.  {!encode},
    {!compare}, {!equal}, {!hash} and {!is_canonical} are therefore O(1)
    amortized, and the derived-twig operations ({!induced}, {!remove},
    {!grow}) re-encode only the nodes they rebuild, merging the cached
    encodings of untouched subtrees.  The registry is append-only and
    mutex-guarded, so twigs may be keyed concurrently from a
    {!Tl_util.Pool} domain pool. *)

type memo
(** Per-node canonicalization cache; opaque.  Fresh nodes start unkeyed. *)

type t = private { label : int; children : t list; mutable memo : memo }

val leaf : int -> t

val node : int -> t list -> t

val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** Height in nodes; a single node has depth 1. *)

val width : t -> int
(** Maximum number of children of any node. *)

val labels : t -> int list
(** All labels, in preorder, with repetitions. *)

val canonicalize : t -> t
(** The hash-consed canonical representative: children sorted by canonical
    encoding, bottom-up.  Idempotent; structurally equal twigs map to the
    {e same} (physically shared) representative. *)

val is_canonical : t -> bool
(** True exactly for hash-consed representatives (every {!canonicalize},
    {!induced}, {!remove} and {!grow} result).  A structurally sorted node
    built by hand is keyed on first touch and then shares its
    representative, but is not itself [is_canonical]. *)

val encode : t -> string
(** Canonical key: canonicalizes, then prints as e.g. ["3(1,4(2))"].
    Cached — O(1) after the node's first touch. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] on malformed input.
    The result is canonical iff the input was produced by {!encode}. *)

val compare : t -> t -> int
(** Total order agreeing with structural equality modulo sibling order
    (lexicographic on canonical encodings, as the seed string path). *)

val equal : t -> t -> bool

val hash : t -> int
(** Hash of the canonical encoding; cached. *)

(** {2 Interned canonical keys}

    A {!Key.t} names one canonical twig: a dense process-wide integer id
    plus its cached encoding.  Summaries, estimator memos, adaptive caches
    and miner dedup tables key on {!Key.id} so their hot paths hash and
    compare ints; {!Key.encode} recovers the string form for the edges
    (serialization, probes, rendering) without re-canonicalizing. *)
module Key : sig
  type twig = t

  type t

  val of_twig : twig -> t
  (** Canonicalize and intern; O(1) for already-keyed nodes. *)

  val twig : t -> twig
  (** The canonical representative twig. *)

  val id : t -> int
  (** Dense process-wide id; equal twigs (modulo sibling order) share it. *)

  val encode : t -> string
  (** The canonical encoding, without recomputation. *)

  val equal : t -> t -> bool

  val compare : t -> t -> int
  (** Same order as {!Twig.compare} (lexicographic on encodings). *)

  val hash : t -> int

  val size : t -> int
  (** Node count of the keyed twig; computed at intern time, O(1). *)

  val interned : unit -> int
  (** Number of distinct canonical twigs interned so far, process-wide. *)
end

val key : t -> Key.t
(** Alias of {!Key.of_twig}. *)

val map_labels : (int -> int) -> t -> t
(** Relabel; the result is {e not} re-canonicalized. *)

val is_path : t -> bool
(** True when every node has at most one child. *)

val path_labels : t -> int list option
(** For a path twig, its labels root-to-leaf. *)

val of_path : int list -> t
(** Build a path twig.  Raises [Invalid_argument] on an empty list. *)

val automorphisms : t -> int
(** Number of root-preserving automorphisms — the product over nodes of the
    factorials of identical-child-subtree multiplicities.  Relates
    injective-match counts to occurrence-subset counts in tests. *)

val pp : names:(int -> string) -> t -> string
(** Render with tag names, e.g. ["a(b,c(d))"]. *)

(** {2 Node-indexed view}

    Decomposition needs to address individual twig nodes.  The indexed view
    exposes the canonical preorder: node 0 is the root, children appear in
    canonical order.  All indices below refer to this preorder. *)

type indexed = private {
  twig : t;  (** the canonical twig the indices refer to *)
  node_labels : int array;
  parents : int array;  (** [-1] for the root *)
  kids : int list array;  (** children, in canonical preorder *)
  subtrees : t array;
      (** the (canonical, keyed) subtree rooted at each preorder index —
          reused wholesale by {!induced}/{!remove}/{!grow} when untouched *)
}

val index : t -> indexed
(** Canonicalizes, then indexes.  The view is built at most once per
    distinct canonical twig — it is cached on the twig's {!Key.t}, so at
    steady state this is a key-field read plus one atomic load.  Treat the
    arrays as read-only. *)

val degree_one : indexed -> int list
(** Preorder indices of nodes of degree 1: the leaves, plus the root when it
    has exactly one child.  These are the removable nodes of the recursive
    decomposition (§3.2).  For a twig of size >= 2 there are always at least
    two. *)

val remove : indexed -> int -> t
(** [remove ix i] removes the degree-1 node [i]: dropping a leaf, or
    promoting the root's only child when [i] is the root.  The result is
    canonical.  Raises [Invalid_argument] when [i] is not degree-1 or the
    twig has a single node. *)

val induced : indexed -> int list -> t
(** [induced ix nodes] is the subtree induced by the given preorder indices,
    which must be non-empty and connected (contain, for each non-minimal
    node, its parent).  Raises [Invalid_argument] otherwise.  Canonical. *)

val grow : indexed -> int -> int -> t
(** [grow ix i l] attaches a fresh [l]-labeled leaf under node [i];
    canonical result.  This is the miner's extension step. *)
