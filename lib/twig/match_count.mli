(** Exact twig selectivity — the number of matches of Definition 1.

    A match of twig [Q] in data tree [T] is a 1-1 mapping from [Q]'s nodes
    to [T]'s nodes preserving labels and parent-child edges.  The count is
    computed by a memoized top-down dynamic program: for data node [v] and
    query node [q] with equal labels, the number of matches of [q]'s subtree
    rooted at [v] is the product, over [q]'s child sibling groups that share
    a label, of the number of weighted injective assignments of that group
    into [v]'s equally-labeled children (a permanent, evaluated by a
    subset-mask DP — sibling groups are at most twig-width wide, so the mask
    stays tiny).  Starting from the nodes carrying the root label and
    recursing only through label-matching edges keeps counting cheap even
    for patterns containing very frequent leaf labels.

    This engine provides the ground truth for every experiment, and the
    per-pattern counts stored in the lattice summary. *)

type ctx
(** Reusable counting context over one data tree (holds the DP buffer, so
    repeated counting — the miner's hot loop — does not reallocate). *)

val create_ctx : Tl_tree.Data_tree.t -> ctx

val clone_ctx : ctx -> ctx
(** A fresh context over the same (immutable, shareable) data tree but
    with private DP/stamp buffers — one per domain when counting in
    parallel: contexts are single-domain mutable state and must never be
    shared across domains. *)

val tree : ctx -> Tl_tree.Data_tree.t

val selectivity : ctx -> Twig.t -> int
(** Number of matches of the twig in the whole document. *)

val selectivity_rooted : ctx -> Twig.t -> Tl_tree.Data_tree.node -> int
(** Matches whose root maps to the given data node. *)

val count : Tl_tree.Data_tree.t -> Twig.t -> int
(** One-shot convenience: [selectivity (create_ctx tree) twig]. *)
