[@@@ocaml.warning "-30"] (* [key] and [indexed] both carry a [twig] field *)

type t = { label : int; children : t list; mutable memo : memo }

and memo =
  | Unknown
  | Self of key  (** this node is the hash-consed canonical representative *)
  | Canon of t  (** the canonical representative (whose memo is [Self]) *)

and key = {
  id : int;
  enc : string;
  khash : int;
  twig : t;
  ksize : int;
  ix : indexed option Atomic.t;
      (** node-indexed view of [twig], built at most once per distinct
          canonical twig (reps are pinned, so this is a pure value) *)
}

and indexed = {
  twig : t;
  node_labels : int array;
  parents : int array;
  kids : int list array;
  subtrees : t array;
}

let leaf label = { label; children = []; memo = Unknown }

let node label children = { label; children; memo = Unknown }

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec depth t = 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec width t = List.fold_left (fun acc c -> max acc (width c)) (List.length t.children) t.children

let labels t =
  let rec go acc t = List.fold_left go (t.label :: acc) t.children in
  List.rev (go [] t)

(* --- hash-consed canonical keys ------------------------------------------ *)

(* Every distinct canonical twig is interned once, process-wide, into a
   dense id; the registry also pins one canonical representative twig per
   id.  A node caches the outcome of its own canonicalization in [memo], so
   [encode]/[compare]/[hash]/[is_canonical] are O(1) after first touch.

   The registry is keyed structurally, on [(label, canonical child ids)],
   not on the encoding string: a twig is determined by its label and the
   identities of its (canonically ordered) children, so interning a node
   whose children are already keyed — the common case in [induced]/
   [remove]/[grow], which rebuild only a spine over untouched subtrees —
   probes the table with a handful of ints and allocates no string.  The
   encoding is materialized once per distinct twig, at first intern, and
   cached in the key.

   Domain-safety: the registry is guarded by a mutex, taken only on a memo
   miss.  [memo] itself is written without the lock — concurrent writers
   race only to store equivalent values (the registry hands every domain
   the same key for a given structure), which the OCaml 5 memory model
   resolves safely. *)

module Node_interner = Tl_util.Interner.Make (struct
  type t = int * int array
  (** label, child key ids in canonical (encoding) order *)

  let equal (l1, c1) (l2, c2) = l1 = l2 && c1 = c2

  let hash = Hashtbl.hash
end)

let registry_lock = Mutex.create ()

let registry = Node_interner.create ()

let registry_keys : key array ref = ref [||]

(* [candidate] may serve as the pinned representative when the structure is
   new: its children are already the sorted canonical representatives. *)
let intern_key ~skey ~kid_keys ~label ~candidate =
  Mutex.lock registry_lock;
  let k =
    match Node_interner.find registry skey with
    | Some id -> !registry_keys.(id)
    | None ->
      let id = Node_interner.intern registry skey in
      (* First intern of this structure: materialize the encoding, once. *)
      let enc =
        match kid_keys with
        | [] -> string_of_int label
        | _ ->
          let buf = Buffer.create 32 in
          Buffer.add_string buf (string_of_int label);
          Buffer.add_char buf '(';
          List.iteri
            (fun i kk ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf kk.enc)
            kid_keys;
          Buffer.add_char buf ')';
          Buffer.contents buf
      in
      let rep =
        match candidate with
        | Some rep -> rep
        | None -> { label; children = List.map (fun kk -> kk.twig) kid_keys; memo = Unknown }
      in
      let ksize = List.fold_left (fun acc kk -> acc + kk.ksize) 1 kid_keys in
      let k = { id; enc; khash = Hashtbl.hash enc; twig = rep; ksize; ix = Atomic.make None } in
      rep.memo <- Self k;
      if id >= Array.length !registry_keys then begin
        let bigger = Array.make (max 64 (2 * Array.length !registry_keys)) k in
        Array.blit !registry_keys 0 bigger 0 id;
        registry_keys := bigger
      end;
      !registry_keys.(id) <- k;
      k
  in
  Mutex.unlock registry_lock;
  k

let rec key_of t =
  match t.memo with
  | Self k -> k
  | Canon rep -> ( match rep.memo with Self k -> k | Unknown | Canon _ -> assert false)
  | Unknown ->
    let kid_keys = List.map key_of t.children in
    let kid_keys = List.sort (fun k1 k2 -> String.compare k1.enc k2.enc) kid_keys in
    let skey = (t.label, Array.of_list (List.map (fun kk -> kk.id) kid_keys)) in
    let candidate =
      (* same length by construction: [kid_keys] is a permutation of the
         children's keys *)
      if List.for_all2 ( == ) t.children (List.map (fun kk -> kk.twig) kid_keys) then Some t
      else None
    in
    let k = intern_key ~skey ~kid_keys ~label:t.label ~candidate in
    (match t.memo with
    | Self _ -> () (* [t] became the pinned representative inside the lock *)
    | Unknown | Canon _ -> if k.twig != t then t.memo <- Canon k.twig);
    k

let canonicalize t = (key_of t).twig

let encode t = (key_of t).enc

let is_canonical t = (key_of t).twig == t

let compare a b =
  let ka = key_of a and kb = key_of b in
  if ka.id = kb.id then 0 else String.compare ka.enc kb.enc

let equal a b = (key_of a).id = (key_of b).id

let hash t = (key_of t).khash

module Key = struct
  type twig = t

  type nonrec t = key

  let of_twig = key_of

  let twig k = k.twig

  let id k = k.id

  let encode k = k.enc

  let equal a b = a.id = b.id

  let compare a b = if a.id = b.id then 0 else String.compare a.enc b.enc

  let hash k = k.khash

  let size k = k.ksize

  let interned () =
    Mutex.lock registry_lock;
    let n = Node_interner.size registry in
    Mutex.unlock registry_lock;
    n
end

let key = key_of

let decode s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Twig.decode: %s at offset %d in %S" msg !pos s) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let scan_int () =
    let start = !pos in
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a label id";
    int_of_string (String.sub s start (!pos - start))
  in
  let rec scan_node () =
    let label = scan_int () in
    match peek () with
    | Some '(' ->
      incr pos;
      let kids = scan_kids [] in
      (match peek () with
      | Some ')' ->
        incr pos;
        node label (List.rev kids)
      | _ -> fail "expected ')'")
    | _ -> leaf label
  and scan_kids acc =
    let child = scan_node () in
    match peek () with
    | Some ',' ->
      incr pos;
      scan_kids (child :: acc)
    | _ -> child :: acc
  in
  let t = scan_node () in
  if !pos <> n then fail "trailing input";
  t

let rec map_labels f t = node (f t.label) (List.map (map_labels f) t.children)

let rec is_path t =
  match t.children with [] -> true | [ c ] -> is_path c | _ :: _ :: _ -> false

let path_labels t =
  let rec go acc t =
    match t.children with
    | [] -> Some (List.rev (t.label :: acc))
    | [ c ] -> go (t.label :: acc) c
    | _ :: _ :: _ -> None
  in
  go [] t

let of_path = function
  | [] -> invalid_arg "Twig.of_path: empty label list"
  | labels ->
    let rec build = function
      | [] -> assert false
      | [ l ] -> leaf l
      | l :: rest -> node l [ build rest ]
    in
    build labels

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let automorphisms t =
  (* aut(t) = prod_children aut(c) * prod over groups of identical child
     encodings of (multiplicity!). *)
  let rec go t =
    let kids = List.map (fun c -> (encode c, c)) t.children in
    let kids = List.sort (fun (e1, _) (e2, _) -> String.compare e1 e2) kids in
    let child_product = List.fold_left (fun acc c -> acc * go c) 1 t.children in
    let rec group_mults acc run = function
      | [] -> run :: acc
      | (e1, _) :: ((e2, _) :: _ as rest) when String.equal e1 e2 -> group_mults acc (run + 1) rest
      | _ :: rest -> group_mults (run :: acc) 1 rest
    in
    let mults = match kids with [] -> [] | _ -> group_mults [] 1 kids in
    List.fold_left (fun acc m -> acc * factorial m) child_product mults
  in
  go t

let pp ~names t =
  let buf = Buffer.create 64 in
  let rec go t =
    Buffer.add_string buf (names t.label);
    match t.children with
    | [] -> ()
    | kids ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          go c)
        kids;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.contents buf

(* --- node-indexed view --------------------------------------------------- *)

(* Built once per distinct canonical twig and cached on its key ([Atomic]
   so a racing second builder publishes an equivalent value safely); every
   later [index] is one atomic load.  Consumers must treat the arrays as
   read-only. *)
let build_index t n =
  let node_labels = Array.make n 0 in
  let parents = Array.make n (-1) in
  let kids = Array.make n [] in
  let subtrees = Array.make n t in
  let next = ref 0 in
  let rec walk parent node =
    let id = !next in
    incr next;
    node_labels.(id) <- node.label;
    parents.(id) <- parent;
    subtrees.(id) <- node;
    if parent >= 0 then kids.(parent) <- kids.(parent) @ [ id ];
    List.iter (walk id) node.children
  in
  walk (-1) t;
  { twig = t; node_labels; parents; kids; subtrees }

let index t =
  let k = key_of t in
  match Atomic.get k.ix with
  | Some ix -> ix
  | None ->
    let ix = build_index k.twig k.ksize in
    Atomic.set k.ix (Some ix);
    ix

let degree_one ix =
  let n = Array.length ix.node_labels in
  let result = ref [] in
  for i = n - 1 downto 0 do
    let nkids = List.length ix.kids.(i) in
    let deg = if ix.parents.(i) < 0 then nkids else nkids + 1 in
    if deg = 1 then result := i :: !result
  done;
  !result

(* Rebuild the twig from the index arrays, excluding a set of nodes and
   optionally re-rooting.  [root] is always included; below it a node
   survives only when [keep] holds for it and its whole ancestor chain up
   to [root].  Fully surviving subtrees are returned as the index's
   original (already canonical, already keyed) nodes, so only the spine of
   removed nodes is re-encoded by the final [canonicalize]. *)
let rebuild ix ~keep ~root =
  let n = Array.length ix.node_labels in
  let eff = Array.make n false in
  for i = 0 to n - 1 do
    eff.(i) <- i = root || (ix.parents.(i) >= 0 && eff.(ix.parents.(i)) && keep i)
  done;
  let kept = Array.make n 0 in
  let total = Array.make n 0 in
  for i = n - 1 downto 0 do
    let k = ref (if eff.(i) then 1 else 0) and s = ref 1 in
    List.iter
      (fun c ->
        k := !k + kept.(c);
        s := !s + total.(c))
      ix.kids.(i);
    kept.(i) <- !k;
    total.(i) <- !s
  done;
  let rec build i =
    if eff.(i) && kept.(i) = total.(i) then ix.subtrees.(i)
    else
      node ix.node_labels.(i)
        (List.filter_map (fun c -> if eff.(c) then Some (build c) else None) ix.kids.(i))
  in
  canonicalize (build root)

let remove ix i =
  let n = Array.length ix.node_labels in
  if n <= 1 then invalid_arg "Twig.remove: cannot remove from a single-node twig";
  if i < 0 || i >= n then invalid_arg "Twig.remove: index out of bounds";
  let nkids = List.length ix.kids.(i) in
  let deg = if ix.parents.(i) < 0 then nkids else nkids + 1 in
  if deg <> 1 then invalid_arg "Twig.remove: node is not degree-1";
  if ix.parents.(i) < 0 then begin
    (* Root with a single child: promote the child. *)
    match ix.kids.(i) with
    | [ c ] -> rebuild ix ~keep:(fun j -> j <> i) ~root:c
    | _ -> assert false
  end
  else rebuild ix ~keep:(fun j -> j <> i) ~root:0

let induced ix nodes =
  (match nodes with [] -> invalid_arg "Twig.induced: empty node set" | _ -> ());
  let n = Array.length ix.node_labels in
  let in_set = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Twig.induced: index out of bounds";
      in_set.(i) <- true)
    nodes;
  let root = List.fold_left min (List.hd nodes) nodes in
  List.iter
    (fun i ->
      if i <> root && (ix.parents.(i) < 0 || not in_set.(ix.parents.(i))) then
        invalid_arg "Twig.induced: node set is not connected")
    nodes;
  rebuild ix ~keep:(fun j -> in_set.(j)) ~root

let grow ix i l =
  let n = Array.length ix.node_labels in
  if i < 0 || i >= n then invalid_arg "Twig.grow: index out of bounds";
  (* Only the ancestor chain of [i] gets a new shape; every subtree hanging
     off it is reused as-is. *)
  let on_spine = Array.make n false in
  let rec mark j =
    if j >= 0 && not on_spine.(j) then begin
      on_spine.(j) <- true;
      mark ix.parents.(j)
    end
  in
  mark i;
  let rec build j =
    if not on_spine.(j) then ix.subtrees.(j)
    else begin
      let children = List.map build ix.kids.(j) in
      let children = if j = i then leaf l :: children else children in
      node ix.node_labels.(j) children
    end
  in
  canonicalize (build 0)
