module Data_tree = Tl_tree.Data_tree

let occurrences tree ~max_size =
  if max_size < 1 then invalid_arg "Twig_enum.occurrences: max_size must be >= 1";
  let tally : (int, Twig.t * int) Hashtbl.t = Hashtbl.create 256 in
  let record twig =
    let key = Twig.key twig in
    let id = Twig.Key.id key in
    match Hashtbl.find_opt tally id with
    | Some (t, c) -> Hashtbl.replace tally id (t, c + 1)
    | None -> Hashtbl.replace tally id (Twig.Key.twig key, 1)
  in
  (* All shapes rooted at [v] with at most [budget] nodes, via independent
     include/choose decisions per child — each connected node subset is
     produced exactly once. *)
  let rec shapes v budget =
    if budget <= 0 then []
    else begin
      let kids = Data_tree.children tree v in
      let nkids = Array.length kids in
      (* Selections of child subtrees from kids.(i..): (children, total size). *)
      let rec sel i budget =
        if i >= nkids then [ ([], 0) ]
        else begin
          let skip = sel (i + 1) budget in
          let take =
            List.concat_map
              (fun (t, s) ->
                List.map (fun (ts, total) -> (t :: ts, total + s)) (sel (i + 1) (budget - s)))
              (shapes kids.(i) budget)
          in
          skip @ take
        end
      in
      List.map
        (fun (children, s) -> (Twig.node (Data_tree.label tree v) children, s + 1))
        (sel 0 (budget - 1))
    end
  in
  Data_tree.iter_nodes tree (fun v -> List.iter (fun (t, _) -> record t) (shapes v max_size));
  Hashtbl.fold (fun _ entry acc -> entry :: acc) tally []
  |> List.sort (fun (a, _) (b, _) -> Twig.compare a b)

let selectivities tree ~max_size =
  List.map (fun (t, c) -> (t, c * Twig.automorphisms t)) (occurrences tree ~max_size)

let shape_of_set tree set root =
  let rec build v =
    let children =
      Array.to_list (Data_tree.children tree v)
      |> List.filter_map (fun c -> if Hashtbl.mem set c then Some (build c) else None)
    in
    Twig.node (Data_tree.label tree v) children
  in
  Twig.canonicalize (build root)

let random_subtree rng tree ~size =
  if size < 1 then invalid_arg "Twig_enum.random_subtree: size must be >= 1";
  let n = Data_tree.size tree in
  if size > n then None
  else begin
    let attempt () =
      let root = Tl_util.Xorshift.int rng n in
      let set = Hashtbl.create size in
      Hashtbl.replace set root ();
      let frontier = ref (Array.to_list (Data_tree.children tree root)) in
      let rec grow remaining =
        if remaining = 0 then true
        else
          match !frontier with
          | [] -> false
          | _ ->
            let arr = Array.of_list !frontier in
            let pick = arr.(Tl_util.Xorshift.int rng (Array.length arr)) in
            frontier := List.filter (fun v -> v <> pick) !frontier;
            Hashtbl.replace set pick ();
            frontier := Array.to_list (Data_tree.children tree pick) @ !frontier;
            grow (remaining - 1)
      in
      if grow (size - 1) then Some (shape_of_set tree set root) else None
    in
    let rec retry k = if k = 0 then None else match attempt () with Some t -> Some t | None -> retry (k - 1) in
    retry 32
  end
