module Data_tree = Tl_tree.Data_tree

(* The DP buffer [dp] and its validity stamps [stamp] are reused across
   runs; [generation] invalidates everything in O(1).  Both are sized
   n * qn for the current query. *)
type ctx = {
  tree : Data_tree.t;
  mutable dp : int array;
  mutable stamp : int array;
  mutable generation : int;
}

let create_ctx tree = { tree; dp = [||]; stamp = [||]; generation = 0 }

let clone_ctx ctx = create_ctx ctx.tree

let tree ctx = ctx.tree

(* Per-query-node preprocessed structure: children grouped by label so the
   inner loop evaluates one injective-assignment DP per sibling group. *)
type qnode = { qlabel : int; groups : (int * int array) array }

let prepare twig =
  let ix = Twig.index twig in
  let n = Array.length ix.node_labels in
  Array.init n (fun q ->
      let by_label = Hashtbl.create 4 in
      List.iter
        (fun c ->
          let l = ix.node_labels.(c) in
          let existing = Option.value ~default:[] (Hashtbl.find_opt by_label l) in
          Hashtbl.replace by_label l (c :: existing))
        ix.kids.(q);
      let groups =
        Hashtbl.fold (fun l members acc -> (l, Array.of_list (List.rev members)) :: acc) by_label []
      in
      { qlabel = ix.node_labels.(q); groups = Array.of_list groups })

(* Count matches of query subtree [q] rooted exactly at data node [v],
   top-down with memoization: only descendants reachable through
   label-matching edges are ever visited, which is what makes counting
   patterns with frequent leaf labels cheap. *)
let rec node_count ctx qnodes qn v q =
  let key = (v * qn) + q in
  if ctx.stamp.(key) = ctx.generation then ctx.dp.(key)
  else begin
    let { groups; _ } = qnodes.(q) in
    let count = ref 1 in
    let ngroups = Array.length groups in
    let gi = ref 0 in
    while !count <> 0 && !gi < ngroups do
      let group_label, group = groups.(!gi) in
      count := !count * group_count ctx qnodes qn group_label group v;
      incr gi
    done;
    ctx.stamp.(key) <- ctx.generation;
    ctx.dp.(key) <- !count;
    !count
  end

(* Weighted count of injective assignments of the query children in [group]
   to the [group_label]-labeled children of data node [v]: the permanent of
   the (query child, data child) match-count matrix.  [ways.(mask)] is the
   weighted number of ways to place exactly the query children in [mask]
   injectively among the data children seen so far. *)
and group_count ctx qnodes qn group_label group v =
  let m = Array.length group in
  if m = 1 then
    Data_tree.fold_children_with_label ctx.tree v group_label
      (fun acc w -> acc + node_count ctx qnodes qn w group.(0))
      0
  else begin
    let full = (1 lsl m) - 1 in
    let ways = Array.make (full + 1) 0 in
    ways.(0) <- 1;
    Data_tree.fold_children_with_label ctx.tree v group_label
      (fun () w ->
        (* Descending mask order: reads of strictly smaller masks see the
           pre-update values, so each data child is used at most once. *)
        for mask = full downto 1 do
          let acc = ref ways.(mask) in
          for i = 0 to m - 1 do
            if mask land (1 lsl i) <> 0 then begin
              let sub = node_count ctx qnodes qn w group.(i) in
              if sub <> 0 then acc := !acc + (ways.(mask lxor (1 lsl i)) * sub)
            end
          done;
          ways.(mask) <- !acc
        done)
      ();
    ways.(full)
  end

let start_run ctx twig =
  let qnodes = prepare twig in
  let qn = Array.length qnodes in
  let needed = Data_tree.size ctx.tree * qn in
  if Array.length ctx.dp < needed then begin
    ctx.dp <- Array.make needed 0;
    ctx.stamp <- Array.make needed (-1)
  end;
  ctx.generation <- ctx.generation + 1;
  (qnodes, qn)

let selectivity ctx twig =
  let twig = Twig.canonicalize twig in
  let qnodes, qn = start_run ctx twig in
  let root_label = twig.Twig.label in
  let result =
    Array.fold_left
      (fun acc v -> acc + node_count ctx qnodes qn v 0)
      0
      (Data_tree.nodes_with_label ctx.tree root_label)
  in
  (* Domain-sharded, so safe (and still deterministic in aggregate) when
     counting fans out across a pool. *)
  Tl_obs.Metrics.incr "match_count.calls";
  Tl_obs.Metrics.observe "match_count.selectivity" result;
  result

let selectivity_rooted ctx twig v =
  let twig = Twig.canonicalize twig in
  let qnodes, qn = start_run ctx twig in
  if Data_tree.label ctx.tree v = twig.Twig.label then node_count ctx qnodes qn v 0 else 0

let count tree twig = selectivity (create_ctx tree) twig
