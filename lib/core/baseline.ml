(* A faithful re-implementation of the seed's string-keyed estimation path,
   over a private twig copy type so nothing here benefits from the
   hash-consing in {!Tl_twig.Twig}.  Every canonicalization re-encodes,
   every memo and summary lookup hashes a string — exactly the costs the
   interned-key path removes.  Kept verbatim-equivalent so the qcheck
   differential suite can assert the new path is bit-identical, and so the
   bench speedup is measured against the real before, not a strawman. *)

type twig = { label : int; children : twig list }

let rec of_twig (t : Tl_twig.Twig.t) = { label = t.label; children = List.map of_twig t.children }

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec canon t =
  let kids = List.map canon t.children in
  let kids = List.sort (fun (_, e1) (_, e2) -> String.compare e1 e2) kids in
  let enc =
    match kids with
    | [] -> string_of_int t.label
    | _ ->
      let inner = String.concat "," (List.map snd kids) in
      string_of_int t.label ^ "(" ^ inner ^ ")"
  in
  ({ label = t.label; children = List.map fst kids }, enc)

let canonicalize t = fst (canon t)

let encode t = snd (canon t)

let hash t = Hashtbl.hash (encode t)

(* --- node-indexed view (seed copy) --------------------------------------- *)

type indexed = { node_labels : int array; parents : int array; kids : int list array }

let index t =
  let t = canonicalize t in
  let n = size t in
  let node_labels = Array.make n 0 in
  let parents = Array.make n (-1) in
  let kids = Array.make n [] in
  let next = ref 0 in
  let rec walk parent node =
    let id = !next in
    incr next;
    node_labels.(id) <- node.label;
    parents.(id) <- parent;
    if parent >= 0 then kids.(parent) <- kids.(parent) @ [ id ];
    List.iter (walk id) node.children
  in
  walk (-1) t;
  { node_labels; parents; kids }

let degree_one ix =
  let n = Array.length ix.node_labels in
  let result = ref [] in
  for i = n - 1 downto 0 do
    let nkids = List.length ix.kids.(i) in
    let deg = if ix.parents.(i) < 0 then nkids else nkids + 1 in
    if deg = 1 then result := i :: !result
  done;
  !result

let rebuild ix ~keep ~root =
  let rec build i =
    let children = List.filter_map (fun c -> if keep c then Some (build c) else None) ix.kids.(i) in
    { label = ix.node_labels.(i); children }
  in
  canonicalize (build root)

let induced ix nodes =
  (match nodes with [] -> invalid_arg "Baseline.induced: empty node set" | _ -> ());
  let n = Array.length ix.node_labels in
  let in_set = Array.make n false in
  List.iter (fun i -> in_set.(i) <- true) nodes;
  let root = List.fold_left min (List.hd nodes) nodes in
  rebuild ix ~keep:(fun j -> in_set.(j)) ~root

(* --- summary as a plain string table ------------------------------------- *)

type t = { k : int; complete : bool; table : (string, int) Hashtbl.t }

let of_summary summary =
  let table = Hashtbl.create (max 64 (Tl_lattice.Summary.entries summary)) in
  Tl_lattice.Summary.fold
    (fun twig count () -> Hashtbl.replace table (Tl_twig.Twig.encode twig) count)
    summary ();
  { k = Tl_lattice.Summary.k summary; complete = Tl_lattice.Summary.is_complete summary; table }

(* --- the seed estimators, string-keyed throughout ------------------------ *)

(* The seed charged two metric increments per lookup ([probe_lookup]); the
   live estimator still does, so this path must pay the same or the
   comparison flatters it.  Distinct counter names keep the library's own
   estimator.* series unpolluted by bench baseline sweeps. *)
let count_lookup outcome =
  Tl_obs.Metrics.incr "baseline.estimator.lookups";
  Tl_obs.Metrics.incr outcome

let unordered_pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

let nodes_except (ix : indexed) dropped =
  let n = Array.length ix.node_labels in
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if List.mem i dropped then acc else i :: acc)
  in
  collect (n - 1) []

let recursive_estimate ?(extra = fun _ -> None) ~voting t twig =
  let memo : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let rec est twig =
    let key = encode twig in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let v = compute twig key in
      Hashtbl.replace memo key v;
      v
  and compute twig key =
    match (extra key : float option) with
    | Some known ->
      count_lookup "baseline.estimator.extra_hits";
      known
    | None ->
    match Hashtbl.find_opt t.table key with
    | Some count ->
      count_lookup "baseline.estimator.summary_hits";
      float_of_int count
    | None ->
      let n = size twig in
      if n <= 2 || (t.complete && n <= t.k) then begin
        count_lookup "baseline.estimator.true_zeros";
        0.0
      end
      else begin
        count_lookup "baseline.estimator.decompositions";
        let ix = index twig in
        let removable = degree_one ix in
        let pairs = unordered_pairs removable in
        let pairs =
          match (voting, pairs) with
          | true, _ | _, [] -> pairs
          | false, first :: _ -> [ first ]
        in
        let value_of (u, u') =
          let t1 = induced ix (nodes_except ix [ u ]) in
          let t2 = induced ix (nodes_except ix [ u' ]) in
          let twin_edges =
            ix.parents.(u) >= 0
            && ix.parents.(u) = ix.parents.(u')
            && ix.node_labels.(u) = ix.node_labels.(u')
          in
          let e1 = est t1 in
          if e1 = 0.0 then 0.0
          else begin
            let e2 = est t2 in
            if e2 = 0.0 then 0.0
            else begin
              let cap = induced ix (nodes_except ix [ u; u' ]) in
              let ec = est cap in
              if ec <= 0.0 then 0.0
              else if twin_edges then Float.max 0.0 ((e1 *. e2 /. ec) -. e1)
              else e1 *. e2 /. ec
            end
          end
        in
        match pairs with
        | [] -> 0.0
        | _ ->
          let total = List.fold_left (fun acc pair -> acc +. value_of pair) 0.0 pairs in
          total /. float_of_int (List.length pairs)
      end
  in
  est twig

let cover_with ~choose (ix : indexed) ~k =
  let n = Array.length ix.node_labels in
  assert (n > k);
  let prefix = List.init k (fun i -> i) in
  let first = (induced ix prefix, None, 0) in
  let rest = ref [] in
  for i = k to n - 1 do
    let in_overlap = Array.make n false in
    let overlap_size = ref 0 in
    let add j =
      if not in_overlap.(j) then begin
        in_overlap.(j) <- true;
        incr overlap_size
      end
    in
    let rec climb j = if j >= 0 && !overlap_size < k - 1 then begin add j; climb ix.parents.(j) end in
    climb ix.parents.(i);
    while !overlap_size < k - 1 do
      let eligible = ref [] in
      for j = i - 1 downto 0 do
        if (not in_overlap.(j)) && ix.parents.(j) >= 0 && in_overlap.(ix.parents.(j)) then
          eligible := j :: !eligible
      done;
      match !eligible with
      | [] -> invalid_arg "Baseline.cover: internal cover construction failure"
      | candidates -> add (choose candidates)
    done;
    let overlap_nodes = List.filter (fun j -> in_overlap.(j)) (List.init n (fun j -> j)) in
    let twins = ref 0 in
    for j = 0 to i - 1 do
      if
        (not in_overlap.(j))
        && ix.parents.(j) = ix.parents.(i)
        && ix.node_labels.(j) = ix.node_labels.(i)
      then incr twins
    done;
    let block = induced ix (i :: overlap_nodes) in
    let overlap = induced ix overlap_nodes in
    rest := (block, Some overlap, !twins) :: !rest
  done;
  first :: List.rev !rest

let small_estimate ?(extra = fun _ -> None) t twig =
  let key = encode twig in
  match extra key with
  | Some known ->
    count_lookup "baseline.estimator.extra_hits";
    known
  | None -> (
    match Hashtbl.find_opt t.table key with
    | Some c ->
      count_lookup "baseline.estimator.summary_hits";
      float_of_int c
    | None ->
      if t.complete then begin
        count_lookup "baseline.estimator.true_zeros";
        0.0
      end
      else recursive_estimate ~extra ~voting:false t twig)

let estimate_of_cover ?extra t blocks =
  let rec go acc = function
    | [] -> acc
    | (block, overlap, twins) :: rest ->
      if acc = 0.0 then 0.0
      else begin
        let num = small_estimate ?extra t block in
        if num = 0.0 then 0.0
        else begin
          match overlap with
          | None -> go (acc *. num) rest
          | Some i ->
            let den = small_estimate ?extra t i in
            if den <= 0.0 then 0.0
            else begin
              let multiplier = (num /. den) -. float_of_int twins in
              if multiplier <= 0.0 then 0.0 else go (acc *. multiplier) rest
            end
        end
      end
  in
  go 1.0 blocks

let fixed_size_estimate ?extra ?samples t twig =
  let twig = canonicalize twig in
  if size twig <= t.k then small_estimate ?extra t twig
  else begin
    let ix = index twig in
    match samples with
    | None -> estimate_of_cover ?extra t (cover_with ~choose:List.hd ix ~k:t.k)
    | Some count ->
      let count = max 1 count in
      let rng = Tl_util.Xorshift.create (hash twig) in
      let one () =
        let choose candidates = List.nth candidates (Tl_util.Xorshift.int rng (List.length candidates)) in
        estimate_of_cover ?extra t (cover_with ~choose ix ~k:t.k)
      in
      let total = ref 0.0 in
      for _ = 1 to count do
        total := !total +. one ()
      done;
      !total /. float_of_int count
  end

let estimate ?extra t scheme query =
  let twig = canonicalize (of_twig query) in
  match (scheme : Estimator.scheme) with
  | Recursive -> recursive_estimate ?extra ~voting:false t twig
  | Recursive_voting -> recursive_estimate ?extra ~voting:true t twig
  | Fixed_size -> fixed_size_estimate ?extra t twig
  | Fixed_size_voting samples -> fixed_size_estimate ?extra ~samples t twig
