(** TreeLattice: the public front-end of the library.

    A [Treelattice.t] ties together a data tree, its lattice summary, and
    an exact-counting context, and answers selectivity queries written
    either as {!Tl_twig.Twig.t} values or in the textual twig syntax
    ([laptop(brand,price)]).

    Typical use:
    {[
      let doc = Tl_xml.Xml_dom.parse_file "auction.xml" in
      let tree = Tl_tree.Data_tree.of_xml doc in
      let tl = Treelattice.build ~k:4 tree in
      match Treelattice.estimate_string tl "laptop(brand,price)" with
      | Ok estimate -> Printf.printf "~%.1f matches\n" estimate
      | Error msg -> prerr_endline msg
    ]} *)

type t

val build : ?pool:Tl_util.Pool.t -> ?k:int -> Tl_tree.Data_tree.t -> t
(** Mine the document into a [k]-lattice (default 4) and wrap it.  [pool]
    parallelizes the mining step; the result is identical either way. *)

val of_summary : Tl_tree.Data_tree.t -> Tl_lattice.Summary.t -> t
(** Wrap a pre-built (possibly pruned or merged) summary.  The summary's
    label ids must come from [tree]'s interner. *)

val tree : t -> Tl_tree.Data_tree.t

val summary : t -> Tl_lattice.Summary.t

val k : t -> int

val default_scheme : Estimator.scheme
(** [Estimator.Recursive_voting] — the paper's best performer overall. *)

val estimate : ?scheme:Estimator.scheme -> t -> Tl_twig.Twig.t -> float
(** Estimated selectivity of the twig. *)

val estimate_interval : t -> Tl_twig.Twig.t -> Estimator.interval
(** The voting estimate with its decomposition-spread sensitivity interval
    (see {!Estimator.estimate_interval}). *)

val exact : t -> Tl_twig.Twig.t -> int
(** Exact selectivity, by full twig matching over the document. *)

val parse_query : t -> string -> (Tl_twig.Twig.t, string) result
(** Parse the textual syntax against the document's tags.  A syntactically
    valid query naming a tag absent from the document is {e not} an error:
    it parses to a twig that trivially has selectivity 0, mirroring how an
    estimator must handle negative workloads.  [Error] is reserved for
    syntax errors. *)

val estimate_string : ?scheme:Estimator.scheme -> t -> string -> (float, string) result

val exact_string : t -> string -> (int, string) result

val pp_twig : t -> Tl_twig.Twig.t -> string
(** Render a twig with the document's tag names. *)

val parse_xpath : t -> string -> (bool * Tl_twig.Twig.t, string) result
(** Parse the supported XPath fragment (see {!Tl_twig.Xpath}); the boolean
    is the anchored flag ([/site/...] vs [//site/...]). *)

val estimate_xpath : ?scheme:Estimator.scheme -> t -> string -> (float, string) result
(** Estimate an XPath query.  Anchored queries whose first tag is not the
    document root estimate to 0; anchored queries on the root tag divide by
    the tag's occurrence count (exact whenever the root tag occurs once,
    the normal case). *)

val exact_xpath : t -> string -> (int, string) result
(** Exact count of an XPath query; anchoring is honoured exactly (matches
    rooted at the document root only). *)

val prune : ?scheme:Estimator.scheme -> t -> delta:float -> t
(** Replace the summary with its δ-pruned version (see {!Derivable});
    for lossless δ=0 pruning, pass the scheme you will estimate with. *)

val add_document : ?pool:Tl_util.Pool.t -> t -> Tl_tree.Data_tree.t -> t
(** Incremental maintenance: fold another document's statistics into the
    summary.  The new document is re-labeled into this instance's label
    space by tag name (new tags are added); exact counting still runs
    against the original tree only.  Counts become forest-level statistics
    — the sum over both documents — matching what mining the concatenated
    forest would produce. *)
