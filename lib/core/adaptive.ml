module Twig = Tl_twig.Twig

(* The feedback cache keys on interned canonical ids and keeps recency in
   Tl_util.Lru's intrusive list, so observe-time eviction is O(1) instead
   of the seed's full-table scan for the oldest entry.  The plan cache
   (Plan_cache) sits on the same structure — one eviction mechanism, one
   stats shape, shared between the two workload-adaptive layers. *)
module Cache = Tl_util.Lru.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

type t = { tl : Treelattice.t; cache : int Cache.t }

let create ?(capacity = 256) tl =
  if capacity < 1 then invalid_arg "Adaptive.create: capacity must be >= 1";
  { tl; cache = Cache.create ~capacity }

let base t = t.tl

let lookup t key = Option.map float_of_int (Cache.find t.cache (Twig.Key.id key))

let observe t twig count =
  if count < 0 then invalid_arg "Adaptive.observe: negative count";
  let key = Twig.key twig in
  (* The lattice already stores every pattern within its depth exactly;
     caching those would only waste capacity. *)
  if Twig.Key.size key > Tl_lattice.Summary.k (Treelattice.summary t.tl) then
    Cache.add t.cache (Twig.Key.id key) count

let observe_exact t twig =
  let count = Treelattice.exact t.tl twig in
  observe t twig count;
  count

let estimate ?(scheme = Treelattice.default_scheme) t twig =
  Estimator.estimate ~extra:(lookup t) (Treelattice.summary t.tl) scheme twig

let estimate_interval t twig =
  Estimator.estimate_interval ~extra:(lookup t) (Treelattice.summary t.tl) twig

let cached_patterns t = Cache.size t.cache

let hit_count t = (Cache.stats t.cache).Cache.hits

type stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

let stats t =
  let s = Cache.stats t.cache in
  {
    size = s.Cache.size;
    capacity = s.Cache.capacity;
    hits = s.Cache.hits;
    misses = s.Cache.misses;
    evictions = s.Cache.evictions;
  }
