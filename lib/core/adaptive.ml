module Twig = Tl_twig.Twig

type entry = { count : int; mutable last_used : int }

type t = {
  tl : Treelattice.t;
  capacity : int;
  cache : (int, entry) Hashtbl.t;  (* keyed by Twig.Key.id *)
  mutable clock : int;
  mutable hits : int;
}

let create ?(capacity = 256) tl =
  if capacity < 1 then invalid_arg "Adaptive.create: capacity must be >= 1";
  { tl; capacity; cache = Hashtbl.create capacity; clock = 0; hits = 0 }

let base t = t.tl

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let lookup t key =
  match Hashtbl.find_opt t.cache (Twig.Key.id key) with
  | Some entry ->
    entry.last_used <- tick t;
    t.hits <- t.hits + 1;
    Some (float_of_int entry.count)
  | None -> None

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun key entry ->
      match !victim with
      | Some (_, oldest) when oldest <= entry.last_used -> ()
      | _ -> victim := Some (key, entry.last_used))
    t.cache;
  match !victim with Some (key, _) -> Hashtbl.remove t.cache key | None -> ()

let observe t twig count =
  if count < 0 then invalid_arg "Adaptive.observe: negative count";
  let key = Twig.key twig in
  (* The lattice already stores every pattern within its depth exactly;
     caching those would only waste capacity. *)
  if Twig.size (Twig.Key.twig key) > Tl_lattice.Summary.k (Treelattice.summary t.tl) then begin
    let id = Twig.Key.id key in
    if (not (Hashtbl.mem t.cache id)) && Hashtbl.length t.cache >= t.capacity then evict_lru t;
    Hashtbl.replace t.cache id { count; last_used = tick t }
  end

let observe_exact t twig =
  let count = Treelattice.exact t.tl twig in
  observe t twig count;
  count

let estimate ?(scheme = Treelattice.default_scheme) t twig =
  Estimator.estimate ~extra:(lookup t) (Treelattice.summary t.tl) scheme twig

let estimate_interval t twig =
  Estimator.estimate_interval ~extra:(lookup t) (Treelattice.summary t.tl) twig

let cached_patterns t = Hashtbl.length t.cache

let hit_count t = t.hits
