module Twig = Tl_twig.Twig

(* The feedback cache keys on interned canonical ids and keeps recency in
   Tl_util.Lru's intrusive list, so observe-time eviction is O(1) instead
   of the seed's full-table scan for the oldest entry.  The plan cache
   (Plan_cache) sits on the same structure — one eviction mechanism, one
   stats shape, shared between the two workload-adaptive layers. *)
module Cache = Tl_util.Lru.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

(* Every cache operation — including the recency splice inside a read —
   runs under [lock].  [Lru.find] mutates the intrusive list and the
   hit/miss counters, so an unguarded concurrent [lookup] can corrupt
   links or lose counts; serving batches evaluate across a domain pool
   with [Engine.batch ~extra:(lookup a)], which makes the safe-by-default
   contract non-negotiable.  A single mutex (rather than Plan_cache's
   mutex-plus-DLS split) is the right shape here: a feedback lookup is a
   handful of int hashes and pointer splices, far too little work to
   amortize per-domain shards, and the critical section never allocates
   on the hit path. *)
type t = { tl : Treelattice.t; lock : Mutex.t; cache : int Cache.t }

let create ?(capacity = 256) tl =
  if capacity < 1 then invalid_arg "Adaptive.create: capacity must be >= 1";
  { tl; lock = Mutex.create (); cache = Cache.create ~capacity }

let base t = t.tl

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let lookup t key =
  let id = Twig.Key.id key in
  locked t (fun () -> Option.map float_of_int (Cache.find t.cache id))

let observe t twig count =
  if count < 0 then invalid_arg "Adaptive.observe: negative count";
  let key = Twig.key twig in
  (* The lattice already stores every pattern within its depth exactly;
     caching those would only waste capacity. *)
  if Twig.Key.size key > Tl_lattice.Summary.k (Treelattice.summary t.tl) then begin
    let id = Twig.Key.id key in
    locked t (fun () -> Cache.add t.cache id count)
  end

let observe_exact t twig =
  let count = Treelattice.exact t.tl twig in
  observe t twig count;
  count

let estimate ?(scheme = Treelattice.default_scheme) t twig =
  Estimator.estimate ~extra:(lookup t) (Treelattice.summary t.tl) scheme twig

let estimate_interval t twig =
  Estimator.estimate_interval ~extra:(lookup t) (Treelattice.summary t.tl) twig

let cached_patterns t = locked t (fun () -> Cache.size t.cache)

let hit_count t = locked t (fun () -> (Cache.stats t.cache).Cache.hits)

type stats = { size : int; capacity : int; hits : int; misses : int; evictions : int }

let stats t =
  let s = locked t (fun () -> Cache.stats t.cache) in
  {
    size = s.Cache.size;
    capacity = s.Cache.capacity;
    hits = s.Cache.hits;
    misses = s.Cache.misses;
    evictions = s.Cache.evictions;
  }

let check_integrity t = locked t (fun () -> Cache.validate t.cache)
