module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Metrics = Tl_obs.Metrics

(* Plans are keyed on (scheme, interned canonical id): two queries that
   canonicalize to the same twig share one compiled program per scheme. *)
module K = struct
  type t = Estimator.scheme * int

  let equal (s1, i1) (s2, i2) = Int.equal i1 i2 && s1 = s2

  let hash = Hashtbl.hash
end

module Shared = Tl_util.Lru.Make (K)
module Tbl = Hashtbl.Make (K)

(* Each domain reads through a private unsynchronized shard first, so the
   steady-state path of a warm batch never touches the mutex.  A shard is
   a plain bounded hash table, not an LRU: when it outgrows its capacity
   it is dropped wholesale and refills from the shared table.  A shard may
   briefly serve a plan the shared LRU has already evicted — harmless,
   since plans are immutable and eviction is about memory, not
   correctness. *)
type shard = { stbl : Estimator.Plan.t Tbl.t; mutable local_hits : int }

type t = {
  summary : Summary.t;
  epoch : int;
  shard_capacity : int;
  mutex : Mutex.t;
  shared : Estimator.Plan.t Shared.t;  (* guarded by [mutex] *)
  mutable shards : shard list;  (* guarded by [mutex]; for stats only *)
  shard_key : shard Domain.DLS.key;
}

let create ?(capacity = 1024) ?shard_capacity ?(epoch = 0) summary =
  if capacity < 1 then invalid_arg "Plan_cache.create: capacity must be >= 1";
  let shard_capacity = match shard_capacity with Some c -> max 1 c | None -> capacity in
  let mutex = Mutex.create () in
  let rec t =
    lazy
      {
        summary;
        epoch;
        shard_capacity;
        mutex;
        shared = Shared.create ~capacity;
        shards = [];
        shard_key =
          Domain.DLS.new_key (fun () ->
              let shard = { stbl = Tbl.create 64; local_hits = 0 } in
              let t = Lazy.force t in
              Mutex.lock t.mutex;
              t.shards <- shard :: t.shards;
              Mutex.unlock t.mutex;
              shard);
      }
  in
  Lazy.force t

let summary t = t.summary

let epoch t = t.epoch

(* Every plan leaving the cache must carry the stamp of the cache's own
   summary: a violation means a plan compiled under another summary leaked
   in (or the cache was rebound), which would silently serve estimates for
   the wrong dataset.  The check is one int compare per lookup. *)
let check_plan t plan =
  assert (Estimator.Plan.summary_stamp plan = Summary.stamp t.summary);
  plan

let store_local t shard k plan =
  if Tbl.length shard.stbl >= t.shard_capacity then Tbl.reset shard.stbl;
  Tbl.replace shard.stbl k plan

(* Record shared-LRU displacements into the metrics stream as they happen
   (the LRU itself only keeps a cumulative counter). *)
let add_shared t k plan =
  let before = (Shared.stats t.shared).Shared.evictions in
  Shared.add t.shared k plan;
  let displaced = (Shared.stats t.shared).Shared.evictions - before in
  if displaced > 0 then Metrics.add "plan_cache.evictions" displaced

let plan_key_hit t scheme key =
  let k = (scheme, Twig.Key.id key) in
  let shard = Domain.DLS.get t.shard_key in
  match Tbl.find_opt shard.stbl k with
  | Some plan ->
    shard.local_hits <- shard.local_hits + 1;
    Metrics.incr "plan_cache.hits";
    (check_plan t plan, true)
  | None ->
    Mutex.lock t.mutex;
    let shared = Shared.find t.shared k in
    (match shared with
    | Some plan ->
      Mutex.unlock t.mutex;
      Metrics.incr "plan_cache.hits";
      store_local t shard k plan;
      (check_plan t plan, true)
    | None ->
      (* Compile outside the lock: concurrent first requests for the same
         query may compile twice, but the loser's plan is dropped in favor
         of the interned one, so every caller shares a single program. *)
      Mutex.unlock t.mutex;
      Metrics.incr "plan_cache.misses";
      let plan = Estimator.Plan.compile t.summary scheme (Twig.Key.twig key) in
      Mutex.lock t.mutex;
      let plan =
        match Shared.peek t.shared k with
        | Some existing ->
          Shared.add t.shared k existing;
          existing
        | None ->
          add_shared t k plan;
          plan
      in
      Mutex.unlock t.mutex;
      store_local t shard k plan;
      (check_plan t plan, false))

let plan_key t scheme key = fst (plan_key_hit t scheme key)

let plan t scheme twig = plan_key t scheme (Twig.key (Twig.canonicalize twig))

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  local_hits : int;
}

let stats t =
  Mutex.lock t.mutex;
  let s = Shared.stats t.shared in
  let local_hits = List.fold_left (fun acc (sh : shard) -> acc + sh.local_hits) 0 t.shards in
  Mutex.unlock t.mutex;
  {
    size = s.Shared.size;
    capacity = s.Shared.capacity;
    hits = s.Shared.hits + local_hits;
    misses = s.Shared.misses;
    evictions = s.Shared.evictions;
    local_hits;
  }
