(** A domain-sharded cache of compiled estimation plans.

    Serving workloads repeat queries; compiling a plan costs as much as
    the direct estimate it replaces, so the win is entirely in reuse.
    The cache interns plans in a shared {!Tl_util.Lru} table — the same
    O(1) eviction structure behind {!Adaptive}, so the two adaptive
    layers age their state under one coordinated policy — and fronts it
    with a private per-domain read-through shard in domain-local storage:
    a warm lookup is one unsynchronized hash probe, no lock, no atomics.

    Hits, misses (= compiles), and evictions are published to
    {!Tl_obs.Metrics} under [plan_cache.*]. *)

type t

val create : ?capacity:int -> ?shard_capacity:int -> ?epoch:int -> Tl_lattice.Summary.t -> t
(** A cache of at most [capacity] interned plans (default 1024; raises
    [Invalid_argument] below 1) over a fixed summary.  Each domain's
    read-through shard holds at most [shard_capacity] entries (default:
    [capacity]) and refills from the shared table after being dropped.
    [epoch] (default 0) tags the cache with the serving epoch of the
    summary it wraps; the cache itself only reports it back via {!epoch}.
    Every plan served is asserted (in debug builds) to carry the
    {!Tl_lattice.Summary.stamp} of this cache's summary, so a plan
    compiled against another summary can never leak through. *)

val summary : t -> Tl_lattice.Summary.t

val epoch : t -> int
(** The serving epoch this cache was created for. *)

val plan : t -> Estimator.scheme -> Tl_twig.Twig.t -> Estimator.Plan.t
(** The compiled plan for the query under the scheme: served from this
    domain's shard, then the shared table, compiled only on a true miss.
    Safe to call concurrently from any domain; racing first requests may
    compile redundantly but always return the single interned plan. *)

val plan_key : t -> Estimator.scheme -> Tl_twig.Twig.Key.t -> Estimator.Plan.t
(** {!plan} for an already-interned canonical key (skips
    re-canonicalization — the batch engine's path). *)

val plan_key_hit : t -> Estimator.scheme -> Tl_twig.Twig.Key.t -> Estimator.Plan.t * bool
(** {!plan_key} plus the cache-hit flag the serving audit log records:
    [true] when the plan was served from a shard or the shared table,
    [false] when this call compiled it. *)

type stats = {
  size : int;  (** plans interned in the shared table *)
  capacity : int;
  hits : int;  (** lookups served without compiling (shard or shared) *)
  misses : int;  (** lookups that compiled *)
  evictions : int;  (** plans displaced from the shared table *)
  local_hits : int;  (** the subset of [hits] served lock-free by a shard *)
}

val stats : t -> stats
(** Aggregated counters.  Takes the shared-table lock; call between
    batches, not inside one. *)
