module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Summary = Tl_lattice.Summary

type t = { tree : Data_tree.t; ctx : Match_count.ctx; summary : Summary.t }

let of_summary tree summary = { tree; ctx = Match_count.create_ctx tree; summary }

let build ?pool ?(k = 4) tree = of_summary tree (Summary.build ?pool ~k tree)

let tree t = t.tree

let summary t = t.summary

let k t = Summary.k t.summary

let default_scheme = Estimator.Recursive_voting

let estimate ?(scheme = default_scheme) t twig = Estimator.estimate t.summary scheme twig

let estimate_interval t twig = Estimator.estimate_interval t.summary twig

let exact t twig = Match_count.selectivity t.ctx twig

let parse_query t query =
  (* Unknown tags are interned fresh: they occur nowhere, so the twig has
     true selectivity 0 and every estimator correctly reports ~0 for it. *)
  Tl_twig.Twig_parse.parse_twig ~intern:(fun tag -> Some (Data_tree.intern_label t.tree tag)) query

let estimate_string ?scheme t query = Result.map (estimate ?scheme t) (parse_query t query)

let exact_string t query = Result.map (exact t) (parse_query t query)

let pp_twig t twig = Twig.pp ~names:(Data_tree.label_name t.tree) twig

(* --- XPath frontend ------------------------------------------------------ *)

let parse_xpath t query =
  match Tl_twig.Xpath.parse query with
  | Error msg -> Error msg
  | Ok xp ->
    (match Tl_twig.Xpath.to_twig ~intern:(fun tag -> Some (Data_tree.intern_label t.tree tag)) xp with
    | Ok twig -> Ok (xp.Tl_twig.Xpath.anchored, twig)
    | Error msg -> Error msg)

let root_label t = Data_tree.label t.tree (Data_tree.root t.tree)

let estimate_xpath ?scheme t query =
  match parse_xpath t query with
  | Error _ as e -> e |> Result.map (fun _ -> 0.0)
  | Ok (anchored, twig) ->
    if not anchored then Ok (estimate ?scheme t twig)
    else if twig.Twig.label <> root_label t then Ok 0.0
    else begin
      (* Anchored: only matches rooted at THE root count.  Assuming matches
         spread uniformly over root-labeled nodes (exact when the root tag
         occurs once, the usual case for XML). *)
      let occurrences = Array.length (Data_tree.nodes_with_label t.tree (root_label t)) in
      Ok (estimate ?scheme t twig /. float_of_int (max 1 occurrences))
    end

let exact_xpath t query =
  match parse_xpath t query with
  | Error msg -> Error msg
  | Ok (anchored, twig) ->
    if anchored then Ok (Match_count.selectivity_rooted t.ctx twig (Data_tree.root t.tree))
    else Ok (exact t twig)

let prune ?scheme t ~delta = { t with summary = Derivable.prune ?scheme t.summary ~delta }

let add_document ?pool t other =
  let remap = Array.map (Data_tree.intern_label t.tree) (Data_tree.label_names other) in
  let mined = Tl_mining.Miner.mine ?pool (Match_count.create_ctx other) ~max_size:(k t) in
  let remapped =
    List.map
      (fun (twig, count) -> (Twig.canonicalize (Twig.map_labels (fun l -> remap.(l)) twig), count))
      (Tl_mining.Miner.all mined)
  in
  let other_summary = Summary.of_patterns ~k:(k t) ~complete:true remapped in
  { t with summary = Summary.merge t.summary other_summary }
