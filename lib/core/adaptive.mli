(** Workload-adaptive estimation — the paper's third future-work item
    ("adapt TreeLattice, in a manner similar to XPathLearner, where
    information learned from on-line workload can guide what is to be
    maintained in the summary structure").

    The adaptive layer keeps a bounded LRU cache of {e exact} counts for
    twigs the workload has already answered (query feedback).  Estimation
    consults the cache before the lattice at {e every} decomposition step,
    so an observed large twig also anchors estimates of its supertwigs and
    of other twigs that decompose through it.

    {2 Thread safety}

    The cache is domain-safe by default: every operation that touches the
    LRU — {!lookup}, {!observe}, {!estimate}, {!cached_patterns},
    {!hit_count}, {!stats} — runs under an internal lock, and each such
    operation is linearizable.  In particular
    [Tl_serve.Engine.batch ~pool ~extra:(lookup a)] over a multi-domain
    pool needs no caller-side synchronization; concurrent lookups contend
    only for the few pointer splices of a recency bump.  The one
    exception is {!observe_exact}, whose exact count runs through the
    base {!Treelattice.t}'s shared counting context: call it from the
    domain that owns the treelattice (typically the feedback writer),
    never from inside a parallel map. *)

type t

val create : ?capacity:int -> Treelattice.t -> t
(** Wrap a TreeLattice instance with a feedback cache of at most
    [capacity] patterns (default 256).  Raises [Invalid_argument] when
    [capacity < 1]. *)

val base : t -> Treelattice.t

val estimate : ?scheme:Estimator.scheme -> t -> Tl_twig.Twig.t -> float
(** Like {!Treelattice.estimate}, with cached counts taking precedence at
    every lookup. *)

val estimate_interval : t -> Tl_twig.Twig.t -> Estimator.interval
(** Like {!Treelattice.estimate_interval}, with the feedback cache threaded
    into both the votes and the best estimate — the interval always
    contains what {!estimate} returns. *)

val lookup : t -> Tl_twig.Twig.Key.t -> float option
(** The cache as an {!Estimator.estimate} [?extra] source: the cached exact
    count of a pattern (bumping its recency), or [None].  Exposed so other
    drivers can compose the cache with their own estimation calls — safe
    from any domain, including the workers of a
    [Tl_serve.Engine.batch ~pool] evaluation. *)

val observe : t -> Tl_twig.Twig.t -> int -> unit
(** Record the true count of a query (e.g. after executing it).  Counts
    for patterns already inside the lattice are not cached — the summary
    has them exactly.  Safe from any domain.  Raises [Invalid_argument] on
    a negative count. *)

val observe_exact : t -> Tl_twig.Twig.t -> int
(** Compute the exact count against the base document, record it, and
    return it — the "execute the query, learn from the answer" loop.
    {e Not} domain-safe (see the thread-safety note above): the exact
    count shares the treelattice's counting buffers. *)

val cached_patterns : t -> int

val hit_count : t -> int
(** Number of estimate-time lookups answered by the cache so far. *)

type stats = {
  size : int;  (** patterns currently cached *)
  capacity : int;
  hits : int;  (** lookups answered by the cache *)
  misses : int;  (** lookups that fell through to the lattice *)
  evictions : int;  (** patterns displaced since creation *)
}

val stats : t -> stats
(** Counters of the underlying {!Tl_util.Lru} cache — the same shape
    {!Plan_cache.stats} reports, so serving dashboards can watch both
    adaptive layers with one scrape.  The snapshot is atomic: it is taken
    under the cache lock, so [hits + misses] equals the number of
    {!lookup} calls that have completed. *)

val check_integrity : t -> (unit, string) result
(** {!Tl_util.Lru.validate} under the cache lock: [Ok ()] unless the
    intrusive recency list has been corrupted.  With the internal lock
    this never fails; the concurrency stress tests assert it after
    hammering the cache from a domain pool — the check that catches the
    pre-lock unsynchronized design. *)
