(** Explain traces: the full decomposition behind one estimate.

    {!run} estimates a twig through {!Estimator.estimate} with a probe
    attached and reconstructs everything the estimator did — every
    sub-twig lookup (hit against the summary, the [?extra] source, a
    known true zero, or a further decomposition), every evaluated
    leaf-pair with its numerator/denominator estimates, every fixed-size
    cover step, and the first-level voting spread.  The recorded numbers
    are the estimator's own (one implementation, observed — not a
    re-derivation), so [estimate] here always equals what
    {!Estimator.estimate} returns for the same inputs.

    Sub-twigs are keyed by canonical encoding; because the estimator
    memoizes per call, the trace is a DAG — a shared sub-twig appears
    once and is referenced by later steps.  Render with {!to_text} or
    {!Tl_viz.Dot.explain}. *)

type source =
  | Extra_cache  (** served by the [?extra] exact-count source *)
  | Summary_hit  (** resident in the lattice summary *)
  | True_zero  (** missing at a level the summary is complete for *)
  | Decomposed  (** estimated through further decomposition *)
  | Not_evaluated  (** referenced by a short-circuited pair, never needed *)

type pair = {
  t1 : string;
  t2 : string;
  cap : string;
  twin : bool;
  e1 : float;
  e2 : float;
  ec : float;  (** [nan] when short-circuiting skipped the estimate *)
  value : float;
}

type cover_step = {
  block : string;
  overlap : string option;  (** [None] for the first block *)
  twins : int;
  num : float;
  den : float;
  running : float;  (** running product after this step; [0.] = short-circuit *)
}

type node = {
  twig : Tl_twig.Twig.t;
  size : int;
  mutable source : source;
  mutable value : float;
  mutable pairs : pair list;  (** non-empty only for [Decomposed] nodes *)
}

type t = {
  scheme : Estimator.scheme;
  root_key : string;
  estimate : float;  (** identical to [Estimator.estimate] on the same inputs *)
  nodes : (string, node) Hashtbl.t;  (** every sub-twig touched, by canonical key *)
  order : string list;  (** keys in first-touch order (deterministic) *)
  cover : cover_step list;  (** fixed-size schemes only *)
  votes : float list;  (** {!Estimator.first_level_votes} of the root *)
  summary_hits : int;
  extra_hits : int;
  true_zeros : int;
  decompositions : int;
}

val run :
  ?extra:(string -> float option) ->
  Tl_lattice.Summary.t ->
  Estimator.scheme ->
  Tl_twig.Twig.t ->
  t

val node : t -> string -> node option

val to_text : names:(int -> string) -> t -> string
(** Indented decomposition tree (shared sub-twigs expanded once), cover
    steps for fixed-size schemes, the voting spread, and lookup totals. *)
