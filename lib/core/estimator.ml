module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary
module Metrics = Tl_obs.Metrics

type scheme =
  | Recursive
  | Recursive_voting
  | Fixed_size
  | Fixed_size_voting of int

let all_schemes = [ Recursive; Recursive_voting; Fixed_size; Fixed_size_voting 8 ]

let scheme_name = function
  | Recursive -> "recursive"
  | Recursive_voting -> "recursive+voting"
  | Fixed_size -> "fixed-size"
  | Fixed_size_voting n -> Printf.sprintf "fixed-size+voting(%d)" n

(* --- estimation probes -------------------------------------------------- *)

(* A probe observes every step the estimator takes without changing a
   single float: lookups (with their outcome), each evaluated
   decomposition pair, the value a decomposed key settles on, and each
   fixed-size cover step.  [Explain] reconstructs the full decomposition
   DAG from these events; estimation with [probe = None] pays only a
   [match] per event site. *)

type lookup_result =
  | Found_extra of float
  | Found_summary of int
  | Assumed_zero
  | Decomposing

type probe = {
  on_lookup : string -> lookup_result -> unit;
  on_pair :
    parent:string ->
    t1:string ->
    t2:string ->
    cap:string ->
    twin:bool ->
    e1:float ->
    e2:float ->
    ec:float ->
    value:float ->
    unit;
  on_value : string -> float -> unit;
  on_cover_step :
    block:string -> overlap:string option -> twins:int -> num:float -> den:float -> acc:float -> unit;
}

let lookup_metric = function
  | Found_extra _ -> Metrics.incr "estimator.extra_hits"
  | Found_summary _ -> Metrics.incr "estimator.summary_hits"
  | Assumed_zero -> Metrics.incr "estimator.true_zeros"
  | Decomposing -> Metrics.incr "estimator.decompositions"

let probe_lookup probe key result =
  Metrics.incr "estimator.lookups";
  lookup_metric result;
  match probe with None -> () | Some p -> p.on_lookup key result

(* --- recursive decomposition (Fig. 4) ---------------------------------- *)

let unordered_pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

(* All node indices except the listed ones. *)
let nodes_except (ix : Twig.indexed) dropped =
  let n = Array.length ix.node_labels in
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (if List.mem i dropped then acc else i :: acc)
  in
  collect (n - 1) []

(* [extra] is an auxiliary exact-count source consulted before the summary
   (the workload-adaptive cache of {!Adaptive}); [fun _ -> None] for the
   plain estimators. *)
let recursive_estimate ?(extra = fun _ -> None) ?probe ~voting summary twig =
  (* Memoized on interned canonical ids: the per-call table hashes ints,
     and repeat sub-twigs cost one cached [Twig.key] field read. *)
  let memo : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let complete = Summary.is_complete summary in
  let k = Summary.k summary in
  let rec est twig =
    let key = Twig.key twig in
    let id = Twig.Key.id key in
    match Hashtbl.find_opt memo id with
    | Some v -> v
    | None ->
      let v = compute (Twig.Key.twig key) key in
      Hashtbl.replace memo id v;
      v
  and compute twig key =
    match (extra key : float option) with
    | Some known ->
      probe_lookup probe (Twig.Key.encode key) (Found_extra known);
      known
    | None ->
    match Summary.find_key summary key with
    | Some count ->
      probe_lookup probe (Twig.Key.encode key) (Found_summary count);
      float_of_int count
    | None ->
      let n = Twig.Key.size key in
      (* Levels 1 and 2 are complete in every summary (pruning keeps them),
         so a miss there is a true zero; likewise any level <= k of a
         complete summary. *)
      if n <= 2 || (complete && n <= k) then begin
        probe_lookup probe (Twig.Key.encode key) Assumed_zero;
        0.0
      end
      else begin
        probe_lookup probe (Twig.Key.encode key) Decomposing;
        let ix = Twig.index twig in
        let removable = Twig.degree_one ix in
        let pairs = unordered_pairs removable in
        let pairs =
          match (voting, pairs) with
          | true, _ | _, [] -> pairs
          | false, first :: _ -> [ first ]
        in
        let value_of (u, u') =
          (* [remove] = [induced] of all-but-one for a degree-1 node, minus
             the node-list and connectivity-check overhead; same canonical
             result, hence the same key and the same floats. *)
          let t1 = Twig.remove ix u in
          let t2 = Twig.remove ix u' in
          (* Theorem 1 assumes the two grown edges are distinct.  When
             u and u' are same-labeled siblings the two edges are the
             SAME edge type, and matches must place them injectively:
             a T-intersection match with i candidate children yields
             i*(i-1) ordered pairs, not i^2, so the expectation gets
             an injectivity correction of -E[i] per match:
             sigma(T) ~ sigma(T1)^2/sigma(Tcap) - sigma(T1). *)
          let twin_edges =
            ix.parents.(u) >= 0
            && ix.parents.(u) = ix.parents.(u')
            && ix.node_labels.(u) = ix.node_labels.(u')
          in
          let finish ~e1 ~e2 ~ec value =
            (match probe with
            | None -> ()
            | Some p ->
              let cap = Twig.induced ix (nodes_except ix [ u; u' ]) in
              p.on_pair ~parent:(Twig.Key.encode key) ~t1:(Twig.encode t1) ~t2:(Twig.encode t2)
                ~cap:(Twig.encode cap) ~twin:twin_edges ~e1 ~e2 ~ec ~value);
            value
          in
          let e1 = est t1 in
          if e1 = 0.0 then finish ~e1 ~e2:Float.nan ~ec:Float.nan 0.0
          else begin
            let e2 = est t2 in
            if e2 = 0.0 then finish ~e1 ~e2 ~ec:Float.nan 0.0
            else begin
              let cap = Twig.induced ix (nodes_except ix [ u; u' ]) in
              let ec = est cap in
              if ec <= 0.0 then finish ~e1 ~e2 ~ec 0.0
              else if twin_edges then finish ~e1 ~e2 ~ec (Float.max 0.0 ((e1 *. e2 /. ec) -. e1))
              else finish ~e1 ~e2 ~ec (e1 *. e2 /. ec)
            end
          end
        in
        match pairs with
        | [] -> 0.0 (* unreachable: any twig of size >= 2 has two degree-1 nodes *)
        | _ ->
          let total = List.fold_left (fun acc pair -> acc +. value_of pair) 0.0 pairs in
          let v = total /. float_of_int (List.length pairs) in
          (match probe with None -> () | Some p -> p.on_value (Twig.Key.encode key) v);
          v
      end
  in
  est twig

(* --- fixed-size decomposition (Fig. 5) --------------------------------- *)

(* Build one cover of [twig]'s nodes by k-subtrees.  [choose] picks among
   the eligible fill nodes when the ancestor chain of the newly covered node
   is shorter than k-1 (deterministic: smallest preorder index).

   Each non-first step also records its injectivity debt [twins]: the number
   of already-covered nodes outside the overlap that share the new node's
   (parent, label) edge.  The chain-rule ratio sigma(B)/sigma(I) estimates
   the expected number of such children {e given} the overlap context, but
   [twins] of them are already consumed by earlier steps and cannot host the
   new node injectively, so the estimator subtracts them (the fixed-size
   analogue of the recursive scheme's twin-edge correction). *)
let cover_with ~choose (ix : Twig.indexed) ~k =
  let n = Array.length ix.node_labels in
  assert (n > k);
  let prefix = List.init k (fun i -> i) in
  let first = (Twig.induced ix prefix, None, 0) in
  let rest = ref [] in
  for i = k to n - 1 do
    let in_overlap = Array.make n false in
    let overlap_size = ref 0 in
    let add j =
      if not in_overlap.(j) then begin
        in_overlap.(j) <- true;
        incr overlap_size
      end
    in
    (* Ancestor chain of i first: everything before i in preorder is already
       covered, so any node < i is fair game. *)
    let rec climb j = if j >= 0 && !overlap_size < k - 1 then begin add j; climb ix.parents.(j) end in
    climb ix.parents.(i);
    (* Fill with covered nodes adjacent to the overlap. *)
    while !overlap_size < k - 1 do
      let eligible = ref [] in
      for j = i - 1 downto 0 do
        if (not in_overlap.(j)) && ix.parents.(j) >= 0 && in_overlap.(ix.parents.(j)) then
          eligible := j :: !eligible
      done;
      match !eligible with
      | [] ->
        (* Cannot happen: the covered prefix {0..i-1} is connected and has
           at least k-1 > overlap nodes. *)
        invalid_arg "Estimator.cover: internal cover construction failure"
      | candidates -> add (choose candidates)
    done;
    let overlap_nodes = List.filter (fun j -> in_overlap.(j)) (List.init n (fun j -> j)) in
    let twins = ref 0 in
    for j = 0 to i - 1 do
      if
        (not in_overlap.(j))
        && ix.parents.(j) = ix.parents.(i)
        && ix.node_labels.(j) = ix.node_labels.(i)
      then incr twins
    done;
    let block = Twig.induced ix (i :: overlap_nodes) in
    let overlap = Twig.induced ix overlap_nodes in
    rest := (block, Some overlap, !twins) :: !rest
  done;
  first :: List.rev !rest

let cover twig ~k =
  let twig = Twig.canonicalize twig in
  if Twig.size twig <= k then invalid_arg "Estimator.cover: twig not larger than k";
  List.map (fun (b, o, _) -> (b, o)) (cover_with ~choose:List.hd (Twig.index twig) ~k)

(* Stored count of a small pattern, falling back to recursive decomposition
   when a pruned summary no longer holds it (keeps Lemma 5). *)
let small_estimate ?(extra = fun _ -> None) ?probe summary twig =
  let key = Twig.key twig in
  match extra key with
  | Some known ->
    probe_lookup probe (Twig.Key.encode key) (Found_extra known);
    known
  | None -> (
    match Summary.find_key summary key with
    | Some c ->
      probe_lookup probe (Twig.Key.encode key) (Found_summary c);
      float_of_int c
    | None ->
      if Summary.is_complete summary then begin
        probe_lookup probe (Twig.Key.encode key) Assumed_zero;
        0.0
      end
      else recursive_estimate ~extra ?probe ~voting:false summary twig)

let estimate_of_cover ?extra ?probe summary blocks =
  let step ~block ~overlap ~twins ~num ~den ~acc =
    match probe with
    | None -> ()
    | Some p ->
      p.on_cover_step ~block:(Twig.encode block)
        ~overlap:(Option.map Twig.encode overlap)
        ~twins ~num ~den ~acc
  in
  let rec go acc = function
    | [] -> acc
    | (block, overlap, twins) :: rest ->
      if acc = 0.0 then 0.0
      else begin
        let num = small_estimate ?extra ?probe summary block in
        if num = 0.0 then begin
          step ~block ~overlap ~twins ~num ~den:Float.nan ~acc:0.0;
          0.0
        end
        else begin
          match overlap with
          | None ->
            step ~block ~overlap ~twins ~num ~den:Float.nan ~acc:(acc *. num);
            go (acc *. num) rest
          | Some i ->
            let den = small_estimate ?extra ?probe summary i in
            if den <= 0.0 then begin
              step ~block ~overlap ~twins ~num ~den ~acc:0.0;
              0.0
            end
            else begin
              let multiplier = (num /. den) -. float_of_int twins in
              if multiplier <= 0.0 then begin
                step ~block ~overlap ~twins ~num ~den ~acc:0.0;
                0.0
              end
              else begin
                step ~block ~overlap ~twins ~num ~den ~acc:(acc *. multiplier);
                go (acc *. multiplier) rest
              end
            end
        end
      end
  in
  go 1.0 blocks

let fixed_size_estimate ?extra ?probe ?samples summary twig =
  let k = Summary.k summary in
  let twig = Twig.canonicalize twig in
  if Twig.Key.size (Twig.key twig) <= k then small_estimate ?extra ?probe summary twig
  else begin
    let ix = Twig.index twig in
    match samples with
    | None -> estimate_of_cover ?extra ?probe summary (cover_with ~choose:List.hd ix ~k)
    | Some count ->
      let count = max 1 count in
      (* Deterministic seed per query so estimates are reproducible. *)
      let rng = Tl_util.Xorshift.create (Twig.hash twig) in
      let one () =
        let choose candidates = List.nth candidates (Tl_util.Xorshift.int rng (List.length candidates)) in
        estimate_of_cover ?extra ?probe summary (cover_with ~choose ix ~k)
      in
      let total = ref 0.0 in
      for _ = 1 to count do
        total := !total +. one ()
      done;
      !total /. float_of_int count
  end

let first_level_votes ?(extra = fun _ -> None) summary twig =
  let key = Twig.key twig in
  let twig = Twig.Key.twig key in
  (* The seed dropped [extra] here, so the vote spread (and hence
     {!estimate_interval}) could exclude the value [estimate ~extra]
     returns.  The feedback source must win at the top level and inside
     every sub-estimate, exactly as in {!recursive_estimate}. *)
  match extra key with
  | Some known -> [ known ]
  | None -> (
    match Summary.find_key summary key with
    | Some count -> [ float_of_int count ]
    | None ->
      let n = Twig.Key.size key in
      if n <= 2 || (Summary.is_complete summary && n <= Summary.k summary) then [ 0.0 ]
      else begin
        let ix = Twig.index twig in
        let pairs = unordered_pairs (Twig.degree_one ix) in
        (* Each vote resolves its sub-estimates deterministically, isolating
           the effect of the top-level pair choice. *)
        List.map
          (fun (u, u') ->
            let t1 = Twig.induced ix (nodes_except ix [ u ]) in
            let t2 = Twig.induced ix (nodes_except ix [ u' ]) in
            let cap = Twig.induced ix (nodes_except ix [ u; u' ]) in
            let e1 = recursive_estimate ~extra ~voting:false summary t1 in
            let e2 = recursive_estimate ~extra ~voting:false summary t2 in
            let ec = recursive_estimate ~extra ~voting:false summary cap in
            if e1 = 0.0 || e2 = 0.0 || ec <= 0.0 then 0.0
            else begin
              let twin_edges =
                ix.parents.(u) >= 0
                && ix.parents.(u) = ix.parents.(u')
                && ix.node_labels.(u) = ix.node_labels.(u')
              in
              if twin_edges then Float.max 0.0 ((e1 *. e2 /. ec) -. e1) else e1 *. e2 /. ec
            end)
          pairs
      end)

type interval = { low : float; best : float; high : float }

let estimate_interval ?extra summary twig =
  let twig = Twig.canonicalize twig in
  let votes = Array.of_list (first_level_votes ?extra summary twig) in
  let best = recursive_estimate ?extra ~voting:true summary twig in
  if Array.length votes = 0 then { low = best; best; high = best }
  else
    {
      (* Votes resolve sub-estimates deterministically while [best] votes at
         every level, so [best] can land slightly outside the raw vote
         spread; the interval always contains it. *)
      low = Float.min best (Tl_util.Stats.minimum votes);
      best;
      high = Float.max best (Tl_util.Stats.maximum votes);
    }

let estimate ?extra ?probe summary scheme twig =
  let twig = Twig.canonicalize twig in
  match scheme with
  | Recursive -> recursive_estimate ?extra ?probe ~voting:false summary twig
  | Recursive_voting -> recursive_estimate ?extra ?probe ~voting:true summary twig
  | Fixed_size -> fixed_size_estimate ?extra ?probe summary twig
  | Fixed_size_voting samples -> fixed_size_estimate ?extra ?probe ~samples summary twig

(* --- compiled plans ----------------------------------------------------- *)

(* A plan is [estimate] with everything that does not depend on the
   [?extra] feedback source hoisted to compile time: canonicalization,
   sub-twig enumeration ([remove]/[induced] spine rebuilds), summary
   lookups, the zero rules, twin-edge detection, and — for the fixed-size
   schemes — the whole cover construction including the rng draws.  What
   remains at eval time is a lazy sweep over int-indexed slots.

   Bit-identity with the direct path is a hard invariant (the qcheck
   differential property pins it): every short-circuit, accumulation
   order, and division below mirrors the corresponding site above.  The
   single permitted divergence is that [small_estimate]'s fallback chain
   consults [extra] twice for the same key where a plan consults it once —
   the floats agree because the source is deterministic within a call. *)
module Plan = struct
  type pair = { s1 : int; s2 : int; scap : int; twin : bool }

  (* What a slot's lookup resolved to against the (immutable) summary.
     [Decompose] children always have smaller slot indices, so the slots
     array is topologically ordered children-first. *)
  type resolution = Stored of int | Zero | Decompose of pair array

  type slot = { skey : Twig.Key.t; res : resolution }

  type step = { block : int; overlap : int (* -1 = first block *); twins : int }

  type program =
    | Slot_value of int  (* recursive schemes, and small fixed-size roots *)
    | Cover of step array array  (* one array per (sampled) cover *)

  type t = {
    pscheme : scheme;
    root : Twig.Key.t;
    sstamp : int;  (* Summary.stamp of the summary compiled against *)
    slots : slot array;
    prog : program;
    const_result : float;  (* eval with no extra source: fully determined *)
  }

  let scheme t = t.pscheme

  let summary_stamp t = t.sstamp

  let root_key t = t.root

  let slot_count t = Array.length t.slots

  let eval_with plan ~extra ~probe =
    let slots = plan.slots in
    let n = Array.length slots in
    let values = Array.make n 0.0 in
    let computed = Bytes.make n '\000' in
    let rec get i =
      if Bytes.unsafe_get computed i = '\001' then Array.unsafe_get values i
      else begin
        let v = compute (Array.unsafe_get slots i) in
        Bytes.unsafe_set computed i '\001';
        Array.unsafe_set values i v;
        v
      end
    and compute s =
      let key = s.skey in
      match (extra key : float option) with
      | Some known ->
        (match probe with
        | None -> ()
        | Some p -> p.on_lookup (Twig.Key.encode key) (Found_extra known));
        known
      | None -> (
        match s.res with
        | Stored c ->
          (match probe with
          | None -> ()
          | Some p -> p.on_lookup (Twig.Key.encode key) (Found_summary c));
          float_of_int c
        | Zero ->
          (match probe with
          | None -> ()
          | Some p -> p.on_lookup (Twig.Key.encode key) Assumed_zero);
          0.0
        | Decompose pairs ->
          (match probe with
          | None -> ()
          | Some p -> p.on_lookup (Twig.Key.encode key) Decomposing);
          let np = Array.length pairs in
          if np = 0 then 0.0
          else begin
            let total = ref 0.0 in
            for pi = 0 to np - 1 do
              total := !total +. pair_value key pairs.(pi)
            done;
            let v = !total /. float_of_int np in
            (match probe with None -> () | Some p -> p.on_value (Twig.Key.encode key) v);
            v
          end)
    and pair_value key pr =
      let finish ~e1 ~e2 ~ec value =
        (match probe with
        | None -> ()
        | Some p ->
          p.on_pair ~parent:(Twig.Key.encode key)
            ~t1:(Twig.Key.encode slots.(pr.s1).skey)
            ~t2:(Twig.Key.encode slots.(pr.s2).skey)
            ~cap:(Twig.Key.encode slots.(pr.scap).skey)
            ~twin:pr.twin ~e1 ~e2 ~ec ~value);
        value
      in
      let e1 = get pr.s1 in
      if e1 = 0.0 then finish ~e1 ~e2:Float.nan ~ec:Float.nan 0.0
      else begin
        let e2 = get pr.s2 in
        if e2 = 0.0 then finish ~e1 ~e2 ~ec:Float.nan 0.0
        else begin
          let ec = get pr.scap in
          if ec <= 0.0 then finish ~e1 ~e2 ~ec 0.0
          else if pr.twin then finish ~e1 ~e2 ~ec (Float.max 0.0 ((e1 *. e2 /. ec) -. e1))
          else finish ~e1 ~e2 ~ec (e1 *. e2 /. ec)
        end
      end
    in
    let cstep ~block ~overlap ~twins ~num ~den ~acc =
      match probe with
      | None -> ()
      | Some p ->
        p.on_cover_step
          ~block:(Twig.Key.encode slots.(block).skey)
          ~overlap:(if overlap < 0 then None else Some (Twig.Key.encode slots.(overlap).skey))
          ~twins ~num ~den ~acc
    in
    let eval_cover steps =
      let nsteps = Array.length steps in
      let rec go acc i =
        if i >= nsteps then acc
        else if acc = 0.0 then 0.0
        else begin
          let st = steps.(i) in
          let num = get st.block in
          if num = 0.0 then begin
            cstep ~block:st.block ~overlap:st.overlap ~twins:st.twins ~num ~den:Float.nan
              ~acc:0.0;
            0.0
          end
          else if st.overlap < 0 then begin
            cstep ~block:st.block ~overlap:st.overlap ~twins:st.twins ~num ~den:Float.nan
              ~acc:(acc *. num);
            go (acc *. num) (i + 1)
          end
          else begin
            let den = get st.overlap in
            if den <= 0.0 then begin
              cstep ~block:st.block ~overlap:st.overlap ~twins:st.twins ~num ~den ~acc:0.0;
              0.0
            end
            else begin
              let multiplier = (num /. den) -. float_of_int st.twins in
              if multiplier <= 0.0 then begin
                cstep ~block:st.block ~overlap:st.overlap ~twins:st.twins ~num ~den ~acc:0.0;
                0.0
              end
              else begin
                cstep ~block:st.block ~overlap:st.overlap ~twins:st.twins ~num ~den
                  ~acc:(acc *. multiplier);
                go (acc *. multiplier) (i + 1)
              end
            end
          end
        end
      in
      go 1.0 0
    in
    match plan.prog with
    | Slot_value i -> get i
    | Cover covers ->
      let nc = Array.length covers in
      if nc = 1 && plan.pscheme = Fixed_size then eval_cover covers.(0)
      else begin
        (* [x /. 1.0 = x] exactly, so a 1-sample voting cover still matches
           the direct path's unconditional average. *)
        let total = ref 0.0 in
        for i = 0 to nc - 1 do
          total := !total +. eval_cover covers.(i)
        done;
        !total /. float_of_int nc
      end

  let no_extra _ = None

  let compile summary sch twig =
    Metrics.incr "plan.compiles";
    let twig = Twig.canonicalize twig in
    let root_key = Twig.key twig in
    let complete = Summary.is_complete summary in
    let k = Summary.k summary in
    let index_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let rev_slots = ref [] in
    let n_slots = ref 0 in
    let push skey res =
      let idx = !n_slots in
      Hashtbl.replace index_of (Twig.Key.id skey) idx;
      rev_slots := { skey; res } :: !rev_slots;
      incr n_slots;
      idx
    in
    (* Mirrors [recursive_estimate]'s compute chain with the summary
       consulted now instead of at eval time.  Children are pushed before
       their parent, giving the topological slot order [eval_with] needs. *)
    let rec comp_rec ~voting key =
      match Hashtbl.find_opt index_of (Twig.Key.id key) with
      | Some idx -> idx
      | None -> (
        match Summary.find_key summary key with
        | Some count -> push key (Stored count)
        | None ->
          let n = Twig.Key.size key in
          if n <= 2 || (complete && n <= k) then push key Zero
          else begin
            let twig = Twig.Key.twig key in
            let ix = Twig.index twig in
            let removable = Twig.degree_one ix in
            let pairs = unordered_pairs removable in
            let pairs =
              match (voting, pairs) with
              | true, _ | _, [] -> pairs
              | false, first :: _ -> [ first ]
            in
            let compiled =
              List.map
                (fun (u, u') ->
                  let t1 = Twig.remove ix u in
                  let t2 = Twig.remove ix u' in
                  let cap = Twig.induced ix (nodes_except ix [ u; u' ]) in
                  let twin =
                    ix.parents.(u) >= 0
                    && ix.parents.(u) = ix.parents.(u')
                    && ix.node_labels.(u) = ix.node_labels.(u')
                  in
                  let s1 = comp_rec ~voting (Twig.key t1) in
                  let s2 = comp_rec ~voting (Twig.key t2) in
                  let scap = comp_rec ~voting (Twig.key cap) in
                  { s1; s2; scap; twin })
                pairs
            in
            push key (Decompose (Array.of_list compiled))
          end)
    in
    (* Mirrors [small_estimate]: stored, or a true zero under a complete
       summary, or the recursive fallback that keeps pruning lossless. *)
    let comp_small key =
      match Hashtbl.find_opt index_of (Twig.Key.id key) with
      | Some idx -> idx
      | None -> (
        match Summary.find_key summary key with
        | Some count -> push key (Stored count)
        | None -> if complete then push key Zero else comp_rec ~voting:false key)
    in
    let prog =
      match sch with
      | Recursive -> Slot_value (comp_rec ~voting:false root_key)
      | Recursive_voting -> Slot_value (comp_rec ~voting:true root_key)
      | Fixed_size | Fixed_size_voting _ ->
        if Twig.Key.size root_key <= k then Slot_value (comp_small root_key)
        else begin
          let ix = Twig.index twig in
          let compile_cover choose =
            cover_with ~choose ix ~k
            |> List.map (fun (block, overlap, twins) ->
                   let block = comp_small (Twig.key block) in
                   let overlap =
                     match overlap with None -> -1 | Some o -> comp_small (Twig.key o)
                   in
                   { block; overlap; twins })
            |> Array.of_list
          in
          match sch with
          | Fixed_size -> Cover [| compile_cover List.hd |]
          | Fixed_size_voting samples ->
            let count = max 1 samples in
            (* Same seed and same draw order as [fixed_size_estimate], so a
               compiled plan freezes exactly the covers the direct path
               would sample for this query. *)
            let rng = Tl_util.Xorshift.create (Twig.hash twig) in
            let choose candidates =
              List.nth candidates (Tl_util.Xorshift.int rng (List.length candidates))
            in
            let covers = Array.make count [||] in
            for i = 0 to count - 1 do
              covers.(i) <- compile_cover choose
            done;
            Cover covers
          | Recursive | Recursive_voting -> assert false
        end
    in
    let slots = Array.of_list (List.rev !rev_slots) in
    let plan =
      { pscheme = sch; root = root_key; sstamp = Summary.stamp summary; slots; prog; const_result = 0.0 }
    in
    { plan with const_result = eval_with plan ~extra:no_extra ~probe:None }

  let eval ?extra ?probe plan =
    match (extra, probe) with
    | None, None -> plan.const_result
    | _ ->
      let extra = match extra with Some f -> f | None -> no_extra in
      eval_with plan ~extra ~probe

  let eval_flagged ?extra plan =
    match extra with
    | None -> (plan.const_result, false)
    | Some f ->
      (* Wrap the source so the flag observes exactly the lookups [eval]
         makes — the audit log's feedback-hit bit must agree with the
         [estimator.extra_hits] counter semantics. *)
      let hit = ref false in
      let flagged key =
        match f key with
        | Some _ as answer ->
          hit := true;
          answer
        | None -> None
      in
      let v = eval_with plan ~extra:flagged ~probe:None in
      (v, !hit)
end
