(** The seed string-keyed estimation path, preserved as a reference.

    This module re-implements the decomposition estimators exactly as they
    were before canonical twig keys were hash-consed: every
    canonicalization re-encodes its subtree, and every memo and summary
    lookup hashes a full encoding string.  It operates on a private twig
    copy type, so the interning in {!Tl_twig.Twig} cannot leak in and make
    it artificially fast.

    Two consumers:
    - the qcheck differential suite asserts {!estimate} is {e bit-identical}
      to {!Estimator.estimate} for every scheme, with and without an
      [?extra] feedback source;
    - the benchmark's estimation-latency section measures the interned-key
      speedup against this path — the real before, not a strawman. *)

type t
(** A string-keyed snapshot of a lattice summary. *)

val of_summary : Tl_lattice.Summary.t -> t

val estimate :
  ?extra:(string -> float option) ->
  t ->
  Estimator.scheme ->
  Tl_twig.Twig.t ->
  float
(** Seed-path estimate of the query's selectivity.  [extra] is keyed by
    canonical encoding, as the seed's was. *)
