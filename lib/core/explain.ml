module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary

type source = Extra_cache | Summary_hit | True_zero | Decomposed | Not_evaluated

type pair = {
  t1 : string;
  t2 : string;
  cap : string;
  twin : bool;
  e1 : float;
  e2 : float;
  ec : float;
  value : float;
}

type cover_step = {
  block : string;
  overlap : string option;
  twins : int;
  num : float;
  den : float;
  running : float;
}

type node = {
  twig : Twig.t;
  size : int;
  mutable source : source;
  mutable value : float;
  mutable pairs : pair list;
}

type t = {
  scheme : Estimator.scheme;
  root_key : string;
  estimate : float;
  nodes : (string, node) Hashtbl.t;
  order : string list;
  cover : cover_step list;
  votes : float list;
  summary_hits : int;
  extra_hits : int;
  true_zeros : int;
  decompositions : int;
}

let node t key = Hashtbl.find_opt t.nodes key

let run ?extra summary scheme twig =
  (* The public [extra] stays string-keyed (callers like the CLI hold
     encoding->count maps); the cached encoding makes the adaptation one
     field read per lookup. *)
  let extra = Option.map (fun f key -> f (Twig.Key.encode key)) extra in
  let twig = Twig.canonicalize twig in
  let nodes : (string, node) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let cover = ref [] in
  let summary_hits = ref 0 in
  let extra_hits = ref 0 in
  let true_zeros = ref 0 in
  let decompositions = ref 0 in
  let get key =
    match Hashtbl.find_opt nodes key with
    | Some n -> n
    | None ->
      let tw = Twig.decode key in
      let n =
        { twig = tw; size = Twig.size tw; source = Not_evaluated; value = Float.nan; pairs = [] }
      in
      Hashtbl.replace nodes key n;
      order := key :: !order;
      n
  in
  let probe =
    {
      Estimator.on_lookup =
        (fun key result ->
          let n = get key in
          match result with
          | Estimator.Found_extra v ->
            incr extra_hits;
            n.source <- Extra_cache;
            n.value <- v
          | Found_summary c ->
            incr summary_hits;
            n.source <- Summary_hit;
            n.value <- float_of_int c
          | Assumed_zero ->
            incr true_zeros;
            n.source <- True_zero;
            n.value <- 0.0
          | Decomposing ->
            incr decompositions;
            n.source <- Decomposed);
      on_pair =
        (fun ~parent ~t1 ~t2 ~cap ~twin ~e1 ~e2 ~ec ~value ->
          ignore (get t1);
          ignore (get t2);
          ignore (get cap);
          let n = get parent in
          n.pairs <- { t1; t2; cap; twin; e1; e2; ec; value } :: n.pairs);
      on_value = (fun key v -> (get key).value <- v);
      on_cover_step =
        (fun ~block ~overlap ~twins ~num ~den ~acc ->
          ignore (get block);
          Option.iter (fun o -> ignore (get o)) overlap;
          cover := { block; overlap; twins; num; den; running = acc } :: !cover);
    }
  in
  let estimate = Estimator.estimate ?extra ~probe summary scheme twig in
  let votes = Estimator.first_level_votes ?extra summary twig in
  Hashtbl.iter (fun _ n -> n.pairs <- List.rev n.pairs) nodes;
  {
    scheme;
    root_key = Twig.encode twig;
    estimate;
    nodes;
    order = List.rev !order;
    cover = List.rev !cover;
    votes;
    summary_hits = !summary_hits;
    extra_hits = !extra_hits;
    true_zeros = !true_zeros;
    decompositions = !decompositions;
  }

(* --- text rendering ------------------------------------------------------ *)

let source_tag = function
  | Extra_cache -> "extra-cache"
  | Summary_hit -> "summary"
  | True_zero -> "true-zero"
  | Decomposed -> "decomposed"
  | Not_evaluated -> "not-evaluated"

let fnum v = if Float.is_nan v then "-" else Printf.sprintf "%.2f" v

let pp_key ~names t key =
  match node t key with
  | Some n -> Twig.pp ~names n.twig
  | None -> key

let to_text ~names t =
  let buf = Buffer.create 1024 in
  let line depth fmt =
    Buffer.add_string buf (String.make (2 * depth) ' ');
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  let expanded = Hashtbl.create 16 in
  let rec render depth key role =
    match node t key with
    | None -> line depth "%s %s = ? [not evaluated]" role key
    | Some n ->
      let head = Printf.sprintf "%s %s = %s [%s]" role (Twig.pp ~names n.twig) (fnum n.value) (source_tag n.source) in
      if n.source <> Decomposed then line depth "%s" head
      else if Hashtbl.mem expanded key then line depth "%s (decomposition shown above)" head
      else begin
        Hashtbl.replace expanded key ();
        line depth "%s via %d pair(s):" head (List.length n.pairs);
        List.iteri
          (fun i (p : pair) ->
            let rule =
              if p.twin then "s1*s2/s_cap - s1 (twin edges)" else "s1*s2/s_cap"
            in
            line (depth + 1) "pair %d: %s = %s  [e1=%s e2=%s e_cap=%s]" (i + 1) rule (fnum p.value)
              (fnum p.e1) (fnum p.e2) (fnum p.ec);
            render (depth + 2) p.t1 "s1 ";
            render (depth + 2) p.t2 "s2 ";
            render (depth + 2) p.cap "s_cap")
          n.pairs
      end
  in
  line 0 "estimate[%s] = %s for %s" (Estimator.scheme_name t.scheme) (fnum t.estimate)
    (pp_key ~names t t.root_key);
  (match t.cover with
  | [] -> render 0 t.root_key "query"
  | steps ->
    line 0 "fixed-size cover (%d step(s)):" (List.length steps);
    List.iteri
      (fun i (s : cover_step) ->
        (match s.overlap with
        | None ->
          line 1 "step %d: first block, running = %s" (i + 1) (fnum s.running)
        | Some _ ->
          line 1 "step %d: num/den - twins = %s/%s - %d, running = %s" (i + 1) (fnum s.num)
            (fnum s.den) s.twins (fnum s.running));
        render 2 s.block "block  ";
        Option.iter (fun o -> render 2 o "overlap") s.overlap)
      steps);
  (match t.votes with
  | [] | [ _ ] -> ()
  | votes ->
    let arr = Array.of_list votes in
    line 0 "first-level votes: %d pair(s), min = %s, mean = %s, max = %s" (Array.length arr)
      (fnum (Tl_util.Stats.minimum arr))
      (fnum (Tl_util.Stats.mean arr))
      (fnum (Tl_util.Stats.maximum arr)));
  line 0 "lookups: %d summary hit(s), %d extra hit(s), %d true zero(s), %d decomposition(s); %d distinct sub-twig(s)"
    t.summary_hits t.extra_hits t.true_zeros t.decompositions (Hashtbl.length t.nodes);
  Buffer.contents buf
