(** The decomposition-based selectivity estimators (§3).

    Both schemes estimate the selectivity of a twig [T] that is larger than
    the lattice depth [k] by expressing it through lattice-resident
    subtwigs under the tree-growing conditional-independence assumption
    (Theorem 1):

    {v sigma(T1 + T2) ~ sigma(T1) * sigma(T2) / sigma(T1 n T2) v}

    - {e Recursive decomposition} (Fig. 4): remove one of two degree-1
      nodes, recurse on the two (n-1)-node subtwigs and their common
      (n-2)-node part, down to the brim of the lattice.
    - {e Fixed-size decomposition} (Fig. 5, Lemma 3): cover [T] with
      [n - k + 1] k-subtrees overlapping on (k-1)-subtrees in one preorder
      sweep, then multiply/divide their stored counts.
    - {e Voting} (§3.2): at every recursive step, average the estimates
      over all admissible leaf-pair choices; for the fixed-size scheme,
      average over several randomized covers.

    Estimates are exact for any pattern stored in the summary.  With a
    {e pruned} summary a missing small pattern is transparently
    re-estimated by recursive decomposition, which is what makes
    0-derivable pruning lossless (Lemma 5). *)

type scheme =
  | Recursive  (** deterministic leaf-pair choice *)
  | Recursive_voting  (** average over all leaf pairs at every level *)
  | Fixed_size  (** deterministic preorder cover *)
  | Fixed_size_voting of int
      (** average over this many randomized covers (>= 1); seeded
          deterministically from the query *)

val all_schemes : scheme list
(** The four schemes with [Fixed_size_voting 8]. *)

val scheme_name : scheme -> string

(** {2 Estimation probes}

    A probe observes every step an estimation takes — without perturbing
    any number.  All keys are canonical twig encodings
    ({!Tl_twig.Twig.encode}); {!Explain} rebuilds the decomposition DAG
    from these events for the [treelattice explain] subcommand. *)

(** Outcome of one sub-twig lookup. *)
type lookup_result =
  | Found_extra of float  (** served by the [?extra] source (e.g. the adaptive cache) *)
  | Found_summary of int  (** stored in the lattice summary *)
  | Assumed_zero
      (** missing at a level the summary is known complete for — a true zero *)
  | Decomposing  (** not resident: about to decompose *)

type probe = {
  on_lookup : string -> lookup_result -> unit;
  on_pair :
    parent:string ->
    t1:string ->
    t2:string ->
    cap:string ->
    twin:bool ->
    e1:float ->
    e2:float ->
    ec:float ->
    value:float ->
    unit;
      (** One evaluated leaf-pair of a recursive decomposition:
          [value ~ e1 * e2 / ec] (with the twin-edge correction when
          [twin]).  Short-circuited sub-estimates are reported as [nan]. *)
  on_value : string -> float -> unit;
      (** The averaged value a [Decomposing] key settled on. *)
  on_cover_step :
    block:string -> overlap:string option -> twins:int -> num:float -> den:float -> acc:float -> unit;
      (** One fixed-size cover step: running product [acc] after
          multiplying by [num/den - twins] ([den] is [nan] for the first
          block; [acc = 0] marks a short-circuit). *)
}

val estimate :
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  ?probe:probe ->
  Tl_lattice.Summary.t ->
  scheme ->
  Tl_twig.Twig.t ->
  float
(** Estimated selectivity (>= 0, fractional in general).  Exact lookups are
    returned as-is; a twig whose label set cannot occur estimates to 0.

    [extra] is an auxiliary count source keyed by interned canonical key,
    consulted {e before} the summary at every lookup (including the
    sub-twig lookups inside a decomposition).  {!Adaptive} uses it to let
    workload-observed exact counts anchor future decompositions.  A
    string-keyed source can be adapted with
    [fun k -> f (Tl_twig.Twig.Key.encode k)] — the encoding is cached, so
    the adapter costs one field read ({!Explain.run} does exactly this). *)

val first_level_votes :
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  Tl_lattice.Summary.t ->
  Tl_twig.Twig.t ->
  float list
(** The estimates contributed by each admissible leaf-pair choice at the
    {e top} level of the recursive decomposition, with sub-estimates
    resolved deterministically.  A singleton for lattice-resident twigs —
    or for twigs the [extra] feedback source answers at the top level; the
    source is also consulted inside every sub-estimate, mirroring
    {!estimate}.  This isolates the sensitivity of the scheme to the pair
    choice — the quantity the voting extension averages away (used by the
    pair-choice ablation). *)

type interval = { low : float; best : float; high : float }
(** A sensitivity interval around an estimate. *)

val estimate_interval :
  ?extra:(Tl_twig.Twig.Key.t -> float option) ->
  Tl_lattice.Summary.t ->
  Tl_twig.Twig.t ->
  interval
(** [best] is the voting estimate; [low]/[high] bound the spread of the
    admissible top-level decompositions ({!first_level_votes}).  The paper
    lists a formal error bound as future work; this interval is the
    practical proxy — when all decompositions agree the independence
    assumption is locally consistent and the estimate is trustworthy, and
    a wide interval flags correlation.  Lattice-resident twigs collapse to
    a point (the count is exact).

    [extra] is threaded into the votes {e and} the best estimate, so the
    interval always contains what [estimate ?extra] returns with the same
    source (the seed dropped it from the votes, which could leave the
    adaptive estimate outside its own interval). *)

val cover : Tl_twig.Twig.t -> k:int -> (Tl_twig.Twig.t * Tl_twig.Twig.t option) list
(** The deterministic fixed-size cover of a twig of size [> k]: the list
    [(B1, None); (B2, Some I2); ...] of k-subtrees with their (k-1)-subtree
    overlaps, per Lemma 2.  Exposed for tests and the worked examples. *)

(** {2 Compiled estimation plans}

    {!compile} runs the decomposition of a query {e once} — twig
    canonicalization, sub-twig enumeration, summary lookups, zero rules,
    twin-edge detection, and (for the fixed-size schemes) the full cover
    construction including its deterministic rng draws — and freezes the
    result as a flat array of int-indexed slots.  {!eval} is then a tight
    sweep over those slots: no twig rebuilding, no hashing of twig keys, no
    summary access.  Summaries are immutable after construction, which is
    what makes compile-time resolution sound.

    For any summary, scheme, twig, and [?extra] source,
    [eval ?extra (compile summary scheme twig)] returns the {e bit-identical}
    float of [estimate ?extra summary scheme twig] (a qcheck property pins
    this).  Plans with no feedback source collapse further: the result is a
    compile-time constant and [eval] without [?extra] is a field read —
    the fast path the plan cache and the batch engine serve from.

    A compiled plan is immutable and safe to share across domains. *)
module Plan : sig
  type t

  val compile : Tl_lattice.Summary.t -> scheme -> Tl_twig.Twig.t -> t
  (** Compile the query against the summary under the given scheme.  Cost
      is comparable to one direct [estimate] call; amortize it through
      {!Plan_cache} for repeated queries. *)

  val eval : ?extra:(Tl_twig.Twig.Key.t -> float option) -> ?probe:probe -> t -> float
  (** The estimate, consulting [extra] before each slot's compiled
      resolution (exactly where [estimate] consults it) and reporting the
      same probe events the direct path reports.  Without [extra] and
      [probe] this returns the precomputed constant without evaluating
      anything. *)

  val eval_flagged : ?extra:(Tl_twig.Twig.Key.t -> float option) -> t -> float * bool
  (** [eval] plus the feedback-hit flag the serving audit log records:
      [true] when the [extra] source answered at least one lookup of this
      evaluation.  The float is bit-identical to [eval ?extra]; without
      [extra] this is the const-result fast path and the flag is
      [false]. *)

  val scheme : t -> scheme

  val root_key : t -> Tl_twig.Twig.Key.t
  (** The canonical interned key of the compiled query. *)

  val summary_stamp : t -> int
  (** {!Tl_lattice.Summary.stamp} of the summary this plan was compiled
      against.  Serving layers use it to assert a plan is never evaluated
      under a summary it was not built for. *)

  val slot_count : t -> int
  (** Number of distinct sub-twig slots in the program (a size proxy). *)
end
