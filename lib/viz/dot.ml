module Twig = Tl_twig.Twig
module Data_tree = Tl_tree.Data_tree

let escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let digraph body = "digraph twig {\n  node [shape=box, fontname=\"monospace\"];\n" ^ body ^ "}\n"

let twig ~names t =
  let ix = Twig.index t in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i l -> Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" i (escape (names l))))
    ix.Twig.node_labels;
  Array.iteri
    (fun i p -> if p >= 0 then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p i))
    ix.Twig.parents;
  digraph (Buffer.contents buf)

let value_query ~names q =
  let buf = Buffer.create 256 in
  let next = ref 0 in
  let rec walk parent (node : Tl_values.Value_query.t) =
    let id = !next in
    incr next;
    let label =
      match node.Tl_values.Value_query.value with
      | Some v -> Printf.sprintf "%s\\n= %s" (escape (names node.Tl_values.Value_query.label)) (escape v)
      | None -> escape (names node.Tl_values.Value_query.label)
    in
    Buffer.add_string buf (Printf.sprintf "  n%d [label=\"%s\"];\n" id label);
    if parent >= 0 then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" parent id);
    List.iter (walk id) node.Tl_values.Value_query.children
  in
  walk (-1) (Tl_values.Value_query.canonicalize q);
  digraph (Buffer.contents buf)

let plan ~names (p : Tl_join.Plan.t) =
  let ix = Twig.index p.Tl_join.Plan.twig in
  let step_of = Array.make (Array.length ix.Twig.node_labels) 0 in
  Array.iteri (fun step q -> step_of.(q) <- step) p.Tl_join.Plan.order;
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n#%d\"%s];\n" i (escape (names l)) step_of.(i)
           (if step_of.(i) = 0 then ", style=bold" else "")))
    ix.Twig.node_labels;
  Array.iteri
    (fun i par -> if par >= 0 then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" par i))
    ix.Twig.parents;
  digraph (Buffer.contents buf)

let synopsis ~names (s : Tl_sketch.Synopsis.t) =
  let buf = Buffer.create 512 in
  Array.iteri
    (fun c l ->
      Buffer.add_string buf
        (Printf.sprintf "  c%d [label=\"%s (%d)\"];\n" c (escape (names l)) s.Tl_sketch.Synopsis.sizes.(c)))
    s.Tl_sketch.Synopsis.labels;
  Array.iteri
    (fun src edges ->
      Array.iter
        (fun (dst, w) ->
          Buffer.add_string buf (Printf.sprintf "  c%d -> c%d [label=\"%.2f\"];\n" src dst w))
        edges)
    s.Tl_sketch.Synopsis.out_edges;
  digraph (Buffer.contents buf)

let explain ~names (trace : Tl_core.Explain.t) =
  let module Explain = Tl_core.Explain in
  let buf = Buffer.create 1024 in
  (* Stable ids from first-touch order. *)
  let ids = Hashtbl.create 32 in
  List.iteri (fun i key -> Hashtbl.replace ids key i) trace.Explain.order;
  let id key = match Hashtbl.find_opt ids key with Some i -> Printf.sprintf "n%d" i | None -> "n_" ^ escape key in
  let fnum v = if Float.is_nan v then "?" else Printf.sprintf "%.2f" v in
  List.iter
    (fun key ->
      match Explain.node trace key with
      | None -> ()
      | Some n ->
        let fill =
          match n.Explain.source with
          | Explain.Summary_hit -> "lightblue"
          | Explain.Extra_cache -> "gold"
          | Explain.True_zero -> "mistyrose"
          | Explain.Decomposed -> "white"
          | Explain.Not_evaluated -> "gray90"
        in
        let bold = if String.equal key trace.Explain.root_key then ", penwidth=2" else "" in
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"%s\\n%s  [%s]\", style=filled, fillcolor=%s%s];\n" (id key)
             (escape (Tl_twig.Twig.pp ~names n.Explain.twig))
             (fnum n.Explain.value)
             (match n.Explain.source with
             | Explain.Summary_hit -> "summary"
             | Explain.Extra_cache -> "extra"
             | Explain.True_zero -> "zero"
             | Explain.Decomposed -> "decomposed"
             | Explain.Not_evaluated -> "unused")
             fill bold))
    trace.Explain.order;
  (* Decomposition edges: parent -> each pair's numerators (solid) and
     denominator (dashed). *)
  List.iter
    (fun key ->
      match Explain.node trace key with
      | None -> ()
      | Some n ->
        List.iteri
          (fun i (p : Explain.pair) ->
            let tag = Printf.sprintf "p%d" (i + 1) in
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [label=\"%s s1\"];\n" (id key) (id p.Explain.t1) tag);
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [label=\"%s s2\"];\n" (id key) (id p.Explain.t2) tag);
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [label=\"%s cap\", style=dashed];\n" (id key)
                 (id p.Explain.cap) tag))
          n.Explain.pairs)
    trace.Explain.order;
  (* Fixed-size cover: chain the root to each block, block to overlap. *)
  List.iteri
    (fun i (s : Explain.cover_step) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"B%d\", style=bold];\n" (id trace.Explain.root_key)
           (id s.Explain.block) (i + 1));
      Option.iter
        (fun o ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s [label=\"I%d\", style=dashed];\n" (id s.Explain.block)
               (id o) (i + 1)))
        s.Explain.overlap)
    trace.Explain.cover;
  digraph (Buffer.contents buf)

let data_tree ?(max_nodes = 64) tree =
  let n = min max_nodes (Data_tree.size tree) in
  let buf = Buffer.create 512 in
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\"];\n" v (escape (Data_tree.label_name tree (Data_tree.label tree v))))
  done;
  for v = 1 to n - 1 do
    match Data_tree.parent tree v with
    | Some p when p < n -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p v)
    | Some _ | None -> ()
  done;
  (* Mark elided subtrees. *)
  let elided = ref false in
  for v = 0 to n - 1 do
    Array.iter
      (fun c ->
        if c >= n && not !elided then begin
          elided := true;
          Buffer.add_string buf
            (Printf.sprintf "  more [label=\"...\", style=dashed];\n  n%d -> more [style=dashed];\n" v)
        end)
      (Data_tree.children tree v)
  done;
  digraph (Buffer.contents buf)
