(** GraphViz (DOT) exports for the library's structures.

    Debugging and documentation aids: render twigs, value queries,
    evaluation plans, TreeSketches synopses, and (bounded prefixes of)
    data trees as [digraph]s, ready for [dot -Tsvg]. *)

val twig : names:(int -> string) -> Tl_twig.Twig.t -> string

val value_query : names:(int -> string) -> Tl_values.Value_query.t -> string
(** Value constraints render as a second label line. *)

val plan : names:(int -> string) -> Tl_join.Plan.t -> string
(** Twig edges plus each node's binding order as ["#step"]. *)

val synopsis : names:(int -> string) -> Tl_sketch.Synopsis.t -> string
(** Clusters as ["label (size)"] boxes, edges weighted by average count. *)

val explain : names:(int -> string) -> Tl_core.Explain.t -> string
(** An estimator explain-trace as a decomposition DAG: one box per
    sub-twig (filled by lookup outcome — summary hit, extra-cache hit,
    true zero, decomposed, unused), pair edges labeled [p<i> s1/s2/cap],
    and bold [B<i>]/dashed [I<i>] edges for fixed-size cover steps. *)

val data_tree : ?max_nodes:int -> Tl_tree.Data_tree.t -> string
(** The first [max_nodes] (default 64) nodes in preorder, with elided
    children marked. *)
