module Dataset = Tl_datasets.Dataset
module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Summary = Tl_lattice.Summary
module Estimator = Tl_core.Estimator
module Derivable = Tl_core.Derivable
module Markov_path = Tl_core.Markov_path
module Synopsis = Tl_sketch.Synopsis
module Sketch_build = Tl_sketch.Sketch_build
module Sketch_estimate = Tl_sketch.Sketch_estimate
module Workload = Tl_workload.Workload
module Error_metric = Tl_workload.Error_metric
module Miner = Tl_mining.Miner
module Table = Tl_util.Table
module Timer = Tl_util.Timer
module Xorshift = Tl_util.Xorshift
module Pool = Tl_util.Pool
module Engine = Tl_serve.Engine

type config = {
  seed : int;
  target : int;
  queries_per_size : int;
  sizes : int list;
  k : int;
  table2_depth : int;
  sketch_budget : int;
  fig10b_sizes : int list;
}

let default_config =
  {
    seed = 7;
    target = 40_000;
    queries_per_size = 40;
    sizes = [ 4; 5; 6; 7; 8 ];
    k = 4;
    table2_depth = 5;
    (* The paper gives TreeSketches 50 KB against 7-23 MB documents; this
       budget is scaled down with the documents (but kept generous enough
       that the synopsis remains competitive on small queries). *)
    sketch_budget = 16 * 1024;
    fig10b_sizes = [ 4; 5; 6; 7; 8; 9 ];
  }

let quick_config =
  {
    seed = 7;
    target = 2_500;
    queries_per_size = 10;
    sizes = [ 4; 5; 6 ];
    k = 3;
    table2_depth = 4;
    sketch_budget = 2 * 1024;
    fig10b_sizes = [ 4; 5 ];
  }

type env = {
  dataset : Dataset.t;
  document : Tl_xml.Xml_dom.element;
  tree : Data_tree.t;
  ctx : Match_count.ctx;
  summary : Summary.t;
  engine : Engine.t;  (* plan-cached serving front over [summary] *)
  lattice_ms : float;
  sketch : Synopsis.t;
  sketch_ms : float;
  workloads : Workload.t list;
}

let prepare ?pool config dataset =
  Tl_obs.Span.with_ ("exp.prepare:" ^ dataset.Dataset.name) @@ fun () ->
  Tl_obs.Log.info (fun m -> m "preparing dataset %s" dataset.Dataset.name);
  let document = dataset.Dataset.document ~target:config.target ~seed:config.seed in
  let tree = Data_tree.of_element document in
  let ctx = Match_count.create_ctx tree in
  let summary, lattice_ms = Timer.time_ms (fun () -> Summary.build ?pool ~k:config.k tree) in
  let sketch, sketch_ms =
    Timer.time_ms (fun () -> Sketch_build.build ~budget_bytes:config.sketch_budget ~seed:config.seed tree)
  in
  let workloads =
    Workload.positive_sweep ~seed:config.seed ctx ~sizes:config.sizes ~count:config.queries_per_size
  in
  let engine = Engine.create summary in
  { dataset; document; tree; ctx; summary; engine; lattice_ms; sketch; sketch_ms; workloads }

(* Per-workload evaluation of every estimator: the shared raw material of
   Figs. 7, 8, and 9. *)
type estimator_run = { est_name : string; run_pairs : (int * float) array; avg_ms : float }

type evaluation = { wl : Workload.t; runs : estimator_run list }

type suite = {
  config : config;
  suite_envs : env list;
  eval_cache : (string, evaluation list) Hashtbl.t;
  pool : Pool.t option;
}

let make_suite ?pool ?(datasets = Dataset.all) config =
  {
    config;
    suite_envs = List.map (prepare ?pool config) datasets;
    eval_cache = Hashtbl.create 4;
    pool;
  }

let suite_config s = s.config

let suite_pool s = s.pool

let envs s = s.suite_envs

(* Lattice schemes run through the env's plan-cached engine: sweeps repeat
   queries across figures, and plan evaluation is bit-identical to direct
   estimation, so the figures are unchanged while repeated work amortizes. *)
let figure_estimators env =
  [
    ("recursive", fun twig -> Engine.estimate ~scheme:Recursive env.engine twig);
    ("rec+voting", fun twig -> Engine.estimate ~scheme:Recursive_voting env.engine twig);
    ("fixed-size", fun twig -> Engine.estimate ~scheme:Fixed_size env.engine twig);
    ("treesketches", fun twig -> Sketch_estimate.estimate env.sketch twig);
  ]

(* Per-query estimation is read-only over the summary and synopsis (both
   memoize per call, not per structure), so a workload fans out across the
   pool's domains; [avg_ms] stays the per-query wall-clock share of the
   whole batch either way. *)
let eval_pairs ?pool wl ~estimate =
  (* The counter is bumped inside the mapped function so parallel runs
     exercise every pool domain's metric shard. *)
  let eval q =
    Tl_obs.Metrics.incr "workload.queries_evaluated";
    (q.Workload.truth, estimate q.Workload.twig)
  in
  Tl_obs.Span.with_ "exp.eval_pairs" @@ fun () ->
  match pool with
  | None -> Array.map eval wl.Workload.queries
  | Some pool -> Pool.parallel_map pool eval wl.Workload.queries

let evaluate_env ?pool env =
  List.map
    (fun wl ->
      let runs =
        List.map
          (fun (est_name, estimate) ->
            let run_pairs, elapsed = Timer.time_ms (fun () -> eval_pairs ?pool wl ~estimate) in
            let nq = max 1 (Array.length wl.Workload.queries) in
            { est_name; run_pairs; avg_ms = elapsed /. float_of_int nq })
          (figure_estimators env)
      in
      { wl; runs })
    env.workloads

let evaluations suite env =
  let key = env.dataset.Dataset.name in
  match Hashtbl.find_opt suite.eval_cache key with
  | Some e -> e
  | None ->
    let e = evaluate_env ?pool:suite.pool env in
    Hashtbl.replace suite.eval_cache key e;
    e

(* --- Table 1 ------------------------------------------------------------ *)

let table1 suite =
  let rows =
    List.map
      (fun env ->
        let stats = Tl_tree.Tree_stats.compute env.tree in
        [
          env.dataset.Dataset.name;
          Table.int_cell stats.nodes;
          Report.kb (Tl_xml.Xml_writer.serialized_size { decl = None; root = env.document });
          Table.int_cell stats.distinct_labels;
          Table.int_cell stats.depth;
          Table.int_cell env.dataset.Dataset.paper_elements;
          Printf.sprintf "%.1f MB" env.dataset.Dataset.paper_size_mb;
        ])
      suite.suite_envs
  in
  Report.section "table1" "Dataset characteristics"
  ^ Table.render
      ~header:[ "dataset"; "elements"; "file size"; "labels"; "depth"; "paper elems"; "paper size" ]
      rows
  ^ Report.note "generated stand-ins reproduce structure at reduced scale; see DESIGN.md #3"

(* --- Table 2 ------------------------------------------------------------ *)

let table2 suite =
  let depth = suite.config.table2_depth in
  let mined =
    List.map (fun env -> (env, Miner.mine ?pool:suite.pool env.ctx ~max_size:depth)) suite.suite_envs
  in
  let rows =
    List.map
      (fun level ->
        string_of_int level
        :: List.map
             (fun (_, result) -> Table.int_cell (Miner.patterns_per_level result).(level - 1))
             mined)
      (List.init depth (fun i -> i + 1))
  in
  Report.section "table2" "Number of occurring subtree patterns per level"
  ^ Table.render ~header:("level" :: List.map (fun env -> env.dataset.Dataset.name) suite.suite_envs) rows

(* --- Table 3 ------------------------------------------------------------ *)

let table3 suite =
  let rows =
    List.map
      (fun env ->
        [
          env.dataset.Dataset.name;
          Report.seconds (env.lattice_ms /. 1000.0);
          Report.seconds (env.sketch_ms /. 1000.0);
          Printf.sprintf "%.1fx" (env.sketch_ms /. Float.max 1e-9 env.lattice_ms);
          Report.kb (Summary.memory_bytes env.summary);
          Report.kb (Synopsis.memory_bytes env.sketch);
        ])
      suite.suite_envs
  in
  Report.section "table3" "Summary construction time and memory utilization"
  ^ Table.render
      ~header:
        [ "dataset"; "TreeLattice build"; "TreeSketches build"; "build ratio"; "TL memory"; "TS memory" ]
      rows

(* --- Fig. 7: average estimation error ----------------------------------- *)

let estimator_names env = List.map fst (figure_estimators env)

let fig7 suite =
  let per_env env =
    let evals = evaluations suite env in
    let rows =
      List.map
        (fun { wl; runs } ->
          Table.int_cell wl.Workload.size
          :: List.map
               (fun { run_pairs; _ } ->
                 Report.percent (Error_metric.average_percent ~sanity:wl.Workload.sanity run_pairs))
               runs)
        evals
    in
    Printf.sprintf "[%s]\n" env.dataset.Dataset.name
    ^ Table.render ~header:("size" :: estimator_names env) rows
  in
  Report.section "fig7" "Average selectivity estimation error (%) by query size"
  ^ String.concat "\n" (List.map per_env suite.suite_envs)

(* --- Fig. 8: error CDF --------------------------------------------------- *)

let fig8 suite =
  let thresholds = [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ] in
  let per_env env =
    let evals = evaluations suite env in
    (* Pool all sizes, as the figures do. *)
    let pooled =
      List.map
        (fun name ->
          let errors =
            List.concat_map
              (fun { wl; runs } ->
                let { run_pairs; _ } = List.find (fun r -> String.equal r.est_name name) runs in
                Array.to_list
                  (Array.map
                     (fun (truth, estimate) ->
                       Error_metric.error_percent ~sanity:wl.Workload.sanity ~truth ~estimate)
                     run_pairs))
              evals
          in
          (name, Array.of_list errors))
        (estimator_names env)
    in
    let rows =
      List.map
        (fun threshold ->
          Printf.sprintf "<= %.0f%%" threshold
          :: List.map
               (fun (_, errors) -> Report.percent (100.0 *. Tl_util.Stats.cdf_at errors threshold))
               pooled)
        thresholds
    in
    Printf.sprintf "[%s] cumulative fraction of queries within error bound\n" env.dataset.Dataset.name
    ^ Table.render ~header:("error bound" :: List.map fst pooled) rows
  in
  Report.section "fig8" "Error distribution (CDF)"
  ^ String.concat "\n" (List.map per_env suite.suite_envs)

(* --- Fig. 9: response time ----------------------------------------------- *)

let fig9 suite =
  let per_env env =
    let evals = evaluations suite env in
    let rows =
      List.map
        (fun { wl; runs } ->
          Table.int_cell wl.Workload.size :: List.map (fun { avg_ms; _ } -> Report.ms avg_ms) runs)
        evals
    in
    Printf.sprintf "[%s]\n" env.dataset.Dataset.name
    ^ Table.render ~header:("size" :: estimator_names env) rows
  in
  Report.section "fig9" "Average estimation response time by query size"
  ^ String.concat "\n" (List.map per_env suite.suite_envs)

(* --- Fig. 10(a): 0-derivable pruning saves space -------------------------- *)

let fig10a suite =
  let rows =
    List.map
      (fun env ->
        let before, after = Derivable.savings env.summary ~delta:0.0 in
        [
          env.dataset.Dataset.name;
          Report.kb before;
          Report.kb after;
          Report.percent (100.0 *. (1.0 -. (float_of_int after /. float_of_int (max 1 before))));
        ])
      suite.suite_envs
  in
  Report.section "fig10a" "Lattice size with and without 0-derivable patterns"
  ^ Table.render ~header:[ "dataset"; "full lattice"; "pruned"; "savings" ] rows

(* --- Fig. 10(b): deeper pruned lattice (OPT) on Nasa ---------------------- *)

let fig10b suite =
  match List.find_opt (fun env -> env.dataset.Dataset.name = "nasa") suite.suite_envs with
  | None -> Report.section "fig10b" "OPT lattice accuracy (Nasa)" ^ "  (nasa not in suite)\n"
  | Some env ->
    let config = suite.config in
    (* The OPT summary: one level deeper, 0-derivable patterns pruned, which
       the paper shows fits in the space of the plain k-lattice. *)
    let deeper = Summary.build ?pool:suite.pool ~k:(config.k + 1) env.tree in
    (* Prune under the same scheme the figure estimates with, so delta = 0
       pruning is lossless (see Derivable). *)
    let opt = Derivable.prune ~scheme:Estimator.Recursive_voting deeper ~delta:0.0 in
    let workloads =
      Workload.positive_sweep ~seed:(config.seed + 31) env.ctx ~sizes:config.fig10b_sizes
        ~count:config.queries_per_size
    in
    let opt_engine = Engine.create ~scheme:Estimator.Recursive_voting opt in
    let estimators =
      [
        ("voting+OPT", fun twig -> Engine.estimate opt_engine twig);
        ("voting", fun twig -> Engine.estimate ~scheme:Recursive_voting env.engine twig);
        ("treesketches", fun twig -> Sketch_estimate.estimate env.sketch twig);
      ]
    in
    let rows =
      List.map
        (fun wl ->
          Table.int_cell wl.Workload.size
          :: List.map
               (fun (_, estimate) ->
                 let pairs = eval_pairs ?pool:suite.pool wl ~estimate in
                 Report.percent (Error_metric.average_percent ~sanity:wl.Workload.sanity pairs))
               estimators)
        workloads
    in
    Report.section "fig10b" "OPT (pruned deeper lattice) accuracy on Nasa"
    ^ Table.render ~header:("size" :: List.map fst estimators) rows
    ^ Report.note
        (Printf.sprintf "plain %d-lattice: %s; %d-lattice pruned to OPT: %s" config.k
           (Report.kb (Summary.memory_bytes env.summary))
           (config.k + 1)
           (Report.kb (Summary.memory_bytes opt)))

(* --- Fig. 10(c)/(d): delta sweep on IMDB ---------------------------------- *)

let delta_sweep = [ 0.0; 0.10; 0.20; 0.30 ]

let imdb_env suite = List.find_opt (fun env -> env.dataset.Dataset.name = "imdb") suite.suite_envs

let fig10c suite =
  match imdb_env suite with
  | None -> Report.section "fig10c" "Summary size vs delta (IMDB)" ^ "  (imdb not in suite)\n"
  | Some env ->
    let rows =
      List.map
        (fun delta ->
          let pruned = Derivable.prune ~scheme:Estimator.Recursive_voting env.summary ~delta in
          [
            Report.percent (100.0 *. delta);
            Report.kb (Summary.memory_bytes pruned);
            Table.int_cell (Summary.entries pruned);
          ])
        delta_sweep
    in
    Report.section "fig10c" "Summary size vs delta-derivable pruning (IMDB)"
    ^ Table.render ~header:[ "delta"; "summary size"; "patterns kept" ] rows

let fig10d suite =
  match imdb_env suite with
  | None -> Report.section "fig10d" "Estimation quality vs delta (IMDB)" ^ "  (imdb not in suite)\n"
  | Some env ->
    let pruned =
      List.map
        (fun delta ->
          let summary = Derivable.prune ~scheme:Estimator.Recursive_voting env.summary ~delta in
          (delta, Engine.create ~scheme:Estimator.Recursive_voting summary))
        delta_sweep
    in
    let rows =
      List.map
        (fun wl ->
          Table.int_cell wl.Workload.size
          :: List.map
               (fun (_, engine) ->
                 let pairs =
                   eval_pairs ?pool:suite.pool wl ~estimate:(fun twig ->
                       Engine.estimate engine twig)
                 in
                 Report.percent (Error_metric.average_percent ~sanity:wl.Workload.sanity pairs))
               pruned)
        env.workloads
    in
    Report.section "fig10d" "Estimation quality vs delta-derivable pruning (IMDB)"
    ^ Table.render
        ~header:("size" :: List.map (fun (d, _) -> Report.percent (100.0 *. d)) pruned)
        rows

(* --- Negative workloads --------------------------------------------------- *)

let negative suite =
  let per_env env =
    let base =
      match env.workloads with
      | [] -> None
      | first :: _ -> Some first
    in
    match base with
    | None -> []
    | Some base ->
      let wl =
        Workload.negative ~seed:(suite.config.seed + 97) env.ctx ~base
          ~count:suite.config.queries_per_size
      in
      if Array.length wl.Workload.queries = 0 then []
      else begin
        let correct estimate =
          let hits =
            Array.fold_left
              (fun acc q -> if estimate q.Workload.twig < 0.5 then acc + 1 else acc)
              0 wl.Workload.queries
          in
          100.0 *. float_of_int hits /. float_of_int (Array.length wl.Workload.queries)
        in
        [
          env.dataset.Dataset.name
          :: Table.int_cell (Array.length wl.Workload.queries)
          :: List.map (fun (_, estimate) -> Report.percent (correct estimate)) (figure_estimators env);
        ]
      end
  in
  let rows = List.concat_map per_env suite.suite_envs in
  let header =
    match suite.suite_envs with
    | [] -> [ "dataset"; "queries" ]
    | env :: _ -> "dataset" :: "queries" :: estimator_names env
  in
  (* Deep-dive: accuracy by where the impossible label was planted. *)
  let kind_rows =
    List.concat_map
      (fun env ->
        match env.workloads with
        | [] -> []
        | base :: _ ->
          List.map
            (fun (kind, wl) ->
              let correct estimate =
                let hits =
                  Array.fold_left
                    (fun acc q -> if estimate q.Workload.twig < 0.5 then acc + 1 else acc)
                    0 wl.Workload.queries
                in
                100.0 *. float_of_int hits /. float_of_int (Array.length wl.Workload.queries)
              in
              env.dataset.Dataset.name
              :: Workload.mutation_kind_name kind
              :: Table.int_cell (Array.length wl.Workload.queries)
              :: List.map (fun (_, est) -> Report.percent (correct est)) (figure_estimators env))
            (Workload.negative_by_kind ~seed:(suite.config.seed + 101) env.ctx ~base
               ~count:(max 5 (suite.config.queries_per_size / 2))))
      suite.suite_envs
  in
  let kind_header =
    match suite.suite_envs with
    | [] -> [ "dataset"; "mutation"; "queries" ]
    | env :: _ -> "dataset" :: "mutation" :: "queries" :: estimator_names env
  in
  Report.section "neg" "Zero-selectivity workloads: fraction answered ~0"
  ^ Table.render ~header rows
  ^ "\nby mutation site:\n"
  ^ Table.render ~header:kind_header kind_rows

(* --- Lemma 4: Markov-path equivalence ------------------------------------- *)

(* Heights of every node (longest downward chain, in nodes), one reverse
   preorder pass. *)
let node_heights tree =
  let n = Data_tree.size tree in
  let heights = Array.make n 1 in
  for v = n - 1 downto 0 do
    Array.iter
      (fun c -> if heights.(c) + 1 > heights.(v) then heights.(v) <- heights.(c) + 1)
      (Data_tree.children tree v)
  done;
  heights

let sample_path rng tree heights ~length =
  (* Start only from nodes tall enough and descend through children that
     can still complete the walk, so sampling never dead-ends. *)
  let starts =
    Array.of_seq
      (Seq.filter (fun v -> heights.(v) >= length) (Seq.init (Data_tree.size tree) Fun.id))
  in
  if Array.length starts = 0 then None
  else begin
    let start = starts.(Xorshift.int rng (Array.length starts)) in
    let rec walk v acc remaining =
      if remaining = 0 then Some (List.rev acc)
      else begin
        let viable =
          Array.of_list
            (List.filter (fun c -> heights.(c) >= remaining) (Array.to_list (Data_tree.children tree v)))
        in
        if Array.length viable = 0 then None
        else begin
          let next = viable.(Xorshift.int rng (Array.length viable)) in
          walk next (Data_tree.label tree next :: acc) (remaining - 1)
        end
      end
    in
    walk start [ Data_tree.label tree start ] (length - 1)
  end

let lemma4 suite =
  let per_env env =
    let rng = Xorshift.create (suite.config.seed + 1009) in
    let heights = node_heights env.tree in
    let k = Summary.k env.summary in
    let lengths = [ k + 1; k + 2; k + 3 ] in
    let samples =
      List.concat_map
        (fun length ->
          List.filter_map
            (fun _ -> sample_path rng env.tree heights ~length)
            (List.init 8 (fun i -> i)))
        lengths
    in
    let max_gap scheme =
      List.fold_left
        (fun acc labels ->
          let markov = Markov_path.estimate env.summary labels in
          let decomposed = Estimator.estimate env.summary scheme (Twig.of_path labels) in
          let denom = Float.max 1.0 (Float.abs markov) in
          Float.max acc (Float.abs (markov -. decomposed) /. denom))
        0.0 samples
    in
    [
      env.dataset.Dataset.name;
      Table.int_cell (List.length samples);
      Printf.sprintf "%.2e" (max_gap Estimator.Recursive);
      Printf.sprintf "%.2e" (max_gap Estimator.Fixed_size);
    ]
  in
  Report.section "lemma4" "Markov-path equivalence (max relative gap vs Markov formula)"
  ^ Table.render
      ~header:[ "dataset"; "paths"; "recursive gap"; "fixed-size gap" ]
      (List.map per_env suite.suite_envs)

(* --- ablations (beyond the paper; see DESIGN.md #6) ------------------------- *)

(* Lattice-depth ablation: accuracy/space trade-off of k, the design choice
   the paper fixes at 4. *)
let ablation_k suite =
  let subjects =
    List.filter (fun env -> List.mem env.dataset.Dataset.name [ "nasa"; "xmark" ]) suite.suite_envs
  in
  let depths = [ 2; 3; 4; 5 ] in
  let per_env env =
    let size = List.fold_left max 0 suite.config.sizes in
    let wl =
      Workload.positive ~seed:(suite.config.seed + 211) env.ctx ~size
        ~count:suite.config.queries_per_size
    in
    let rows =
      List.map
        (fun k ->
          let summary, build_ms = Timer.time_ms (fun () -> Summary.build ?pool:suite.pool ~k env.tree) in
          let pairs =
            Workload.pairs wl ~estimate:(fun twig -> Estimator.estimate summary Recursive_voting twig)
          in
          [
            Table.int_cell k;
            Report.percent (Error_metric.average_percent ~sanity:wl.Workload.sanity pairs);
            Report.kb (Summary.memory_bytes summary);
            Report.seconds (build_ms /. 1000.0);
          ])
        depths
    in
    Printf.sprintf "[%s] voting estimator on size-%d queries\n" env.dataset.Dataset.name size
    ^ Table.render ~header:[ "k"; "avg error"; "summary size"; "build time" ] rows
  in
  Report.section "ablation-k" "Lattice depth ablation (k = 2..5)"
  ^ String.concat "\n" (List.map per_env subjects)

(* Pair-choice ablation: how sensitive is the recursive scheme to which
   leaf pair is removed, and how much of that spread does voting recover? *)
let ablation_pairs suite =
  let per_env env =
    let size = List.fold_left max 0 suite.config.sizes in
    let wl =
      Workload.positive ~seed:(suite.config.seed + 223) env.ctx ~size
        ~count:suite.config.queries_per_size
    in
    let spread_stats =
      Array.map
        (fun q ->
          let votes = Array.of_list (Estimator.first_level_votes env.summary q.Workload.twig) in
          let truth = float_of_int (max q.Workload.truth 1) in
          (Tl_util.Stats.maximum votes -. Tl_util.Stats.minimum votes) /. truth)
        wl.Workload.queries
    in
    let err scheme =
      let pairs = Workload.pairs wl ~estimate:(fun t -> Estimator.estimate env.summary scheme t) in
      Error_metric.average_percent ~sanity:wl.Workload.sanity pairs
    in
    [
      env.dataset.Dataset.name;
      Table.int_cell (Array.length wl.Workload.queries);
      Report.percent (100.0 *. Tl_util.Stats.mean spread_stats);
      Report.percent (100.0 *. Tl_util.Stats.maximum spread_stats);
      Report.percent (err Estimator.Recursive);
      Report.percent (err Estimator.Recursive_voting);
    ]
  in
  Report.section "ablation-pairs" "Leaf-pair choice sensitivity of recursive decomposition"
  ^ Table.render
      ~header:[ "dataset"; "queries"; "mean spread"; "max spread"; "first-pair err"; "voting err" ]
      (List.map per_env suite.suite_envs)

(* Incremental maintenance: the paper claims the approach "is incremental in
   nature" but never evaluates it.  Mine two document halves separately and
   merge, versus mining the concatenation, and compare cost and counts. *)
let incremental suite =
  let config = suite.config in
  let per_env env =
    let d = env.dataset in
    let half = config.target / 2 in
    let tree_a = Dataset.tree d ~target:half ~seed:config.seed in
    let tree_b = Dataset.tree d ~target:half ~seed:(config.seed + 1) in
    let tl, base_ms =
      Timer.time_ms (fun () -> Tl_core.Treelattice.build ?pool:suite.pool ~k:config.k tree_a)
    in
    let merged, incr_ms =
      Timer.time_ms (fun () -> Tl_core.Treelattice.add_document ?pool:suite.pool tl tree_b)
    in
    (* Cross-check: merged counts must equal the sum of per-document exact
       counts for every stored pattern. *)
    let ctx_b = Match_count.create_ctx tree_b in
    let remap =
      let names_a = Data_tree.label_names tree_a in
      fun l ->
        (* Pattern labels live in tree_a's space; find tree_b's id or any
           fresh id for tags absent from B. *)
        Option.value ~default:(-1) (Data_tree.label_of_string tree_b names_a.(l))
    in
    let ctx_a = Match_count.create_ctx tree_a in
    let mismatches = ref 0 in
    Summary.fold
      (fun twig count () ->
        let in_a = Match_count.selectivity ctx_a twig in
        let twig_b = Twig.map_labels remap twig in
        let in_b =
          if List.exists (fun l -> l < 0) (Twig.labels twig_b) then 0
          else Match_count.selectivity ctx_b (Twig.canonicalize twig_b)
        in
        if count <> in_a + in_b then incr mismatches)
      (Tl_core.Treelattice.summary merged)
      ();
    [
      d.Dataset.name;
      Table.int_cell (Summary.entries (Tl_core.Treelattice.summary merged));
      Table.int_cell !mismatches;
      Report.seconds (base_ms /. 1000.0);
      Report.seconds (incr_ms /. 1000.0);
    ]
  in
  Report.section "incr" "Incremental summary maintenance (mine half, add half)"
  ^ Table.render
      ~header:[ "dataset"; "merged patterns"; "count mismatches"; "initial build"; "incremental add" ]
      (List.map per_env suite.suite_envs)

(* Markov-table baseline on paths and twigs: the classical path estimator
   matches TreeLattice on paths of matching order (Lemma 4) and cannot see
   branching structure at all — the gap the paper's framework closes. *)
let pathcmp suite =
  let per_env env =
    let heights = node_heights env.tree in
    let rng = Xorshift.create (suite.config.seed + 409) in
    let k = Summary.k env.summary in
    let markov = Tl_paths.Markov_table.build ~order:k env.tree in
    (* Path workload: sampled occurring paths one and two steps past k. *)
    let paths =
      List.concat_map
        (fun length ->
          List.filter_map
            (fun _ -> sample_path rng env.tree heights ~length)
            (List.init 12 (fun i -> i)))
        [ k + 1; k + 2 ]
    in
    let paths = Tl_util.Prelude.list_unique ~cmp:compare paths in
    let path_pairs estimate =
      Array.of_list
        (List.map
           (fun labels ->
             (Match_count.selectivity env.ctx (Twig.of_path labels), estimate labels))
           paths)
    in
    let path_sanity =
      match paths with
      | [] -> 10.0
      | _ ->
        Error_metric.sanity_bound
          (Array.of_list (List.map (fun p -> Match_count.selectivity env.ctx (Twig.of_path p)) paths))
    in
    let markov_err =
      Error_metric.average_percent ~sanity:path_sanity
        (path_pairs (Tl_paths.Markov_table.estimate markov))
    in
    let lattice_err =
      Error_metric.average_percent ~sanity:path_sanity
        (path_pairs (fun labels -> Estimator.estimate env.summary Recursive (Twig.of_path labels)))
    in
    (* Branching twig workload, where the path table is blind: its best
       effort is the root-to-leaf path of the twig's spine. *)
    let twig_wl =
      Workload.positive ~seed:(suite.config.seed + 419) env.ctx ~size:(k + 2)
        ~count:suite.config.queries_per_size
    in
    let spine twig =
      (* Longest root-to-leaf label chain of the twig. *)
      let rec longest (t : Twig.t) =
        match t.Twig.children with
        | [] -> [ t.Twig.label ]
        | kids ->
          t.Twig.label
          :: List.fold_left
               (fun best c ->
                 let cand = longest c in
                 if List.length cand > List.length best then cand else best)
               [] kids
      in
      longest twig
    in
    let twig_err estimate =
      Error_metric.average_percent ~sanity:twig_wl.Workload.sanity (Workload.pairs twig_wl ~estimate)
    in
    [
      env.dataset.Dataset.name;
      Table.int_cell (List.length paths);
      Report.percent markov_err;
      Report.percent lattice_err;
      Report.percent (twig_err (fun t -> Tl_paths.Markov_table.estimate markov (spine t)));
      Report.percent (twig_err (fun t -> Estimator.estimate env.summary Recursive_voting t));
    ]
  in
  Report.section "pathcmp" "Markov path table vs TreeLattice (paths, then branching twigs)"
  ^ Table.render
      ~header:
        [ "dataset"; "paths"; "markov path err"; "lattice path err"; "markov twig err"; "lattice twig err" ]
      (List.map per_env suite.suite_envs)

(* Workload-adaptive estimation (future work #3): a skewed query stream
   with feedback; errors before and after the cache warms up. *)
let adaptive suite =
  let per_env env =
    let rng = Xorshift.create (suite.config.seed + 431) in
    let size = List.fold_left max 0 suite.config.sizes in
    let pool =
      Workload.positive ~seed:(suite.config.seed + 433) env.ctx ~size
        ~count:(max 8 (suite.config.queries_per_size / 2))
    in
    if Array.length pool.Workload.queries = 0 then
      [ env.dataset.Dataset.name; "0"; "-"; "-"; "-" ]
    else begin
      let frontend = Tl_core.Treelattice.of_summary env.tree env.summary in
      let adaptive = Tl_core.Adaptive.create ~capacity:64 frontend in
      let stream_length = 200 in
      let npool = Array.length pool.Workload.queries in
      let first_half_errors = ref [] in
      let second_half_errors = ref [] in
      for i = 1 to stream_length do
        (* Zipf-skewed choice: popular queries repeat, as in real workloads. *)
        let q = pool.Workload.queries.(Xorshift.zipf rng ~n:npool ~s:1.3 - 1) in
        let estimate = Tl_core.Adaptive.estimate adaptive q.Workload.twig in
        let err =
          Error_metric.error_percent ~sanity:pool.Workload.sanity ~truth:q.Workload.truth ~estimate
        in
        if i <= stream_length / 2 then first_half_errors := err :: !first_half_errors
        else second_half_errors := err :: !second_half_errors;
        (* Feedback: the query was executed, learn its true count. *)
        Tl_core.Adaptive.observe adaptive q.Workload.twig q.Workload.truth
      done;
      [
        env.dataset.Dataset.name;
        Table.int_cell stream_length;
        Report.percent (Tl_util.Stats.mean (Array.of_list !first_half_errors));
        Report.percent (Tl_util.Stats.mean (Array.of_list !second_half_errors));
        Table.int_cell (Tl_core.Adaptive.cached_patterns adaptive);
      ]
    end
  in
  Report.section "adaptive" "Workload-adaptive estimation (query feedback, skewed stream)"
  ^ Table.render
      ~header:[ "dataset"; "stream"; "err (1st half)"; "err (2nd half)"; "patterns learned" ]
      (List.map per_env suite.suite_envs)

(* Estimate-driven join ordering — the paper's first motivating application
   ("determining an optimal query plan, based on said estimates").  Naive
   preorder plans vs greedy estimator-guided plans, measured in actually
   materialized intermediate tuples. *)
let joinopt suite =
  let per_env env =
    let size = List.fold_left max 0 suite.config.sizes in
    let wl =
      Workload.positive ~seed:(suite.config.seed + 443) env.ctx ~size
        ~count:(max 8 (suite.config.queries_per_size / 2))
    in
    (* The cap bounds runaway naive plans; a truncated run is charged the
       cap (a lower bound on its real cost). *)
    let cap = 500_000 in
    let naive_total = ref 0 in
    let greedy_total = ref 0 in
    let wins = ref 0 in
    let naive_blowups = ref 0 in
    let queries = Array.length wl.Workload.queries in
    Array.iter
      (fun q ->
        let twig = q.Workload.twig in
        let naive = Tl_join.Executor.run ~cap env.tree (Tl_join.Plan.naive twig) in
        let greedy = Tl_join.Executor.run ~cap env.tree (Tl_join.Plan.greedy env.summary twig) in
        if (not naive.Tl_join.Executor.truncated) && not greedy.Tl_join.Executor.truncated then
          assert (naive.Tl_join.Executor.result_count = greedy.Tl_join.Executor.result_count);
        if naive.Tl_join.Executor.truncated then incr naive_blowups;
        naive_total := !naive_total + naive.Tl_join.Executor.tuples_materialized;
        greedy_total := !greedy_total + greedy.Tl_join.Executor.tuples_materialized;
        if greedy.Tl_join.Executor.tuples_materialized < naive.Tl_join.Executor.tuples_materialized
        then incr wins)
      wl.Workload.queries;
    [
      env.dataset.Dataset.name;
      Table.int_cell queries;
      Table.int_cell !naive_total;
      Table.int_cell !greedy_total;
      Printf.sprintf "%.2fx"
        (float_of_int !naive_total /. Float.max 1.0 (float_of_int !greedy_total));
      Printf.sprintf "%d/%d" !wins queries;
      Table.int_cell !naive_blowups;
    ]
  in
  Report.section "joinopt" "Estimate-guided join ordering vs naive plans (intermediate tuples)"
  ^ Table.render
      ~header:
        [ "dataset"; "queries"; "naive tuples"; "guided tuples"; "reduction"; "strict wins"; "naive blowups" ]
      (List.map per_env suite.suite_envs)

(* --- registry -------------------------------------------------------------- *)

let all_experiments =
  [
    ("table1", "Dataset characteristics", table1);
    ("table2", "Subtree patterns per level", table2);
    ("table3", "Summary construction time and memory", table3);
    ("fig7", "Average estimation error", fig7);
    ("fig8", "Error distribution (CDF)", fig8);
    ("fig9", "Average response time", fig9);
    ("fig10a", "0-derivable pruning savings", fig10a);
    ("fig10b", "OPT lattice accuracy (Nasa)", fig10b);
    ("fig10c", "Summary size vs delta (IMDB)", fig10c);
    ("fig10d", "Estimation quality vs delta (IMDB)", fig10d);
    ("neg", "Zero-selectivity workloads", negative);
    ("lemma4", "Markov-path equivalence", lemma4);
    ("ablation-k", "Lattice depth ablation", ablation_k);
    ("ablation-pairs", "Leaf-pair sensitivity ablation", ablation_pairs);
    ("incr", "Incremental maintenance", incremental);
    ("pathcmp", "Markov path table vs TreeLattice", pathcmp);
    ("adaptive", "Workload-adaptive estimation", adaptive);
    ("joinopt", "Estimate-guided join ordering", joinopt);
  ]

let run_one id driver suite =
  Tl_obs.Span.with_ ("exp.run:" ^ id) @@ fun () ->
  Tl_obs.Metrics.incr "experiments.runs";
  Tl_obs.Log.info (fun m -> m "running experiment %s" id);
  driver suite

let run suite id =
  Option.map (fun (eid, _, driver) -> run_one eid driver suite)
    (List.find_opt (fun (eid, _, _) -> String.equal eid id) all_experiments)

let run_all suite =
  String.concat "" (List.map (fun (eid, _, driver) -> run_one eid driver suite) all_experiments)
