(** Drivers for every table and figure of the paper's evaluation (§5).

    A {!suite} prepares the four datasets once (generation, lattice mining,
    TreeSketches construction, workload sampling) and the experiment
    functions render each artifact as a text report.  The mapping from
    experiment id to paper artifact is DESIGN.md §4; EXPERIMENTS.md records
    paper-vs-measured values. *)

type config = {
  seed : int;
  target : int;  (** generated element count per dataset *)
  queries_per_size : int;  (** positive workload width *)
  sizes : int list;  (** query sizes for Figs. 7-9 (paper: 4-8) *)
  k : int;  (** lattice depth (paper default: 4) *)
  table2_depth : int;  (** mining depth for Table 2 (paper: 5) *)
  sketch_budget : int;  (** TreeSketches memory budget in bytes (paper: 50 KB) *)
  fig10b_sizes : int list;  (** query sizes for Fig. 10(b) (paper: 4-9) *)
}

val default_config : config
(** The full reproduction: 40k-element datasets, 40 queries per size. *)

val quick_config : config
(** A seconds-scale configuration for tests and smoke runs. *)

(** One prepared dataset: document, tree, summary, serving engine,
    synopsis, workloads, and the construction timings that feed Table 3. *)
type env = {
  dataset : Tl_datasets.Dataset.t;
  document : Tl_xml.Xml_dom.element;
  tree : Tl_tree.Data_tree.t;
  ctx : Tl_twig.Match_count.ctx;
  summary : Tl_lattice.Summary.t;
  engine : Tl_serve.Engine.t;
      (** plan-cached front over [summary]; the lattice schemes in every
          figure estimate through it (bit-identical to direct estimation) *)
  lattice_ms : float;
  sketch : Tl_sketch.Synopsis.t;
  sketch_ms : float;
  workloads : Tl_workload.Workload.t list;
}

type suite

val make_suite :
  ?pool:Tl_util.Pool.t -> ?datasets:Tl_datasets.Dataset.t list -> config -> suite
(** Prepare every dataset (default: all four).  This is the expensive
    step; each experiment below is cheap against a prepared suite.
    [pool] parallelizes summary construction here and the per-query
    workload loops of every experiment run against the suite; all
    reported numbers except wall-clock timings are identical with or
    without it. *)

val suite_config : suite -> config

val suite_pool : suite -> Tl_util.Pool.t option

val envs : suite -> env list

val prepare : ?pool:Tl_util.Pool.t -> config -> Tl_datasets.Dataset.t -> env
(** Prepare a single dataset outside a suite. *)

(** {2 Experiments} — each renders a self-contained text report. *)

val table1 : suite -> string
(** Dataset characteristics: generated vs paper elements and sizes. *)

val table2 : suite -> string
(** Occurring subtree patterns per lattice level. *)

val table3 : suite -> string
(** Summary construction time and memory utilization, TreeLattice vs
    TreeSketches. *)

val fig7 : suite -> string
(** Average estimation error vs query size, per dataset and estimator. *)

val fig8 : suite -> string
(** Error CDF: fraction of queries under fixed error thresholds. *)

val fig9 : suite -> string
(** Average estimation response time vs query size. *)

val fig10a : suite -> string
(** Lattice size with and without 0-derivable patterns, per dataset. *)

val fig10b : suite -> string
(** Accuracy of the pruned deeper lattice ("OPT") on Nasa. *)

val fig10c : suite -> string
(** IMDB summary size under δ ∈ {0, 10, 20, 30}%. *)

val fig10d : suite -> string
(** IMDB estimation quality under the same δ sweep. *)

val negative : suite -> string
(** Accuracy on zero-selectivity workloads (§5.1 text). *)

val lemma4 : suite -> string
(** Markov-path equivalence check on sampled path queries. *)

(** {2 Ablations beyond the paper} (DESIGN.md §6) *)

val ablation_k : suite -> string
(** Accuracy / space / build-time trade-off of the lattice depth
    [k ∈ 2..5], the design parameter the paper fixes at 4. *)

val ablation_pairs : suite -> string
(** Sensitivity of the recursive scheme to the leaf-pair choice (estimate
    spread across pairs) and how much voting recovers. *)

val incremental : suite -> string
(** Incremental maintenance: mine half a dataset, add the other half with
    {!Tl_core.Treelattice.add_document}, verify count additivity, and
    compare against the initial build cost. *)

val pathcmp : suite -> string
(** The classical Markov path table (related work) vs TreeLattice: equal on
    path queries of matching order, blind on branching twigs. *)

val adaptive : suite -> string
(** Workload-adaptive estimation (future work #3): error over a skewed
    query stream with feedback, before and after the cache warms. *)

val joinopt : suite -> string
(** Estimate-guided join ordering vs naive plans: the paper's first
    motivating application, measured in materialized intermediate
    tuples. *)

val all_experiments : (string * string * (suite -> string)) list
(** [(id, title, driver)] in report order. *)

val run : suite -> string -> string option
(** Run one experiment by id. *)

val run_all : suite -> string
(** Every experiment, concatenated in order. *)
