module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count

type twig_count = Twig.t * int

type result = { max_size : int; levels : twig_count list array }

(* Downward closure: a candidate can only occur if every sub-twig obtained
   by dropping one degree-1 node occurred at the previous level. *)
let sub_twigs_occur prev_level candidate =
  let ix = Twig.index candidate in
  List.for_all
    (fun i -> Hashtbl.mem prev_level (Twig.Key.id (Twig.key (Twig.remove ix i))))
    (Twig.degree_one ix)

(* Candidate counting is the miner's hot loop and each candidate is
   independent, so a batch is counted across a domain pool when one is
   given: every participant clones the shared context (private DP buffers
   over the shared immutable tree) and results come back in input order,
   so the final per-level sort sees exactly the sequential result set.

   Counting one candidate costs time proportional to the document, so the
   work in a batch is [candidates * nodes].  Below [parallel_work_budget]
   of that product the fan-out overhead (helper wake-up, chunk-cursor
   contention, end-of-map rendezvous, cross-domain GC rendezvous)
   outweighs the counting itself — the bench's parallel-build section
   measured 0.5-0.7x "speedups" on small documents before this floor
   existed — so such batches stay on the sequential path (identical
   results either way; the parallel-build bench asserts it). *)
let parallel_work_budget = 16_000_000

let count_batch ?pool ctx candidates =
  let count cctx candidate = (candidate, Match_count.selectivity cctx candidate) in
  match pool with
  | None -> Array.map (count ctx) candidates
  | Some pool ->
    let nodes = max 1 (Data_tree.size (Match_count.tree ctx)) in
    Tl_util.Pool.parallel_chunked_map pool
      ~cutoff:(parallel_work_budget / nodes)
      ~init:(fun () -> Match_count.clone_ctx ctx)
      count candidates

let mine ?pool ctx ~max_size =
  if max_size < 1 then invalid_arg "Miner.mine: max_size must be >= 1";
  Tl_obs.Span.with_ "miner.mine" @@ fun () ->
  let tree = Match_count.tree ctx in
  let levels = Array.make (max_size + 1) [] in
  (* Level 1: one pattern per occurring label. *)
  let nlabels = Data_tree.label_count tree in
  let level1 = ref [] in
  for l = nlabels - 1 downto 0 do
    let occurrences = Array.length (Data_tree.nodes_with_label tree l) in
    if occurrences > 0 then level1 := (Twig.leaf l, occurrences) :: !level1
  done;
  levels.(1) <- !level1;
  (* Child labels that can extend a node labeled [lp]. *)
  let extensions = Array.make nlabels [] in
  List.iter
    (fun (lp, lc) -> extensions.(lp) <- lc :: extensions.(lp))
    (Data_tree.edge_label_pairs tree);
  Array.iteri (fun lp kids -> extensions.(lp) <- List.sort_uniq compare kids) extensions;
  (* Levels 2..max_size by rightmost-style extension of every node.  Dedup
     tables key on interned canonical ids — candidate generation is the one
     place the miner used to build (and hash) an encoding string per
     candidate per extension site. *)
  let prev_table : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  let reset_prev level =
    Hashtbl.reset prev_table;
    List.iter (fun (t, _) -> Hashtbl.replace prev_table (Twig.Key.id (Twig.key t)) ()) level
  in
  let rec grow_level s =
    if s <= max_size then begin
      Tl_obs.Span.with_ "miner.level" (fun () ->
          reset_prev levels.(s - 1);
          let candidates = Hashtbl.create 256 in
          List.iter
            (fun (pattern, _) ->
              let ix = Twig.index pattern in
              Array.iteri
                (fun i lp ->
                  List.iter
                    (fun lc ->
                      let candidate = Twig.grow ix i lc in
                      let key = Twig.Key.id (Twig.key candidate) in
                      if not (Hashtbl.mem candidates key) then Hashtbl.replace candidates key candidate)
                    extensions.(lp))
                ix.Twig.node_labels)
            levels.(s - 1);
          let survivors =
            Hashtbl.fold
              (fun _ candidate acc ->
                if s = 2 || sub_twigs_occur prev_table candidate then candidate :: acc else acc)
              candidates []
          in
          Tl_obs.Metrics.add "miner.candidates_generated" (Hashtbl.length candidates);
          Tl_obs.Metrics.add "miner.candidates_counted" (List.length survivors);
          let counted =
            Array.fold_left
              (fun acc (candidate, count) -> if count > 0 then (candidate, count) :: acc else acc)
              []
              (count_batch ?pool ctx (Array.of_list survivors))
          in
          Tl_obs.Metrics.add "miner.patterns_kept" (List.length counted);
          Tl_obs.Metrics.observe "miner.level_patterns" (List.length counted);
          levels.(s) <- List.sort (fun (a, _) (b, _) -> Twig.compare a b) counted);
      grow_level (s + 1)
    end
  in
  grow_level 2;
  levels.(1) <- List.sort (fun (a, _) (b, _) -> Twig.compare a b) levels.(1);
  Tl_obs.Log.debug (fun m ->
      m "mined %d pattern(s) across %d level(s)"
        (Array.fold_left (fun acc l -> acc + List.length l) 0 levels)
        max_size);
  { max_size; levels }

let all r = List.concat (Array.to_list r.levels)

let level r s = if s < 1 || s > r.max_size then [] else r.levels.(s)

let patterns_per_level r = Array.init r.max_size (fun i -> List.length r.levels.(i + 1))

let total_patterns r = Array.fold_left (fun acc l -> acc + List.length l) 0 r.levels
