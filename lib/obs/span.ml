(* Nested monotonic-clock spans.

   Same sharding discipline as Metrics: every domain keeps its own open
   stack and finished buffer in domain-local storage, registered once in
   a global list so [finished]/[dump_jsonl]/[flame] can merge them.
   Spans are disabled by default; when disabled, [with_] is a single
   atomic load on top of the wrapped call. *)

type span = {
  name : string;
  path : string;  (* semicolon-joined ancestor chain, e.g. "build;mine;level" *)
  domain : int;
  depth : int;  (* 1 for a root span *)
  start_ns : int;  (* relative to the trace epoch *)
  dur_ns : int;
}

type frame = { f_path : string; f_depth : int; f_start : int }

type local = { domain : int; mutable stack : frame list; mutable done_rev : span list }

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled v = Atomic.set enabled_flag v

let epoch = Clock.now_ns ()

let registry_mutex = Mutex.create ()

let locals : local list ref = ref []

let local_key =
  Domain.DLS.new_key (fun () ->
      let l = { domain = (Domain.self () :> int); stack = []; done_rev = [] } in
      Mutex.lock registry_mutex;
      locals := l :: !locals;
      Mutex.unlock registry_mutex;
      l)

let with_ name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let l = Domain.DLS.get local_key in
    let path, depth =
      match l.stack with
      | [] -> (name, 1)
      | fr :: _ -> (fr.f_path ^ ";" ^ name, fr.f_depth + 1)
    in
    let start = Clock.now_ns () in
    l.stack <- { f_path = path; f_depth = depth; f_start = start } :: l.stack;
    let finish () =
      let dur = Clock.now_ns () - start in
      (match l.stack with _ :: rest -> l.stack <- rest | [] -> ());
      l.done_rev <-
        { name; path; domain = l.domain; depth; start_ns = start - epoch; dur_ns = dur }
        :: l.done_rev
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let all_locals () =
  Mutex.lock registry_mutex;
  let ls = !locals in
  Mutex.unlock registry_mutex;
  ls

let reset () =
  List.iter
    (fun l ->
      l.stack <- [];
      l.done_rev <- [])
    (all_locals ())

let finished () =
  let spans = List.concat_map (fun l -> l.done_rev) (all_locals ()) in
  List.sort
    (fun a b ->
      match compare a.start_ns b.start_ns with
      | 0 -> ( match compare a.domain b.domain with 0 -> compare a.path b.path | c -> c)
      | c -> c)
    spans

(* --- JSONL sink --------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char buf '\\'; Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_json s =
  Printf.sprintf
    {|{"name":"%s","path":"%s","domain":%d,"depth":%d,"start_ns":%d,"dur_ns":%d}|}
    (json_escape s.name) (json_escape s.path) s.domain s.depth s.start_ns s.dur_ns

let dump_jsonl oc =
  let spans = finished () in
  List.iter
    (fun s ->
      output_string oc (span_json s);
      output_char oc '\n')
    spans;
  List.length spans

(* The registered sink is drained exactly once — explicitly via
   [close_sink], or by the [at_exit] hook when the process leaves through
   [exit] (including the CLI's error paths), so a [--trace] file is never
   left truncated or empty by an early exit.  Guarded by a mutex: the
   at_exit hook and an explicit close can race only in pathological
   nested-exit scenarios, but the guard makes close idempotent anyway. *)
let sink_mutex = Mutex.create ()

let sink : (string * out_channel) option ref = ref None

let at_exit_registered = ref false

let drain_sink () =
  Mutex.lock sink_mutex;
  let current = !sink in
  sink := None;
  Mutex.unlock sink_mutex;
  match current with
  | None -> None
  | Some (path, oc) ->
    let spans = dump_jsonl oc in
    flush oc;
    close_out_noerr oc;
    Some (path, spans)

let close_sink () = drain_sink ()

let set_sink path =
  let oc = open_out path in
  Mutex.lock sink_mutex;
  let previous = !sink in
  sink := Some (path, oc);
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () -> ignore (drain_sink ()))
  end;
  Mutex.unlock sink_mutex;
  (match previous with
  | None -> ()
  | Some (_, old) ->
    flush old;
    close_out_noerr old);
  set_enabled true

(* --- flame summary ------------------------------------------------------ *)

(* One row per distinct path: calls, total time, self time (total minus
   direct children).  Sorting by path string keeps children right under
   their parent since a parent's path is a strict prefix. *)
let flame () =
  let spans = finished () in
  let totals : (string, int * int) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let calls, ns = Option.value ~default:(0, 0) (Hashtbl.find_opt totals s.path) in
      Hashtbl.replace totals s.path (calls + 1, ns + s.dur_ns))
    spans;
  let child_ns : (string, int) Hashtbl.t = Hashtbl.create 32 in
  Hashtbl.iter
    (fun path (_, ns) ->
      match String.rindex_opt path ';' with
      | None -> ()
      | Some i ->
        let parent = String.sub path 0 i in
        Hashtbl.replace child_ns parent (ns + Option.value ~default:0 (Hashtbl.find_opt child_ns parent)))
    totals;
  let rows =
    List.sort compare (Hashtbl.fold (fun path (calls, ns) acc -> (path, calls, ns) :: acc) totals [])
  in
  let ms ns = Printf.sprintf "%.2f" (Clock.ns_to_ms ns) in
  Tl_util.Table.render
    ~header:[ "span"; "calls"; "total ms"; "self ms"; "mean ms" ]
    (List.map
       (fun (path, calls, ns) ->
         let depth = ref 0 in
         String.iter (fun c -> if c = ';' then incr depth) path;
         let name =
           match String.rindex_opt path ';' with
           | None -> path
           | Some i -> String.sub path (i + 1) (String.length path - i - 1)
         in
         let self = ns - Option.value ~default:0 (Hashtbl.find_opt child_ns path) in
         [
           String.make (2 * !depth) ' ' ^ name;
           string_of_int calls;
           ms ns;
           ms self;
           ms (ns / calls);
         ])
       rows)
