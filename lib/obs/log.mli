(** Logging for the whole system, on one [Logs] source.

    Libraries call the usual [Logs.LOG] functions ([err]/[warn]/[info]/
    [debug]) included here; binaries call {!setup} once to install a
    stderr reporter at the level selected by [--log-level].  Without
    {!setup} no reporter is installed and every message is dropped
    cheaply, so library instrumentation is safe to leave in place. *)

include Logs.LOG

val src : Logs.src

type level = Quiet | Info | Debug
(** [Quiet] still reports errors; [Info] adds progress lines; [Debug]
    adds per-phase detail. *)

val level_of_string : string -> (level, string) result

val level_name : level -> string

val setup : level -> unit
(** Install a domain-serialized stderr reporter and set the level. *)
