(* One shared Logs source for the whole system, plus a tiny reporter
   setup so binaries can wire `--log-level` in one call.  Libraries log
   through [info]/[debug]/[err]; with no reporter installed (the
   default) every message is dropped for the cost of a level check. *)

let src = Logs.Src.create "treelattice" ~doc:"TreeLattice diagnostics"

include (val Logs.src_log src : Logs.LOG)

type level = Quiet | Info | Debug

let level_of_string = function
  | "quiet" -> Ok Quiet
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S (quiet, info, debug)" other)

let level_name = function Quiet -> "quiet" | Info -> "info" | Debug -> "debug"

(* Logs' format reporter is not domain-safe; serialize it so stray
   worker-domain messages cannot interleave. *)
let synchronized r =
  let m = Mutex.create () in
  {
    Logs.report =
      (fun src level ~over k msgf ->
        Mutex.lock m;
        let over () =
          Mutex.unlock m;
          over ()
        in
        r.Logs.report src level ~over k msgf);
  }

let setup level =
  let logs_level =
    match level with Quiet -> Logs.Error | Info -> Logs.Info | Debug -> Logs.Debug
  in
  Logs.set_level (Some logs_level);
  Logs.set_reporter
    (synchronized
       (Logs.format_reporter ~app:Format.err_formatter ~dst:Format.err_formatter ()))
