(* A minimal blocking HTTP/1.0 exposition endpoint.

   One listening TCP socket on loopback, one background system thread
   accepting connections and serving registered GET routes.  This is a
   scrape target, not a web server: requests are read once (first line
   parsed, headers ignored), responses carry Content-Length and close the
   connection, and a slow or silent client is bounded by a receive
   timeout so it can stall at most one scrape, never the process.

   The threading stays confined to this module: nothing else in the
   library starts threads, and the serving hot paths never synchronize
   with the endpoint — a scrape reads the same deterministic
   [Metrics.snapshot] merge every offline consumer reads. *)

type response = { status : int; content_type : string; body : string }

let text ?(status = 200) body = { status; content_type = "text/plain; version=0.0.4"; body }

type t = {
  sock : Unix.file_descr;
  host : string;
  port : int;
  timeout : float;
  routes : (string * (unit -> response)) list;
  stopping : bool Atomic.t;
  mutable thread : Thread.t option;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let default_metrics () = text (Metrics.to_prometheus (Metrics.snapshot ()))

(* The response writer must survive the transient errors a healthy but
   slow scraper produces — [EINTR] (a signal landed) and [EAGAIN]/
   [EWOULDBLOCK] (the send timeout expired while the client drained its
   window) — or the body silently truncates mid-scrape.  Only a client
   that is actually gone ([EPIPE]/[ECONNRESET]) or one that stalls for
   [max_stalls] consecutive timeout periods without accepting a single
   byte aborts the response (via [Exit], which the caller swallows). *)
let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  let max_stalls = 4 in
  let stalls = ref 0 in
  while !off < len do
    match Unix.write_substring fd s !off (len - !off) with
    | n ->
      if n <= 0 then raise Exit;
      stalls := 0;
      off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      incr stalls;
      if !stalls >= max_stalls then raise Exit
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ETIMEDOUT), _, _) ->
      raise Exit
  done

(* Read until the end of the request line; headers past it are ignored.
   Bounded by the buffer cap and the socket receive timeout. *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf < 8192 && not (String.contains (Buffer.contents buf) '\n') then begin
      let n = Unix.read fd chunk 0 (Bytes.length chunk) in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      end
    end
  in
  (try go () with Unix.Unix_error _ | Exit -> ());
  match String.index_opt (Buffer.contents buf) '\n' with
  | None -> Buffer.contents buf
  | Some i -> String.trim (String.sub (Buffer.contents buf) 0 i)

let respond fd r =
  let head =
    Printf.sprintf "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      r.status (reason r.status) r.content_type (String.length r.body)
  in
  write_all fd head;
  write_all fd r.body

let handle t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.timeout;
  let line = read_request_line fd in
  Metrics.incr "exporter.requests";
  let resp =
    match String.split_on_char ' ' line with
    | meth :: target :: _ when String.uppercase_ascii meth = "GET" ->
      let path =
        match String.index_opt target '?' with
        | None -> target
        | Some i -> String.sub target 0 i
      in
      (match List.assoc_opt path t.routes with
      | Some f -> (
        try f ()
        with e ->
          Metrics.incr "exporter.errors";
          { status = 500; content_type = "text/plain"; body = Printexc.to_string e ^ "\n" })
      | None -> { status = 404; content_type = "text/plain"; body = "not found\n" })
    | _ -> { status = 400; content_type = "text/plain"; body = "bad request\n" }
  in
  respond fd resp

let serve_loop t =
  while not (Atomic.get t.stopping) do
    match Unix.accept t.sock with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
    | exception Unix.Unix_error _ -> Atomic.set t.stopping true
    | fd, _ ->
      (try handle t fd with Unix.Unix_error _ | Exit -> ());
      (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
  done

(* A scraper that disconnects mid-response must surface as an EPIPE error
   (which the accept loop already swallows), not as a process-killing
   SIGPIPE — the default signal disposition would let any impatient
   client take down the whole serving process. *)
let ignore_sigpipe =
  lazy (if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore)

let start ?(host = "127.0.0.1") ?(port = 0) ?(timeout = 5.0) ?(routes = []) () =
  Lazy.force ignore_sigpipe;
  let addr = Unix.inet_addr_of_string host in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let ok =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (addr, port));
      Unix.listen sock 16;
      true
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  ignore ok;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let routes =
    if List.mem_assoc "/metrics" routes then routes else routes @ [ ("/metrics", default_metrics) ]
  in
  let t =
    { sock; host; port; timeout = Float.max 0.01 timeout; routes; stopping = Atomic.make false; thread = None }
  in
  t.thread <- Some (Thread.create serve_loop t);
  Metrics.set_gauge "exporter.port" port;
  Log.info (fun m -> m "exporter listening on http://%s:%d" host port);
  t

let port t = t.port

(* A blocked [accept] is not reliably woken by closing its fd, so stop
   nudges the loop with a throwaway loopback connection before joining. *)
let stop t =
  if not (Atomic.get t.stopping) then begin
    Atomic.set t.stopping true;
    (try
       let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect c (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port))
        with Unix.Unix_error _ -> ());
       Unix.close c
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.thread;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end
