(** A minimal blocking HTTP/1.0 exposition endpoint for live scraping.

    {!start} binds a loopback TCP socket and serves registered GET routes
    from a single background system thread; [/metrics] is always present
    and renders the current {!Metrics.snapshot} through
    {!Metrics.to_prometheus} — the {e same} renderer the bench and CLI
    file writers use, so a scrape and a [--metrics] file can never
    disagree in format.  Route callbacks run on the endpoint thread: keep
    them read-only snapshots (metrics text, recent audit records, an
    alarm flag), never mutations of serving state.

    This module is the only place in the library that starts a thread or
    touches a socket; everything else stays thread-free, and the serving
    hot paths never synchronize with a scrape. *)

type response = { status : int; content_type : string; body : string }

val text : ?status:int -> string -> response
(** A [text/plain] response (status 200 by default). *)

type t

val start :
  ?host:string ->
  ?port:int ->
  ?timeout:float ->
  ?routes:(string * (unit -> response)) list ->
  unit ->
  t
(** Bind [host] (default ["127.0.0.1"]) on [port] (default [0] = an
    ephemeral port, read back with {!port}), register [routes] (paths
    must start with ['/']; query strings are stripped before matching),
    and start the accept thread.  A route that raises answers 500 with
    the exception text; unknown paths answer 404.  Raises [Unix_error]
    when the bind fails (e.g. the port is taken).

    [timeout] (seconds, default 5.0) bounds each socket read and write.
    The response writer is robust to a {e slow} scraper: interrupted and
    timed-out partial writes are retried as long as the client keeps
    accepting bytes, and only a gone client ([EPIPE]/[ECONNRESET]) or
    several consecutive zero-progress timeout periods abort the response
    — a throttled reader receives the full body instead of a silently
    truncated one. *)

val port : t -> int
(** The actual bound port — useful with [port:0]. *)

val stop : t -> unit
(** Stop accepting, join the endpoint thread, close the socket.
    Idempotent. *)

(** {1 Socket plumbing shared with other servers}

    The TCP query front-end ({!Tl_serve.Server}) faces the same transient
    socket errors as a scrape endpoint; it reuses this module's write
    discipline instead of growing a second, subtly different copy. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, retrying [EINTR] and up to four consecutive
    zero-progress [EAGAIN]/[EWOULDBLOCK] timeout periods; a gone client
    ([EPIPE]/[ECONNRESET]/[ETIMEDOUT]) or a persistent stall raises
    [Exit], which callers treat as "drop this connection". *)

val ignore_sigpipe : unit Lazy.t
(** Force once before serving sockets: turns a client disconnect into an
    [EPIPE] error on the write path instead of a process-killing
    SIGPIPE. *)
