(** The observability clock: monotonic nanoseconds.

    This is the single time source for spans, metrics timestamps, and
    {!Tl_util.Timer} (which shares the same [CLOCK_MONOTONIC] primitive),
    so every duration reported by the system is step-free and mutually
    comparable. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary fixed epoch; never
    allocates.  Only differences are meaningful. *)

val now_s : unit -> float

val ns_to_ms : int -> float

val elapsed_ns : since:int -> int
