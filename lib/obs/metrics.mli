(** Domain-sharded metrics: counters, gauges, log-scale histograms.

    Each domain records into a private shard held in domain-local
    storage, so instrumentation inside {!Tl_util.Pool} maps is race-free
    and costs one hash lookup plus an integer update — no atomics, no
    locks on the hot path.  Shards survive their domain, so worker
    counts remain visible after [Pool.shutdown].

    {!snapshot} merges all shards {e deterministically}: counter and
    histogram cells are integers combined by addition (order-invariant),
    gauges merge with [max], and names come back sorted.  A parallel run
    that performs the same per-element work as a sequential run
    therefore yields a bit-identical snapshot — the property
    [test/test_obs.ml] checks.

    {!snapshot} and {!reset} must not race with in-flight instrumented
    parallel work; call them between pool maps (their natural place —
    end of a build, a level, a run). *)

val incr : string -> unit
(** Add 1 to a counter (created on first touch). *)

val add : string -> int -> unit
(** Add [by] to a counter. *)

val set_gauge : string -> int -> unit
(** Set a gauge on this domain's shard; shards merge with [max]. *)

val observe : string -> int -> unit
(** Record a value into a log-scale histogram: bucket 0 holds values
    [<= 1], bucket [i >= 1] holds [[2{^i}, 2{^i+1})]. *)

type hist_snapshot = {
  h_observations : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;
      (** [(bucket lower bound, count)], non-empty buckets only, ascending. *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}
(** A merged, name-sorted view of every shard.  Plain data: structural
    equality is meaningful (see {!equal_snapshot}). *)

val snapshot : unit -> snapshot

val equal_snapshot : snapshot -> snapshot -> bool

val reset : unit -> unit
(** Clear every shard (including those of exited domains). *)

val quantile : hist_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1], clamped) of
    the observations in [h] by log-bucket interpolation: the bucket
    holding the ranked observation is located in the cumulative series,
    and the value is placed linearly within that bucket's range (tightened
    to the recorded min/max at the edges).  Accurate to the bucket's
    factor-of-2 resolution; [nan] on an empty histogram. *)

val describe : string -> string -> unit
(** [describe name help] registers the [# HELP] text emitted for metric
    [name] by {!to_prometheus}.  Metrics without a registered or built-in
    description fall back to a generated line. *)

val to_prometheus : snapshot -> string
(** Prometheus-style text exposition: [tl_]-prefixed sanitized names,
    [# HELP] + [# TYPE] comments, and for each histogram the full
    cumulative [_bucket{le="..."}] series (empty buckets included up to
    the last populated one, then [+Inf]) plus [_sum] / [_count].  This is
    the single renderer shared by the bench/CLI file writers and the
    {!Exporter} endpoint. *)

val pp_table : snapshot -> string
(** Human-readable tables (via {!Tl_util.Table}). *)

(**/**)

val bucket_of : int -> int
(** Exposed for the bucketing unit tests. *)

val bucket_floor : int -> int
