(* Domain-sharded metric cells.

   Every domain that touches a metric gets its own shard (held in
   domain-local storage), so the hot-path operations — counter adds,
   gauge sets, histogram observations — never synchronize and never
   race, even from inside a [Tl_util.Pool] map.  Shards are registered
   in a global list the first time a domain touches any metric; a
   shard outlives its domain, so counts from pool workers survive
   [Pool.shutdown] and are still visible to [snapshot].

   Merging is deterministic by construction: counters and histogram
   cells are integers combined with addition (commutative and
   associative, so shard order is irrelevant), gauges merge with [max],
   and every snapshot lists names in sorted order.  That is what makes
   the parallel-vs-sequential identity property testable bit-for-bit. *)

let bucket_count = 62

type hist = {
  mutable observations : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let registry_mutex = Mutex.create ()

let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { counters = Hashtbl.create 16; gauges = Hashtbl.create 8; hists = Hashtbl.create 8 }
      in
      Mutex.lock registry_mutex;
      shards := s :: !shards;
      Mutex.unlock registry_mutex;
      s)

let my_shard () = Domain.DLS.get shard_key

(* --- recording ---------------------------------------------------------- *)

let add name by =
  let s = my_shard () in
  match Hashtbl.find_opt s.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace s.counters name (ref by)

let incr name = add name 1

let set_gauge name v =
  let s = my_shard () in
  match Hashtbl.find_opt s.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace s.gauges name (ref v)

(* Bucket 0 holds values <= 1; bucket i >= 1 holds [2^i, 2^(i+1)). *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 in
    let x = ref v in
    while !x > 1 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min (bucket_count - 1) !b
  end

let bucket_floor i = if i = 0 then 0 else 1 lsl i

let observe name v =
  let s = my_shard () in
  let h =
    match Hashtbl.find_opt s.hists name with
    | Some h -> h
    | None ->
      let h =
        { observations = 0; sum = 0; vmin = max_int; vmax = min_int; buckets = Array.make bucket_count 0 }
      in
      Hashtbl.replace s.hists name h;
      h
  in
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* --- snapshots ---------------------------------------------------------- *)

type hist_snapshot = {
  h_observations : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;  (* (bucket lower bound, count), non-empty buckets only *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let all_shards () =
  Mutex.lock registry_mutex;
  let s = !shards in
  Mutex.unlock registry_mutex;
  s

let sorted_bindings merge tables =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun table ->
      Hashtbl.iter
        (fun name v ->
          match Hashtbl.find_opt acc name with
          | Some prev -> Hashtbl.replace acc name (merge prev v)
          | None -> Hashtbl.replace acc name v)
        table)
    tables;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name v xs -> (name, v) :: xs) acc [])

let merge_hist a b =
  {
    observations = a.observations + b.observations;
    sum = a.sum + b.sum;
    vmin = min a.vmin b.vmin;
    vmax = max a.vmax b.vmax;
    buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let copy_hist h = { h with buckets = Array.copy h.buckets }

let snapshot () =
  let shards : shard list = all_shards () in
  let counters =
    sorted_bindings (fun a b -> ref (!a + !b)) (List.map (fun (s : shard) -> s.counters) shards)
  in
  let gauges =
    sorted_bindings (fun a b -> ref (max !a !b)) (List.map (fun (s : shard) -> s.gauges) shards)
  in
  let hists =
    (* Copy before merging so shard cells are never aliased by the result. *)
    let copies =
      List.map
        (fun s ->
          let t = Hashtbl.create (Hashtbl.length s.hists) in
          Hashtbl.iter (fun name h -> Hashtbl.replace t name (copy_hist h)) s.hists;
          t)
        shards
    in
    sorted_bindings merge_hist copies
  in
  {
    counters = List.map (fun (n, r) -> (n, !r)) counters;
    gauges = List.map (fun (n, r) -> (n, !r)) gauges;
    histograms =
      List.map
        (fun (n, h) ->
          let buckets = ref [] in
          for i = bucket_count - 1 downto 0 do
            if h.buckets.(i) > 0 then buckets := (bucket_floor i, h.buckets.(i)) :: !buckets
          done;
          ( n,
            {
              h_observations = h.observations;
              h_sum = h.sum;
              h_min = (if h.observations = 0 then 0 else h.vmin);
              h_max = (if h.observations = 0 then 0 else h.vmax);
              h_buckets = !buckets;
            } ))
        hists;
  }

let equal_snapshot (a : snapshot) (b : snapshot) = a = b

let reset () =
  List.iter
    (fun (s : shard) ->
      Hashtbl.reset s.counters;
      Hashtbl.reset s.gauges;
      Hashtbl.reset s.hists)
    (all_shards ())

(* --- rendering ---------------------------------------------------------- *)

let sanitize name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, v) ->
      let p = "tl_" ^ sanitize name in
      line "# TYPE %s counter" p;
      line "%s %d" p v)
    snap.counters;
  List.iter
    (fun (name, v) ->
      let p = "tl_" ^ sanitize name in
      line "# TYPE %s gauge" p;
      line "%s %d" p v)
    snap.gauges;
  List.iter
    (fun (name, h) ->
      let p = "tl_" ^ sanitize name in
      line "# TYPE %s histogram" p;
      let cumulative = ref 0 in
      List.iter
        (fun (floor, count) ->
          cumulative := !cumulative + count;
          (* The bucket holding floor f covers values < 2f (or <= 1 for f = 0). *)
          let le = if floor = 0 then 1 else (2 * floor) - 1 in
          line "%s_bucket{le=\"%d\"} %d" p le !cumulative)
        h.h_buckets;
      line "%s_bucket{le=\"+Inf\"} %d" p h.h_observations;
      line "%s_sum %d" p h.h_sum;
      line "%s_count %d" p h.h_observations)
    snap.histograms;
  Buffer.contents buf

let pp_table snap =
  let buf = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    Buffer.add_string buf
      (Tl_util.Table.render ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) snap.counters))
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    Buffer.add_string buf
      (Tl_util.Table.render ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) snap.gauges))
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "histograms (log-scale buckets):\n";
    Buffer.add_string buf
      (Tl_util.Table.render
         ~header:[ "histogram"; "count"; "sum"; "mean"; "min"; "max" ]
         (List.map
            (fun (n, h) ->
              [
                n;
                string_of_int h.h_observations;
                string_of_int h.h_sum;
                (if h.h_observations = 0 then "-"
                 else Printf.sprintf "%.1f" (float_of_int h.h_sum /. float_of_int h.h_observations));
                string_of_int h.h_min;
                string_of_int h.h_max;
              ])
            snap.histograms))
  end;
  Buffer.contents buf
