(* Domain-sharded metric cells.

   Every domain that touches a metric gets its own shard (held in
   domain-local storage), so the hot-path operations — counter adds,
   gauge sets, histogram observations — never synchronize and never
   race, even from inside a [Tl_util.Pool] map.  Shards are registered
   in a global list the first time a domain touches any metric; a
   shard outlives its domain, so counts from pool workers survive
   [Pool.shutdown] and are still visible to [snapshot].

   Merging is deterministic by construction: counters and histogram
   cells are integers combined with addition (commutative and
   associative, so shard order is irrelevant), gauges merge with [max],
   and every snapshot lists names in sorted order.  That is what makes
   the parallel-vs-sequential identity property testable bit-for-bit. *)

let bucket_count = 62

type hist = {
  mutable observations : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let registry_mutex = Mutex.create ()

let shards : shard list ref = ref []

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { counters = Hashtbl.create 16; gauges = Hashtbl.create 8; hists = Hashtbl.create 8 }
      in
      Mutex.lock registry_mutex;
      shards := s :: !shards;
      Mutex.unlock registry_mutex;
      s)

let my_shard () = Domain.DLS.get shard_key

(* --- recording ---------------------------------------------------------- *)

let add name by =
  let s = my_shard () in
  match Hashtbl.find_opt s.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace s.counters name (ref by)

let incr name = add name 1

let set_gauge name v =
  let s = my_shard () in
  match Hashtbl.find_opt s.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace s.gauges name (ref v)

(* Bucket 0 holds values <= 1; bucket i >= 1 holds [2^i, 2^(i+1)). *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let b = ref 0 in
    let x = ref v in
    while !x > 1 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min (bucket_count - 1) !b
  end

let bucket_floor i = if i = 0 then 0 else 1 lsl i

let observe name v =
  let s = my_shard () in
  let h =
    match Hashtbl.find_opt s.hists name with
    | Some h -> h
    | None ->
      let h =
        { observations = 0; sum = 0; vmin = max_int; vmax = min_int; buckets = Array.make bucket_count 0 }
      in
      Hashtbl.replace s.hists name h;
      h
  in
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

(* --- snapshots ---------------------------------------------------------- *)

type hist_snapshot = {
  h_observations : int;
  h_sum : int;
  h_min : int;
  h_max : int;
  h_buckets : (int * int) list;  (* (bucket lower bound, count), non-empty buckets only *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hist_snapshot) list;
}

let all_shards () =
  Mutex.lock registry_mutex;
  let s = !shards in
  Mutex.unlock registry_mutex;
  s

let sorted_bindings merge tables =
  let acc = Hashtbl.create 32 in
  List.iter
    (fun table ->
      Hashtbl.iter
        (fun name v ->
          match Hashtbl.find_opt acc name with
          | Some prev -> Hashtbl.replace acc name (merge prev v)
          | None -> Hashtbl.replace acc name v)
        table)
    tables;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun name v xs -> (name, v) :: xs) acc [])

let merge_hist a b =
  {
    observations = a.observations + b.observations;
    sum = a.sum + b.sum;
    vmin = min a.vmin b.vmin;
    vmax = max a.vmax b.vmax;
    buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
  }

let copy_hist h = { h with buckets = Array.copy h.buckets }

let snapshot () =
  let shards : shard list = all_shards () in
  let counters =
    sorted_bindings (fun a b -> ref (!a + !b)) (List.map (fun (s : shard) -> s.counters) shards)
  in
  let gauges =
    sorted_bindings (fun a b -> ref (max !a !b)) (List.map (fun (s : shard) -> s.gauges) shards)
  in
  let hists =
    (* Copy before merging so shard cells are never aliased by the result. *)
    let copies =
      List.map
        (fun s ->
          let t = Hashtbl.create (Hashtbl.length s.hists) in
          Hashtbl.iter (fun name h -> Hashtbl.replace t name (copy_hist h)) s.hists;
          t)
        shards
    in
    sorted_bindings merge_hist copies
  in
  {
    counters = List.map (fun (n, r) -> (n, !r)) counters;
    gauges = List.map (fun (n, r) -> (n, !r)) gauges;
    histograms =
      List.map
        (fun (n, h) ->
          let buckets = ref [] in
          for i = bucket_count - 1 downto 0 do
            if h.buckets.(i) > 0 then buckets := (bucket_floor i, h.buckets.(i)) :: !buckets
          done;
          ( n,
            {
              h_observations = h.observations;
              h_sum = h.sum;
              h_min = (if h.observations = 0 then 0 else h.vmin);
              h_max = (if h.observations = 0 then 0 else h.vmax);
              h_buckets = !buckets;
            } ))
        hists;
  }

let equal_snapshot (a : snapshot) (b : snapshot) = a = b

let reset () =
  List.iter
    (fun (s : shard) ->
      Hashtbl.reset s.counters;
      Hashtbl.reset s.gauges;
      Hashtbl.reset s.hists)
    (all_shards ())

(* --- quantiles ---------------------------------------------------------- *)

(* Log-bucket interpolation: find the bucket holding the q-th ranked
   observation, then place the value linearly inside the bucket's [lo, hi]
   integer range.  The first and last buckets are tightened to the
   recorded min/max, so quantiles never fall outside the observed range.
   Accuracy is bounded by the bucket width (a factor of 2), which is the
   histogram's resolution by construction. *)
let quantile h q =
  if h.h_observations = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = Float.max 1.0 (Float.ceil (q *. float_of_int h.h_observations)) in
    let rec go cum = function
      | [] -> float_of_int h.h_max
      | (floor, count) :: rest ->
        let cum' = cum + count in
        if float_of_int cum' < target then go cum' rest
        else begin
          (* Integer values in this bucket lie in [floor, 2*floor - 1]
             (bucket 0: [0, 1]); clamp to the observed extremes. *)
          let lo = Float.max (float_of_int h.h_min) (float_of_int floor) in
          let hi =
            Float.min (float_of_int h.h_max)
              (if floor = 0 then 1.0 else float_of_int ((2 * floor) - 1))
          in
          let frac = (target -. float_of_int cum) /. float_of_int count in
          lo +. (frac *. Float.max 0.0 (hi -. lo))
        end
    in
    go 0 h.h_buckets
  end

(* --- rendering ---------------------------------------------------------- *)

let sanitize name =
  String.map (fun c -> match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c | _ -> '_') name

(* Help strings for the # HELP exposition lines.  Subsystems register
   their metrics with [describe]; the built-in table covers the
   long-standing names so a default snapshot is fully annotated. *)
let help_mutex = Mutex.create ()

let help_table : (string, string) Hashtbl.t = Hashtbl.create 64

let describe name help =
  Mutex.lock help_mutex;
  Hashtbl.replace help_table name help;
  Mutex.unlock help_mutex

let builtin_help =
  [
    ("baseline.estimator.decompositions", "Decompositions taken by the string-keyed baseline estimator");
    ("baseline.estimator.lookups", "Sub-twig lookups in the string-keyed baseline estimator");
    ("baseline.estimator.summary_hits", "Baseline lookups answered by the lattice summary");
    ("estimates.nonfinite", "Non-finite serving estimates clamped to 0");
    ("estimator.decompositions", "Sub-twig decompositions taken during estimation");
    ("estimator.extra_hits", "Estimator lookups answered by the feedback source");
    ("estimator.lookups", "Sub-twig lookups during estimation");
    ("estimator.summary_hits", "Estimator lookups answered by the lattice summary");
    ("estimator.true_zeros", "Lookups resolved as true zeros under a complete summary");
    ("experiments.runs", "Experiment drivers executed");
    ("match_count.calls", "Exact twig-count evaluations");
    ("match_count.selectivity", "Distribution of exact twig counts");
    ("miner.candidates_counted", "Candidate patterns whose support was counted");
    ("miner.candidates_generated", "Candidate patterns generated by level-wise extension");
    ("miner.level_patterns", "Patterns kept per mined lattice level");
    ("miner.patterns_kept", "Patterns kept across all mined levels");
    ("plan.compiles", "Estimation plans compiled");
    ("plan_cache.evictions", "Plans displaced from the shared plan cache");
    ("plan_cache.hits", "Plan lookups served without compiling");
    ("plan_cache.misses", "Plan lookups that compiled");
    ("summary.builds", "Lattice summaries constructed");
    ("summary.entries", "Patterns stored in the most recent summary");
    ("workload.queries_evaluated", "Workload queries evaluated by the harness");
    ("xml.documents_parsed", "XML documents parsed");
    ("xml.input_bytes", "Distribution of parsed XML document sizes");
  ]

let help_for name =
  Mutex.lock help_mutex;
  let registered = Hashtbl.find_opt help_table name in
  Mutex.unlock help_mutex;
  match registered with
  | Some h -> h
  | None -> (
    match List.assoc_opt name builtin_help with
    | Some h -> h
    | None -> "TreeLattice metric " ^ name)

(* One renderer for every exposition surface: the bench/CLI file writers
   and the live {!Exporter} endpoint all call this, so their outputs can
   never drift apart. *)
let to_prometheus snap =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let header name kind =
    let p = "tl_" ^ sanitize name in
    line "# HELP %s %s" p (help_for name);
    line "# TYPE %s %s" p kind;
    p
  in
  List.iter
    (fun (name, v) ->
      let p = header name "counter" in
      line "%s %d" p v)
    snap.counters;
  List.iter
    (fun (name, v) ->
      let p = header name "gauge" in
      line "%s %d" p v)
    snap.gauges;
  List.iter
    (fun (name, h) ->
      let p = header name "histogram" in
      (* Full cumulative series: every bucket boundary from 0 up to the
         last non-empty bucket, empty buckets included, then +Inf. *)
      let last_floor = List.fold_left (fun _ (floor, _) -> floor) 0 h.h_buckets in
      let cumulative = ref 0 in
      let remaining = ref h.h_buckets in
      let i = ref 0 in
      let continue = ref (h.h_observations > 0) in
      while !continue do
        let floor = bucket_floor !i in
        (match !remaining with
        | (f, count) :: rest when f = floor ->
          cumulative := !cumulative + count;
          remaining := rest
        | _ -> ());
        (* The bucket holding floor f covers values < 2f (or <= 1 for f = 0). *)
        let le = if floor = 0 then 1 else (2 * floor) - 1 in
        line "%s_bucket{le=\"%d\"} %d" p le !cumulative;
        if floor >= last_floor || !i >= bucket_count - 1 then continue := false else Stdlib.incr i
      done;
      line "%s_bucket{le=\"+Inf\"} %d" p h.h_observations;
      line "%s_sum %d" p h.h_sum;
      line "%s_count %d" p h.h_observations)
    snap.histograms;
  Buffer.contents buf

let pp_table snap =
  let buf = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    Buffer.add_string buf
      (Tl_util.Table.render ~header:[ "counter"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) snap.counters))
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    Buffer.add_string buf
      (Tl_util.Table.render ~header:[ "gauge"; "value" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) snap.gauges))
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string buf "histograms (log-scale buckets):\n";
    Buffer.add_string buf
      (Tl_util.Table.render
         ~header:[ "histogram"; "count"; "sum"; "mean"; "min"; "max" ]
         (List.map
            (fun (n, h) ->
              [
                n;
                string_of_int h.h_observations;
                string_of_int h.h_sum;
                (if h.h_observations = 0 then "-"
                 else Printf.sprintf "%.1f" (float_of_int h.h_sum /. float_of_int h.h_observations));
                string_of_int h.h_min;
                string_of_int h.h_max;
              ])
            snap.histograms))
  end;
  Buffer.contents buf
