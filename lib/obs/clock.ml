let now_ns = Tl_util.Mono_clock.now_ns

let now_s = Tl_util.Mono_clock.now_s

let ns_to_ms = Tl_util.Mono_clock.ns_to_ms

let elapsed_ns = Tl_util.Mono_clock.elapsed_ns
