(** Nested wall-time spans on the monotonic clock.

    A span is opened and closed around a region of work with {!with_};
    nesting is tracked per domain (each domain has its own stack, so
    spans opened inside a {!Tl_util.Pool} map nest under nothing and
    never race).  Spans are {e disabled by default} — when disabled,
    {!with_} costs one atomic load — and are enabled by the [--trace]
    CLI/bench flags or {!set_enabled}.

    Finished spans accumulate in per-domain buffers until {!reset};
    read them back as a merged list ({!finished}), as JSONL
    ({!dump_jsonl}, one object per line with [name], [path], [domain],
    [depth], [start_ns], [dur_ns]), or aggregated into an in-terminal
    flame summary ({!flame}). *)

type span = {
  name : string;
  path : string;  (** semicolon-joined ancestor chain *)
  domain : int;
  depth : int;  (** 1 for a root span *)
  start_ns : int;  (** relative to the process trace epoch *)
  dur_ns : int;
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span named [name], nested under the
    calling domain's innermost open span.  The span is recorded even
    when [f] raises.  No-op (beyond the enabled check) when disabled. *)

val finished : unit -> span list
(** All finished spans from every domain, sorted by start time (ties:
    domain, then path). *)

val reset : unit -> unit
(** Drop all finished spans and open stacks. *)

val dump_jsonl : out_channel -> int
(** Write {!finished} as JSON Lines; returns the number of spans. *)

val set_sink : string -> unit
(** Register a JSONL trace sink at the given path and enable span
    recording.  The sink is written, flushed, and closed exactly once:
    by {!close_sink}, or — if the process exits first, including via
    [Stdlib.exit] from an error path — by an [at_exit] hook, so a
    requested trace file can never be left truncated.  Registering a new
    sink closes (without draining) the previous one. *)

val close_sink : unit -> (string * int) option
(** Drain the registered sink now: dump {!finished} into it, flush, close.
    Returns the path and span count, or [None] when no sink is pending
    (e.g. it was already drained).  Idempotent. *)

val flame : unit -> string
(** Aggregate finished spans by path into an indented table — calls,
    total, self, and mean milliseconds per span path. *)
