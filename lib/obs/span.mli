(** Nested wall-time spans on the monotonic clock.

    A span is opened and closed around a region of work with {!with_};
    nesting is tracked per domain (each domain has its own stack, so
    spans opened inside a {!Tl_util.Pool} map nest under nothing and
    never race).  Spans are {e disabled by default} — when disabled,
    {!with_} costs one atomic load — and are enabled by the [--trace]
    CLI/bench flags or {!set_enabled}.

    Finished spans accumulate in per-domain buffers until {!reset};
    read them back as a merged list ({!finished}), as JSONL
    ({!dump_jsonl}, one object per line with [name], [path], [domain],
    [depth], [start_ns], [dur_ns]), or aggregated into an in-terminal
    flame summary ({!flame}). *)

type span = {
  name : string;
  path : string;  (** semicolon-joined ancestor chain *)
  domain : int;
  depth : int;  (** 1 for a root span *)
  start_ns : int;  (** relative to the process trace epoch *)
  dur_ns : int;
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val with_ : string -> (unit -> 'a) -> 'a
(** [with_ name f] runs [f] inside a span named [name], nested under the
    calling domain's innermost open span.  The span is recorded even
    when [f] raises.  No-op (beyond the enabled check) when disabled. *)

val finished : unit -> span list
(** All finished spans from every domain, sorted by start time (ties:
    domain, then path). *)

val reset : unit -> unit
(** Drop all finished spans and open stacks. *)

val dump_jsonl : out_channel -> int
(** Write {!finished} as JSON Lines; returns the number of spans. *)

val flame : unit -> string
(** Aggregate finished spans by path into an indented table — calls,
    total, self, and mean milliseconds per span path. *)
