module Twig = Tl_twig.Twig

type entry = { twig : Twig.t; size : int; count : int }

type t = { k : int; complete : bool; table : (string, entry) Hashtbl.t }

let of_patterns ~k ~complete patterns =
  if k < 2 then invalid_arg "Summary.of_patterns: k must be >= 2";
  let table = Hashtbl.create (max 64 (List.length patterns)) in
  List.iter
    (fun (twig, count) ->
      let twig = Twig.canonicalize twig in
      let size = Twig.size twig in
      if size > k then invalid_arg "Summary.of_patterns: pattern larger than k";
      if count < 0 then invalid_arg "Summary.of_patterns: negative count";
      Hashtbl.replace table (Twig.encode twig) { twig; size; count })
    patterns;
  { k; complete; table }

let of_mining (result : Tl_mining.Miner.result) =
  of_patterns ~k:result.max_size ~complete:true (Tl_mining.Miner.all result)

let build ?pool ?(k = 4) tree =
  if k < 2 then invalid_arg "Summary.build: k must be >= 2";
  Tl_obs.Span.with_ "summary.build" @@ fun () ->
  let ctx = Tl_twig.Match_count.create_ctx tree in
  let summary = of_mining (Tl_mining.Miner.mine ?pool ctx ~max_size:k) in
  Tl_obs.Metrics.incr "summary.builds";
  Tl_obs.Metrics.set_gauge "summary.entries" (Hashtbl.length summary.table);
  Tl_obs.Log.info (fun m -> m "summary built: k=%d, %d pattern(s)" k (Hashtbl.length summary.table));
  summary

let k t = t.k

let is_complete t = t.complete

let find_encoded t key =
  match Hashtbl.find_opt t.table key with Some { count; _ } -> Some count | None -> None

let find t twig = find_encoded t (Twig.encode twig)

let mem t twig = Hashtbl.mem t.table (Twig.encode twig)

let entries t = Hashtbl.length t.table

let patterns_per_level t =
  let counts = Array.make t.k 0 in
  Hashtbl.iter (fun _ { size; _ } -> counts.(size - 1) <- counts.(size - 1) + 1) t.table;
  counts

let fold f t acc = Hashtbl.fold (fun _ { twig; count; _ } acc -> f twig count acc) t.table acc

let level t s =
  let collected =
    Hashtbl.fold
      (fun _ { twig; size; count } acc -> if size = s then (twig, count) :: acc else acc)
      t.table []
  in
  List.sort (fun (a, _) (b, _) -> Twig.compare a b) collected

let memory_bytes t =
  Hashtbl.fold (fun key _ acc -> acc + String.length key + 8) t.table 0

let restrict t ~keep =
  let table = Hashtbl.create (Hashtbl.length t.table) in
  let dropped = ref 0 in
  Hashtbl.iter
    (fun key ({ twig; size; count } as entry) ->
      if size <= 2 || keep twig count then Hashtbl.replace table key entry else incr dropped)
    t.table;
  { k = t.k; complete = t.complete && !dropped = 0; table }

let merge a b =
  if a.k <> b.k then invalid_arg "Summary.merge: lattice depths differ";
  let table = Hashtbl.copy a.table in
  Hashtbl.iter
    (fun key entry ->
      match Hashtbl.find_opt table key with
      | Some existing -> Hashtbl.replace table key { existing with count = existing.count + entry.count }
      | None -> Hashtbl.replace table key entry)
    b.table;
  { k = a.k; complete = a.complete && b.complete; table }
