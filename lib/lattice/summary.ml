module Twig = Tl_twig.Twig
module Key = Tl_twig.Twig.Key

type entry = { key : Key.t; size : int; count : int }

(* The table is keyed by the interned canonical id ({!Key.id}), so the
   estimators' lookups hash and compare ints; the canonical twig and its
   encoding ride along inside the stored {!Key.t}. *)
type t = { k : int; complete : bool; stamp : int; table : (int, entry) Hashtbl.t }

(* Every summary instance gets a process-unique stamp.  Compiled plans
   record the stamp of the summary they were built against, so the serving
   layer can assert — cheaply, on an int — that a cached plan is never
   evaluated under a different summary (see {!Tl_core.Plan_cache}). *)
let next_stamp = Atomic.make 1

let fresh_stamp () = Atomic.fetch_and_add next_stamp 1

let of_patterns ~k ~complete patterns =
  if k < 2 then invalid_arg "Summary.of_patterns: k must be >= 2";
  let table = Hashtbl.create (max 64 (List.length patterns)) in
  List.iter
    (fun (twig, count) ->
      let key = Twig.key twig in
      let size = Twig.size (Key.twig key) in
      if size > k then invalid_arg "Summary.of_patterns: pattern larger than k";
      if count < 0 then invalid_arg "Summary.of_patterns: negative count";
      Hashtbl.replace table (Key.id key) { key; size; count })
    patterns;
  { k; complete; stamp = fresh_stamp (); table }

let of_mining (result : Tl_mining.Miner.result) =
  of_patterns ~k:result.max_size ~complete:true (Tl_mining.Miner.all result)

let build ?pool ?(k = 4) tree =
  if k < 2 then invalid_arg "Summary.build: k must be >= 2";
  Tl_obs.Span.with_ "summary.build" @@ fun () ->
  let ctx = Tl_twig.Match_count.create_ctx tree in
  let summary = of_mining (Tl_mining.Miner.mine ?pool ctx ~max_size:k) in
  Tl_obs.Metrics.incr "summary.builds";
  Tl_obs.Metrics.set_gauge "summary.entries" (Hashtbl.length summary.table);
  Tl_obs.Log.info (fun m -> m "summary built: k=%d, %d pattern(s)" k (Hashtbl.length summary.table));
  summary

let k t = t.k

let stamp t = t.stamp

let is_complete t = t.complete

let find_key t key =
  match Hashtbl.find_opt t.table (Key.id key) with Some { count; _ } -> Some count | None -> None

let find t twig = find_key t (Twig.key twig)

let find_encoded t enc =
  match Twig.decode enc with exception Invalid_argument _ -> None | twig -> find t twig

let mem t twig = Hashtbl.mem t.table (Key.id (Twig.key twig))

let entries t = Hashtbl.length t.table

let patterns_per_level t =
  let counts = Array.make t.k 0 in
  Hashtbl.iter (fun _ { size; _ } -> counts.(size - 1) <- counts.(size - 1) + 1) t.table;
  counts

let fold f t acc = Hashtbl.fold (fun _ { key; count; _ } acc -> f (Key.twig key) count acc) t.table acc

let level t s =
  let collected =
    Hashtbl.fold
      (fun _ { key; size; count } acc -> if size = s then (Key.twig key, count) :: acc else acc)
      t.table []
  in
  List.sort (fun (a, _) (b, _) -> Twig.compare a b) collected

(* Heap footprint of one stored pattern: the canonical encoding string, the
   interned key block, the canonical twig's nodes (a 4-field record plus one
   cons cell per child edge), the entry record, and the hash-table bucket.
   The seed charged only [key length + 8], undercounting the Table 3 /
   fig10a/c "Utilization" columns by an order of magnitude against the
   TreeSketches byte budget. *)
let entry_bytes { key; size; count = _ } =
  let twig_nodes = size * (Tl_util.Prelude.heap_block_bytes 4 + Tl_util.Prelude.heap_block_bytes 3) in
  Tl_util.Prelude.heap_string_bytes (Key.encode key)
  + Tl_util.Prelude.heap_block_bytes 5 (* key block: id, enc, khash, twig + header *)
  + twig_nodes
  + Tl_util.Prelude.heap_block_bytes 4 (* entry record *)
  + Tl_util.Prelude.heap_block_bytes 4 (* bucket cell *)

let memory_bytes t = Hashtbl.fold (fun _ entry acc -> acc + entry_bytes entry) t.table 0

let restrict t ~keep =
  let table = Hashtbl.create (Hashtbl.length t.table) in
  let dropped = ref 0 in
  Hashtbl.iter
    (fun id ({ key; size; count } as entry) ->
      if size <= 2 || keep (Key.twig key) count then Hashtbl.replace table id entry
      else incr dropped)
    t.table;
  { k = t.k; complete = t.complete && !dropped = 0; stamp = fresh_stamp (); table }

let merge a b =
  if a.k <> b.k then invalid_arg "Summary.merge: lattice depths differ";
  let table = Hashtbl.copy a.table in
  Hashtbl.iter
    (fun id entry ->
      match Hashtbl.find_opt table id with
      | Some existing -> Hashtbl.replace table id { existing with count = existing.count + entry.count }
      | None -> Hashtbl.replace table id entry)
    b.table;
  { k = a.k; complete = a.complete && b.complete; stamp = fresh_stamp (); table }
