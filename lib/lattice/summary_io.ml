module Twig = Tl_twig.Twig

exception Format_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Format_error msg)) fmt

let save ~names summary =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "treelattice-summary v1 k=%d complete=%b labels=%d\n" (Summary.k summary)
       (Summary.is_complete summary) (Array.length names));
  Array.iter
    (fun name ->
      if String.contains name '\n' then invalid_arg "Summary_io.save: label contains a newline";
      Buffer.add_string buf name;
      Buffer.add_char buf '\n')
    names;
  let entries = Summary.fold (fun twig count acc -> (Twig.encode twig, count) :: acc) summary [] in
  let entries = List.sort compare entries in
  List.iter (fun (key, count) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" key count)) entries;
  Buffer.contents buf

let save_file ~names path summary =
  let oc = open_out_bin path in
  (try output_string oc (save ~names summary)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let parse_header line =
  match String.split_on_char ' ' line with
  | [ "treelattice-summary"; "v1"; k_field; complete_field; labels_field ] ->
    let field name s =
      match String.split_on_char '=' s with
      | [ n; v ] when String.equal n name -> v
      | _ -> fail "malformed header field %S" s
    in
    let k = try int_of_string (field "k" k_field) with _ -> fail "bad k" in
    let complete =
      match field "complete" complete_field with
      | "true" -> true
      | "false" -> false
      | other -> fail "bad complete flag %S" other
    in
    let labels = try int_of_string (field "labels" labels_field) with _ -> fail "bad labels count" in
    (k, complete, labels)
  | _ -> fail "unrecognized header %S" line

let load ?intern text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> fail "empty input"
  | header :: rest ->
    let k, complete, nlabels = parse_header header in
    if k < 2 then fail "invalid lattice depth k=%d (must be >= 2)" k;
    if nlabels < 0 then fail "invalid label count labels=%d (must be >= 0)" nlabels;
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> fail "truncated label block"
      | line :: rest -> take (n - 1) (line :: acc) rest
    in
    let label_lines, entry_lines = take nlabels [] rest in
    let names = Array.of_list label_lines in
    let remap =
      match intern with
      | None -> fun id -> id
      | Some intern ->
        let mapping = Array.map intern names in
        fun id ->
          if id < 0 || id >= Array.length mapping then fail "label id %d out of range" id
          else mapping.(id)
    in
    let seen = Hashtbl.create 64 in
    let patterns =
      List.filter_map
        (fun line ->
          if String.length line = 0 then None
          else
            match String.index_opt line ' ' with
            | None -> fail "malformed entry %S" line
            | Some i ->
              let key = String.sub line 0 i in
              let count =
                try int_of_string (String.sub line (i + 1) (String.length line - i - 1))
                with _ -> fail "malformed count in %S" line
              in
              let twig =
                try Twig.decode key with Invalid_argument m -> fail "bad twig key: %s" m
              in
              let twig = Twig.map_labels remap twig in
              let id = Twig.Key.id (Twig.key twig) in
              if Hashtbl.mem seen id then fail "duplicate entry %S" key;
              Hashtbl.replace seen id ();
              Some (twig, count))
        entry_lines
    in
    (Summary.of_patterns ~k ~complete patterns, names)

let load_file ?intern path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text =
    try really_input_string ic len
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  load ?intern text
