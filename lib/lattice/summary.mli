(** The lattice summary (§3, §4): occurrence statistics of all small twigs.

    A [k]-lattice stores, for every subtree pattern of size [<= k] occurring
    in the document, its exact selectivity.  Patterns are keyed by their
    interned canonical id ({!Tl_twig.Twig.Key.id}) in a hash table — lookups
    hash and compare ints, with the canonical encoding kept only inside the
    stored key for the edges (serialization, rendering).  This refines the
    storage layout the paper adopts after finding prefix trees too
    pointer-chasing-heavy (§4.2).

    A summary can be {e complete} (it holds every occurring pattern up to
    level [k], so a missing pattern of size [<= k] truly has selectivity 0)
    or {e pruned} (δ-derivable patterns were removed; a miss must fall back
    to decomposition-based estimation).  Estimators dispatch on
    {!is_complete}.

    Label ids in stored twigs refer to the interner of the document the
    summary was built from. *)

type t

val build : ?pool:Tl_util.Pool.t -> ?k:int -> Tl_tree.Data_tree.t -> t
(** Mine the document and assemble its [k]-lattice (default [k = 4], the
    paper's default).  Raises [Invalid_argument] if [k < 2] — level 2 is the
    minimum the decomposition framework needs.  [pool] parallelizes the
    mining step ({!Tl_mining.Miner.mine}); the summary is byte-identical
    with or without it. *)

val of_mining : Tl_mining.Miner.result -> t
(** Wrap an existing mining result. *)

val of_patterns : k:int -> complete:bool -> (Tl_twig.Twig.t * int) list -> t
(** Assemble from explicit pattern counts (used by pruning and tests).
    Raises [Invalid_argument] when a pattern exceeds [k] nodes or a count is
    negative. *)

val k : t -> int
(** The lattice depth. *)

val stamp : t -> int
(** Process-unique identity of this summary instance.  Every construction
    site ({!build}, {!of_patterns}, {!restrict}, {!merge}) draws a fresh
    stamp from a global counter, so two summaries — even byte-identical
    ones — never share a stamp.  Compiled plans record the stamp of the
    summary they were built against, letting serving layers assert that a
    plan is never evaluated under a foreign summary. *)

val is_complete : t -> bool
(** False after δ-derivable pruning. *)

val find : t -> Tl_twig.Twig.t -> int option
(** Stored selectivity of the pattern, canonicalizing as needed. *)

val find_key : t -> Tl_twig.Twig.Key.t -> int option
(** Lookup by interned canonical key — the estimators' hot path; one int
    hash, no string traffic. *)

val find_encoded : t -> string -> int option
(** Lookup by encoding string (decodes and canonicalizes; [None] on
    malformed input).  Edge convenience — prefer {!find_key} in loops. *)

val mem : t -> Tl_twig.Twig.t -> bool

val entries : t -> int
(** Number of stored patterns. *)

val patterns_per_level : t -> int array
(** Pattern counts at sizes 1..k. *)

val fold : (Tl_twig.Twig.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

val level : t -> int -> (Tl_twig.Twig.t * int) list
(** Stored patterns of one size, in canonical order. *)

val memory_bytes : t -> int
(** Storage estimate used for the paper's "Utilization (KiloBytes)" column.
    Each entry is charged its full heap footprint: the canonical encoding
    string (header + padded payload), the interned key block, the canonical
    twig's nodes, the entry record, and its hash-table bucket.  (The seed
    charged only [key length + 8] per entry, undercounting by roughly an
    order of magnitude.) *)

val restrict : t -> keep:(Tl_twig.Twig.t -> int -> bool) -> t
(** Drop entries failing [keep]; the result is marked incomplete unless
    everything was kept.  Level 1 and 2 patterns are always retained —
    they anchor the decomposition recursion (Fig. 6 keeps them too). *)

val merge : t -> t -> t
(** Pointwise sum of two summaries over the {e same} label space, the
    incremental-maintenance primitive (§1: the approach "is incremental in
    nature"): mining document A and document B separately and merging equals
    mining the two-document forest.  Raises [Invalid_argument] when the
    depths differ.  The result is complete iff both inputs are. *)
