(** Value statistics for selectivity estimation.

    For every label the summary keeps the number of valued nodes, a
    histogram of the [top] most frequent values, and an aggregate bucket
    (count and distinct-value count) for the rest — the classic
    end-biased histogram, which is also how XSketches/XPathLearner handle
    value skew.  A predicate's selectivity factor is

    {v P(node with this label carries this value) v}

    read from the histogram, or estimated as [other_total / distinct /
    label_count] for values outside the top list (uniformity within the
    tail). *)

type t

val build : ?top:int -> Value_tree.t -> t
(** Collect value statistics ([top] defaults to 32 values per label).
    Raises [Invalid_argument] when [top < 0]. *)

val memory_bytes : t -> int
(** Heap footprint estimate: per label the stats record and histogram
    table, per histogram entry the value string (header + padded payload)
    and its bucket — the same audit discipline as
    {!Tl_lattice.Summary.memory_bytes}. *)

val value_probability : t -> int -> string -> float
(** [value_probability t label v]: estimated fraction of [label]-nodes
    whose value is exactly [v]; 0 for labels that never carry values. *)

val top_values : t -> int -> (string * int) list
(** The retained histogram for a label, most frequent first. *)
