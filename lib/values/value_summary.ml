module Data_tree = Tl_tree.Data_tree

type label_stats = {
  label_total : int;  (** all nodes with this label *)
  histogram : (string, int) Hashtbl.t;  (** top values *)
  other_total : int;
  other_distinct : int;
}

type t = { stats : label_stats array }

let build ?(top = 32) vtree =
  if top < 0 then invalid_arg "Value_summary.build: top must be >= 0";
  let tree = Value_tree.tree vtree in
  let nlabels = Data_tree.label_count tree in
  let stats =
    Array.init nlabels (fun l ->
        let nodes = Data_tree.nodes_with_label tree l in
        let counts = Hashtbl.create 16 in
        Array.iter
          (fun v ->
            match Value_tree.value vtree v with
            | Some value ->
              Hashtbl.replace counts value (1 + Option.value ~default:0 (Hashtbl.find_opt counts value))
            | None -> ())
          nodes;
        let ranked =
          Hashtbl.fold (fun value c acc -> (value, c) :: acc) counts []
          |> List.sort (fun (v1, c1) (v2, c2) -> compare (c2, v1) (c1, v2))
        in
        let kept = Tl_util.Prelude.list_take top ranked in
        let histogram = Hashtbl.create (List.length kept) in
        List.iter (fun (value, c) -> Hashtbl.replace histogram value c) kept;
        let other = List.filteri (fun i _ -> i >= top) ranked in
        {
          label_total = Array.length nodes;
          histogram;
          other_total = List.fold_left (fun acc (_, c) -> acc + c) 0 other;
          other_distinct = List.length other;
        })
  in
  { stats }

(* Full heap footprint: per label the stats record and its histogram
   table, per histogram entry the value string (header + padded payload)
   and its bucket cell.  The seed charged [String.length value + 8] per
   entry and a flat 16 per label, omitting headers, padding, and buckets
   entirely. *)
let memory_bytes t =
  let open Tl_util.Prelude in
  Array.fold_left
    (fun acc s ->
      let per_label = heap_block_bytes 4 + heap_block_bytes (max 1 (Hashtbl.length s.histogram)) in
      Hashtbl.fold
        (fun value _ acc -> acc + heap_string_bytes value + heap_block_bytes 3)
        s.histogram (acc + per_label))
    0 t.stats

let value_probability t label value =
  if label < 0 || label >= Array.length t.stats then 0.0
  else begin
    let s = t.stats.(label) in
    if s.label_total = 0 then 0.0
    else begin
      match Hashtbl.find_opt s.histogram value with
      | Some c -> float_of_int c /. float_of_int s.label_total
      | None ->
        if s.other_distinct = 0 then 0.0
        else
          float_of_int s.other_total
          /. float_of_int s.other_distinct
          /. float_of_int s.label_total
    end
  end

let top_values t label =
  if label < 0 || label >= Array.length t.stats then []
  else
    Hashtbl.fold (fun value c acc -> (value, c) :: acc) t.stats.(label).histogram []
    |> List.sort (fun (v1, c1) (v2, c2) -> compare (c2, v1) (c1, v2))
