module Data_tree = Tl_tree.Data_tree

(* Paths are keyed by their label sequence rendered as a string ("3/1/4"),
   the same hash-table discipline as the lattice summary. *)
type star = { star_count : int; star_total : int }
(** Aggregate of pruned paths of one length: how many were pruned and the
    sum of their counts. *)

type t = {
  table_order : int;
  table : (string, int) Hashtbl.t;
  stars : (int, star) Hashtbl.t;  (** per path length *)
}

let key labels = String.concat "/" (List.map string_of_int labels)

let key_length k = 1 + String.fold_left (fun acc c -> if c = '/' then acc + 1 else acc) 0 k

let build ?(order = 2) tree =
  if order < 1 then invalid_arg "Markov_table.build: order must be >= 1";
  let table = Hashtbl.create 1024 in
  let bump k = Hashtbl.replace table k (1 + Option.value ~default:0 (Hashtbl.find_opt table k)) in
  let n = Data_tree.size tree in
  (* For every node, record the label chains of lengths 1..order ENDING at
     it, read off its ancestor line. *)
  for v = 0 to n - 1 do
    let rec chain u acc remaining =
      let acc = Data_tree.label tree u :: acc in
      bump (key acc);
      if remaining > 1 then
        match Data_tree.parent tree u with
        | Some p -> chain p acc (remaining - 1)
        | None -> ()
    in
    chain v [] order
  done;
  { table_order = order; table; stars = Hashtbl.create 4 }

let order t = t.table_order

let entries t = Hashtbl.length t.table

(* One table entry's heap footprint: the key string (header + padded
   payload — NOT 8 bytes per path component, which is what the seed
   charged via [key_length]), the boxed count slot, and the bucket cell.
   [prune] decrements by the same quantity, so its budget arithmetic stays
   consistent with this audit. *)
let entry_bytes k =
  Tl_util.Prelude.heap_string_bytes k + Tl_util.Prelude.heap_block_bytes 3

let star_bytes = Tl_util.Prelude.heap_block_bytes 2 + Tl_util.Prelude.heap_block_bytes 3

let memory_bytes t =
  Hashtbl.fold (fun k _ acc -> acc + entry_bytes k) t.table 0
  + Hashtbl.fold (fun _ _ acc -> acc + star_bytes) t.stars 0

let lookup t labels =
  let k = key labels in
  match Hashtbl.find_opt t.table k with
  | Some c -> float_of_int c
  | None -> (
    match Hashtbl.find_opt t.stars (List.length labels) with
    | Some { star_count; star_total } when star_count > 0 ->
      float_of_int star_total /. float_of_int star_count
    | Some _ | None -> 0.0)

let rec take n = function [] -> [] | _ when n = 0 -> [] | x :: rest -> x :: take (n - 1) rest

let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest

let estimate t labels =
  (match labels with [] -> invalid_arg "Markov_table.estimate: empty path" | _ -> ());
  let m = t.table_order in
  let n = List.length labels in
  if n <= m then lookup t labels
  else begin
    let window i len = take len (drop i labels) in
    let first = lookup t (window 0 m) in
    let rec go i acc =
      if i > n - m then acc
      else if acc = 0.0 then 0.0
      else begin
        let num = lookup t (window i m) in
        let den = lookup t (window i (m - 1)) in
        if den <= 0.0 then 0.0 else go (i + 1) (acc *. num /. den)
      end
    in
    go 1 first
  end

let prune t ~budget_bytes =
  let pruned = { table_order = t.table_order; table = Hashtbl.copy t.table; stars = Hashtbl.copy t.stars } in
  let current = ref (memory_bytes pruned) in
  if !current <= budget_bytes then pruned
  else begin
    (* Victims: longest paths first, lowest counts first — deleting a long
       low-count path costs the least accuracy (Aboulnaga's ordering). *)
    let victims =
      Hashtbl.fold (fun k c acc -> (key_length k, c, k) :: acc) pruned.table []
      |> List.filter (fun (len, _, _) -> len > 1)
      |> List.sort (fun (l1, c1, _) (l2, c2, _) -> compare (-l1, c1) (-l2, c2))
    in
    let rec evict = function
      | [] -> ()
      | (len, count, k) :: rest ->
        if !current <= budget_bytes then ()
        else begin
          Hashtbl.remove pruned.table k;
          current := !current - entry_bytes k;
          (* An eviction that opens a fresh star bucket also costs that
             bucket's bytes against the budget. *)
          let existing =
            match Hashtbl.find_opt pruned.stars len with
            | Some e -> e
            | None ->
              current := !current + star_bytes;
              { star_count = 0; star_total = 0 }
          in
          Hashtbl.replace pruned.stars len
            { star_count = existing.star_count + 1; star_total = existing.star_total + count };
          evict rest
        end
    in
    evict victims;
    pruned
  end
