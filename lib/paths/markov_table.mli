(** The Markov-table path selectivity estimator (Aboulnaga, Alameldeen,
    Naughton; VLDB 2001) — the classical baseline the paper's §3.4 proves
    TreeLattice subsumes.

    The summary stores the occurrence count of every label path of length
    [<= order] (a path of length l is a downward chain of l nodes, starting
    anywhere).  Longer paths are estimated with the Markov property:

    {v f(l1..ln) = f(l1..lm) * prod f(li..l(i+m-1)) / f(li..l(i+m-2)) v}

    The method's space innovation is {e pruning with aggregation}: low-count
    paths are deleted from the table and summarized by per-length star
    buckets carrying their average count, which lookups fall back to — this
    trades a bounded accuracy loss for a hard memory budget (the analogue of
    the paper's δ-derivable pruning, which Fig. 6 credits to this work). *)

type t

val build : ?order:int -> Tl_tree.Data_tree.t -> t
(** Collect path statistics up to [order] (default 2, the classical
    first-order Markov table).  Raises [Invalid_argument] if [order < 1]. *)

val order : t -> int

val entries : t -> int
(** Stored paths (star buckets not included). *)

val memory_bytes : t -> int
(** Heap footprint estimate: per entry the key string (header + padded
    payload), the boxed count, and the bucket cell, plus the star buckets —
    the same audit discipline as {!Tl_lattice.Summary.memory_bytes}.
    {!prune} decrements its running budget by exactly this per-entry
    quantity, so budgets mean real bytes. *)

val lookup : t -> int list -> float
(** Stored (or star-estimated) count of a path of length [<= order]; exact
    for unpruned tables. *)

val estimate : t -> int list -> float
(** Markov-chained selectivity estimate for a path of any length.  Raises
    [Invalid_argument] on the empty path. *)

val prune : t -> budget_bytes:int -> t
(** Delete lowest-count paths (longest lengths first) until the table fits
    the budget, aggregating deletions into per-length star buckets.
    Length-1 entries are never pruned. *)
