type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

and element = { tag : string; attrs : (string * string) list; children : node list }

type t = { decl : (string * string) list option; root : element }

let element ?(attrs = []) tag children = { tag; attrs; children }

(* --- parsing ----------------------------------------------------------- *)

let scan_attr_value lx =
  let quote = Xml_lexer.next lx in
  if quote <> '"' && quote <> '\'' then Xml_lexer.error lx "expected a quoted attribute value";
  let buf = Buffer.create 16 in
  let rec loop () =
    let c = Xml_lexer.peek lx in
    if c = quote then Xml_lexer.advance lx
    else if c = '&' then begin
      Buffer.add_string buf (Xml_lexer.scan_reference lx);
      loop ()
    end
    else if c = '<' then Xml_lexer.error lx "'<' not allowed in attribute value"
    else begin
      Buffer.add_char buf c;
      Xml_lexer.advance lx;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let scan_attributes lx =
  let rec loop acc =
    Xml_lexer.skip_whitespace lx;
    let c = Xml_lexer.peek lx in
    if c = '>' || c = '/' || c = '?' then List.rev acc
    else begin
      let name = Xml_lexer.scan_name lx in
      if List.mem_assoc name acc then
        Xml_lexer.error lx (Printf.sprintf "duplicate attribute %S" name);
      Xml_lexer.skip_whitespace lx;
      Xml_lexer.expect lx '=';
      Xml_lexer.skip_whitespace lx;
      let value = scan_attr_value lx in
      loop ((name, value) :: acc)
    end
  in
  loop []

let rec scan_element lx =
  Xml_lexer.expect lx '<';
  let tag = Xml_lexer.scan_name lx in
  let attrs = scan_attributes lx in
  Xml_lexer.skip_whitespace lx;
  if Xml_lexer.looking_at lx "/>" then begin
    Xml_lexer.expect_string lx "/>";
    { tag; attrs; children = [] }
  end
  else begin
    Xml_lexer.expect lx '>';
    let children = scan_content lx in
    Xml_lexer.expect_string lx "</";
    let close = Xml_lexer.scan_name lx in
    if close <> tag then
      Xml_lexer.error lx (Printf.sprintf "mismatched close tag: expected </%s>, found </%s>" tag close);
    Xml_lexer.skip_whitespace lx;
    Xml_lexer.expect lx '>';
    { tag; attrs; children }
  end

and scan_content lx =
  let items = ref [] in
  let text = Buffer.create 32 in
  let flush_text () =
    if Buffer.length text > 0 then begin
      items := Text (Buffer.contents text) :: !items;
      Buffer.clear text
    end
  in
  let rec loop () =
    if Xml_lexer.at_end lx then Xml_lexer.error lx "unexpected end of input inside an element";
    let c = Xml_lexer.peek lx in
    if c = '<' then begin
      if Xml_lexer.looking_at lx "</" then flush_text ()
      else if Xml_lexer.looking_at lx "<!--" then begin
        flush_text ();
        Xml_lexer.expect_string lx "<!--";
        let body = Xml_lexer.scan_until lx "-->" in
        items := Comment body :: !items;
        loop ()
      end
      else if Xml_lexer.looking_at lx "<![CDATA[" then begin
        Xml_lexer.expect_string lx "<![CDATA[";
        let body = Xml_lexer.scan_until lx "]]>" in
        Buffer.add_string text body;
        loop ()
      end
      else if Xml_lexer.looking_at lx "<?" then begin
        flush_text ();
        Xml_lexer.expect_string lx "<?";
        let target = Xml_lexer.scan_name lx in
        Xml_lexer.skip_whitespace lx;
        let body = Xml_lexer.scan_until lx "?>" in
        items := Pi (target, body) :: !items;
        loop ()
      end
      else begin
        flush_text ();
        let child = scan_element lx in
        items := Element child :: !items;
        loop ()
      end
    end
    else if c = '&' then begin
      Buffer.add_string text (Xml_lexer.scan_reference lx);
      loop ()
    end
    else begin
      Buffer.add_char text c;
      Xml_lexer.advance lx;
      loop ()
    end
  in
  loop ();
  List.rev !items

let scan_declaration lx =
  if Xml_lexer.looking_at lx "<?xml" then begin
    Xml_lexer.expect_string lx "<?xml";
    let attrs = scan_attributes lx in
    Xml_lexer.skip_whitespace lx;
    Xml_lexer.expect_string lx "?>";
    Some attrs
  end
  else None

let skip_misc lx =
  let rec loop () =
    Xml_lexer.skip_whitespace lx;
    if Xml_lexer.looking_at lx "<!--" then begin
      Xml_lexer.expect_string lx "<!--";
      ignore (Xml_lexer.scan_until lx "-->");
      loop ()
    end
    else if Xml_lexer.looking_at lx "<!DOCTYPE" then begin
      Xml_lexer.expect_string lx "<!DOCTYPE";
      (* Skip to the matching '>': internal subsets nest one level of [...]. *)
      let rec skip depth =
        match Xml_lexer.next lx with
        | '[' -> skip (depth + 1)
        | ']' -> skip (depth - 1)
        | '>' when depth = 0 -> ()
        | _ -> skip depth
      in
      skip 0;
      loop ()
    end
    else if Xml_lexer.looking_at lx "<?" then begin
      Xml_lexer.expect_string lx "<?";
      ignore (Xml_lexer.scan_name lx);
      ignore (Xml_lexer.scan_until lx "?>");
      loop ()
    end
  in
  loop ()

let parse_string input =
  Tl_obs.Span.with_ "xml.parse" @@ fun () ->
  let lx = Xml_lexer.of_string input in
  Xml_lexer.skip_whitespace lx;
  let decl = scan_declaration lx in
  skip_misc lx;
  if Xml_lexer.at_end lx || Xml_lexer.peek lx <> '<' then
    Xml_lexer.error lx "expected a root element";
  let root = scan_element lx in
  skip_misc lx;
  if not (Xml_lexer.at_end lx) then Xml_lexer.error lx "content after the root element";
  Tl_obs.Metrics.incr "xml.documents_parsed";
  Tl_obs.Metrics.observe "xml.input_bytes" (String.length input);
  { decl; root }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content =
    try really_input_string ic len
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_string content

(* --- queries ----------------------------------------------------------- *)

let rec equal_element a b =
  String.equal a.tag b.tag
  && List.equal (fun (k, v) (k', v') -> String.equal k k' && String.equal v v') a.attrs b.attrs
  && List.equal equal_node a.children b.children

and equal_node a b =
  match (a, b) with
  | Element a, Element b -> equal_element a b
  | Text a, Text b | Comment a, Comment b -> String.equal a b
  | Pi (t, c), Pi (t', c') -> String.equal t t' && String.equal c c'
  | (Element _ | Text _ | Comment _ | Pi _), _ -> false

let fold_elements f acc doc =
  let rec go acc el =
    let acc = f acc el in
    List.fold_left
      (fun acc child -> match child with Element e -> go acc e | Text _ | Comment _ | Pi _ -> acc)
      acc el.children
  in
  go acc doc.root

let count_elements doc = fold_elements (fun acc _ -> acc + 1) 0 doc

let tags doc =
  let seen = Hashtbl.create 32 in
  let order =
    fold_elements
      (fun acc el ->
        if Hashtbl.mem seen el.tag then acc
        else begin
          Hashtbl.replace seen el.tag ();
          el.tag :: acc
        end)
      [] doc
  in
  List.rev order

let depth doc =
  let rec go el =
    let deepest =
      List.fold_left
        (fun acc child -> match child with Element e -> max acc (go e) | Text _ | Comment _ | Pi _ -> acc)
        0 el.children
    in
    1 + deepest
  in
  go doc.root
