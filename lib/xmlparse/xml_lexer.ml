type t = { input : string; len : int; mutable pos : int; mutable line : int; mutable col : int }

let of_string input = { input; len = String.length input; pos = 0; line = 1; col = 1 }

let position t : Xml_error.position = { line = t.line; column = t.col; offset = t.pos }

let error t msg = Xml_error.error (position t) msg

let at_end t = t.pos >= t.len

let peek t =
  if at_end t then error t "unexpected end of input";
  t.input.[t.pos]

let peek2 t = if t.pos + 1 >= t.len then None else Some t.input.[t.pos + 1]

let advance t =
  if at_end t then error t "advance past end of input";
  if t.input.[t.pos] = '\n' then begin
    t.line <- t.line + 1;
    t.col <- 1
  end
  else t.col <- t.col + 1;
  t.pos <- t.pos + 1

let next t =
  let c = peek t in
  advance t;
  c

let expect t c =
  let got = peek t in
  if got <> c then error t (Printf.sprintf "expected %C but found %C" c got);
  advance t

let looking_at t s =
  let n = String.length s in
  t.pos + n <= t.len && String.sub t.input t.pos n = s

let expect_string t s =
  if not (looking_at t s) then error t (Printf.sprintf "expected %S" s);
  String.iter (fun _ -> advance t) s

let is_whitespace = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let skip_whitespace t =
  while (not (at_end t)) && is_whitespace t.input.[t.pos] do
    advance t
  done

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let scan_name t =
  if at_end t || not (is_name_start (peek t)) then error t "expected a name";
  let start = t.pos in
  while (not (at_end t)) && is_name_char t.input.[t.pos] do
    advance t
  done;
  String.sub t.input start (t.pos - start)

let scan_until t stop =
  let start = t.pos in
  let rec find () =
    if at_end t then error t (Printf.sprintf "expected %S before end of input" stop)
    else if looking_at t stop then ()
    else begin
      advance t;
      find ()
    end
  in
  find ();
  let content = String.sub t.input start (t.pos - start) in
  expect_string t stop;
  content

let scan_reference t =
  expect t '&';
  if (not (at_end t)) && peek t = '#' then begin
    advance t;
    let hex = (not (at_end t)) && peek t = 'x' in
    if hex then advance t;
    let start = t.pos in
    while (not (at_end t)) && peek t <> ';' do
      advance t
    done;
    let digits = String.sub t.input start (t.pos - start) in
    expect t ';';
    let code =
      try int_of_string (if hex then "0x" ^ digits else digits)
      with _ -> error t (Printf.sprintf "malformed character reference %S" digits)
    in
    if code < 0 || code > 0x10FFFF then error t "character reference out of range";
    (* Surrogates sit inside the scalar range check above but are not
       scalar values — [Uchar.of_int] would raise an unpositioned
       [Invalid_argument] on them. *)
    if code >= 0xD800 && code <= 0xDFFF then
      error t (Printf.sprintf "character reference U+%04X is a surrogate" code);
    (* Encode the code point as UTF-8. *)
    let buf = Buffer.create 4 in
    Buffer.add_utf_8_uchar buf (Uchar.of_int code);
    Buffer.contents buf
  end
  else begin
    let name = scan_name t in
    expect t ';';
    match name with
    | "lt" -> "<"
    | "gt" -> ">"
    | "amp" -> "&"
    | "apos" -> "'"
    | "quot" -> "\""
    | other -> error t (Printf.sprintf "unknown entity &%s;" other)
  end
