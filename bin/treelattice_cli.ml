(* treelattice: command-line front-end.

   Subcommands:
     generate   write a synthetic dataset as XML
     stats      print structural statistics (DOM or SAX route)
     summarize  mine an XML file into a k-lattice summary file
     mine       print per-level pattern statistics of an XML file
     estimate   estimate (and optionally check) a twig query
     explain    trace the full decomposition behind one estimate
     xpath      estimate an XPath query (child steps + predicates)
     match      enumerate actual matches of a twig query
     batch      estimate many queries at once via compiled-plan caching
     serve      long-lived serving loop with audit log, drift monitor, HTTP metrics
     plan       naive vs estimate-guided join plans
     values     estimate a twig query with value predicates
     prune      delta-prune a summary file
     exp        run reproduction experiments

   Every working subcommand also takes the observability flags
   --log-level quiet|info|debug, --metrics FILE, and --trace FILE. *)

open Cmdliner
module Dataset = Tl_datasets.Dataset
module Data_tree = Tl_tree.Data_tree
module Summary = Tl_lattice.Summary
module Summary_io = Tl_lattice.Summary_io
module Treelattice = Tl_core.Treelattice
module Estimator = Tl_core.Estimator
module Experiments = Tl_harness.Experiments

let load_tree path = Data_tree.of_xml (Tl_xml.Xml_dom.parse_file path)

(* --- shared args -------------------------------------------------------- *)

let xml_arg =
  Arg.(required & opt (some file) None & info [ "xml" ] ~docv:"FILE" ~doc:"Input XML document.")

let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Lattice depth (default 4).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for parallel mining and workload evaluation (default 1 = sequential; results \
           are identical for any N).")

(* A 1-domain pool spawns nothing and runs sequentially, so the pool can be
   created unconditionally. *)
let pool_of_jobs jobs = Tl_util.Pool.create ~domains:(max 1 jobs) ()

let scheme_conv =
  let parse = function
    | "recursive" -> Ok Estimator.Recursive
    | "voting" | "recursive-voting" -> Ok Estimator.Recursive_voting
    | "fixed" | "fixed-size" -> Ok Estimator.Fixed_size
    | "fixed-voting" -> Ok (Estimator.Fixed_size_voting 8)
    | other -> Error (`Msg (Printf.sprintf "unknown scheme %S" other))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Estimator.scheme_name s))

let scheme_arg =
  Arg.(
    value
    & opt scheme_conv Estimator.Recursive_voting
    & info [ "scheme" ] ~docv:"SCHEME"
        ~doc:"Estimator: recursive, voting, fixed-size, or fixed-voting.")

(* --- observability flags -------------------------------------------------- *)

let log_level_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Tl_obs.Log.level_of_string s) in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Tl_obs.Log.level_name l))

let obs_term =
  let metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a Prometheus-style metrics snapshot to $(docv) on exit.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record spans and write them as JSON Lines to $(docv) on exit.")
  in
  let level =
    Arg.(
      value
      & opt log_level_conv Tl_obs.Log.Quiet
      & info [ "log-level" ] ~docv:"LEVEL" ~doc:"Log verbosity: quiet, info, or debug.")
  in
  let make metrics trace level = (metrics, trace, level) in
  Term.(const make $ metrics $ trace $ level)

(* Install the reporter and span sink before the command body, and write
   the requested metrics file afterwards — even when the body exits
   through an exception.  The span sink is registered with
   [Tl_obs.Span.set_sink], which also arranges an [at_exit] flush, so
   traces survive even an [exit 1] path that skips the [finally]. *)
let with_obs (metrics_file, trace_file, level) f =
  Tl_obs.Log.setup level;
  Option.iter Tl_obs.Span.set_sink trace_file;
  let write_outputs () =
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Tl_obs.Metrics.to_prometheus (Tl_obs.Metrics.snapshot ()));
        close_out oc)
      metrics_file;
    match Tl_obs.Span.close_sink () with
    | Some (path, spans) -> Tl_obs.Log.info (fun m -> m "wrote %d span(s) to %s" spans path)
    | None -> ()
  in
  Fun.protect ~finally:write_outputs f

(* --- generate ------------------------------------------------------------ *)

let dataset_conv =
  let parse name =
    match Dataset.find name with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown dataset %S (nasa, imdb, xmark, psd)" name))
  in
  Arg.conv (parse, fun fmt d -> Format.pp_print_string fmt d.Dataset.name)

let generate_cmd =
  let dataset =
    Arg.(
      required & pos 0 (some dataset_conv) None & info [] ~docv:"DATASET" ~doc:"nasa, imdb, xmark, or psd.")
  in
  let target =
    Arg.(value & opt int 40_000 & info [ "target" ] ~docv:"N" ~doc:"Approximate element count.")
  in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run dataset target seed output =
    let element = dataset.Dataset.document ~target ~seed in
    Tl_xml.Xml_writer.to_file ~indent:true output { decl = Some [ ("version", "1.0") ]; root = element };
    Printf.printf "wrote %s (%d elements)\n" output
      (Tl_xml.Xml_dom.count_elements { decl = None; root = element })
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic evaluation dataset as XML.")
    Term.(const run $ dataset $ target $ seed_arg $ output)

(* --- summarize ------------------------------------------------------------ *)

let summarize_cmd =
  let output =
    Arg.(
      required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Summary output path.")
  in
  let run obs xml k jobs output =
    with_obs obs @@ fun () ->
    let tree = load_tree xml in
    let pool = pool_of_jobs jobs in
    let summary, ms = Tl_util.Timer.time_ms (fun () -> Summary.build ~pool ~k tree) in
    Tl_util.Pool.shutdown pool;
    Summary_io.save_file ~names:(Data_tree.label_names tree) output summary;
    Printf.printf "mined %d patterns (%.0f ms, %d bytes) -> %s\n" (Summary.entries summary) ms
      (Summary.memory_bytes summary) output
  in
  Cmd.v
    (Cmd.info "summarize" ~doc:"Mine an XML document into a k-lattice summary file.")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ jobs_arg $ output)

(* --- stats ------------------------------------------------------------------ *)

let stats_cmd =
  let histogram =
    Arg.(value & opt int 0 & info [ "histogram" ] ~docv:"N" ~doc:"Also print the N most frequent tags.")
  in
  let sax =
    Arg.(value & flag & info [ "sax" ] ~doc:"Load via the streaming SAX path (no DOM).")
  in
  let run obs xml histogram sax =
    with_obs obs @@ fun () ->
    let tree, ms =
      Tl_util.Timer.time_ms (fun () ->
          if sax then Tl_tree.Tree_load.of_file xml else load_tree xml)
    in
    let stats = Tl_tree.Tree_stats.compute tree in
    Printf.printf "loaded in %.0f ms (%s route)\n" ms (if sax then "SAX" else "DOM");
    print_endline (Tl_tree.Tree_stats.pp stats);
    if histogram > 0 then begin
      print_endline "most frequent tags:";
      List.iter
        (fun (tag, count) -> Printf.printf "  %-24s %d\n" tag count)
        (Tl_util.Prelude.list_take histogram (Tl_tree.Tree_stats.label_histogram tree))
    end
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print structural statistics of an XML document.")
    Term.(const run $ obs_term $ xml_arg $ histogram $ sax)

(* --- mine ------------------------------------------------------------------ *)

let mine_cmd =
  let top =
    Arg.(
      value & opt int 0
      & info [ "top" ] ~docv:"N" ~doc:"Also print the N most frequent patterns per level.")
  in
  let run obs xml k jobs top =
    with_obs obs @@ fun () ->
    let tree = load_tree xml in
    let ctx = Tl_twig.Match_count.create_ctx tree in
    let result =
      Tl_util.Pool.with_pool ~domains:(max 1 jobs) (fun pool ->
          Tl_mining.Miner.mine ~pool ctx ~max_size:k)
    in
    Array.iteri
      (fun i count -> Printf.printf "level %d: %d patterns\n" (i + 1) count)
      (Tl_mining.Miner.patterns_per_level result);
    if top > 0 then
      for level = 1 to k do
        let patterns =
          List.sort (fun (_, a) (_, b) -> compare b a) (Tl_mining.Miner.level result level)
        in
        Printf.printf "-- level %d --\n" level;
        List.iter
          (fun (twig, count) ->
            Printf.printf "%8d  %s\n" count (Tl_twig.Twig.pp ~names:(Data_tree.label_name tree) twig))
          (Tl_util.Prelude.list_take top patterns)
      done
  in
  Cmd.v
    (Cmd.info "mine" ~doc:"Print occurring-pattern statistics of an XML document.")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ jobs_arg $ top)

(* --- estimate --------------------------------------------------------------- *)

let estimate_cmd =
  let query =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Twig query, e.g. 'a(b,c(d))'.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact count by full matching.")
  in
  let run obs xml k scheme query exact =
    with_obs obs @@ fun () ->
    let tl = Treelattice.build ~k (load_tree xml) in
    match Treelattice.estimate_string ~scheme tl query with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok estimate ->
      Printf.printf "estimate[%s] = %.2f\n" (Estimator.scheme_name scheme) estimate;
      if exact then begin
        match Treelattice.exact_string tl query with
        | Ok truth -> Printf.printf "exact = %d\n" truth
        | Error msg -> prerr_endline msg
      end
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate the selectivity of a twig query against an XML document.")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ scheme_arg $ query $ exact)

(* --- explain --------------------------------------------------------------- *)

let explain_cmd =
  let query =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Twig query, e.g. 'a(b,c(d))'.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Also write the decomposition DAG as GraphViz DOT.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact count by full matching.")
  in
  let run obs xml k scheme query dot exact =
    with_obs obs @@ fun () ->
    let tree = load_tree xml in
    let summary = Summary.build ~k tree in
    match
      Tl_twig.Twig_parse.parse_twig ~intern:(fun tag -> Some (Data_tree.intern_label tree tag)) query
    with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok twig ->
      let names = Data_tree.label_name tree in
      let trace = Tl_core.Explain.run summary scheme twig in
      print_string (Tl_core.Explain.to_text ~names trace);
      if exact then Printf.printf "exact = %d\n" (Tl_twig.Match_count.count tree twig);
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Tl_viz.Dot.explain ~names trace);
          close_out oc;
          Printf.printf "wrote %s\n" path)
        dot
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain a selectivity estimate: print every sub-twig lookup, leaf-pair decomposition, \
          and vote behind it.")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ scheme_arg $ query $ dot $ exact)

(* --- xpath ------------------------------------------------------------------- *)

let xpath_cmd =
  let query =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"XPath query, e.g. '//open_auction[bidder][seller]'.")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact count by full matching.")
  in
  let run obs xml k scheme query exact =
    with_obs obs @@ fun () ->
    let tl = Treelattice.build ~k (load_tree xml) in
    match Treelattice.estimate_xpath ~scheme tl query with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok estimate ->
      Printf.printf "estimate[%s] = %.2f\n" (Estimator.scheme_name scheme) estimate;
      if exact then begin
        match Treelattice.exact_xpath tl query with
        | Ok truth -> Printf.printf "exact = %d\n" truth
        | Error msg -> prerr_endline msg
      end
  in
  Cmd.v
    (Cmd.info "xpath" ~doc:"Estimate the selectivity of an XPath query (child steps + predicates).")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ scheme_arg $ query $ exact)

(* --- match ------------------------------------------------------------------- *)

let match_cmd =
  let query =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Twig query in twig or XPath syntax.")
  in
  let limit =
    Arg.(value & opt int 10 & info [ "limit" ] ~docv:"N" ~doc:"Maximum matches to print (default 10).")
  in
  let run obs xml query limit =
    with_obs obs @@ fun () ->
    let tree = load_tree xml in
    let twig =
      (* Accept both syntaxes: XPath when it starts with '/', twig otherwise;
         fall back to the other on failure. *)
      let from_xpath () =
        Result.bind (Tl_twig.Xpath.parse query)
          (Tl_twig.Xpath.to_twig ~intern:(fun tag -> Some (Data_tree.intern_label tree tag)))
      in
      let from_twig () =
        Tl_twig.Twig_parse.parse_twig ~intern:(fun tag -> Some (Data_tree.intern_label tree tag)) query
      in
      match (if String.length query > 0 && query.[0] = '/' then from_xpath () else from_twig ()) with
      | Ok t -> t
      | Error _ -> (
        match (if String.length query > 0 && query.[0] = '/' then from_twig () else from_xpath ()) with
        | Ok t -> t
        | Error msg ->
          prerr_endline msg;
          exit 1)
    in
    let matches = Tl_twig.Match_enum.enumerate ~limit tree twig in
    let total = Tl_twig.Match_count.count tree twig in
    Printf.printf "%d match(es); showing up to %d\n" total limit;
    let ix = Tl_twig.Twig.index twig in
    List.iteri
      (fun i assignment ->
        Printf.printf "match %d:\n" (i + 1);
        Array.iteri
          (fun q v ->
            Printf.printf "  %s -> node %d\n"
              (Data_tree.label_name tree ix.Tl_twig.Twig.node_labels.(q))
              v)
          assignment)
      matches
  in
  Cmd.v
    (Cmd.info "match" ~doc:"Enumerate actual matches of a twig query.")
    Term.(const run $ obs_term $ xml_arg $ query $ limit)

(* --- batch ------------------------------------------------------------------- *)

(* One query line, in twig or XPath syntax, becomes a twig plus a
   post-estimate transform carrying the anchored-XPath scaling, so every
   line agrees exactly with what the estimate/xpath subcommands print
   for it.  Shared by the batch and serve subcommands. *)
let parse_query_line tl tree line =
  let anchored_scale twig estimate =
    let root_label = Data_tree.label tree (Data_tree.root tree) in
    if twig.Tl_twig.Twig.label <> root_label then 0.0
    else
      let occurrences = Array.length (Data_tree.nodes_with_label tree root_label) in
      estimate /. float_of_int (max 1 occurrences)
  in
  let from_xpath () =
    Result.map
      (fun (anchored, twig) -> (twig, if anchored then anchored_scale twig else fun e -> e))
      (Treelattice.parse_xpath tl line)
  in
  let from_twig () =
    Result.map (fun twig -> (twig, fun e -> e)) (Treelattice.parse_query tl line)
  in
  let first, second =
    if String.length line > 0 && line.[0] = '/' then (from_xpath, from_twig)
    else (from_twig, from_xpath)
  in
  (* When both syntaxes reject the line, diagnose with the parser the
     line looks like it was written for. *)
  match first () with
  | Ok parsed -> Ok parsed
  | Error msg -> ( match second () with Ok parsed -> Ok parsed | Error _ -> Error msg)

let batch_cmd =
  let queries_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:
            "Read queries from $(docv), one per line, in twig or XPath syntax (default: stdin). \
             Blank lines and lines starting with '#' are skipped.")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("table", `Table); ("json", `Json) ]) `Table
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: table or json.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Abort on the first malformed query line instead of skipping it.")
  in
  let run obs xml k scheme jobs queries_file format strict =
    with_obs obs @@ fun () ->
    let source = match queries_file with None -> "<stdin>" | Some path -> path in
    (* Lines keep their 1-based position in the source file so diagnostics
       can say file:line even after blank/comment lines are dropped. *)
    let lines =
      let read_all ic =
        let rec go acc = match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
        in
        go []
      in
      let raw =
        match queries_file with
        | None -> read_all stdin
        | Some path ->
          let ic = open_in path in
          Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_all ic)
      in
      List.filter
        (fun (_, l) -> l <> "" && l.[0] <> '#')
        (List.mapi (fun i l -> (i + 1, String.trim l)) raw)
    in
    Tl_util.Pool.with_pool ~domains:(max 1 jobs) @@ fun pool ->
    let tree = load_tree xml in
    let tl =
      let summary, ms = Tl_util.Timer.time_ms (fun () -> Summary.build ~pool ~k tree) in
      Printf.eprintf "summary: built in %.0f ms\n%!" ms;
      Treelattice.of_summary tree summary
    in
    (* A malformed line is diagnosed as file:line and skipped, so one typo
       does not discard a whole workload; --strict restores fail-fast.
       Either way the exit code reports the failure. *)
    let skipped = ref 0 in
    let parsed =
      Array.of_list
        (List.filter_map
           (fun (lineno, line) ->
             match parse_query_line tl tree line with
             | Ok p -> Some (line, p)
             | Error msg ->
               Printf.eprintf "%s:%d: bad query %S: %s\n%!" source lineno line msg;
               if strict then exit 1;
               incr skipped;
               None)
           lines)
    in
    let engine = Tl_serve.Engine.of_treelattice ~scheme tl in
    let estimates, elapsed_ms =
      Tl_util.Timer.time_ms (fun () ->
          Tl_serve.Engine.batch ~pool engine (Array.map (fun (_, (twig, _)) -> twig) parsed))
    in
    let results =
      Array.mapi (fun i (line, (_, transform)) -> (line, transform estimates.(i))) parsed
    in
    (match format with
    | `Table ->
      print_string
        (Tl_util.Table.render ~header:[ "query"; "estimate" ]
           (Array.to_list
              (Array.map (fun (q, e) -> [ q; Printf.sprintf "%.2f" e ]) results)))
    | `Json ->
      let json_escape s =
        let buf = Buffer.create (String.length s + 8) in
        String.iter
          (fun c ->
            match c with
            | '"' -> Buffer.add_string buf "\\\""
            | '\\' -> Buffer.add_string buf "\\\\"
            | '\n' -> Buffer.add_string buf "\\n"
            | '\t' -> Buffer.add_string buf "\\t"
            | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
            | c -> Buffer.add_char buf c)
          s;
        Buffer.contents buf
      in
      print_string "{\n";
      Printf.printf "  \"schema_version\": 1,\n";
      Printf.printf "  \"scheme\": \"%s\",\n" (json_escape (Estimator.scheme_name scheme));
      Printf.printf "  \"queries\": %d,\n" (Array.length results);
      print_string "  \"results\": [\n";
      Array.iteri
        (fun i (q, e) ->
          Printf.printf "    {\"query\": \"%s\", \"estimate\": %.6g}%s\n" (json_escape q) e
            (if i = Array.length results - 1 then "" else ","))
        results;
      print_string "  ]\n}\n");
    (* Serving telemetry on stderr, so stdout stays machine-readable. *)
    let stats = Tl_serve.Engine.stats engine in
    let n = Array.length results in
    Printf.eprintf
      "batch: %d queries (%d plans compiled, %d cache hits) in %.0f ms across %d domain(s)\n%!" n
      stats.Tl_core.Plan_cache.misses
      (stats.Tl_core.Plan_cache.hits + (n - stats.Tl_core.Plan_cache.misses))
      elapsed_ms (Tl_util.Pool.domains pool);
    if !skipped > 0 then begin
      Printf.eprintf "batch: %d malformed line(s) skipped\n%!" !skipped;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Estimate a batch of twig/XPath queries through the compiled-plan cache: queries are \
          deduplicated, compiled once each, and evaluated across -j domains.  Malformed lines \
          are reported as FILE:LINE on stderr and skipped (the exit code still reports the \
          failure); $(b,--strict) aborts at the first one instead.")
    Term.(
      const run $ obs_term $ xml_arg $ k_arg $ scheme_arg $ jobs_arg $ queries_arg $ format_arg
      $ strict_arg)

(* --- serve ------------------------------------------------------------------- *)

let serve_cmd =
  let queries_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:
            "Read queries from $(docv) — commonly a FIFO — instead of stdin.  One query per \
             line, twig or XPath syntax; a blank line flushes the pending batch; '#' lines are \
             skipped."
    )
  in
  let xml_opt_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "xml" ] ~docv:"FILE"
          ~doc:"Serving document, installed as the dataset named 'default'.")
  in
  let dataset_arg =
    Arg.(
      value & opt_all string []
      & info [ "dataset" ] ~docv:"NAME=PATH"
          ~doc:
            "Install $(docv) as a named dataset (repeatable).  A PATH ending in .xml is parsed \
             and mined; any other PATH is read as a serialized summary file.  Route a query to \
             a dataset with a 'NAME:' line prefix; bare queries go to the default dataset (the \
             first one installed, or --xml's 'default').")
  in
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Port for the HTTP endpoint (default 0 = ephemeral; see $(b,--port-file)).")
  in
  let port_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound endpoint port to $(docv) once listening.")
  in
  let sample_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "sample-rate" ] ~docv:"R"
          ~doc:
            "Fraction of distinct served queries the drift monitor replays against the exact \
             oracle (default 0 = monitoring off).")
  in
  let drift_threshold_arg =
    Arg.(
      value & opt float 1.0
      & info [ "drift-threshold" ] ~docv:"T"
          ~doc:
            "Raise the drift alarm when the sliding-window p90 relative error reaches $(docv) \
             (default 1.0 = 100%).")
  in
  let drift_xml_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "drift-xml" ] ~docv:"FILE"
          ~doc:
            "Replay sampled queries against $(docv) instead of each dataset's own document — \
             the summary-went-stale scenario the drift monitor exists to catch.")
  in
  let audit_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "audit-out" ] ~docv:"FILE"
          ~doc:"Write the retained audit records as JSON Lines to $(docv) on shutdown.")
  in
  let linger_arg =
    Arg.(
      value & opt float 0.0
      & info [ "linger" ] ~docv:"SECONDS"
          ~doc:
            "Keep the HTTP endpoint up for $(docv) seconds after the query input drains, so a \
             scraper can collect the final state.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:
            "Also serve queries over TCP on 127.0.0.1:$(docv) (0 = ephemeral; see \
             $(b,--server-port-file)).  Same line protocol as stdin: '[NAME:]query' per line, \
             blank line flushes the batch; each answer line is estimate, epoch, dataset and \
             scheme (tab-separated), and overloaded connections are shed with a 'busy' line.")
  in
  let server_port_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "server-port-file" ] ~docv:"FILE"
          ~doc:"Write the bound TCP query port to $(docv) once listening.")
  in
  let server_workers_arg =
    Arg.(
      value & opt int 4
      & info [ "server-workers" ] ~docv:"N"
          ~doc:"Worker threads serving TCP connections (default 4).")
  in
  let server_queue_arg =
    Arg.(
      value & opt int 64
      & info [ "server-queue" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: accepted TCP connections waiting for a worker beyond \
             $(docv) are shed with a 'busy' response (default 64).")
  in
  let server_json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Answer TCP queries with one JSON object per line instead of tab-separated text.")
  in
  let run obs xml k scheme jobs datasets queries_file port port_file sample_rate drift_threshold
      drift_xml audit_out linger listen server_port_file server_workers server_queue server_json =
    with_obs obs @@ fun () ->
    Tl_util.Pool.with_pool ~domains:(max 1 jobs) @@ fun pool ->
    let module Registry = Tl_serve.Registry in
    let module Audit = Tl_serve.Audit in
    let module Monitor = Tl_serve.Monitor in
    let dataset_specs =
      List.map
        (fun spec ->
          (* Both sides must be non-empty: "NAME=" would otherwise surface
             later as a confusing empty-path load failure, "=PATH" as a
             dataset nothing can route to. *)
          match String.index_opt spec '=' with
          | Some i when i > 0 && i < String.length spec - 1 ->
            (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
          | _ ->
            Printf.eprintf "serve: bad --dataset %S (expected NAME=PATH)\n%!" spec;
            exit 2)
        datasets
    in
    if xml = None && dataset_specs = [] then begin
      Printf.eprintf "serve: nothing to serve (pass --xml FILE and/or --dataset NAME=PATH)\n%!";
      exit 2
    end;
    let registry =
      Registry.create
        ~config:
          {
            Registry.default_config with
            Registry.scheme;
            k;
            sample_rate;
            drift_threshold;
            drift_tree = Option.map load_tree drift_xml;
          }
        ()
    in
    (* Startup installs fail fast — graceful degradation needs a previous
       epoch to fall back to, and at startup there is none. *)
    let installed name result ms =
      match result with
      | Ok b ->
        Printf.eprintf "serve: dataset %s ready at epoch %d (%d entries) in %.0f ms\n%!" name
          (Registry.epoch b)
          (Summary.entries (Registry.summary b))
          ms
      | Error msg ->
        Printf.eprintf "serve: dataset %s failed to load: %s\n%!" name msg;
        exit 1
    in
    Option.iter
      (fun path ->
        let result, ms =
          Tl_util.Timer.time_ms (fun () ->
              Registry.install_document ~pool registry ~name:"default" ~source:path
                (load_tree path))
        in
        installed "default" result ms)
      xml;
    List.iter
      (fun (name, path) ->
        let result, ms = Tl_util.Timer.time_ms (fun () -> Registry.load registry name path) in
        installed name result ms)
      dataset_specs;
    let default_name =
      match xml with Some _ -> "default" | None -> fst (List.hd dataset_specs)
    in
    let audit_route () =
      (* Recent records across every dataset, each line tagged with the
         dataset it was served from. *)
      let buf = Buffer.create 4096 in
      List.iter
        (fun b ->
          let tag = Printf.sprintf "{\"dataset\":\"%s\"," (Registry.name b) in
          List.iter
            (fun r ->
              let json = Audit.record_json r in
              Buffer.add_string buf (tag ^ String.sub json 1 (String.length json - 1));
              Buffer.add_char buf '\n')
            (List.rev (Audit.recent ~limit:256 (Registry.audit b))))
        (Registry.list registry);
      Tl_obs.Exporter.text (Buffer.contents buf)
    in
    let healthz_route () =
      let monitors =
        List.filter_map
          (fun b -> Option.map (fun m -> (Registry.name b, Monitor.stats m)) (Registry.monitor b))
          (Registry.list registry)
      in
      match monitors with
      | [] -> Tl_obs.Exporter.text "ok\ndrift monitor off (enable with --sample-rate)\n"
      | _ ->
        (* Drift on ANY dataset flips health: a scraper watching one
           endpoint must not miss a stale dataset among healthy ones.
           The reload-failure alarm does NOT — the old epoch still
           serves accurate answers. *)
        let any_alarm = List.exists (fun (_, s) -> s.Monitor.alarm) monitors in
        let buf = Buffer.create 256 in
        Buffer.add_string buf (if any_alarm then "drift\n" else "ok\n");
        List.iter
          (fun (name, s) ->
            Buffer.add_string buf (Printf.sprintf "%s: %s\n" name (Monitor.pp_stats s)))
          monitors;
        Tl_obs.Exporter.text ~status:(if any_alarm then 503 else 200) (Buffer.contents buf)
    in
    let datasets_route () = Tl_obs.Exporter.text (Registry.datasets_json registry) in
    let exporter =
      Tl_obs.Exporter.start ~port
        ~routes:
          [
            ("/audit", audit_route); ("/healthz", healthz_route); ("/datasets", datasets_route);
          ]
        ()
    in
    let server =
      Option.map
        (fun sport ->
          Tl_serve.Server.start
            ~config:
              {
                Tl_serve.Server.default_config with
                Tl_serve.Server.port = sport;
                workers = max 1 server_workers;
                queue_capacity = max 1 server_queue;
                json = server_json;
              }
            ~pool ~default:default_name registry)
        listen
    in
    (* Idempotent finalizer: reached through [Fun.protect] on the normal
       path and straight from the SIGTERM handler — either way the TCP
       front-end drains first (in-flight batches finish on their epoch),
       then the HTTP endpoint stops, then the audit log flushes. *)
    let finalized = Atomic.make false in
    let shutdown () =
      if not (Atomic.exchange finalized true) then begin
        Option.iter
          (fun s ->
            let st = Tl_serve.Server.stats s in
            Tl_serve.Server.stop s;
            Printf.eprintf
              "serve: tcp front-end drained (%d connection(s), %d query(ies), %d batch(es), %d \
               shed)\n\
               %!"
              st.Tl_serve.Server.connections st.Tl_serve.Server.queries
              st.Tl_serve.Server.batches st.Tl_serve.Server.shed)
          server;
        Tl_obs.Exporter.stop exporter;
        Option.iter
          (fun path ->
            let oc = open_out path in
            let n =
              List.fold_left
                (fun acc b -> acc + Audit.dump_jsonl (Registry.audit b) oc)
                0 (Registry.list registry)
            in
            close_out oc;
            Printf.eprintf "serve: wrote %d audit record(s) to %s\n%!" n path)
          audit_out
      end
    in
    (try
       ignore
         (Sys.signal Sys.sigterm
            (Sys.Signal_handle
               (fun _ ->
                 Printf.eprintf "serve: SIGTERM: draining\n%!";
                 shutdown ();
                 Stdlib.exit 0)))
     with Invalid_argument _ | Sys_error _ -> ());
    (* SIGHUP requests a reload of every dataset; the flag is checked at
       loop iterations and batch boundaries (best-effort while blocked on
       input — the explicit `reload` control line is the deterministic
       path). *)
    let sighup = Atomic.make false in
    (try ignore (Sys.signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set sighup true)))
     with Invalid_argument _ | Sys_error _ -> ());
    let report_reload name = function
      | Ok b ->
        Printf.eprintf "serve: reloaded %s -> epoch %d (%d entries)\n%!" name (Registry.epoch b)
          (Summary.entries (Registry.summary b))
      | Error msg ->
        Printf.eprintf "serve: reload %s failed: %s (previous epoch keeps serving)\n%!" name msg
    in
    let reload_all_now () =
      match Registry.reload_all registry with
      | [] -> Printf.eprintf "serve: reload: no dataset has a recorded source\n%!"
      | results -> List.iter (fun (name, r) -> report_reload name r) results
    in
    let handle_control line =
      match List.filter (fun s -> s <> "") (String.split_on_char ' ' line) with
      | [ "reload" ] -> reload_all_now ()
      | [ "reload"; name ] -> report_reload name (Registry.reload registry name)
      | [ "reload"; name; path ] -> report_reload name (Registry.load registry name path)
      | _ -> Printf.eprintf "serve: bad control line %S (reload [NAME [PATH]])\n%!" line
    in
    let served = ref 0 and batches = ref 0 and skipped = ref 0 in
    (* [exit] would skip [Fun.protect]'s finalizer (it terminates without
       unwinding), so the malformed-line exit happens after shutdown. *)
    (Fun.protect ~finally:shutdown @@ fun () ->
    let bound = Tl_obs.Exporter.port exporter in
    Option.iter
      (fun path ->
        let oc = open_out path in
        Printf.fprintf oc "%d\n" bound;
        close_out oc)
      port_file;
    Printf.eprintf
      "serve: listening on http://127.0.0.1:%d (/metrics /audit /healthz /datasets)\n%!" bound;
    Option.iter
      (fun s ->
        let sport = Tl_serve.Server.port s in
        Option.iter
          (fun path ->
            let oc = open_out path in
            Printf.fprintf oc "%d\n" sport;
            close_out oc)
          server_port_file;
        Printf.eprintf "serve: tcp query front-end on 127.0.0.1:%d\n%!" sport)
      server;
    let ic, close_ic =
      match queries_file with
      | None -> (stdin, fun () -> ())
      | Some path ->
        let ic = open_in path in
        (ic, fun () -> close_in ic)
    in
    (* A 'NAME:' prefix routes the line to dataset NAME; anything else —
       including prefixes that name no dataset — goes to the default. *)
    let route line =
      match String.index_opt line ':' with
      | Some i
        when i > 0 && Option.is_some (Registry.find registry (String.sub line 0 i)) ->
        (String.sub line 0 i, String.trim (String.sub line (i + 1) (String.length line - i - 1)))
      | _ -> (default_name, line)
    in
    (* The serving loop: accumulate lines, evaluate on each blank line and
       at end of input (a final batch with no trailing newline still
       flushes), answer on stdout as `line TAB estimate` in input order.
       Each flush groups its lines per routed dataset, serves every group
       through that dataset's current bundle — a concurrent reload is
       picked up at the next flush, never mid-batch — and scatters the
       results back into input order. *)
    let flush_batch pending =
      let lines = List.rev pending in
      let n_before = !served in
      let groups : (string, (int * string * string) list ref) Hashtbl.t = Hashtbl.create 4 in
      let group_order = ref [] in
      List.iteri
        (fun idx line ->
          let ds, query = route line in
          match Hashtbl.find_opt groups ds with
          | Some cell -> cell := (idx, line, query) :: !cell
          | None ->
            Hashtbl.replace groups ds (ref [ (idx, line, query) ]);
            group_order := ds :: !group_order)
        lines;
      let results : (int, string * float) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun ds ->
          match Registry.find registry ds with
          | None -> ()
          | Some bundle ->
            let parsed =
              Array.of_list
                (List.filter_map
                   (fun (idx, line, query) ->
                     match Registry.parse_query bundle query with
                     | Ok p -> Some (idx, line, p)
                     | Error msg ->
                       Printf.eprintf "serve: bad query %S: %s\n%!" line msg;
                       incr skipped;
                       None)
                   (List.rev !(Hashtbl.find groups ds)))
            in
            if Array.length parsed > 0 then begin
              let estimates =
                Registry.batch ~pool bundle (Array.map (fun (_, _, (twig, _)) -> twig) parsed)
              in
              Array.iteri
                (fun i (idx, line, (_, transform)) ->
                  Hashtbl.replace results idx (line, transform estimates.(i)))
                parsed;
              served := !served + Array.length parsed
            end)
        (List.rev !group_order);
      List.iteri
        (fun idx _ ->
          match Hashtbl.find_opt results idx with
          | Some (line, e) -> Printf.printf "%s\t%.2f\n" line e
          | None -> ())
        lines;
      flush Stdlib.stdout;
      if !served > n_before then incr batches
    in
    let check_sighup () =
      if Atomic.exchange sighup false then begin
        Printf.eprintf "serve: SIGHUP: reloading all datasets\n%!";
        reload_all_now ()
      end
    in
    let rec loop pending =
      check_sighup ();
      match input_line ic with
      | exception End_of_file -> flush_batch pending
      | line -> (
        let line = String.trim line in
        if line = "" then begin
          flush_batch pending;
          loop []
        end
        else if line = "reload" || String.starts_with ~prefix:"reload " line then begin
          handle_control line;
          loop pending
        end
        else
          match line.[0] with
          | '#' -> loop pending
          | _ -> loop (line :: pending))
    in
    loop [];
    close_ic ();
    if linger > 0.0 then begin
      Printf.eprintf "serve: input drained; endpoint up for another %.1f s\n%!" linger;
      Thread.delay linger
    end;
    let bundles = Registry.list registry in
    Printf.eprintf "serve: %d queries in %d batch(es), %d audit record(s) retained\n%!" !served
      !batches
      (List.fold_left (fun acc b -> acc + Audit.size (Registry.audit b)) 0 bundles);
    let multi = List.length bundles > 1 in
    List.iter
      (fun b ->
        match Registry.monitor b with
        | None -> ()
        | Some m ->
          let s = Monitor.pp_stats (Monitor.stats m) in
          if multi then Printf.eprintf "serve: %s %s\n%!" (Registry.name b) s
          else Printf.eprintf "serve: %s\n%!" s)
      bundles;
    if Registry.alarm registry then
      Printf.eprintf "serve: reload alarm raised (a reload failed; old epochs kept serving)\n%!");
    if !skipped > 0 then begin
      Printf.eprintf "serve: %d malformed line(s) skipped\n%!" !skipped;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the estimation engine as a long-lived process: read query batches from stdin or a \
          FIFO, answer on stdout, and expose live observability over HTTP — $(b,/metrics) \
          (Prometheus text), $(b,/audit) (recent per-query audit records as JSON Lines), \
          $(b,/healthz) (503 while any dataset's accuracy-drift alarm is raised), and \
          $(b,/datasets) (name, epoch, entries, alarm per dataset).  Multiple datasets are \
          served from an epoch-versioned registry: $(b,--dataset NAME=PATH) installs each one, \
          'NAME:query' lines route to it, and a 'reload NAME [PATH]' control line (or SIGHUP \
          for all datasets) hot-swaps its summary atomically — in-flight batches finish on the \
          epoch they started with, and a failed reload leaves the previous epoch serving.  The \
          drift monitor samples $(b,--sample-rate) of distinct queries and replays them against \
          an exact oracle over each dataset's document (or $(b,--drift-xml) to detect a stale \
          summary).  $(b,--listen PORT) additionally serves the same line protocol over TCP \
          with bounded admission: a fixed worker pool, a bounded queue, 'busy' load-shedding \
          under overload, and a graceful drain on SIGTERM.")
    Term.(
      const run $ obs_term $ xml_opt_arg $ k_arg $ scheme_arg $ jobs_arg $ dataset_arg
      $ queries_arg $ port_arg $ port_file_arg $ sample_rate_arg $ drift_threshold_arg
      $ drift_xml_arg $ audit_out_arg $ linger_arg $ listen_arg $ server_port_file_arg
      $ server_workers_arg $ server_queue_arg $ server_json_arg)

(* --- prune ------------------------------------------------------------------- *)

let prune_cmd =
  let input =
    Arg.(required & opt (some file) None & info [ "summary" ] ~docv:"FILE" ~doc:"Summary file to prune.")
  in
  let delta =
    Arg.(
      value & opt float 0.0 & info [ "delta" ] ~docv:"D" ~doc:"Relative error tolerance (0.1 = 10%).")
  in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let run obs input delta output =
    with_obs obs @@ fun () ->
    let summary, names = Summary_io.load_file input in
    let pruned = Tl_core.Derivable.prune summary ~delta in
    Summary_io.save_file ~names output pruned;
    Printf.printf "%d -> %d patterns (%d -> %d bytes)\n" (Summary.entries summary)
      (Summary.entries pruned) (Summary.memory_bytes summary) (Summary.memory_bytes pruned)
  in
  Cmd.v
    (Cmd.info "prune" ~doc:"Remove delta-derivable patterns from a summary file.")
    Term.(const run $ obs_term $ input $ delta $ output)

(* --- plan ------------------------------------------------------------------------ *)

let plan_cmd =
  let query =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Twig query, e.g. 'a(b,c(d))'.")
  in
  let execute =
    Arg.(value & flag & info [ "execute" ] ~doc:"Run both plans and report materialized tuples.")
  in
  let run obs xml k query execute =
    with_obs obs @@ fun () ->
    let tree = load_tree xml in
    let summary = Summary.build ~k tree in
    match
      Tl_twig.Twig_parse.parse_twig ~intern:(fun tag -> Some (Data_tree.intern_label tree tag)) query
    with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok twig ->
      let names = Data_tree.label_name tree in
      let naive = Tl_join.Plan.naive twig in
      let guided = Tl_join.Plan.greedy summary twig in
      Printf.printf "naive : %s (estimated cost %.0f)\n"
        (Tl_join.Plan.pp ~names naive)
        (Tl_join.Plan.estimated_cost summary naive);
      Printf.printf "guided: %s (estimated cost %.0f)\n"
        (Tl_join.Plan.pp ~names guided)
        (Tl_join.Plan.estimated_cost summary guided);
      if execute then begin
        let n = Tl_join.Executor.run tree naive in
        let g = Tl_join.Executor.run tree guided in
        Printf.printf "executed: naive %d tuples, guided %d tuples, %d results\n"
          n.Tl_join.Executor.tuples_materialized g.Tl_join.Executor.tuples_materialized
          g.Tl_join.Executor.result_count
      end
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show naive vs estimate-guided join plans for a twig query.")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ query $ execute)

(* --- values ---------------------------------------------------------------------- *)

let values_cmd =
  let query =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"Value twig, e.g. 'book(genre=cs,title=\"ocaml\")'.")
  in
  let exact = Arg.(value & flag & info [ "exact" ] ~doc:"Also compute the exact count.") in
  let run obs xml k query exact =
    with_obs obs @@ fun () ->
    let vtree = Tl_values.Value_tree.of_xml (Tl_xml.Xml_dom.parse_file xml) in
    let est = Tl_values.Value_estimator.create ~k vtree in
    match Tl_values.Value_estimator.estimate_string est query with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok estimate ->
      Printf.printf "estimate = %.2f\n" estimate;
      if exact then begin
        match Tl_values.Value_estimator.exact_string est query with
        | Ok truth -> Printf.printf "exact = %d\n" truth
        | Error msg -> prerr_endline msg
      end
  in
  Cmd.v
    (Cmd.info "values" ~doc:"Estimate a twig query with value predicates.")
    Term.(const run $ obs_term $ xml_arg $ k_arg $ query $ exact)

(* --- exp ---------------------------------------------------------------------- *)

let exp_cmd =
  let ids = Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).") in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Use the fast, reduced-scale configuration.")
  in
  let target =
    Arg.(
      value & opt (some int) None & info [ "target" ] ~docv:"N" ~doc:"Override dataset element count.")
  in
  let list_flag = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.") in
  let run obs ids quick target jobs list_flag =
    with_obs obs @@ fun () ->
    if list_flag then
      List.iter (fun (id, title, _) -> Printf.printf "%-8s %s\n" id title) Experiments.all_experiments
    else begin
      let config = if quick then Experiments.quick_config else Experiments.default_config in
      let config = match target with None -> config | Some t -> { config with target = t } in
      Tl_util.Pool.with_pool ~domains:(max 1 jobs) @@ fun pool ->
      let suite = Experiments.make_suite ~pool config in
      match ids with
      | [] -> print_string (Experiments.run_all suite)
      | ids ->
        List.iter
          (fun id ->
            match Experiments.run suite id with
            | Some report -> print_string report
            | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" id;
              exit 1)
          ids
    end
  in
  Cmd.v
    (Cmd.info "exp" ~doc:"Run the paper-reproduction experiments.")
    Term.(const run $ obs_term $ ids $ quick $ target $ jobs_arg $ list_flag)

let main =
  let doc = "TreeLattice: decomposition-based XML twig selectivity estimation" in
  Cmd.group
    (Cmd.info "treelattice" ~version:"1.0.0" ~doc)
    [
      generate_cmd; summarize_cmd; stats_cmd; mine_cmd; estimate_cmd; explain_cmd; xpath_cmd;
      match_cmd; batch_cmd; serve_cmd; plan_cmd; values_cmd; prune_cmd; exp_cmd;
    ]

let () = exit (Cmd.eval main)
