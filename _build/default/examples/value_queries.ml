(* Value predicates — the paper's first future-work item, implemented.

   Structure and values factorize: the lattice summary prices the twig
   shape, per-label value histograms price each predicate, and the product
   estimates the constrained query.  This example runs the whole pipeline
   on a small product catalogue and audits the estimates against exact
   matching.

   Run with: dune exec examples/value_queries.exe *)

module Value_tree = Tl_values.Value_tree
module Value_estimator = Tl_values.Value_estimator
module Value_summary = Tl_values.Value_summary

(* A catalogue where brand correlates with category only weakly. *)
let catalogue () =
  let buf = Buffer.create 4096 in
  let rng = Tl_util.Xorshift.create 7 in
  Buffer.add_string buf "<catalog>";
  let brands = [| "acme"; "globex"; "initech"; "umbrella" |] in
  let categories = [| "laptop"; "desktop"; "tablet" |] in
  for _ = 1 to 400 do
    let brand = brands.(Tl_util.Xorshift.int rng (Array.length brands)) in
    let category = categories.(Tl_util.Xorshift.int rng (Array.length categories)) in
    Buffer.add_string buf
      (Printf.sprintf
         "<product><brand>%s</brand><category>%s</category><price>%d</price>%s</product>" brand
         category
         ((1 + Tl_util.Xorshift.int rng 20) * 50)
         (if Tl_util.Xorshift.bernoulli rng 0.4 then "<warranty>2y</warranty>" else ""))
  done;
  Buffer.add_string buf "</catalog>";
  Buffer.contents buf

let () =
  let vtree = Value_tree.of_xml (Tl_xml.Xml_dom.parse_string (catalogue ())) in
  Printf.printf "catalogue: %d elements, %d carry values\n\n"
    (Tl_tree.Data_tree.size (Value_tree.tree vtree))
    (Value_tree.valued_nodes vtree);
  let est = Value_estimator.create ~k:3 vtree in

  (* The value histograms driving the predicate factors. *)
  (match Tl_tree.Data_tree.label_of_string (Value_tree.tree vtree) "brand" with
  | Some brand ->
    print_endline "brand histogram:";
    List.iter
      (fun (value, count) -> Printf.printf "  %-10s %d\n" value count)
      (Value_summary.top_values (Value_estimator.values est) brand)
  | None -> ());
  print_newline ();

  let queries =
    [
      "product(brand=acme)";
      "product(brand=acme,category=laptop)";
      "product(brand=globex,warranty)";
      "product(category=tablet,price,warranty=2y)";
      "product(brand=acme,category=laptop,warranty=2y)";
      "product(brand=nonexistent)";
    ]
  in
  Printf.printf "%-52s %10s %8s\n" "query" "estimate" "exact";
  List.iter
    (fun q ->
      match (Value_estimator.estimate_string est q, Value_estimator.exact_string est q) with
      | Ok estimate, Ok exact -> Printf.printf "%-52s %10.1f %8d\n" q estimate exact
      | Error m, _ | _, Error m -> Printf.printf "%-52s  error: %s\n" q m)
    queries;

  print_newline ();
  print_endline "Estimates are the structural twig estimate times one histogram factor";
  print_endline "per predicate; with independent values they track exact counts closely."
