(* Cost-based twig query planning — the paper's first motivating
   application: "determining an optimal query plan, based on said
   estimates, for complex queries."

   A twig query is evaluated as a sequence of structural joins; the cost is
   the intermediate binding relations the executor materializes, and every
   intermediate relation's size is the selectivity of an induced sub-twig —
   exactly what TreeLattice estimates.  This example prices all candidate
   join orders with the lattice summary, executes the naive and the guided
   plan, and shows the estimator's predictions steering real work.

   Run with: dune exec examples/query_planner.exe *)

module Dataset = Tl_datasets.Dataset
module Plan = Tl_join.Plan
module Executor = Tl_join.Executor
module Summary = Tl_lattice.Summary

let () =
  let tree = Dataset.tree Dataset.xmark ~target:30_000 ~seed:21 in
  let summary, ms = Tl_util.Timer.time_ms (fun () -> Summary.build ~k:4 tree) in
  Printf.printf "auction site: %d elements; 4-lattice built in %.0f ms\n\n"
    (Tl_tree.Data_tree.size tree) ms;
  let names = Tl_tree.Data_tree.label_name tree in

  let queries =
    [
      "open_auction(bidder(date,increase),seller,annotation)";
      "person(name,emailaddress,watches(watch))";
      "item(name,quantity,mailbox(mail))";
      "open_auction(bidder(increase),initial,current,itemref)";
    ]
  in
  List.iter
    (fun q ->
      let twig =
        match Tl_twig.Twig_parse.parse_twig ~intern:(Tl_tree.Data_tree.label_of_string tree) q with
        | Ok t -> t
        | Error m -> failwith m
      in
      let naive = Plan.naive twig in
      let guided = Plan.greedy summary twig in
      Printf.printf "query: %s\n" q;
      Printf.printf "  naive plan :  %s\n" (Plan.pp ~names naive);
      Printf.printf "  guided plan:  %s\n" (Plan.pp ~names guided);
      Printf.printf "  estimated cost: naive %.0f vs guided %.0f intermediate tuples\n"
        (Plan.estimated_cost summary naive)
        (Plan.estimated_cost summary guided);
      let naive_stats, naive_ms = Tl_util.Timer.time_ms (fun () -> Executor.run tree naive) in
      let guided_stats, guided_ms = Tl_util.Timer.time_ms (fun () -> Executor.run tree guided) in
      assert (naive_stats.Executor.result_count = guided_stats.Executor.result_count);
      Printf.printf "  executed:       naive %d vs guided %d tuples (%.1fx less work, %d results)\n"
        naive_stats.Executor.tuples_materialized guided_stats.Executor.tuples_materialized
        (float_of_int naive_stats.Executor.tuples_materialized
        /. Float.max 1.0 (float_of_int guided_stats.Executor.tuples_materialized))
        guided_stats.Executor.result_count;
      Printf.printf "  wall time:      naive %.1f ms vs guided %.1f ms\n\n" naive_ms guided_ms)
    queries;

  print_endline "The guided plan anchors each query on its most selective region,";
  print_endline "priced entirely from the 4-lattice summary - no data was touched";
  print_endline "until execution."
