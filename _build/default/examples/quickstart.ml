(* Quickstart: the 60-second tour of the public API.

   1. Generate a small auction document (any XML file works the same way).
   2. Parse it and build a TreeLattice with a 4-lattice summary.
   3. Estimate twig queries written in the textual syntax, and compare
      against exact counts.

   Run with: dune exec examples/quickstart.exe *)

module Dataset = Tl_datasets.Dataset
module Treelattice = Tl_core.Treelattice
module Estimator = Tl_core.Estimator

let () =
  (* Step 1: a ~5000-element auction site document.  To use your own data:
     Tl_xml.Xml_dom.parse_file "your.xml" |> Tl_tree.Data_tree.of_xml *)
  let tree = Dataset.tree Dataset.xmark ~target:5_000 ~seed:1 in
  Printf.printf "document: %d elements, %d distinct tags\n\n" (Tl_tree.Data_tree.size tree)
    (Tl_tree.Data_tree.label_count tree);

  (* Step 2: mine the 4-lattice summary.  This is the only expensive step;
     the summary can be saved with Tl_lattice.Summary_io and reloaded. *)
  let tl, ms = Tl_util.Timer.time_ms (fun () -> Treelattice.build ~k:4 tree) in
  Printf.printf "4-lattice summary: %d patterns, %s, built in %.0f ms\n\n"
    (Tl_lattice.Summary.entries (Treelattice.summary tl))
    (Tl_util.Prelude.human_bytes (Tl_lattice.Summary.memory_bytes (Treelattice.summary tl)))
    ms;

  (* Step 3: estimate. *)
  let queries =
    [
      "open_auction(bidder,seller)";
      "open_auction(bidder(increase),initial,current)";
      "person(name,emailaddress,watches(watch))";
      "open_auction(bidder(date,increase),itemref,seller,annotation)";
      "item(name,quantity,mailbox(mail))";
    ]
  in
  Printf.printf "%-60s %12s %8s\n" "query" "estimate" "exact";
  List.iter
    (fun q ->
      match (Treelattice.estimate_string tl q, Treelattice.exact_string tl q) with
      | Ok estimate, Ok exact -> Printf.printf "%-60s %12.1f %8d\n" q estimate exact
      | Error msg, _ | _, Error msg -> Printf.printf "%-60s  error: %s\n" q msg)
    queries;

  print_newline ();
  (* Estimator schemes trade accuracy for speed; Recursive_voting is the
     default (most accurate in the paper), Fixed_size is the fastest. *)
  let q = "open_auction(bidder(date,increase),itemref,seller,annotation)" in
  List.iter
    (fun scheme ->
      match Treelattice.estimate_string ~scheme tl q with
      | Ok estimate -> Printf.printf "%-24s -> %.1f\n" (Estimator.scheme_name scheme) estimate
      | Error msg -> prerr_endline msg)
    Estimator.all_schemes;

  (* A sensitivity interval flags how much the admissible decompositions
     disagree — wide means locally violated independence. *)
  (match Treelattice.parse_query tl q with
  | Ok twig ->
    let i = Treelattice.estimate_interval tl twig in
    Printf.printf "\nsensitivity interval for the last query: [%.1f, %.1f] around %.1f\n"
      i.Estimator.low i.Estimator.high i.Estimator.best
  | Error msg -> prerr_endline msg)
