(* Interactive query refinement — the scenario from the paper's
   introduction: "an end-user can interactively refine her query if she
   knows that the current query will result in an overwhelming result set."

   A user explores an auction site.  Each refinement step adds a predicate
   to the twig; the estimator prices every candidate refinement in
   microseconds, so the UI can steer the user toward a query whose result
   set fits on a screen — without ever running the full query.

   Run with: dune exec examples/auction_optimizer.exe *)

module Dataset = Tl_datasets.Dataset
module Treelattice = Tl_core.Treelattice

let screenful = 50.0
(* results the user is willing to scroll through *)

let () =
  let tree = Dataset.tree Dataset.xmark ~target:30_000 ~seed:3 in
  let tl = Treelattice.build ~k:4 tree in
  Printf.printf "auction site: %d elements; refining until <= %.0f expected results\n\n"
    (Tl_tree.Data_tree.size tree) screenful;

  (* Each step: the query so far, plus candidate refinements the UI offers. *)
  let steps =
    [
      ("start: all open auctions", [ "open_auction" ]);
      ( "narrow: auctions with some bidding activity",
        [ "open_auction(bidder)"; "open_auction(seller)"; "open_auction(annotation)" ] );
      ( "narrow: active auctions with provenance",
        [
          "open_auction(bidder,seller)";
          "open_auction(bidder,annotation)";
          "open_auction(bidder(increase),seller)";
        ] );
      ( "narrow: fully-documented active auctions",
        [
          "open_auction(bidder(date,increase),seller,itemref)";
          "open_auction(bidder,seller,itemref,annotation(description))";
          "open_auction(bidder(increase),initial,current,seller)";
        ] );
    ]
  in
  let estimate q =
    match Treelattice.estimate_string tl q with Ok v -> v | Error msg -> failwith msg
  in
  let exact q = match Treelattice.exact_string tl q with Ok v -> v | Error msg -> failwith msg in
  List.iter
    (fun (title, candidates) ->
      Printf.printf "%s\n" title;
      let priced =
        List.map
          (fun q ->
            let v, us = Tl_util.Timer.time_ms (fun () -> estimate q) in
            (q, v, us *. 1000.0))
          candidates
      in
      List.iter
        (fun (q, v, us) ->
          let verdict = if v <= screenful then "OK: fits" else "too broad" in
          Printf.printf "  %-58s ~%9.1f results (%5.0f us)  %s\n" q v us verdict)
        priced;
      (* The UI would pick the most selective candidate that is still broad
         enough to be useful; here: smallest estimate. *)
      let best, best_v, _ =
        List.fold_left (fun (bq, bv, bu) (q, v, u) -> if v < bv then (q, v, u) else (bq, bv, bu))
          (List.hd priced) priced
      in
      Printf.printf "  -> continue with %s (est %.1f, true %d)\n\n" best best_v (exact best))
    steps;

  print_endline "The final twig was never executed until the user committed to it.";
  print_endline "Every intermediate decision was priced from the 4-lattice summary alone."
