(* Lemma 4 in action: on path queries the decomposition framework IS the
   classic Markov-model path estimator of Lore / Markov tables /
   XPathLearner.

   We take root-to-descendant paths longer than the lattice depth and show
   that the recursive decomposition, the fixed-size decomposition, and the
   direct Markov formula produce identical estimates — TreeLattice strictly
   generalizes the Markov path estimators to branching twigs.

   Run with: dune exec examples/path_markov.exe *)

module Dataset = Tl_datasets.Dataset
module Data_tree = Tl_tree.Data_tree
module Treelattice = Tl_core.Treelattice
module Estimator = Tl_core.Estimator
module Markov_path = Tl_core.Markov_path
module Twig = Tl_twig.Twig

let () =
  let tree = Dataset.tree Dataset.nasa ~target:20_000 ~seed:9 in
  let tl = Treelattice.build ~k:3 tree in
  let summary = Treelattice.summary tl in
  let name l = Data_tree.label_name tree l in

  (* Collect distinct root-to-node label paths of length 4..6. *)
  let paths = Hashtbl.create 64 in
  Data_tree.iter_nodes tree (fun v ->
      let rec ancestry v acc =
        match Data_tree.parent tree v with
        | None -> Data_tree.label tree v :: acc
        | Some p -> ancestry p (Data_tree.label tree v :: acc)
      in
      let labels = ancestry v [] in
      let len = List.length labels in
      if len >= 4 && len <= 6 then Hashtbl.replace paths labels ());
  let paths = Hashtbl.fold (fun p () acc -> p :: acc) paths [] in
  let paths = Tl_util.Prelude.list_take 10 (List.sort compare paths) in

  Printf.printf "%-52s %10s %10s %10s %8s\n" "path query" "markov" "recursive" "fixed" "exact";
  List.iter
    (fun labels ->
      let twig = Twig.of_path labels in
      let markov = Markov_path.estimate summary labels in
      let recursive = Estimator.estimate summary Recursive twig in
      let fixed = Estimator.estimate summary Fixed_size twig in
      let exact = Treelattice.exact tl twig in
      let rendered = String.concat "/" (List.map name labels) in
      Printf.printf "%-52s %10.2f %10.2f %10.2f %8d\n" rendered markov recursive fixed exact;
      assert (Float.abs (markov -. recursive) <= 1e-6 *. Float.max 1.0 (Float.abs markov));
      assert (Float.abs (markov -. fixed) <= 1e-6 *. Float.max 1.0 (Float.abs markov)))
    paths;
  print_endline "\nall three estimators agree on every path (Lemma 4)."
