(* Approximate COUNT answering — the paper's second motivating use: "the
   estimated value can be returned as an approximate answer to aggregate
   queries using the COUNT primitive."

   We pose COUNT(twig) queries over a protein database and answer them from
   the summary alone, then audit the answers against exact evaluation:
   per-query relative error, the workload-level error metric of §5.1, and
   the speedup over exact counting.

   Run with: dune exec examples/approximate_count.exe *)

module Dataset = Tl_datasets.Dataset
module Treelattice = Tl_core.Treelattice
module Workload = Tl_workload.Workload
module Error_metric = Tl_workload.Error_metric

let () =
  let tree = Dataset.tree Dataset.psd ~target:30_000 ~seed:5 in
  let tl = Treelattice.build ~k:4 tree in
  let ctx = Tl_twig.Match_count.create_ctx tree in
  let names = Tl_tree.Data_tree.label_name tree in

  (* A mixed COUNT workload: sizes 5-7, sampled from the document. *)
  let workloads = Workload.positive_sweep ~seed:17 ctx ~sizes:[ 5; 6; 7 ] ~count:8 in
  Printf.printf "%-64s %10s %10s %8s\n" "COUNT(query)" "approx" "exact" "err";
  let audited = ref [] in
  List.iter
    (fun wl ->
      Array.iter
        (fun q ->
          let approx = Treelattice.estimate tl q.Workload.twig in
          let err =
            Error_metric.error_percent ~sanity:wl.Workload.sanity ~truth:q.Workload.truth
              ~estimate:approx
          in
          audited := (q.Workload.truth, approx) :: !audited;
          Printf.printf "%-64s %10.1f %10d %7.1f%%\n"
            (Tl_twig.Twig.pp ~names q.Workload.twig)
            approx q.Workload.truth err)
        wl.Workload.queries)
    workloads;

  (* Workload-level audit. *)
  let pairs = Array.of_list !audited in
  let sanity = Error_metric.sanity_bound (Array.map (fun (t, _) -> t) pairs) in
  Printf.printf "\nworkload average error (sanity bound %.0f): %.2f%%\n" sanity
    (Error_metric.average_percent ~sanity pairs);

  (* Cost comparison on one representative query. *)
  match workloads with
  | { queries; _ } :: _ when Array.length queries > 0 ->
    let twig = queries.(0).Workload.twig in
    let approx_ms = Tl_util.Timer.mean_ms ~repeats:100 (fun () -> ignore (Treelattice.estimate tl twig)) in
    let exact_ms =
      Tl_util.Timer.mean_ms ~repeats:20 (fun () -> ignore (Tl_twig.Match_count.selectivity ctx twig))
    in
    Printf.printf "approximate COUNT: %.3f ms | exact COUNT: %.3f ms | speedup %.0fx\n" approx_ms
      exact_ms
      (exact_ms /. Float.max 1e-9 approx_ms)
  | _ -> ()
