examples/fig11_walkthrough.mli:
