examples/approximate_count.mli:
