examples/fig11_walkthrough.ml: Float List Printf Result Tl_core Tl_sketch Tl_tree Tl_twig
