examples/query_planner.ml: Float List Printf Tl_datasets Tl_join Tl_lattice Tl_tree Tl_twig Tl_util
