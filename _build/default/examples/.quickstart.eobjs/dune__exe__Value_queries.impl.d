examples/value_queries.ml: Array Buffer List Printf Tl_tree Tl_util Tl_values Tl_xml
