examples/approximate_count.ml: Array Float List Printf Tl_core Tl_datasets Tl_tree Tl_twig Tl_util Tl_workload
