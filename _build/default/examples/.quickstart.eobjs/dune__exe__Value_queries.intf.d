examples/value_queries.mli:
