examples/auction_optimizer.mli:
