examples/quickstart.ml: List Printf Tl_core Tl_datasets Tl_lattice Tl_tree Tl_util
