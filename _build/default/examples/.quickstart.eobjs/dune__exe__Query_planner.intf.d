examples/query_planner.mli:
