examples/path_markov.mli:
