examples/auction_optimizer.ml: List Printf Tl_core Tl_datasets Tl_tree Tl_util
