examples/path_markov.ml: Float Hashtbl List Printf String Tl_core Tl_datasets Tl_tree Tl_twig Tl_util
