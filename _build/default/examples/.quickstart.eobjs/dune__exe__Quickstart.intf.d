examples/quickstart.mli:
