(* The paper's §5.3 discussion (Fig. 11), reconstructed: why TreeLattice
   beats TreeSketches when fan-outs are heterogeneous.

   A TreeSketches synopsis stores one *average* child count per
   (cluster, cluster) edge.  When same-label nodes differ wildly — here,
   three b-nodes own only c-children while the fourth owns the d-children —
   a query that needs c and d under the same b multiplies two averages that
   never co-occur, and overestimates badly (the paper's example:
   1 x 4 x 3.5 x 3.5 x 2 = 98 against a true count of 8, >100% error).
   TreeLattice stores the joint count of the small twig b(c,d) itself, so
   the decomposition is anchored on the true joint distribution.

   Run with: dune exec examples/fig11_walkthrough.exe *)

module TB = Tl_tree.Tree_builder
module Treelattice = Tl_core.Treelattice
module Sketch_build = Tl_sketch.Sketch_build
module Sketch_estimate = Tl_sketch.Sketch_estimate
module Twig_parse = Tl_twig.Twig_parse

(* Document T in concise form:
     a
     +- b  (x3)  each with four c children, no d
     +- b  (x1)  with one c child and four d children *)
let document =
  TB.node "a"
    (TB.replicate 3 (TB.node "b" (TB.replicate 4 (TB.leaf "c")))
    @ [ TB.node "b" (TB.leaf "c" :: TB.replicate 4 (TB.leaf "d")) ])

let () =
  let tree = TB.build document in
  let tl = Treelattice.build ~k:3 tree in

  (* A generous budget: the synopsis still cannot keep the four b-nodes
     apart once they share a label partition, which is the point. *)
  let sketch = Sketch_build.build ~budget_bytes:64 ~refine_rounds:0 tree in
  (* With the label partition, cluster(b) holds all four b nodes:
     w(b->c) = (3*4 + 1)/4 = 3.25 and w(b->d) = 4/4 = 1. *)
  Printf.printf "TreeSketches synopsis: %d clusters, %d edges\n"
    (Tl_sketch.Synopsis.cluster_count sketch)
    (Tl_sketch.Synopsis.edge_count sketch);

  let query = "a(b(c,d))" in
  let twig =
    match Treelattice.parse_query tl query with Ok t -> t | Error m -> failwith m
  in
  let truth = Treelattice.exact tl twig in
  let lattice_estimate = Treelattice.estimate ~scheme:Tl_core.Estimator.Recursive tl twig in
  let voting_estimate = Treelattice.estimate ~scheme:Tl_core.Estimator.Recursive_voting tl twig in
  let sketch_estimate = Sketch_estimate.estimate sketch twig in
  Printf.printf "\nquery: %s\n" query;
  Printf.printf "  true selectivity          = %d\n" truth;
  Printf.printf "  TreeLattice (recursive)   = %.2f\n" lattice_estimate;
  Printf.printf "  TreeLattice (voting)      = %.2f\n" voting_estimate;
  Printf.printf "  TreeSketches (avg edges)  = %.2f\n" sketch_estimate;
  let err v = 100.0 *. Float.abs (v -. float_of_int truth) /. float_of_int truth in
  Printf.printf "  errors: TreeLattice %.1f%%, TreeSketches %.1f%%\n\n" (err lattice_estimate)
    (err sketch_estimate);

  (* Show the lattice entries that anchor the estimate, as in Fig. 11(c). *)
  let show q =
    let twig = Result.get_ok (Twig_parse.parse_twig ~intern:(Tl_tree.Data_tree.label_of_string tree) q) in
    Printf.printf "  sigma(%-8s) = %d\n" q (Treelattice.exact tl twig)
  in
  print_endline "lattice entries used by the decomposition:";
  List.iter show [ "a(b)"; "b(c,d)"; "b" ];
  print_endline "\nestimate = sigma(a(b)) * sigma(b(c,d)) / sigma(b)  -- Theorem 1";
  print_endline "TreeSketches instead multiplies the averages w(b->c) * w(b->d),";
  print_endline "which assumes every b-node looks like the cluster mean."
