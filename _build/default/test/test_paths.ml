(* Tests for the Markov-table path estimator baseline. *)

module Markov_table = Tl_paths.Markov_table
module Data_tree = Tl_tree.Data_tree
module Match_count = Tl_twig.Match_count
module Twig = Tl_twig.Twig
module TB = Tl_tree.Tree_builder

let close = Alcotest.(check (float 1e-6))

let labels_of tree names = List.map (fun n -> Option.get (Data_tree.label_of_string tree n)) names

(* --- construction ------------------------------------------------------------ *)

let test_short_paths_exact () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let table = Markov_table.build ~order:2 tree in
  Alcotest.(check int) "order recorded" 2 (Markov_table.order table);
  close "single label" 2.0 (Markov_table.lookup table (labels_of tree [ "laptop" ]));
  close "edge count" 2.0 (Markov_table.lookup table (labels_of tree [ "laptop"; "brand" ]));
  close "absent edge" 0.0 (Markov_table.lookup table (labels_of tree [ "brand"; "laptop" ]))

let test_lookup_is_exact_count () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let table = Markov_table.build ~order:3 tree in
  let ctx = Match_count.create_ctx tree in
  List.iter
    (fun names ->
      let labels = labels_of tree names in
      close (String.concat "/" names)
        (float_of_int (Match_count.selectivity ctx (Twig.of_path labels)))
        (Markov_table.lookup table labels))
    [ [ "a" ]; [ "b" ]; [ "a"; "b" ]; [ "b"; "c" ]; [ "a"; "b"; "c" ]; [ "a"; "b"; "d" ] ]

let test_estimate_chains () =
  (* On a regular document the Markov chaining is exact. *)
  let tree = Helpers.tree_of Helpers.regular_spec in
  let table = Markov_table.build ~order:2 tree in
  let ctx = Match_count.create_ctx tree in
  let labels = labels_of tree [ "r"; "x"; "y"; "w" ] in
  close "chained estimate"
    (float_of_int (Match_count.selectivity ctx (Twig.of_path labels)))
    (Markov_table.estimate table labels)

let test_estimate_zero_propagation () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let table = Markov_table.build ~order:2 tree in
  let bogus = labels_of tree [ "computer"; "laptops"; "price" ] in
  (* laptops/price edge does not occur. *)
  close "broken chain" 0.0 (Markov_table.estimate table bogus)

let test_estimate_validation () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let table = Markov_table.build tree in
  Alcotest.check_raises "empty path" (Invalid_argument "Markov_table.estimate: empty path")
    (fun () -> ignore (Markov_table.estimate table []));
  Alcotest.check_raises "bad order" (Invalid_argument "Markov_table.build: order must be >= 1")
    (fun () -> ignore (Markov_table.build ~order:0 tree))

let test_agrees_with_treelattice_markov () =
  (* Both implement the same formula over the same statistics, so they must
     agree exactly: table order = lattice depth. *)
  let tree = Helpers.tree_of Helpers.shop_spec in
  let table = Markov_table.build ~order:3 tree in
  let summary = Tl_lattice.Summary.build ~k:3 tree in
  let labels = labels_of tree [ "computer"; "laptops"; "laptop"; "brand" ] in
  close "same estimate" (Tl_core.Markov_path.estimate summary labels) (Markov_table.estimate table labels)

(* --- pruning ------------------------------------------------------------------- *)

let test_prune_respects_budget () =
  let tree = Tl_datasets.Dataset.tree Tl_datasets.Dataset.nasa ~target:2_000 ~seed:3 in
  let table = Markov_table.build ~order:3 tree in
  let full = Markov_table.memory_bytes table in
  let budget = full / 3 in
  let pruned = Markov_table.prune table ~budget_bytes:budget in
  Alcotest.(check bool) "under budget" true (Markov_table.memory_bytes pruned <= budget);
  Alcotest.(check bool) "entries dropped" true (Markov_table.entries pruned < Markov_table.entries table)

let test_prune_keeps_length1 () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let table = Markov_table.build ~order:2 tree in
  let pruned = Markov_table.prune table ~budget_bytes:0 in
  (* All length-1 entries survive even an impossible budget. *)
  Alcotest.(check bool) "labels kept" true (Markov_table.entries pruned >= Data_tree.label_count tree);
  close "label count still exact" 4.0 (Markov_table.lookup pruned (labels_of tree [ "b" ]))

let test_star_fallback () =
  let tree = Tl_datasets.Dataset.tree Tl_datasets.Dataset.psd ~target:2_000 ~seed:5 in
  let table = Markov_table.build ~order:2 tree in
  let pruned = Markov_table.prune table ~budget_bytes:(Markov_table.memory_bytes table / 4) in
  (* Find a pruned length-2 path: lookup must fall back to the star average
     rather than zero. *)
  let found = ref false in
  Data_tree.iter_nodes tree (fun v ->
      if not !found then
        match Data_tree.parent tree v with
        | Some p ->
          let path = [ Data_tree.label tree p; Data_tree.label tree v ] in
          let full_v = Markov_table.lookup table path in
          let pruned_v = Markov_table.lookup pruned path in
          if full_v > 0.0 && Float.abs (full_v -. pruned_v) > 1e-9 then begin
            found := true;
            Alcotest.(check bool) "star average positive" true (pruned_v > 0.0)
          end
        | None -> ());
  Alcotest.(check bool) "a pruned path was exercised" true !found

let test_prune_noop_within_budget () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let table = Markov_table.build ~order:2 tree in
  let pruned = Markov_table.prune table ~budget_bytes:max_int in
  Alcotest.(check int) "nothing pruned" (Markov_table.entries table) (Markov_table.entries pruned)

(* --- path tree ------------------------------------------------------------------ *)

module Path_tree = Tl_paths.Path_tree

let test_path_tree_build () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let pt = Path_tree.build tree in
  (* Distinct root-to-node paths: a, a/b, a/b/c, a/b/d. *)
  Alcotest.(check int) "one node per distinct path" 4 (Path_tree.node_count pt);
  Alcotest.(check int) "memory" (4 * 16) (Path_tree.memory_bytes pt)

let test_path_tree_exact_estimates () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let pt = Path_tree.build tree in
  let ctx = Match_count.create_ctx tree in
  List.iter
    (fun names ->
      let labels = labels_of tree names in
      close (String.concat "/" names)
        (float_of_int (Match_count.selectivity ctx (Twig.of_path labels)))
        (Path_tree.estimate pt labels))
    [ [ "a" ]; [ "b" ]; [ "c" ]; [ "a"; "b" ]; [ "b"; "c" ]; [ "a"; "b"; "d" ] ];
  close "absent path" 0.0 (Path_tree.estimate pt (labels_of tree [ "c"; "a" ]));
  Alcotest.check_raises "empty path" (Invalid_argument "Path_tree.estimate: empty path") (fun () ->
      ignore (Path_tree.estimate pt []))

let test_path_tree_suffix_paths () =
  (* Unanchored estimation sums over all positions: b/c occurs under both
     kinds of b-parents in a deeper document. *)
  let tree =
    TB.build
      (TB.node "r"
         [ TB.node "x" [ TB.node "b" [ TB.leaf "c" ] ]; TB.node "b" [ TB.leaf "c"; TB.leaf "c" ] ])
  in
  let pt = Path_tree.build tree in
  close "b/c across positions" 3.0 (Path_tree.estimate pt (labels_of tree [ "b"; "c" ]))

let test_path_tree_prune () =
  let tree = Tl_datasets.Dataset.tree Tl_datasets.Dataset.nasa ~target:2_000 ~seed:9 in
  let pt = Path_tree.build tree in
  let full = Path_tree.memory_bytes pt in
  let budget = full / 2 in
  let pruned = Path_tree.prune pt ~budget_bytes:budget in
  Alcotest.(check bool) "under budget" true (Path_tree.memory_bytes pruned <= budget);
  Alcotest.(check bool) "nodes dropped" true (Path_tree.node_count pruned < Path_tree.node_count pt);
  (* The original is untouched. *)
  Alcotest.(check int) "original intact" full (Path_tree.memory_bytes pt)

let test_path_tree_star_fallback () =
  (* a has three leaf kinds; the budget forces the two rare ones into a's
     star bucket while a itself (and the frequent z) survive. *)
  let tree =
    TB.build
      (TB.node "r"
         [ TB.node "a" (TB.leaf "x" :: TB.leaf "y" :: TB.replicate 5 (TB.leaf "z")) ])
  in
  let pt = Path_tree.build tree in
  (* Full: r, a, x, y, z = 80 bytes; after pruning x and y: 48 + 16 star. *)
  let pruned = Path_tree.prune pt ~budget_bytes:64 in
  Alcotest.(check bool) "under budget" true (Path_tree.memory_bytes pruned <= 64);
  close "star average stands in for pruned leaves" 1.0
    (Path_tree.estimate pruned (labels_of tree [ "a"; "x" ]));
  close "surviving leaf exact" 5.0 (Path_tree.estimate pruned (labels_of tree [ "a"; "z" ]))

let prop_path_tree_exact_unpruned =
  Helpers.qcheck_case ~name:"unpruned path tree is exact on random paths" ~count:40
    (Helpers.tree_gen ~max_nodes:25)
    (fun tree ->
      let pt = Path_tree.build tree in
      let ctx = Match_count.create_ctx tree in
      let rng = Tl_util.Xorshift.create 71 in
      let nlabels = Data_tree.label_count tree in
      let ok = ref true in
      for _ = 1 to 8 do
        let len = 1 + Tl_util.Xorshift.int rng 4 in
        let labels = List.init len (fun _ -> Tl_util.Xorshift.int rng nlabels) in
        let expected = float_of_int (Match_count.selectivity ctx (Twig.of_path labels)) in
        if Float.abs (Path_tree.estimate pt labels -. expected) > 1e-9 then ok := false
      done;
      !ok)

(* --- property: equivalence with TreeLattice on paths (Lemma 4, externally) ----- *)

let prop_table_equals_lattice_on_paths =
  Helpers.qcheck_case ~name:"Markov table = lattice Markov estimator on random paths" ~count:40
    (Helpers.tree_gen ~max_nodes:25)
    (fun tree ->
      let table = Markov_table.build ~order:2 tree in
      let summary = Tl_lattice.Summary.build ~k:2 tree in
      let rng = Tl_util.Xorshift.create 51 in
      let nlabels = Data_tree.label_count tree in
      let ok = ref true in
      for _ = 1 to 8 do
        let len = 2 + Tl_util.Xorshift.int rng 4 in
        let labels = List.init len (fun _ -> Tl_util.Xorshift.int rng nlabels) in
        let a = Markov_table.estimate table labels in
        let b = Tl_core.Markov_path.estimate summary labels in
        if Float.abs (a -. b) > 1e-6 *. Float.max 1.0 a then ok := false
      done;
      !ok)

let () =
  Alcotest.run "paths"
    [
      ( "markov_table",
        [
          Alcotest.test_case "short paths exact" `Quick test_short_paths_exact;
          Alcotest.test_case "lookups are exact counts" `Quick test_lookup_is_exact_count;
          Alcotest.test_case "chained estimates" `Quick test_estimate_chains;
          Alcotest.test_case "zero propagation" `Quick test_estimate_zero_propagation;
          Alcotest.test_case "validation" `Quick test_estimate_validation;
          Alcotest.test_case "agrees with lattice markov" `Quick test_agrees_with_treelattice_markov;
          prop_table_equals_lattice_on_paths;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "respects budget" `Quick test_prune_respects_budget;
          Alcotest.test_case "keeps length-1" `Quick test_prune_keeps_length1;
          Alcotest.test_case "star fallback" `Quick test_star_fallback;
          Alcotest.test_case "noop within budget" `Quick test_prune_noop_within_budget;
        ] );
      ( "path_tree",
        [
          Alcotest.test_case "build" `Quick test_path_tree_build;
          Alcotest.test_case "exact estimates" `Quick test_path_tree_exact_estimates;
          Alcotest.test_case "suffix paths" `Quick test_path_tree_suffix_paths;
          Alcotest.test_case "prune" `Quick test_path_tree_prune;
          Alcotest.test_case "star fallback" `Quick test_path_tree_star_fallback;
          prop_path_tree_exact_unpruned;
        ] );
    ]
