(* Scale and robustness: deep documents, wide documents, and an
   end-to-end pass over a larger dataset.  These guard against stack
   overflows and quadratic traps that small unit tests cannot see. *)

module Data_tree = Tl_tree.Data_tree
module Tree_load = Tl_tree.Tree_load
module Summary = Tl_lattice.Summary
module Match_count = Tl_twig.Match_count
module Twig = Tl_twig.Twig

(* --- pathological shapes --------------------------------------------------- *)

let deep_document depth =
  let buf = Buffer.create (8 * depth) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  Buffer.add_string buf "<leaf/>";
  for _ = 1 to depth do
    Buffer.add_string buf "</d>"
  done;
  Buffer.contents buf

let test_deep_document_sax () =
  (* The SAX route is iterative end to end: very deep nesting must load. *)
  let depth = 200_000 in
  let tree = Tree_load.of_string (deep_document depth) in
  Alcotest.(check int) "all nodes" (depth + 1) (Data_tree.size tree);
  Alcotest.(check int) "depth" (depth + 1) (Data_tree.depth tree);
  (* Postorder and stats are iterative too. *)
  Alcotest.(check int) "postorder covers" (depth + 1) (Array.length (Data_tree.postorder tree));
  let stats = Tl_tree.Tree_stats.compute tree in
  Alcotest.(check int) "stats nodes" (depth + 1) stats.Tl_tree.Tree_stats.nodes

let test_deep_document_counting () =
  let depth = 50_000 in
  let tree = Tree_load.of_string (deep_document depth) in
  let ctx = Match_count.create_ctx tree in
  let d = Option.get (Data_tree.label_of_string tree "d") in
  (* A 3-chain of d's occurs depth-2 times. *)
  Alcotest.(check int) "chain count" (depth - 2) (Match_count.selectivity ctx (Twig.of_path [ d; d; d ]))

let test_wide_document () =
  (* One node with 100k children. *)
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf "<r>";
  for i = 0 to 99_999 do
    Buffer.add_string buf (if i mod 2 = 0 then "<even/>" else "<odd/>")
  done;
  Buffer.add_string buf "</r>";
  let tree = Tree_load.of_string (Buffer.contents buf) in
  Alcotest.(check int) "size" 100_001 (Data_tree.size tree);
  let ctx = Match_count.create_ctx tree in
  let r = Option.get (Data_tree.label_of_string tree "r") in
  let even = Option.get (Data_tree.label_of_string tree "even") in
  let odd = Option.get (Data_tree.label_of_string tree "odd") in
  Alcotest.(check int) "pair count" (50_000 * 50_000)
    (Match_count.selectivity ctx (Twig.node r [ Twig.leaf even; Twig.leaf odd ]))

(* --- end-to-end on a larger dataset ------------------------------------------ *)

let test_end_to_end_larger_dataset () =
  let tree = Tl_datasets.Dataset.tree Tl_datasets.Dataset.xmark ~target:60_000 ~seed:3 in
  Alcotest.(check bool) "dataset size" true (Data_tree.size tree > 50_000);
  let ctx = Match_count.create_ctx tree in
  let summary, ms = Tl_util.Timer.time_ms (fun () -> Summary.build ~k:4 tree) in
  Alcotest.(check bool) "mining under 10s" true (ms < 10_000.0);
  Alcotest.(check bool) "patterns found" true (Summary.entries summary > 300);
  (* Stored counts are exact. *)
  let checked = ref 0 in
  Summary.fold
    (fun twig count () ->
      if !checked < 50 && Twig.size twig = 4 then begin
        incr checked;
        Alcotest.(check int) (Twig.encode twig) (Match_count.selectivity ctx twig) count
      end)
    summary ();
  Alcotest.(check bool) "some level-4 patterns checked" true (!checked > 10);
  (* Estimation throughput: size-7 queries well under a millisecond each. *)
  let wl = Tl_workload.Workload.positive ~seed:5 ctx ~size:7 ~count:10 in
  let _, elapsed =
    Tl_util.Timer.time_ms (fun () ->
        Array.iter
          (fun q ->
            ignore (Tl_core.Estimator.estimate summary Recursive_voting q.Tl_workload.Workload.twig))
          wl.Tl_workload.Workload.queries)
  in
  let per_query = elapsed /. float_of_int (max 1 (Array.length wl.Tl_workload.Workload.queries)) in
  Alcotest.(check bool)
    (Printf.sprintf "estimation fast enough (%.2f ms/query)" per_query)
    true (per_query < 50.0)

let test_summary_io_scales () =
  let tree = Tl_datasets.Dataset.tree Tl_datasets.Dataset.imdb ~target:20_000 ~seed:3 in
  let summary = Summary.build ~k:4 tree in
  let names = Data_tree.label_names tree in
  let text = Tl_lattice.Summary_io.save ~names summary in
  let loaded, _ = Tl_lattice.Summary_io.load text in
  Alcotest.(check int) "thousands of patterns roundtrip" (Summary.entries summary)
    (Summary.entries loaded)

let () =
  Alcotest.run "scale"
    [
      ( "pathological",
        [
          Alcotest.test_case "deep document via sax" `Slow test_deep_document_sax;
          Alcotest.test_case "deep document counting" `Slow test_deep_document_counting;
          Alcotest.test_case "wide document" `Slow test_wide_document;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "larger dataset" `Slow test_end_to_end_larger_dataset;
          Alcotest.test_case "summary io" `Slow test_summary_io_scales;
        ] );
    ]
