(* Tests for the SAX parser, the streaming tree loader, and the preorder
   tree constructor they share. *)

module Xml_sax = Tl_xml.Xml_sax
module Xml_dom = Tl_xml.Xml_dom
module Xml_error = Tl_xml.Xml_error
module Data_tree = Tl_tree.Data_tree
module Tree_load = Tl_tree.Tree_load

let events = Xml_sax.events_of_string

let expect_parse_error input =
  match events input with
  | exception Xml_error.Parse_error _ -> ()
  | _ -> Alcotest.failf "expected a parse error for %S" input

(* --- event stream ----------------------------------------------------------- *)

let test_basic_events () =
  match events {|<?xml version="1.0"?><a x="1"><b>hi</b><c/></a>|} with
  | [
   Declaration [ ("version", "1.0") ];
   Start_element ("a", [ ("x", "1") ]);
   Start_element ("b", []);
   Text "hi";
   End_element "b";
   Start_element ("c", []);
   End_element "c";
   End_element "a";
  ] ->
    ()
  | other -> Alcotest.failf "unexpected event stream (%d events)" (List.length other)

let test_text_coalescing () =
  (* Entity references and CDATA merge into one Text event per run. *)
  match events "<a>x&amp;y<![CDATA[&z]]>!</a>" with
  | [ Start_element _; Text t; End_element _ ] -> Alcotest.(check string) "coalesced" "x&y&z!" t
  | _ -> Alcotest.fail "expected a single text event"

let test_comment_and_pi_events () =
  match events "<a><!--note--><?p data?></a>" with
  | [ Start_element _; Comment c; Pi (target, content); End_element _ ] ->
    Alcotest.(check string) "comment" "note" c;
    Alcotest.(check string) "pi target" "p" target;
    Alcotest.(check string) "pi content" "data" content
  | _ -> Alcotest.fail "expected comment then pi"

let test_doctype_skipped () =
  match events {|<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>|} with
  | [ Start_element ("a", []); End_element "a" ] -> ()
  | _ -> Alcotest.fail "doctype should produce no events"

let test_sax_errors () =
  expect_parse_error "<a><b></a></b>";
  expect_parse_error "<a>";
  expect_parse_error "<a/><b/>";
  expect_parse_error "stray <a/>";
  expect_parse_error "<a/>trailing";
  expect_parse_error "";
  expect_parse_error "</a>"

let test_sax_matches_dom () =
  (* Same grammar: replaying SAX events must rebuild the DOM parse. *)
  let input = {|<?xml version="1.0"?><r a="1"><x>t&lt;</x><!--c--><y><z/></y>tail</r>|} in
  let dom = Xml_dom.parse_string input in
  let stack = ref [ Xml_dom.element "STAGING" [] ] in
  let add node =
    match !stack with
    | top :: rest -> stack := { top with children = node :: top.children } :: rest
    | [] -> assert false
  in
  Xml_sax.parse_string input (fun event ->
      match event with
      | Declaration _ -> ()
      | Start_element (tag, attrs) -> stack := Xml_dom.element ~attrs tag [] :: !stack
      | End_element _ -> (
        match !stack with
        | el :: rest ->
          stack := rest;
          add (Xml_dom.Element { el with children = List.rev el.children })
        | [] -> assert false)
      | Text t -> add (Xml_dom.Text t)
      | Comment c -> add (Xml_dom.Comment c)
      | Pi (t, c) -> add (Xml_dom.Pi (t, c)));
  match !stack with
  | [ { children = [ Xml_dom.Element rebuilt ]; _ } ] ->
    Alcotest.(check bool) "same document" true (Xml_dom.equal_element dom.root rebuilt)
  | _ -> Alcotest.fail "reconstruction failed"

(* --- of_preorder -------------------------------------------------------------- *)

let test_of_preorder_basic () =
  let t = Data_tree.of_preorder ~tags:[| "a"; "b"; "c"; "b" |] ~parents:[| -1; 0; 1; 0 |] in
  Alcotest.(check int) "size" 4 (Data_tree.size t);
  Alcotest.(check string) "root tag" "a" (Data_tree.label_name t (Data_tree.label t 0));
  Alcotest.(check (list int)) "root children" [ 1; 3 ] (Array.to_list (Data_tree.children t 0));
  Alcotest.(check (option int)) "parent" (Some 1) (Data_tree.parent t 2);
  let b = Option.get (Data_tree.label_of_string t "b") in
  Alcotest.(check (list int)) "by label" [ 1; 3 ] (Array.to_list (Data_tree.nodes_with_label t b))

let test_of_preorder_validation () =
  let expect_invalid tags parents =
    match Data_tree.of_preorder ~tags ~parents with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected validation failure"
  in
  expect_invalid [||] [||];
  expect_invalid [| "a" |] [| -1; 0 |];
  expect_invalid [| "a"; "b" |] [| 0; 0 |];
  expect_invalid [| "a"; "b" |] [| -1; 1 |];
  expect_invalid [| "a"; "b" |] [| -1; -1 |]

(* --- streaming loader ----------------------------------------------------------- *)

let same_tree a b =
  Data_tree.size a = Data_tree.size b
  && begin
       let ok = ref true in
       Data_tree.iter_nodes a (fun v ->
           if Data_tree.label_name a (Data_tree.label a v) <> Data_tree.label_name b (Data_tree.label b v)
           then ok := false;
           if Data_tree.parent a v <> Data_tree.parent b v then ok := false);
       !ok
     end

let test_load_matches_dom_route () =
  let input = {|<r><x a="ignored">text<y/><y><z/></y></x><x/></r>|} in
  let via_dom = Data_tree.of_xml (Xml_dom.parse_string input) in
  let via_sax = Tree_load.of_string input in
  Alcotest.(check bool) "identical trees" true (same_tree via_dom via_sax)

let test_load_file () =
  let path = Filename.temp_file "tl_sax" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "<a><b/><b><c/></b></a>";
      close_out oc;
      let t = Tree_load.of_file path in
      Alcotest.(check int) "loaded size" 4 (Data_tree.size t))

let test_load_grows_buffers () =
  (* More nodes than the initial buffer capacity. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<r>";
  for _ = 1 to 500 do
    Buffer.add_string buf "<k/>"
  done;
  Buffer.add_string buf "</r>";
  let t = Tree_load.of_string (Buffer.contents buf) in
  Alcotest.(check int) "all nodes loaded" 501 (Data_tree.size t)

let prop_sax_route_equals_dom_route =
  Helpers.qcheck_case ~name:"SAX and DOM loading build identical trees" ~count:100
    (Helpers.spec_gen ~max_nodes:40)
    (fun spec ->
      let el = Tl_tree.Tree_builder.to_element spec in
      let text = Tl_xml.Xml_writer.to_string { decl = None; root = el } in
      same_tree (Data_tree.of_xml (Xml_dom.parse_string text)) (Tree_load.of_string text))

let prop_same_estimates_either_route =
  Helpers.qcheck_case ~name:"summaries agree between loading routes" ~count:25
    (Helpers.spec_gen ~max_nodes:25)
    (fun spec ->
      let el = Tl_tree.Tree_builder.to_element spec in
      let text = Tl_xml.Xml_writer.to_string { decl = None; root = el } in
      let s1 = Tl_lattice.Summary.build ~k:3 (Data_tree.of_xml (Xml_dom.parse_string text)) in
      let s2 = Tl_lattice.Summary.build ~k:3 (Tree_load.of_string text) in
      Tl_lattice.Summary.entries s1 = Tl_lattice.Summary.entries s2
      && Tl_lattice.Summary.fold
           (fun tw c acc -> acc && Tl_lattice.Summary.find s2 tw = Some c)
           s1 true)

let () =
  Alcotest.run "sax"
    [
      ( "events",
        [
          Alcotest.test_case "basic stream" `Quick test_basic_events;
          Alcotest.test_case "text coalescing" `Quick test_text_coalescing;
          Alcotest.test_case "comment and pi" `Quick test_comment_and_pi_events;
          Alcotest.test_case "doctype skipped" `Quick test_doctype_skipped;
          Alcotest.test_case "errors" `Quick test_sax_errors;
          Alcotest.test_case "matches dom" `Quick test_sax_matches_dom;
        ] );
      ( "of_preorder",
        [
          Alcotest.test_case "basic" `Quick test_of_preorder_basic;
          Alcotest.test_case "validation" `Quick test_of_preorder_validation;
        ] );
      ( "tree_load",
        [
          Alcotest.test_case "matches dom route" `Quick test_load_matches_dom_route;
          Alcotest.test_case "file" `Quick test_load_file;
          Alcotest.test_case "buffer growth" `Quick test_load_grows_buffers;
          prop_sax_route_equals_dom_route;
          prop_same_estimates_either_route;
        ] );
    ]
