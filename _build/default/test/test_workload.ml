(* Tests for workload generation and the paper's error metric. *)

module Workload = Tl_workload.Workload
module Error_metric = Tl_workload.Error_metric
module Match_count = Tl_twig.Match_count
module Twig = Tl_twig.Twig
module Dataset = Tl_datasets.Dataset

let close = Alcotest.(check (float 1e-9))

let ctx_of_tree tree = Match_count.create_ctx tree

let sample_ctx () = ctx_of_tree (Dataset.tree Dataset.xmark ~target:2_000 ~seed:3)

(* --- error metric -------------------------------------------------------------- *)

let test_sanity_bound () =
  let counts = Array.init 100 (fun i -> i + 1) in
  close "10th percentile" 10.0 (Error_metric.sanity_bound counts);
  close "floored at 10" 10.0 (Error_metric.sanity_bound [| 1; 2; 3 |]);
  close "large counts" 100.0 (Error_metric.sanity_bound (Array.make 10 100));
  Alcotest.check_raises "empty workload" (Invalid_argument "Error_metric.sanity_bound: empty workload")
    (fun () -> ignore (Error_metric.sanity_bound [||]))

let test_error_percent () =
  close "exact" 0.0 (Error_metric.error_percent ~sanity:10.0 ~truth:100 ~estimate:100.0);
  close "50% over" 50.0 (Error_metric.error_percent ~sanity:10.0 ~truth:100 ~estimate:150.0);
  close "50% under" 50.0 (Error_metric.error_percent ~sanity:10.0 ~truth:100 ~estimate:50.0);
  (* Low-count query: the sanity bound damps the percentage. *)
  close "sanity damped" 20.0 (Error_metric.error_percent ~sanity:10.0 ~truth:2 ~estimate:4.0);
  (* Zero-selectivity query estimated as 5: 5/10 = 50%. *)
  close "negative query" 50.0 (Error_metric.error_percent ~sanity:10.0 ~truth:0 ~estimate:5.0)

let test_average_percent () =
  let pairs = [| (100, 150.0); (100, 100.0) |] in
  close "average" 25.0 (Error_metric.average_percent ~sanity:10.0 pairs);
  close "empty" 0.0 (Error_metric.average_percent ~sanity:10.0 [||])

let test_cdf () =
  let pairs = [| (100, 100.0); (100, 150.0); (100, 300.0) |] in
  let cdf = Error_metric.cdf ~sanity:10.0 pairs in
  Alcotest.(check int) "three distinct errors" 3 (List.length cdf);
  match cdf with
  | (first_err, first_frac) :: _ ->
    close "smallest error first" 0.0 first_err;
    close "one third" (1.0 /. 3.0) first_frac
  | [] -> Alcotest.fail "empty cdf"

(* --- positive workloads ----------------------------------------------------------- *)

let test_positive_basic () =
  let ctx = sample_ctx () in
  let wl = Workload.positive ~seed:11 ctx ~size:4 ~count:15 in
  Alcotest.(check int) "requested size recorded" 4 wl.size;
  Alcotest.(check bool) "got queries" true (Array.length wl.queries > 0);
  Array.iter
    (fun q ->
      Alcotest.(check int) "query size" 4 (Twig.size q.Workload.twig);
      Alcotest.(check bool) "positive truth" true (q.Workload.truth > 0);
      Alcotest.(check int) "truth is exact count" (Match_count.selectivity ctx q.Workload.twig)
        q.Workload.truth)
    wl.queries;
  Alcotest.(check bool) "sanity >= 10" true (wl.sanity >= 10.0)

let test_positive_distinct () =
  let ctx = sample_ctx () in
  let wl = Workload.positive ~seed:12 ctx ~size:5 ~count:20 in
  let keys = Array.to_list (Array.map (fun q -> Twig.encode q.Workload.twig) wl.queries) in
  Alcotest.(check int) "all distinct" (List.length keys) (List.length (List.sort_uniq compare keys))

let test_positive_deterministic () =
  let ctx = sample_ctx () in
  let wl1 = Workload.positive ~seed:13 ctx ~size:4 ~count:10 in
  let wl2 = Workload.positive ~seed:13 ctx ~size:4 ~count:10 in
  let keys wl = Array.map (fun q -> Twig.encode q.Workload.twig) wl.Workload.queries in
  Alcotest.(check (array string)) "same workload" (keys wl1) (keys wl2)

let test_positive_sweep () =
  let ctx = sample_ctx () in
  let wls = Workload.positive_sweep ~seed:14 ctx ~sizes:[ 4; 5; 6 ] ~count:5 in
  Alcotest.(check (list int)) "sizes in order" [ 4; 5; 6 ] (List.map (fun wl -> wl.Workload.size) wls)

let test_positive_validation () =
  let ctx = sample_ctx () in
  Alcotest.check_raises "size >= 1" (Invalid_argument "Workload.positive: size must be >= 1")
    (fun () -> ignore (Workload.positive ~seed:1 ctx ~size:0 ~count:5));
  Alcotest.check_raises "count >= 1" (Invalid_argument "Workload.positive: count must be >= 1")
    (fun () -> ignore (Workload.positive ~seed:1 ctx ~size:3 ~count:0))

let test_positive_exhausts_small_tree () =
  (* A tiny tree has few distinct patterns; the sampler must stop without
     spinning forever and return what exists. *)
  let tree = Helpers.tree_of Helpers.shop_spec in
  let ctx = ctx_of_tree tree in
  let wl = Workload.positive ~seed:15 ctx ~size:3 ~count:500 in
  Alcotest.(check bool) "some but not 500" true
    (Array.length wl.queries > 0 && Array.length wl.queries < 500)

(* --- negative workloads -------------------------------------------------------------- *)

let test_negative_basic () =
  let ctx = sample_ctx () in
  let base = Workload.positive ~seed:16 ctx ~size:4 ~count:15 in
  let neg = Workload.negative ~seed:17 ctx ~base ~count:10 in
  Alcotest.(check bool) "got negatives" true (Array.length neg.queries > 0);
  Array.iter
    (fun q ->
      Alcotest.(check int) "zero selectivity" 0 q.Workload.truth;
      Alcotest.(check int) "zero by matching too" 0 (Match_count.selectivity ctx q.Workload.twig);
      Alcotest.(check int) "same size as base" 4 (Twig.size q.Workload.twig))
    neg.queries;
  close "sanity inherited" base.sanity neg.sanity

let test_negative_deterministic () =
  let ctx = sample_ctx () in
  let base = Workload.positive ~seed:18 ctx ~size:4 ~count:10 in
  let keys wl = Array.map (fun q -> Twig.encode q.Workload.twig) wl.Workload.queries in
  Alcotest.(check (array string)) "stable"
    (keys (Workload.negative ~seed:19 ctx ~base ~count:8))
    (keys (Workload.negative ~seed:19 ctx ~base ~count:8))

let test_negative_by_kind () =
  let ctx = sample_ctx () in
  let base = Workload.positive ~seed:22 ctx ~size:5 ~count:12 in
  let by_kind = Workload.negative_by_kind ~seed:23 ctx ~base ~count:6 in
  Alcotest.(check bool) "at least root and leaf kinds" true (List.length by_kind >= 2);
  List.iter
    (fun (kind, wl) ->
      Alcotest.(check bool)
        (Workload.mutation_kind_name kind ^ " non-empty")
        true
        (Array.length wl.Workload.queries > 0);
      Array.iter
        (fun q -> Alcotest.(check int) "zero selectivity" 0 q.Workload.truth)
        wl.Workload.queries)
    by_kind;
  let names = List.map (fun (k, _) -> Workload.mutation_kind_name k) by_kind in
  Alcotest.(check int) "kinds distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_mutation_kind_names () =
  Alcotest.(check (list string)) "names"
    [ "root"; "internal"; "leaf" ]
    (List.map Workload.mutation_kind_name
       [ Workload.Relabel_root; Workload.Relabel_internal; Workload.Relabel_leaf ])

let test_pairs_runner () =
  let ctx = sample_ctx () in
  let wl = Workload.positive ~seed:20 ctx ~size:4 ~count:5 in
  let pairs = Workload.pairs wl ~estimate:(fun _ -> 7.5) in
  Alcotest.(check int) "one pair per query" (Array.length wl.queries) (Array.length pairs);
  Array.iter (fun (truth, est) ->
      Alcotest.(check bool) "truth positive" true (truth > 0);
      close "estimate threaded" 7.5 est)
    pairs

(* --- properties -------------------------------------------------------------------------- *)

let prop_positive_queries_occur =
  Helpers.qcheck_case ~name:"positive workload queries occur in the document" ~count:20
    (Helpers.tree_gen ~max_nodes:30)
    (fun tree ->
      let ctx = ctx_of_tree tree in
      let wl = Workload.positive ~seed:21 ctx ~size:3 ~count:5 in
      Array.for_all (fun q -> q.Workload.truth > 0) wl.queries)

let () =
  Alcotest.run "workload"
    [
      ( "error_metric",
        [
          Alcotest.test_case "sanity bound" `Quick test_sanity_bound;
          Alcotest.test_case "error percent" `Quick test_error_percent;
          Alcotest.test_case "average" `Quick test_average_percent;
          Alcotest.test_case "cdf" `Quick test_cdf;
        ] );
      ( "positive",
        [
          Alcotest.test_case "basic" `Quick test_positive_basic;
          Alcotest.test_case "distinct" `Quick test_positive_distinct;
          Alcotest.test_case "deterministic" `Quick test_positive_deterministic;
          Alcotest.test_case "sweep" `Quick test_positive_sweep;
          Alcotest.test_case "validation" `Quick test_positive_validation;
          Alcotest.test_case "small tree exhaustion" `Quick test_positive_exhausts_small_tree;
          prop_positive_queries_occur;
        ] );
      ( "negative",
        [
          Alcotest.test_case "basic" `Quick test_negative_basic;
          Alcotest.test_case "deterministic" `Quick test_negative_deterministic;
          Alcotest.test_case "by kind" `Quick test_negative_by_kind;
          Alcotest.test_case "kind names" `Quick test_mutation_kind_names;
          Alcotest.test_case "pairs runner" `Quick test_pairs_runner;
        ] );
    ]
