(* Shared test utilities: QCheck generators for random labeled trees and
   twigs, and small hand-built documents reused across suites. *)

module TB = Tl_tree.Tree_builder
module Twig = Tl_twig.Twig

let alphabet = [| "a"; "b"; "c"; "d"; "e"; "f" |]

(* A random tree spec with at most [max_nodes] nodes and fan-out <= 4,
   labels drawn from the 6-letter alphabet — small enough that brute-force
   oracles stay fast, rich enough to hit repeated-sibling cases. *)
let spec_gen ~max_nodes : TB.spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  let label = map (fun i -> alphabet.(i)) (int_bound (Array.length alphabet - 1)) in
  let rec build budget =
    if budget <= 1 then map TB.leaf label
    else
      let* l = label in
      let* nkids = int_bound (min 4 (budget - 1)) in
      if nkids = 0 then return (TB.leaf l)
      else begin
        let per_child = (budget - 1) / nkids in
        let* kids = flatten_l (List.init nkids (fun _ -> build (max 1 per_child))) in
        return (TB.node l kids)
      end
  in
  build max_nodes

let tree_gen ~max_nodes = QCheck2.Gen.map TB.build (spec_gen ~max_nodes)

(* Random twig over integer labels [0, nlabels). *)
let twig_gen ?(nlabels = 5) ~max_nodes () : Twig.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let label = int_bound (nlabels - 1) in
  let rec build budget =
    if budget <= 1 then map Twig.leaf label
    else
      let* l = label in
      let* nkids = int_bound (min 3 (budget - 1)) in
      if nkids = 0 then return (Twig.leaf l)
      else begin
        let per_child = (budget - 1) / nkids in
        let* kids = flatten_l (List.init nkids (fun _ -> build (max 1 per_child))) in
        return (Twig.node l kids)
      end
  in
  build max_nodes

let rec spec_pp (s : TB.spec) = TB.to_element s |> element_pp

and element_pp (el : Tl_xml.Xml_dom.element) =
  match el.children with
  | [] -> el.tag
  | kids ->
    el.tag ^ "("
    ^ String.concat ","
        (List.filter_map
           (fun n -> match n with Tl_xml.Xml_dom.Element e -> Some (element_pp e) | _ -> None)
           kids)
    ^ ")"

let twig_pp t = Twig.encode t

(* The Fig. 11-style document: heterogeneous b-nodes under one root. *)
let fig11_spec =
  TB.node "a"
    (TB.replicate 3 (TB.node "b" (TB.replicate 4 (TB.leaf "c")))
    @ [ TB.node "b" (TB.leaf "c" :: TB.replicate 4 (TB.leaf "d")) ])

(* A perfectly regular document: every x has exactly one y and one z, every
   y has exactly two w — conditional independence holds exactly, so
   decomposition estimates must be exact on it. *)
let regular_spec =
  TB.node "r"
    (TB.replicate 5 (TB.node "x" [ TB.node "y" (TB.replicate 2 (TB.leaf "w")); TB.leaf "z" ]))

(* The paper's Fig. 1 computer-shop document. *)
let shop_spec =
  TB.node "computer"
    [
      TB.node "laptops"
        [
          TB.node "laptop" [ TB.leaf "brand"; TB.leaf "price" ];
          TB.node "laptop" [ TB.leaf "brand"; TB.leaf "price" ];
        ];
      TB.node "desktops" [ TB.node "desktop" [ TB.leaf "brand" ] ];
    ]

let tree_of spec = TB.build spec

(* Resolve a twig written with tag names against a tree. *)
let twig_of_string tree s =
  match
    Tl_twig.Twig_parse.parse_twig ~intern:(Tl_tree.Data_tree.label_of_string tree) s
  with
  | Ok t -> t
  | Error msg -> failwith ("twig_of_string: " ^ msg)

let qcheck_case ?(count = 100) ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
