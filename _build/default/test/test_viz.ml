(* Tests for the DOT exports: well-formed digraphs with the expected nodes
   and edges. *)

module Dot = Tl_viz.Dot
module Twig = Tl_twig.Twig
module Data_tree = Tl_tree.Data_tree

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let count_occurrences ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then scan (i + 1) (acc + 1)
    else scan (i + 1) acc
  in
  scan 0 0

let check_digraph out =
  Alcotest.(check bool) "opens digraph" true (contains ~needle:"digraph" out);
  Alcotest.(check bool) "closes" true (String.length out > 0 && out.[String.length out - 2] = '}')

let names = function 0 -> "a" | 1 -> "b" | 2 -> "c" | _ -> "?"

let test_twig_dot () =
  let out = Dot.twig ~names (Twig.node 0 [ Twig.leaf 1; Twig.node 1 [ Twig.leaf 2 ] ]) in
  check_digraph out;
  Alcotest.(check int) "four nodes" 4 (count_occurrences ~needle:"label=" out);
  Alcotest.(check int) "three edges" 3 (count_occurrences ~needle:" -> " out);
  Alcotest.(check bool) "names used" true (contains ~needle:"\"a\"" out)

let test_twig_dot_escaping () =
  let weird = function _ -> {|ta"g\x|} in
  let out = Dot.twig ~names:weird (Twig.leaf 0) in
  check_digraph out;
  Alcotest.(check bool) "quote escaped" true (contains ~needle:{|\"|} out)

let test_value_query_dot () =
  let q =
    Tl_values.Value_query.node 0 [ Tl_values.Value_query.leaf ~value:"cs" 1; Tl_values.Value_query.leaf 2 ]
  in
  let out = Dot.value_query ~names q in
  check_digraph out;
  Alcotest.(check bool) "value rendered" true (contains ~needle:"= cs" out)

let test_plan_dot () =
  let twig = Twig.node 0 [ Twig.leaf 1; Twig.leaf 2 ] in
  let plan = Tl_join.Plan.naive twig in
  let out = Dot.plan ~names plan in
  check_digraph out;
  Alcotest.(check bool) "steps annotated" true (contains ~needle:"#0" out);
  Alcotest.(check bool) "seed bold" true (contains ~needle:"style=bold" out)

let test_synopsis_dot () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = Tl_sketch.Sketch_build.build ~refine_rounds:0 ~budget_bytes:(1024 * 1024) tree in
  let out = Dot.synopsis ~names:(Data_tree.label_name tree) synopsis in
  check_digraph out;
  Alcotest.(check bool) "sizes shown" true (contains ~needle:"(4)" out);
  Alcotest.(check bool) "weights shown" true (contains ~needle:"3.25" out)

let test_data_tree_dot () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let out = Dot.data_tree tree in
  check_digraph out;
  Alcotest.(check int) "all nodes" (Data_tree.size tree) (count_occurrences ~needle:"label=" out)

let test_data_tree_dot_elision () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let out = Dot.data_tree ~max_nodes:3 tree in
  check_digraph out;
  Alcotest.(check bool) "elision marked" true (contains ~needle:"..." out)

let () =
  Alcotest.run "viz"
    [
      ( "dot",
        [
          Alcotest.test_case "twig" `Quick test_twig_dot;
          Alcotest.test_case "escaping" `Quick test_twig_dot_escaping;
          Alcotest.test_case "value query" `Quick test_value_query_dot;
          Alcotest.test_case "plan" `Quick test_plan_dot;
          Alcotest.test_case "synopsis" `Quick test_synopsis_dot;
          Alcotest.test_case "data tree" `Quick test_data_tree_dot;
          Alcotest.test_case "elision" `Quick test_data_tree_dot_elision;
        ] );
    ]
