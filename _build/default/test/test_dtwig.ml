(* Tests for descendant-edge twigs. *)

module Dtwig = Tl_twig.Dtwig
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

let parse tree q =
  match Dtwig.parse ~intern:(Data_tree.label_of_string tree) q with
  | Ok t -> t
  | Error m -> Alcotest.failf "parse %S: %s" q m

let count tree q = Dtwig.selectivity tree (parse tree q)

(* r(a(b(c)), b, c) *)
let sample () =
  TB.build (TB.node "r" [ TB.node "a" [ TB.node "b" [ TB.leaf "c" ] ]; TB.leaf "b"; TB.leaf "c" ])

(* --- structure --------------------------------------------------------------- *)

let test_parse_and_pp () =
  let tree = sample () in
  let names = Data_tree.label_name tree in
  let q = parse tree "r(//c,a)" in
  Alcotest.(check int) "size" 3 (Dtwig.size q);
  (* pp/parse roundtrip. *)
  let q2 = parse tree (Dtwig.pp ~names q) in
  Alcotest.(check bool) "roundtrip" true (Dtwig.equal q q2)

let test_canonical_edges_distinguish () =
  let tree = sample () in
  let child = parse tree "r(b)" in
  let desc = parse tree "r(//b)" in
  Alcotest.(check bool) "axes distinguish queries" false (Dtwig.equal child desc);
  Alcotest.(check bool) "encodings differ" false (String.equal (Dtwig.encode child) (Dtwig.encode desc))

let test_of_to_twig () =
  let tw = Twig.node 0 [ Twig.leaf 1; Twig.node 2 [ Twig.leaf 3 ] ] in
  let dt = Dtwig.of_twig tw in
  (match Dtwig.to_twig dt with
  | Some back -> Alcotest.(check bool) "all-child roundtrip" true (Twig.equal tw back)
  | None -> Alcotest.fail "expected conversion");
  let with_desc = Dtwig.node 0 [ (Dtwig.Descendant, Dtwig.leaf 1) ] in
  Alcotest.(check bool) "descendant edge refuses" true (Dtwig.to_twig with_desc = None)

let test_parse_errors () =
  let tree = sample () in
  let expect q =
    match Dtwig.parse ~intern:(Data_tree.label_of_string tree) q with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" q
  in
  expect "";
  expect "r(";
  expect "r(//)";
  expect "r(zzz)";
  expect "r)x"

(* --- counting ------------------------------------------------------------------ *)

let test_descendant_counts () =
  let tree = sample () in
  (* b occurs at r/a/b and r/b; both are descendants of r. *)
  Alcotest.(check int) "child b" 1 (count tree "r(b)");
  Alcotest.(check int) "descendant b" 2 (count tree "r(//b)");
  (* c occurs at r/a/b/c and r/c. *)
  Alcotest.(check int) "descendant c" 2 (count tree "r(//c)");
  Alcotest.(check int) "child c" 1 (count tree "r(c)");
  Alcotest.(check int) "nested descendant" 1 (count tree "a(//c)");
  Alcotest.(check int) "descendant with child below" 1 (count tree "r(//b(c))");
  Alcotest.(check int) "absent" 0 (count tree "b(//a)")

let test_mixed_axes () =
  let tree = sample () in
  (* r with a child b AND a descendant c: 1 (child b) x 2 (descendant c). *)
  Alcotest.(check int) "mixed" 2 (count tree "r(b,//c)")

let test_same_label_mixed_group_injective () =
  (* v has child x and grandchild x; query v(x, //x):
     child-x must take the direct child; //x can take either, but
     injectivity leaves it the grandchild: 1 match... plus //x = child x
     is excluded by injectivity. *)
  let tree = TB.build (TB.node "v" [ TB.node "x" [ TB.leaf "x" ] ]) in
  Alcotest.(check int) "injective across axes" 1 (count tree "v(x,//x)");
  (* Two descendant x's: ordered pairs of distinct descendants = 2. *)
  Alcotest.(check int) "two descendant twins" 2 (count tree "v(//x,//x)")

let test_deep_descendants () =
  let tree = TB.build (TB.path [ "a"; "m"; "m"; "m"; "z" ]) in
  Alcotest.(check int) "all depths" 3 (count tree "a(//m)");
  Alcotest.(check int) "z below any m" 3 (count tree "a(//m(//z))")

let test_rooted () =
  let tree = sample () in
  let q = parse tree "r(//b)" in
  let total = ref 0 in
  Data_tree.iter_nodes tree (fun v -> total := !total + Dtwig.selectivity_rooted tree q v);
  Alcotest.(check int) "rooted sums" (Dtwig.selectivity tree q) !total

(* All-child dtwigs must agree exactly with the parent-child counter. *)
let prop_child_only_agrees_with_match_count =
  Helpers.qcheck_case ~name:"child-only dtwigs = Match_count" ~count:50
    (Helpers.tree_gen ~max_nodes:18)
    (fun tree ->
      let ctx = Match_count.create_ctx tree in
      let rng = Tl_util.Xorshift.create 73 in
      let ok = ref true in
      for _ = 1 to 5 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:4 with
        | None -> ()
        | Some twig ->
          if Dtwig.selectivity tree (Dtwig.of_twig twig) <> Match_count.selectivity ctx twig then
            ok := false
      done;
      !ok)

(* Descendant edges dominate child edges: relaxing any axis can only add
   matches. *)
let prop_descendant_dominates_child =
  Helpers.qcheck_case ~name:"descendant axis only adds matches" ~count:50
    (Helpers.tree_gen ~max_nodes:18)
    (fun tree ->
      let rng = Tl_util.Xorshift.create 79 in
      let ok = ref true in
      for _ = 1 to 5 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:4 with
        | None -> ()
        | Some twig ->
          let strict = Dtwig.selectivity tree (Dtwig.of_twig twig) in
          (* Relax every edge to Descendant. *)
          let rec relax (t : Twig.t) =
            Dtwig.node t.Twig.label
              (List.map (fun c -> (Dtwig.Descendant, relax c)) t.Twig.children)
          in
          if Dtwig.selectivity tree (relax twig) < strict then ok := false
      done;
      !ok)

(* Region encoding sanity backing the descendant folds. *)
let prop_region_encoding =
  Helpers.qcheck_case ~name:"subtree_end matches actual descendant sets" ~count:60
    (Helpers.tree_gen ~max_nodes:30)
    (fun tree ->
      let ok = ref true in
      Data_tree.iter_nodes tree (fun v ->
          (* All strict descendants by brute walk. *)
          let rec walk acc w =
            Array.fold_left (fun acc c -> walk (c :: acc) c) acc (Data_tree.children tree w)
          in
          let brute = List.sort compare (walk [] v) in
          let via_region =
            List.filter
              (fun w -> Data_tree.is_descendant tree w ~ancestor:v)
              (List.init (Data_tree.size tree) Fun.id)
          in
          if brute <> via_region then ok := false);
      !ok)

let () =
  Alcotest.run "dtwig"
    [
      ( "structure",
        [
          Alcotest.test_case "parse and pp" `Quick test_parse_and_pp;
          Alcotest.test_case "axes distinguish" `Quick test_canonical_edges_distinguish;
          Alcotest.test_case "twig conversions" `Quick test_of_to_twig;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "counting",
        [
          Alcotest.test_case "descendant counts" `Quick test_descendant_counts;
          Alcotest.test_case "mixed axes" `Quick test_mixed_axes;
          Alcotest.test_case "mixed-group injectivity" `Quick test_same_label_mixed_group_injective;
          Alcotest.test_case "deep descendants" `Quick test_deep_descendants;
          Alcotest.test_case "rooted sums" `Quick test_rooted;
          prop_child_only_agrees_with_match_count;
          prop_descendant_dominates_child;
          prop_region_encoding;
        ] );
    ]
