(* Tests for the synthetic dataset generators: sizing, determinism, and the
   structural properties each stand-in is supposed to reproduce. *)

module Dataset = Tl_datasets.Dataset
module Schema = Tl_datasets.Schema
module Data_tree = Tl_tree.Data_tree
module Tree_stats = Tl_tree.Tree_stats
module Xorshift = Tl_util.Xorshift

let target = 4_000

let tree_of d = Dataset.tree d ~target ~seed:42

(* --- Schema combinators ------------------------------------------------------ *)

let test_sample_count_distributions () =
  let rng = Xorshift.create 1 in
  for _ = 1 to 200 do
    Alcotest.(check int) "const" 3 (Schema.sample_count rng (Const 3));
    let u = Schema.sample_count rng (Uniform (2, 5)) in
    Alcotest.(check bool) "uniform in range" true (u >= 2 && u <= 5);
    let g = Schema.sample_count rng (Geometric (0.5, 4)) in
    Alcotest.(check bool) "geometric capped" true (g >= 0 && g <= 4);
    let z = Schema.sample_count rng (Zipf (10, 1.2)) in
    Alcotest.(check bool) "zipf in range" true (z >= 1 && z <= 10);
    let s = Schema.sample_count rng (Shifted (2, Const 1)) in
    Alcotest.(check int) "shifted" 3 s
  done

let test_elem_and_groups () =
  let rng = Xorshift.create 2 in
  let gen =
    Schema.elem "root"
      [ Schema.one (Schema.leaf "a"); Schema.repeat (Schema.Const 2) (Schema.leaf "b") ]
  in
  let el = gen rng in
  Alcotest.(check string) "tag" "root" el.Tl_xml.Xml_dom.tag;
  Alcotest.(check int) "children" 3 (List.length el.Tl_xml.Xml_dom.children)

let test_opt_probabilities () =
  let rng = Xorshift.create 3 in
  let gen = Schema.elem "r" [ Schema.opt 0.0 (Schema.leaf "never"); Schema.opt 1.0 (Schema.leaf "always") ] in
  for _ = 1 to 20 do
    let el = gen rng in
    Alcotest.(check int) "only the certain child" 1 (List.length el.Tl_xml.Xml_dom.children)
  done

let test_cond_bundles () =
  let rng = Xorshift.create 4 in
  let gen =
    Schema.elem "r"
      [
        Schema.cond 1.0
          ~then_:(Schema.group [ Schema.one (Schema.leaf "x"); Schema.one (Schema.leaf "y") ])
          ~else_:Schema.nothing;
      ]
  in
  let el = gen rng in
  Alcotest.(check int) "bundle generated atomically" 2 (List.length el.Tl_xml.Xml_dom.children)

let test_element_count () =
  let rng = Xorshift.create 5 in
  let gen = Schema.elem "r" [ Schema.repeat (Schema.Const 3) (Schema.elem "c" [ Schema.one (Schema.leaf "d") ]) ] in
  Alcotest.(check int) "count" 7 (Schema.element_count (gen rng))

let test_generate_document_target () =
  let record = Schema.elem "rec" [ Schema.repeat (Schema.Const 4) (Schema.leaf "f") ] in
  let doc = Schema.generate_document ~root:"top" ~record ~target:500 ~seed:6 () in
  let count = Schema.element_count doc in
  Alcotest.(check bool) "close to target" true (count >= 500 && count < 520);
  (* Always at least one record even with a tiny target. *)
  let tiny = Schema.generate_document ~root:"top" ~record ~target:1 ~seed:6 () in
  Alcotest.(check bool) "at least one record" true (Schema.element_count tiny > 1)

(* --- dataset registry ---------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check int) "four datasets" 4 (List.length Dataset.all);
  Alcotest.(check (option string)) "find nasa" (Some "nasa")
    (Option.map (fun d -> d.Dataset.name) (Dataset.find "NASA"));
  Alcotest.(check bool) "unknown dataset" true (Dataset.find "mnist" = None);
  List.iter
    (fun d ->
      Alcotest.(check bool) (d.Dataset.name ^ " paper elements recorded") true
        (d.Dataset.paper_elements > 100_000))
    Dataset.all

let test_sizes_near_target () =
  List.iter
    (fun d ->
      let tree = tree_of d in
      let n = Data_tree.size tree in
      Alcotest.(check bool)
        (Printf.sprintf "%s size %d within tolerance of %d" d.Dataset.name n target)
        true
        (n >= target * 9 / 10 && n <= target * 13 / 10))
    Dataset.all

let test_deterministic_by_seed () =
  List.iter
    (fun d ->
      let a = d.Dataset.document ~target:1_000 ~seed:5 in
      let b = d.Dataset.document ~target:1_000 ~seed:5 in
      let c = d.Dataset.document ~target:1_000 ~seed:6 in
      Alcotest.(check bool) (d.Dataset.name ^ " same seed same doc") true (Tl_xml.Xml_dom.equal_element a b);
      Alcotest.(check bool) (d.Dataset.name ^ " different seed differs") false
        (Tl_xml.Xml_dom.equal_element a c))
    Dataset.all

let test_documents_serialize_and_reparse () =
  List.iter
    (fun d ->
      let el = d.Dataset.document ~target:800 ~seed:7 in
      let doc : Tl_xml.Xml_dom.t = { decl = None; root = el } in
      let reparsed = Tl_xml.Xml_dom.parse_string (Tl_xml.Xml_writer.to_string doc) in
      Alcotest.(check bool) (d.Dataset.name ^ " xml roundtrip") true
        (Tl_xml.Xml_dom.equal_element el reparsed.root))
    Dataset.all

let test_label_alphabets () =
  (* The stand-ins should roughly reproduce Table 2's level-1 row:
     nasa 61, imdb 88, psd 64, xmark 27 labels. *)
  let expectations = [ ("nasa", 35, 70); ("imdb", 45, 95); ("psd", 35, 70); ("xmark", 18, 45) ] in
  List.iter
    (fun (name, lo, hi) ->
      let d = Option.get (Dataset.find name) in
      let labels = Data_tree.label_count (tree_of d) in
      Alcotest.(check bool)
        (Printf.sprintf "%s alphabet %d in [%d,%d]" name labels lo hi)
        true
        (labels >= lo && labels <= hi))
    expectations

let test_xmark_fanout_skew () =
  (* The property that breaks average-based synopses: bidder fan-outs are
     heavily skewed. *)
  let tree = tree_of Dataset.xmark in
  let auction = Option.get (Data_tree.label_of_string tree "open_auction") in
  let bidder = Option.get (Data_tree.label_of_string tree "bidder") in
  let counts =
    Array.map
      (fun v -> float_of_int (Data_tree.count_children_with_label tree v bidder))
      (Data_tree.nodes_with_label tree auction)
  in
  let median = Tl_util.Stats.median counts in
  let mean = Tl_util.Stats.mean counts in
  let max = Tl_util.Stats.maximum counts in
  Alcotest.(check bool) "typical auction has few bidders" true (median <= 3.0);
  Alcotest.(check bool) "heavy tail pulls the mean far above the median" true (mean > 2.0 *. median);
  Alcotest.(check bool) "some auctions have many" true (max >= 10.0)

let test_imdb_correlation () =
  (* Business and awards must co-occur far more often than independence
     predicts — the property that degrades TreeLattice on IMDB. *)
  let tree = tree_of Dataset.imdb in
  let movie = Option.get (Data_tree.label_of_string tree "movie") in
  let business = Option.get (Data_tree.label_of_string tree "business") in
  let awards = Option.get (Data_tree.label_of_string tree "awards") in
  let movies = Data_tree.nodes_with_label tree movie in
  let n = float_of_int (Array.length movies) in
  let count pred = float_of_int (Array.length (Array.of_list (List.filter pred (Array.to_list movies)))) in
  let has l v = Data_tree.count_children_with_label tree v l > 0 in
  let p_business = count (has business) /. n in
  let p_awards = count (has awards) /. n in
  let p_both = count (fun v -> has business v && has awards v) /. n in
  Alcotest.(check bool) "positive correlation" true (p_both > 1.5 *. p_business *. p_awards)

let test_nasa_depth () =
  let stats = Tree_stats.compute (tree_of Dataset.nasa) in
  Alcotest.(check bool) "nasa is deep" true (stats.depth >= 6)

let test_psd_shallow_and_wide () =
  let stats = Tree_stats.compute (tree_of Dataset.psd) in
  Alcotest.(check bool) "psd is shallow" true (stats.depth <= 7);
  Alcotest.(check bool) "psd records are wide" true (stats.mean_fanout > 1.5)

let () =
  Alcotest.run "datasets"
    [
      ( "schema",
        [
          Alcotest.test_case "count distributions" `Quick test_sample_count_distributions;
          Alcotest.test_case "elem groups" `Quick test_elem_and_groups;
          Alcotest.test_case "opt probabilities" `Quick test_opt_probabilities;
          Alcotest.test_case "cond bundles" `Quick test_cond_bundles;
          Alcotest.test_case "element count" `Quick test_element_count;
          Alcotest.test_case "generate to target" `Quick test_generate_document_target;
        ] );
      ( "datasets",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "sizes near target" `Quick test_sizes_near_target;
          Alcotest.test_case "deterministic" `Quick test_deterministic_by_seed;
          Alcotest.test_case "xml roundtrip" `Quick test_documents_serialize_and_reparse;
          Alcotest.test_case "label alphabets" `Quick test_label_alphabets;
          Alcotest.test_case "xmark skew" `Quick test_xmark_fanout_skew;
          Alcotest.test_case "imdb correlation" `Quick test_imdb_correlation;
          Alcotest.test_case "nasa depth" `Quick test_nasa_depth;
          Alcotest.test_case "psd shape" `Quick test_psd_shallow_and_wide;
        ] );
    ]
