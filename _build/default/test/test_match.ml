(* Tests for the exact twig match counter (Definition 1 semantics),
   including the injective sibling-group permanents and the brute-force
   enumeration oracle. *)

module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Twig_enum = Tl_twig.Twig_enum
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

let n = Twig.node
let lf = Twig.leaf

let count_of tree query = Match_count.count tree (Helpers.twig_of_string tree query)

(* --- hand-computed counts -------------------------------------------------- *)

let test_fig1_shop () =
  (* The paper's Fig. 1: //laptop[brand][price] has two matches. *)
  let tree = Helpers.tree_of Helpers.shop_spec in
  Alcotest.(check int) "laptop(brand,price)" 2 (count_of tree "laptop(brand,price)");
  Alcotest.(check int) "single label" 2 (count_of tree "laptop");
  Alcotest.(check int) "brand anywhere" 3 (count_of tree "brand");
  Alcotest.(check int) "full path" 2 (count_of tree "computer(laptops(laptop(brand)))");
  Alcotest.(check int) "desktop has no price" 0 (count_of tree "desktop(price)")

let test_repeated_siblings_permanent () =
  (* b with 4 c-children: query b(c,c) has 4*3 = 12 injective matches. *)
  let tree = TB.build (TB.node "b" (TB.replicate 4 (TB.leaf "c"))) in
  Alcotest.(check int) "b(c)" 4 (count_of tree "b(c)");
  Alcotest.(check int) "b(c,c)" 12 (count_of tree "b(c,c)");
  Alcotest.(check int) "b(c,c,c)" 24 (count_of tree "b(c,c,c)");
  Alcotest.(check int) "b(c,c,c,c)" 24 (count_of tree "b(c,c,c,c)");
  Alcotest.(check int) "five do not fit" 0 (count_of tree "b(c,c,c,c,c)")

let test_mixed_sibling_groups () =
  (* b(c,c,d): choose 2 of 3 c's ordered (6) x 1 d = 6. *)
  let tree = TB.build (TB.node "b" (TB.leaf "d" :: TB.replicate 3 (TB.leaf "c"))) in
  Alcotest.(check int) "b(c,c,d)" 6 (count_of tree "b(c,c,d)")

let test_permanent_with_subtree_weights () =
  (* Two c-children with different subtree counts: c1 has 2 e's, c2 has 1 e.
     Query b(c(e),c(e)): injective assignments = 2*1 + 1*2 = 4. *)
  let tree =
    TB.build
      (TB.node "b"
         [ TB.node "c" [ TB.leaf "e"; TB.leaf "e" ]; TB.node "c" [ TB.leaf "e" ] ])
  in
  Alcotest.(check int) "weighted permanent" 4 (count_of tree "b(c(e),c(e))")

let test_deep_chain () =
  let tree = TB.build (TB.path [ "a"; "b"; "c"; "d" ]) in
  Alcotest.(check int) "full path" 1 (count_of tree "a(b(c(d)))");
  Alcotest.(check int) "suffix" 1 (count_of tree "b(c)");
  Alcotest.(check int) "absent shape" 0 (count_of tree "a(c)")

let test_fig11_document () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  Alcotest.(check int) "sigma(b)" 4 (count_of tree "b");
  Alcotest.(check int) "sigma(c)" 13 (count_of tree "c");
  Alcotest.(check int) "sigma(b(c,d))" 4 (count_of tree "b(c,d)");
  Alcotest.(check int) "sigma(a(b(c,d)))" 4 (count_of tree "a(b(c,d))")

let test_absent_label_zero () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = Twig.leaf 999 in
  Alcotest.(check int) "unknown label" 0 (Match_count.count tree twig)

let test_rooted_counts () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let ctx = Match_count.create_ctx tree in
  let twig = Helpers.twig_of_string tree "laptop(brand)" in
  let total = ref 0 in
  Data_tree.iter_nodes tree (fun v -> total := !total + Match_count.selectivity_rooted ctx twig v);
  Alcotest.(check int) "rooted counts sum to selectivity" (Match_count.selectivity ctx twig) !total

let test_ctx_reuse () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let ctx = Match_count.create_ctx tree in
  let q1 = Helpers.twig_of_string tree "b(c,d)" in
  let q2 = Helpers.twig_of_string tree "a(b(c),b(d))" in
  let first = Match_count.selectivity ctx q1 in
  ignore (Match_count.selectivity ctx q2);
  ignore (Match_count.selectivity ctx (Twig.leaf 0));
  Alcotest.(check int) "same answer after reuse" first (Match_count.selectivity ctx q1)

let test_cross_branch_query () =
  (* a(b(c),b(d)): b's must be distinct. *)
  let tree =
    TB.build
      (TB.node "a"
         [ TB.node "b" [ TB.leaf "c"; TB.leaf "d" ]; TB.node "b" [ TB.leaf "c" ] ])
  in
  (* Pairs: (b1,b2): b1 has d? query children are b(c) and b(d):
     b(c) matches b1 (1) and b2 (1); b(d) matches only b1 (1).
     Injective: b(c)->b2, b(d)->b1 = 1; b(c)->b1, b(d)->b1 invalid.
     So 1 assignment... plus b(c)->b1 with b(d)->b2 = 0. Total 1. *)
  Alcotest.(check int) "injective across branches" 1 (count_of tree "a(b(c),b(d))")

(* --- enumeration oracle ------------------------------------------------------- *)

let test_enum_occurrences_small () =
  let tree = TB.build (TB.node "a" [ TB.leaf "b"; TB.leaf "b" ]) in
  let occ = Twig_enum.occurrences tree ~max_size:3 in
  let render = List.map (fun (tw, c) -> (Twig.encode tw, c)) occ in
  (* Subsets: a, b x2, a(b) x2, a(b,b) x1. *)
  let a = Data_tree.label tree 0 and b = Data_tree.label tree 1 in
  let expect =
    List.sort compare
      [
        (Twig.encode (lf a), 1);
        (Twig.encode (lf b), 2);
        (Twig.encode (n a [ lf b ]), 2);
        (Twig.encode (n a [ lf b; lf b ]), 1);
      ]
  in
  Alcotest.(check (list (pair string int))) "subset counts" expect (List.sort compare render)

let test_enum_selectivities_match_dp () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let ctx = Match_count.create_ctx tree in
  List.iter
    (fun (tw, enum_count) ->
      Alcotest.(check int)
        (Printf.sprintf "pattern %s" (Twig.encode tw))
        enum_count (Match_count.selectivity ctx tw))
    (Twig_enum.selectivities tree ~max_size:3)

let test_random_subtree_is_occurring () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let ctx = Match_count.create_ctx tree in
  let rng = Tl_util.Xorshift.create 5 in
  for _ = 1 to 50 do
    match Twig_enum.random_subtree rng tree ~size:4 with
    | Some tw ->
      Alcotest.(check int) "sampled size" 4 (Twig.size tw);
      Alcotest.(check bool) "occurs" true (Match_count.selectivity ctx tw > 0)
    | None -> Alcotest.fail "sampling failed on a tree with size-4 subtrees"
  done

let test_random_subtree_too_big () =
  let tree = TB.build (TB.leaf "only") in
  let rng = Tl_util.Xorshift.create 6 in
  Alcotest.(check (option int)) "oversized request" None
    (Option.map Twig.size (Twig_enum.random_subtree rng tree ~size:5))

(* --- the big property: DP counter == enumeration oracle ------------------------- *)

let prop_dp_equals_oracle =
  Helpers.qcheck_case ~name:"DP count equals brute-force oracle on random trees" ~count:60
    (Helpers.tree_gen ~max_nodes:14)
    (fun tree ->
      let ctx = Match_count.create_ctx tree in
      List.for_all
        (fun (tw, expected) -> Match_count.selectivity ctx tw = expected)
        (Twig_enum.selectivities tree ~max_size:4))

let prop_downward_closure =
  Helpers.qcheck_case ~name:"occurring twigs have occurring sub-twigs" ~count:60
    (Helpers.tree_gen ~max_nodes:20)
    (fun tree ->
      let ctx = Match_count.create_ctx tree in
      let rng = Tl_util.Xorshift.create 7 in
      match Twig_enum.random_subtree rng tree ~size:4 with
      | None -> true
      | Some tw ->
        (* The sampled twig occurs by construction, so every one-node
           removal must occur too (downward closure of occurrence — the
           miner's pruning rule). *)
        Match_count.selectivity ctx tw > 0
        &&
        let ix = Twig.index tw in
        List.for_all
          (fun i -> Match_count.selectivity ctx (Twig.remove ix i) > 0)
          (Twig.degree_one ix))

let () =
  Alcotest.run "match_count"
    [
      ( "hand-computed",
        [
          Alcotest.test_case "fig1 shop" `Quick test_fig1_shop;
          Alcotest.test_case "repeated siblings" `Quick test_repeated_siblings_permanent;
          Alcotest.test_case "mixed sibling groups" `Quick test_mixed_sibling_groups;
          Alcotest.test_case "weighted permanent" `Quick test_permanent_with_subtree_weights;
          Alcotest.test_case "deep chain" `Quick test_deep_chain;
          Alcotest.test_case "fig11 document" `Quick test_fig11_document;
          Alcotest.test_case "absent label" `Quick test_absent_label_zero;
          Alcotest.test_case "rooted counts" `Quick test_rooted_counts;
          Alcotest.test_case "ctx reuse" `Quick test_ctx_reuse;
          Alcotest.test_case "cross-branch injectivity" `Quick test_cross_branch_query;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "subset counts" `Quick test_enum_occurrences_small;
          Alcotest.test_case "selectivities match dp" `Quick test_enum_selectivities_match_dp;
          Alcotest.test_case "random subtree occurs" `Quick test_random_subtree_is_occurring;
          Alcotest.test_case "random subtree too big" `Quick test_random_subtree_too_big;
          prop_dp_equals_oracle;
          prop_downward_closure;
        ] );
    ]
