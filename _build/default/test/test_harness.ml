(* Integration tests: the experiment harness end to end on a reduced-scale
   suite.  These are the slowest tests (each builds lattices, a synopsis,
   and workloads), so the suite is prepared once and shared. *)

module Experiments = Tl_harness.Experiments
module Report = Tl_harness.Report
module Dataset = Tl_datasets.Dataset

let tiny_config =
  {
    Experiments.quick_config with
    Experiments.target = 1_200;
    queries_per_size = 6;
    sizes = [ 4; 5 ];
    fig10b_sizes = [ 4; 5 ];
  }

let suite = lazy (Experiments.make_suite tiny_config)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let check_report ?(extra = []) id =
  let suite = Lazy.force suite in
  match Experiments.run suite id with
  | None -> Alcotest.failf "experiment %s not registered" id
  | Some report ->
    Alcotest.(check bool) (id ^ " names itself") true (contains ~needle:id report);
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S" id needle)
          true (contains ~needle report))
      extra

(* --- suite preparation ------------------------------------------------------ *)

let test_prepare_envs () =
  let suite = Lazy.force suite in
  let envs = Experiments.envs suite in
  Alcotest.(check int) "four datasets" 4 (List.length envs);
  List.iter
    (fun env ->
      let open Experiments in
      Alcotest.(check bool) "tree non-empty" true (Tl_tree.Data_tree.size env.tree > 500);
      Alcotest.(check bool) "summary has patterns" true (Tl_lattice.Summary.entries env.summary > 10);
      Alcotest.(check bool) "lattice timed" true (env.lattice_ms >= 0.0);
      Alcotest.(check bool) "sketch timed" true (env.sketch_ms >= 0.0);
      Alcotest.(check bool) "sketch valid" true (Tl_sketch.Synopsis.validate env.sketch = Ok ());
      Alcotest.(check int) "one workload per size" (List.length tiny_config.Experiments.sizes)
        (List.length env.workloads))
    envs

let test_single_dataset_suite () =
  let small = Experiments.make_suite ~datasets:[ Dataset.xmark ] tiny_config in
  Alcotest.(check int) "one env" 1 (List.length (Experiments.envs small));
  match Experiments.run small "fig7" with
  | Some report -> Alcotest.(check bool) "xmark only" true (contains ~needle:"xmark" report)
  | None -> Alcotest.fail "fig7 missing"

let test_config_accessor () =
  let suite = Lazy.force suite in
  Alcotest.(check int) "config preserved" tiny_config.Experiments.target
    (Experiments.suite_config suite).Experiments.target

(* --- experiment registry ------------------------------------------------------- *)

let test_registry_complete () =
  let ids = List.map (fun (id, _, _) -> id) Experiments.all_experiments in
  Alcotest.(check (list string)) "all paper artifacts covered"
    [
      "table1"; "table2"; "table3"; "fig7"; "fig8"; "fig9"; "fig10a"; "fig10b"; "fig10c"; "fig10d";
      "neg"; "lemma4"; "ablation-k"; "ablation-pairs"; "incr"; "pathcmp"; "adaptive"; "joinopt";
    ]
    ids

let test_unknown_experiment () =
  let suite = Lazy.force suite in
  Alcotest.(check bool) "unknown id" true (Experiments.run suite "fig99" = None)

(* --- individual experiments ------------------------------------------------------ *)

let test_table1 () = check_report "table1" ~extra:[ "nasa"; "imdb"; "xmark"; "psd"; "paper elems" ]

let test_table2 () = check_report "table2" ~extra:[ "level" ]

let test_table3 () = check_report "table3" ~extra:[ "TreeLattice build"; "TreeSketches build" ]

let test_fig7 () = check_report "fig7" ~extra:[ "recursive"; "rec+voting"; "fixed-size"; "treesketches" ]

let test_fig8 () = check_report "fig8" ~extra:[ "error bound"; "<= 10%" ]

let test_fig9 () = check_report "fig9" ~extra:[ "ms" ]

let test_fig10a () = check_report "fig10a" ~extra:[ "savings" ]

let test_fig10b () = check_report "fig10b" ~extra:[ "voting+OPT" ]

let test_fig10c () = check_report "fig10c" ~extra:[ "delta"; "patterns kept" ]

let test_fig10d () = check_report "fig10d" ~extra:[ "size" ]

let test_negative () = check_report "neg" ~extra:[ "queries" ]

let test_lemma4 () =
  let suite = Lazy.force suite in
  match Experiments.run suite "lemma4" with
  | None -> Alcotest.fail "lemma4 missing"
  | Some report ->
    (* The equivalence is exact: every reported gap must be zero. *)
    Alcotest.(check bool) "all gaps zero" true (contains ~needle:"0.00e+00" report);
    Alcotest.(check bool) "no nonzero gap" false (contains ~needle:"e-0" report)

let test_ablation_k () = check_report "ablation-k" ~extra:[ "summary size"; "build time" ]

let test_ablation_pairs () = check_report "ablation-pairs" ~extra:[ "mean spread"; "voting err" ]

let test_incremental () =
  let suite = Lazy.force suite in
  match Experiments.run suite "incr" with
  | None -> Alcotest.fail "incr missing"
  | Some report ->
    (* Every dataset row must report zero count mismatches: the merged
       summary's counts equal the sum of per-half exact counts. *)
    let rows =
      List.filter
        (fun line ->
          List.exists
            (fun d -> String.length line > 0 && contains ~needle:d.Dataset.name line)
            Dataset.all)
        (String.split_on_char '\n' report)
    in
    Alcotest.(check int) "four dataset rows" 4 (List.length rows);
    List.iter
      (fun row ->
        let fields =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' row)
        in
        (* name, merged patterns, mismatches, build, "s", add, "s" *)
        match fields with
        | _name :: _patterns :: mismatches :: _ ->
          Alcotest.(check string) ("no mismatches in: " ^ row) "0" mismatches
        | _ -> Alcotest.failf "unparseable row %S" row)
      rows

let test_pathcmp () = check_report "pathcmp" ~extra:[ "markov path err"; "lattice twig err" ]

let test_adaptive () = check_report "adaptive" ~extra:[ "err (1st half)"; "patterns learned" ]

let test_joinopt () = check_report "joinopt" ~extra:[ "naive tuples"; "guided tuples" ]

let test_run_all_concatenates () =
  let suite = Lazy.force suite in
  let all = Experiments.run_all suite in
  List.iter
    (fun (id, _, _) ->
      Alcotest.(check bool) (id ^ " present in run_all") true (contains ~needle:("== " ^ id ^ ":") all))
    Experiments.all_experiments

(* --- report helpers ------------------------------------------------------------------ *)

let test_report_helpers () =
  Alcotest.(check string) "percent" "12.34%" (Report.percent 12.34);
  Alcotest.(check string) "ms" "3.21 ms" (Report.ms 3.21);
  Alcotest.(check string) "seconds" "1.50 s" (Report.seconds 1.5);
  Alcotest.(check string) "kb" "2.0 KB" (Report.kb 2048);
  Alcotest.(check bool) "section shape" true
    (contains ~needle:"== id: title ==" (Report.section "id" "title"));
  Alcotest.(check bool) "note indented" true (contains ~needle:"note:" (Report.note "hello"))

let () =
  Alcotest.run "harness"
    [
      ( "suite",
        [
          Alcotest.test_case "prepare" `Slow test_prepare_envs;
          Alcotest.test_case "single dataset" `Slow test_single_dataset_suite;
          Alcotest.test_case "config accessor" `Slow test_config_accessor;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "unknown id" `Slow test_unknown_experiment;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1" `Slow test_table1;
          Alcotest.test_case "table2" `Slow test_table2;
          Alcotest.test_case "table3" `Slow test_table3;
          Alcotest.test_case "fig7" `Slow test_fig7;
          Alcotest.test_case "fig8" `Slow test_fig8;
          Alcotest.test_case "fig9" `Slow test_fig9;
          Alcotest.test_case "fig10a" `Slow test_fig10a;
          Alcotest.test_case "fig10b" `Slow test_fig10b;
          Alcotest.test_case "fig10c" `Slow test_fig10c;
          Alcotest.test_case "fig10d" `Slow test_fig10d;
          Alcotest.test_case "negative" `Slow test_negative;
          Alcotest.test_case "lemma4" `Slow test_lemma4;
          Alcotest.test_case "ablation-k" `Slow test_ablation_k;
          Alcotest.test_case "ablation-pairs" `Slow test_ablation_pairs;
          Alcotest.test_case "incremental" `Slow test_incremental;
          Alcotest.test_case "pathcmp" `Slow test_pathcmp;
          Alcotest.test_case "adaptive" `Slow test_adaptive;
          Alcotest.test_case "joinopt" `Slow test_joinopt;
          Alcotest.test_case "run_all" `Slow test_run_all_concatenates;
        ] );
      ("report", [ Alcotest.test_case "helpers" `Quick test_report_helpers ]);
    ]
