(* Tests for twig evaluation plans and the structural-join executor. *)

module Plan = Tl_join.Plan
module Executor = Tl_join.Executor
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count
module Summary = Tl_lattice.Summary
module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder

(* --- plans -------------------------------------------------------------------- *)

let sample_twig tree q = Helpers.twig_of_string tree q

let test_naive_plan_valid () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let plan = Plan.naive (sample_twig tree "computer(laptops(laptop(brand,price)))") in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Plan.validate plan);
  Alcotest.(check int) "root first" 0 plan.Plan.order.(0)

let test_validate_rejections () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = sample_twig tree "laptop(brand,price)" in
  let reject order reason =
    match Plan.validate { Plan.twig; order } with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "expected rejection: %s" reason
  in
  reject [| 0; 1 |] "wrong length";
  reject [| 0; 1; 1 |] "duplicate";
  reject [| 0; 1; 9 |] "out of bounds";
  reject [| 1; 2; 0 |] "disconnected prefix (two leaves first)"

let test_greedy_plan_valid_and_seeded () =
  (* One laptop vs many brands: greedy should anchor on the rarer side. *)
  let tree =
    TB.build
      (TB.node "shop"
         (TB.node "laptop" [ TB.leaf "brand" ] :: TB.replicate 9 (TB.leaf "brand")))
  in
  let summary = Summary.build ~k:3 tree in
  let twig = sample_twig tree "laptop(brand)" in
  let plan = Plan.greedy summary twig in
  Alcotest.(check (result unit string)) "valid" (Ok ()) (Plan.validate plan);
  let ix = Twig.index twig in
  let seed_label = ix.Twig.node_labels.(plan.Plan.order.(0)) in
  Alcotest.(check string) "seeds on the rare label" "laptop" (Data_tree.label_name tree seed_label)

let test_prefix_twigs () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let plan = Plan.naive (sample_twig tree "laptop(brand,price)") in
  let prefixes = Plan.prefix_twigs plan in
  Alcotest.(check (list int)) "growing sizes" [ 1; 2; 3 ] (List.map Twig.size prefixes)

let test_estimated_cost_positive () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let summary = Summary.build ~k:3 tree in
  let plan = Plan.naive (sample_twig tree "laptop(brand,price)") in
  Alcotest.(check bool) "positive cost" true (Plan.estimated_cost summary plan > 0.0)

let test_pp () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let plan = Plan.naive (sample_twig tree "laptop(brand)") in
  Alcotest.(check string) "rendered" "laptop > brand"
    (Plan.pp ~names:(Data_tree.label_name tree) plan)

(* --- executor ------------------------------------------------------------------- *)

let test_executor_counts_fig1 () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = sample_twig tree "laptop(brand,price)" in
  let stats = Executor.run tree (Plan.naive twig) in
  Alcotest.(check int) "two matches" 2 stats.Executor.result_count;
  Alcotest.(check bool) "work accounted" true (stats.Executor.tuples_materialized >= 2);
  Alcotest.(check bool) "peak sane" true (stats.Executor.peak_relation >= 2)

let test_executor_every_order_agrees () =
  (* All valid plans must produce the same result count. *)
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let ctx = Match_count.create_ctx tree in
  let twig = sample_twig tree "a(b(c,d))" in
  let truth = Match_count.selectivity ctx twig in
  let orders = [ [| 0; 1; 2; 3 |]; [| 1; 0; 2; 3 |]; [| 2; 1; 3; 0 |]; [| 3; 1; 2; 0 |]; [| 1; 2; 3; 0 |] ] in
  List.iter
    (fun order ->
      let plan = { Plan.twig = Twig.canonicalize twig; order } in
      match Plan.validate plan with
      | Error m -> Alcotest.failf "order invalid (%s)" m
      | Ok () ->
        Alcotest.(check int)
          (Printf.sprintf "order [%s]" (String.concat ";" (List.map string_of_int (Array.to_list order))))
          truth
          (Executor.run tree plan).Executor.result_count)
    orders

let test_executor_upward_intersection () =
  (* Binding a parent from two bound children requires both to share it. *)
  let tree =
    TB.build
      (TB.node "r"
         [ TB.node "p" [ TB.leaf "x"; TB.leaf "y" ]; TB.node "p" [ TB.leaf "x" ]; TB.leaf "y" ])
  in
  let twig = sample_twig tree "p(x,y)" in
  let ix = Twig.index twig in
  (* Bind both leaves first, then the parent. *)
  let x_idx = if ix.Twig.node_labels.(1) = Option.get (Data_tree.label_of_string tree "x") then 1 else 2 in
  let y_idx = 3 - x_idx in
  let plan = { Plan.twig = Twig.canonicalize twig; order = [| x_idx; 0; y_idx |] } in
  (* order [x; p; y] is fine, but go child-child-parent: *)
  let plan2 = { plan with order = [| x_idx; y_idx; 0 |] } in
  (match Plan.validate plan2 with
  | Ok () -> Alcotest.fail "child-child prefix should be disconnected and rejected"
  | Error _ -> ());
  Alcotest.(check int) "count via child-parent-child" 1 (Executor.run tree plan).Executor.result_count

let test_executor_sibling_injectivity () =
  let tree = TB.build (TB.node "b" (TB.replicate 3 (TB.leaf "c"))) in
  let twig = sample_twig tree "b(c,c)" in
  let stats = Executor.run tree (Plan.naive twig) in
  Alcotest.(check int) "injective pairs" 6 stats.Executor.result_count

let test_run_matches () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = sample_twig tree "laptop(brand,price)" in
  let matches = Executor.run_matches tree (Plan.naive twig) in
  Alcotest.(check int) "both matches" 2 (List.length matches);
  List.iter
    (fun m -> Alcotest.(check bool) "validates" true (Tl_twig.Match_enum.is_match tree twig m))
    matches;
  Alcotest.(check int) "limited" 1 (List.length (Executor.run_matches ~limit:1 tree (Plan.naive twig)))

let test_cap_truncates () =
  (* b with 30 c-children: query b(c,c,c) materializes 30 + 30*29 + ... —
     a tiny cap must abort cleanly. *)
  let tree = TB.build (TB.node "b" (TB.replicate 30 (TB.leaf "c"))) in
  let twig = sample_twig tree "b(c,c,c)" in
  let stats = Executor.run ~cap:100 tree (Plan.naive twig) in
  Alcotest.(check bool) "truncated" true stats.Executor.truncated;
  Alcotest.(check int) "charged the cap" 100 stats.Executor.tuples_materialized;
  Alcotest.(check int) "no results" 0 stats.Executor.result_count;
  let full = Executor.run tree (Plan.naive twig) in
  Alcotest.(check bool) "default cap suffices" false full.Executor.truncated;
  Alcotest.(check int) "injective triples" (30 * 29 * 28) full.Executor.result_count;
  Alcotest.check_raises "bad cap" (Invalid_argument "Executor.run: cap must be positive") (fun () ->
      ignore (Executor.run ~cap:0 tree (Plan.naive twig)))

let test_invalid_plan_rejected () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let twig = Twig.canonicalize (sample_twig tree "laptop(brand,price)") in
  match Executor.run tree { Plan.twig; order = [| 1; 2; 0 |] } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid plan rejection"

(* --- optimization effect ------------------------------------------------------------ *)

let test_greedy_beats_naive_on_skewed_data () =
  (* Many open auctions, few with both a bidder and an annotation; anchoring
     on the rare side shrinks intermediates. *)
  let tree = Tl_datasets.Dataset.tree Tl_datasets.Dataset.xmark ~target:6_000 ~seed:11 in
  let summary = Summary.build ~k:4 tree in
  let ctx = Match_count.create_ctx tree in
  let queries =
    [ "open_auction(bidder(date,increase),seller,annotation)"; "person(name,watches(watch))" ]
  in
  List.iter
    (fun q ->
      let twig = sample_twig tree q in
      let naive_stats = Executor.run tree (Plan.naive twig) in
      let greedy_stats = Executor.run tree (Plan.greedy summary twig) in
      Alcotest.(check int) (q ^ ": same result") naive_stats.Executor.result_count
        greedy_stats.Executor.result_count;
      Alcotest.(check int) (q ^ ": exact") (Match_count.selectivity ctx twig)
        greedy_stats.Executor.result_count;
      Alcotest.(check bool)
        (Printf.sprintf "%s: greedy (%d) <= naive (%d) tuples" q
           greedy_stats.Executor.tuples_materialized naive_stats.Executor.tuples_materialized)
        true
        (greedy_stats.Executor.tuples_materialized <= naive_stats.Executor.tuples_materialized))
    queries

(* --- properties ------------------------------------------------------------------------ *)

let prop_executor_equals_dp =
  Helpers.qcheck_case ~name:"executor count = DP count for naive and greedy plans" ~count:40
    (Helpers.tree_gen ~max_nodes:18)
    (fun tree ->
      let ctx = Match_count.create_ctx tree in
      let summary = Summary.build ~k:3 tree in
      let rng = Tl_util.Xorshift.create 61 in
      let ok = ref true in
      for _ = 1 to 4 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:4 with
        | None -> ()
        | Some twig ->
          let truth = Match_count.selectivity ctx twig in
          if (Executor.run tree (Plan.naive twig)).Executor.result_count <> truth then ok := false;
          if (Executor.run tree (Plan.greedy summary twig)).Executor.result_count <> truth then
            ok := false
      done;
      !ok)

let prop_greedy_plans_validate =
  Helpers.qcheck_case ~name:"greedy plans always validate" ~count:40
    (Helpers.tree_gen ~max_nodes:18)
    (fun tree ->
      let summary = Summary.build ~k:3 tree in
      let rng = Tl_util.Xorshift.create 67 in
      let ok = ref true in
      for _ = 1 to 4 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:5 with
        | None -> ()
        | Some twig -> if Plan.validate (Plan.greedy summary twig) <> Ok () then ok := false
      done;
      !ok)

let () =
  Alcotest.run "join"
    [
      ( "plans",
        [
          Alcotest.test_case "naive valid" `Quick test_naive_plan_valid;
          Alcotest.test_case "validate rejections" `Quick test_validate_rejections;
          Alcotest.test_case "greedy valid and seeded" `Quick test_greedy_plan_valid_and_seeded;
          Alcotest.test_case "prefix twigs" `Quick test_prefix_twigs;
          Alcotest.test_case "estimated cost" `Quick test_estimated_cost_positive;
          Alcotest.test_case "pp" `Quick test_pp;
          prop_greedy_plans_validate;
        ] );
      ( "executor",
        [
          Alcotest.test_case "fig1 counts" `Quick test_executor_counts_fig1;
          Alcotest.test_case "order independence" `Quick test_executor_every_order_agrees;
          Alcotest.test_case "upward intersection" `Quick test_executor_upward_intersection;
          Alcotest.test_case "sibling injectivity" `Quick test_executor_sibling_injectivity;
          Alcotest.test_case "run_matches" `Quick test_run_matches;
          Alcotest.test_case "cap truncates" `Quick test_cap_truncates;
          Alcotest.test_case "invalid plan" `Quick test_invalid_plan_rejected;
          prop_executor_equals_dp;
        ] );
      ( "optimization",
        [ Alcotest.test_case "greedy beats naive" `Slow test_greedy_beats_naive_on_skewed_data ] );
    ]
