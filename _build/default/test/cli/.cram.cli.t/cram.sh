  $ treelattice() { ../../bin/treelattice_cli.exe "$@"; }
  $ treelattice generate xmark --target 1500 --seed 5 -o auction.xml | sed 's/([0-9]* elements)/(N elements)/'
  $ treelattice stats --xml auction.xml --sax | grep -c "nodes="
  $ treelattice summarize --xml auction.xml -k 3 -o auction.summary > /dev/null
  $ test -f auction.summary && echo present
  $ treelattice prune --summary auction.summary --delta 0.0 -o pruned.summary | grep -cE "[0-9]+ -> [0-9]+ patterns"
  $ treelattice estimate --xml auction.xml -k 3 "open_auction(bidder)" --exact | tr -d ' '
  $ treelattice xpath --xml auction.xml -k 3 "//open_auction[bidder]" --exact | tr -d ' '
  $ treelattice plan --xml auction.xml -k 3 "open_auction(bidder,annotation)" --execute | grep -c "guided"
  $ treelattice match --xml auction.xml "open_auction(bidder)" --limit 2 | head -1 | sed 's/^[0-9]*/N/'
  $ treelattice exp --quick no-such-experiment 2>&1 | tail -1
  $ treelattice exp --list | wc -l
