(* Tests for the XPath frontend. *)

module Xpath = Tl_twig.Xpath
module Twig = Tl_twig.Twig
module Twig_parse = Tl_twig.Twig_parse
module Treelattice = Tl_core.Treelattice

let parse_ok s =
  match Xpath.parse s with Ok t -> t | Error m -> Alcotest.failf "parse %S failed: %s" s m

let expect_error ~mentions s =
  match Xpath.parse s with
  | Ok _ -> Alcotest.failf "expected %S to be rejected" s
  | Error msg ->
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec scan i = i + nl <= hl && (String.sub msg i nl = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) (Printf.sprintf "%S error mentions %S (got %S)" s mentions msg) true
      (contains mentions)

let ast_string t = Twig_parse.to_string t.Xpath.ast

(* --- structure ---------------------------------------------------------- *)

let test_simple_paths () =
  Alcotest.(check string) "bare name" "a" (ast_string (parse_ok "a"));
  Alcotest.(check string) "leading //" "a" (ast_string (parse_ok "//a"));
  Alcotest.(check string) "chain" "a(b(c))" (ast_string (parse_ok "//a/b/c"));
  Alcotest.(check bool) "// is unanchored" false (parse_ok "//a").Xpath.anchored;
  Alcotest.(check bool) "bare is unanchored" false (parse_ok "a").Xpath.anchored;
  Alcotest.(check bool) "/ is anchored" true (parse_ok "/a/b").Xpath.anchored

let test_predicates () =
  Alcotest.(check string) "single predicate" "a(b)" (ast_string (parse_ok "a[b]"));
  Alcotest.(check string) "fig1 twig" "laptop(brand,price)" (ast_string (parse_ok "//laptop[brand][price]"));
  Alcotest.(check string) "predicate path" "a(b(c))" (ast_string (parse_ok "a[b/c]"));
  Alcotest.(check string) "nested predicate" "a(b(c,d))" (ast_string (parse_ok "a[b[c][d]]"));
  Alcotest.(check string) "predicate then spine" "a(b,c(d))" (ast_string (parse_ok "a[b]/c/d"));
  Alcotest.(check string) "whitespace tolerated" "a(b,c)" (ast_string (parse_ok " a [ b ] [ c ] "))

let test_rejections () =
  expect_error ~mentions:"descendant" "a//b";
  expect_error ~mentions:"descendant" "a[b//c]";
  expect_error ~mentions:"wildcard" "a/*";
  expect_error ~mentions:"attribute" "a[@id]";
  expect_error ~mentions:"value" "a[b=3]";
  expect_error ~mentions:"positional" "a[1]";
  expect_error ~mentions:"text()" "a[text()]";
  expect_error ~mentions:"trailing" "a]b";
  expect_error ~mentions:"tag name" "";
  expect_error ~mentions:"]" "a[b"

let test_to_string_roundtrip () =
  List.iter
    (fun q ->
      let parsed = parse_ok q in
      let rendered = Xpath.to_string parsed in
      let reparsed = parse_ok rendered in
      Alcotest.(check string) (q ^ " roundtrips") (ast_string parsed) (ast_string reparsed);
      Alcotest.(check bool) "anchoring preserved" parsed.Xpath.anchored reparsed.Xpath.anchored)
    [ "//a/b/c"; "/site/people"; "a[b][c/d]"; "//x[y[z]]/w" ]

let test_to_twig () =
  let intern = function "a" -> Some 0 | "b" -> Some 1 | _ -> None in
  (match Xpath.to_twig ~intern (parse_ok "a[b]") with
  | Ok tw -> Alcotest.(check string) "twig" "0(1)" (Twig.encode tw)
  | Error m -> Alcotest.failf "unexpected error %s" m);
  match Xpath.to_twig ~intern (parse_ok "a[zzz]") with
  | Error m -> Alcotest.(check bool) "unknown tag reported" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected unknown-tag error"

(* --- integration with the front-end ---------------------------------------- *)

let shop_tl () = Treelattice.build ~k:3 (Helpers.tree_of Helpers.shop_spec)

let test_estimate_xpath_unanchored () =
  let tl = shop_tl () in
  match Treelattice.estimate_xpath tl "//laptop[brand][price]" with
  | Ok v -> Alcotest.(check (float 1e-6)) "fig1 selectivity" 2.0 v
  | Error m -> Alcotest.failf "unexpected %s" m

let test_estimate_xpath_anchored () =
  let tl = shop_tl () in
  (match Treelattice.estimate_xpath tl "/computer/laptops" with
  | Ok v -> Alcotest.(check (float 1e-6)) "anchored at root tag" 1.0 v
  | Error m -> Alcotest.failf "unexpected %s" m);
  match Treelattice.estimate_xpath tl "/laptops/laptop" with
  | Ok v -> Alcotest.(check (float 1e-6)) "anchored off-root is 0" 0.0 v
  | Error m -> Alcotest.failf "unexpected %s" m

let test_exact_xpath () =
  let tl = shop_tl () in
  (match Treelattice.exact_xpath tl "//laptop[brand][price]" with
  | Ok v -> Alcotest.(check int) "exact unanchored" 2 v
  | Error m -> Alcotest.failf "unexpected %s" m);
  (match Treelattice.exact_xpath tl "/computer/laptops/laptop" with
  | Ok v -> Alcotest.(check int) "exact anchored" 2 v
  | Error m -> Alcotest.failf "unexpected %s" m);
  match Treelattice.exact_xpath tl "/laptop" with
  | Ok v -> Alcotest.(check int) "anchored non-root tag" 0 v
  | Error m -> Alcotest.failf "unexpected %s" m

let test_xpath_errors_surface () =
  let tl = shop_tl () in
  match Treelattice.estimate_xpath tl "laptop//brand" with
  | Error m -> Alcotest.(check bool) "error surfaced" true (String.length m > 0)
  | Ok _ -> Alcotest.fail "expected an error"

(* --- equivalence with the twig syntax ------------------------------------------ *)

let prop_xpath_equals_twig_syntax =
  Helpers.qcheck_case ~name:"XPath and twig syntax agree on estimates" ~count:40
    (Helpers.tree_gen ~max_nodes:25)
    (fun tree ->
      let tl = Treelattice.build ~k:3 tree in
      let rng = Tl_util.Xorshift.create 47 in
      let ok = ref true in
      for _ = 1 to 5 do
        match Tl_twig.Twig_enum.random_subtree rng tree ~size:4 with
        | None -> ()
        | Some twig ->
          (* Render the twig as XPath via its AST and re-estimate. *)
          let ast = Twig_parse.of_twig ~names:(Tl_tree.Data_tree.label_name tree) twig in
          let query = Xpath.to_string (Xpath.of_twig_ast ~anchored:false ast) in
          let direct = Treelattice.estimate tl twig in
          (match Treelattice.estimate_xpath tl query with
          | Ok via_xpath ->
            if Float.abs (direct -. via_xpath) > 1e-9 *. Float.max 1.0 direct then ok := false
          | Error _ -> ok := false)
      done;
      !ok)

let () =
  Alcotest.run "xpath"
    [
      ( "parsing",
        [
          Alcotest.test_case "simple paths" `Quick test_simple_paths;
          Alcotest.test_case "predicates" `Quick test_predicates;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "to_string roundtrip" `Quick test_to_string_roundtrip;
          Alcotest.test_case "to_twig" `Quick test_to_twig;
        ] );
      ( "frontend",
        [
          Alcotest.test_case "estimate unanchored" `Quick test_estimate_xpath_unanchored;
          Alcotest.test_case "estimate anchored" `Quick test_estimate_xpath_anchored;
          Alcotest.test_case "exact" `Quick test_exact_xpath;
          Alcotest.test_case "errors surface" `Quick test_xpath_errors_surface;
          prop_xpath_equals_twig_syntax;
        ] );
    ]
