test/test_sax.mli:
