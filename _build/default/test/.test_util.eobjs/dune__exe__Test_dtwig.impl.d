test/test_dtwig.ml: Alcotest Array Fun Helpers List String Tl_tree Tl_twig Tl_util
