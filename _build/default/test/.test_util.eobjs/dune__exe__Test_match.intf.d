test/test_match.mli:
