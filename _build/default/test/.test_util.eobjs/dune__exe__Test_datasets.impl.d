test/test_datasets.ml: Alcotest Array List Option Printf Tl_datasets Tl_tree Tl_util Tl_xml
