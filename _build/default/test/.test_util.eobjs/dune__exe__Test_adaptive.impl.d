test/test_adaptive.ml: Alcotest Array Float Helpers List Printf Tl_core Tl_tree Tl_twig Tl_util
