test/test_sketch.mli:
