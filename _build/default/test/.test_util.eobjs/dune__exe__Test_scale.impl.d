test/test_scale.ml: Alcotest Array Buffer Option Printf Tl_core Tl_datasets Tl_lattice Tl_tree Tl_twig Tl_util Tl_workload
