test/test_estimator.ml: Alcotest Float Helpers List Option Printf Tl_core Tl_lattice Tl_tree Tl_twig Tl_util
