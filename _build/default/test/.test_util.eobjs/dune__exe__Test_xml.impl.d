test/test_xml.ml: Alcotest Filename Fun Helpers List String Sys Tl_tree Tl_xml
