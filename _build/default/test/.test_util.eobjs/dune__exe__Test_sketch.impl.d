test/test_sketch.ml: Alcotest Array Filename Float Fun Hashtbl Helpers List Option Sys Tl_sketch Tl_tree Tl_twig
