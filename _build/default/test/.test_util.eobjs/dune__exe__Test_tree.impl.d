test/test_tree.ml: Alcotest Array Helpers List String Tl_tree Tl_xml
