test/test_sax.ml: Alcotest Array Buffer Filename Fun Helpers List Option Sys Tl_lattice Tl_tree Tl_xml
