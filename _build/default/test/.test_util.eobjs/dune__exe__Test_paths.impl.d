test/test_paths.ml: Alcotest Float Helpers List Option String Tl_core Tl_datasets Tl_lattice Tl_paths Tl_tree Tl_twig Tl_util
