test/test_dtwig.mli:
