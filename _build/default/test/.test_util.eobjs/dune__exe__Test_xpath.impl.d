test/test_xpath.ml: Alcotest Float Helpers List Printf String Tl_core Tl_tree Tl_twig Tl_util
