test/test_util.ml: Alcotest Array Float Fun Helpers Int64 List Printf QCheck2 String Tl_util
