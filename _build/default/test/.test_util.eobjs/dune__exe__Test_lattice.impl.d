test/test_lattice.ml: Alcotest Array Filename Fun Helpers List Option Sys Tl_lattice Tl_tree Tl_twig
