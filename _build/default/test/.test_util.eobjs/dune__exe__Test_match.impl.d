test/test_match.ml: Alcotest Helpers List Option Printf Tl_tree Tl_twig Tl_util
