test/test_datasets.mli:
