test/test_twig.mli:
