test/test_join.ml: Alcotest Array Helpers List Option Printf String Tl_datasets Tl_join Tl_lattice Tl_tree Tl_twig Tl_util
