test/test_viz.ml: Alcotest Helpers String Tl_join Tl_sketch Tl_tree Tl_twig Tl_values Tl_viz
