test/test_mining.ml: Alcotest Array Hashtbl Helpers List Tl_mining Tl_tree Tl_twig
