test/test_twig.ml: Alcotest Array Fmt Fun Helpers List String Tl_twig
