test/test_harness.ml: Alcotest Lazy List Printf String Tl_datasets Tl_harness Tl_lattice Tl_sketch Tl_tree
