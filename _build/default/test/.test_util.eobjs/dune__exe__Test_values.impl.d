test/test_values.ml: Alcotest Array Buffer Helpers List Option Printf QCheck2 Tl_core Tl_tree Tl_twig Tl_util Tl_values Tl_xml
