test/test_workload.ml: Alcotest Array Helpers List Tl_datasets Tl_twig Tl_workload
