(* Tests for the value-predicates extension (future work #1): value trees,
   value queries, exact matching, histograms, and factorized estimation. *)

module Value_tree = Tl_values.Value_tree
module Value_query = Tl_values.Value_query
module Value_match = Tl_values.Value_match
module Value_summary = Tl_values.Value_summary
module Value_estimator = Tl_values.Value_estimator
module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig

let close = Alcotest.(check (float 1e-6))

let bookstore =
  {|<store>
      <book><title>ocaml</title><genre>cs</genre><price>30</price></book>
      <book><title>haskell</title><genre>cs</genre><price>30</price></book>
      <book><title>poems</title><genre>art</genre><price>10</price></book>
      <book><title>essays</title><genre>art</genre></book>
      <magazine><title>ocaml</title></magazine>
    </store>|}

let vtree_of s = Value_tree.of_xml (Tl_xml.Xml_dom.parse_string s)

let shop () = vtree_of bookstore

let label vt name = Option.get (Data_tree.label_of_string (Value_tree.tree vt) name)

let parse vt q =
  let tree = Value_tree.tree vt in
  match Value_query.parse ~intern:(Data_tree.label_of_string tree) q with
  | Ok vq -> vq
  | Error m -> Alcotest.failf "parse %S: %s" q m

(* --- value tree -------------------------------------------------------------- *)

let test_value_extraction () =
  let vt = shop () in
  let tree = Value_tree.tree vt in
  Alcotest.(check int) "sizes align" 18 (Data_tree.size tree);
  (* Root and books are interior: no values. *)
  Alcotest.(check (option string)) "root has no value" None (Value_tree.value vt 0);
  Alcotest.(check (option string)) "book has no value" None (Value_tree.value vt 1);
  (* First title. *)
  Alcotest.(check (option string)) "leaf value" (Some "ocaml") (Value_tree.value vt 2);
  Alcotest.(check int) "valued leaves" 12 (Value_tree.valued_nodes vt)

let test_value_trimming_and_cdata () =
  let vt = vtree_of "<a><b>  spaced  </b><c><![CDATA[raw]]></c><d></d></a>" in
  Alcotest.(check (option string)) "trimmed" (Some "spaced") (Value_tree.value vt 1);
  Alcotest.(check (option string)) "cdata" (Some "raw") (Value_tree.value vt 2);
  Alcotest.(check (option string)) "empty leaf" None (Value_tree.value vt 3)

(* --- value queries ------------------------------------------------------------- *)

let test_query_parse_and_pp () =
  let vt = shop () in
  let names = Data_tree.label_name (Value_tree.tree vt) in
  let q = parse vt {|book(genre=cs,title="ocaml")|} in
  Alcotest.(check int) "size" 3 (Value_query.size q);
  Alcotest.(check (list (pair int string))) "predicates"
    (List.sort compare [ (label vt "genre", "cs"); (label vt "title", "ocaml") ])
    (List.sort compare (Value_query.predicates q));
  (* pp round-trips through parse. *)
  let q2 = parse vt (Value_query.pp ~names q) in
  Alcotest.(check bool) "pp/parse roundtrip" true (Value_query.equal q q2)

let test_query_quoted_values () =
  let vt = vtree_of {|<a><b>hello world</b></a>|} in
  let q = parse vt {|a(b="hello world")|} in
  Alcotest.(check (list (pair int string))) "quoted value" [ (label vt "b", "hello world") ]
    (Value_query.predicates q);
  let escaped = parse vt {|a(b="say \"hi\" \\ ok")|} in
  Alcotest.(check (list (pair int string))) "escapes" [ (label vt "b", {|say "hi" \ ok|}) ]
    (Value_query.predicates escaped)

let test_query_parse_errors () =
  let vt = shop () in
  let tree = Value_tree.tree vt in
  let expect_error q =
    match Value_query.parse ~intern:(Data_tree.label_of_string tree) q with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to fail" q
  in
  expect_error "";
  expect_error "book(";
  expect_error "book(title=)";
  expect_error {|book(title=")|};
  expect_error "book(unknowntag)";
  expect_error "book)x"

let test_query_canonical_order_insensitive () =
  let vt = shop () in
  let a = parse vt "book(genre=cs,title=ocaml)" in
  let b = parse vt "book(title=ocaml,genre=cs)" in
  Alcotest.(check bool) "order-insensitive" true (Value_query.equal a b);
  Alcotest.(check string) "same encoding" (Value_query.encode a) (Value_query.encode b)

let test_query_value_distinguishes () =
  let vt = shop () in
  let a = parse vt "book(title=ocaml)" in
  let b = parse vt "book(title=poems)" in
  let c = parse vt "book(title)" in
  Alcotest.(check bool) "different values differ" false (Value_query.equal a b);
  Alcotest.(check bool) "constrained differs from free" false (Value_query.equal a c);
  Alcotest.(check bool) "strip equalizes" true
    (Twig.equal (Value_query.strip a) (Value_query.strip b))

(* --- exact matching --------------------------------------------------------------- *)

let test_exact_counts () =
  let vt = shop () in
  let count q = Value_match.selectivity vt (parse vt q) in
  Alcotest.(check int) "unconstrained" 4 (count "book(title)");
  Alcotest.(check int) "value on one leaf" 2 (count "book(genre=cs)");
  Alcotest.(check int) "two predicates" 1 (count {|book(title=ocaml,genre=cs)|});
  Alcotest.(check int) "conflicting" 0 (count "book(title=ocaml,genre=art)");
  Alcotest.(check int) "value anywhere" 2 (count "title=ocaml");
  Alcotest.(check int) "deep" 2 (count "store(book(price=30))");
  Alcotest.(check int) "absent value" 0 (count "book(title=zzz)")

let test_exact_matches_enumeration_oracle () =
  (* Filtering enumerated structural matches by the predicates must agree
     with the value DP. *)
  let vt = shop () in
  let tree = Value_tree.tree vt in
  let q = parse vt "book(title,genre=cs)" in
  let structural = Value_query.strip q in
  let matches = Tl_twig.Match_enum.enumerate tree structural in
  (* Canonical preorder of book(genre,title): figure out which index is the
     genre node by label. *)
  let ix = Twig.index structural in
  let expected =
    List.length
      (List.filter
         (fun assignment ->
           let ok = ref true in
           Array.iteri
             (fun qi v ->
               if ix.Twig.node_labels.(qi) = label vt "genre" then
                 if Value_tree.value vt v <> Some "cs" then ok := false)
             assignment;
           !ok)
         matches)
  in
  Alcotest.(check int) "DP = filtered enumeration" expected (Value_match.selectivity vt q)

let test_rooted () =
  let vt = shop () in
  let q = parse vt "book(genre=cs)" in
  let total = ref 0 in
  Data_tree.iter_nodes (Value_tree.tree vt) (fun v ->
      total := !total + Value_match.selectivity_rooted vt q v);
  Alcotest.(check int) "rooted sums" (Value_match.selectivity vt q) !total

(* --- value summary -------------------------------------------------------------- *)

let test_histogram () =
  let vt = shop () in
  let summary = Value_summary.build vt in
  let title = label vt "title" in
  (* ocaml appears twice among 5 title nodes (incl. the magazine's). *)
  close "P(ocaml|title)" (2.0 /. 5.0) (Value_summary.value_probability summary title "ocaml");
  close "P(poems|title)" (1.0 /. 5.0) (Value_summary.value_probability summary title "poems");
  close "unknown value" 0.0 (Value_summary.value_probability summary title "zzz");
  close "unvalued label" 0.0 (Value_summary.value_probability summary (label vt "book") "x");
  match Value_summary.top_values summary title with
  | (top, 2) :: _ -> Alcotest.(check string) "most frequent" "ocaml" top
  | _ -> Alcotest.fail "unexpected histogram"

let test_histogram_tail_bucket () =
  let vt = shop () in
  let summary = Value_summary.build ~top:1 vt in
  let title = label vt "title" in
  (* Only "ocaml" retained; the other 3 distinct titles fall into the tail:
     tail estimate = 3/3/5. *)
  close "tail uniformity" (1.0 /. 5.0) (Value_summary.value_probability summary title "poems");
  close "retained exact" (2.0 /. 5.0) (Value_summary.value_probability summary title "ocaml");
  Alcotest.(check bool) "memory accounted" true (Value_summary.memory_bytes summary > 0)

(* --- estimation -------------------------------------------------------------------- *)

let test_estimate_factorizes () =
  let vt = shop () in
  let est = Value_estimator.create ~k:3 vt in
  (match Value_estimator.estimate_string est "book(genre=cs)" with
  | Ok v ->
    (* sigma(book(genre)) = 4; P(cs|genre) = 2/4. *)
    close "single predicate" 2.0 v
  | Error m -> Alcotest.failf "unexpected %s" m);
  match Value_estimator.estimate_string est "title=ocaml" with
  | Ok v -> close "bare valued label" 2.0 v
  | Error m -> Alcotest.failf "unexpected %s" m

let test_estimate_exact_on_independent_values () =
  (* Values assigned independently of structure: factorized estimates are
     exact.  Document: 8 x-nodes; y-values split 50/50; z always "k". *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<r>";
  for i = 0 to 7 do
    Buffer.add_string buf
      (Printf.sprintf "<x><y>%s</y><z>k</z></x>" (if i mod 2 = 0 then "p" else "q"))
  done;
  Buffer.add_string buf "</r>";
  let vt = vtree_of (Buffer.contents buf) in
  let est = Value_estimator.create ~k:3 vt in
  List.iter
    (fun (q, expected) ->
      match Value_estimator.estimate_string est q with
      | Ok v ->
        close q (float_of_int expected) v;
        (match Value_estimator.exact_string est q with
        | Ok truth -> Alcotest.(check int) (q ^ " truth") expected truth
        | Error m -> Alcotest.failf "unexpected %s" m)
      | Error m -> Alcotest.failf "unexpected %s" m)
    [ ("x(y=p)", 4); ("x(y=p,z=k)", 4); ("x(y=q,z)", 4); ("r(x(y=p))", 4) ]

let test_estimate_unknown_tag_is_zero () =
  let vt = shop () in
  let est = Value_estimator.create ~k:3 vt in
  match Value_estimator.estimate_string est "book(nonexistent=1)" with
  | Ok v -> close "unknown tag" 0.0 v
  | Error m -> Alcotest.failf "unknown tags should estimate 0: %s" m

let prop_estimate_bounded_by_structural =
  Helpers.qcheck_case ~name:"value predicates never increase the estimate" ~count:30
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let vt = shop () in
      let est = Value_estimator.create ~k:3 vt in
      let rng = Tl_util.Xorshift.create seed in
      let tree = Value_tree.tree vt in
      match Tl_twig.Twig_enum.random_subtree rng tree ~size:3 with
      | None -> true
      | Some twig ->
        let structural =
          Tl_core.Estimator.estimate (Value_estimator.structural est)
            Tl_core.Treelattice.default_scheme twig
        in
        (* Constrain the twig root's value arbitrarily. *)
        let vq = Value_query.canonicalize
            { (Value_query.of_twig twig) with Value_query.value = Some "ocaml" } in
        Value_estimator.estimate est vq <= structural +. 1e-9)

let () =
  Alcotest.run "values"
    [
      ( "value_tree",
        [
          Alcotest.test_case "extraction" `Quick test_value_extraction;
          Alcotest.test_case "trimming and cdata" `Quick test_value_trimming_and_cdata;
        ] );
      ( "value_query",
        [
          Alcotest.test_case "parse and pp" `Quick test_query_parse_and_pp;
          Alcotest.test_case "quoted values" `Quick test_query_quoted_values;
          Alcotest.test_case "parse errors" `Quick test_query_parse_errors;
          Alcotest.test_case "canonical order" `Quick test_query_canonical_order_insensitive;
          Alcotest.test_case "values distinguish" `Quick test_query_value_distinguishes;
        ] );
      ( "value_match",
        [
          Alcotest.test_case "exact counts" `Quick test_exact_counts;
          Alcotest.test_case "enumeration oracle" `Quick test_exact_matches_enumeration_oracle;
          Alcotest.test_case "rooted sums" `Quick test_rooted;
        ] );
      ( "value_summary",
        [
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "tail bucket" `Quick test_histogram_tail_bucket;
        ] );
      ( "value_estimator",
        [
          Alcotest.test_case "factorized estimate" `Quick test_estimate_factorizes;
          Alcotest.test_case "exact under independence" `Quick test_estimate_exact_on_independent_values;
          Alcotest.test_case "unknown tag" `Quick test_estimate_unknown_tag_is_zero;
          prop_estimate_bounded_by_structural;
        ] );
    ]
