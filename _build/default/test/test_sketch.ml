(* Tests for the TreeSketches-style baseline: synopsis structure,
   construction under a memory budget, and expected-count estimation. *)

module Synopsis = Tl_sketch.Synopsis
module Sketch_build = Tl_sketch.Sketch_build
module Sketch_estimate = Tl_sketch.Sketch_estimate
module Data_tree = Tl_tree.Data_tree
module Match_count = Tl_twig.Match_count
module TB = Tl_tree.Tree_builder

let close = Alcotest.(check (float 1e-6))

let build ?budget_bytes ?refine_rounds tree = Sketch_build.build ?budget_bytes ?refine_rounds tree

(* --- structure --------------------------------------------------------------- *)

let test_validate_built_synopses () =
  List.iter
    (fun spec ->
      let tree = Helpers.tree_of spec in
      let synopsis = build tree in
      match Synopsis.validate synopsis with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "invalid synopsis: %s" msg)
    [ Helpers.shop_spec; Helpers.fig11_spec; Helpers.regular_spec ]

let test_node_count_preserved () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build tree in
  Alcotest.(check int) "all nodes summarized" (Data_tree.size tree) (Synopsis.node_count synopsis)

let test_label_partition_floor () =
  (* A budget of 0 forces merging all the way down to the label partition. *)
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~budget_bytes:0 tree in
  Alcotest.(check int) "one cluster per label" (Data_tree.label_count tree)
    (Synopsis.cluster_count synopsis)

let test_refine_rounds_zero_is_label_partition () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~refine_rounds:0 ~budget_bytes:(1024 * 1024) tree in
  Alcotest.(check int) "label partition" (Data_tree.label_count tree)
    (Synopsis.cluster_count synopsis)

let test_generous_budget_refines () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~budget_bytes:(1024 * 1024) tree in
  (* Count-stability separates the c-only b-nodes from the mixed one. *)
  Alcotest.(check bool) "more clusters than labels" true
    (Synopsis.cluster_count synopsis > Data_tree.label_count tree)

let test_memory_accounting () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build tree in
  Alcotest.(check int) "bytes = 8*clusters + 12*edges"
    ((8 * Synopsis.cluster_count synopsis) + (12 * Synopsis.edge_count synopsis))
    (Synopsis.memory_bytes synopsis)

let test_weight_lookup () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~refine_rounds:0 ~budget_bytes:(1024 * 1024) tree in
  let cluster_of_label name =
    let l = Option.get (Data_tree.label_of_string tree name) in
    match Hashtbl.find_opt synopsis.Synopsis.clusters_of_label l with
    | Some [ c ] -> c
    | _ -> Alcotest.failf "expected exactly one cluster for %s" name
  in
  let a = cluster_of_label "a" and b = cluster_of_label "b" and c = cluster_of_label "c" in
  close "w(a->b) = 4" 4.0 (Synopsis.weight synopsis a b);
  (* 13 c-children over 4 b-nodes. *)
  close "w(b->c) = 3.25" 3.25 (Synopsis.weight synopsis b c);
  close "absent edge" 0.0 (Synopsis.weight synopsis c a)

(* --- estimation ------------------------------------------------------------------ *)

let test_exact_on_uniform_document () =
  (* All same-label nodes identical: averages are exact, so the synopsis
     reproduces exact counts even for branching queries. *)
  let tree = Helpers.tree_of Helpers.regular_spec in
  let ctx = Match_count.create_ctx tree in
  let synopsis = build ~refine_rounds:0 ~budget_bytes:(1024 * 1024) tree in
  List.iter
    (fun q ->
      let twig = Helpers.twig_of_string tree q in
      (* Note: TreeSketches multiplies sibling expectations independently,
         so repeated-sibling queries overcount; use distinct-label queries. *)
      close q
        (float_of_int (Match_count.selectivity ctx twig))
        (Sketch_estimate.estimate synopsis twig))
    [ "x(y,z)"; "r(x(y(w),z))"; "x(y(w))"; "y(w)" ]

let test_fig11_overestimation () =
  (* The §5.3 failure mode: under the label partition the synopsis
     estimates a(b(c,d)) as 1 * 4 * 3.25 * 1 = 13 against a truth of 4. *)
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~refine_rounds:0 ~budget_bytes:(1024 * 1024) tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  close "overestimates" 13.0 (Sketch_estimate.estimate synopsis twig)

let test_fine_clusters_fix_fig11 () =
  (* With count-stability refinement the mixed b-node gets its own cluster
     and the estimate becomes exact. *)
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~budget_bytes:(1024 * 1024) tree in
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  close "refined synopsis exact" 4.0 (Sketch_estimate.estimate synopsis twig)

let test_absent_root_label () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let synopsis = build tree in
  close "ghost query" 0.0 (Sketch_estimate.estimate synopsis (Tl_twig.Twig.leaf 999))

let test_estimate_rooted () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build ~refine_rounds:0 ~budget_bytes:(1024 * 1024) tree in
  let b_label = Option.get (Data_tree.label_of_string tree "b") in
  let b_cluster =
    match Hashtbl.find_opt synopsis.Synopsis.clusters_of_label b_label with
    | Some [ c ] -> c
    | _ -> Alcotest.fail "expected one b cluster"
  in
  let twig = Helpers.twig_of_string tree "b(c)" in
  close "per-node expectation" 3.25 (Sketch_estimate.estimate_rooted synopsis twig b_cluster)

let test_determinism () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let s1 = Sketch_build.build ~budget_bytes:96 ~seed:5 tree in
  let s2 = Sketch_build.build ~budget_bytes:96 ~seed:5 tree in
  Alcotest.(check int) "same clusters" (Synopsis.cluster_count s1) (Synopsis.cluster_count s2);
  Alcotest.(check int) "same edges" (Synopsis.edge_count s1) (Synopsis.edge_count s2)

(* --- serialization --------------------------------------------------------------- *)

module Sketch_io = Tl_sketch.Sketch_io

let test_io_roundtrip () =
  let tree = Helpers.tree_of Helpers.fig11_spec in
  let synopsis = build tree in
  let names = Data_tree.label_names tree in
  let loaded, loaded_names = Sketch_io.load (Sketch_io.save ~names synopsis) in
  Alcotest.(check int) "clusters" (Synopsis.cluster_count synopsis) (Synopsis.cluster_count loaded);
  Alcotest.(check int) "edges" (Synopsis.edge_count synopsis) (Synopsis.edge_count loaded);
  Alcotest.(check (array string)) "names" names loaded_names;
  (* Estimates agree after the roundtrip. *)
  let twig = Helpers.twig_of_string tree "a(b(c,d))" in
  close "same estimates"
    (Sketch_estimate.estimate synopsis twig)
    (Sketch_estimate.estimate loaded twig)

let test_io_file_roundtrip () =
  let tree = Helpers.tree_of Helpers.shop_spec in
  let synopsis = build tree in
  let path = Filename.temp_file "tl_sketch" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sketch_io.save_file ~names:(Data_tree.label_names tree) path synopsis;
      let loaded, _ = Sketch_io.load_file path in
      Alcotest.(check int) "clusters" (Synopsis.cluster_count synopsis)
        (Synopsis.cluster_count loaded))

let test_io_format_errors () =
  let expect_error text =
    match Sketch_io.load text with
    | exception Sketch_io.Format_error _ -> ()
    | _ -> Alcotest.failf "expected format error for %S" text
  in
  expect_error "garbage";
  expect_error "treesketch-synopsis v1 clusters=x labels=0\n";
  expect_error "treesketch-synopsis v1 clusters=1 labels=1\na\ncluster 5 0 1\n";
  expect_error "treesketch-synopsis v1 clusters=1 labels=1\na\nnot-a-line x\n";
  (* Invalid loaded synopsis (size 0) is rejected by validation. *)
  expect_error "treesketch-synopsis v1 clusters=1 labels=1\na\ncluster 0 0 0\n"

let prop_io_roundtrip_estimates =
  Helpers.qcheck_case ~name:"save/load preserves synopsis estimates" ~count:30
    (Helpers.tree_gen ~max_nodes:25)
    (fun tree ->
      let synopsis = build tree in
      let loaded, _ = Sketch_io.load (Sketch_io.save ~names:(Data_tree.label_names tree) synopsis) in
      let ok = ref true in
      for l = 0 to Data_tree.label_count tree - 1 do
        let t = Tl_twig.Twig.leaf l in
        if Float.abs (Sketch_estimate.estimate synopsis t -. Sketch_estimate.estimate loaded t) > 1e-9
        then ok := false
      done;
      !ok)

(* --- properties --------------------------------------------------------------------- *)

let prop_budget_or_label_floor =
  Helpers.qcheck_case ~name:"built synopsis fits budget or is the label partition" ~count:40
    (Helpers.tree_gen ~max_nodes:40)
    (fun tree ->
      let budget = 128 in
      let synopsis = build ~budget_bytes:budget tree in
      Synopsis.memory_bytes synopsis <= budget
      || Synopsis.cluster_count synopsis = Data_tree.label_count tree)

let prop_synopsis_valid_and_complete =
  Helpers.qcheck_case ~name:"synopsis is valid and summarizes every node" ~count:40
    (Helpers.tree_gen ~max_nodes:40)
    (fun tree ->
      let synopsis = build tree in
      Synopsis.validate synopsis = Ok () && Synopsis.node_count synopsis = Data_tree.size tree)

let prop_single_label_estimates_exact =
  Helpers.qcheck_case ~name:"single-label queries are exact" ~count:40
    (Helpers.tree_gen ~max_nodes:30)
    (fun tree ->
      let synopsis = build tree in
      let ok = ref true in
      for l = 0 to Data_tree.label_count tree - 1 do
        let expected = float_of_int (Array.length (Data_tree.nodes_with_label tree l)) in
        let got = Sketch_estimate.estimate synopsis (Tl_twig.Twig.leaf l) in
        if Float.abs (expected -. got) > 1e-6 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "treesketch"
    [
      ( "structure",
        [
          Alcotest.test_case "validate" `Quick test_validate_built_synopses;
          Alcotest.test_case "node count" `Quick test_node_count_preserved;
          Alcotest.test_case "label partition floor" `Quick test_label_partition_floor;
          Alcotest.test_case "no refinement" `Quick test_refine_rounds_zero_is_label_partition;
          Alcotest.test_case "generous budget refines" `Quick test_generous_budget_refines;
          Alcotest.test_case "memory accounting" `Quick test_memory_accounting;
          Alcotest.test_case "weight lookup" `Quick test_weight_lookup;
          prop_budget_or_label_floor;
          prop_synopsis_valid_and_complete;
        ] );
      ( "estimation",
        [
          Alcotest.test_case "uniform document exact" `Quick test_exact_on_uniform_document;
          Alcotest.test_case "fig11 overestimation" `Quick test_fig11_overestimation;
          Alcotest.test_case "refined clusters fix fig11" `Quick test_fine_clusters_fix_fig11;
          Alcotest.test_case "absent root label" `Quick test_absent_root_label;
          Alcotest.test_case "rooted expectation" `Quick test_estimate_rooted;
          Alcotest.test_case "determinism" `Quick test_determinism;
          prop_single_label_estimates_exact;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          Alcotest.test_case "format errors" `Quick test_io_format_errors;
          prop_io_roundtrip_estimates;
        ] );
    ]
