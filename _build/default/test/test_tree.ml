(* Tests for the data-tree substrate. *)

module Data_tree = Tl_tree.Data_tree
module TB = Tl_tree.Tree_builder
module Tree_stats = Tl_tree.Tree_stats

(* a(b(c,d),b(c),e) *)
let sample () =
  TB.build
    (TB.node "a" [ TB.node "b" [ TB.leaf "c"; TB.leaf "d" ]; TB.node "b" [ TB.leaf "c" ]; TB.leaf "e" ])

let label_of tree name =
  match Data_tree.label_of_string tree name with
  | Some l -> l
  | None -> Alcotest.failf "label %s missing" name

let test_size_and_root () =
  let t = sample () in
  Alcotest.(check int) "size" 7 (Data_tree.size t);
  Alcotest.(check int) "root id" 0 (Data_tree.root t);
  Alcotest.(check string) "root label" "a" (Data_tree.label_name t (Data_tree.label t 0))

let test_preorder_ids () =
  let t = sample () in
  (* Preorder: a=0, b=1, c=2, d=3, b=4, c=5, e=6. *)
  let names = List.init 7 (fun v -> Data_tree.label_name t (Data_tree.label t v)) in
  Alcotest.(check (list string)) "preorder labels" [ "a"; "b"; "c"; "d"; "b"; "c"; "e" ] names

let test_parents () =
  let t = sample () in
  Alcotest.(check (option int)) "root has no parent" None (Data_tree.parent t 0);
  Alcotest.(check (option int)) "c under first b" (Some 1) (Data_tree.parent t 2);
  Alcotest.(check (option int)) "second b under root" (Some 0) (Data_tree.parent t 4)

let test_children_document_order () =
  let t = sample () in
  Alcotest.(check (list int)) "root children" [ 1; 4; 6 ] (Array.to_list (Data_tree.children t 0));
  Alcotest.(check (list int)) "first b children" [ 2; 3 ] (Array.to_list (Data_tree.children t 1));
  Alcotest.(check int) "fanout" 3 (Data_tree.fanout t 0);
  Alcotest.(check int) "leaf fanout" 0 (Data_tree.fanout t 6)

let test_children_with_label () =
  let t = sample () in
  let b = label_of t "b" in
  let c = label_of t "c" in
  Alcotest.(check (list int)) "b children of root" [ 1; 4 ]
    (Array.to_list (Data_tree.children_with_label t 0 b));
  Alcotest.(check (list int)) "c children of first b" [ 2 ]
    (Array.to_list (Data_tree.children_with_label t 1 c));
  Alcotest.(check int) "count" 2 (Data_tree.count_children_with_label t 0 b);
  Alcotest.(check int) "absent label count" 0 (Data_tree.count_children_with_label t 0 c);
  let sum = Data_tree.fold_children_with_label t 0 b (fun acc v -> acc + v) 0 in
  Alcotest.(check int) "fold agrees" 5 sum

let test_nodes_with_label () =
  let t = sample () in
  Alcotest.(check (list int)) "all b nodes in preorder" [ 1; 4 ]
    (Array.to_list (Data_tree.nodes_with_label t (label_of t "b")));
  Alcotest.(check (list int)) "out-of-range label" [] (Array.to_list (Data_tree.nodes_with_label t 999))

let test_edge_label_pairs () =
  let t = sample () in
  let name (p, c) = (Data_tree.label_name t p, Data_tree.label_name t c) in
  let pairs = List.sort compare (List.map name (Data_tree.edge_label_pairs t)) in
  Alcotest.(check (list (pair string string)))
    "distinct parent/child label pairs"
    [ ("a", "b"); ("a", "e"); ("b", "c"); ("b", "d") ]
    pairs;
  Alcotest.(check bool) "has a->b" true (Data_tree.has_edge_labels t (label_of t "a") (label_of t "b"));
  Alcotest.(check bool) "no a->c" false (Data_tree.has_edge_labels t (label_of t "a") (label_of t "c"))

let test_postorder () =
  let t = sample () in
  Alcotest.(check (list int)) "postorder" [ 2; 3; 1; 5; 4; 6; 0 ] (Array.to_list (Data_tree.postorder t))

let test_depth () =
  Alcotest.(check int) "sample depth" 3 (Data_tree.depth (sample ()));
  Alcotest.(check int) "single node" 1 (Data_tree.depth (TB.build (TB.leaf "x")));
  Alcotest.(check int) "path depth" 4 (Data_tree.depth (TB.build (TB.path [ "a"; "b"; "c"; "d" ])))

let test_intern_label () =
  let t = sample () in
  let before = Data_tree.label_count t in
  let fresh = Data_tree.intern_label t "zzz" in
  Alcotest.(check int) "fresh id appended" before fresh;
  Alcotest.(check int) "label count grew" (before + 1) (Data_tree.label_count t);
  Alcotest.(check (list int)) "no occurrences" [] (Array.to_list (Data_tree.nodes_with_label t fresh));
  Alcotest.(check int) "existing label unchanged" (label_of t "b") (Data_tree.intern_label t "b");
  Alcotest.(check string) "names array covers fresh" "zzz" (Data_tree.label_names t).(fresh)

let test_of_xml_drops_non_elements () =
  let doc = Tl_xml.Xml_dom.parse_string "<a>text<b/><!-- c --><?pi x?><b/></a>" in
  let t = Data_tree.of_xml doc in
  Alcotest.(check int) "elements only" 3 (Data_tree.size t)

(* --- Tree_stats -------------------------------------------------------------- *)

let test_stats () =
  let s = Tree_stats.compute (sample ()) in
  Alcotest.(check int) "nodes" 7 s.nodes;
  Alcotest.(check int) "labels" 5 s.distinct_labels;
  Alcotest.(check int) "depth" 3 s.depth;
  Alcotest.(check int) "max fanout" 3 s.max_fanout;
  Alcotest.(check int) "leaves" 4 s.leaves;
  Alcotest.(check int) "edge pairs" 4 s.edge_label_pairs;
  Alcotest.(check (float 1e-9)) "mean fanout over internal" 2.0 s.mean_fanout;
  Alcotest.(check bool) "pp non-empty" true (String.length (Tree_stats.pp s) > 0)

let test_label_histogram () =
  let hist = Tree_stats.label_histogram (sample ()) in
  (match hist with
  | (top, count) :: _ ->
    Alcotest.(check bool) "most frequent is b or c" true (top = "b" || top = "c");
    Alcotest.(check int) "top count" 2 count
  | [] -> Alcotest.fail "empty histogram");
  Alcotest.(check int) "all labels present" 5 (List.length hist)

let test_fanout_of_label () =
  let t = sample () in
  Alcotest.(check (float 1e-9)) "b mean fanout" 1.5 (Tree_stats.fanout_of_label t "b");
  Alcotest.(check (float 1e-9)) "absent tag" 0.0 (Tree_stats.fanout_of_label t "nope")

(* --- Tree_builder -------------------------------------------------------------- *)

let test_builder_path () =
  let t = TB.build (TB.path [ "x"; "y"; "z" ]) in
  Alcotest.(check int) "path size" 3 (Data_tree.size t);
  Alcotest.(check int) "path depth" 3 (Data_tree.depth t);
  Alcotest.check_raises "empty path" (Invalid_argument "Tree_builder.path: empty label list")
    (fun () -> ignore (TB.path []))

let test_builder_replicate () =
  let t = TB.build (TB.node "r" (TB.replicate 5 (TB.leaf "k"))) in
  Alcotest.(check int) "replicated size" 6 (Data_tree.size t);
  Alcotest.(check int) "fanout" 5 (Data_tree.fanout t 0)

(* --- properties ------------------------------------------------------------------ *)

let prop_postorder_children_first =
  Helpers.qcheck_case ~name:"postorder visits children before parents" ~count:100
    (Helpers.tree_gen ~max_nodes:40)
    (fun t ->
      let order = Data_tree.postorder t in
      let position = Array.make (Data_tree.size t) 0 in
      Array.iteri (fun i v -> position.(v) <- i) order;
      let ok = ref true in
      Data_tree.iter_nodes t (fun v ->
          Array.iter (fun c -> if position.(c) >= position.(v) then ok := false) (Data_tree.children t v));
      !ok)

let prop_children_with_label_is_filter =
  Helpers.qcheck_case ~name:"children_with_label = filter of children" ~count:100
    (Helpers.tree_gen ~max_nodes:40)
    (fun t ->
      let ok = ref true in
      Data_tree.iter_nodes t (fun v ->
          for l = 0 to Data_tree.label_count t - 1 do
            let expected =
              List.filter (fun c -> Data_tree.label t c = l) (Array.to_list (Data_tree.children t v))
            in
            if Array.to_list (Data_tree.children_with_label t v l) <> expected then ok := false;
            if Data_tree.count_children_with_label t v l <> List.length expected then ok := false
          done);
      !ok)

let prop_parent_child_consistent =
  Helpers.qcheck_case ~name:"parent/children are mutually consistent" ~count:100
    (Helpers.tree_gen ~max_nodes:40)
    (fun t ->
      let ok = ref true in
      Data_tree.iter_nodes t (fun v ->
          Array.iter
            (fun c -> if Data_tree.parent t c <> Some v then ok := false)
            (Data_tree.children t v));
      !ok)

let () =
  Alcotest.run "tree"
    [
      ( "data_tree",
        [
          Alcotest.test_case "size and root" `Quick test_size_and_root;
          Alcotest.test_case "preorder ids" `Quick test_preorder_ids;
          Alcotest.test_case "parents" `Quick test_parents;
          Alcotest.test_case "children order" `Quick test_children_document_order;
          Alcotest.test_case "children by label" `Quick test_children_with_label;
          Alcotest.test_case "nodes by label" `Quick test_nodes_with_label;
          Alcotest.test_case "edge label pairs" `Quick test_edge_label_pairs;
          Alcotest.test_case "postorder" `Quick test_postorder;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "intern label" `Quick test_intern_label;
          Alcotest.test_case "of_xml" `Quick test_of_xml_drops_non_elements;
          prop_postorder_children_first;
          prop_children_with_label_is_filter;
          prop_parent_child_consistent;
        ] );
      ( "stats",
        [
          Alcotest.test_case "compute" `Quick test_stats;
          Alcotest.test_case "label histogram" `Quick test_label_histogram;
          Alcotest.test_case "fanout of label" `Quick test_fanout_of_label;
        ] );
      ( "builder",
        [
          Alcotest.test_case "path" `Quick test_builder_path;
          Alcotest.test_case "replicate" `Quick test_builder_replicate;
        ] );
    ]
