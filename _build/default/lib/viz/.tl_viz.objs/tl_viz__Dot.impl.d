lib/viz/dot.ml: Array Buffer List Printf String Tl_join Tl_sketch Tl_tree Tl_twig Tl_values
