lib/viz/dot.mli: Tl_join Tl_sketch Tl_tree Tl_twig Tl_values
