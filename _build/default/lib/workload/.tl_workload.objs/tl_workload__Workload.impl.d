lib/workload/workload.ml: Array Error_metric Fun Hashtbl List Tl_tree Tl_twig Tl_util
