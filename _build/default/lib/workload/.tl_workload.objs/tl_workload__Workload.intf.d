lib/workload/workload.mli: Tl_twig
