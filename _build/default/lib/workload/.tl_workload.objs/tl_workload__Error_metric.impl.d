lib/workload/error_metric.ml: Array Float Tl_util
