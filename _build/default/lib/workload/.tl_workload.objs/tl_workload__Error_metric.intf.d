lib/workload/error_metric.mli:
