(** The paper's accuracy metric (§5.1).

    Estimation error is [|sigma - sigma_hat| / max(s, sigma)] where the
    sanity bound [s] avoids artificially high percentages on low-count
    queries: [s] is the 10th percentile of the workload's true counts,
    floored at 10.  Reported numbers are percentages. *)

val sanity_bound : int array -> float
(** [sanity_bound true_counts] = [max 10 (10th percentile)].  Raises
    [Invalid_argument] on an empty workload. *)

val error_percent : sanity:float -> truth:int -> estimate:float -> float
(** One query's error, in percent. *)

val average_percent : sanity:float -> (int * float) array -> float
(** Mean error over [(truth, estimate)] pairs, in percent. *)

val cdf : sanity:float -> (int * float) array -> (float * float) list
(** Empirical CDF of per-query errors (percent, cumulative fraction),
    the series plotted in Fig. 8. *)
