(** Query workload generation (§5.1).

    {e Positive} workloads hold occurring queries of a fixed size, obtained
    by sampling connected subtrees of the data tree (the paper enumerates
    all occurring patterns per level and samples when a level is too
    large — sampling connected subsets is the scalable equivalent and draws
    from exactly the same population).  Every query carries its exact
    selectivity, computed by full twig matching.

    {e Negative} workloads mutate positive queries by replacing node labels
    with labels drawn proportionally to their document frequency — frequent
    labels replace more often, maximizing the chance of a plausible-looking
    but non-occurring query — and keep only mutants with true selectivity
    zero. *)

type query = { twig : Tl_twig.Twig.t; truth : int }

type t = {
  size : int;  (** number of twig nodes per query *)
  queries : query array;
  sanity : float;  (** this workload's sanity bound *)
}

val positive :
  seed:int -> Tl_twig.Match_count.ctx -> size:int -> count:int -> t
(** Up to [count] distinct occurring queries of [size] nodes (fewer when the
    document does not have that many distinct patterns reachable within the
    attempt budget).  Raises [Invalid_argument] when [size < 1] or
    [count < 1]. *)

val positive_sweep :
  seed:int -> Tl_twig.Match_count.ctx -> sizes:int list -> count:int -> t list
(** One positive workload per size. *)

val negative :
  seed:int -> Tl_twig.Match_count.ctx -> base:t -> count:int -> t
(** Zero-selectivity mutants of [base]'s queries.  The result's [sanity]
    is inherited from [base] (its own counts are all zero). *)

(** Where a negative query's mutation landed — estimators fail differently
    depending on whether the impossible label sits at the root, inside the
    twig, or on a leaf. *)
type mutation_kind = Relabel_root | Relabel_internal | Relabel_leaf

val mutation_kind_name : mutation_kind -> string

val negative_by_kind :
  seed:int -> Tl_twig.Match_count.ctx -> base:t -> count:int -> (mutation_kind * t) list
(** Like {!negative}, but targeting each node kind separately: up to
    [count] zero-selectivity mutants per kind (kinds the base queries lack
    — e.g. no internal nodes in 2-node twigs — are omitted). *)

val pairs : t -> estimate:(Tl_twig.Twig.t -> float) -> (int * float) array
(** Run an estimator over the workload: [(truth, estimate)] per query. *)
