let sanity_bound true_counts =
  if Array.length true_counts = 0 then invalid_arg "Error_metric.sanity_bound: empty workload";
  let as_floats = Array.map float_of_int true_counts in
  Float.max 10.0 (Tl_util.Stats.percentile as_floats 10.0)

let error_percent ~sanity ~truth ~estimate =
  let truth = float_of_int truth in
  100.0 *. Float.abs (truth -. estimate) /. Float.max sanity truth

let average_percent ~sanity pairs =
  if Array.length pairs = 0 then 0.0
  else begin
    let errors = Array.map (fun (truth, estimate) -> error_percent ~sanity ~truth ~estimate) pairs in
    Tl_util.Stats.mean errors
  end

let cdf ~sanity pairs =
  let errors = Array.map (fun (truth, estimate) -> error_percent ~sanity ~truth ~estimate) pairs in
  Tl_util.Stats.cdf_points errors
