type spec = { label : string; kids : spec list }

let node label kids = { label; kids }

let leaf label = { label; kids = [] }

let path = function
  | [] -> invalid_arg "Tree_builder.path: empty label list"
  | labels ->
    let rec chain = function
      | [] -> assert false
      | [ l ] -> leaf l
      | l :: rest -> node l [ chain rest ]
    in
    chain labels

let rec to_element spec =
  Tl_xml.Xml_dom.element spec.label (List.map (fun k -> Tl_xml.Xml_dom.Element (to_element k)) spec.kids)

let build spec = Data_tree.of_element (to_element spec)

let replicate n s = List.init n (fun _ -> s)
