lib/tree/tree_builder.ml: Data_tree List Tl_xml
