lib/tree/data_tree.mli: Tl_xml
