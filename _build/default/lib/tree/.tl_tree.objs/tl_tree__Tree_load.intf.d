lib/tree/tree_load.mli: Data_tree
