lib/tree/data_tree.ml: Array Hashtbl List Option Tl_util Tl_xml
