lib/tree/tree_load.ml: Array Data_tree Tl_xml
