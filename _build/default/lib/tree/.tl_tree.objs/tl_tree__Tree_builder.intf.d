lib/tree/tree_builder.mli: Data_tree Tl_xml
