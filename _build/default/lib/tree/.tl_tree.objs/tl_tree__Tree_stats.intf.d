lib/tree/tree_stats.mli: Data_tree
