lib/tree/tree_stats.ml: Array Data_tree List Printf
