(** Programmatic construction of data trees.

    Tests and the worked examples (e.g. the paper's Fig. 11 document) build
    trees directly rather than going through XML text. *)

type spec
(** A tree shape: a label plus child specs. *)

val node : string -> spec list -> spec

val leaf : string -> spec

val path : string list -> spec
(** [path [a; b; c]] is the chain a/b/c.  Raises [Invalid_argument] on an
    empty list. *)

val build : spec -> Data_tree.t
(** Materialize the spec as a data tree. *)

val to_element : spec -> Tl_xml.Xml_dom.element
(** The same shape as a DOM element (no attributes, no text). *)

val replicate : int -> spec -> spec list
(** [replicate n s] is [n] copies of [s], for building fan-outs. *)
