module Xml_sax = Tl_xml.Xml_sax

(* Growable preorder arrays fed by Start/End element events; everything
   else in the stream is ignored. *)
type builder = {
  mutable tags : string array;
  mutable parents : int array;
  mutable count : int;
  mutable stack : int list;
}

let push b tag parent =
  if b.count >= Array.length b.tags then begin
    let capacity = max 64 (2 * Array.length b.tags) in
    let tags = Array.make capacity "" in
    let parents = Array.make capacity (-1) in
    Array.blit b.tags 0 tags 0 b.count;
    Array.blit b.parents 0 parents 0 b.count;
    b.tags <- tags;
    b.parents <- parents
  end;
  b.tags.(b.count) <- tag;
  b.parents.(b.count) <- parent;
  b.count <- b.count + 1

let handler b event =
  match event with
  | Xml_sax.Start_element (tag, _) ->
    let parent = match b.stack with [] -> -1 | top :: _ -> top in
    let id = b.count in
    push b tag parent;
    b.stack <- id :: b.stack
  | Xml_sax.End_element _ -> (
    match b.stack with
    | _ :: rest -> b.stack <- rest
    | [] -> () (* unreachable: the SAX layer rejects unbalanced close tags *))
  | Xml_sax.Declaration _ | Xml_sax.Text _ | Xml_sax.Comment _ | Xml_sax.Pi _ -> ()

let finish b =
  Data_tree.of_preorder ~tags:(Array.sub b.tags 0 b.count) ~parents:(Array.sub b.parents 0 b.count)

let of_string input =
  let b = { tags = [||]; parents = [||]; count = 0; stack = [] } in
  Xml_sax.parse_string input (handler b);
  finish b

let of_file path =
  let b = { tags = [||]; parents = [||]; count = 0; stack = [] } in
  Xml_sax.parse_file path (handler b);
  finish b
