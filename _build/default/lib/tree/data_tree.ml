type node = int
type label = int

type t = {
  interner : Tl_util.Interner.t;
  labels : label array;
  parents : node array;  (* -1 for the root *)
  children : node array array;  (* document order *)
  children_sorted : node array array;  (* sorted by (label, document order) *)
  by_label : node array array;  (* label -> nodes in preorder *)
  edge_pairs : (label * label, unit) Hashtbl.t;
  subtree_sizes : int array;
}

(* --- construction ------------------------------------------------------ *)

let count_element_nodes root_el =
  (* Iterative to be safe on very deep documents. *)
  let count = ref 0 in
  let stack = ref [ root_el ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | el :: rest ->
      stack := rest;
      incr count;
      List.iter
        (fun child ->
          match child with
          | Tl_xml.Xml_dom.Element e -> stack := e :: !stack
          | Tl_xml.Xml_dom.Text _ | Tl_xml.Xml_dom.Comment _ | Tl_xml.Xml_dom.Pi _ -> ())
        el.Tl_xml.Xml_dom.children
  done;
  !count

(* Shared construction tail: derive the sorted-children, by-label, and
   edge-pair indices from the core arrays. *)
let assemble interner labels parents children =
  let n = Array.length labels in
  let children_sorted =
    Array.map
      (fun kids ->
        let sorted = Array.copy kids in
        Array.sort (fun a b -> compare (labels.(a), a) (labels.(b), b)) sorted;
        sorted)
      children
  in
  let nlabels = Tl_util.Interner.size interner in
  let by_label_counts = Array.make nlabels 0 in
  Array.iter (fun l -> by_label_counts.(l) <- by_label_counts.(l) + 1) labels;
  let by_label = Array.init nlabels (fun l -> Array.make by_label_counts.(l) 0) in
  let fill = Array.make nlabels 0 in
  for v = 0 to n - 1 do
    let l = labels.(v) in
    by_label.(l).(fill.(l)) <- v;
    fill.(l) <- fill.(l) + 1
  done;
  let edge_pairs = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let p = parents.(v) in
    if p >= 0 then Hashtbl.replace edge_pairs (labels.(p), labels.(v)) ()
  done;
  (* Preorder ids make each subtree a contiguous range; sizes accumulate in
     one reverse sweep. *)
  let subtree_sizes = Array.make n 1 in
  for v = n - 1 downto 1 do
    subtree_sizes.(parents.(v)) <- subtree_sizes.(parents.(v)) + subtree_sizes.(v)
  done;
  { interner; labels; parents; children; children_sorted; by_label; edge_pairs; subtree_sizes }

let of_element root_el =
  let n = count_element_nodes root_el in
  let interner = Tl_util.Interner.create () in
  let labels = Array.make n 0 in
  let parents = Array.make n (-1) in
  let children = Array.make n [||] in
  (* Preorder assignment with an explicit stack of (element, parent id).
     A work queue would break preorder; the stack preserves it by pushing
     children reversed. *)
  let next_id = ref 0 in
  let stack = ref [ (root_el, -1) ] in
  let child_acc : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (el, parent_id) :: rest ->
      stack := rest;
      let id = !next_id in
      incr next_id;
      labels.(id) <- Tl_util.Interner.intern interner el.Tl_xml.Xml_dom.tag;
      parents.(id) <- parent_id;
      if parent_id >= 0 then begin
        let existing = Option.value ~default:[] (Hashtbl.find_opt child_acc parent_id) in
        Hashtbl.replace child_acc parent_id (id :: existing)
      end;
      let element_children =
        List.filter_map
          (fun child ->
            match child with
            | Tl_xml.Xml_dom.Element e -> Some e
            | Tl_xml.Xml_dom.Text _ | Tl_xml.Xml_dom.Comment _ | Tl_xml.Xml_dom.Pi _ -> None)
          el.Tl_xml.Xml_dom.children
      in
      List.iter (fun e -> stack := (e, id) :: !stack) (List.rev element_children)
  done;
  Hashtbl.iter
    (fun parent kids -> children.(parent) <- Array.of_list (List.rev kids))
    child_acc;
  assemble interner labels parents children

let of_xml (doc : Tl_xml.Xml_dom.t) = of_element doc.root

let of_preorder ~tags ~parents =
  let n = Array.length tags in
  if n = 0 then invalid_arg "Data_tree.of_preorder: empty node sequence";
  if Array.length parents <> n then invalid_arg "Data_tree.of_preorder: length mismatch";
  if parents.(0) <> -1 then invalid_arg "Data_tree.of_preorder: node 0 must be the root";
  for v = 1 to n - 1 do
    if parents.(v) < 0 || parents.(v) >= v then
      invalid_arg "Data_tree.of_preorder: parents must precede children in preorder"
  done;
  let interner = Tl_util.Interner.create () in
  let labels = Array.map (Tl_util.Interner.intern interner) tags in
  let parents = Array.copy parents in
  let fanouts = Array.make n 0 in
  for v = 1 to n - 1 do
    fanouts.(parents.(v)) <- fanouts.(parents.(v)) + 1
  done;
  let children = Array.init n (fun v -> Array.make fanouts.(v) 0) in
  let fill = Array.make n 0 in
  for v = 1 to n - 1 do
    let p = parents.(v) in
    children.(p).(fill.(p)) <- v;
    fill.(p) <- fill.(p) + 1
  done;
  assemble interner labels parents children

(* --- accessors ---------------------------------------------------------- *)

let root _ = 0
let size t = Array.length t.labels
let label t v = t.labels.(v)
let label_name t l = Tl_util.Interner.name t.interner l
let label_of_string t s = Tl_util.Interner.find t.interner s
let label_count t = Tl_util.Interner.size t.interner
let label_names t = Tl_util.Interner.names t.interner
let intern_label t s = Tl_util.Interner.intern t.interner s
let parent t v = if t.parents.(v) < 0 then None else Some t.parents.(v)
let children t v = t.children.(v)
let fanout t v = Array.length t.children.(v)

(* Locate the range [lo, hi) of [l]-labeled entries in the sorted children
   array of [v]. *)
let label_range t v l =
  let sorted = t.children_sorted.(v) in
  let n = Array.length sorted in
  let rec lower lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.labels.(sorted.(mid)) < l then lower (mid + 1) hi else lower lo mid
  in
  let rec upper lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.labels.(sorted.(mid)) <= l then upper (mid + 1) hi else upper lo mid
  in
  let lo = lower 0 n in
  let hi = upper lo n in
  (sorted, lo, hi)

let children_with_label t v l =
  let sorted, lo, hi = label_range t v l in
  Array.sub sorted lo (hi - lo)

let count_children_with_label t v l =
  let _, lo, hi = label_range t v l in
  hi - lo

let fold_children_with_label t v l f acc =
  let sorted, lo, hi = label_range t v l in
  let acc = ref acc in
  for i = lo to hi - 1 do
    acc := f !acc sorted.(i)
  done;
  !acc

let nodes_with_label t l = if l < 0 || l >= Array.length t.by_label then [||] else t.by_label.(l)

let subtree_end t v = v + t.subtree_sizes.(v)

let is_descendant t w ~ancestor = w > ancestor && w < subtree_end t ancestor

(* Range [lo, hi) of entries in the preorder-sorted [arr] with values in
   (v, subtree_end v). *)
let descendant_range t v arr =
  let n = Array.length arr in
  let stop = subtree_end t v in
  let rec lower lo hi = (* first index with arr.(i) > v *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) <= v then lower (mid + 1) hi else lower lo mid
  in
  let rec upper lo hi = (* first index with arr.(i) >= stop *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) < stop then upper (mid + 1) hi else upper lo mid
  in
  let lo = lower 0 n in
  let hi = upper lo n in
  (lo, hi)

let descendants_with_label t v l =
  let arr = nodes_with_label t l in
  let lo, hi = descendant_range t v arr in
  Array.sub arr lo (hi - lo)

let fold_descendants_with_label t v l f acc =
  let arr = nodes_with_label t l in
  let lo, hi = descendant_range t v arr in
  let acc = ref acc in
  for i = lo to hi - 1 do
    acc := f !acc arr.(i)
  done;
  !acc

let edge_label_pairs t = Hashtbl.fold (fun pair () acc -> pair :: acc) t.edge_pairs []

let has_edge_labels t lp lc = Hashtbl.mem t.edge_pairs (lp, lc)

let postorder t =
  let n = size t in
  let order = Array.make n 0 in
  let next = ref 0 in
  (* Preorder ids guarantee children have larger ids than parents, so a
     reverse sweep that emits a node after all its descendants is simply
     decreasing id order... which is NOT postorder.  Use an explicit
     two-phase stack instead. *)
  let stack = ref [ (0, false) ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (v, expanded) :: rest ->
      stack := rest;
      if expanded then begin
        order.(!next) <- v;
        incr next
      end
      else begin
        stack := (v, true) :: !stack;
        let kids = t.children.(v) in
        for i = Array.length kids - 1 downto 0 do
          stack := (kids.(i), false) :: !stack
        done
      end
  done;
  order

let iter_nodes t f =
  for v = 0 to size t - 1 do
    f v
  done

let depth t =
  let n = size t in
  let depths = Array.make n 1 in
  let deepest = ref 1 in
  (* Preorder ids: parents precede children, so one forward pass works. *)
  for v = 1 to n - 1 do
    depths.(v) <- depths.(t.parents.(v)) + 1;
    if depths.(v) > !deepest then deepest := depths.(v)
  done;
  !deepest
