(** The rooted node-labeled data tree (the paper's [T = (V_D, E_D)], §2.1).

    This is the structure every other layer works over: the exact matcher,
    the lattice miner, and the TreeSketches builder all traverse it.  Nodes
    are dense integer ids in preorder (the root is 0); labels are interned
    element tags.  Values (text) are not modeled, following the paper.

    The representation is array-backed and immutable after construction.
    Each node additionally keeps its children sorted by label so that
    "children of [v] labeled [l]" — the hot query of every counting
    algorithm here — runs in [O(log fanout + answers)]. *)

type t

type node = int
(** Dense node id; [0 <= id < size t]. *)

type label = int
(** Interned label id; [0 <= label < label_count t]. *)

val of_xml : Tl_xml.Xml_dom.t -> t
(** Build from a parsed document, dropping text, comments, and processing
    instructions.  Attribute structure is ignored (tags only), as in the
    paper's data model. *)

val of_element : Tl_xml.Xml_dom.element -> t

val of_preorder : tags:string array -> parents:int array -> t
(** Build from a preorder node sequence: node [i] has tag [tags.(i)] and
    parent [parents.(i)], with [parents.(0) = -1] and [0 <= parents.(i) < i]
    for every other node; sibling order is index order.  This is the
    streaming construction path ({!Tl_tree.Tree_load} feeds it from SAX
    events without materializing a DOM).  Raises [Invalid_argument] on
    malformed input (length mismatch, empty, bad parent indices). *)

val root : t -> node

val size : t -> int
(** Number of nodes. *)

val label : t -> node -> label

val label_name : t -> label -> string

val label_of_string : t -> string -> label option
(** [None] when the tag never occurs in the document. *)

val label_count : t -> int
(** Number of distinct labels. *)

val label_names : t -> string array
(** All tag names indexed by label id (includes any extra labels added with
    {!intern_label}). *)

val intern_label : t -> string -> label
(** Id for the tag, allocating a fresh one if the tag does not occur in the
    document.  Fresh ids have no occurrences ([nodes_with_label] returns
    [[||]]); they exist so summaries over a wider label space (e.g. after
    incremental maintenance across documents) can share this tree's ids. *)

val parent : t -> node -> node option
(** [None] for the root. *)

val children : t -> node -> node array
(** Children in document order.  The returned array is owned by the tree;
    callers must not mutate it. *)

val fanout : t -> node -> int

val children_with_label : t -> node -> label -> node array
(** Fresh array of the children of [v] carrying [l], in document order. *)

val count_children_with_label : t -> node -> label -> int

val fold_children_with_label : t -> node -> label -> ('a -> node -> 'a) -> 'a -> 'a
(** Fold without allocating the answer array. *)

val nodes_with_label : t -> label -> node array
(** All nodes labeled [l], in preorder.  Owned by the tree; do not mutate. *)

val edge_label_pairs : t -> (label * label) list
(** Distinct (parent label, child label) pairs occurring in the tree —
    the occurring 2-twigs, which seed candidate generation in the miner. *)

val has_edge_labels : t -> label -> label -> bool
(** [has_edge_labels t lp lc] is true when some [lp]-labeled node has an
    [lc]-labeled child. *)

val subtree_end : t -> node -> node
(** Nodes are preorder ids, so the subtree rooted at [v] is exactly the
    contiguous id range [[v, subtree_end t v)].  This is the classic region
    encoding: [w] is a descendant of [v] iff [v < w < subtree_end t v]. *)

val is_descendant : t -> node -> ancestor:node -> bool
(** Strict descendant test via the region encoding. *)

val descendants_with_label : t -> node -> label -> node array
(** Strict descendants of [v] carrying [l], in preorder (fresh array). *)

val fold_descendants_with_label : t -> node -> label -> ('a -> node -> 'a) -> 'a -> 'a
(** Fold over the same set without allocating it. *)

val postorder : t -> node array
(** Nodes in postorder (children before parents), for bottom-up DPs. *)

val iter_nodes : t -> (node -> unit) -> unit
(** Iterate all nodes in preorder. *)

val depth : t -> int
(** Height of the tree in nodes (root alone = 1). *)
