type t = {
  nodes : int;
  distinct_labels : int;
  depth : int;
  max_fanout : int;
  mean_fanout : float;
  leaves : int;
  edge_label_pairs : int;
}

let compute tree =
  let n = Data_tree.size tree in
  let max_fanout = ref 0 in
  let internal = ref 0 in
  let internal_child_sum = ref 0 in
  let leaves = ref 0 in
  Data_tree.iter_nodes tree (fun v ->
      let f = Data_tree.fanout tree v in
      if f = 0 then incr leaves
      else begin
        incr internal;
        internal_child_sum := !internal_child_sum + f
      end;
      if f > !max_fanout then max_fanout := f);
  {
    nodes = n;
    distinct_labels = Data_tree.label_count tree;
    depth = Data_tree.depth tree;
    max_fanout = !max_fanout;
    mean_fanout =
      (if !internal = 0 then 0.0 else float_of_int !internal_child_sum /. float_of_int !internal);
    leaves = !leaves;
    edge_label_pairs = List.length (Data_tree.edge_label_pairs tree);
  }

let label_histogram tree =
  let counts =
    List.init (Data_tree.label_count tree) (fun l ->
        (Data_tree.label_name tree l, Array.length (Data_tree.nodes_with_label tree l)))
  in
  List.sort (fun (_, a) (_, b) -> compare b a) counts

let fanout_of_label tree tag =
  match Data_tree.label_of_string tree tag with
  | None -> 0.0
  | Some l ->
    let nodes = Data_tree.nodes_with_label tree l in
    if Array.length nodes = 0 then 0.0
    else begin
      let total = Array.fold_left (fun acc v -> acc + Data_tree.fanout tree v) 0 nodes in
      float_of_int total /. float_of_int (Array.length nodes)
    end

let pp s =
  Printf.sprintf
    "nodes=%d labels=%d depth=%d max_fanout=%d mean_fanout=%.2f leaves=%d edge_pairs=%d" s.nodes
    s.distinct_labels s.depth s.max_fanout s.mean_fanout s.leaves s.edge_label_pairs
