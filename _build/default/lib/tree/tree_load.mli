(** Streaming construction of data trees from XML.

    Builds the tree directly from SAX events ({!Tl_xml.Xml_sax}) — element
    tags and nesting only — without materializing a DOM.  Produces exactly
    the same tree as [Data_tree.of_xml (Xml_dom.parse_file path)] (tested),
    at a fraction of the peak memory on text-heavy documents. *)

val of_string : string -> Data_tree.t
(** Raises {!Tl_xml.Xml_error.Parse_error} on malformed input. *)

val of_file : string -> Data_tree.t
