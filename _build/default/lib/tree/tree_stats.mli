(** Structural statistics of a data tree.

    Backs Table 1 (dataset characteristics) and sanity reporting in the
    benchmark harness. *)

type t = {
  nodes : int;
  distinct_labels : int;
  depth : int;
  max_fanout : int;
  mean_fanout : float;  (** over internal nodes only *)
  leaves : int;
  edge_label_pairs : int;  (** distinct (parent label, child label) pairs *)
}

val compute : Data_tree.t -> t

val label_histogram : Data_tree.t -> (string * int) list
(** Occurrences per label, most frequent first. *)

val fanout_of_label : Data_tree.t -> string -> float
(** Mean fanout of nodes carrying the given tag; 0 when the tag is absent. *)

val pp : t -> string
