(** Text (de)serialization of lattice summaries.

    The format is line-oriented and self-contained: it embeds the label
    names so a summary written against one document can be reloaded and
    re-keyed against any interner.

    {v
    treelattice-summary v1 k=4 complete=true labels=3
    a
    b
    c
    0(1,2) 42
    ...
    v} *)

val save : names:string array -> Summary.t -> string
(** [names.(l)] must be the tag for label id [l] as used in the summary's
    twigs. *)

val save_file : names:string array -> string -> Summary.t -> unit

exception Format_error of string

val load : ?intern:(string -> int) -> string -> Summary.t * string array
(** Parse a serialized summary.  Label ids in the result are assigned by
    [intern] applied to each embedded name (defaulting to the file's own
    0..n-1 numbering); the returned array maps the {e file's} label order to
    names.  Raises {!Format_error} on malformed input. *)

val load_file : ?intern:(string -> int) -> string -> Summary.t * string array
