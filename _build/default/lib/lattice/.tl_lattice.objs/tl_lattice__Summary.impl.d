lib/lattice/summary.ml: Array Hashtbl List String Tl_mining Tl_twig
