lib/lattice/summary.mli: Tl_mining Tl_tree Tl_twig
