lib/lattice/summary_io.ml: Array Buffer List Printf String Summary Tl_twig
