lib/lattice/summary_io.mli: Summary
