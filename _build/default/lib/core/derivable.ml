module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary

let prune ?(scheme = Estimator.Recursive) summary ~delta =
  if delta < 0.0 then invalid_arg "Derivable.prune: delta must be >= 0";
  let k = Summary.k summary in
  let kept = ref (Summary.level summary 1 @ Summary.level summary 2) in
  let pruned_any = ref false in
  for size = 3 to k do
    (* Estimate against the pruned summary built so far (marked incomplete
       so misses decompose rather than read as zero). *)
    let so_far = Summary.of_patterns ~k ~complete:false !kept in
    List.iter
      (fun (twig, count) ->
        let estimated = Estimator.estimate so_far scheme twig in
        let err = Float.abs (float_of_int count -. estimated) /. float_of_int (max count 1) in
        (* The small epsilon absorbs floating-point noise so that exactly
           derivable patterns register as 0-derivable. *)
        if err > delta +. 1e-9 then kept := (twig, count) :: !kept else pruned_any := true)
      (Summary.level summary size)
  done;
  Summary.of_patterns ~k ~complete:(Summary.is_complete summary && not !pruned_any) !kept

let savings ?scheme summary ~delta =
  let before = Summary.memory_bytes summary in
  let after = Summary.memory_bytes (prune ?scheme summary ~delta) in
  (before, after)
