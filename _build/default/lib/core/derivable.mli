(** δ-derivable pattern pruning (§4.3, Fig. 6).

    A pattern is δ-derivable when the estimate TreeLattice would produce for
    it {e without} its stored count is within relative error δ of its true
    count (Definition 2).  Such patterns add nothing to estimation quality
    and can be dropped to free summary space — losslessly when δ = 0
    (Lemma 5), or trading accuracy for space when δ > 0.

    Pruning proceeds level by level from size 3 upward, always estimating
    against the summary kept {e so far}, exactly as in Fig. 6; levels 1 and
    2 are never pruned (they anchor the decomposition recursion). *)

val prune :
  ?scheme:Estimator.scheme -> Tl_lattice.Summary.t -> delta:float -> Tl_lattice.Summary.t
(** [prune summary ~delta] with [delta] a relative-error tolerance
    (0.1 = 10%).  Raises [Invalid_argument] when [delta < 0].  The result
    is marked incomplete unless nothing was pruned, so estimators fall back
    to decomposition on misses.

    [scheme] (default [Recursive]) is the estimator derivability is judged
    against; Lemma 5's losslessness at [delta = 0] holds exactly when later
    estimation uses the {e same} scheme — a pattern that is derivable under
    one decomposition order need not be under another. *)

val savings :
  ?scheme:Estimator.scheme -> Tl_lattice.Summary.t -> delta:float -> int * int
(** [(bytes_before, bytes_after)] of pruning, for Fig. 10(a)/(c). *)
