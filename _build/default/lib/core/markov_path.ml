module Twig = Tl_twig.Twig
module Summary = Tl_lattice.Summary

let path_count summary labels =
  match Summary.find summary (Twig.of_path labels) with
  | Some c -> float_of_int c
  | None -> if Summary.is_complete summary then 0.0 else Estimator.estimate summary Recursive (Twig.of_path labels)

let rec take n = function [] -> [] | _ when n = 0 -> [] | x :: rest -> x :: take (n - 1) rest

let rec drop n xs = if n <= 0 then xs else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest

let estimate summary labels =
  (match labels with [] -> invalid_arg "Markov_path.estimate: empty path" | _ -> ());
  let m = Summary.k summary in
  let n = List.length labels in
  if n <= m then path_count summary labels
  else begin
    let window i len = take len (drop i labels) in
    let first = path_count summary (window 0 m) in
    let rec go i acc =
      if i > n - m then acc
      else if acc = 0.0 then 0.0
      else begin
        let num = path_count summary (window i m) in
        let den = path_count summary (window i (m - 1)) in
        if den <= 0.0 then 0.0 else go (i + 1) (acc *. num /. den)
      end
    in
    go 1 first
  end

let estimate_twig summary twig =
  Option.map (estimate summary) (Twig.path_labels twig)
