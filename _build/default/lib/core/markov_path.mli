(** Markov-model path selectivity estimation (§3.4, Lemma 4).

    For a path query [l1/l2/.../ln] and an [m]-lattice, the classic Markov
    estimator of Lore / Markov tables / XPathLearner is

    {v
      f(l1..lm) * prod_{i=2}^{n-m+1} f(li..l(i+m-1)) / f(li..l(i+m-2))
    v}

    Lemma 4 proves both decomposition schemes reduce to exactly this formula
    on path queries; this module implements the formula directly so the
    equivalence can be checked (and so path queries can be answered without
    general twig machinery). *)

val estimate : Tl_lattice.Summary.t -> int list -> float
(** [estimate summary labels] for the root-to-leaf label sequence of a path
    query.  Raises [Invalid_argument] on an empty list.  Paths no longer
    than the lattice depth are direct lookups. *)

val estimate_twig : Tl_lattice.Summary.t -> Tl_twig.Twig.t -> float option
(** [None] when the twig is not a path. *)
