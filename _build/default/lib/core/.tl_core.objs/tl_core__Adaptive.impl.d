lib/core/adaptive.ml: Estimator Hashtbl Tl_lattice Tl_twig Treelattice
