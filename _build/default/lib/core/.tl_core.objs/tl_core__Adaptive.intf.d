lib/core/adaptive.mli: Estimator Tl_twig Treelattice
