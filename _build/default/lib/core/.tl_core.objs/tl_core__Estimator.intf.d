lib/core/estimator.mli: Tl_lattice Tl_twig
