lib/core/treelattice.mli: Estimator Tl_lattice Tl_tree Tl_twig
