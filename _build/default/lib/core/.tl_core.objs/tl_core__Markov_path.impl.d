lib/core/markov_path.ml: Estimator List Option Tl_lattice Tl_twig
