lib/core/derivable.ml: Estimator Float List Tl_lattice Tl_twig
