lib/core/estimator.ml: Array Float Hashtbl List Printf Tl_lattice Tl_twig Tl_util
