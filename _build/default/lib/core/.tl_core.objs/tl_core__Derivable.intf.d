lib/core/derivable.mli: Estimator Tl_lattice
