lib/core/treelattice.ml: Array Derivable Estimator List Result Tl_lattice Tl_mining Tl_tree Tl_twig
