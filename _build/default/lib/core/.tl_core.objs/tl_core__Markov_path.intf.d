lib/core/markov_path.mli: Tl_lattice Tl_twig
