(** Enumeration of twig matches — the evaluation-side companion of
    {!Match_count}.

    Selectivity estimation prices a query; this module actually answers it,
    producing the 1-1 mappings of Definition 1.  Used by the CLI's [match]
    command, by examples that display results, and by tests as yet another
    independent check of the counting engine (the number of enumerated
    matches must equal the DP count). *)

val enumerate : ?limit:int -> Tl_tree.Data_tree.t -> Twig.t -> Tl_tree.Data_tree.node array list
(** [enumerate tree twig] lists matches of the (canonicalized) twig; each
    match maps the twig's canonical preorder index to a data node (index 0
    is the twig root).  Matches are produced in document order of the root
    node, at most [limit] of them (default: all).  Raises
    [Invalid_argument] if [limit < 0]. *)

val count_via_enumeration : Tl_tree.Data_tree.t -> Twig.t -> int
(** [List.length (enumerate tree twig)] without building the list — a slow
    but independent oracle for {!Match_count.selectivity}. *)

val is_match : Tl_tree.Data_tree.t -> Twig.t -> Tl_tree.Data_tree.node array -> bool
(** Validate a candidate mapping: labels match, parent-child edges are
    preserved, and the mapping is injective. *)
