(** Textual twig syntax over tag names.

    Queries are written as [tag(child,child(grandchild))], e.g. the paper's
    Fig. 1(b) twig is [laptop(brand,price)].  Whitespace between tokens is
    ignored.  This is the user-facing syntax; {!Twig.t} works over interned
    label ids. *)

type ast = { tag : string; kids : ast list }

exception Syntax_error of int * string
(** Byte offset and reason. *)

val parse : string -> ast
(** Raises {!Syntax_error} on malformed input. *)

val to_string : ast -> string
(** Inverse of {!parse} modulo whitespace. *)

val to_twig : intern:(string -> int option) -> ast -> (Twig.t, string) result
(** Resolve tag names to label ids; [Error tag] names the first tag that
    [intern] does not know.  The twig is canonicalized.  A query with an
    unknown tag trivially has selectivity 0 against the document whose
    interner was used. *)

val of_twig : names:(int -> string) -> Twig.t -> ast

val parse_twig : intern:(string -> int option) -> string -> (Twig.t, string) result
(** [to_twig] after [parse]; syntax errors are reported as [Error]. *)
