type ast = { tag : string; kids : ast list }

exception Syntax_error of int * string

let () =
  Printexc.register_printer (function
    | Syntax_error (off, msg) -> Some (Printf.sprintf "twig syntax error at offset %d: %s" off msg)
    | _ -> None)

let is_tag_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Syntax_error (!pos, msg)) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n' || s.[!pos] = '\r') do
      incr pos
    done
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let scan_tag () =
    skip_ws ();
    let start = !pos in
    while !pos < n && is_tag_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a tag name";
    String.sub s start (!pos - start)
  in
  let rec scan_node () =
    let tag = scan_tag () in
    skip_ws ();
    match peek () with
    | Some '(' ->
      incr pos;
      let kids = scan_kids [] in
      skip_ws ();
      (match peek () with
      | Some ')' ->
        incr pos;
        { tag; kids = List.rev kids }
      | _ -> fail "expected ')'")
    | _ -> { tag; kids = [] }
  and scan_kids acc =
    let child = scan_node () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      incr pos;
      scan_kids (child :: acc)
    | _ -> child :: acc
  in
  let skip_then_node () =
    skip_ws ();
    let t = scan_node () in
    skip_ws ();
    t
  in
  let ast = skip_then_node () in
  if !pos <> n then fail "trailing input after the twig";
  ast

let rec to_string ast =
  match ast.kids with
  | [] -> ast.tag
  | kids -> ast.tag ^ "(" ^ String.concat "," (List.map to_string kids) ^ ")"

let to_twig ~intern ast =
  let rec go ast =
    match intern ast.tag with
    | None -> Error ast.tag
    | Some label ->
      let rec convert_kids acc = function
        | [] -> Ok (List.rev acc)
        | k :: rest -> ( match go k with Ok t -> convert_kids (t :: acc) rest | Error _ as e -> e)
      in
      (match convert_kids [] ast.kids with
      | Ok children -> Ok (Twig.node label children)
      | Error _ as e -> e)
  in
  Result.map Twig.canonicalize (go ast)

let rec of_twig ~names (t : Twig.t) = { tag = names t.label; kids = List.map (of_twig ~names) t.children }

let parse_twig ~intern s =
  match parse s with
  | exception Syntax_error (off, msg) -> Error (Printf.sprintf "syntax error at offset %d: %s" off msg)
  | ast -> ( match to_twig ~intern ast with Ok t -> Ok t | Error tag -> Error (Printf.sprintf "unknown tag %S" tag))
