type t = { label : int; children : t list }

let leaf label = { label; children = [] }

let node label children = { label; children }

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec depth t = 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec width t = List.fold_left (fun acc c -> max acc (width c)) (List.length t.children) t.children

let labels t =
  let rec go acc t = List.fold_left go (t.label :: acc) t.children in
  List.rev (go [] t)

(* Canonicalization sorts children by encoding bottom-up.  To avoid
   re-encoding subtrees quadratically, [canon] returns the encoding along
   with the rebuilt node. *)
let rec canon t =
  let kids = List.map canon t.children in
  let kids = List.sort (fun (_, e1) (_, e2) -> String.compare e1 e2) kids in
  let enc =
    match kids with
    | [] -> string_of_int t.label
    | _ ->
      let inner = String.concat "," (List.map snd kids) in
      string_of_int t.label ^ "(" ^ inner ^ ")"
  in
  ({ label = t.label; children = List.map fst kids }, enc)

let canonicalize t = fst (canon t)

let encode t = snd (canon t)

let is_canonical t = canonicalize t = t

let compare a b = String.compare (encode a) (encode b)

let equal a b = compare a b = 0

let hash t = Hashtbl.hash (encode t)

let decode s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Twig.decode: %s at offset %d in %S" msg !pos s) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let scan_int () =
    let start = !pos in
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      incr pos
    done;
    if !pos = start then fail "expected a label id";
    int_of_string (String.sub s start (!pos - start))
  in
  let rec scan_node () =
    let label = scan_int () in
    match peek () with
    | Some '(' ->
      incr pos;
      let kids = scan_kids [] in
      (match peek () with
      | Some ')' ->
        incr pos;
        { label; children = List.rev kids }
      | _ -> fail "expected ')'")
    | _ -> { label; children = [] }
  and scan_kids acc =
    let child = scan_node () in
    match peek () with
    | Some ',' ->
      incr pos;
      scan_kids (child :: acc)
    | _ -> child :: acc
  in
  let t = scan_node () in
  if !pos <> n then fail "trailing input";
  t

let rec map_labels f t = { label = f t.label; children = List.map (map_labels f) t.children }

let rec is_path t =
  match t.children with [] -> true | [ c ] -> is_path c | _ :: _ :: _ -> false

let path_labels t =
  let rec go acc t =
    match t.children with
    | [] -> Some (List.rev (t.label :: acc))
    | [ c ] -> go (t.label :: acc) c
    | _ :: _ :: _ -> None
  in
  go [] t

let of_path = function
  | [] -> invalid_arg "Twig.of_path: empty label list"
  | labels ->
    let rec build = function
      | [] -> assert false
      | [ l ] -> leaf l
      | l :: rest -> node l [ build rest ]
    in
    build labels

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let automorphisms t =
  (* aut(t) = prod_children aut(c) * prod over groups of identical child
     encodings of (multiplicity!). *)
  let rec go t =
    let kids = List.map (fun c -> (encode c, c)) t.children in
    let kids = List.sort (fun (e1, _) (e2, _) -> String.compare e1 e2) kids in
    let child_product = List.fold_left (fun acc c -> acc * go c) 1 t.children in
    let rec group_mults acc run = function
      | [] -> run :: acc
      | (e1, _) :: ((e2, _) :: _ as rest) when String.equal e1 e2 -> group_mults acc (run + 1) rest
      | _ :: rest -> group_mults (run :: acc) 1 rest
    in
    let mults = match kids with [] -> [] | _ -> group_mults [] 1 kids in
    List.fold_left (fun acc m -> acc * factorial m) child_product mults
  in
  go t

let pp ~names t =
  let buf = Buffer.create 64 in
  let rec go t =
    Buffer.add_string buf (names t.label);
    match t.children with
    | [] -> ()
    | kids ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          go c)
        kids;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.contents buf

(* --- node-indexed view --------------------------------------------------- *)

type indexed = {
  twig : t;
  node_labels : int array;
  parents : int array;
  kids : int list array;
}

let index t =
  let t = canonicalize t in
  let n = size t in
  let node_labels = Array.make n 0 in
  let parents = Array.make n (-1) in
  let kids = Array.make n [] in
  let next = ref 0 in
  let rec walk parent node =
    let id = !next in
    incr next;
    node_labels.(id) <- node.label;
    parents.(id) <- parent;
    if parent >= 0 then kids.(parent) <- kids.(parent) @ [ id ];
    List.iter (walk id) node.children
  in
  walk (-1) t;
  { twig = t; node_labels; parents; kids }

let degree_one ix =
  let n = Array.length ix.node_labels in
  let result = ref [] in
  for i = n - 1 downto 0 do
    let nkids = List.length ix.kids.(i) in
    let deg = if ix.parents.(i) < 0 then nkids else nkids + 1 in
    if deg = 1 then result := i :: !result
  done;
  !result

(* Rebuild the twig from the index arrays, excluding a set of nodes and
   optionally re-rooting. *)
let rebuild ix ~keep ~root =
  let rec build i =
    let children = List.filter_map (fun c -> if keep c then Some (build c) else None) ix.kids.(i) in
    { label = ix.node_labels.(i); children }
  in
  canonicalize (build root)

let remove ix i =
  let n = Array.length ix.node_labels in
  if n <= 1 then invalid_arg "Twig.remove: cannot remove from a single-node twig";
  if i < 0 || i >= n then invalid_arg "Twig.remove: index out of bounds";
  let nkids = List.length ix.kids.(i) in
  let deg = if ix.parents.(i) < 0 then nkids else nkids + 1 in
  if deg <> 1 then invalid_arg "Twig.remove: node is not degree-1";
  if ix.parents.(i) < 0 then begin
    (* Root with a single child: promote the child. *)
    match ix.kids.(i) with
    | [ c ] -> rebuild ix ~keep:(fun j -> j <> i) ~root:c
    | _ -> assert false
  end
  else rebuild ix ~keep:(fun j -> j <> i) ~root:0

let induced ix nodes =
  (match nodes with [] -> invalid_arg "Twig.induced: empty node set" | _ -> ());
  let n = Array.length ix.node_labels in
  let in_set = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Twig.induced: index out of bounds";
      in_set.(i) <- true)
    nodes;
  let root = List.fold_left min (List.hd nodes) nodes in
  List.iter
    (fun i ->
      if i <> root && (ix.parents.(i) < 0 || not in_set.(ix.parents.(i))) then
        invalid_arg "Twig.induced: node set is not connected")
    nodes;
  rebuild ix ~keep:(fun j -> in_set.(j)) ~root

let grow ix i l =
  let n = Array.length ix.node_labels in
  if i < 0 || i >= n then invalid_arg "Twig.grow: index out of bounds";
  let rec build j =
    let children = List.map build ix.kids.(j) in
    let children = if j = i then leaf l :: children else children in
    { label = ix.node_labels.(j); children }
  in
  canonicalize (build 0)
