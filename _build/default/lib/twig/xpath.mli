(** An XPath frontend for twig queries.

    Twig queries are exactly the XPath fragment built from child steps and
    nested structural predicates — the paper's own examples are written in
    this style ([//laptop[brand][price]], Fig. 1).  This module parses that
    fragment and converts it to the twig AST:

    {v
      //open_auction[bidder/increase][seller]
        ==  open_auction(bidder(increase),seller)
      /site/people/person[address/city]
        ==  site(people(person(address(city))))   (anchored)
    v}

    Grammar (whitespace-insensitive):
    {v
      query     ::= ("/" | "//")? step ("/" step)*
      step      ::= name predicate*
      predicate ::= "[" step ("/" step)* "]"
    v}

    A leading [//] (or none) asks for matches anywhere — precisely the twig
    match semantics of Definition 1.  A leading [/] anchors the first step
    at the document root: the conversion records this in {!anchored}; since
    an XML document has a single root element, an anchored query whose
    first tag is the root tag has the same selectivity as the unanchored
    twig, and one whose first tag differs has selectivity 0 — the caller
    decides with {!anchored} and the root tag.

    Out-of-fragment constructs are rejected with a descriptive error:
    descendant axes beyond the leading position ([a//b]), wildcards ([*]),
    attribute axes ([@id]), value predicates ([\[price > 100\]]), and
    positional predicates ([\[1\]]) — the paper's data model has no values
    or order, so these have no meaning against a lattice summary.  For
    {e exact} evaluation of internal descendant axes see {!Dtwig}; for
    value predicates see [Tl_values]. *)

type t = {
  anchored : bool;  (** the query began with a single [/] *)
  ast : Twig_parse.ast;
}

val parse : string -> (t, string) result
(** Parse a query in the fragment above. *)

val to_string : t -> string
(** Render back as XPath (normalized: predicates for every branch). *)

val to_twig : intern:(string -> int option) -> t -> (Twig.t, string) result
(** Resolve tags to label ids, as {!Twig_parse.to_twig}. *)

val of_twig_ast : anchored:bool -> Twig_parse.ast -> t
