lib/twig/twig.mli:
