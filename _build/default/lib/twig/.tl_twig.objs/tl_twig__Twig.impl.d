lib/twig/twig.ml: Array Buffer Hashtbl List Printf String
