lib/twig/match_enum.mli: Tl_tree Twig
