lib/twig/match_count.mli: Tl_tree Twig
