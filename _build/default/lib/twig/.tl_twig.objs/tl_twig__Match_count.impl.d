lib/twig/match_count.ml: Array Hashtbl List Option Tl_tree Twig
