lib/twig/twig_parse.ml: List Printexc Printf Result String Twig
