lib/twig/twig_enum.mli: Tl_tree Tl_util Twig
