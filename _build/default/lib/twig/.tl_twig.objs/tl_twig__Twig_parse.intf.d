lib/twig/twig_parse.mli: Twig
