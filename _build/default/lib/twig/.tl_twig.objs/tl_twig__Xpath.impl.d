lib/twig/xpath.ml: List Printf Result String Twig_parse
