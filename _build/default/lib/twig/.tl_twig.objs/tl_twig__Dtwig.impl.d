lib/twig/dtwig.ml: Array Buffer Hashtbl List Option Printf Result String Tl_tree Twig
