lib/twig/xpath.mli: Twig Twig_parse
