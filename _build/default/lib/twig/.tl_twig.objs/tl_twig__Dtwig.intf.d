lib/twig/dtwig.mli: Tl_tree Twig
