lib/twig/match_enum.ml: Array List Tl_tree Twig
