lib/twig/twig_enum.ml: Array Hashtbl List Tl_tree Tl_util Twig
