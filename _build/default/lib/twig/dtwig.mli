(** Twig queries with descendant edges — evaluation-side support for the
    general twig-query class (e.g. [//open_auction[.//increase]]).

    The paper's estimation framework models parent-child twigs only; this
    module extends the {e evaluation} machinery (exact counting, the other
    half of an approximate-query system) to edges of either axis.  A match
    maps query nodes to distinct data nodes such that a [Child] edge lands
    on a child and a [Descendant] edge lands on a strict descendant of the
    parent's image.

    Estimation of descendant twigs from a parent-child lattice needs
    descendant statistics the paper's summary does not carry; the module
    therefore offers exact counting only. *)

type edge = Child | Descendant

type t = { label : int; children : (edge * t) list }

val leaf : int -> t

val node : int -> (edge * t) list -> t

val of_twig : Twig.t -> t
(** All edges [Child]. *)

val to_twig : t -> Twig.t option
(** [Some] structural twig when every edge is [Child]. *)

val size : t -> int

val canonicalize : t -> t

val equal : t -> t -> bool

val encode : t -> string
(** Canonical key; descendant edges render with a [~] prefix. *)

val pp : names:(int -> string) -> t -> string
(** Syntax: [a(b,//c(d))] — a leading [//] marks a descendant edge. *)

val parse : intern:(string -> int option) -> string -> (t, string) result
(** The twig syntax extended with [//] before a child. *)

val selectivity : Tl_tree.Data_tree.t -> t -> int
(** Exact number of matches (injective within same-parent sibling groups,
    as Definition 1). *)

val selectivity_rooted : Tl_tree.Data_tree.t -> t -> Tl_tree.Data_tree.node -> int
