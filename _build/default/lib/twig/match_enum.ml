module Data_tree = Tl_tree.Data_tree

(* Backtracking over the twig's canonical preorder.  Because preorder
   assigns parents before children, the candidate set for query node [q] is
   always the matching-label children of the already-assigned image of
   [q]'s parent.  Injectivity only needs checking among query siblings: the
   images of distinct query parents are distinct by induction, so their
   child sets are disjoint. *)

let fold_matches tree twig ~init ~f =
  let ix = Twig.index (Twig.canonicalize twig) in
  let qn = Array.length ix.Twig.node_labels in
  let assignment = Array.make qn (-1) in
  let acc = ref init in
  let stop = ref false in
  let rec extend q =
    if !stop then ()
    else if q = qn then begin
      match f !acc (Array.copy assignment) with
      | `Stop updated ->
        acc := updated;
        stop := true
      | `Continue updated -> acc := updated
    end
    else begin
      let parent_image = assignment.(ix.Twig.parents.(q)) in
      let label = ix.Twig.node_labels.(q) in
      Data_tree.fold_children_with_label tree parent_image label
        (fun () candidate ->
          if not !stop then begin
            (* Sibling injectivity: candidate must differ from the images of
               earlier same-parent query nodes. *)
            let clashes = ref false in
            List.iter
              (fun sibling ->
                if sibling < q && assignment.(sibling) = candidate then clashes := true)
              ix.Twig.kids.(ix.Twig.parents.(q));
            if not !clashes then begin
              assignment.(q) <- candidate;
              extend (q + 1);
              assignment.(q) <- -1
            end
          end)
        ()
    end
  in
  let root_label = ix.Twig.node_labels.(0) in
  Array.iter
    (fun v ->
      if not !stop then begin
        assignment.(0) <- v;
        extend 1;
        assignment.(0) <- -1
      end)
    (Data_tree.nodes_with_label tree root_label);
  !acc

let enumerate ?(limit = max_int) tree twig =
  if limit < 0 then invalid_arg "Match_enum.enumerate: negative limit";
  if limit = 0 then []
  else begin
    let matches, _ =
      fold_matches tree twig ~init:([], 0) ~f:(fun (acc, n) assignment ->
          let n = n + 1 in
          if n >= limit then `Stop (assignment :: acc, n) else `Continue (assignment :: acc, n))
    in
    List.rev matches
  end

let count_via_enumeration tree twig =
  fold_matches tree twig ~init:0 ~f:(fun n _ -> `Continue (n + 1))

let is_match tree twig assignment =
  let ix = Twig.index (Twig.canonicalize twig) in
  let qn = Array.length ix.Twig.node_labels in
  Array.length assignment = qn
  && begin
       let ok = ref true in
       for q = 0 to qn - 1 do
         let v = assignment.(q) in
         if v < 0 || v >= Data_tree.size tree then ok := false
         else begin
           if Data_tree.label tree v <> ix.Twig.node_labels.(q) then ok := false;
           let p = ix.Twig.parents.(q) in
           if p >= 0 && Data_tree.parent tree v <> Some assignment.(p) then ok := false
         end
       done;
       (* Global injectivity. *)
       let sorted = Array.copy assignment in
       Array.sort compare sorted;
       for i = 0 to qn - 2 do
         if sorted.(i) = sorted.(i + 1) then ok := false
       done;
       !ok
     end
