type t = { anchored : bool; ast : Twig_parse.ast }

let of_twig_ast ~anchored ast = { anchored; ast }

(* --- rendering ----------------------------------------------------------- *)

let rec render_step (ast : Twig_parse.ast) =
  match ast.kids with
  | [] -> ast.tag
  | [ k ] -> ast.tag ^ "/" ^ render_step k
  | kids -> ast.tag ^ String.concat "" (List.map (fun k -> "[" ^ render_step k ^ "]") kids)

let to_string t = (if t.anchored then "/" else "//") ^ render_step t.ast

(* --- parsing -------------------------------------------------------------- *)

type cursor = { input : string; mutable pos : int }

let fail cur fmt =
  Printf.ksprintf (fun msg -> Error (Printf.sprintf "XPath error at offset %d: %s" cur.pos msg)) fmt

let peek cur = if cur.pos < String.length cur.input then Some cur.input.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.input
    && (match cur.input.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    cur.pos <- cur.pos + 1
  done

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let ( let* ) = Result.bind

let scan_name cur =
  skip_ws cur;
  match peek cur with
  | Some '*' -> fail cur "wildcard steps are not supported: the lattice summary is per-tag"
  | Some '@' -> fail cur "attribute axes are not supported: the data model ignores attributes"
  | Some c when is_name_char c && not (c >= '0' && c <= '9') ->
    let start = cur.pos in
    while cur.pos < String.length cur.input && is_name_char cur.input.[cur.pos] do
      cur.pos <- cur.pos + 1
    done;
    let name = String.sub cur.input start (cur.pos - start) in
    if String.length name >= 4 && String.sub name 0 4 = "text" && peek cur = Some '(' then
      fail cur "text() predicates are not supported: the data model has no values"
    else Ok name
  | Some c when c >= '0' && c <= '9' ->
    fail cur "positional predicates are not supported: twig matching is unordered"
  | Some c -> fail cur "expected a tag name, found %C" c
  | None -> fail cur "expected a tag name, found end of input"

let reject_value_operator cur =
  skip_ws cur;
  match peek cur with
  | Some ('=' | '<' | '>' | '!') ->
    fail cur "value predicates are not supported: the data model has no values"
  | _ -> Ok ()

(* step ('/' step)*, used both for the main spine and inside predicates. *)
let rec scan_relpath cur =
  let* first = scan_step cur in
  scan_tail cur first

and scan_tail cur first =
  skip_ws cur;
  match peek cur with
  | Some '/' ->
    cur.pos <- cur.pos + 1;
    if peek cur = Some '/' then
      fail cur "the descendant axis is only supported at the start of the query"
    else begin
      let* rest = scan_relpath cur in
      Ok { first with Twig_parse.kids = first.Twig_parse.kids @ [ rest ] }
    end
  | _ -> Ok first

and scan_step cur =
  let* tag = scan_name cur in
  let* predicates = scan_predicates cur [] in
  Ok { Twig_parse.tag; kids = predicates }

and scan_predicates cur acc =
  skip_ws cur;
  match peek cur with
  | Some '[' ->
    cur.pos <- cur.pos + 1;
    let* inner = scan_relpath cur in
    let* () = reject_value_operator cur in
    skip_ws cur;
    (match peek cur with
    | Some ']' ->
      cur.pos <- cur.pos + 1;
      scan_predicates cur (inner :: acc)
    | Some c -> fail cur "expected ']', found %C" c
    | None -> fail cur "expected ']', found end of input")
  | _ -> Ok (List.rev acc)

let parse input =
  let cur = { input; pos = 0 } in
  skip_ws cur;
  let* anchored =
    match peek cur with
    | Some '/' ->
      cur.pos <- cur.pos + 1;
      if peek cur = Some '/' then begin
        cur.pos <- cur.pos + 1;
        Ok false
      end
      else Ok true
    | _ -> Ok false
  in
  let* ast = scan_relpath cur in
  skip_ws cur;
  match peek cur with
  | None -> Ok { anchored; ast }
  | Some c -> fail cur "trailing input starting with %C" c

let to_twig ~intern t =
  match Twig_parse.to_twig ~intern t.ast with
  | Ok twig -> Ok twig
  | Error tag -> Error (Printf.sprintf "unknown tag %S" tag)
