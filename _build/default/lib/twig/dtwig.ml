module Data_tree = Tl_tree.Data_tree

type edge = Child | Descendant

type t = { label : int; children : (edge * t) list }

let leaf label = { label; children = [] }

let node label children = { label; children }

let rec of_twig (tw : Twig.t) =
  { label = tw.Twig.label; children = List.map (fun c -> (Child, of_twig c)) tw.Twig.children }

let rec to_twig t =
  let rec convert acc = function
    | [] -> Some (List.rev acc)
    | (Child, c) :: rest -> (
      match to_twig c with Some c' -> convert (c' :: acc) rest | None -> None)
    | (Descendant, _) :: _ -> None
  in
  Option.map (Twig.node t.label) (convert [] t.children)

let rec size t = List.fold_left (fun acc (_, c) -> acc + size c) 1 t.children

let rec canon t =
  let kids = List.map (fun (e, c) -> let c', enc = canon c in ((e, c'), (e, enc))) t.children in
  let kids = List.sort (fun (_, k1) (_, k2) -> compare k1 k2) kids in
  let render (e, enc) = (match e with Child -> "" | Descendant -> "~") ^ enc in
  let enc =
    match kids with
    | [] -> string_of_int t.label
    | _ -> string_of_int t.label ^ "(" ^ String.concat "," (List.map (fun (_, k) -> render k) kids) ^ ")"
  in
  ({ label = t.label; children = List.map fst kids }, enc)

let canonicalize t = fst (canon t)

let encode t = snd (canon t)

let equal a b = String.equal (encode a) (encode b)

let pp ~names t =
  let buf = Buffer.create 64 in
  let rec go t =
    Buffer.add_string buf (names t.label);
    match t.children with
    | [] -> ()
    | kids ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i (e, c) ->
          if i > 0 then Buffer.add_char buf ',';
          if e = Descendant then Buffer.add_string buf "//";
          go c)
        kids;
      Buffer.add_char buf ')'
  in
  go t;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

let parse ~intern input =
  let n = String.length input in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "offset %d: %s" !pos m)) fmt in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let skip_ws () =
    while !pos < n && (input.[!pos] = ' ' || input.[!pos] = '\t' || input.[!pos] = '\n') do
      incr pos
    done
  in
  let is_tag_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
    | _ -> false
  in
  let ( let* ) = Result.bind in
  let rec scan_node () =
    skip_ws ();
    let start = !pos in
    while !pos < n && is_tag_char input.[!pos] do
      incr pos
    done;
    let tag = String.sub input start (!pos - start) in
    if tag = "" then error "expected a tag name"
    else begin
      match intern tag with
      | None -> Error (Printf.sprintf "unknown tag %S" tag)
      | Some label ->
        skip_ws ();
        (match peek () with
        | Some '(' ->
          incr pos;
          let* kids = scan_kids [] in
          skip_ws ();
          (match peek () with
          | Some ')' ->
            incr pos;
            Ok { label; children = List.rev kids }
          | _ -> error "expected ')'")
        | _ -> Ok { label; children = [] })
    end
  and scan_kids acc =
    skip_ws ();
    let edge =
      if !pos + 1 < n && input.[!pos] = '/' && input.[!pos + 1] = '/' then begin
        pos := !pos + 2;
        Descendant
      end
      else Child
    in
    let* child = scan_node () in
    skip_ws ();
    match peek () with
    | Some ',' ->
      incr pos;
      scan_kids ((edge, child) :: acc)
    | _ -> Ok ((edge, child) :: acc)
  in
  let* result = scan_node () in
  skip_ws ();
  if !pos <> n then error "trailing input" else Ok (canonicalize result)

(* --- counting ------------------------------------------------------------------ *)

(* Indexed query: per node, its sibling groups keyed by label; each group
   member carries its edge axis.  Injectivity is enforced within each
   group (which matches Definition 1 exactly for parent-child twigs; for
   descendant twigs it is the standard sibling-distinct semantics —
   same-label query nodes under *different* parents are not compared). *)
type qnode = { qlabel : int; groups : (int * (edge * int) array) array }

let prepare query =
  let query = canonicalize query in
  let nodes = ref [] in
  let next = ref 0 in
  let rec walk q =
    let id = !next in
    incr next;
    let kid_ids = List.map (fun (e, c) -> (e, walk c)) q.children in
    nodes := (id, q, kid_ids) :: !nodes;
    id
  in
  ignore (walk query);
  let n = !next in
  let qnodes = Array.make n { qlabel = 0; groups = [||] } in
  List.iter
    (fun (id, q, kid_ids) ->
      let by_label = Hashtbl.create 4 in
      List.iter2
        (fun (_, c) (e, cid) ->
          let l = c.label in
          Hashtbl.replace by_label l ((e, cid) :: Option.value ~default:[] (Hashtbl.find_opt by_label l)))
        q.children kid_ids;
      let groups =
        Hashtbl.fold (fun l members acc -> (l, Array.of_list (List.rev members)) :: acc) by_label []
      in
      qnodes.(id) <- { qlabel = q.label; groups = Array.of_list groups })
    !nodes;
  qnodes

let run tree query =
  let qnodes = prepare query in
  let qn = Array.length qnodes in
  let memo : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rec node_count v q =
    let key = (v * qn) + q in
    match Hashtbl.find_opt memo key with
    | Some c -> c
    | None ->
      let { groups; _ } = qnodes.(q) in
      let total = ref 1 in
      let gi = ref 0 in
      while !total <> 0 && !gi < Array.length groups do
        let group_label, members = groups.(!gi) in
        total := !total * group_count group_label members v;
        incr gi
      done;
      Hashtbl.replace memo key !total;
      !total
  and group_count group_label members v =
    let m = Array.length members in
    let all_child = Array.for_all (fun (e, _) -> e = Child) members in
    if m = 1 then begin
      let e, q = members.(0) in
      match e with
      | Child ->
        Data_tree.fold_children_with_label tree v group_label
          (fun acc w -> acc + (if Data_tree.label tree w = qnodes.(q).qlabel then node_count w q else 0))
          0
      | Descendant ->
        Data_tree.fold_descendants_with_label tree v group_label
          (fun acc w -> acc + node_count w q)
          0
    end
    else begin
      (* Mask DP over group members; a Child member can only take direct
         children of v. *)
      let full = (1 lsl m) - 1 in
      let ways = Array.make (full + 1) 0 in
      ways.(0) <- 1;
      let absorb w =
        let w_is_child = Data_tree.parent tree w = Some v in
        for mask = full downto 1 do
          let acc = ref ways.(mask) in
          for i = 0 to m - 1 do
            if mask land (1 lsl i) <> 0 then begin
              let e, q = members.(i) in
              if e = Descendant || w_is_child then begin
                let sub = node_count w q in
                if sub <> 0 then acc := !acc + (ways.(mask lxor (1 lsl i)) * sub)
              end
            end
          done;
          ways.(mask) <- !acc
        done
      in
      if all_child then Data_tree.fold_children_with_label tree v group_label (fun () w -> absorb w) ()
      else Data_tree.fold_descendants_with_label tree v group_label (fun () w -> absorb w) ();
      ways.(full)
    end
  in
  (qnodes, node_count)

let selectivity tree query =
  let query = canonicalize query in
  let qnodes, node_count = run tree query in
  Array.fold_left
    (fun acc v -> acc + node_count v 0)
    0
    (Data_tree.nodes_with_label tree qnodes.(0).qlabel)

let selectivity_rooted tree query v =
  let query = canonicalize query in
  let qnodes, node_count = run tree query in
  if Data_tree.label tree v = qnodes.(0).qlabel then node_count v 0 else 0
