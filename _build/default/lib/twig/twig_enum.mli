(** Brute-force subtree enumeration — a test oracle and workload helper.

    [occurrences] enumerates every connected node subset of the data tree
    (each subset is the image of a potential twig match) and tallies them by
    canonical shape.  The injective-match selectivity of a pattern equals
    its subset count times its automorphism count, which gives an
    independent cross-check of both the DP counter and the miner.

    Enumeration is exponential in fan-out; it is intended for the small
    trees used in tests and for sampling-based workload generation, not for
    full datasets. *)

val occurrences : Tl_tree.Data_tree.t -> max_size:int -> (Twig.t * int) list
(** All occurring patterns of size [<= max_size] with their {e subset}
    counts (number of distinct node sets of that shape), sorted by canonical
    encoding.  Raises [Invalid_argument] if [max_size < 1]. *)

val selectivities : Tl_tree.Data_tree.t -> max_size:int -> (Twig.t * int) list
(** Same patterns with injective-match counts
    (subset count x automorphisms). *)

val random_subtree :
  Tl_util.Xorshift.t -> Tl_tree.Data_tree.t -> size:int -> Twig.t option
(** Sample one occurring pattern of exactly [size] nodes by growing a random
    connected node set from a uniformly chosen root.  [None] when the tree
    has no connected subset of that size rooted at the sampled node after a
    bounded number of attempts. *)
