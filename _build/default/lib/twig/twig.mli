(** Twig queries (the paper's [T_Q], §2.1).

    A twig is a rooted unordered node-labeled tree.  Labels are interned
    integers (normally shared with a {!Tl_tree.Data_tree.t}'s interner).
    Twigs are small — queries in the paper's workloads have 4 to 9 nodes —
    so the operations here favour clarity over asymptotics.

    {2 Canonical form}

    Twig matching ignores sibling order, so structurally equal twigs must
    compare equal regardless of how children were listed.  The canonical
    form orders every child list by the children's canonical encodings; the
    encoding (a bracketed string over label ids) is injective on canonical
    twigs and is used as the lattice hash key. *)

type t = { label : int; children : t list }

val leaf : int -> t

val node : int -> t list -> t

val size : t -> int
(** Number of nodes. *)

val depth : t -> int
(** Height in nodes; a single node has depth 1. *)

val width : t -> int
(** Maximum number of children of any node. *)

val labels : t -> int list
(** All labels, in preorder, with repetitions. *)

val canonicalize : t -> t
(** Sort every child list by canonical encoding, bottom-up.  Idempotent. *)

val is_canonical : t -> bool

val encode : t -> string
(** Canonical key: canonicalizes, then prints as e.g. ["3(1,4(2))"]. *)

val decode : string -> t
(** Inverse of {!encode}.  Raises [Invalid_argument] on malformed input.
    The result is canonical iff the input was produced by {!encode}. *)

val compare : t -> t -> int
(** Total order agreeing with structural equality modulo sibling order. *)

val equal : t -> t -> bool

val hash : t -> int

val map_labels : (int -> int) -> t -> t
(** Relabel; the result is {e not} re-canonicalized. *)

val is_path : t -> bool
(** True when every node has at most one child. *)

val path_labels : t -> int list option
(** For a path twig, its labels root-to-leaf. *)

val of_path : int list -> t
(** Build a path twig.  Raises [Invalid_argument] on an empty list. *)

val automorphisms : t -> int
(** Number of root-preserving automorphisms — the product over nodes of the
    factorials of identical-child-subtree multiplicities.  Relates
    injective-match counts to occurrence-subset counts in tests. *)

val pp : names:(int -> string) -> t -> string
(** Render with tag names, e.g. ["a(b,c(d))"]. *)

(** {2 Node-indexed view}

    Decomposition needs to address individual twig nodes.  The indexed view
    exposes the canonical preorder: node 0 is the root, children appear in
    canonical order.  All indices below refer to this preorder. *)

type indexed = private {
  twig : t;  (** the canonical twig the indices refer to *)
  node_labels : int array;
  parents : int array;  (** [-1] for the root *)
  kids : int list array;  (** children, in canonical preorder *)
}

val index : t -> indexed
(** Canonicalizes, then indexes. *)

val degree_one : indexed -> int list
(** Preorder indices of nodes of degree 1: the leaves, plus the root when it
    has exactly one child.  These are the removable nodes of the recursive
    decomposition (§3.2).  For a twig of size >= 2 there are always at least
    two. *)

val remove : indexed -> int -> t
(** [remove ix i] removes the degree-1 node [i]: dropping a leaf, or
    promoting the root's only child when [i] is the root.  The result is
    canonical.  Raises [Invalid_argument] when [i] is not degree-1 or the
    twig has a single node. *)

val induced : indexed -> int list -> t
(** [induced ix nodes] is the subtree induced by the given preorder indices,
    which must be non-empty and connected (contain, for each non-minimal
    node, its parent).  Raises [Invalid_argument] otherwise.  Canonical. *)

val grow : indexed -> int -> int -> t
(** [grow ix i l] attaches a fresh [l]-labeled leaf under node [i];
    canonical result.  This is the miner's extension step. *)
