module Data_tree = Tl_tree.Data_tree
module Twig = Tl_twig.Twig
module Match_count = Tl_twig.Match_count

type twig_count = Twig.t * int

type result = { max_size : int; levels : twig_count list array }

(* Downward closure: a candidate can only occur if every sub-twig obtained
   by dropping one degree-1 node occurred at the previous level. *)
let sub_twigs_occur prev_level candidate =
  let ix = Twig.index candidate in
  List.for_all
    (fun i -> Hashtbl.mem prev_level (Twig.encode (Twig.remove ix i)))
    (Twig.degree_one ix)

let mine ctx ~max_size =
  if max_size < 1 then invalid_arg "Miner.mine: max_size must be >= 1";
  let tree = Match_count.tree ctx in
  let levels = Array.make (max_size + 1) [] in
  (* Level 1: one pattern per occurring label. *)
  let nlabels = Data_tree.label_count tree in
  let level1 = ref [] in
  for l = nlabels - 1 downto 0 do
    let occurrences = Array.length (Data_tree.nodes_with_label tree l) in
    if occurrences > 0 then level1 := (Twig.leaf l, occurrences) :: !level1
  done;
  levels.(1) <- !level1;
  (* Child labels that can extend a node labeled [lp]. *)
  let extensions = Array.make nlabels [] in
  List.iter
    (fun (lp, lc) -> extensions.(lp) <- lc :: extensions.(lp))
    (Data_tree.edge_label_pairs tree);
  Array.iteri (fun lp kids -> extensions.(lp) <- List.sort compare kids) extensions;
  (* Levels 2..max_size by rightmost-style extension of every node. *)
  let prev_table = Hashtbl.create 256 in
  let reset_prev level =
    Hashtbl.reset prev_table;
    List.iter (fun (t, _) -> Hashtbl.replace prev_table (Twig.encode t) ()) level
  in
  let rec grow_level s =
    if s <= max_size then begin
      reset_prev levels.(s - 1);
      let candidates = Hashtbl.create 256 in
      List.iter
        (fun (pattern, _) ->
          let ix = Twig.index pattern in
          Array.iteri
            (fun i lp ->
              List.iter
                (fun lc ->
                  let candidate = Twig.grow ix i lc in
                  let key = Twig.encode candidate in
                  if not (Hashtbl.mem candidates key) then Hashtbl.replace candidates key candidate)
                extensions.(lp))
            ix.Twig.node_labels)
        levels.(s - 1);
      let counted = ref [] in
      Hashtbl.iter
        (fun _ candidate ->
          if s = 2 || sub_twigs_occur prev_table candidate then begin
            let count = Match_count.selectivity ctx candidate in
            if count > 0 then counted := (candidate, count) :: !counted
          end)
        candidates;
      levels.(s) <- List.sort (fun (a, _) (b, _) -> Twig.compare a b) !counted;
      grow_level (s + 1)
    end
  in
  grow_level 2;
  levels.(1) <- List.sort (fun (a, _) (b, _) -> Twig.compare a b) levels.(1);
  { max_size; levels }

let all r = List.concat (Array.to_list r.levels)

let level r s = if s < 1 || s > r.max_size then [] else r.levels.(s)

let patterns_per_level r = Array.init r.max_size (fun i -> List.length r.levels.(i + 1))

let total_patterns r = Array.fold_left (fun acc l -> acc + List.length l) 0 r.levels
