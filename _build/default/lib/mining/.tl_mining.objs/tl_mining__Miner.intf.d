lib/mining/miner.mli: Tl_twig
