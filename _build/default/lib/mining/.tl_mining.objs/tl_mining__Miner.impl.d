lib/mining/miner.ml: Array Hashtbl List Tl_tree Tl_twig
