(** TreeSketches synopsis construction.

    Three phases, following the published design:

    + {e Stable partition.}  Start from the label partition and refine it by
      count-stability — two nodes stay together only if they have the same
      number of children in every child cluster — for a bounded number of
      rounds (full stability explodes on real data; TreeSketches likewise
      clusters {e similar}, not identical, fragments).
    + {e Bottom-up clustering.}  While the synopsis exceeds the memory
      budget, greedily merge the same-label cluster pair whose merge adds
      the least squared-error distortion to the per-cluster child-count
      distributions (sampling candidate pairs to keep each step bounded).
      This clustering is the expensive part — the construction-time gap
      against TreeLattice in Table 3 comes from here.
    + {e Materialization.}  One pass over the document computes cluster
      sizes and average-count edges for the final assignment.

    The distortion metric is evaluated against the phase-1 partition (whose
    per-node child counts are fixed), which keeps merge bookkeeping additive
    and exact. *)

val build :
  ?budget_bytes:int ->
  ?refine_rounds:int ->
  ?candidate_sample:int ->
  ?seed:int ->
  Tl_tree.Data_tree.t ->
  Synopsis.t
(** [build tree] with a memory budget in bytes (default 50 KB, the paper's
    setting).  [refine_rounds] caps count-stability refinement (default 4);
    [candidate_sample] caps merge candidates evaluated per step (default
    64).  The label partition is the coarsest reachable point: if it still
    exceeds the budget, the build stops there (the paper observes exactly
    this on IMDB). *)
