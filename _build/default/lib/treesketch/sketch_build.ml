module Data_tree = Tl_tree.Data_tree
module Xorshift = Tl_util.Xorshift

(* Upper bound on the refined partition size; beyond this, refinement rounds
   stop (the merge phase would just have to undo them). *)
let max_initial_clusters = 8192

(* --- phase 1: count-stability refinement -------------------------------- *)

let refine_partition tree ~rounds =
  let n = Data_tree.size tree in
  let assignment = Array.init n (fun v -> Data_tree.label tree v) in
  let ncl = ref (Data_tree.label_count tree) in
  let round () =
    let signatures = Hashtbl.create (2 * !ncl) in
    let fresh = ref 0 in
    let next = Array.make n 0 in
    for v = 0 to n - 1 do
      let child_counts = Hashtbl.create 8 in
      Array.iter
        (fun c ->
          let cl = assignment.(c) in
          Hashtbl.replace child_counts cl (1 + Option.value ~default:0 (Hashtbl.find_opt child_counts cl)))
        (Data_tree.children tree v);
      let sig_counts = Hashtbl.fold (fun cl cnt acc -> (cl, cnt) :: acc) child_counts [] in
      let signature = (assignment.(v), List.sort compare sig_counts) in
      let id =
        match Hashtbl.find_opt signatures signature with
        | Some id -> id
        | None ->
          let id = !fresh in
          incr fresh;
          Hashtbl.replace signatures signature id;
          id
      in
      next.(v) <- id
    done;
    (next, !fresh)
  in
  let rec iterate r =
    if r > 0 then begin
      let next, count = round () in
      if count > max_initial_clusters then ()
      else if count = !ncl then () (* stable *)
      else begin
        Array.blit next 0 assignment 0 n;
        ncl := count;
        iterate (r - 1)
      end
    end
  in
  iterate rounds;
  (assignment, !ncl)

(* --- phase 2: greedy bottom-up merging ---------------------------------- *)

(* Distortion bookkeeping against the fixed phase-1 partition: for live
   cluster [c], [stats.(c)] maps initial child cluster -> (sum, sum of
   squares) of per-node child counts, over the nodes of [c].  Disjoint node
   sets make these additive under merges. *)
type cluster_stats = { mutable members : int; counts : (int, int * int) Hashtbl.t }

let sse stats =
  let m = float_of_int stats.members in
  Hashtbl.fold
    (fun _ (s, s2) acc -> acc +. (float_of_int s2 -. (float_of_int (s * s) /. m)))
    stats.counts 0.0

let merged_sse a b =
  let m = float_of_int (a.members + b.members) in
  let acc = ref 0.0 in
  Hashtbl.iter
    (fun dst (s, s2) ->
      let s', s2' = Option.value ~default:(0, 0) (Hashtbl.find_opt b.counts dst) in
      let s = s + s' and s2 = s2 + s2' in
      acc := !acc +. (float_of_int s2 -. (float_of_int (s * s) /. m)))
    a.counts;
  Hashtbl.iter
    (fun dst (s, s2) ->
      if not (Hashtbl.mem a.counts dst) then
        acc := !acc +. (float_of_int s2 -. (float_of_int (s * s) /. m)))
    b.counts;
  !acc

let build ?(budget_bytes = 50 * 1024) ?(refine_rounds = 4) ?(candidate_sample = 64) ?(seed = 42)
    tree =
  let n = Data_tree.size tree in
  let assignment, ncl = refine_partition tree ~rounds:refine_rounds in
  (* Initial stats. *)
  let stats =
    Array.init ncl (fun _ -> { members = 0; counts = Hashtbl.create 8 })
  in
  let cluster_label = Array.make ncl (-1) in
  for v = 0 to n - 1 do
    let c = assignment.(v) in
    cluster_label.(c) <- Data_tree.label tree v;
    stats.(c).members <- stats.(c).members + 1;
    let per_child = Hashtbl.create 8 in
    Array.iter
      (fun w ->
        let d = assignment.(w) in
        Hashtbl.replace per_child d (1 + Option.value ~default:0 (Hashtbl.find_opt per_child d)))
      (Data_tree.children tree v);
    Hashtbl.iter
      (fun d cnt ->
        let s, s2 = Option.value ~default:(0, 0) (Hashtbl.find_opt stats.(c).counts d) in
        Hashtbl.replace stats.(c).counts d (s + cnt, s2 + (cnt * cnt)))
      per_child
  done;
  (* Union-find over clusters. *)
  let parent = Array.init ncl (fun c -> c) in
  let rec find c = if parent.(c) = c then c else begin parent.(c) <- find parent.(c); parent.(c) end in
  let live = Hashtbl.create ncl in
  for c = 0 to ncl - 1 do
    Hashtbl.replace live c ()
  done;
  let by_label = Hashtbl.create 64 in
  for c = 0 to ncl - 1 do
    let l = cluster_label.(c) in
    Hashtbl.replace by_label l (c :: Option.value ~default:[] (Hashtbl.find_opt by_label l))
  done;
  let merge a b =
    (* Keep the larger stats table as the survivor. *)
    let a, b =
      if Hashtbl.length stats.(a).counts >= Hashtbl.length stats.(b).counts then (a, b) else (b, a)
    in
    Hashtbl.iter
      (fun d (s, s2) ->
        let s', s2' = Option.value ~default:(0, 0) (Hashtbl.find_opt stats.(a).counts d) in
        Hashtbl.replace stats.(a).counts d (s + s', s2 + s2'))
      stats.(b).counts;
    stats.(a).members <- stats.(a).members + stats.(b).members;
    parent.(b) <- a;
    Hashtbl.remove live b;
    Hashtbl.reset stats.(b).counts
  in
  let current_memory () =
    (* Count distinct (live cluster, merged child cluster) pairs. *)
    let edges = ref 0 in
    let seen = Hashtbl.create 64 in
    Hashtbl.iter
      (fun c () ->
        Hashtbl.reset seen;
        Hashtbl.iter
          (fun d _ ->
            let d = find d in
            if not (Hashtbl.mem seen d) then begin
              Hashtbl.replace seen d ();
              incr edges
            end)
          stats.(c).counts)
      live;
    (8 * Hashtbl.length live) + (12 * !edges)
  in
  let rng = Xorshift.create seed in
  (* Labels that still have >= 2 live clusters, as a sampling pool. *)
  let mergeable_labels () =
    Hashtbl.fold
      (fun l clusters acc ->
        let live_clusters = Tl_util.Prelude.list_unique ~cmp:compare (List.map find (List.filter (Hashtbl.mem live) clusters)) in
        if List.length live_clusters >= 2 then (l, live_clusters) :: acc else acc)
      by_label []
  in
  let rec merge_loop () =
    if current_memory () > budget_bytes then begin
      match mergeable_labels () with
      | [] -> () (* label partition reached; cannot shrink further *)
      | pools ->
        let pools = Array.of_list pools in
        (* Sample candidate same-label pairs, keep the least-distortion one. *)
        let best = ref None in
        for _ = 1 to candidate_sample do
          let _, clusters = pools.(Xorshift.int rng (Array.length pools)) in
          let arr = Array.of_list clusters in
          if Array.length arr >= 2 then begin
            let i = Xorshift.int rng (Array.length arr) in
            let j = Xorshift.int rng (Array.length arr) in
            if i <> j then begin
              let a = arr.(i) and b = arr.(j) in
              let delta = merged_sse stats.(a) stats.(b) -. sse stats.(a) -. sse stats.(b) in
              match !best with
              | Some (_, _, best_delta) when best_delta <= delta -> ()
              | _ -> best := Some (a, b, delta)
            end
          end
        done;
        (match !best with
        | Some (a, b, _) -> merge a b
        | None ->
          (* Sampling missed; force-merge the first available pair. *)
          (match pools.(0) with
          | _, a :: b :: _ -> merge a b
          | _ -> ()));
        merge_loop ()
    end
  in
  merge_loop ();
  (* --- phase 3: materialization ---------------------------------------- *)
  let compact = Hashtbl.create (Hashtbl.length live) in
  let order = Hashtbl.fold (fun c () acc -> c :: acc) live [] |> List.sort compare in
  List.iteri (fun i c -> Hashtbl.replace compact c i) order;
  let nfinal = List.length order in
  let labels = Array.make nfinal 0 in
  let sizes = Array.make nfinal 0 in
  List.iteri
    (fun i c ->
      labels.(i) <- cluster_label.(c);
      sizes.(i) <- stats.(c).members)
    order;
  let edge_sums : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  for v = 0 to n - 1 do
    let src = Hashtbl.find compact (find assignment.(v)) in
    Array.iter
      (fun w ->
        let dst = Hashtbl.find compact (find assignment.(w)) in
        Hashtbl.replace edge_sums (src, dst) (1 + Option.value ~default:0 (Hashtbl.find_opt edge_sums (src, dst))))
      (Data_tree.children tree v)
  done;
  let out_lists = Array.make nfinal [] in
  Hashtbl.iter
    (fun (src, dst) total ->
      let w = float_of_int total /. float_of_int sizes.(src) in
      out_lists.(src) <- (dst, w) :: out_lists.(src))
    edge_sums;
  let out_edges =
    Array.map
      (fun es ->
        let arr = Array.of_list es in
        Array.sort (fun (a, _) (b, _) -> compare a b) arr;
        arr)
      out_lists
  in
  let clusters_of_label = Hashtbl.create 64 in
  Array.iteri
    (fun i l ->
      Hashtbl.replace clusters_of_label l (i :: Option.value ~default:[] (Hashtbl.find_opt clusters_of_label l)))
    labels;
  { Synopsis.labels; sizes; out_edges; clusters_of_label }
