type t = {
  labels : int array;
  sizes : int array;
  out_edges : (int * float) array array;
  clusters_of_label : (int, int list) Hashtbl.t;
}

let cluster_count t = Array.length t.labels

let edge_count t = Array.fold_left (fun acc es -> acc + Array.length es) 0 t.out_edges

let memory_bytes t = (8 * cluster_count t) + (12 * edge_count t)

let node_count t = Array.fold_left ( + ) 0 t.sizes

let weight t a b =
  let edges = t.out_edges.(a) in
  let n = Array.length edges in
  let rec bisect lo hi =
    if lo >= hi then 0.0
    else begin
      let mid = (lo + hi) / 2 in
      let dst, w = edges.(mid) in
      if dst = b then w else if dst < b then bisect (mid + 1) hi else bisect lo mid
    end
  in
  bisect 0 n

let validate t =
  let n = cluster_count t in
  let check_cluster c =
    if t.sizes.(c) <= 0 then Error (Printf.sprintf "cluster %d has non-positive size" c)
    else begin
      let edges = t.out_edges.(c) in
      let rec check_edges i =
        if i >= Array.length edges then Ok ()
        else begin
          let dst, w = edges.(i) in
          if dst < 0 || dst >= n then Error (Printf.sprintf "cluster %d: edge to unknown cluster %d" c dst)
          else if w < 0.0 then Error (Printf.sprintf "cluster %d: negative edge weight" c)
          else if i > 0 && fst edges.(i - 1) >= dst then
            Error (Printf.sprintf "cluster %d: edges not strictly sorted" c)
          else check_edges (i + 1)
        end
      in
      check_edges 0
    end
  in
  let rec check c = if c >= n then Ok () else match check_cluster c with Ok () -> check (c + 1) | e -> e in
  check 0
