module Twig = Tl_twig.Twig

(* Memoized DP over (query node, cluster); query nodes are identified by
   their canonical preorder index. *)
let make_evaluator synopsis twig =
  let ix = Twig.index twig in
  let qn = Array.length ix.Twig.node_labels in
  let ncl = Synopsis.cluster_count synopsis in
  let memo = Array.make (qn * ncl) (-1.0) in
  let rec r q cluster =
    if synopsis.Synopsis.labels.(cluster) <> ix.Twig.node_labels.(q) then 0.0
    else begin
      let key = (q * ncl) + cluster in
      let cached = memo.(key) in
      if cached >= 0.0 then cached
      else begin
        let value =
          List.fold_left
            (fun acc child ->
              if acc = 0.0 then 0.0
              else begin
                let child_label = ix.Twig.node_labels.(child) in
                let candidates =
                  Option.value ~default:[]
                    (Hashtbl.find_opt synopsis.Synopsis.clusters_of_label child_label)
                in
                let expected =
                  List.fold_left
                    (fun sum c' ->
                      let w = Synopsis.weight synopsis cluster c' in
                      if w = 0.0 then sum else sum +. (w *. r child c'))
                    0.0 candidates
                in
                acc *. expected
              end)
            1.0 ix.Twig.kids.(q)
        in
        memo.(key) <- value;
        value
      end
    end
  in
  (ix, r)

let estimate synopsis twig =
  let ix, r = make_evaluator synopsis twig in
  let root_label = ix.Twig.node_labels.(0) in
  let candidates =
    Option.value ~default:[] (Hashtbl.find_opt synopsis.Synopsis.clusters_of_label root_label)
  in
  List.fold_left
    (fun acc c -> acc +. (float_of_int synopsis.Synopsis.sizes.(c) *. r 0 c))
    0.0 candidates

let estimate_rooted synopsis twig cluster =
  let _, r = make_evaluator synopsis twig in
  r 0 cluster
