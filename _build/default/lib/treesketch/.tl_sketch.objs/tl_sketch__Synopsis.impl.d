lib/treesketch/synopsis.ml: Array Hashtbl Printf
