lib/treesketch/sketch_estimate.ml: Array Hashtbl List Option Synopsis Tl_twig
