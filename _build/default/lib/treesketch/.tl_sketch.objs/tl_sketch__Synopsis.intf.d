lib/treesketch/synopsis.mli: Hashtbl
