lib/treesketch/sketch_build.mli: Synopsis Tl_tree
