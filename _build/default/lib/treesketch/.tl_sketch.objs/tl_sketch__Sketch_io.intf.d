lib/treesketch/sketch_io.mli: Synopsis
