lib/treesketch/sketch_build.ml: Array Hashtbl List Option Synopsis Tl_tree Tl_util
