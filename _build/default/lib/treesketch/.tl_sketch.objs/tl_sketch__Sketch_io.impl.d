lib/treesketch/sketch_io.ml: Array Buffer Hashtbl List Option Printf String Synopsis
