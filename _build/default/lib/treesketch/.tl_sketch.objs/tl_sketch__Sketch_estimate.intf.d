lib/treesketch/sketch_estimate.mli: Synopsis Tl_twig
