(** Twig selectivity estimation over a TreeSketches synopsis.

    The expected number of matches of query subtree [q] rooted at a single
    node of cluster [C] is

    {v r(q, C) = prod over children c of q:
                   sum over clusters C' with label(c):
                     w(C -> C') * r(c, C') v}

    and the total estimate is [sum over C with the root's label of
    size(C) * r(root, C)] — the §5.3 example computes exactly this chain of
    average-weight multiplications.  Same-label query siblings multiply
    independently (the synopsis has no joint information), which is one of
    the error sources the paper attributes to TreeSketches. *)

val estimate : Synopsis.t -> Tl_twig.Twig.t -> float
(** Estimated selectivity; 0 when the root label has no cluster. *)

val estimate_rooted : Synopsis.t -> Tl_twig.Twig.t -> int -> float
(** Expected matches rooted at one node of the given cluster. *)
