exception Format_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Format_error msg)) fmt

let save ~names synopsis =
  let buf = Buffer.create 4096 in
  let n = Synopsis.cluster_count synopsis in
  Buffer.add_string buf
    (Printf.sprintf "treesketch-synopsis v1 clusters=%d labels=%d\n" n (Array.length names));
  Array.iter
    (fun name ->
      if String.contains name '\n' then invalid_arg "Sketch_io.save: label contains a newline";
      Buffer.add_string buf name;
      Buffer.add_char buf '\n')
    names;
  for c = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "cluster %d %d %d\n" c synopsis.Synopsis.labels.(c) synopsis.Synopsis.sizes.(c))
  done;
  for c = 0 to n - 1 do
    Array.iter
      (fun (dst, w) -> Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g\n" c dst w))
      synopsis.Synopsis.out_edges.(c)
  done;
  Buffer.contents buf

let save_file ~names path synopsis =
  let oc = open_out_bin path in
  (try output_string oc (save ~names synopsis)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let load text =
  let lines = String.split_on_char '\n' text in
  match lines with
  | [] -> fail "empty input"
  | header :: rest ->
    let nclusters, nlabels =
      match String.split_on_char ' ' header with
      | [ "treesketch-synopsis"; "v1"; c_field; l_field ] ->
        let field name s =
          match String.split_on_char '=' s with
          | [ n; v ] when String.equal n name -> (
            try int_of_string v with _ -> fail "bad %s" name)
          | _ -> fail "malformed header field %S" s
        in
        (field "clusters" c_field, field "labels" l_field)
      | _ -> fail "unrecognized header %S" header
    in
    let rec take n acc = function
      | rest when n = 0 -> (List.rev acc, rest)
      | [] -> fail "truncated label block"
      | line :: rest -> take (n - 1) (line :: acc) rest
    in
    let label_lines, body = take nlabels [] rest in
    let names = Array.of_list label_lines in
    let labels = Array.make nclusters 0 in
    let sizes = Array.make nclusters 0 in
    let edges = Array.make nclusters [] in
    List.iter
      (fun line ->
        if String.length line = 0 then ()
        else begin
          match String.split_on_char ' ' line with
          | [ "cluster"; id; label; size ] -> (
            try
              let id = int_of_string id in
              if id < 0 || id >= nclusters then fail "cluster id %d out of range" id;
              labels.(id) <- int_of_string label;
              sizes.(id) <- int_of_string size
            with Format_error _ as e -> raise e | _ -> fail "malformed cluster line %S" line)
          | [ "edge"; src; dst; w ] -> (
            try
              let src = int_of_string src in
              if src < 0 || src >= nclusters then fail "edge src %d out of range" src;
              edges.(src) <- (int_of_string dst, float_of_string w) :: edges.(src)
            with Format_error _ as e -> raise e | _ -> fail "malformed edge line %S" line)
          | _ -> fail "unrecognized line %S" line
        end)
      body;
    let out_edges =
      Array.map
        (fun es ->
          let arr = Array.of_list es in
          Array.sort (fun (a, _) (b, _) -> compare a b) arr;
          arr)
        edges
    in
    let clusters_of_label = Hashtbl.create 64 in
    Array.iteri
      (fun i l ->
        Hashtbl.replace clusters_of_label l
          (i :: Option.value ~default:[] (Hashtbl.find_opt clusters_of_label l)))
      labels;
    let synopsis = { Synopsis.labels; sizes; out_edges; clusters_of_label } in
    (match Synopsis.validate synopsis with
    | Ok () -> ()
    | Error msg -> fail "invalid synopsis: %s" msg);
    (synopsis, names)

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text =
    try really_input_string ic len
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  load text
