(** Text (de)serialization of TreeSketches synopses.

    Like {!Tl_lattice.Summary_io}, the format embeds the label names so a
    synopsis built against one document can be stored and reloaded:

    {v
    treesketch-synopsis v1 clusters=3 labels=2
    a
    b
    cluster 0 0 4        (id, label id, size)
    edge 0 1 3.25        (src, dst, average count)
    v} *)

val save : names:string array -> Synopsis.t -> string

val save_file : names:string array -> string -> Synopsis.t -> unit

exception Format_error of string

val load : string -> Synopsis.t * string array
(** Raises {!Format_error} on malformed input; the returned synopsis passes
    {!Synopsis.validate}. *)

val load_file : string -> Synopsis.t * string array
