(** TreeSketches-style graph synopsis (the comparison baseline).

    TreeSketches (Polyzotis, Garofalakis, Ioannidis; SIGMOD 2004) summarizes
    an XML tree as a directed graph: each vertex is a cluster of same-label
    elements, each edge [(A, B)] carries the {e average} number of
    B-children per A-node (the structure the paper's Fig. 11(b) depicts).
    The original executable is closed source; this module reimplements the
    published design — see {!Sketch_build} for construction and
    {!Sketch_estimate} for the expected-count estimation — faithfully
    enough to reproduce the comparison axes of the paper's evaluation:
    average-weight multiplication (and its error blow-up on skewed
    fan-outs), clustering-dominated construction cost, and graph-DP
    estimation cost. *)

type t = {
  labels : int array;  (** cluster id -> element label *)
  sizes : int array;  (** cluster id -> number of document nodes *)
  out_edges : (int * float) array array;
      (** cluster id -> (child cluster, average count) sorted by child
          cluster id *)
  clusters_of_label : (int, int list) Hashtbl.t;
}

val cluster_count : t -> int

val edge_count : t -> int

val memory_bytes : t -> int
(** The budget-accounting size: 8 bytes per cluster (label + size), 12 per
    edge (endpoints + weight). *)

val node_count : t -> int
(** Total document nodes summarized (sum of cluster sizes). *)

val weight : t -> int -> int -> float
(** [weight t a b] is the average number of [b]-cluster children per
    [a]-cluster node; 0 when no edge. *)

val validate : t -> (unit, string) result
(** Structural well-formedness (sizes positive, edges sorted, weights
    non-negative); used by tests. *)
