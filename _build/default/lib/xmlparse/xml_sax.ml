type event =
  | Declaration of (string * string) list
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of string * string

(* The scanning mirrors Xml_dom but drives a handler instead of building
   nodes; attribute scanning is shared logic re-expressed over the lexer. *)

let scan_attr_value lx =
  let quote = Xml_lexer.next lx in
  if quote <> '"' && quote <> '\'' then Xml_lexer.error lx "expected a quoted attribute value";
  let buf = Buffer.create 16 in
  let rec loop () =
    let c = Xml_lexer.peek lx in
    if c = quote then Xml_lexer.advance lx
    else if c = '&' then begin
      Buffer.add_string buf (Xml_lexer.scan_reference lx);
      loop ()
    end
    else if c = '<' then Xml_lexer.error lx "'<' not allowed in attribute value"
    else begin
      Buffer.add_char buf c;
      Xml_lexer.advance lx;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let scan_attributes lx =
  let rec loop acc =
    Xml_lexer.skip_whitespace lx;
    let c = Xml_lexer.peek lx in
    if c = '>' || c = '/' || c = '?' then List.rev acc
    else begin
      let name = Xml_lexer.scan_name lx in
      if List.mem_assoc name acc then
        Xml_lexer.error lx (Printf.sprintf "duplicate attribute %S" name);
      Xml_lexer.skip_whitespace lx;
      Xml_lexer.expect lx '=';
      Xml_lexer.skip_whitespace lx;
      let value = scan_attr_value lx in
      loop ((name, value) :: acc)
    end
  in
  loop []

let parse_lexer lx handler =
  Xml_lexer.skip_whitespace lx;
  if Xml_lexer.looking_at lx "<?xml" then begin
    Xml_lexer.expect_string lx "<?xml";
    let attrs = scan_attributes lx in
    Xml_lexer.skip_whitespace lx;
    Xml_lexer.expect_string lx "?>";
    handler (Declaration attrs)
  end;
  let skip_doctype () =
    Xml_lexer.expect_string lx "<!DOCTYPE";
    let rec skip depth =
      match Xml_lexer.next lx with
      | '[' -> skip (depth + 1)
      | ']' -> skip (depth - 1)
      | '>' when depth = 0 -> ()
      | _ -> skip depth
    in
    skip 0
  in
  (* [depth] counts open elements; text accumulates per contiguous run. *)
  let text = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text > 0 then begin
      handler (Text (Buffer.contents text));
      Buffer.clear text
    end
  in
  let depth = ref 0 in
  let seen_root = ref false in
  let rec loop () =
    if Xml_lexer.at_end lx then begin
      if !depth > 0 then Xml_lexer.error lx "unexpected end of input inside an element";
      if not !seen_root then Xml_lexer.error lx "expected a root element"
    end
    else begin
      let c = Xml_lexer.peek lx in
      if c = '<' then begin
        if Xml_lexer.looking_at lx "</" then begin
          flush_text ();
          Xml_lexer.expect_string lx "</";
          let tag = Xml_lexer.scan_name lx in
          Xml_lexer.skip_whitespace lx;
          Xml_lexer.expect lx '>';
          if !depth = 0 then Xml_lexer.error lx (Printf.sprintf "unexpected close tag </%s>" tag);
          decr depth;
          handler (End_element tag);
          loop ()
        end
        else if Xml_lexer.looking_at lx "<!--" then begin
          flush_text ();
          Xml_lexer.expect_string lx "<!--";
          handler (Comment (Xml_lexer.scan_until lx "-->"));
          loop ()
        end
        else if Xml_lexer.looking_at lx "<![CDATA[" then begin
          if !depth = 0 then Xml_lexer.error lx "character data outside the root element";
          Xml_lexer.expect_string lx "<![CDATA[";
          Buffer.add_string text (Xml_lexer.scan_until lx "]]>");
          loop ()
        end
        else if Xml_lexer.looking_at lx "<!DOCTYPE" then begin
          if !seen_root then Xml_lexer.error lx "DOCTYPE after the root element";
          skip_doctype ();
          loop ()
        end
        else if Xml_lexer.looking_at lx "<?" then begin
          flush_text ();
          Xml_lexer.expect_string lx "<?";
          let target = Xml_lexer.scan_name lx in
          Xml_lexer.skip_whitespace lx;
          handler (Pi (target, Xml_lexer.scan_until lx "?>"));
          loop ()
        end
        else begin
          flush_text ();
          if !depth = 0 && !seen_root then Xml_lexer.error lx "content after the root element";
          Xml_lexer.expect lx '<';
          let tag = Xml_lexer.scan_name lx in
          let attrs = scan_attributes lx in
          Xml_lexer.skip_whitespace lx;
          handler (Start_element (tag, attrs));
          seen_root := true;
          if Xml_lexer.looking_at lx "/>" then begin
            Xml_lexer.expect_string lx "/>";
            handler (End_element tag)
          end
          else begin
            Xml_lexer.expect lx '>';
            incr depth
          end;
          loop ()
        end
      end
      else if c = '&' then begin
        if !depth = 0 then Xml_lexer.error lx "character data outside the root element";
        Buffer.add_string text (Xml_lexer.scan_reference lx);
        loop ()
      end
      else begin
        if !depth = 0 then begin
          (* Whitespace between top-level constructs is fine; anything else
             is stray content. *)
          if Xml_lexer.next lx |> fun ch -> not (ch = ' ' || ch = '\t' || ch = '\r' || ch = '\n')
          then Xml_lexer.error lx "content outside the root element"
        end
        else begin
          Buffer.add_char text c;
          Xml_lexer.advance lx
        end;
        loop ()
      end
    end
  in
  loop ()

(* A well-formedness detail the depth counter misses: close tags must match
   the open tag.  Track with a stack wrapper around the handler. *)
let parse_string input handler =
  let lx = Xml_lexer.of_string input in
  let stack = ref [] in
  let checked event =
    (match event with
    | Start_element (tag, _) -> stack := tag :: !stack
    | End_element tag -> (
      match !stack with
      | top :: rest when String.equal top tag -> stack := rest
      | top :: _ ->
        Xml_lexer.error lx (Printf.sprintf "mismatched close tag: expected </%s>, found </%s>" top tag)
      | [] -> Xml_lexer.error lx (Printf.sprintf "unexpected close tag </%s>" tag))
    | Declaration _ | Text _ | Comment _ | Pi _ -> ());
    handler event
  in
  parse_lexer lx checked

let parse_file path handler =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content =
    try really_input_string ic len
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_string content handler

let events_of_string input =
  let events = ref [] in
  parse_string input (fun e -> events := e :: !events);
  List.rev !events
