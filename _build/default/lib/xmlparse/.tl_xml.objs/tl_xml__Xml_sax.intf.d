lib/xmlparse/xml_sax.mli:
