lib/xmlparse/xml_error.mli:
