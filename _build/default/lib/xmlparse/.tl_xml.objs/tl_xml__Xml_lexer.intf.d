lib/xmlparse/xml_lexer.mli: Xml_error
