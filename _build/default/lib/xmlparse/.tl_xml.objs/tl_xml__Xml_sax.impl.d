lib/xmlparse/xml_sax.ml: Buffer List Printf String Xml_lexer
