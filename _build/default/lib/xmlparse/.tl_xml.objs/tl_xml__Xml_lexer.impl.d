lib/xmlparse/xml_lexer.ml: Buffer Printf String Uchar Xml_error
