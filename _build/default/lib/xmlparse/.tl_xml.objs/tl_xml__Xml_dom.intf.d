lib/xmlparse/xml_dom.mli:
