lib/xmlparse/xml_dom.ml: Buffer Hashtbl List Printf String Xml_lexer
