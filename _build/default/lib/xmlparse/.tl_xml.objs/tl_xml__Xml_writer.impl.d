lib/xmlparse/xml_writer.ml: Buffer List String Xml_dom
