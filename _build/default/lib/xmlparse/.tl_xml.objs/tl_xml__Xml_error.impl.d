lib/xmlparse/xml_error.ml: Printexc Printf
