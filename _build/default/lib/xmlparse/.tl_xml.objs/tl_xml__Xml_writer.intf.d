lib/xmlparse/xml_writer.mli: Xml_dom
