(** Character-level cursor over an XML input string.

    The parser in {!Xml_dom} is recursive descent over this cursor; the
    cursor tracks line/column for error reporting and owns the low-level
    scanning primitives (names, whitespace, references). *)

type t

val of_string : string -> t

val position : t -> Xml_error.position

val at_end : t -> bool

val peek : t -> char
(** Current character.  Raises {!Xml_error.Parse_error} at end of input. *)

val peek2 : t -> char option
(** Character after the current one, if any. *)

val advance : t -> unit
(** Consume one character, updating line/column. *)

val next : t -> char
(** [peek] then [advance]. *)

val expect : t -> char -> unit
(** Consume exactly the given character or fail. *)

val expect_string : t -> string -> unit
(** Consume exactly the given literal or fail. *)

val looking_at : t -> string -> bool
(** True when the input at the cursor starts with the literal. *)

val skip_whitespace : t -> unit
(** Consume any run of space, tab, CR, LF. *)

val scan_name : t -> string
(** An XML Name: letters, digits, [-], [_], [.], [:], starting with a letter,
    [_], or [:].  Fails on an empty name. *)

val scan_until : t -> string -> string
(** [scan_until t stop] consumes and returns everything up to (not
    including) the literal [stop], then consumes [stop].  Fails at end of
    input if [stop] never occurs. *)

val scan_reference : t -> string
(** Scan an entity or character reference, cursor on ['&'].  Supports the
    five predefined entities and decimal/hex character references; unknown
    entity names fail. *)

val error : t -> string -> 'a
(** Fail at the current position. *)
