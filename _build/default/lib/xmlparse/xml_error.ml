type position = { line : int; column : int; offset : int }

exception Parse_error of position * string

let error pos msg = raise (Parse_error (pos, msg))

let pp_position { line; column; _ } = Printf.sprintf "line %d, column %d" line column

let () =
  Printexc.register_printer (function
    | Parse_error (pos, msg) -> Some (Printf.sprintf "XML parse error at %s: %s" (pp_position pos) msg)
    | _ -> None)
