(** Errors raised by the XML parser. *)

type position = { line : int; column : int; offset : int }
(** 1-based line and column; 0-based byte offset. *)

exception Parse_error of position * string
(** Malformed input, with the position where parsing failed and a
    human-readable reason. *)

val error : position -> string -> 'a
(** Raise {!Parse_error}. *)

val pp_position : position -> string
(** ["line 3, column 17"]. *)
