(** Event-based (SAX-style) XML parsing.

    The DOM route ({!Xml_dom}) materializes every text node and attribute
    list before the data-tree layer throws them away; for large documents —
    the paper's motivation is "internet scale" XML (Aboulnaga et al.) —
    the event stream lets {!Tl_tree.Tree_load} build the data tree
    directly, keeping peak memory at the size of the tree arrays rather
    than the DOM.

    The grammar accepted is identical to {!Xml_dom.parse_string} (same
    lexer, same reference resolution, same error positions); the two
    parsers are cross-checked against each other in the test suite. *)

type event =
  | Declaration of (string * string) list  (** [<?xml ...?>] pseudo-attributes *)
  | Start_element of string * (string * string) list
  | End_element of string
  | Text of string  (** one event per maximal run of character data *)
  | Comment of string
  | Pi of string * string

val parse_string : string -> (event -> unit) -> unit
(** Run the handler over every event of a complete document.  Raises
    {!Xml_error.Parse_error} on malformed input — events already delivered
    before the error are not retracted. *)

val parse_file : string -> (event -> unit) -> unit

val events_of_string : string -> event list
(** Convenience for tests: collect all events. *)
