let escape generic s =
  let needs_escape = String.exists (fun c -> c = '&' || c = '<' || c = '>' || (generic && c = '"')) s in
  if not needs_escape then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '&' -> Buffer.add_string buf "&amp;"
        | '<' -> Buffer.add_string buf "&lt;"
        | '>' -> Buffer.add_string buf "&gt;"
        | '"' when generic -> Buffer.add_string buf "&quot;"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let escape_text = escape false
let escape_attr = escape true

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let emit ?(indent = false) buf (doc : Xml_dom.t) =
  (match doc.decl with
  | None -> ()
  | Some attrs ->
    Buffer.add_string buf "<?xml";
    add_attrs buf attrs;
    Buffer.add_string buf "?>";
    if indent then Buffer.add_char buf '\n');
  let pad level = if indent then Buffer.add_string buf (String.make (2 * level) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec emit_element level (el : Xml_dom.element) =
    pad level;
    Buffer.add_char buf '<';
    Buffer.add_string buf el.tag;
    add_attrs buf el.attrs;
    match el.children with
    | [] ->
      Buffer.add_string buf "/>";
      nl ()
    | [ Text t ] ->
      (* Keep single-text elements on one line even when indenting, so
         values stay readable and re-parse unchanged. *)
      Buffer.add_char buf '>';
      Buffer.add_string buf (escape_text t);
      Buffer.add_string buf "</";
      Buffer.add_string buf el.tag;
      Buffer.add_char buf '>';
      nl ()
    | children ->
      Buffer.add_char buf '>';
      nl ();
      List.iter (emit_node (level + 1)) children;
      pad level;
      Buffer.add_string buf "</";
      Buffer.add_string buf el.tag;
      Buffer.add_char buf '>';
      nl ()
  and emit_node level = function
    | Xml_dom.Element el -> emit_element level el
    | Xml_dom.Text t ->
      pad level;
      Buffer.add_string buf (escape_text t);
      nl ()
    | Xml_dom.Comment c ->
      pad level;
      Buffer.add_string buf "<!--";
      Buffer.add_string buf c;
      Buffer.add_string buf "-->";
      nl ()
    | Xml_dom.Pi (target, content) ->
      pad level;
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if content <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf content
      end;
      Buffer.add_string buf "?>";
      nl ()
  in
  emit_element 0 doc.root

let to_string ?indent doc =
  let buf = Buffer.create 4096 in
  emit ?indent buf doc;
  Buffer.contents buf

let to_file ?indent path doc =
  let oc = open_out_bin path in
  (try output_string oc (to_string ?indent doc)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let serialized_size doc =
  let buf = Buffer.create 4096 in
  emit buf doc;
  Buffer.length buf
