(** XML serialization.

    Used by the dataset generators to materialize synthetic documents (so
    Table 1 can report a file size and the parser can be exercised end to
    end) and by tests for parse/print round-trips. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for character data. *)

val escape_attr : string -> string
(** Escape [&], [<], [>], and double quotes for double-quoted attribute
    values. *)

val to_string : ?indent:bool -> Xml_dom.t -> string
(** Serialize a document.  With [indent] (default [false]) elements are laid
    out one per line with two-space indentation — whitespace-significant
    mixed content is emitted verbatim, so indented output re-parses to a
    document with extra whitespace text nodes. *)

val to_file : ?indent:bool -> string -> Xml_dom.t -> unit

val serialized_size : Xml_dom.t -> int
(** Byte length of [to_string doc] without retaining the string. *)
