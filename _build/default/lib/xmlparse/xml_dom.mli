(** In-memory XML documents.

    The document model is deliberately small: elements with attributes,
    text, comments, and processing instructions.  IDREFs and DTDs are out of
    scope — the paper models XML documents as rooted node-labeled trees and
    ignores values (§2.1); text is parsed faithfully but the data-tree layer
    drops it. *)

type node =
  | Element of element
  | Text of string  (** character data, entity references already resolved *)
  | Comment of string
  | Pi of string * string  (** target and content of [<?target content?>] *)

and element = { tag : string; attrs : (string * string) list; children : node list }

type t = { decl : (string * string) list option; root : element }
(** A document: the pseudo-attributes of the XML declaration, if present,
    and the single root element.  A leading [<!DOCTYPE ...>] is accepted and
    discarded. *)

val element : ?attrs:(string * string) list -> string -> node list -> element
(** Convenience constructor. *)

val parse_string : string -> t
(** Parse a complete document.  Raises {!Xml_error.Parse_error} on
    malformed input (unbalanced tags, bad references, duplicate
    attributes, trailing junk...). *)

val parse_file : string -> t
(** [parse_string] over the file's contents.  Raises [Sys_error] when the
    file cannot be read. *)

val equal_element : element -> element -> bool
(** Structural equality (attribute order significant, as parsed). *)

val count_elements : t -> int
(** Number of element nodes in the document, the paper's "Elements" column
    of Table 1. *)

val tags : t -> string list
(** Distinct element tags, in document order of first appearance. *)

val depth : t -> int
(** Maximum element nesting depth; the root alone has depth 1. *)
