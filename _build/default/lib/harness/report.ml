let section id title = Printf.sprintf "\n== %s: %s ==\n" id title

let percent v = Printf.sprintf "%.2f%%" v

let ms v = Printf.sprintf "%.2f ms" v

let seconds v = Printf.sprintf "%.2f s" v

let kb bytes = Printf.sprintf "%.1f KB" (float_of_int bytes /. 1024.0)

let note text = "  note: " ^ text ^ "\n"
