(** Formatting helpers shared by every experiment report. *)

val section : string -> string -> string
(** [section id title] renders a header like
    ["== table3: Summary construction time and memory =="]. *)

val percent : float -> string
(** ["12.34%"]. *)

val ms : float -> string
(** ["3.21 ms"]. *)

val seconds : float -> string

val kb : int -> string
(** Bytes rendered as KB with one decimal. *)

val note : string -> string
(** An indented footnote line. *)
