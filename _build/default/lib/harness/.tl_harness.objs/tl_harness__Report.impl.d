lib/harness/report.ml: Printf
