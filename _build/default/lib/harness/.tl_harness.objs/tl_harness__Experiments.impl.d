lib/harness/experiments.ml: Array Float Fun Hashtbl List Option Printf Report Seq String Tl_core Tl_datasets Tl_join Tl_lattice Tl_mining Tl_paths Tl_sketch Tl_tree Tl_twig Tl_util Tl_workload Tl_xml
