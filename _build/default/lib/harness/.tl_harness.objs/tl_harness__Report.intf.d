lib/harness/report.mli:
