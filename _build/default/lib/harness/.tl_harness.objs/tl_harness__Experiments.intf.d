lib/harness/experiments.mli: Tl_datasets Tl_lattice Tl_sketch Tl_tree Tl_twig Tl_workload Tl_xml
