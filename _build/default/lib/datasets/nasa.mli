(** Synthetic NASA-like astronomical metadata documents.

    The real NASA dataset (datasets.xml from the ADC repository, 23 MB,
    476,646 elements) is a deep catalogue of astronomical dataset records.
    This generator reproduces its structural profile: a ~60-tag alphabet,
    records with deep citation/history substructure, moderately long
    author/field lists, and {e weak} cross-sibling correlation — the regime
    where the paper finds the conditional-independence assumption (and
    hence TreeLattice) works best. *)

val document : target:int -> seed:int -> Tl_xml.Xml_dom.element
