open Schema

let header =
  elem "header"
    [
      one (leaf "uid");
      repeat (Shifted (1, Geometric (0.6, 5))) (leaf "accession");
      opt 0.8 (leaf "created_date");
      opt 0.6 (leaf "seq-rev");
      opt 0.6 (leaf "txt-rev");
    ]

let protein =
  elem "protein"
    [
      one (leaf "name");
      opt 0.5 (elem "classification" [ repeat (Shifted (1, Geometric (0.6, 3))) (leaf "superfamily") ]);
    ]

let organism =
  elem "organism"
    [ one (leaf "source"); opt 0.6 (leaf "common"); opt 0.5 (leaf "formal"); opt 0.15 (leaf "variety") ]

let citation =
  elem "citation" [ opt 0.8 (leaf "journal"); opt 0.7 (leaf "volume"); one (leaf "year"); opt 0.6 (leaf "pages") ]

let refinfo =
  elem "refinfo"
    [
      one (elem "authors" [ repeat (Shifted (1, Geometric (0.4, 12))) (leaf "author") ]);
      one citation;
      opt 0.7 (leaf "title");
    ]

let accinfo =
  elem "accinfo" [ one (leaf "accession"); opt 0.6 (leaf "mol-type"); opt 0.5 (leaf "seq-spec") ]

let reference = elem "reference" [ one refinfo; opt 0.6 accinfo ]

let genetics =
  elem "genetics"
    [
      repeat (Geometric (0.55, 4)) (elem "gene" [ one (leaf "gene-name") ]);
      opt 0.4 (leaf "codon");
      opt 0.3 (elem "introns" [ repeat (Shifted (1, Geometric (0.5, 6))) (leaf "position") ]);
    ]

let interval = elem "interval" [ one (leaf "from"); one (leaf "to") ]

let feature =
  elem "feature"
    [ one (leaf "type"); opt 0.7 (leaf "description"); opt 0.6 interval; opt 0.3 (leaf "status") ]

let xrefs = elem "xrefs" [ repeat (Shifted (1, Geometric (0.5, 6))) (elem "xref" [ one (leaf "db"); one (leaf "id") ]) ]

let protein_entry =
  elem "ProteinEntry"
    [
      one header;
      one protein;
      one organism;
      repeat (Shifted (1, Geometric (0.45, 8))) reference;
      opt 0.4 genetics;
      opt 0.5 (elem "keywords" [ repeat (Shifted (1, Geometric (0.45, 8))) (leaf "keyword") ]);
      repeat (Geometric (0.4, 10)) feature;
      opt 0.6 (elem "summary" [ one (leaf "length"); opt 0.7 (leaf "weight") ]);
      one (leaf "sequence");
      opt 0.3 xrefs;
    ]

let document ~target ~seed =
  generate_document ~root:"ProteinDatabase" ~record:protein_entry ~target ~seed ()
