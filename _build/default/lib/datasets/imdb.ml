open Schema

let named tag = elem tag [ one (leaf "name") ]

let actor = elem "actor" [ one (leaf "name"); opt 0.6 (leaf "role") ]

let cast count = elem "cast" [ repeat count actor ]

let listing tag item count = elem tag [ repeat count item ]

let genres = listing "genres" (leaf "genre") (Shifted (1, Geometric (0.6, 4)))

let directors = listing "directors" (named "director") (Shifted (1, Geometric (0.75, 3)))

let writers = listing "writers" (named "writer") (Shifted (1, Geometric (0.6, 4)))

let producers = listing "producers" (named "producer") (Shifted (1, Geometric (0.5, 6)))

let composers = listing "composers" (named "composer") (Const 1)

let editors = listing "editors" (named "editor") (Const 1)

let cinematographers = listing "cinematographers" (named "cinematographer") (Const 1)

let distributors = listing "distributors" (named "distributor") (Shifted (1, Geometric (0.5, 5)))

let countries = listing "countries" (leaf "country") (Shifted (1, Geometric (0.65, 4)))

let languages = listing "languages" (leaf "language") (Shifted (1, Geometric (0.7, 3)))

let keywords = listing "keywords" (leaf "keyword") (Shifted (2, Geometric (0.35, 20)))

let locations = listing "locations" (leaf "location") (Shifted (1, Geometric (0.45, 8)))

let business =
  elem "business" [ one (leaf "budget"); opt 0.8 (leaf "gross"); opt 0.5 (leaf "opening") ]

let release = elem "release" [ opt 0.7 (leaf "country"); one (leaf "date") ]

let releasedates = listing "releasedates" release (Shifted (1, Geometric (0.4, 12)))

let ratings = elem "ratings" [ one (leaf "rating"); one (leaf "votes") ]

let award = elem "award" [ one (leaf "category"); one (leaf "result") ]

let awards = listing "awards" award (Shifted (1, Geometric (0.4, 10)))

let trivia = listing "trivia" (leaf "trivium") (Shifted (1, Geometric (0.4, 10)))

let goofs = listing "goofs" (leaf "goof") (Shifted (1, Geometric (0.5, 6)))

let quotes = listing "quotes" (leaf "quote") (Shifted (1, Geometric (0.5, 8)))

let soundtracks = listing "soundtracks" (leaf "song") (Shifted (1, Geometric (0.45, 8)))

let alternateversions = listing "alternateversions" (leaf "version") (Shifted (1, Geometric (0.6, 4)))

let connections = listing "connections" (leaf "connection") (Shifted (1, Geometric (0.5, 6)))

let literature =
  elem "literature" [ repeat (Geometric (0.5, 4)) (leaf "book"); repeat (Geometric (0.4, 5)) (leaf "article") ]

let certificates = listing "certificates" (leaf "certificate") (Shifted (1, Geometric (0.6, 4)))

let runtimes = listing "runtimes" (leaf "runtime") (Const 1)

let akas = listing "akas" (leaf "aka") (Shifted (1, Geometric (0.5, 5)))

(* Feature bundles per movie tier.  Everything inside one [group] co-occurs,
   which is the modeled correlation. *)
let blockbuster_bundle =
  group
    [
      one (cast (Shifted (8, Geometric (0.2, 40))));
      one business;
      one ratings;
      one awards;
      one distributors;
      one releasedates;
      one locations;
      one keywords;
      opt 0.8 trivia;
      opt 0.7 goofs;
      opt 0.7 quotes;
      opt 0.6 soundtracks;
      opt 0.5 connections;
      opt 0.4 literature;
      opt 0.5 alternateversions;
      opt 0.7 certificates;
      opt 0.6 akas;
    ]

let regular_bundle =
  group
    [
      one (cast (Shifted (2, Geometric (0.35, 15))));
      opt 0.5 ratings;
      opt 0.35 business;
      opt 0.4 releasedates;
      opt 0.35 distributors;
      opt 0.3 keywords;
      opt 0.25 locations;
      opt 0.2 trivia;
      opt 0.15 awards;
      opt 0.2 certificates;
      opt 0.25 akas;
    ]

let obscure_bundle = group [ opt 0.3 (cast (Shifted (1, Geometric (0.7, 4)))) ]

let movie =
  elem "movie"
    [
      one (leaf "title");
      one (leaf "year");
      one genres;
      one directors;
      opt 0.7 writers;
      opt 0.5 producers;
      opt 0.4 composers;
      opt 0.4 editors;
      opt 0.35 cinematographers;
      opt 0.8 countries;
      opt 0.7 languages;
      opt 0.5 runtimes;
      cond 0.12 ~then_:blockbuster_bundle
        ~else_:(cond 0.5 ~then_:regular_bundle ~else_:obscure_bundle);
    ]

let document ~target ~seed = generate_document ~root:"imdb" ~record:movie ~target ~seed ()
