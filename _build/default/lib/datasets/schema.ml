module Xorshift = Tl_util.Xorshift
module Xml_dom = Tl_xml.Xml_dom

type gen = Xorshift.t -> Xml_dom.element

type kids = Xorshift.t -> Xml_dom.element list

type count =
  | Const of int
  | Uniform of int * int
  | Geometric of float * int
  | Zipf of int * float
  | Shifted of int * count

let rec sample_count rng = function
  | Const n -> n
  | Uniform (lo, hi) -> Xorshift.int_in rng lo hi
  | Geometric (p, cap) -> min cap (Xorshift.geometric rng p)
  | Zipf (n, s) -> Xorshift.zipf rng ~n ~s
  | Shifted (offset, c) -> offset + sample_count rng c

let elem tag groups rng =
  let children = List.concat_map (fun group -> group rng) groups in
  Xml_dom.element tag (List.map (fun e -> Xml_dom.Element e) children)

let leaf tag _rng = Xml_dom.element tag []

let one g rng = [ g rng ]

let opt p g rng = if Xorshift.bernoulli rng p then [ g rng ] else []

let repeat count g rng = List.init (sample_count rng count) (fun _ -> g rng)

let choice weighted rng =
  let choices = Array.of_list weighted in
  [ (Xorshift.pick_weighted rng choices) rng ]

let choice_opt p weighted rng = if Xorshift.bernoulli rng p then choice weighted rng else []

let group gs rng = List.concat_map (fun g -> g rng) gs

let nothing _rng = []

let cond p ~then_ ~else_ rng = if Xorshift.bernoulli rng p then then_ rng else else_ rng

let with_rng f rng = f rng rng

let rec element_count (el : Xml_dom.element) =
  List.fold_left
    (fun acc node ->
      match node with
      | Xml_dom.Element e -> acc + element_count e
      | Xml_dom.Text _ | Xml_dom.Comment _ | Xml_dom.Pi _ -> acc)
    1 el.children

let generate_document ~root ~record ?(prologue = []) ~target ~seed () =
  let rng = Xorshift.create seed in
  let fixed = List.map (fun g -> g rng) prologue in
  let so_far = ref (1 + List.fold_left (fun acc e -> acc + element_count e) 0 fixed) in
  let records = ref [] in
  let continue () = !so_far < target || !records = [] in
  while continue () do
    let r = record rng in
    so_far := !so_far + element_count r;
    records := r :: !records
  done;
  Xml_dom.element root (List.map (fun e -> Xml_dom.Element e) (fixed @ List.rev !records))
