open Schema

let author =
  elem "author" [ opt 0.6 (leaf "initial"); one (leaf "lastname"); opt 0.8 (leaf "firstname") ]

let para = elem "para" [ opt 0.1 (leaf "footnote") ]

let journal_source =
  elem "journal"
    [ one (leaf "name"); repeat (Geometric (0.5, 5)) author; opt 0.5 (leaf "volume"); opt 0.6 (leaf "pages") ]

let book_source =
  elem "book" [ one (leaf "title"); repeat (Geometric (0.6, 4)) author; opt 0.6 (leaf "publisher"); opt 0.4 (leaf "city") ]

let other_source = elem "other" [ one (leaf "name") ]

let reference =
  elem "reference"
    [
      one (elem "source" [ choice [ (journal_source, 0.6); (book_source, 0.25); (other_source, 0.15) ] ]);
      one (elem "date" [ one (leaf "year"); opt 0.5 (leaf "month"); opt 0.2 (leaf "day") ]);
      opt 0.4 (leaf "cite");
    ]

let field =
  elem "field" [ one (leaf "name"); opt 0.6 (leaf "definition"); opt 0.3 (leaf "units") ]

let table_head =
  elem "tableHead"
    [
      opt 0.4 (elem "tableLinks" [ repeat (Geometric (0.5, 6)) (leaf "tableLink") ]);
      one (elem "fields" [ repeat (Shifted (2, Geometric (0.35, 18))) field ]);
    ]

let revision =
  elem "revision" [ one (leaf "revisionDate"); one author ]

let history =
  elem "history"
    [
      one (elem "ingest" [ one (leaf "creationDate"); opt 0.5 (leaf "creator") ]);
      opt 0.6 (elem "revisions" [ repeat (Geometric (0.55, 8)) revision ]);
    ]

let descriptions =
  elem "descriptions"
    [ one (elem "description" [ repeat (Shifted (1, Geometric (0.5, 6))) para; opt 0.3 (leaf "details") ]) ]

let dataset =
  elem "dataset"
    [
      one (leaf "identifier");
      one (elem "title" []);
      repeat (Geometric (0.7, 4)) (elem "altname" [ opt 0.5 (leaf "prefix") ]);
      opt 0.8 (elem "abstract" [ repeat (Shifted (1, Geometric (0.55, 5))) para ]);
      opt 0.6 (elem "keywords" [ repeat (Shifted (1, Geometric (0.45, 10))) (leaf "keyword") ]);
      repeat (Shifted (1, Geometric (0.5, 6))) author;
      repeat (Geometric (0.45, 10)) reference;
      opt 0.7 table_head;
      opt 0.75 history;
      opt 0.5 descriptions;
      opt 0.4 (elem "subject" []);
      opt 0.3 (leaf "altprefix");
    ]

let document ~target ~seed =
  generate_document ~root:"datasets" ~record:dataset ~target ~seed ()
