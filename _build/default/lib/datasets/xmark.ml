open Schema
module Xml_dom = Tl_xml.Xml_dom
module Xorshift = Tl_util.Xorshift

let description = elem "description" [ repeat (Geometric (0.5, 6)) (leaf "text") ]

let item =
  elem "item"
    [
      one (leaf "name");
      one (leaf "quantity");
      opt 0.7 description;
      opt 0.6 (leaf "payment");
      opt 0.5 (elem "mailbox" [ repeat (Shifted (-1, Zipf (25, 1.4))) (elem "mail" [ opt 0.5 (leaf "text") ]) ]);
      opt 0.4 (leaf "shipping");
    ]

let person =
  elem "person"
    [
      one (leaf "name");
      one (leaf "emailaddress");
      opt 0.35
        (elem "watches" [ repeat (Shifted (-1, Zipf (40, 1.35))) (elem "watch" []) ]);
      opt 0.55 (elem "address" [ one (leaf "street"); one (leaf "city"); one (leaf "country") ]);
    ]

let bidder = elem "bidder" [ one (leaf "date"); one (leaf "increase") ]

let open_auction =
  elem "open_auction"
    [
      one (leaf "initial");
      (* The skew that hurts average-based synopses: most auctions attract
         one or two bidders, a few attract dozens. *)
      repeat (Shifted (-1, Zipf (60, 1.35))) bidder;
      one (leaf "current");
      one (leaf "itemref");
      one (leaf "seller");
      opt 0.5 (elem "annotation" [ one description ]);
    ]

let closed_auction =
  elem "closed_auction"
    [
      one (leaf "seller");
      one (leaf "buyer");
      one (leaf "itemref");
      one (leaf "price");
      one (leaf "date");
      opt 0.4 (elem "annotation" [ one description ]);
    ]

let category = elem "category" [ one (leaf "name"); opt 0.6 description ]

(* XMark has parallel top-level sections, so the document is assembled
   section by section with fixed node-budget fractions rather than through
   [Schema.generate_document]. *)
let document ~target ~seed =
  let rng = Xorshift.create seed in
  let fill budget g =
    let used = ref 0 in
    let out = ref [] in
    while !used < budget || !out = [] do
      let e = g rng in
      used := !used + element_count e;
      out := e :: !out
    done;
    List.rev !out
  in
  let wrap tag children = Xml_dom.element tag (List.map (fun e -> Xml_dom.Element e) children) in
  let share f = int_of_float (float_of_int target *. f) in
  let regions =
    wrap "regions"
      (List.map
         (fun (tag, f) -> wrap tag (fill (share f) item))
         [ ("africa", 0.04); ("asia", 0.08); ("europe", 0.12); ("namerica", 0.12) ])
  in
  let people = wrap "people" (fill (share 0.22) person) in
  let open_auctions = wrap "open_auctions" (fill (share 0.25) open_auction) in
  let closed_auctions = wrap "closed_auctions" (fill (share 0.09) closed_auction) in
  let categories = wrap "categories" (fill (share 0.04) category) in
  wrap "site" [ regions; categories; people; open_auctions; closed_auctions ]
