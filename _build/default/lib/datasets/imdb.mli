(** Synthetic IMDB-like movie documents.

    The real IMDB dataset (7 MB, 155,898 elements) is the one evaluation
    dataset where the paper's conditional-independence assumption breaks
    down: which sub-elements a movie carries is strongly correlated (a
    heavily documented blockbuster has cast {e and} business figures {e and}
    awards; an obscure title has almost nothing).  This generator makes the
    correlation explicit with a three-tier movie population
    (blockbuster / regular / obscure) whose feature bundles co-occur, plus a
    wide (~70-tag) alphabet of optional containers under [movie] — the
    combinatorics behind IMDB's exploding subtree-pattern counts in
    Table 2. *)

val document : target:int -> seed:int -> Tl_xml.Xml_dom.element
