(** Synthetic PSD-like (Protein Sequence Database) documents.

    The real PSD dataset (4.5 MB sample, 242,014 elements) holds wide,
    shallow, functionally annotated protein entries.  The generator
    reproduces that profile: a ~55-tag alphabet, records dominated by
    repeated [reference] and [feature] children, and only mild sibling
    correlation — a regime where the paper finds decomposition estimates
    accurate for small queries with slow degradation as queries grow. *)

val document : target:int -> seed:int -> Tl_xml.Xml_dom.element
