(** Synthetic XMark-like auction documents.

    XMark is itself a synthetic benchmark; this generator re-derives its
    auction-site schema (regions/items, people, open and closed auctions,
    categories) from the published DTD, at a configurable size.  The
    structurally important property reproduced here is the {e heavy skew}
    of same-label fan-outs — bidders per auction and watches per person are
    Zipf-distributed — which is what makes average-based synopses
    (TreeSketches) blow up on this dataset in the paper's Fig. 7(d) and the
    Fig. 11 discussion. *)

val document : target:int -> seed:int -> Tl_xml.Xml_dom.element
(** An auction site document with roughly [target] element nodes. *)
