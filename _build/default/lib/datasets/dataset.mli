(** The four evaluation datasets (Table 1), unified.

    Each entry records the real dataset's characteristics from the paper
    alongside a generator for its synthetic stand-in (the real files are
    not redistributable / available offline; DESIGN.md §3 documents the
    substitutions). *)

type t = {
  name : string;  (** "nasa", "imdb", "psd", "xmark" *)
  description : string;
  paper_elements : int;  (** Table 1 "Elements" *)
  paper_size_mb : float;  (** Table 1 "File Size (MB)" *)
  document : target:int -> seed:int -> Tl_xml.Xml_dom.element;
}

val nasa : t

val imdb : t

val psd : t

val xmark : t

val all : t list
(** In the paper's Table 1 order: nasa, imdb, xmark, psd. *)

val find : string -> t option
(** Case-insensitive lookup by name. *)

val tree : t -> target:int -> seed:int -> Tl_tree.Data_tree.t
(** Generate and convert in one step. *)
