type t = {
  name : string;
  description : string;
  paper_elements : int;
  paper_size_mb : float;
  document : target:int -> seed:int -> Tl_xml.Xml_dom.element;
}

let nasa =
  {
    name = "nasa";
    description = "astronomical dataset catalogue (deep records, weak correlation)";
    paper_elements = 476646;
    paper_size_mb = 23.0;
    document = Nasa.document;
  }

let imdb =
  {
    name = "imdb";
    description = "movie database (wide optional containers, strong correlation)";
    paper_elements = 155898;
    paper_size_mb = 7.0;
    document = Imdb.document;
  }

let psd =
  {
    name = "psd";
    description = "protein sequence database (wide shallow records)";
    paper_elements = 242014;
    paper_size_mb = 4.5;
    document = Psd.document;
  }

let xmark =
  {
    name = "xmark";
    description = "auction site benchmark (skewed fan-outs)";
    paper_elements = 565505;
    paper_size_mb = 10.0;
    document = Xmark.document;
  }

let all = [ nasa; imdb; xmark; psd ]

let find name =
  let lowered = String.lowercase_ascii name in
  List.find_opt (fun d -> String.equal d.name lowered) all

let tree d ~target ~seed = Tl_tree.Data_tree.of_element (d.document ~target ~seed)
