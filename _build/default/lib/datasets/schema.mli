(** Combinators for schema-driven random document generation.

    A {!gen} produces one element; a {!kids} produces a child-element list.
    Generators compose bottom-up into a document schema whose structural
    statistics (alphabet, fan-out distributions, optionality, sibling
    correlation) mimic a target dataset — see {!Nasa}, {!Imdb}, {!Psd},
    {!Xmark}.  All randomness flows through the supplied
    {!Tl_util.Xorshift.t}, so generation is reproducible from a seed. *)

type gen = Tl_util.Xorshift.t -> Tl_xml.Xml_dom.element

type kids = Tl_util.Xorshift.t -> Tl_xml.Xml_dom.element list

(** Child-count distributions. *)
type count =
  | Const of int
  | Uniform of int * int  (** inclusive bounds *)
  | Geometric of float * int  (** success probability, hard cap; mean ~ (1-p)/p *)
  | Zipf of int * float  (** [Zipf (n, s)]: skewed counts in [1, n] with exponent [s] *)
  | Shifted of int * count  (** add a constant offset *)

val sample_count : Tl_util.Xorshift.t -> count -> int

val elem : string -> kids list -> gen
(** An element whose children are the concatenation of the child groups. *)

val leaf : string -> gen

val one : gen -> kids
(** Exactly one child. *)

val opt : float -> gen -> kids
(** Present with the given probability. *)

val repeat : count -> gen -> kids
(** Independent copies, count drawn from the distribution. *)

val choice : (gen * float) list -> kids
(** Exactly one child, chosen by weight. *)

val choice_opt : float -> (gen * float) list -> kids
(** With probability [p], one weighted choice; otherwise nothing. *)

val group : kids list -> kids
(** Concatenation, for bundling under {!cond}. *)

val nothing : kids

val cond : float -> then_:kids -> else_:kids -> kids
(** The correlation device: with probability [p] generate the whole
    [then_] bundle, otherwise the whole [else_] bundle.  All children inside
    a bundle co-occur, which is exactly what breaks the estimators'
    conditional-independence assumption. *)

val with_rng : (Tl_util.Xorshift.t -> kids) -> kids
(** Escape hatch for custom correlated logic. *)

val element_count : Tl_xml.Xml_dom.element -> int
(** Number of element nodes in a generated subtree. *)

val generate_document :
  root:string ->
  record:gen ->
  ?prologue:gen list ->
  target:int ->
  seed:int ->
  unit ->
  Tl_xml.Xml_dom.element
(** Build [<root>] holding the [prologue] elements (generated once) followed
    by as many [record] elements as needed to reach [target] total element
    nodes (always at least one record).  This is how dataset size is scaled
    precisely. *)
