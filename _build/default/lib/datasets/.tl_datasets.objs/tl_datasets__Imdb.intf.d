lib/datasets/imdb.mli: Tl_xml
