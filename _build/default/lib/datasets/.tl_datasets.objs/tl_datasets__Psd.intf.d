lib/datasets/psd.mli: Tl_xml
