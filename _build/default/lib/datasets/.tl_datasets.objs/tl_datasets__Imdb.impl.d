lib/datasets/imdb.ml: Schema
