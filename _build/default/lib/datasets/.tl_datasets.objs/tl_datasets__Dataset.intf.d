lib/datasets/dataset.mli: Tl_tree Tl_xml
