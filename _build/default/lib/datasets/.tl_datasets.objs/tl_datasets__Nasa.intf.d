lib/datasets/nasa.mli: Tl_xml
