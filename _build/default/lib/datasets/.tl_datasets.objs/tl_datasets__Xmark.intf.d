lib/datasets/xmark.mli: Tl_xml
