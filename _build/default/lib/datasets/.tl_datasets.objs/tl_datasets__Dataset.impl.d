lib/datasets/dataset.ml: Imdb List Nasa Psd String Tl_tree Tl_xml Xmark
