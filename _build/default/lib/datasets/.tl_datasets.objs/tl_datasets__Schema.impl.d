lib/datasets/schema.ml: Array List Tl_util Tl_xml
