lib/datasets/xmark.ml: List Schema Tl_util Tl_xml
