lib/datasets/schema.mli: Tl_util Tl_xml
