lib/datasets/psd.ml: Schema
