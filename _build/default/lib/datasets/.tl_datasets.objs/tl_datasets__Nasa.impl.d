lib/datasets/nasa.ml: Schema
