(** Bidirectional string interning.

    Element tags are interned into dense integer ids so that trees, twigs,
    and lattice keys compare and hash on ints.  Ids are allocated in first-
    seen order starting from 0, which also makes serialized summaries
    stable for a given input document. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** [intern t s] returns the id of [s], allocating a fresh one if needed. *)

val find : t -> string -> int option
(** Lookup without allocating. *)

val name : t -> int -> string
(** [name t id] is the string for [id].  Raises [Invalid_argument] for an
    unallocated id. *)

val size : t -> int
(** Number of interned strings. *)

val names : t -> string array
(** All interned strings, indexed by id. *)

val copy : t -> t
