type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let ( +% ) = Int64.add
let ( *% ) = Int64.mul
let ( ^% ) = Int64.logxor

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64, used only to expand the seed into the xoshiro state. *)
let splitmix state =
  state := !state +% 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = (z ^% Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^% Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^% Int64.shift_right_logical z 31

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix st in
  let s1 = splitmix st in
  let s2 = splitmix st in
  let s3 = splitmix st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

(* xoshiro256** next *)
let int64 t =
  let result = rotl (t.s1 *% 5L) 7 *% 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- t.s2 ^% t.s0;
  t.s3 <- t.s3 ^% t.s1;
  t.s1 <- t.s1 ^% t.s2;
  t.s0 <- t.s0 ^% t.s3;
  t.s2 <- t.s2 ^% tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (int64 t) in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec loop () =
    let v = Int64.to_int (Int64.logand (int64 t) mask) in
    let r = v mod bound in
    if v - r > max_int - bound + 1 then loop () else r
  in
  loop ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Xorshift.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v *. 0x1.0p-53)

let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Xorshift.geometric: p out of (0,1]";
  if p >= 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

(* Zipf sampling by inverse transform over a cached CDF table.  The cache is
   keyed by (n, s); generators reuse a handful of (n, s) pairs so the table
   cost is paid once per configuration. *)
let zipf_tables : (int * float, float array) Hashtbl.t = Hashtbl.create 16

let zipf_cdf n s =
  match Hashtbl.find_opt zipf_tables (n, s) with
  | Some cdf -> cdf
  | None ->
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    for k = 1 to n do
      acc := !acc +. (1.0 /. Float.exp (s *. log (float_of_int k)));
      cdf.(k - 1) <- !acc
    done;
    let total = !acc in
    Array.iteri (fun i v -> cdf.(i) <- v /. total) cdf;
    Hashtbl.replace zipf_tables (n, s) cdf;
    cdf

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Xorshift.zipf: n must be positive";
  if n = 1 then 1
  else begin
    let cdf = zipf_cdf n s in
    let u = float t 1.0 in
    (* Smallest index whose cumulative mass covers u. *)
    let rec bisect lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bisect (mid + 1) hi else bisect lo mid
    in
    bisect 0 (n - 1) + 1
  end

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Xorshift.pick: empty array";
  arr.(int t (Array.length arr))

let pick_weighted t choices =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Xorshift.pick_weighted: weights sum to zero";
  let target = float t total in
  let n = Array.length choices in
  let rec loop i acc =
    if i = n - 1 then fst choices.(i)
    else
      let acc = acc +. snd choices.(i) in
      if target < acc then fst choices.(i) else loop (i + 1) acc
  in
  loop 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  let copy = Array.copy arr in
  shuffle t copy;
  if k >= Array.length copy then copy else Array.sub copy 0 k
